// Ablation: switch arbitration policy vs deadlock formation and GFC
// steady state, on the Figure-1 ring. A finding of this reproduction:
//  * arrival-order (shared-FIFO output-queued) switches reproduce the
//    paper's PFC/CBFC deadlocks, but proportional sharing drags GFC's
//    saturated-cycle operating point toward the rate floor;
//  * fair per-source (crossbar round-robin) arbitration reproduces GFC's
//    exact steady-state numbers (5 Gb/s, Fig 9/10 queue levels), and under
//    it the *static* symmetric ring never deadlocks even with PFC — the
//    pause cascade needs arrival-order coupling to bootstrap.
#include "bench_common.hpp"

using namespace gfc;
using namespace gfc::runner;

int main(int argc, char** argv) {
  const exp::CliOptions cli = exp::parse_cli(argc, argv);
  bench::header("Ablation: arbitration policy x flow control (Fig 1 ring)",
                "DESIGN.md / EXPERIMENTS.md discussion");
  struct Arch {
    const char* name;
    net::SwitchArch arch;
  };
  const Arch archs[] = {
      {"output-queued (arrival order)", net::SwitchArch::kOutputQueuedFifo},
      {"CIOQ crossbar (round robin)", net::SwitchArch::kCioqRoundRobin},
      {"input-queued (pull RR)", net::SwitchArch::kInputQueued},
  };
  const FcKind kinds[] = {FcKind::kPfc, FcKind::kCbfc, FcKind::kGfcBuffer,
                          FcKind::kGfcTime};
  std::printf("%-32s %-12s %-9s %-18s %s\n", "architecture", "mechanism",
              "deadlock", "tput/host [Gb/s]", "violations");
  for (const Arch& a : archs) {
    for (FcKind kind : kinds) {
      ScenarioConfig cfg;
      cfg.preflight = cli.preflight;
      cfg.switch_buffer = 300'000;
      cfg.arch = a.arch;
      cfg.fc = FcSetup::derive(kind, cfg.switch_buffer, cfg.link.rate,
                               cfg.tau());
      const bench::RingTrace t = bench::trace_ring(cfg, sim::ms(20));
      std::printf("%-32s %-12s %-9s %-18.2f %llu\n", a.name, fc_name(kind),
                  t.deadlocked ? "YES" : "no", t.tail_gbps_per_host,
                  static_cast<unsigned long long>(t.violations));
    }
  }
  return 0;
}
