// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "exp/cli.hpp"
#include "runner/scenarios.hpp"
#include "stats/probe.hpp"
#include "stats/throughput.hpp"
#include "trace/export.hpp"

namespace gfc::bench {

inline void header(const char* what, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n  (reproduces %s)\n", what, paper_ref);
  std::printf("==============================================================\n");
}

/// Print a (time, value) series as aligned columns.
inline void print_series(const char* name, const char* unit,
                         const stats::TimeSeries& ts, std::size_t stride = 1) {
  std::printf("# %s [%s]\n", name, unit);
  std::printf("%12s %14s\n", "t_us", name);
  for (std::size_t i = 0; i < ts.points.size(); i += stride)
    std::printf("%12.1f %14.3f\n", sim::to_us(ts.points[i].first),
                ts.points[i].second);
}

/// Per-run trace artifact paths; an empty member skips that artifact.
struct TraceArtifacts {
  std::string chrome_json;
  std::string csv;
  std::string flight_dump;
};

/// The standard artifact triple for a run named `base` under the CLI's
/// --trace-out directory: <base>.trace.json / .trace.csv / .flight.txt.
/// All-empty (= no exports) when --trace was not given.
inline TraceArtifacts trace_artifacts_for(const exp::CliOptions& cli,
                                          const std::string& base) {
  TraceArtifacts a;
  if (!cli.trace) return a;
  a.chrome_json = cli.trace_artifact(base, "trace.json");
  a.csv = cli.trace_artifact(base, "trace.csv");
  a.flight_dump = cli.trace_artifact(base, "flight.txt");
  return a;
}

/// Install a DeadlockOptions::on_detect that dumps the fabric's flight
/// recorder (pre-stall windows + witness cycle) to `path`. No-op when the
/// fabric has no tracer/recorder or `path` is empty.
inline void arm_flight_dump(stats::DeadlockOptions* opts,
                            runner::Fabric& fabric, const std::string& path) {
  if (path.empty() || fabric.net().tracer() == nullptr ||
      fabric.net().tracer()->flight() == nullptr)
    return;
  runner::Fabric* f = &fabric;
  opts->on_detect = [f, path](const stats::DeadlockDetector& det) {
    trace::dump_flight(path, *f->net().tracer()->flight(), f->node_name_fn(),
                       "deadlock detected at " +
                           sim::format_time(det.detected_at()) +
                           "\nwitness cycle: " +
                           runner::describe_cycle(det, f->net()));
  };
}

/// Export a finished run's trace ring per `art`. Export failures warn on
/// stderr but never fail the benchmark.
inline void export_trace(runner::Fabric& fabric, const TraceArtifacts& art) {
  const trace::Tracer* tr = fabric.net().tracer();
  if (tr == nullptr) return;
  std::string err;
  if (!art.chrome_json.empty() &&
      !trace::export_chrome_json(art.chrome_json, tr->buffer(),
                                 fabric.node_name_fn(), &err))
    std::fprintf(stderr, "trace export: %s\n", err.c_str());
  if (!art.csv.empty() && !trace::export_csv(art.csv, tr->buffer(), &err))
    std::fprintf(stderr, "trace export: %s\n", err.c_str());
}

/// Ring trace: queue length of the H1-facing port at S1 plus the
/// host-programmed input rate, sampled every `period` (Figs 5/9/10 style).
struct RingTrace {
  stats::TimeSeries queue_kb;
  stats::TimeSeries rate_gbps;
  bool deadlocked = false;
  sim::TimePs deadlock_at = -1;
  double tail_gbps_per_host = 0;
  std::uint64_t violations = 0;
};

inline RingTrace trace_ring(const runner::ScenarioConfig& cfg,
                            sim::TimePs duration, sim::TimePs sample = sim::us(100),
                            const TraceArtifacts* artifacts = nullptr) {
  runner::RingScenario s = runner::make_ring(cfg);
  net::Network& net = s.fabric->net();
  stats::ThroughputSampler tp(net, sim::us(100));
  stats::DeadlockOptions dl_opts;
  if (artifacts != nullptr)
    arm_flight_dump(&dl_opts, *s.fabric, artifacts->flight_dump);
  stats::DeadlockDetector det(net, dl_opts);
  RingTrace out;
  stats::PeriodicProbe probe(net.sched(), sample, [&](sim::TimePs now) {
    out.queue_kb.add(now, static_cast<double>(s.fabric->ingress_queue_bytes(
                              s.info.switches[1], s.info.hosts[1])) /
                              1000.0);
    out.rate_gbps.add(
        now, s.fabric->egress_rate(s.info.hosts[1], s.info.switches[1]).gbps());
  });
  net.run_until(duration);
  out.deadlocked = det.deadlocked();
  out.deadlock_at = det.detected_at();
  out.tail_gbps_per_host = tp.average_gbps(0, duration * 3 / 4, duration) / 3.0;
  out.violations = net.counters().lossless_violations;
  if (artifacts != nullptr) export_trace(*s.fabric, *artifacts);
  return out;
}

inline void print_ring_summary(const char* label, const RingTrace& t) {
  std::printf("%-14s deadlock=%-3s %-12s tail throughput/host=%5.2f Gb/s  "
              "final queue=%6.1f KB  final rate=%5.2f Gb/s  violations=%llu\n",
              label, t.deadlocked ? "YES" : "no",
              t.deadlocked ? ("@" + sim::format_time(t.deadlock_at)).c_str() : "",
              t.tail_gbps_per_host, t.queue_kb.last(), t.rate_gbps.last(),
              static_cast<unsigned long long>(t.violations));
}

}  // namespace gfc::bench
