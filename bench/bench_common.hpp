// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "runner/scenarios.hpp"
#include "stats/probe.hpp"
#include "stats/throughput.hpp"

namespace gfc::bench {

inline void header(const char* what, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n  (reproduces %s)\n", what, paper_ref);
  std::printf("==============================================================\n");
}

/// Print a (time, value) series as aligned columns.
inline void print_series(const char* name, const char* unit,
                         const stats::TimeSeries& ts, std::size_t stride = 1) {
  std::printf("# %s [%s]\n", name, unit);
  std::printf("%12s %14s\n", "t_us", name);
  for (std::size_t i = 0; i < ts.points.size(); i += stride)
    std::printf("%12.1f %14.3f\n", sim::to_us(ts.points[i].first),
                ts.points[i].second);
}

/// Ring trace: queue length of the H1-facing port at S1 plus the
/// host-programmed input rate, sampled every `period` (Figs 5/9/10 style).
struct RingTrace {
  stats::TimeSeries queue_kb;
  stats::TimeSeries rate_gbps;
  bool deadlocked = false;
  sim::TimePs deadlock_at = -1;
  double tail_gbps_per_host = 0;
  std::uint64_t violations = 0;
};

inline RingTrace trace_ring(const runner::ScenarioConfig& cfg,
                            sim::TimePs duration, sim::TimePs sample = sim::us(100)) {
  runner::RingScenario s = runner::make_ring(cfg);
  net::Network& net = s.fabric->net();
  stats::ThroughputSampler tp(net, sim::us(100));
  stats::DeadlockDetector det(net);
  RingTrace out;
  stats::PeriodicProbe probe(net.sched(), sample, [&](sim::TimePs now) {
    out.queue_kb.add(now, static_cast<double>(s.fabric->ingress_queue_bytes(
                              s.info.switches[1], s.info.hosts[1])) /
                              1000.0);
    out.rate_gbps.add(
        now, s.fabric->egress_rate(s.info.hosts[1], s.info.switches[1]).gbps());
  });
  net.run_until(duration);
  out.deadlocked = det.deadlocked();
  out.deadlock_at = det.detected_at();
  out.tail_gbps_per_host = tp.average_gbps(0, duration * 3 / 4, duration) / 3.0;
  out.violations = net.counters().lossless_violations;
  return out;
}

inline void print_ring_summary(const char* label, const RingTrace& t) {
  std::printf("%-14s deadlock=%-3s %-12s tail throughput/host=%5.2f Gb/s  "
              "final queue=%6.1f KB  final rate=%5.2f Gb/s  violations=%llu\n",
              label, t.deadlocked ? "YES" : "no",
              t.deadlocked ? ("@" + sim::format_time(t.deadlock_at)).c_str() : "",
              t.tail_gbps_per_host, t.queue_kb.last(), t.rate_gbps.last(),
              static_cast<unsigned long long>(t.violations));
}

}  // namespace gfc::bench
