// Fault sweep: how gently does each flow-control mechanism degrade when
// the control plane itself becomes unreliable?
//
// Three trial groups (all exp:: campaign trials, --jobs safe):
//
//  1. loss sweep — drop every link-control frame type (PFC pause/resume,
//     CBFC credits, GFC feedback) with probability p on two topologies:
//     a 4-to-1 incast (pure congestion, no CBD) and the Figure 1 ring
//     (deadlock-prone). Mechanisms: PFC and CBFC bare and with their
//     self-healing knobs (pause expiry / credit sync), plus both GFC
//     variants. Expected shape: bare PFC wedges permanently once a RESUME
//     is lost (goodput and tail goodput collapse), PFC+expiry and
//     CBFC(+sync) recover, and GFC — whose rate feedback is periodic and
//     whose rates are floored above zero — degrades gently and never
//     deadlocks at any loss rate.
//
//  2. recovery — the ring deadlocks organically under PFC/CBFC; with the
//     DeadlockDetector in recover mode the witness cycle is drained and
//     the run keeps delivering (detections/recoveries/drops reported).
//
//  3. link flaps — a LinkScheduler takes a core fat-tree link down
//     mid-run and restores it later; routing is recomputed on each
//     transition and stranded packets are re-routed. The closed-loop
//     workload should keep completing flows through the outage.
//
//  4. mechanism x scenario matrix — every registered mechanism
//     (src/mech/registry: prevention, detection and avoidance families)
//     on the deadlocking ring and the cycle-free incast, no faults.
//     One table: who deadlocks, who recovers, and at what cost (packets
//     sacrificed, lossless violations, path stretch, buffer headroom).
#include "bench_common.hpp"
#include "exp/cli.hpp"
#include "exp/worker_pool.hpp"
#include "fault/link_scheduler.hpp"
#include "mech/dcfit.hpp"
#include "mech/registry.hpp"

using namespace gfc;
using namespace gfc::runner;

namespace {

using mech::MechSpec;
using mech::unblock_frame;

/// Loss-sweep rows (group 1): the six original mechanisms. The full
/// registry — including DCFIT and CBD-routing — runs in the matrix group.
constexpr std::size_t kLossMechs = 6;

/// Per-trial trace artifacts (--trace): every trial exports its event ring
/// as Chrome JSON + CSV named by the trial id — the deterministic key — so
/// the artifact set is byte-identical at any --jobs.
void export_trial_trace(const exp::CliOptions& cli, const std::string& name,
                        runner::Fabric& fabric) {
  if (!cli.trace) return;
  bench::TraceArtifacts art;
  art.chrome_json = cli.trace_artifact(name, "trace.json");
  art.csv = cli.trace_artifact(name, "trace.csv");
  bench::export_trace(fabric, art);
}

// Every trial's fabric honors the binary-wide --analyze mode.
analyze::PreflightMode g_preflight = analyze::PreflightMode::kOff;
// --shards count for every trial fabric; trials with fault injection
// enabled fall back to the sequential engine (fabric warns once per trial).
int g_shards = 1;
// --cbd-free-routing: every scenario swaps its routing for the up*/down*
// CBD-free tables. Composed with --analyze=fail this makes the campaign
// assert the restriction removed the cycles on every topology it visits.
bool g_cbd_free = false;

ScenarioConfig config_for(const MechSpec& m, std::uint64_t base) {
  ScenarioConfig cfg;
  cfg.preflight = g_preflight;
  cfg.shards = g_shards;
  cfg.seed = 1 + base;
  // setup_for = FcSetup::derive + the spec's heal / break / routing knobs;
  // every registered mechanism is derivable at the default 300 KB buffer.
  cfg.fc = mech::setup_for(m, cfg.switch_buffer, cfg.link.rate, cfg.tau())
               .value();
  // OR, not assignment: the CBD-routing mechanism spec already sets it.
  cfg.fc.cbd_free_routing |= g_cbd_free;
  return cfg;
}

/// Group 1 trial body: permanent line-rate flows on `ring` (3 switches,
/// 2 hops) or a 4-to-1 incast, with the mechanism's unblock frames dropped
/// with probability `drop`. Reports average per-host goodput plus the
/// *minimum* per-sender tail (last-quarter) goodput: one permanently
/// wedged sender shows up as min_tail ~ 0 even when the shared bottleneck
/// hides it from the aggregate.
exp::TrialResult run_loss_trial(bool ring, const MechSpec& m, double drop,
                                std::uint64_t fault_seed, std::uint64_t base,
                                sim::TimePs dur, const exp::CliOptions& cli,
                                const std::string& trial_name) {
  ScenarioConfig cfg = config_for(m, base);
  cfg.fault.seed = fault_seed;
  cfg.fault.rate(unblock_frame(m.kind)).drop = drop;
  cfg.trace = cli.trace_options();

  RingScenario rs;
  IncastScenario is;
  Fabric* fabric = nullptr;
  std::vector<net::NodeId> senders;
  if (ring) {
    rs = make_ring(cfg, 3, 2);
    fabric = rs.fabric.get();
    senders.assign(rs.info.hosts.begin(), rs.info.hosts.end());
  } else {
    is = make_incast(cfg, 4);
    fabric = is.fabric.get();
    senders.assign(is.info.senders.begin(), is.info.senders.end());
  }
  net::Network& net = fabric->net();
  stats::ThroughputSampler tp(net, sim::us(100));
  stats::ThroughputSampler per_src(net, sim::us(100),
                                   stats::ThroughputSampler::Key::kPerSrcHost);
  stats::DeadlockDetector det(net);
  net.run_until(dur);

  double min_tail = -1.0;
  for (net::NodeId h : senders) {
    const double g = per_src.average_gbps(h, dur * 3 / 4, dur);
    if (min_tail < 0 || g < min_tail) min_tail = g;
  }

  exp::TrialResult out;
  out.add("gbps", tp.average_gbps(0, sim::ms(1), dur) /
                      static_cast<double>(senders.size()))
      .add("min_tail_gbps", min_tail)
      .add("deadlocked", det.deadlocked())
      .add("violations", net.counters().lossless_violations);
  if (const fault::FaultPlan* plan = fabric->fault_plan()) {
    out.add("faults_consulted", plan->counters().consulted)
        .add("faults_dropped", plan->counters().dropped);
  } else {
    out.add("faults_consulted", 0).add("faults_dropped", 0);
  }
  export_trial_trace(cli, trial_name, *fabric);
  return out;
}

/// Group 2 trial body: let the ring deadlock, then drain-and-reset the
/// witness cycle (DeadlockOptions::recover) and keep going.
exp::TrialResult run_recovery_trial(const MechSpec& m, std::uint64_t base,
                                    sim::TimePs dur,
                                    const exp::CliOptions& cli,
                                    const std::string& trial_name) {
  ScenarioConfig cfg = config_for(m, base);
  cfg.trace = cli.trace_options();
  RingScenario s = make_ring(cfg, 3, 2);
  net::Network& net = s.fabric->net();
  stats::ThroughputSampler tp(net, sim::us(100));
  stats::DeadlockOptions dl_opts;
  dl_opts.recover = true;
  if (cli.trace)
    // First detection wins the file; later recoveries rewrite it with the
    // latest pre-stall window, which is still deterministic per trial.
    bench::arm_flight_dump(&dl_opts, *s.fabric,
                           cli.trace_artifact(trial_name, "flight.txt"));
  stats::DeadlockDetector det(net, dl_opts);
  net.run_until(dur);
  exp::TrialResult out = exp::TrialResult()
      .add("detections", det.detections())
      .add("recoveries", det.recoveries())
      .add("recovered_packets", det.recovered_packets())
      .add("deadlocked", det.deadlocked())  // stays false: nothing latches
      .add("tail_gbps", tp.average_gbps(0, dur * 3 / 4, dur) / 3.0);
  export_trial_trace(cli, trial_name, *s.fabric);
  return out;
}

/// Group 4 trial body: one cell of the mechanism x scenario matrix.
/// Permanent line-rate flows, no injected faults: the mechanism against
/// the bare scenario. Reports the full cost accounting — ground-truth
/// deadlock, goodput (overall and tail), DCFIT detection/break counters,
/// lossless violations, PFC-family buffer headroom and routing stretch.
exp::TrialResult run_matrix_trial(bool ring, const MechSpec& m,
                                  std::uint64_t base, sim::TimePs dur,
                                  const exp::CliOptions& cli,
                                  const std::string& trial_name) {
  ScenarioConfig cfg = config_for(m, base);
  cfg.trace = cli.trace_options();

  RingScenario rs;
  IncastScenario is;
  Fabric* fabric = nullptr;
  std::vector<net::NodeId> senders;
  const mech::RoutingStats* routing = nullptr;
  if (ring) {
    rs = make_ring(cfg, 3, 2);
    fabric = rs.fabric.get();
    senders.assign(rs.info.hosts.begin(), rs.info.hosts.end());
    routing = &rs.route_stats;
  } else {
    is = make_incast(cfg, 4);
    fabric = is.fabric.get();
    senders.assign(is.info.senders.begin(), is.info.senders.end());
    routing = &is.route_stats;
  }
  net::Network& net = fabric->net();
  stats::ThroughputSampler tp(net, sim::us(100));
  stats::DeadlockDetector det(net);
  net.run_until(dur);

  const mech::DcfitTotals dcfit = mech::collect_dcfit(net);
  const bool pfc_family =
      cfg.fc.kind == FcKind::kPfc || cfg.fc.kind == FcKind::kDcfit;
  exp::TrialResult out;
  out.add("gbps", tp.average_gbps(0, sim::ms(1), dur) /
                      static_cast<double>(senders.size()))
      .add("tail_gbps", tp.average_gbps(0, dur * 3 / 4, dur) /
                            static_cast<double>(senders.size()))
      .add("deadlocked", det.deadlocked())
      .add("violations", net.counters().lossless_violations)
      .add("mech_detections", dcfit.detections)
      .add("mech_false_positives", dcfit.false_positives)
      .add("mech_sacrificed", dcfit.packets_sacrificed)
      .add("mech_bypasses", dcfit.bypasses)
      .add("detect_latency_us", dcfit.first_detection_latency >= 0
                                    ? sim::to_seconds(
                                          dcfit.first_detection_latency) * 1e6
                                    : -1.0)
      .add("headroom_bytes",
           pfc_family ? cfg.switch_buffer - cfg.fc.xoff : std::int64_t{0})
      .add("stretch_avg", cfg.fc.cbd_free_routing ? routing->avg_stretch : 1.0)
      .add("cbd_free_routing", cfg.fc.cbd_free_routing);
  export_trial_trace(cli, trial_name, *fabric);
  return out;
}

/// Group 3 trial body: closed-loop fat-tree run with one switch-switch
/// link flapped mid-run; routing recomputed on each transition.
exp::TrialResult run_flap_trial(const MechSpec& m, std::uint64_t base,
                                sim::TimePs dur, const exp::CliOptions& cli,
                                const std::string& trial_name) {
  ScenarioConfig cfg = config_for(m, base);
  cfg.trace = cli.trace_options();
  // Soundness oracle: keep the incremental re-analysis live across the
  // flap's reroutes and cross-check any runtime deadlock witness against
  // the static enumeration (a miss throws and fails the trial).
  cfg.witness_check = true;
  FatTreeScenario s = make_fattree(cfg, 4);
  const auto switch_links = s.topo.switch_links();
  const topo::LinkIndex li = switch_links[switch_links.size() / 2];
  const topo::TopoLink link = s.topo.link(li);

  fault::LinkScheduler sched(
      s.fabric->net(), [&s, li](const fault::LinkEvent& ev) {
        if (ev.up)
          s.topo.restore_link(li);
        else
          s.topo.fail_link(li);
        s.routing = topo::compute_shortest_paths(s.topo);
        s.fabric->install_routing(s.topo, s.routing);
      });
  sched.schedule_flap(link.a, link.b, dur / 4, dur * 3 / 4);

  RunOptions opts;
  opts.duration = dur;
  opts.workload_seed = 7 + base;
  if (cli.trace)
    opts.flight_dump_path = cli.trace_artifact(trial_name, "flight.txt");
  const RunSummary r = run_closed_loop(s, opts);
  export_trial_trace(cli, trial_name, *s.fabric);
  return exp::TrialResult()
      .add("gbps", r.per_host_gbps)
      .add("flows_completed", r.flows_completed)
      .add("deadlocked", r.deadlocked)
      .add("wire_lost", s.fabric->net().counters().wire_lost_packets)
      .add("failover_drops", s.fabric->net().counters().failover_drops)
      .add("downs", sched.downs())
      .add("ups", sched.ups())
      .add("analyze_reverdicts", r.analyze_reverdicts)
      .add("analyze_verdict", r.analyze_verdict)
      .add("witness_checks", r.witness_checks);
}

}  // namespace

int main(int argc, char** argv) {
  const exp::CliOptions cli = exp::parse_cli(argc, argv);
  g_preflight = cli.preflight;
  g_shards = cli.sim_shards;
  g_cbd_free = cli.cbd_free_routing;
  bench::header("Fault sweep: flow control under control-frame loss, "
                "deadlock recovery, link flaps",
                "robustness study; extends Table 1 / Fig 9 to runtime faults");

  const std::vector<double> drops =
      cli.quick ? std::vector<double>{0.0, 0.1}
                : std::vector<double>{0.0, 0.02, 0.1, 0.3};
  const sim::TimePs dur = cli.quick ? sim::ms(4) : sim::ms(8);
  const std::uint64_t base = cli.seed;
  const std::vector<MechSpec>& mechs = mech::all_mechanisms();

  exp::Campaign campaign;
  campaign.name = "fault_sweep";
  campaign.seed = cli.seed;

  // --- group 1: control-frame loss sweep ---------------------------------
  std::uint64_t trial_no = 0;
  for (int topo_i = 0; topo_i < 2; ++topo_i) {
    const bool ring = topo_i == 1;
    const char* tname = ring ? "ring" : "incast";
    for (std::size_t mi = 0; mi < kLossMechs; ++mi) {
      const MechSpec& m = mechs[mi];
      for (double drop : drops) {
        exp::ParamSet p;
        p.set("group", "loss");
        p.set("topo", tname);
        p.set("mechanism", m.name);
        p.set("drop", drop);
        const std::uint64_t fault_seed = 1 + base + 13 * trial_no++;
        char dbuf[32];
        std::snprintf(dbuf, sizeof(dbuf), "%g", drop);
        const std::string name =
            "loss/" + std::string(tname) + "/" + m.name + "/drop" + dbuf;
        campaign.add(name, std::move(p),
                     [ring, m, drop, fault_seed, base, dur, cli, name] {
                       return run_loss_trial(ring, m, drop, fault_seed, base,
                                             dur, cli, name);
                     });
      }
    }
  }

  // --- group 2: deadlock recovery on the ring ----------------------------
  for (const MechSpec& m : {mechs[0], mechs[2]}) {  // bare PFC, bare CBFC
    exp::ParamSet p;
    p.set("group", "recovery");
    p.set("topo", "ring");
    p.set("mechanism", m.name);
    const std::string name = "recovery/ring/" + std::string(m.name);
    campaign.add(name, std::move(p), [m, base, dur, cli, name] {
      return run_recovery_trial(m, base, dur, cli, name);
    });
  }

  // --- group 3: mid-run link flap on a fat-tree --------------------------
  for (const MechSpec& m : {mechs[1], mechs[4]}) {  // PFC+expiry, GFC-buffer
    exp::ParamSet p;
    p.set("group", "flap");
    p.set("topo", "fattree-k4");
    p.set("mechanism", m.name);
    const std::string name = "flap/fattree-k4/" + std::string(m.name);
    campaign.add(name, std::move(p), [m, base, dur, cli, name] {
      return run_flap_trial(m, base, dur, cli, name);
    });
  }

  // --- group 4: mechanism x scenario matrix ------------------------------
  for (int topo_i = 0; topo_i < 2; ++topo_i) {
    const bool ring = topo_i == 0;
    const char* tname = ring ? "ring" : "incast";
    for (const MechSpec& m : mechs) {
      exp::ParamSet p;
      p.set("group", "matrix");
      p.set("topo", tname);
      p.set("mechanism", m.name);
      const std::string name = "matrix/" + std::string(tname) + "/" + m.name;
      campaign.add(name, std::move(p), [ring, m, base, dur, cli, name] {
        return run_matrix_trial(ring, m, base, dur, cli, name);
      });
    }
  }

  const exp::CampaignResult result = exp::run_campaign_cli(campaign, cli);

  // --- report -------------------------------------------------------------
  std::printf("\n(1) goodput under unblock-frame loss (RESUME / credit / "
              "rate feedback)\n    [Gb/s: per-host avg | worst sender tail]\n");
  for (int topo_i = 0; topo_i < 2; ++topo_i) {
    const char* tname = topo_i == 1 ? "ring" : "incast";
    std::printf("\n  %s:\n  %-12s", tname, "mechanism");
    for (double d : drops) {
      char lbl[16];
      std::snprintf(lbl, sizeof(lbl), "p=%.2f", d);
      std::printf("%16s", lbl);
    }
    std::printf("\n");
    for (std::size_t mi = 0; mi < kLossMechs; ++mi) {
      const MechSpec& m = mechs[mi];
      std::printf("  %-12s", m.name.c_str());
      for (double d : drops) {
        char dbuf[32];
        std::snprintf(dbuf, sizeof(dbuf), "%g", d);
        const exp::TrialRecord* t = result.find(
            "loss/" + std::string(tname) + "/" + m.name + "/drop" + dbuf);
        if (!t || !t->ok()) {
          std::printf("  %18s", "FAILED");
          continue;
        }
        std::printf("  %6.2f | %4.2f%s", t->metrics.find("gbps")->as_double(),
                    t->metrics.find("min_tail_gbps")->as_double(),
                    t->metrics.find("deadlocked")->as_bool() ? "*" : " ");
      }
      std::printf("\n");
    }
  }
  std::printf("  (* = deadlock latched; worst-sender tail ~ 0.00 with no * "
              "= a sender wedged\n   by a lost unblock frame)\n");

  std::printf("\n(2) deadlock recovery (ring, organic deadlock, drain-and-"
              "reset)\n  %-12s %10s %10s %16s %10s\n", "mechanism",
              "detections", "recoveries", "dropped_packets", "tail_gbps");
  for (const MechSpec& m : {mechs[0], mechs[2]}) {
    const exp::TrialRecord* t =
        result.find("recovery/ring/" + std::string(m.name));
    if (!t || !t->ok()) continue;
    std::printf("  %-12s %10lld %10lld %16lld %10.2f\n", m.name.c_str(),
                static_cast<long long>(t->metrics.find("detections")->as_int()),
                static_cast<long long>(t->metrics.find("recoveries")->as_int()),
                static_cast<long long>(
                    t->metrics.find("recovered_packets")->as_int()),
                t->metrics.find("tail_gbps")->as_double());
  }

  std::printf("\n(3) mid-run link flap (fat-tree k=4, closed loop)\n"
              "  %-12s %8s %10s %10s %10s %6s %9s %13s\n", "mechanism", "gbps",
              "completed", "wire_lost", "rerouted*", "flaps", "verdicts",
              "final_verdict");
  for (const MechSpec& m : {mechs[1], mechs[4]}) {
    const exp::TrialRecord* t =
        result.find("flap/fattree-k4/" + std::string(m.name));
    if (!t || !t->ok()) continue;
    std::printf(
        "  %-12s %8.2f %10lld %10lld %10lld %3d/%-2d %9lld %13s\n",
        m.name.c_str(), t->metrics.find("gbps")->as_double(),
        static_cast<long long>(t->metrics.find("flows_completed")->as_int()),
        static_cast<long long>(t->metrics.find("wire_lost")->as_int()),
        static_cast<long long>(t->metrics.find("failover_drops")->as_int()),
        static_cast<int>(t->metrics.find("downs")->as_int()),
        static_cast<int>(t->metrics.find("ups")->as_int()),
        static_cast<long long>(
            t->metrics.find("analyze_reverdicts")->as_int()),
        t->metrics.find("analyze_verdict")->as_string().c_str());
  }
  std::printf("  (* failover_drops: stranded behind the dead egress with no "
              "alternative route;\n   verdicts = static re-analyses issued by "
              "install_routing: 1 initial + 1 per\n   flap transition, each "
              "cross-checked against runtime deadlock witnesses)\n");

  std::printf("\n(4) mechanism x scenario matrix (no faults; prevention vs "
              "detection vs avoidance)\n");
  for (int topo_i = 0; topo_i < 2; ++topo_i) {
    const bool ring = topo_i == 0;
    std::printf("\n  %s:\n  %-15s %5s %6s %6s %6s %9s %9s %6s %8s %8s\n",
                ring ? "ring (CBD-prone)" : "incast (cycle-free)", "mechanism",
                "dead", "gbps", "tail", "viol", "detects", "lat_us", "drops",
                "headroom", "stretch");
    for (const MechSpec& m : mechs) {
      const exp::TrialRecord* t = result.find(
          "matrix/" + std::string(ring ? "ring" : "incast") + "/" + m.name);
      if (!t || !t->ok()) {
        std::printf("  %-15s %s\n", m.name.c_str(), "FAILED");
        continue;
      }
      const double lat = t->metrics.find("detect_latency_us")->as_double();
      char latbuf[16];
      if (lat >= 0)
        std::snprintf(latbuf, sizeof(latbuf), "%.1f", lat);
      else
        std::snprintf(latbuf, sizeof(latbuf), "-");
      std::printf(
          "  %-15s %5s %6.2f %6.2f %6lld %9lld %9s %6lld %8lld %8.2f\n",
          m.name.c_str(),
          t->metrics.find("deadlocked")->as_bool() ? "YES" : "no",
          t->metrics.find("gbps")->as_double(),
          t->metrics.find("tail_gbps")->as_double(),
          static_cast<long long>(t->metrics.find("violations")->as_int()),
          static_cast<long long>(
              t->metrics.find("mech_detections")->as_int()),
          latbuf,
          static_cast<long long>(t->metrics.find("mech_sacrificed")->as_int()),
          static_cast<long long>(t->metrics.find("headroom_bytes")->as_int()),
          t->metrics.find("stretch_avg")->as_double());
    }
  }
  std::printf("  (dead = ground-truth detector latched; detects/lat_us/drops "
              "= DCFIT in-band\n   accounting; headroom = buffer - XOFF for "
              "the PFC family; stretch = avg path\n   stretch under CBD-free "
              "routing)\n");

  std::printf("\nExpected shape: bare PFC's tail goodput collapses once "
              "RESUMEs are lost; the\nself-healing variants and both GFC "
              "mechanisms keep delivering at every loss rate.\nIn the matrix, "
              "the ring wedges PFC/CBFC forever, DCFIT detects in-band and\n"
              "keeps traffic moving at a packet cost, CBD-routing and GFC "
              "never deadlock.\n");

  return exp::finish_cli(cli, result);
}
