// Figure 5: 2-to-1 congestion — evolutions of ingress queue length and
// input rate under PFC vs conceptual GFC.
// Parameters (Sec 4.1): C = 10G, tau = 25 us, B_m = 100 KB, B_0 = 50 KB,
// XOFF = 80 KB, XON = 77 KB. Expected: PFC oscillates between XON/XOFF
// with the rate flapping 0 <-> 10G; GFC converges to B_s = 75 KB at 5 Gb/s.
#include "bench_common.hpp"

using namespace gfc;
using namespace gfc::runner;

namespace {

struct Trace {
  stats::TimeSeries queue_kb;
  stats::TimeSeries rate_gbps;
};

Trace run(const FcSetup& fc, analyze::PreflightMode preflight) {
  ScenarioConfig cfg;
  cfg.preflight = preflight;
  cfg.switch_buffer = 110'000;
  cfg.arch = net::SwitchArch::kCioqRoundRobin;
  cfg.control_delay = sim::us(25) - 2 * sim::tx_time(sim::gbps(10), 1500) -
                      2 * sim::us(1);
  cfg.fc = fc;
  IncastScenario s = make_incast(cfg, 2);
  net::Network& net = s.fabric->net();
  Trace t;
  stats::ThroughputSampler tx_rate(net, sim::us(25),
                                   stats::ThroughputSampler::Key::kPerSrcHost);
  stats::PeriodicProbe probe(net.sched(), sim::us(25), [&](sim::TimePs now) {
    t.queue_kb.add(now, static_cast<double>(s.fabric->ingress_queue_bytes(
                            s.info.sw, s.info.senders[0])) /
                            1000.0);
    // Instantaneous input rate: delivered bytes of sender 0 per bin.
    const auto series = tx_rate.series_gbps(s.info.senders[0]);
    t.rate_gbps.add(now, series.size() >= 2 ? series[series.size() - 2] : 0.0);
  });
  net.run_until(sim::ms(3));
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::CliOptions cli = exp::parse_cli(argc, argv);
  bench::header("Figure 5: queue & input-rate evolution, 2-to-1 incast",
                "Fig. 5(a) PFC vs Fig. 5(b) conceptual GFC");
  const Trace pfc = run(FcSetup::pfc(80'000, 77'000), cli.preflight);
  const Trace gfc = run(FcSetup::gfc_conceptual(50'000, 100'000), cli.preflight);

  std::printf("\n--- PFC (XOFF 80 KB / XON 77 KB) ---\n");
  bench::print_series("queue_KB", "KB", pfc.queue_kb, 4);
  std::printf("\n--- conceptual GFC (B0 50 KB, Bm 100 KB) ---\n");
  bench::print_series("queue_KB", "KB", gfc.queue_kb, 4);

  std::printf("\nSummary (paper: PFC oscillates near XON/XOFF; GFC steady at "
              "B_s = 75 KB):\n");
  std::printf("  PFC  queue mean(2..3ms) = %6.1f KB (oscillating)\n",
              pfc.queue_kb.mean(sim::ms(2), sim::ms(3)));
  std::printf("  GFC  queue mean(2..3ms) = %6.1f KB (steady, B_s = 75)\n",
              gfc.queue_kb.mean(sim::ms(2), sim::ms(3)));
  return 0;
}
