// Figure 9: the 3-switch deadlock ring with the *testbed* parameters —
// PFC vs buffer-based GFC. Buffer 1 MB, tau = 90 us (software switches),
// XOFF 800 KB / XON 797 KB, B1 = 750 KB.
// Expected shape: PFC fills the queue and freezes (deadlock, rate pinned
// 0); buffer-based GFC overshoots transiently, then holds the queue
// steady with the input rate at 5 Gb/s.
// With --trace, both runs export Chrome-JSON + CSV traces and the PFC run
// (which deadlocks) dumps the flight-recorder pre-stall windows — the
// PAUSE events forming the witness cycle — to fig09_pfc.flight.txt.
#include "bench_common.hpp"

using namespace gfc;
using namespace gfc::runner;

int main(int argc, char** argv) {
  const exp::CliOptions cli = exp::parse_cli(argc, argv);
  bench::header("Figure 9: ring under PFC vs buffer-based GFC",
                "Fig. 9(a)/(b), Sec 6.1 testbed parameters");
  ScenarioConfig cfg;
  cfg.preflight = cli.preflight;
  cfg.switch_buffer = 1'000'000;
  cfg.control_delay =
      sim::us(90) - 2 * sim::tx_time(sim::gbps(10), 1500) - 2 * sim::us(1);
  cfg.trace = cli.trace_options();

  // PFC on the arrival-order (output-queued) switch: the deadlock fabric.
  cfg.arch = net::SwitchArch::kOutputQueuedFifo;
  cfg.fc = FcSetup::pfc(800'000, 797'000);
  const bench::TraceArtifacts pfc_art =
      bench::trace_artifacts_for(cli, "fig09_pfc");
  const bench::RingTrace pfc = bench::trace_ring(cfg, sim::ms(40), sim::us(100),
                                                 &pfc_art);

  // GFC on the fair crossbar: the paper's steady-state numbers.
  cfg.arch = net::SwitchArch::kCioqRoundRobin;
  cfg.fc = FcSetup::gfc_buffer(750'000, 1'000'000);
  const bench::TraceArtifacts gfc_art =
      bench::trace_artifacts_for(cli, "fig09_gfc_buffer");
  const bench::RingTrace gfc = bench::trace_ring(cfg, sim::ms(40), sim::us(100),
                                                 &gfc_art);

  std::printf("\n--- PFC (XOFF 800/XON 797 KB): H1-port queue ---\n");
  bench::print_series("queue_KB", "KB", pfc.queue_kb, 20);
  std::printf("\n--- buffer-based GFC (B1 750 KB): H1-port queue ---\n");
  bench::print_series("queue_KB", "KB", gfc.queue_kb, 20);

  std::printf("\nSummary (paper: PFC deadlocks; GFC transient ~884 KB then "
              "steady ~840 KB at 5 Gb/s):\n");
  bench::print_ring_summary("PFC", pfc);
  bench::print_ring_summary("GFC-buffer", gfc);
  std::printf("  GFC queue peak = %.1f KB, steady mean(30..40ms) = %.1f KB\n",
              gfc.queue_kb.max(), gfc.queue_kb.mean(sim::ms(30), sim::ms(40)));
  return 0;
}
