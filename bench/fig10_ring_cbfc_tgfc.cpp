// Figure 10: the same testbed ring — CBFC vs time-based GFC.
// CBFC: feedback period 52.4 us. Time-based GFC: B0 = 492 KB.
// Expected shape: CBFC deadlocks; time-based GFC stabilizes the queue at
// ~745 KB with the input rate at 5 Gb/s (smoother than buffer-based).
#include "bench_common.hpp"

using namespace gfc;
using namespace gfc::runner;

int main(int argc, char** argv) {
  const exp::CliOptions cli = exp::parse_cli(argc, argv);
  bench::header("Figure 10: ring under CBFC vs time-based GFC",
                "Fig. 10(a)/(b), Sec 6.1 testbed parameters");
  ScenarioConfig cfg;
  cfg.preflight = cli.preflight;
  cfg.switch_buffer = 1'000'000;
  cfg.control_delay =
      sim::us(90) - 2 * sim::tx_time(sim::gbps(10), 1500) - 2 * sim::us(1);

  cfg.arch = net::SwitchArch::kOutputQueuedFifo;
  cfg.fc = FcSetup::cbfc(sim::us(52.4));
  const bench::RingTrace cbfc = bench::trace_ring(cfg, sim::ms(40));

  cfg.arch = net::SwitchArch::kCioqRoundRobin;
  cfg.fc = FcSetup::gfc_time(492'000, 1'000'000, sim::us(52.4));
  const bench::RingTrace gfc = bench::trace_ring(cfg, sim::ms(40));

  std::printf("\n--- CBFC (T = 52.4 us): H1-port queue ---\n");
  bench::print_series("queue_KB", "KB", cbfc.queue_kb, 20);
  std::printf("\n--- time-based GFC (B0 = 492 KB): H1-port queue ---\n");
  bench::print_series("queue_KB", "KB", gfc.queue_kb, 20);

  std::printf("\nSummary (paper: CBFC deadlocks; time-based GFC steady at "
              "745 KB / 5 Gb/s):\n");
  bench::print_ring_summary("CBFC", cbfc);
  bench::print_ring_summary("GFC-time", gfc);
  std::printf("  GFC-time queue steady mean(30..40ms) = %.1f KB (paper: 745)\n",
              gfc.queue_kb.mean(sim::ms(30), sim::ms(40)));
  return 0;
}
