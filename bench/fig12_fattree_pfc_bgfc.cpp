// Figure 12: fat-tree (k=4) with three failed links — per-flow throughput
// under PFC vs buffer-based GFC. The failure set and flow paths come from
// a deterministic search for a Figure-11-style case: the four paper flows
// (H0->H8, H4->H12, H9->H1, H13->H5) must form a >=4-hop agg/core CBD
// with every cycle link oversubscribed.
// Paper parameters: buffer 300 KB, 10G links, 1 us propagation,
// XOFF 280 / XON 277 KB, B1 = 281 KB.
#include "bench_common.hpp"

using namespace gfc;
using namespace gfc::runner;

namespace {

struct CaseRun {
  std::vector<stats::TimeSeries> flow_gbps;
  bool deadlocked = false;
  sim::TimePs deadlock_at = -1;
};

CaseRun run(const topo::Fig11Case& c, const FcSetup& fc, net::SwitchArch arch,
            sim::TimePs duration, analyze::PreflightMode preflight) {
  ScenarioConfig cfg;
  cfg.preflight = preflight;
  cfg.switch_buffer = 300'000;
  cfg.arch = arch;
  cfg.fc = fc;
  auto s = make_fattree(cfg, 4, c.failed_links);
  net::Network& net = s.fabric->net();
  std::vector<net::FlowId> flows;
  for (std::size_t f = 0; f < c.flows.size(); ++f) {
    net::Flow& flow = net.create_flow(c.flows[f].first, c.flows[f].second, 0,
                                      net::Flow::kUnbounded, 0);
    flow.path_salt = c.salts[f];
    flows.push_back(flow.id);
  }
  stats::ThroughputSampler tp(net, sim::us(100),
                              stats::ThroughputSampler::Key::kPerFlow);
  stats::DeadlockDetector det(net);
  CaseRun out;
  out.flow_gbps.resize(flows.size());
  stats::PeriodicProbe probe(net.sched(), sim::us(200), [&](sim::TimePs now) {
    for (std::size_t f = 0; f < flows.size(); ++f)
      out.flow_gbps[f].add(
          now, tp.average_gbps(flows[f], now - sim::us(200), now));
  });
  net.run_until(duration);
  out.deadlocked = det.deadlocked();
  out.deadlock_at = det.detected_at();
  return out;
}

void report(const char* label, const CaseRun& r,
            sim::TimePs duration) {
  std::printf("\n--- %s ---\n", label);
  std::printf("deadlock: %s%s\n", r.deadlocked ? "YES " : "no",
              r.deadlocked ? sim::format_time(r.deadlock_at).c_str() : "");
  static const char* kFlowNames[] = {"F1 H0->H8", "F2 H4->H12", "F3 H9->H1",
                                     "F4 H13->H5"};
  for (std::size_t f = 0; f < r.flow_gbps.size(); ++f)
    std::printf("  %-11s tail throughput = %5.2f Gb/s\n", kFlowNames[f],
                r.flow_gbps[f].mean(duration * 3 / 4, duration));
}

}  // namespace

int main(int argc, char** argv) {
  const exp::CliOptions cli = exp::parse_cli(argc, argv);
  bench::header("Figure 12: fat-tree case study, PFC vs buffer-based GFC",
                "Fig. 11/12, Sec 6.2.2");
  // --quick: 6 ms instead of 20 (deadlock strikes by ~3 ms; see
  // EXPERIMENTS.md) so CI can smoke-run the full pipeline.
  const sim::TimePs duration = cli.quick ? sim::ms(6) : sim::ms(20);
  topo::Topology t;
  const auto ft = topo::build_fattree(t, 4);
  const auto cases = topo::find_fig11_cases(t, ft, 1);
  if (cases.empty()) {
    std::printf("no qualifying 3-failure case found\n");
    return 1;
  }
  const auto& c = cases.front();
  std::printf("failed links:");
  for (auto l : c.failed_links)
    std::printf(" %s-%s", t.node(t.link(l).a).name.c_str(),
                t.node(t.link(l).b).name.c_str());
  std::printf("\nCBD cycle:");
  for (const auto& [a, b] : c.cbd.cycle)
    std::printf(" %s->%s", t.node(a).name.c_str(), t.node(b).name.c_str());
  std::printf("\n");

  const CaseRun pfc = run(c, FcSetup::pfc(280'000, 277'000),
                          net::SwitchArch::kOutputQueuedFifo, duration,
                          cli.preflight);
  report("PFC (arrival-order switches)", pfc, duration);

  const CaseRun gfc = run(c, FcSetup::gfc_buffer(281'000, 300'000),
                          net::SwitchArch::kCioqRoundRobin, duration,
                          cli.preflight);
  report("buffer-based GFC (fair crossbar)", gfc, duration);

  std::printf("\nPaper shape: PFC flows all collapse to 0 (deadlock); GFC "
              "flows each hold their 5 Gb/s share.\n");
  return 0;
}
