// Figure 14: the victim flow. F5 shares the upstream path of a CBD flow
// but never enters the cycle. Under PFC/CBFC the deadlock's pause
// propagation starves it to zero; under GFC it keeps its share.
#include "bench_common.hpp"

using namespace gfc;
using namespace gfc::runner;

namespace {

double run_victim(const topo::Fig11Case& c, const topo::Topology&,
                  const topo::FatTreeInfo& ft, FcKind kind,
                  net::SwitchArch arch, bool* deadlocked,
                  analyze::PreflightMode preflight) {
  ScenarioConfig cfg;
  cfg.preflight = preflight;
  cfg.switch_buffer = 300'000;
  cfg.arch = arch;
  cfg.fc = FcSetup::derive(kind, cfg.switch_buffer, cfg.link.rate, cfg.tau());
  auto s = make_fattree(cfg, 4, c.failed_links);
  net::Network& net = s.fabric->net();
  for (std::size_t f = 0; f < c.flows.size(); ++f) {
    net::Flow& flow = net.create_flow(c.flows[f].first, c.flows[f].second, 0,
                                      net::Flow::kUnbounded, 0);
    flow.path_salt = c.salts[f];
  }
  // Victim: same source rack as F1, destination in F1's destination rack.
  topo::NodeIndex vsrc = -1, vdst = -1;
  for (topo::NodeIndex h : ft.hosts) {
    if (h != c.flows[0].first &&
        s.topo.rack_of(h) == s.topo.rack_of(c.flows[0].first))
      vsrc = h;
    if (h != c.flows[0].second &&
        s.topo.rack_of(h) == s.topo.rack_of(c.flows[0].second))
      vdst = h;
  }
  net::Flow& vf = net.create_flow(vsrc, vdst, 0, net::Flow::kUnbounded, 0);
  vf.path_salt = c.salts[0];
  stats::ThroughputSampler tp(net, sim::us(100),
                              stats::ThroughputSampler::Key::kPerFlow);
  stats::DeadlockDetector det(net);
  net.run_until(sim::ms(20));
  *deadlocked = det.deadlocked();
  return tp.average_gbps(vf.id, sim::ms(15), sim::ms(20));
}

}  // namespace

int main(int argc, char** argv) {
  const exp::CliOptions cli = exp::parse_cli(argc, argv);
  bench::header("Figure 14: victim-flow throughput", "Fig. 14(a)/(b)");
  topo::Topology t;
  const auto ft = topo::build_fattree(t, 4);
  const auto cases = topo::find_fig11_cases(t, ft, 1);
  if (cases.empty()) return 1;
  const auto& c = cases.front();

  struct Row {
    const char* label;
    FcKind kind;
    net::SwitchArch arch;
  };
  const Row rows[] = {
      {"PFC", FcKind::kPfc, net::SwitchArch::kOutputQueuedFifo},
      {"CBFC", FcKind::kCbfc, net::SwitchArch::kOutputQueuedFifo},
      {"GFC-buffer", FcKind::kGfcBuffer, net::SwitchArch::kCioqRoundRobin},
      {"GFC-time", FcKind::kGfcTime, net::SwitchArch::kCioqRoundRobin},
  };
  std::printf("%-12s %-10s %s\n", "mechanism", "deadlock", "victim tail Gb/s");
  for (const Row& r : rows) {
    bool dead = false;
    const double v = run_victim(c, t, ft, r.kind, r.arch, &dead, cli.preflight);
    std::printf("%-12s %-10s %6.2f\n", r.label, dead ? "YES" : "no", v);
  }
  std::printf("\nPaper shape: victim -> 0 under PFC/CBFC (pause propagation), "
              "a healthy fair share under GFC.\n");
  return 0;
}
