// Figures 16 & 17: overall performance with the empirical closed-loop
// workload. (a) CBD-free random scenarios: all four mechanisms deliver
// similar average available bandwidth and slowdown — GFC introduces no
// side effects. (b) deadlock-prone scenarios: PFC/CBFC collapse to zero
// bandwidth / unbounded FCT once deadlock strikes, GFC keeps working.
//
// Runs as an exp:: campaign: a cheap topology-only scan enumerates the
// qualifying seeds, then every (mechanism, seed) simulation is an
// independent trial on the worker pool (--jobs N). Printed numbers are
// identical to the historical sequential loop for any job count.
#include "bench_common.hpp"
#include "exp/cli.hpp"
#include "exp/worker_pool.hpp"

using namespace gfc;
using namespace gfc::runner;

namespace {

struct Agg {
  double bw_sum = 0, sd_sum = 0;
  int n = 0, deadlocks = 0;
  void add(bool deadlocked, double bw, double sd) {
    if (!deadlocked) {
      bw_sum += bw;
      sd_sum += sd;
      ++n;
    } else {
      ++deadlocks;
    }
  }
};

/// First `want` seeds in [1, 400) whose random 5%-failure fat-tree is
/// CBD-free (the part-(a) population; mechanism-independent).
std::vector<std::uint64_t> scan_cbd_free_seeds(int k, int want) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t seed = 1;
       static_cast<int>(out.size()) < want && seed < 400; ++seed) {
    topo::Topology t;
    topo::build_fattree(t, k);
    sim::Rng rng(seed);
    topo::random_failures(t, rng, 0.05);
    if (!topo::cbd_prone(t, topo::compute_shortest_paths(t))) out.push_back(seed);
  }
  return out;
}

/// Part-(b) population: seeds whose failure set is CBD-prone *and* whose
/// directed stress probe realizes the full cyclic flow combination.
struct ProneCase {
  std::uint64_t seed;
  std::vector<topo::LinkIndex> failed;
  std::vector<topo::CbdStress::FlowSpec> stress_flows;
};
std::vector<ProneCase> scan_prone_cases(int k, std::uint64_t max_seed) {
  std::vector<ProneCase> out;
  for (std::uint64_t seed = 1; seed <= max_seed; ++seed) {
    topo::Topology t;
    topo::build_fattree(t, k);
    sim::Rng rng(seed * 7919 + static_cast<std::uint64_t>(k));
    auto failed = topo::random_failures(t, rng, 0.05);
    const auto routing = topo::compute_shortest_paths(t);
    topo::BufferDependencyGraph g(t);
    g.add_routing_closure(routing);
    const auto cbd = g.find_cycle();
    if (!cbd.has_cbd) continue;
    auto stress = topo::build_cbd_stress(t, routing, cbd.cycle, rng);
    if (!stress.covered) continue;
    out.push_back({seed, std::move(failed), std::move(stress.flows)});
  }
  return out;
}

// Every trial's fabric honors the binary-wide --analyze mode (a kFail
// verdict surfaces as a failed trial through the worker pool).
analyze::PreflightMode g_preflight = analyze::PreflightMode::kOff;
// Every trial's fabric honors the binary-wide --shards count (src/par).
int g_shards = 1;
// --cbd-free-routing: every scenario swaps shortest paths for the
// up*/down* tables (with --analyze=fail, pre-flight then proves the
// restriction removed the cycles on part (b)'s prone topologies too).
bool g_cbd_free = false;

ScenarioConfig config_for(FcKind kind) {
  ScenarioConfig cfg;
  cfg.preflight = g_preflight;
  cfg.shards = g_shards;
  cfg.switch_buffer = 300'000;
  cfg.fc = FcSetup::derive(kind, cfg.switch_buffer, cfg.link.rate, cfg.tau());
  cfg.fc.cbd_free_routing = g_cbd_free;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::CliOptions cli = exp::parse_cli(argc, argv);
  g_preflight = cli.preflight;
  g_shards = cli.sim_shards;
  g_cbd_free = cli.cbd_free_routing;
  bench::header("Figures 16/17: average available bandwidth and slowdown",
                "Fig. 16(a)/(b), Fig. 17(a)/(b), Sec 6.2.3");
  const int kCbdFreeCases = cli.quick ? 6 : 14;
  const int k = 4;
  const FcKind kinds[4] = {FcKind::kPfc, FcKind::kCbfc, FcKind::kGfcBuffer,
                           FcKind::kGfcTime};
  const char* names[4] = {"PFC", "CBFC", "GFC-buffer", "GFC-time"};

  const auto free_seeds = scan_cbd_free_seeds(k, kCbdFreeCases);
  const auto prone = scan_prone_cases(k, cli.quick ? 40u : 160u);

  exp::Campaign campaign;
  campaign.name = "fig16_17_overall";
  campaign.seed = cli.seed;

  // --- (a) CBD-free cases: closed-loop workload for every mechanism ------
  for (int m = 0; m < 4; ++m) {
    for (std::uint64_t seed : free_seeds) {
      exp::ParamSet p;
      p.set("part", "a");
      p.set("mechanism", names[m]);
      p.set("seed", seed);
      const FcKind kind = kinds[m];
      const std::uint64_t base = cli.seed;
      campaign.add("a/" + std::string(names[m]) + "/seed" + std::to_string(seed),
                   std::move(p), [kind, k, seed, base] {
                     auto s = make_random_fattree(config_for(kind), k, 0.05, seed);
                     RunOptions opts;
                     opts.duration = sim::ms(12);
                     opts.workload_seed = 1000 + seed + base;
                     const RunSummary r = run_closed_loop(s, opts);
                     return exp::TrialResult()
                         .add("deadlocked", r.deadlocked)
                         .add("per_host_gbps", r.per_host_gbps)
                         .add("mean_slowdown", r.mean_slowdown);
                   });
    }
  }

  // --- (b) deadlock-prone cases ------------------------------------------
  // The baselines get the CBD stress probe (the flow combination the
  // paper's repeats hunt for); once it locks, throughput is zero forever.
  // GFC runs the same deadlock-prone topologies with the organic
  // closed-loop workload: combinations come and go, nothing locks, and the
  // long-run average matches the CBD-free numbers (the paper's Fig 16(b)).
  for (int m = 0; m < 4; ++m) {
    const bool is_gfc =
        kinds[m] == FcKind::kGfcBuffer || kinds[m] == FcKind::kGfcTime;
    for (const ProneCase& c : prone) {
      exp::ParamSet p;
      p.set("part", "b");
      p.set("mechanism", names[m]);
      p.set("seed", c.seed);
      const FcKind kind = kinds[m];
      const std::uint64_t base = cli.seed;
      auto run_gfc = [kind, k, c, base] {
        auto s = make_fattree(config_for(kind), k, c.failed);
        RunOptions opts;
        opts.duration = sim::ms(12);
        opts.workload_seed = 77 + c.seed + base;
        const RunSummary r = run_closed_loop(s, opts);
        return exp::TrialResult()
            .add("deadlocked", r.deadlocked)
            .add("per_host_gbps", r.per_host_gbps);
      };
      auto run_stress = [kind, k, c] {
        auto s = make_fattree(config_for(kind), k, c.failed);
        net::Network& net = s.fabric->net();
        for (const auto& f : c.stress_flows) {
          net::Flow& flow =
              net.create_flow(f.src, f.dst, 0, net::Flow::kUnbounded, 0);
          flow.path_salt = f.salt;
        }
        stats::ThroughputSampler tp(net, sim::us(100));
        stats::DeadlockDetector det(net);
        net.run_until(sim::ms(12));
        const double bw = tp.average_gbps(0, sim::ms(9), sim::ms(12)) /
                          static_cast<double>(s.info.hosts.size());
        return exp::TrialResult()
            .add("deadlocked", det.deadlocked())
            .add("per_host_gbps", bw);
      };
      campaign.add("b/" + std::string(names[m]) + "/seed" +
                       std::to_string(c.seed),
                   std::move(p),
                   is_gfc ? std::function<exp::TrialResult()>(run_gfc)
                          : std::function<exp::TrialResult()>(run_stress));
    }
  }

  const exp::CampaignResult result = exp::run_campaign_cli(campaign, cli);

  // --- report, byte-identical to the historical sequential output --------
  const std::size_t nfree = free_seeds.size();
  std::printf("\n(a) CBD-free random scenarios (k=%d, 5%% failures, "
              "enterprise workload, %d cases x 12 ms)\n",
              k, kCbdFreeCases);
  std::printf("%-12s %18s %14s %9s\n", "mechanism", "avail bw [Gb/s/host]",
              "mean slowdown", "deadlocks");
  for (int m = 0; m < 4; ++m) {
    Agg agg;
    for (std::size_t i = 0; i < nfree; ++i) {
      // Failed / timed-out / shard-skipped trials drop out of the average;
      // finish_cli reports them on stderr and in the exit status.
      if (!result.trials[m * nfree + i].ok()) continue;
      const auto& mt = result.trials[m * nfree + i].metrics;
      agg.add(mt.find("deadlocked")->as_bool(),
              mt.find("per_host_gbps")->as_double(),
              mt.find("mean_slowdown")->as_double());
    }
    std::printf("%-12s %18.2f %14.1f %9d\n", names[m], agg.bw_sum / agg.n,
                agg.sd_sum / agg.n, agg.deadlocks);
  }

  std::printf("\n(b) deadlock-prone scenarios\n");
  std::printf("%-12s %18s %9s\n", "mechanism", "avail bw [Gb/s/host]",
              "deadlocks");
  const std::size_t b_base = 4 * nfree;
  for (int m = 0; m < 4; ++m) {
    const bool is_gfc =
        kinds[m] == FcKind::kGfcBuffer || kinds[m] == FcKind::kGfcTime;
    double bw_sum = 0;
    int n = 0, deadlocks = 0;
    for (std::size_t i = 0; i < prone.size(); ++i) {
      if (!result.trials[b_base + m * prone.size() + i].ok()) continue;
      const auto& mt = result.trials[b_base + m * prone.size() + i].metrics;
      if (mt.find("deadlocked")->as_bool()) ++deadlocks;
      bw_sum += mt.find("per_host_gbps")->as_double();
      ++n;
    }
    std::printf("%-12s %18.2f %9d   (over %d prone cases%s)\n", names[m],
                n > 0 ? bw_sum / n : 0.0, deadlocks, n,
                is_gfc ? ", organic workload" : ", stress probe");
  }
  std::printf("\nPaper shape: (a) all mechanisms similar; (b) PFC/CBFC go to "
              "~0 (deadlock), GFC keeps delivering.\n"
              "Note: under the *sustained* stress probe GFC still never "
              "deadlocks, but crawls at the\nrate floor while the probe "
              "lasts (rates never reach zero; see EXPERIMENTS.md).\n");

  return exp::finish_cli(cli, result);
}
