// Figures 16 & 17: overall performance with the empirical closed-loop
// workload. (a) CBD-free random scenarios: all four mechanisms deliver
// similar average available bandwidth and slowdown — GFC introduces no
// side effects. (b) deadlock-prone scenarios: PFC/CBFC collapse to zero
// bandwidth / unbounded FCT once deadlock strikes, GFC keeps working.
#include "bench_common.hpp"

using namespace gfc;
using namespace gfc::runner;

namespace {

struct Agg {
  double bw_sum = 0, sd_sum = 0;
  int n = 0, deadlocks = 0;
  void add(const RunSummary& r) {
    if (!r.deadlocked) {
      bw_sum += r.per_host_gbps;
      sd_sum += r.mean_slowdown;
      ++n;
    } else {
      ++deadlocks;
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::header("Figures 16/17: average available bandwidth and slowdown",
                "Fig. 16(a)/(b), Fig. 17(a)/(b), Sec 6.2.3");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int kCbdFreeCases = quick ? 6 : 14;
  const int k = 4;
  const FcKind kinds[4] = {FcKind::kPfc, FcKind::kCbfc, FcKind::kGfcBuffer,
                           FcKind::kGfcTime};
  const char* names[4] = {"PFC", "CBFC", "GFC-buffer", "GFC-time"};

  // --- (a) CBD-free cases -------------------------------------------------
  std::printf("\n(a) CBD-free random scenarios (k=%d, 5%% failures, "
              "enterprise workload, %d cases x 12 ms)\n",
              k, kCbdFreeCases);
  std::printf("%-12s %18s %14s %9s\n", "mechanism", "avail bw [Gb/s/host]",
              "mean slowdown", "deadlocks");
  Agg free_agg[4];
  for (int m = 0; m < 4; ++m) {
    int found = 0;
    for (std::uint64_t seed = 1; found < kCbdFreeCases && seed < 400; ++seed) {
      ScenarioConfig cfg;
      cfg.switch_buffer = 300'000;
      cfg.fc = FcSetup::derive(kinds[m], cfg.switch_buffer, cfg.link.rate,
                               cfg.tau());
      auto s = make_random_fattree(cfg, k, 0.05, seed);
      if (s.cbd_prone) continue;
      ++found;
      RunOptions opts;
      opts.duration = sim::ms(12);
      opts.workload_seed = 1000 + seed;
      free_agg[m].add(run_closed_loop(s, opts));
    }
    std::printf("%-12s %18.2f %14.1f %9d\n", names[m],
                free_agg[m].bw_sum / free_agg[m].n,
                free_agg[m].sd_sum / free_agg[m].n, free_agg[m].deadlocks);
  }

  // --- (b) deadlock-prone cases --------------------------------------------
  // The baselines get the CBD stress probe (the flow combination the
  // paper's repeats hunt for); once it locks, throughput is zero forever.
  // GFC runs the same deadlock-prone topologies with the organic
  // closed-loop workload: combinations come and go, nothing locks, and the
  // long-run average matches the CBD-free numbers (the paper's Fig 16(b)).
  std::printf("\n(b) deadlock-prone scenarios\n");
  std::printf("%-12s %18s %9s\n", "mechanism", "avail bw [Gb/s/host]",
              "deadlocks");
  for (int m = 0; m < 4; ++m) {
    const bool is_gfc =
        kinds[m] == FcKind::kGfcBuffer || kinds[m] == FcKind::kGfcTime;
    double bw_sum = 0;
    int n = 0, deadlocks = 0;
    for (std::uint64_t seed = 1; seed <= (quick ? 40u : 160u); ++seed) {
      topo::Topology t;
      topo::build_fattree(t, k);
      sim::Rng rng(seed * 7919 + static_cast<std::uint64_t>(k));
      const auto failed = topo::random_failures(t, rng, 0.05);
      const auto routing = topo::compute_shortest_paths(t);
      topo::BufferDependencyGraph g(t);
      g.add_routing_closure(routing);
      const auto cbd = g.find_cycle();
      if (!cbd.has_cbd) continue;
      const auto stress = topo::build_cbd_stress(t, routing, cbd.cycle, rng);
      if (!stress.covered) continue;
      ScenarioConfig cfg;
      cfg.switch_buffer = 300'000;
      cfg.fc = FcSetup::derive(kinds[m], cfg.switch_buffer, cfg.link.rate,
                               cfg.tau());
      auto s = make_fattree(cfg, k, failed);
      if (is_gfc) {
        RunOptions opts;
        opts.duration = sim::ms(12);
        opts.workload_seed = 77 + seed;
        const RunSummary r = run_closed_loop(s, opts);
        if (r.deadlocked) ++deadlocks;
        bw_sum += r.per_host_gbps;
        ++n;
        continue;
      }
      net::Network& net = s.fabric->net();
      for (const auto& f : stress.flows) {
        net::Flow& flow =
            net.create_flow(f.src, f.dst, 0, net::Flow::kUnbounded, 0);
        flow.path_salt = f.salt;
      }
      stats::ThroughputSampler tp(net, sim::us(100));
      stats::DeadlockDetector det(net);
      net.run_until(sim::ms(12));
      if (det.deadlocked()) ++deadlocks;
      bw_sum += tp.average_gbps(0, sim::ms(9), sim::ms(12)) /
                static_cast<double>(s.info.hosts.size());
      ++n;
    }
    std::printf("%-12s %18.2f %9d   (over %d prone cases%s)\n", names[m],
                n > 0 ? bw_sum / n : 0.0, deadlocks, n,
                is_gfc ? ", organic workload" : ", stress probe");
  }
  std::printf("\nPaper shape: (a) all mechanisms similar; (b) PFC/CBFC go to "
              "~0 (deadlock), GFC keeps delivering.\n"
              "Note: under the *sustained* stress probe GFC still never "
              "deadlocks, but crawls at the\nrate floor while the probe "
              "lasts (rates never reach zero; see EXPERIMENTS.md).\n");
  return 0;
}
