// Figure 18: aggregate throughput evolution in a deadlock-prone scenario.
// Closed-loop background traffic runs from t=0; at t=2 ms the CBD-filling
// flow combination (the paper's Figure-11 case: four inter-pod flows whose
// paths close a 4-hop agg/core cycle) starts. Under PFC the network
// collapses to zero shortly after; under buffer-based GFC the combination
// just takes its fair shares and the network keeps running.
#include "bench_common.hpp"

#include "workload/generator.hpp"

using namespace gfc;
using namespace gfc::runner;

namespace {

stats::TimeSeries run(FcKind kind, net::SwitchArch arch,
                      const topo::Fig11Case& c, bool with_combination,
                      bool* deadlocked, sim::TimePs* at,
                      const bench::TraceArtifacts& art = {},
                      const trace::TraceOptions& topts = {},
                      analyze::PreflightMode preflight =
                          analyze::PreflightMode::kOff) {
  ScenarioConfig cfg;
  cfg.preflight = preflight;
  cfg.switch_buffer = 300'000;
  cfg.arch = arch;
  cfg.fc = FcSetup::derive(kind, cfg.switch_buffer, cfg.link.rate, cfg.tau());
  cfg.trace = topts;
  auto s = make_fattree(cfg, 4, c.failed_links);
  net::Network& net = s.fabric->net();
  // The CBD-filling combination: four long (8 MB) inter-pod flows starting
  // at t = 2 ms. Long enough to hold the cycle through PFC's lock window;
  // finite, so under GFC "once any flow in this combination is finished,
  // the CBD is naturally broken" (Sec 6.2.3) and the network recovers.
  if (with_combination) {
    for (std::size_t f = 0; f < c.flows.size(); ++f) {
      net::Flow& flow = net.create_flow(c.flows[f].first, c.flows[f].second,
                                        0, 8'000'000, sim::ms(2));
      flow.path_salt = c.salts[f];
    }
  }
  std::vector<net::NodeId> hosts;
  std::vector<int> racks;
  for (auto h : s.info.hosts) {
    hosts.push_back(h);
    racks.push_back(s.topo.rack_of(h));
  }
  workload::ClosedLoopGenerator gen(net, hosts, racks,
                                    workload::FlowSizeCdf::enterprise(),
                                    sim::Rng(42));
  gen.start();
  stats::ThroughputSampler tp(net, sim::us(100));
  stats::DeadlockOptions dl_opts;
  bench::arm_flight_dump(&dl_opts, *s.fabric, art.flight_dump);
  stats::DeadlockDetector det(net, dl_opts);
  stats::TimeSeries series;
  stats::PeriodicProbe probe(net.sched(), sim::us(100), [&](sim::TimePs now) {
    series.add(now, tp.average_gbps(0, now - sim::us(100), now));
  });
  net.run_until(sim::ms(50));
  *deadlocked = det.deadlocked();
  *at = det.detected_at();
  bench::export_trace(*s.fabric, art);
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::CliOptions cli = exp::parse_cli(argc, argv);
  bench::header("Figure 18: aggregate throughput evolution", "Fig. 18");
  topo::Topology t;
  const auto ft = topo::build_fattree(t, 4);
  const auto cases = topo::find_fig11_cases(t, ft, 1);
  if (cases.empty()) return 1;
  const auto& c = cases.front();

  // With --trace each run exports its full event trace; the CSV's deliver
  // events regenerate this binary's throughput curves offline (see
  // EXPERIMENTS.md, "Fig 18 from the trace").
  const trace::TraceOptions topts = cli.trace_options();
  bool dead_pfc = false, dead_gfc = false, dead_org = false;
  sim::TimePs at_pfc = -1, at_gfc = -1, at_org = -1;
  const auto pfc = run(FcKind::kPfc, net::SwitchArch::kOutputQueuedFifo, c,
                       true, &dead_pfc, &at_pfc,
                       bench::trace_artifacts_for(cli, "fig18_pfc_comb"), topts,
                       cli.preflight);
  const auto gfc = run(FcKind::kGfcBuffer, net::SwitchArch::kCioqRoundRobin, c,
                       true, &dead_gfc, &at_gfc,
                       bench::trace_artifacts_for(cli, "fig18_gfc_comb"), topts,
                       cli.preflight);
  const auto org = run(FcKind::kGfcBuffer, net::SwitchArch::kCioqRoundRobin, c,
                       false, &dead_org, &at_org,
                       bench::trace_artifacts_for(cli, "fig18_gfc_organic"),
                       topts, cli.preflight);

  std::printf("\n%10s %12s %14s %14s\n", "t_us", "PFC+comb",
              "GFC+comb", "GFC organic");
  for (std::size_t i = 0;
       i < pfc.points.size() && i < gfc.points.size() && i < org.points.size();
       i += 10)
    std::printf("%10.1f %12.2f %14.2f %14.2f\n",
                sim::to_us(pfc.points[i].first), pfc.points[i].second,
                gfc.points[i].second, org.points[i].second);
  std::printf("\nPFC deadlock: %s at %s | GFC deadlock (either workload): "
              "%s/%s\n",
              dead_pfc ? "YES" : "no", sim::format_time(at_pfc).c_str(),
              dead_gfc ? "YES" : "no", dead_org ? "YES" : "no");
  std::printf(
      "Paper shape: PFC collapses to ~0 shortly after the CBD fills (8.5 ms\n"
      "there, ~%.1f ms here) and NEVER recovers. GFC never deadlocks: with\n"
      "the organic workload it holds steady throughout; under the sustained\n"
      "conditioned combination it degrades toward the rate floor while the\n"
      "combination persists (rates stay nonzero; no hold-and-wait).\n",
      sim::to_ms(at_pfc));
  return 0;
}
