// Figure 19: CDF of the bandwidth occupied by buffer-based GFC's feedback
// messages, counted per port every 500 us under the random closed-loop
// workload. Paper: mean 0.21%, 99% of samples < 0.4%, max observed 0.49%.
#include "bench_common.hpp"

#include "stats/feedback.hpp"
#include "workload/generator.hpp"

using namespace gfc;
using namespace gfc::runner;

int main(int argc, char** argv) {
  const exp::CliOptions cli = exp::parse_cli(argc, argv);
  bench::header("Figure 19: occupied bandwidth of GFC feedback messages",
                "Fig. 19, Sec 6.2.3");
  const int kRuns = cli.quick ? 4 : 10;
  stats::CdfBuilder all;
  double mean_sum = 0;
  for (int r = 0; r < kRuns; ++r) {
    ScenarioConfig cfg;
    cfg.preflight = cli.preflight;
    cfg.switch_buffer = 300'000;
    cfg.fc = FcSetup::derive(FcKind::kGfcBuffer, cfg.switch_buffer,
                             cfg.link.rate, cfg.tau());
    // k=8 fat-tree (scaled from the paper's k=16; see EXPERIMENTS.md).
    auto s = make_random_fattree(cfg, 8, 0.05, 100 + static_cast<unsigned>(r));
    net::Network& net = s.fabric->net();
    std::vector<net::NodeId> hosts;
    std::vector<int> racks;
    for (auto h : s.info.hosts) {
      hosts.push_back(h);
      racks.push_back(s.topo.rack_of(h));
    }
    workload::ClosedLoopGenerator gen(net, hosts, racks,
                                      workload::FlowSizeCdf::enterprise(),
                                      sim::Rng(7 + static_cast<unsigned>(r)));
    gen.start();
    stats::FeedbackBandwidthMonitor monitor(net, sim::us(500));
    net.run_until(sim::ms(10));
    mean_sum += monitor.mean_fraction();
    for (const auto& [v, q] : monitor.samples().points(512)) all.add(v);
  }
  std::printf("\nCDF of per-port occupied bandwidth (%% of link capacity):\n");
  std::printf("%12s %10s\n", "occupied_%", "CDF");
  for (const auto& [v, q] : all.points(21))
    std::printf("%12.4f %10.2f\n", v * 100.0, q);
  std::printf("\nmean = %.3f%%   p99 = %.3f%%   max = %.3f%%\n",
              mean_sum / kRuns * 100.0, all.quantile(0.99) * 100.0,
              all.max() * 100.0);
  std::printf("Paper: mean 0.21%%, p99 < 0.4%%, max 0.49%%.\n");
  return 0;
}
