// Figure 20: interaction between GFC and DCQCN on the 8-to-1 dumbbell.
// Monitors (1) the ingress queue of the switch port facing H1, (2) H1's
// DCQCN flow rate, (3) the GFC-programmed rate on H1's output queue.
// Expected: GFC rapidly caps the port at 1.25 Gb/s during the incast
// transient; DCQCN then converges below that and owns the steady state
// (GFC effectively disabled — a safeguard, not a co-controller).
#include "bench_common.hpp"

#include "cc/dcqcn.hpp"

using namespace gfc;
using namespace gfc::runner;

int main(int argc, char** argv) {
  const exp::CliOptions cli = exp::parse_cli(argc, argv);
  bench::header("Figure 20: GFC x DCQCN interaction (8-to-1 incast)",
                "Fig. 20, Sec 7");
  ScenarioConfig cfg;
  cfg.preflight = cli.preflight;
  cfg.switch_buffer = 300'000;
  cfg.arch = net::SwitchArch::kCioqRoundRobin;
  cfg.fc = FcSetup::derive(FcKind::kGfcBuffer, cfg.switch_buffer,
                           cfg.link.rate, cfg.tau());
  cfg.ecn.enabled = true;
  cfg.ecn.kmin = 40'000;
  cfg.ecn.kmax = 40'000;
  auto s = make_incast(cfg, 8);
  net::Network& net = s.fabric->net();
  cc::DcqcnConfig dc;
  dc.alpha_init = 0.5;
  dc.g = 1.0 / 256;
  dc.cnp_interval = sim::us(50);
  dc.alpha_timer = sim::us(55);
  dc.increase_timer = sim::us(55);
  auto dcqcn = std::make_unique<cc::DcqcnModule>(net, dc);
  cc::DcqcnModule* cc_mod = dcqcn.get();
  net.set_cc(std::move(dcqcn));
  for (net::FlowId f : s.flows) cc_mod->on_flow_start(net.flow(f));

  stats::TimeSeries queue_kb, dcqcn_rate, gfc_rate;
  stats::PeriodicProbe probe(net.sched(), sim::us(50), [&](sim::TimePs now) {
    queue_kb.add(now, static_cast<double>(s.fabric->ingress_queue_bytes(
                          s.info.sw, s.info.senders[0])) /
                          1000.0);
    dcqcn_rate.add(now, cc_mod->current_rate(s.flows[0]).gbps());
    gfc_rate.add(now,
                 s.fabric->egress_rate(s.info.senders[0], s.info.sw).gbps());
  });
  net.run_until(sim::ms(8));

  std::printf("\n%10s %12s %12s %12s\n", "t_us", "queue_KB", "DCQCN_Gbps",
              "GFC_Gbps");
  for (std::size_t i = 0; i < queue_kb.points.size(); i += 4)
    std::printf("%10.1f %12.1f %12.3f %12.3f\n",
                sim::to_us(queue_kb.points[i].first),
                queue_kb.points[i].second, dcqcn_rate.points[i].second,
                gfc_rate.points[i].second);

  const double min_gfc = [&] {
    double m = 100;
    for (const auto& [t, v] : gfc_rate.points) m = std::min(m, v);
    return m;
  }();
  std::printf("\nGFC engaged down to %.3f Gb/s during the transient "
              "(paper: 1.25 Gb/s).\n", min_gfc);
  std::printf("Steady state: DCQCN rate %.3f Gb/s < GFC rate %.3f Gb/s "
              "(GFC disabled; paper shape).\n",
              dcqcn_rate.last(), gfc_rate.last());
  std::printf("Lossless violations: %llu\n",
              static_cast<unsigned long long>(
                  net.counters().lossless_violations));
  return 0;
}
