// gfc_sweep: empirical safety-bound sweep over B_m x tau x rate.
//
// Replaces the ad-hoc single-point loop of the old parameter explorer
// with a real campaign: for every (link rate, buffer, wire length) grid
// point and every GFC variant, derive the paper-compliant parameters
// (Theorems 4.1 / 5.1, the B_1 constraint) via FcSetup::try_derive and —
// when the bound leaves a positive threshold — run the Figure-1 ring
// (every link carrying two line-rate flows, the congestion that arms the
// deadlock) and check the theorems' promises empirically: no deadlock, no
// lossless violation, peak ingress occupancy within the buffer. Grid
// points whose buffer is too small for the bound are reported infeasible
// and skipped. Exits nonzero if any feasible point is unsafe.
//
//   ./build/bench/gfc_sweep [--quick] [--jobs N] [--json PATH]
#include "bench_common.hpp"
#include "exp/cli.hpp"
#include "exp/worker_pool.hpp"

using namespace gfc;
using namespace gfc::runner;

namespace {

struct SweepPoint {
  FcKind kind;
  double rate_gbps;
  std::int64_t buffer;
  double wire_m;
};

exp::TrialResult run_point(const SweepPoint& pt, sim::TimePs duration,
                           analyze::PreflightMode preflight, int shards,
                           bool cbd_free) {
  ScenarioConfig cfg;
  cfg.preflight = preflight;
  cfg.shards = shards;
  cfg.link.rate = sim::gbps(pt.rate_gbps);
  cfg.link.prop_delay = sim::ns(pt.wire_m / 0.2);  // ~2e8 m/s on the wire
  cfg.switch_buffer = pt.buffer;
  const sim::TimePs tau = cfg.tau();

  exp::TrialResult out;
  out.add("tau_us", sim::to_us(tau));
  const auto fc = FcSetup::try_derive(pt.kind, pt.buffer, cfg.link.rate, tau);
  out.add("feasible", fc.has_value());
  if (!fc) return out;  // bound <= 0: nothing to simulate
  cfg.fc = *fc;
  cfg.fc.cbd_free_routing = cbd_free;
  out.add("threshold_b", cfg.fc.kind == FcKind::kGfcBuffer ? cfg.fc.b1
                                                           : cfg.fc.b0);

  RingScenario s = make_ring(cfg);
  net::Network& net = s.fabric->net();
  stats::DeadlockDetector det(net);
  std::int64_t peak_queue = 0;
  stats::PeriodicProbe probe(net.sched(), sim::us(50), [&](sim::TimePs) {
    const int n = static_cast<int>(s.info.switches.size());
    for (int i = 0; i < n; ++i) {
      const auto sw = s.info.switches[static_cast<std::size_t>(i)];
      peak_queue = std::max(
          peak_queue, s.fabric->ingress_queue_bytes(
                          sw, s.info.hosts[static_cast<std::size_t>(i)]));
      peak_queue = std::max(
          peak_queue,
          s.fabric->ingress_queue_bytes(
              sw, s.info.switches[static_cast<std::size_t>((i + n - 1) % n)]));
    }
  });
  net.run_until(duration);

  const auto violations = net.counters().lossless_violations;
  const bool safe = !det.deadlocked() && violations == 0 &&
                    peak_queue <= pt.buffer;
  out.add("deadlocked", det.deadlocked());
  out.add("violations", violations);
  out.add("peak_queue_b", peak_queue);
  out.add("safe", safe);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::CliOptions cli = exp::parse_cli(argc, argv);
  bench::header("GFC safety-bound sweep: B_m x tau x rate vs Theorems 4.1/5.1",
                "Theorems 4.1/5.1, Sec 4.2/5.4 bounds");

  const std::vector<exp::Value> rates =
      cli.quick ? std::vector<exp::Value>{10.0, 40.0}
                : std::vector<exp::Value>{10.0, 25.0, 40.0};
  const std::vector<exp::Value> buffers_kb =
      cli.quick ? std::vector<exp::Value>{std::int64_t{100}, std::int64_t{300}}
                : std::vector<exp::Value>{std::int64_t{100}, std::int64_t{200},
                                          std::int64_t{300}};
  const std::vector<exp::Value> wires_m =
      cli.quick ? std::vector<exp::Value>{100.0}
                : std::vector<exp::Value>{5.0, 100.0, 500.0};
  const sim::TimePs duration = cli.quick ? sim::ms(4) : sim::ms(10);

  const FcKind kinds[] = {FcKind::kGfcBuffer, FcKind::kGfcTime,
                          FcKind::kGfcConceptual};

  exp::Grid grid;
  grid.axis("fc", {"GFC-buffer", "GFC-time", "GFC-conceptual"});
  grid.axis("rate_gbps", rates);
  grid.axis("buffer_kb", buffers_kb);
  grid.axis("wire_m", wires_m);

  exp::Campaign campaign;
  campaign.name = "gfc_sweep";
  for (const exp::ParamSet& p : grid.points()) {
    SweepPoint pt;
    const std::string& fc = p.find("fc")->as_string();
    pt.kind = fc == "GFC-buffer" ? kinds[0]
              : fc == "GFC-time" ? kinds[1]
                                 : kinds[2];
    pt.rate_gbps = p.find("rate_gbps")->as_double();
    pt.buffer = p.find("buffer_kb")->as_int() * 1000;
    pt.wire_m = p.find("wire_m")->as_double();
    std::string name = fc + "/" +
                       std::to_string(static_cast<int>(pt.rate_gbps)) + "G/" +
                       std::to_string(pt.buffer / 1000) + "KB/" +
                       std::to_string(static_cast<int>(pt.wire_m)) + "m";
    const analyze::PreflightMode preflight = cli.preflight;
    const int shards = cli.sim_shards;
    const bool cbd_free = cli.cbd_free_routing;
    campaign.add(std::move(name), p,
                 [pt, duration, preflight, shards, cbd_free] {
                   return run_point(pt, duration, preflight, shards, cbd_free);
                 });
  }

  const exp::CampaignResult result = exp::run_campaign_cli(campaign, cli);

  result.print_report();
  int feasible = 0, unsafe = 0, failed = 0;
  for (const auto& t : result.trials) {
    if (!t.ok()) {
      ++failed;
      continue;
    }
    if (!t.metrics.find("feasible")->as_bool()) continue;
    ++feasible;
    if (!t.metrics.find("safe")->as_bool()) ++unsafe;
  }
  std::printf("\n%d grid points: %d feasible, %d unsafe, %d infeasible "
              "(bound <= 0, skipped), %d failed\n",
              static_cast<int>(result.trials.size()), feasible, unsafe,
              static_cast<int>(result.trials.size()) - feasible - failed,
              failed);
  std::printf("Theorems 4.1/5.1 promise: every feasible point runs "
              "deadlock-free, loss-free,\nwith the queue inside the buffer "
              "-- 'unsafe' must be 0.\n");

  const int status = exp::finish_cli(cli, result);
  if (unsafe != 0 || result.failures() > 0) return 1;
  return status;
}
