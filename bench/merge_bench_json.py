#!/usr/bin/env python3
"""Merge one benchmark/campaign JSON output into a tracked BENCH file.

Usage: merge_bench_json.py <bench_file> <label> <commit> <json> [--summary-only]

Two input flavors are auto-detected:

* google-benchmark output (bench/microbench): the tracked file holds a
  list of labeled runs (one per engine/stage), each carrying the
  google-benchmark context and the aggregate benchmark entries, so
  before/after comparisons live side by side in a single reviewable file.
* exp:: campaign output (schema "gfc-campaign-v1", from --json on
  fig16_17_overall / table1_deadlock_cases / fault_sweep / gfc_sweep): the
  tracked file gets the campaign name plus per-trial params/metrics, and —
  when the campaign was written with --timing — the jobs/wall_ms metadata,
  so serial-vs-parallel wall-clock comparisons are recorded next to the
  microbenchmarks. Campaigns whose trials carry a params.mechanism
  (fault_sweep's mechanism x scenario matrix, table1) additionally get a
  deterministic per-mechanism rollup under "by_mechanism". --summary-only
  drops the per-trial list and keeps just the counts + timing + rollup,
  for wall-clock records where the trial data is already tracked
  elsewhere.

Either way, re-running with the same label replaces that run in place.
"""
import json
import sys


def mechanism_summary(trials: list) -> dict | None:
    """Group trials by params.mechanism: per mechanism (sorted), the
    trial/failure counts plus one aggregate per metric (sorted) — a
    true-count for booleans (e.g. how many scenarios deadlocked), a mean
    for numbers — so each mechanism's behavior across the campaign is
    reviewable without scanning the trial list."""
    groups: dict[str, list] = {}
    for t in trials:
        mech = (t.get("params") or {}).get("mechanism")
        if mech is not None:
            groups.setdefault(mech, []).append(t)
    if not groups:
        return None
    out: dict[str, dict] = {}
    for mech in sorted(groups):
        ts = groups[mech]
        summary: dict = {
            "n_trials": len(ts),
            "n_failed": sum(1 for t in ts if t.get("failed")),
        }
        metrics: dict[str, list] = {}
        for t in ts:
            for k, v in (t.get("metrics") or {}).items():
                metrics.setdefault(k, []).append(v)
        for k in sorted(metrics):
            vals = metrics[k]
            if all(isinstance(v, bool) for v in vals):
                summary[k + "_count"] = sum(1 for v in vals if v)
            elif all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in vals):
                summary[k + "_mean"] = round(sum(vals) / len(vals), 6)
        out[mech] = summary
    return out


def campaign_run(label: str, commit: str, raw: dict,
                 summary_only: bool) -> dict:
    trials = raw.get("trials", [])
    run = {
        "label": label,
        "commit": commit,
        "campaign": raw.get("campaign", ""),
        "schema": raw.get("schema"),
        "n_trials": len(trials),
        "n_failed": sum(1 for t in trials if t.get("failed")),
    }
    for key in ("jobs", "wall_ms"):  # present only with --timing
        if key in raw:
            run[key] = raw[key]
    by_mechanism = mechanism_summary(trials)
    if by_mechanism is not None:
        run["by_mechanism"] = by_mechanism
    if not summary_only:
        run["trials"] = trials
    return run


def trace_overhead_summary(benchmarks: list) -> dict | None:
    """BM_TraceOff vs BM_TraceOn (vs the untraced BM_RingSimulationGfc
    baseline): the tracing-disabled path must stay within noise of the
    baseline, and the slowdown ratios make that auditable per run."""
    rates = {
        b["name"]: b["items_per_second"]
        for b in benchmarks
        if b.get("name") in ("BM_RingSimulationGfc", "BM_TraceOff",
                             "BM_TraceOn") and b.get("items_per_second")
    }
    off, on = rates.get("BM_TraceOff"), rates.get("BM_TraceOn")
    if not off or not on:
        return None
    summary = {
        "off_items_per_second": off,
        "on_items_per_second": on,
        "on_vs_off_slowdown": round(off / on, 4),
    }
    base = rates.get("BM_RingSimulationGfc")
    if base:
        summary["off_vs_untraced_baseline"] = round(base / off, 4)
    return summary


def gbench_run(label: str, commit: str, raw: dict) -> dict:
    run = {
        "label": label,
        "commit": commit,
        "date": raw.get("context", {}).get("date", ""),
        "context": {
            k: raw.get("context", {}).get(k)
            for k in ("host_name", "num_cpus", "mhz_per_cpu",
                      "library_build_type")
        },
        # Keep only the per-benchmark aggregates; drop per-iteration noise.
        "benchmarks": [
            {
                k: b[k]
                for k in ("name", "iterations", "real_time", "cpu_time",
                          "time_unit", "items_per_second", "label")
                if k in b
            }
            for b in raw.get("benchmarks", [])
        ],
    }
    overhead = trace_overhead_summary(run["benchmarks"])
    if overhead:
        run["trace_overhead"] = overhead
    return run


def main() -> None:
    bench_file, label, commit, input_json = sys.argv[1:5]
    summary_only = "--summary-only" in sys.argv[5:]

    with open(input_json) as f:
        raw = json.load(f)

    if raw.get("schema") == "gfc-campaign-v1":
        run = campaign_run(label, commit, raw, summary_only)
        default_doc = {"schema": "gfc-campaigns-v1", "runs": []}
    else:
        run = gbench_run(label, commit, raw)
        default_doc = {"schema": "gfc-bench-v1", "benchmark": "microbench",
                       "runs": []}

    try:
        with open(bench_file) as f:
            doc = json.load(f)
    except FileNotFoundError:
        doc = default_doc

    doc["runs"] = [r for r in doc["runs"] if r.get("label") != label] + [run]

    with open(bench_file, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


if __name__ == "__main__":
    main()
