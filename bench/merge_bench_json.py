#!/usr/bin/env python3
"""Merge benchmark/campaign outputs into a tracked BENCH file.

Usage: merge_bench_json.py <bench_file> <label> <commit> <input> [<input>...]
           [--summary-only]

Three input flavors are auto-detected:

* google-benchmark output (bench/microbench): the tracked file holds a
  list of labeled runs (one per engine/stage), each carrying the
  google-benchmark context and the aggregate benchmark entries, so
  before/after comparisons live side by side in a single reviewable file.
* exp:: campaign output (schema "gfc-campaign-v1", from --json on
  fig16_17_overall / table1_deadlock_cases / fault_sweep / gfc_sweep): the
  tracked file gets the campaign name plus per-trial params/metrics, and —
  when the campaign was written with --timing — the jobs/wall_ms metadata,
  so serial-vs-parallel wall-clock comparisons are recorded next to the
  microbenchmarks. Campaigns whose trials carry a params.mechanism
  (fault_sweep's mechanism x scenario matrix, table1) additionally get a
  deterministic per-mechanism rollup under "by_mechanism". --summary-only
  drops the per-trial list and keeps just the counts + timing + rollup,
  for wall-clock records where the trial data is already tracked
  elsewhere.
* binary trial journals (schema "gfc-journal-v1", the --journal/--resume
  crash-safety files): parsed frame by frame (u32le length, u32le CRC-32,
  JSON payload; every CRC is verified) into the campaign form above.

Multiple campaign inputs — sharded --json stores and/or shard journals —
are merged into ONE run: each shard contributes its executed trials, later
inputs supersede earlier ones per trial id, and inputs whose campaign
fingerprint (campaign name, seed, trial count, per-trial names) disagrees
are refused with exit status 2. Re-running with the same label replaces
that run in place.
"""
import json
import struct
import sys
import zlib


def mechanism_summary(trials: list) -> dict | None:
    """Group trials by params.mechanism: per mechanism (sorted), the
    trial/failure counts plus one aggregate per metric (sorted) — a
    true-count for booleans (e.g. how many scenarios deadlocked), a mean
    for numbers — so each mechanism's behavior across the campaign is
    reviewable without scanning the trial list."""
    groups: dict[str, list] = {}
    for t in trials:
        mech = (t.get("params") or {}).get("mechanism")
        if mech is not None:
            groups.setdefault(mech, []).append(t)
    if not groups:
        return None
    out: dict[str, dict] = {}
    for mech in sorted(groups):
        ts = groups[mech]
        summary: dict = {
            "n_trials": len(ts),
            "n_failed": sum(1 for t in ts if t.get("failed")),
        }
        n_timed_out = sum(1 for t in ts if t.get("timed_out"))
        if n_timed_out:
            summary["n_timed_out"] = n_timed_out
        metrics: dict[str, list] = {}
        for t in ts:
            for k, v in (t.get("metrics") or {}).items():
                metrics.setdefault(k, []).append(v)
        for k in sorted(metrics):
            vals = metrics[k]
            if all(isinstance(v, bool) for v in vals):
                summary[k + "_count"] = sum(1 for v in vals if v)
            elif all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in vals):
                summary[k + "_mean"] = round(sum(vals) / len(vals), 6)
        out[mech] = summary
    return out


def campaign_run(label: str, commit: str, raw: dict,
                 summary_only: bool) -> dict:
    trials = raw.get("trials", [])
    run = {
        "label": label,
        "commit": commit,
        "campaign": raw.get("campaign", ""),
        "schema": raw.get("schema"),
        "n_trials": len(trials),
        "n_failed": sum(1 for t in trials if t.get("failed")),
    }
    n_timed_out = sum(1 for t in trials if t.get("timed_out"))
    n_skipped = sum(1 for t in trials if t.get("skipped"))
    if n_timed_out:
        run["n_timed_out"] = n_timed_out
    if n_skipped:
        run["n_skipped"] = n_skipped
    for key in ("jobs", "wall_ms"):  # present only with --timing
        if key in raw:
            run[key] = raw[key]
    by_mechanism = mechanism_summary(trials)
    if by_mechanism is not None:
        run["by_mechanism"] = by_mechanism
    if not summary_only:
        run["trials"] = trials
    return run


def trace_overhead_summary(benchmarks: list) -> dict | None:
    """BM_TraceOff vs BM_TraceOn (vs the untraced BM_RingSimulationGfc
    baseline): the tracing-disabled path must stay within noise of the
    baseline, and the slowdown ratios make that auditable per run."""
    rates = {
        b["name"]: b["items_per_second"]
        for b in benchmarks
        if b.get("name") in ("BM_RingSimulationGfc",
                             "BM_RingSimulationGfc/pdes-shards:1",
                             "BM_RingSimulationGfc/pdes-shards:1/real_time",
                             "BM_TraceOff",
                             "BM_TraceOn") and b.get("items_per_second")
    }
    off, on = rates.get("BM_TraceOff"), rates.get("BM_TraceOn")
    if not off or not on:
        return None
    summary = {
        "off_items_per_second": off,
        "on_items_per_second": on,
        "on_vs_off_slowdown": round(off / on, 4),
    }
    # Pre-PR-9 runs recorded the ring baseline without the shard arg.
    base = rates.get("BM_RingSimulationGfc/pdes-shards:1/real_time",
                     rates.get("BM_RingSimulationGfc/pdes-shards:1",
                               rates.get("BM_RingSimulationGfc")))
    if base:
        summary["off_vs_untraced_baseline"] = round(base / off, 4)
    return summary


def par_speedup_summary(benchmarks: list) -> dict | None:
    """Parallel-core scaling: for each end-to-end benchmark run at several
    pdes-shards counts, record events/sec per shard count plus the ratio
    vs shards:1. Honest by construction — whatever the box produced is
    what lands in the file (on a single-core runner the barrier overhead
    makes the ratio < 1; that is the point of recording it)."""
    groups: dict[str, dict[int, float]] = {}
    for b in benchmarks:
        name = b.get("name", "")
        rate = b.get("items_per_second")
        if "/pdes-shards:" not in name or not rate:
            continue
        base, _, arg = name.partition("/pdes-shards:")
        try:
            shards = int(arg.split("/", 1)[0])  # strip a /real_time suffix
        except ValueError:
            continue
        groups.setdefault(base, {})[shards] = rate
    out: dict[str, dict] = {}
    for base in sorted(groups):
        by_shards = groups[base]
        if 1 not in by_shards or len(by_shards) < 2:
            continue
        entry: dict = {}
        for n in sorted(by_shards):
            entry[f"shards{n}_events_per_second"] = round(by_shards[n], 1)
            if n != 1:
                entry[f"shards{n}_speedup"] = round(
                    by_shards[n] / by_shards[1], 4)
        out[base] = entry
    return out or None


def gbench_run(label: str, commit: str, raw: dict) -> dict:
    run = {
        "label": label,
        "commit": commit,
        "date": raw.get("context", {}).get("date", ""),
        "context": {
            k: raw.get("context", {}).get(k)
            for k in ("host_name", "num_cpus", "mhz_per_cpu",
                      "library_build_type")
        },
        # Keep only the per-benchmark aggregates; drop per-iteration noise.
        "benchmarks": [
            {
                k: b[k]
                for k in ("name", "iterations", "real_time", "cpu_time",
                          "time_unit", "items_per_second", "label")
                if k in b
            }
            for b in raw.get("benchmarks", [])
        ],
    }
    overhead = trace_overhead_summary(run["benchmarks"])
    if overhead:
        run["trace_overhead"] = overhead
    speedup = par_speedup_summary(run["benchmarks"])
    if speedup:
        run["par_speedup"] = speedup
    return run


def parse_journal(path: str) -> dict:
    """gfc-journal-v1 -> campaign form: a header frame then one flat frame
    per completed trial ("trial": id alongside the TrialRecord fields).
    Every frame's CRC-32 is verified; a torn final frame (mid-write kill)
    is tolerated, anything else inconsistent is an error."""
    data = open(path, "rb").read()
    frames = []
    pos = 0
    while True:
        if len(data) - pos < 8:
            break  # torn tail (or clean EOF at pos == len)
        length, crc = struct.unpack_from("<II", data, pos)
        if len(data) - pos - 8 < length:
            break  # torn final frame
        payload = data[pos + 8:pos + 8 + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise SystemExit(f"{path}: CRC mismatch in size-complete frame "
                             f"at byte {pos}; refusing corrupt journal")
        frames.append(json.loads(payload))
        pos += 8 + length
    if not frames or frames[0].get("schema") != "gfc-journal-v1":
        raise SystemExit(f"{path}: not a gfc-journal-v1 journal")
    header = frames[0]
    n = header["n_trials"]
    trials = [{"name": None, "skipped": True} for _ in range(n)]
    for fr in frames[1:]:
        idx = fr["trial"]
        if not 0 <= idx < n:
            raise SystemExit(f"{path}: trial id {idx} out of range")
        # Later frames supersede (a trial re-appended on retry/rerun).
        trials[idx] = {k: v for k, v in fr.items() if k != "trial"}
    return {
        "schema": "gfc-campaign-v1",
        "campaign": header["campaign"],
        "seed": header["seed"],
        "param_hash": header["param_hash"],
        "trials": trials,
    }


def load_input(path: str) -> dict:
    """A JSON document (campaign store / google-benchmark) or a binary
    gfc-journal-v1 journal, auto-detected."""
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (UnicodeDecodeError, json.JSONDecodeError):
        return parse_journal(path)


def fingerprint(doc: dict) -> tuple:
    """What must agree for two campaign inputs to be shards of the same
    run: name, seed, trial count, and each slot's trial name (journals
    leave never-executed slots as None wildcards)."""
    return (doc.get("campaign"), doc.get("seed"),
            len(doc.get("trials", [])))


def merge_campaigns(docs: list[dict], paths: list[str]) -> dict:
    base = docs[0]
    for doc, path in zip(docs[1:], paths[1:]):
        if fingerprint(doc) != fingerprint(base):
            raise SystemExit(
                f"{path}: campaign fingerprint mismatch: "
                f"{fingerprint(doc)} != {fingerprint(base)} ({paths[0]}); "
                "refusing to merge shards of different campaigns")
        hashes = {d.get("param_hash") for d in (base, doc)
                  if d.get("param_hash") is not None}
        if len(hashes) > 1:
            raise SystemExit(f"{path}: journal param fingerprint mismatch; "
                             "refusing to merge shards of different campaigns")
    n = len(base.get("trials", []))
    merged = [None] * n
    for doc, path in zip(docs, paths):
        for idx, t in enumerate(doc["trials"]):
            if t.get("skipped"):
                continue
            prev = merged[idx]
            if prev is not None and prev.get("name") != t.get("name"):
                raise SystemExit(
                    f"{path}: trial {idx} is '{t.get('name')}' but an "
                    f"earlier shard has '{prev.get('name')}'; refusing "
                    "to merge shards of different campaigns")
            merged[idx] = t  # later inputs supersede
    for idx in range(n):
        if merged[idx] is None:  # executed by no shard
            slot = base["trials"][idx]
            merged[idx] = {"name": slot.get("name"), "skipped": True}
    out = {k: v for k, v in base.items() if k != "param_hash"}
    out["trials"] = merged
    return out


def main() -> None:
    bench_file, label, commit = sys.argv[1:4]
    rest = sys.argv[4:]
    summary_only = "--summary-only" in rest
    input_paths = [a for a in rest if a != "--summary-only"]
    if not input_paths:
        raise SystemExit("usage: merge_bench_json.py <bench_file> <label> "
                         "<commit> <input> [<input>...] [--summary-only]")

    docs = [load_input(p) for p in input_paths]

    if docs[0].get("schema") == "gfc-campaign-v1":
        raw = merge_campaigns(docs, input_paths)
        run = campaign_run(label, commit, raw, summary_only)
        default_doc = {"schema": "gfc-campaigns-v1", "runs": []}
    else:
        if len(docs) > 1:
            raise SystemExit("multiple inputs are only supported for "
                             "gfc-campaign-v1 stores/journals")
        run = gbench_run(label, commit, docs[0])
        default_doc = {"schema": "gfc-bench-v1", "benchmark": "microbench",
                       "runs": []}

    try:
        with open(bench_file) as f:
            doc = json.load(f)
    except FileNotFoundError:
        doc = default_doc

    doc["runs"] = [r for r in doc["runs"] if r.get("label") != label] + [run]

    with open(bench_file, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


if __name__ == "__main__":
    main()
