#!/usr/bin/env python3
"""Merge one google-benchmark JSON output into the tracked BENCH file.

Usage: merge_bench_json.py <bench_file> <label> <commit> <gbench_json>

The tracked file holds a list of labeled runs (one per engine/stage), each
carrying the google-benchmark context and the aggregate benchmark entries,
so before/after comparisons live side by side in a single reviewable file.
"""
import json
import sys


def main() -> None:
    bench_file, label, commit, gbench_json = sys.argv[1:5]

    with open(gbench_json) as f:
        raw = json.load(f)

    run = {
        "label": label,
        "commit": commit,
        "date": raw.get("context", {}).get("date", ""),
        "context": {
            k: raw.get("context", {}).get(k)
            for k in ("host_name", "num_cpus", "mhz_per_cpu",
                      "library_build_type")
        },
        # Keep only the per-benchmark aggregates; drop per-iteration noise.
        "benchmarks": [
            {
                k: b[k]
                for k in ("name", "iterations", "real_time", "cpu_time",
                          "time_unit", "items_per_second", "label")
                if k in b
            }
            for b in raw.get("benchmarks", [])
        ],
    }

    try:
        with open(bench_file) as f:
            doc = json.load(f)
    except FileNotFoundError:
        doc = {"schema": "gfc-bench-v1", "benchmark": "microbench", "runs": []}

    doc["runs"] = [r for r in doc["runs"] if r.get("label") != label] + [run]

    with open(bench_file, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


if __name__ == "__main__":
    main()
