// Engine microbenchmarks (google-benchmark): event scheduler, packet pool,
// rate-limiter math, routing computation, end-to-end simulation rate.
#include <benchmark/benchmark.h>

#include "core/rate_limiter.hpp"
#include "net/network.hpp"
#include "runner/scenarios.hpp"
#include "sim/scheduler.hpp"
#include "topo/routing.hpp"

namespace {

using namespace gfc;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    long sum = 0;
    for (int i = 0; i < 1000; ++i)
      sched.schedule_at(sim::us(i), [&sum, i] { sum += i; });
    sched.run_all();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerScheduleRun);

void BM_SchedulerCancelChurn(benchmark::State& state) {
  // Models egress-port wake-timer churn: schedule a wake, cancel it on the
  // next state change, reschedule — the dominant scheduler op pattern in
  // EgressPort::try_transmit().
  for (auto _ : state) {
    sim::Scheduler sched;
    long fired = 0;
    sim::EventId pending{};
    for (int i = 0; i < 1000; ++i) {
      if (pending.valid()) sched.cancel(pending);
      pending = sched.schedule_at(sim::us(i + 100), [&fired] { ++fired; });
      if (i % 8 == 0) sched.run_until(sim::us(i));
    }
    sched.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerCancelChurn);

void BM_SchedulerSameTimestampBurst(benchmark::State& state) {
  // Many events sharing few distinct timestamps: exercises the FIFO
  // tie-break and the same-timestamp pop batching in run_until.
  for (auto _ : state) {
    sim::Scheduler sched;
    long sum = 0;
    for (int i = 0; i < 1000; ++i)
      sched.schedule_at(sim::us(i / 100), [&sum, i] { sum += i; });
    sched.run_until(sim::us(10));
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerSameTimestampBurst);

void BM_PacketPoolCycle(benchmark::State& state) {
  net::PacketPool pool;
  for (auto _ : state) {
    net::Packet* p = pool.acquire();
    benchmark::DoNotOptimize(p);
    pool.release(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketPoolCycle);

void BM_RateLimiter(benchmark::State& state) {
  core::RateLimiter lim(sim::gbps(5));
  sim::TimePs now = 0;
  for (auto _ : state) {
    now = std::max(now, lim.next_allowed());
    lim.on_transmit(now, 1500);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RateLimiter);

void BM_FatTreeRouting(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    topo::Topology t;
    topo::build_fattree(t, k);
    auto routing = topo::compute_shortest_paths(t);
    benchmark::DoNotOptimize(routing);
  }
}
BENCHMARK(BM_FatTreeRouting)->Arg(4)->Arg(8);

void BM_RingSimulationGfc(benchmark::State& state) {
  // End-to-end Figure 9 ring: scheduler events executed per second of wall
  // time (items/s), with delivered data packets as a sanity counter. The
  // pdes-shards arg runs the same simulation on the parallel core
  // (results are byte-identical; only the events/sec rate may change —
  // the 3-switch ring caps the effective shard count at 3).
  const int shards = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  std::int64_t bytes = 0;
  for (auto _ : state) {
    runner::ScenarioConfig cfg;
    cfg.fc = runner::FcSetup::derive(runner::FcKind::kGfcBuffer,
                                     cfg.switch_buffer, cfg.link.rate,
                                     cfg.tau());
    cfg.shards = shards;
    auto s = runner::make_ring(cfg);
    s.fabric->net().run_until(sim::ms(2));
    events += s.fabric->net().executed_events();
    bytes += s.fabric->net().counters().data_bytes_delivered;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["data_packets_per_second"] = benchmark::Counter(
      static_cast<double>(bytes) / 1500.0, benchmark::Counter::kIsRate);
  state.SetLabel("scheduler events executed");
}
// UseRealTime: with worker threads, CPU-time-based rates only count the
// coordinator thread and flatter the parallel runs; wall-clock is the
// honest comparison (and on this single-core recording box it shows the
// barrier overhead as a slowdown).
BENCHMARK(BM_RingSimulationGfc)
    ->ArgName("pdes-shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime();

void run_trace_gate_ring(benchmark::State& state, bool trace_on) {
  // The trace-gate cost check: identical Figure 9 ring with tracing fully
  // off (one null-pointer branch per instrumentation site — must be within
  // noise of BM_RingSimulationGfc) vs on with all categories.
  std::uint64_t events = 0;
  std::uint64_t recorded = 0;
  for (auto _ : state) {
    runner::ScenarioConfig cfg;
    cfg.fc = runner::FcSetup::derive(runner::FcKind::kGfcBuffer,
                                     cfg.switch_buffer, cfg.link.rate,
                                     cfg.tau());
    cfg.trace.enabled = trace_on;
    // Size the ring to the 2 ms run: the default 1M-slot (32 MB) ring is
    // sized for long runs, and re-allocating it every benchmark iteration
    // would swamp the per-event cost this benchmark exists to measure.
    cfg.trace.capacity = std::size_t{1} << 17;
    auto s = runner::make_ring(cfg);
    s.fabric->net().run_until(sim::ms(2));
    events += s.fabric->net().sched().executed_events();
    if (trace_on)
      recorded += s.fabric->tracer()->buffer().total_recorded();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  if (trace_on)
    state.counters["trace_events_per_second"] = benchmark::Counter(
        static_cast<double>(recorded), benchmark::Counter::kIsRate);
  state.SetLabel("scheduler events executed");
}

void BM_TraceOff(benchmark::State& state) { run_trace_gate_ring(state, false); }
BENCHMARK(BM_TraceOff);

void BM_TraceOn(benchmark::State& state) { run_trace_gate_ring(state, true); }
BENCHMARK(BM_TraceOn);

void BM_FatTreeClosedLoopGfc(benchmark::State& state) {
  // End-to-end k=8 fat-tree (128 hosts) closed-loop empirical workload:
  // scheduler events executed per second of wall time, at each parallel-
  // core shard count (events totalled across shards; byte-identical
  // results, honest rates — on a single-core box the barrier overhead
  // shows up as a slowdown, not a speedup).
  const int shards = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  std::uint64_t flows = 0;
  for (auto _ : state) {
    runner::ScenarioConfig cfg;
    cfg.fc = runner::FcSetup::derive(runner::FcKind::kGfcBuffer,
                                     cfg.switch_buffer, cfg.link.rate,
                                     cfg.tau());
    cfg.shards = shards;
    auto s = runner::make_fattree(cfg, 8);
    runner::RunOptions opts;
    opts.duration = sim::ms(1);
    opts.warmup = sim::us(200);
    const runner::RunSummary r = runner::run_closed_loop(s, opts);
    events += s.fabric->net().executed_events();
    flows += r.flows_completed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["flows_completed"] =
      benchmark::Counter(static_cast<double>(flows));
  state.SetLabel("scheduler events executed");
}
BENCHMARK(BM_FatTreeClosedLoopGfc)
    ->Unit(benchmark::kMillisecond)
    ->ArgName("pdes-shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime();

void BM_FatTreeK16FullFidelity(benchmark::State& state) {
  // Full paper scale, full fidelity: k=16 fat-tree (1,024 hosts, 320
  // switches) under the closed-loop empirical workload for the Figure-18
  // timeline (10 ms of simulated time — the paper's collapse happens at
  // 8.5 ms). This is the scale PAPER.md §2 used to cap at reduced
  // durations on one core; the parallel core makes it a recordable
  // single trial, and the per-shard-count events/sec land in
  // BENCH_microbench.json's par_speedup summary. One iteration: the run
  // is deterministic, and minutes-long repeats buy no precision worth
  // their wall-clock.
  const int shards = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  std::uint64_t flows = 0;
  for (auto _ : state) {
    runner::ScenarioConfig cfg;
    cfg.fc = runner::FcSetup::derive(runner::FcKind::kGfcBuffer,
                                     cfg.switch_buffer, cfg.link.rate,
                                     cfg.tau());
    cfg.shards = shards;
    auto s = runner::make_fattree(cfg, 16);
    runner::RunOptions opts;
    opts.duration = sim::ms(10);
    opts.warmup = sim::ms(1);
    const runner::RunSummary r = runner::run_closed_loop(s, opts);
    events += s.fabric->net().executed_events();
    flows += r.flows_completed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["flows_completed"] =
      benchmark::Counter(static_cast<double>(flows));
  state.SetLabel("scheduler events executed");
}
BENCHMARK(BM_FatTreeK16FullFidelity)
    ->Unit(benchmark::kSecond)
    ->ArgName("pdes-shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace
