// Engine microbenchmarks (google-benchmark): event scheduler, packet pool,
// rate-limiter math, routing computation, end-to-end simulation rate.
#include <benchmark/benchmark.h>

#include "core/rate_limiter.hpp"
#include "net/network.hpp"
#include "runner/scenarios.hpp"
#include "sim/scheduler.hpp"
#include "topo/routing.hpp"

namespace {

using namespace gfc;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    long sum = 0;
    for (int i = 0; i < 1000; ++i)
      sched.schedule_at(sim::us(i), [&sum, i] { sum += i; });
    sched.run_all();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerScheduleRun);

void BM_PacketPoolCycle(benchmark::State& state) {
  net::PacketPool pool;
  for (auto _ : state) {
    net::Packet* p = pool.acquire();
    benchmark::DoNotOptimize(p);
    pool.release(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketPoolCycle);

void BM_RateLimiter(benchmark::State& state) {
  core::RateLimiter lim(sim::gbps(5));
  sim::TimePs now = 0;
  for (auto _ : state) {
    now = std::max(now, lim.next_allowed());
    lim.on_transmit(now, 1500);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RateLimiter);

void BM_FatTreeRouting(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    topo::Topology t;
    topo::build_fattree(t, k);
    auto routing = topo::compute_shortest_paths(t);
    benchmark::DoNotOptimize(routing);
  }
}
BENCHMARK(BM_FatTreeRouting)->Arg(4)->Arg(8);

void BM_RingSimulationGfc(benchmark::State& state) {
  // End-to-end: packets simulated per second of wall time.
  std::int64_t bytes = 0;
  for (auto _ : state) {
    runner::ScenarioConfig cfg;
    cfg.fc = runner::FcSetup::derive(runner::FcKind::kGfcBuffer,
                                     cfg.switch_buffer, cfg.link.rate,
                                     cfg.tau());
    auto s = runner::make_ring(cfg);
    s.fabric->net().run_until(sim::ms(2));
    bytes += s.fabric->net().counters().data_bytes_delivered;
  }
  state.SetItemsProcessed(bytes / 1500);
  state.SetLabel("data packets delivered");
}
BENCHMARK(BM_RingSimulationGfc);

}  // namespace
