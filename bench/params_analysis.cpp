// Section 4.2 / 5.4 analysis tables: tau constituents, the parameter
// bounds for every deployment, stage tables, and the feedback-bandwidth
// estimates.
#include "bench_common.hpp"

#include "core/mapping.hpp"
#include "core/params.hpp"

using namespace gfc;
using namespace gfc::core;

int main(int argc, char** argv) {
  // Purely analytic (no fabric is built), but accept the shared flag set
  // so --analyze etc. are uniform across every bench binary.
  exp::parse_cli(argc, argv);
  bench::header("Parameter analysis", "Secs 4.2, 5.4 (analytic tables)");

  std::printf("\nWorst-case tau (Eq. 6), t_w = 1 us, t_r = 3 us:\n");
  std::printf("%8s %12s %12s\n", "rate", "CEE (1.5KB)", "IB (4KB)");
  for (double g : {10.0, 40.0, 100.0}) {
    const sim::Rate c = sim::gbps(g);
    std::printf("%6.0fG %10.2fus %10.2fus\n", g,
                sim::to_us(worst_case_tau({c, 1500, sim::us(1), sim::us(3)})),
                sim::to_us(worst_case_tau({c, 4096, sim::us(1), sim::us(3)})));
  }
  std::printf("(paper: 7.4/5.6/5.2 us CEE; 11.4/6.6/5.6 us IB)\n");

  std::printf("\nBuffer-based GFC: 2*C*tau bound on B_m - B_1 (paper: "
              "18.5/56/130 KB):\n");
  for (double g : {10.0, 40.0, 100.0}) {
    const sim::Rate c = sim::gbps(g);
    const sim::TimePs tau = worst_case_tau({c, 1500, sim::us(1), sim::us(3)});
    std::printf("%6.0fG  %8.1f KB\n", g,
                static_cast<double>(2 * bytes_over(c, tau)) / 1000.0);
  }

  std::printf("\nTime-based GFC: (sqrt(tau/T)+1)^2*C*T bound on B_m - B_0 "
              "(paper: 140.8/191.4/271 KB, IB MTU):\n");
  for (double g : {10.0, 40.0, 100.0}) {
    const sim::Rate c = sim::gbps(g);
    const sim::TimePs tau = worst_case_tau({c, 4096, sim::us(1), sim::us(3)});
    const sim::TimePs period = cbfc_recommended_period(c);
    std::printf("%6.0fG  %8.1f KB  (T = %.2f us)\n", g,
                static_cast<double>(1'000'000 -
                                    b0_bound_timebased(1'000'000, c, tau,
                                                       period)) /
                    1000.0,
                sim::to_us(period));
  }

  std::printf("\nStage count N at B_1 = B_m - 2*C*tau (paper: 16/18/20):\n");
  for (double g : {10.0, 40.0, 100.0}) {
    const sim::Rate c = sim::gbps(g);
    const sim::TimePs tau = worst_case_tau({c, 1500, sim::us(1), sim::us(3)});
    const std::int64_t bm = 8 * bytes_over(c, tau);  // roomy buffer
    MultiStageMapping m(c, b1_bound_buffer(bm, c, tau), bm);
    std::printf("%6.0fG  N = %d\n", g, m.num_stages());
  }

  std::printf("\nFeedback bandwidth, m = 64 B (paper: 69 Mb/s worst / 8.6 "
              "Mb/s steady at 10G):\n");
  for (double g : {10.0, 40.0, 100.0}) {
    const sim::Rate c = sim::gbps(g);
    const sim::TimePs tau = worst_case_tau({c, 1500, sim::us(1), sim::us(3)});
    std::printf("%6.0fG  worst %7.1f Mb/s (%.3f%%)   steady %6.1f Mb/s "
                "(%.4f%%)\n",
                g, worst_case_feedback_bw(64, tau).bps / 1e6,
                100.0 * worst_case_feedback_bw(64, tau).bps / c.bps,
                steady_feedback_bw(64, tau).bps / 1e6,
                100.0 * steady_feedback_bw(64, tau).bps / c.bps);
  }

  std::printf("\nStage table at 10G, B = 300 KB, B1 = 281 KB (Fig 11 sim "
              "config):\n%6s %12s %12s\n", "k", "B_k [KB]", "R_k");
  MultiStageMapping m(sim::gbps(10), 281'000, 300'000);
  for (int k = 1; k <= m.num_stages(); ++k)
    std::printf("%6d %12.2f %12s\n", k,
                static_cast<double>(m.boundary(k)) / 1000.0,
                sim::format_rate(m.rate_of(k)).c_str());
  return 0;
}
