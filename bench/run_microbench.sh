#!/usr/bin/env bash
# Run the engine microbenchmarks and record the results under a label in
# BENCH_microbench.json at the repo root (the tracked perf-trajectory file).
#
# Usage: bench/run_microbench.sh <label> [build-dir] [extra benchmark args...]
#   e.g. bench/run_microbench.sh pre-rewrite
#        bench/run_microbench.sh pooled-engine build --benchmark_filter='BM_Scheduler.*'
#
# Re-running with an existing label replaces that run in place, so the file
# keeps exactly one entry per engine/stage.
set -euo pipefail

label="${1:?usage: run_microbench.sh <label> [build-dir] [extra args...]}"
build="${2:-build}"
shift $(( $# >= 2 ? 2 : 1 ))

root="$(cd "$(dirname "$0")/.." && pwd)"
bin="$root/$build/bench/microbench"
[[ -x "$bin" ]] || { echo "error: $bin not built (cmake --build $build)" >&2; exit 1; }

scratch="$(mktemp --suffix=.bench.json)"
trap 'rm -f "$scratch"' EXIT

"$bin" \
  --benchmark_format=console \
  --benchmark_out="$scratch" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.5 \
  "$@"

commit="$(git -C "$root" rev-parse --short HEAD 2>/dev/null || echo unknown)"
python3 "$root/bench/merge_bench_json.py" \
  "$root/BENCH_microbench.json" "$label" "$commit" "$scratch"
echo "recorded run '$label' (commit $commit) -> BENCH_microbench.json"
