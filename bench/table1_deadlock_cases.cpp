// Table 1: statistical deadlock-case counts on random-failure fat-trees.
//
// Methodology (scaled; see EXPERIMENTS.md): per scale k we sample N random
// topologies (each switch link down with 5%), pre-filter the CBD-prone
// ones exactly as the paper does, and then — instead of the paper's 100
// closed-loop repeats per scenario (10^6 runs per scale, beyond a laptop)
// — we condition directly on the "specific flow combination that fills up
// the CBD" with a directed stress probe and report, per mechanism, the
// number of scenarios that deadlock. Expected shape: identical nonzero
// counts for PFC and CBFC, decreasing with k; zero for both GFC variants.
//
// Runs as an exp:: campaign: the topology scan (sampled/prone/covered) is
// sequential and cheap; every (scale, covered seed, mechanism) simulation
// is an independent worker-pool trial (--jobs N), with counts identical to
// the historical sequential loop for any job count.
//
// Mechanism columns come from the src/mech registry: the four historical
// ones plus DCFIT (detect-and-break; its column counts scenarios it failed
// to keep moving, since the ground-truth scanner still sees the transient
// re-forming wedges it keeps breaking) and CBD-routing (PFC on up*/down*
// restricted tables; must never deadlock, same guarantee class as GFC).
#include <cmath>

#include "analyze/analyze.hpp"
#include "bench_common.hpp"
#include "exp/cli.hpp"
#include "exp/worker_pool.hpp"
#include "mech/dcfit.hpp"
#include "mech/registry.hpp"
#include "stats/throughput.hpp"

using namespace gfc;
using namespace gfc::runner;

namespace {

constexpr int kNumMechs = 6;

struct CoveredCase {
  std::uint64_t seed;
  std::vector<topo::LinkIndex> failed;
  std::vector<topo::CbdStress::FlowSpec> stress_flows;
  std::string witness;  // canonical CBD cycle (smallest link first)
};

/// A statically CBD-free sample, kept for runtime cross-validation: if the
/// analyzer says no cycle exists, even PFC must never deadlock there.
struct FreeCase {
  std::uint64_t seed;
  std::vector<topo::LinkIndex> failed;
};

struct ScaleScan {
  int sampled = 0;
  int prone = 0;
  std::vector<CoveredCase> covered;
  std::vector<FreeCase> cbd_free;
};

ScaleScan scan_scale(int k, int n_topologies, int keep_free) {
  ScaleScan out;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(n_topologies);
       ++seed) {
    ++out.sampled;
    topo::Topology t;
    topo::build_fattree(t, k);
    sim::Rng rng(seed * 7919 + static_cast<std::uint64_t>(k));
    auto failed = topo::random_failures(t, rng, 0.05);
    const auto routing = topo::compute_shortest_paths(t);
    // CBD-prone screening through the static analyzer: one witness DFS
    // per sample, so paper-scale sweeps (--scale) stay cheap until a
    // sample actually earns a simulation.
    const analyze::CbdScreen screen = analyze::screen_cbd(t, routing);
    if (!screen.prone) {
      if (static_cast<int>(out.cbd_free.size()) < keep_free)
        out.cbd_free.push_back({seed, std::move(failed)});
      continue;
    }
    ++out.prone;
    auto stress = topo::build_cbd_stress(t, routing, screen.cycle, rng);
    if (!stress.covered) continue;
    out.covered.push_back({seed, std::move(failed), std::move(stress.flows),
                           screen.witness});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::CliOptions cli = exp::parse_cli(argc, argv);
  bench::header("Table 1: deadlock cases across network scales", "Table 1");
  struct Scale {
    int k;
    int n;
    sim::TimePs dur;
  };
  // --scale multiplies the per-k sample counts toward the paper's 10^4
  // topologies per scale (EXPERIMENTS.md records such a run).
  const auto scaled = [&cli](int base) {
    return std::max(1, static_cast<int>(std::lround(base * cli.scale)));
  };
  const Scale scales[] = {
      {4, scaled(cli.quick ? 40 : 160), sim::ms(12)},
      {8, scaled(cli.quick ? 60 : 400), sim::ms(10)},
      {16, scaled(cli.quick ? 8 : 40), sim::ms(8)},
  };
  // Registry rows by their stable matrix index (mech_test pins the order).
  const auto& reg = mech::all_mechanisms();
  const mech::MechSpec* specs[kNumMechs] = {
      &reg[0],  // PFC
      &reg[2],  // CBFC
      &reg[4],  // GFC-buffer
      &reg[5],  // GFC-time
      &reg[7],  // DCFIT-drop
      &reg[9],  // CBD-routing
  };

  // Cross-validation sample: statically CBD-free k=4 fabrics get a PFC
  // closed-loop run below — the analyzer's "deadlock_free" verdict must
  // translate into zero runtime detections.
  std::vector<ScaleScan> scans;
  for (const Scale& s : scales)
    scans.push_back(scan_scale(s.k, s.n, s.k == 4 ? 4 : 0));

  std::printf("\nCBD witnesses (canonical: cycle rotated to its smallest "
              "link):\n");
  for (std::size_t si = 0; si < std::size(scales); ++si)
    for (const CoveredCase& c : scans[si].covered)
      std::printf("  k=%-3d seed=%-4llu %s\n", scales[si].k,
                  static_cast<unsigned long long>(c.seed), c.witness.c_str());

  exp::Campaign campaign;
  campaign.name = "table1_deadlock_cases";
  campaign.seed = cli.seed;
  for (std::size_t si = 0; si < std::size(scales); ++si) {
    const Scale& s = scales[si];
    for (const CoveredCase& c : scans[si].covered) {
      for (int m = 0; m < kNumMechs; ++m) {
        const mech::MechSpec* spec = specs[m];
        exp::ParamSet p;
        p.set("k", s.k);
        p.set("seed", c.seed);
        p.set("mechanism", spec->name);
        const int k = s.k;
        const sim::TimePs dur = s.dur;
        const std::uint64_t base = cli.seed;
        const analyze::PreflightMode preflight = cli.preflight;
        const int shards = cli.sim_shards;
        const bool cbd_free = cli.cbd_free_routing;
        const bool is_dcfit = spec->kind == FcKind::kDcfit;
        campaign.add(
            "k" + std::to_string(s.k) + "/seed" + std::to_string(c.seed) +
                "/" + spec->name,
            std::move(p),
            [spec, k, dur, c, base, preflight, shards, cbd_free, is_dcfit] {
              ScenarioConfig cfg;
              cfg.preflight = preflight;
              cfg.shards = shards;
              cfg.seed = 1 + base;
              cfg.switch_buffer = 300'000;
              cfg.fc = mech::setup_for(*spec, cfg.switch_buffer, cfg.link.rate,
                                       cfg.tau())
                           .value();
              // --cbd-free-routing: reroute every row onto the up*/down*
              // tables (the stress probe then exercises a cycle-free fabric,
              // so with --analyze=fail every trial must pass pre-flight).
              cfg.fc.cbd_free_routing |= cbd_free;
              auto sc = make_fattree(cfg, k, c.failed);
              net::Network& net = sc.fabric->net();
              for (const auto& f : c.stress_flows) {
                net::Flow& flow = net.create_flow(f.src, f.dst, 0,
                                                  net::Flow::kUnbounded, 0);
                flow.path_salt = f.salt;
              }
              stats::DeadlockOptions dl_opts;
              // DCFIT rows must run past the first wedge: the point is the
              // in-band break, so let the clock reach `dur` and check that
              // the stress flows are still making progress at the tail.
              dl_opts.stop_on_detect = !is_dcfit;
              stats::DeadlockDetector det(net, dl_opts);
              stats::ThroughputSampler tp(net, sim::us(100));
              net.run_until(dur);
              const double tail =
                  tp.average_gbps(0, dur * 3 / 4, dur);
              exp::TrialResult r;
              r.add("deadlocked", det.deadlocked());
              r.add("wedged", det.deadlocked() && tail <= 0.0);
              if (is_dcfit) {
                const mech::DcfitTotals t = mech::collect_dcfit(net);
                r.add("detections", static_cast<std::int64_t>(t.detections));
                r.add("sacrificed",
                      static_cast<std::int64_t>(t.packets_sacrificed));
              }
              return r;
            });
      }
    }
  }

  // Cross-validation trials (appended after the matrix so the idx-based
  // report below is unchanged): CBD-free fabric + PFC + closed loop.
  for (const FreeCase& c : scans[0].cbd_free) {
    exp::ParamSet p;
    p.set("k", 4);
    p.set("seed", c.seed);
    p.set("mechanism", "PFC/cbd-free");
    const std::uint64_t base = cli.seed;
    const analyze::PreflightMode preflight = cli.preflight;
    const int shards = cli.sim_shards;
    const bool cbd_free = cli.cbd_free_routing;
    campaign.add("xval/k4/seed" + std::to_string(c.seed), std::move(p),
                 [c, base, preflight, shards, cbd_free] {
                   ScenarioConfig cfg;
                   cfg.preflight = preflight;
                   cfg.shards = shards;
                   cfg.seed = 1 + base;
                   cfg.switch_buffer = 300'000;
                   cfg.fc = FcSetup::derive(FcKind::kPfc, cfg.switch_buffer,
                                            cfg.link.rate, cfg.tau());
                   cfg.fc.cbd_free_routing = cbd_free;
                   auto sc = make_fattree(cfg, 4, c.failed);
                   RunOptions opts;
                   opts.duration = sim::ms(8);
                   opts.workload_seed = 1000 + c.seed + base;
                   const RunSummary r = run_closed_loop(sc, opts);
                   return exp::TrialResult().add("deadlocked", r.deadlocked);
                 });
  }

  const exp::CampaignResult result = exp::run_campaign_cli(campaign, cli);

  std::printf("%-7s %9s %6s %8s | %5s %5s %12s %10s %12s %13s\n", "scale",
              "sampled", "prone", "covered", "PFC", "CBFC", "GFC-buffer",
              "GFC-time", "DCFIT-drop*", "CBD-routing");
  std::size_t idx = 0;
  int gfc_deadlocks = 0;
  int cbd_deadlocks = 0;
  std::int64_t dcfit_detections = 0;
  std::int64_t dcfit_sacrificed = 0;
  for (std::size_t si = 0; si < std::size(scales); ++si) {
    int deadlocks[kNumMechs] = {};
    for (std::size_t ci = 0; ci < scans[si].covered.size(); ++ci)
      for (int m = 0; m < kNumMechs; ++m, ++idx) {
        // Failed / timed-out / shard-skipped trials have no metrics; the
        // row still prints from whatever completed (finish_cli reports
        // the rest on stderr and in the exit status).
        if (!result.trials[idx].ok()) continue;
        const auto& metrics = result.trials[idx].metrics;
        const mech::MechSpec& spec = *specs[m];
        if (spec.kind == FcKind::kDcfit) {
          // DCFIT's column counts cases it failed to keep moving: the
          // ground-truth scanner still latches on the transient wedges it
          // keeps breaking, so raw `deadlocked` would mirror PFC.
          if (metrics.find("wedged")->as_bool()) ++deadlocks[m];
          dcfit_detections += metrics.find("detections")->as_int();
          dcfit_sacrificed += metrics.find("sacrificed")->as_int();
        } else if (metrics.find("deadlocked")->as_bool()) {
          ++deadlocks[m];
        }
      }
    std::printf("k = %-3d %9d %6d %8d | %5d %5d %12d %10d %12d %13d\n",
                scales[si].k, scans[si].sampled, scans[si].prone,
                static_cast<int>(scans[si].covered.size()), deadlocks[0],
                deadlocks[1], deadlocks[2], deadlocks[3], deadlocks[4],
                deadlocks[5]);
    gfc_deadlocks += deadlocks[2] + deadlocks[3];
    cbd_deadlocks += deadlocks[5];
  }
  std::printf(
      "\n* DCFIT-drop counts scenarios still wedged (zero tail throughput)\n"
      "  at the horizon; across all its trials it detected %lld wedges\n"
      "  in-band and sacrificed %lld packets breaking them.\n",
      static_cast<long long>(dcfit_detections),
      static_cast<long long>(dcfit_sacrificed));
  std::printf("\nPaper shape (Table 1): PFC and CBFC deadlock in the same\n"
              "scenarios, counts decrease with scale, both GFC variants are 0;\n"
              "DCFIT breaks every wedge it detects, CBD-routing prevents the\n"
              "cycles outright (both columns 0).\n");

  int xval_deadlocks = 0;
  for (const FreeCase& c : scans[0].cbd_free) {
    const exp::TrialRecord* t =
        result.find("xval/k4/seed" + std::to_string(c.seed));
    if (t != nullptr && t->ok() &&
        t->metrics.find("deadlocked")->as_bool())
      ++xval_deadlocks;
  }
  std::printf("\nCross-validation: %d statically CBD-free k=4 fabrics ran "
              "closed-loop under PFC;\n%d deadlocked (a nonzero count here "
              "falsifies the static analysis).\n",
              static_cast<int>(scans[0].cbd_free.size()), xval_deadlocks);

  const int status = exp::finish_cli(cli, result);
  if (gfc_deadlocks > 0)
    std::fprintf(stderr,
                 "FAIL: %d GFC trial(s) deadlocked; the paper's Theorem 4.1/"
                 "5.1 guarantee is zero\n",
                 gfc_deadlocks);
  if (xval_deadlocks > 0)
    std::fprintf(stderr,
                 "FAIL: %d statically CBD-free fabric(s) deadlocked at "
                 "runtime\n",
                 xval_deadlocks);
  if (cbd_deadlocks > 0)
    std::fprintf(stderr,
                 "FAIL: %d CBD-routing trial(s) deadlocked; up*/down* "
                 "restriction guarantees zero CBDs\n",
                 cbd_deadlocks);
  if (gfc_deadlocks > 0 || xval_deadlocks > 0 || cbd_deadlocks > 0) return 1;
  return status;
}
