// Table 1: statistical deadlock-case counts on random-failure fat-trees.
//
// Methodology (scaled; see EXPERIMENTS.md): per scale k we sample N random
// topologies (each switch link down with 5%), pre-filter the CBD-prone
// ones exactly as the paper does, and then — instead of the paper's 100
// closed-loop repeats per scenario (10^6 runs per scale, beyond a laptop)
// — we condition directly on the "specific flow combination that fills up
// the CBD" with a directed stress probe and report, per mechanism, the
// number of scenarios that deadlock. Expected shape: identical nonzero
// counts for PFC and CBFC, decreasing with k; zero for both GFC variants.
#include "bench_common.hpp"

using namespace gfc;
using namespace gfc::runner;

namespace {

struct Counts {
  int sampled = 0;
  int prone = 0;
  int covered = 0;
  int deadlocks[4] = {0, 0, 0, 0};  // PFC, CBFC, GFC-buffer, GFC-time
};

Counts run_scale(int k, int n_topologies, sim::TimePs duration) {
  Counts out;
  const FcKind kinds[4] = {FcKind::kPfc, FcKind::kCbfc, FcKind::kGfcBuffer,
                           FcKind::kGfcTime};
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(n_topologies);
       ++seed) {
    ++out.sampled;
    topo::Topology t;
    topo::build_fattree(t, k);
    sim::Rng rng(seed * 7919 + static_cast<std::uint64_t>(k));
    const auto failed = topo::random_failures(t, rng, 0.05);
    const auto routing = topo::compute_shortest_paths(t);
    topo::BufferDependencyGraph g(t);
    g.add_routing_closure(routing);
    const auto cbd = g.find_cycle();
    if (!cbd.has_cbd) continue;
    ++out.prone;
    const auto stress = topo::build_cbd_stress(t, routing, cbd.cycle, rng);
    if (!stress.covered) continue;
    ++out.covered;
    for (int m = 0; m < 4; ++m) {
      ScenarioConfig cfg;
      cfg.switch_buffer = 300'000;
      cfg.fc = FcSetup::derive(kinds[m], cfg.switch_buffer, cfg.link.rate,
                               cfg.tau());
      auto s = make_fattree(cfg, k, failed);
      net::Network& net = s.fabric->net();
      for (const auto& f : stress.flows) {
        net::Flow& flow =
            net.create_flow(f.src, f.dst, 0, net::Flow::kUnbounded, 0);
        flow.path_salt = f.salt;
      }
      stats::DeadlockDetector det(net, {sim::ms(1), 3, true});
      net.run_until(duration);
      if (det.deadlocked()) ++out.deadlocks[m];
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::header("Table 1: deadlock cases across network scales", "Table 1");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  struct Scale {
    int k;
    int n;
    sim::TimePs dur;
  };
  const Scale scales[] = {
      {4, quick ? 40 : 160, sim::ms(12)},
      {8, quick ? 60 : 400, sim::ms(10)},
      {16, quick ? 8 : 40, sim::ms(8)},
  };
  std::printf("%-7s %9s %6s %8s | %5s %5s %12s %10s\n", "scale", "sampled",
              "prone", "covered", "PFC", "CBFC", "GFC-buffer", "GFC-time");
  for (const Scale& s : scales) {
    const Counts c = run_scale(s.k, s.n, s.dur);
    std::printf("k = %-3d %9d %6d %8d | %5d %5d %12d %10d\n", s.k, c.sampled,
                c.prone, c.covered, c.deadlocks[0], c.deadlocks[1],
                c.deadlocks[2], c.deadlocks[3]);
  }
  std::printf("\nPaper shape (Table 1): PFC and CBFC deadlock in the same\n"
              "scenarios, counts decrease with scale, both GFC variants are 0.\n");
  return 0;
}
