file(REMOVE_RECURSE
  "CMakeFiles/fig05_conceptual.dir/fig05_conceptual.cpp.o"
  "CMakeFiles/fig05_conceptual.dir/fig05_conceptual.cpp.o.d"
  "fig05_conceptual"
  "fig05_conceptual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_conceptual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
