# Empty compiler generated dependencies file for fig05_conceptual.
# This may be replaced when dependencies are built.
