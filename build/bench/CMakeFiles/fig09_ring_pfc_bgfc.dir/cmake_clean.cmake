file(REMOVE_RECURSE
  "CMakeFiles/fig09_ring_pfc_bgfc.dir/fig09_ring_pfc_bgfc.cpp.o"
  "CMakeFiles/fig09_ring_pfc_bgfc.dir/fig09_ring_pfc_bgfc.cpp.o.d"
  "fig09_ring_pfc_bgfc"
  "fig09_ring_pfc_bgfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ring_pfc_bgfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
