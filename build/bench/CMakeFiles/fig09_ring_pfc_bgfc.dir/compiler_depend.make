# Empty compiler generated dependencies file for fig09_ring_pfc_bgfc.
# This may be replaced when dependencies are built.
