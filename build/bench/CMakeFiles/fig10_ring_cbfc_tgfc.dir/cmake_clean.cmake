file(REMOVE_RECURSE
  "CMakeFiles/fig10_ring_cbfc_tgfc.dir/fig10_ring_cbfc_tgfc.cpp.o"
  "CMakeFiles/fig10_ring_cbfc_tgfc.dir/fig10_ring_cbfc_tgfc.cpp.o.d"
  "fig10_ring_cbfc_tgfc"
  "fig10_ring_cbfc_tgfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ring_cbfc_tgfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
