# Empty dependencies file for fig10_ring_cbfc_tgfc.
# This may be replaced when dependencies are built.
