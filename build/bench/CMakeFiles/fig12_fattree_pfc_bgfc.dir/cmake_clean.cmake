file(REMOVE_RECURSE
  "CMakeFiles/fig12_fattree_pfc_bgfc.dir/fig12_fattree_pfc_bgfc.cpp.o"
  "CMakeFiles/fig12_fattree_pfc_bgfc.dir/fig12_fattree_pfc_bgfc.cpp.o.d"
  "fig12_fattree_pfc_bgfc"
  "fig12_fattree_pfc_bgfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_fattree_pfc_bgfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
