# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig12_fattree_pfc_bgfc.
