# Empty dependencies file for fig12_fattree_pfc_bgfc.
# This may be replaced when dependencies are built.
