file(REMOVE_RECURSE
  "CMakeFiles/fig13_fattree_cbfc_tgfc.dir/fig13_fattree_cbfc_tgfc.cpp.o"
  "CMakeFiles/fig13_fattree_cbfc_tgfc.dir/fig13_fattree_cbfc_tgfc.cpp.o.d"
  "fig13_fattree_cbfc_tgfc"
  "fig13_fattree_cbfc_tgfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_fattree_cbfc_tgfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
