# Empty compiler generated dependencies file for fig13_fattree_cbfc_tgfc.
# This may be replaced when dependencies are built.
