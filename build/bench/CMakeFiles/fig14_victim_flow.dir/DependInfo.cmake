
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig14_victim_flow.cpp" "bench/CMakeFiles/fig14_victim_flow.dir/fig14_victim_flow.cpp.o" "gcc" "bench/CMakeFiles/fig14_victim_flow.dir/fig14_victim_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gfc_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_flowctl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
