file(REMOVE_RECURSE
  "CMakeFiles/fig14_victim_flow.dir/fig14_victim_flow.cpp.o"
  "CMakeFiles/fig14_victim_flow.dir/fig14_victim_flow.cpp.o.d"
  "fig14_victim_flow"
  "fig14_victim_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_victim_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
