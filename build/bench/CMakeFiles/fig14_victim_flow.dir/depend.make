# Empty dependencies file for fig14_victim_flow.
# This may be replaced when dependencies are built.
