file(REMOVE_RECURSE
  "CMakeFiles/fig16_17_overall.dir/fig16_17_overall.cpp.o"
  "CMakeFiles/fig16_17_overall.dir/fig16_17_overall.cpp.o.d"
  "fig16_17_overall"
  "fig16_17_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_17_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
