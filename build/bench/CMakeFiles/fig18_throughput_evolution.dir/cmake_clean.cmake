file(REMOVE_RECURSE
  "CMakeFiles/fig18_throughput_evolution.dir/fig18_throughput_evolution.cpp.o"
  "CMakeFiles/fig18_throughput_evolution.dir/fig18_throughput_evolution.cpp.o.d"
  "fig18_throughput_evolution"
  "fig18_throughput_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_throughput_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
