# Empty compiler generated dependencies file for fig18_throughput_evolution.
# This may be replaced when dependencies are built.
