file(REMOVE_RECURSE
  "CMakeFiles/fig19_feedback_bandwidth.dir/fig19_feedback_bandwidth.cpp.o"
  "CMakeFiles/fig19_feedback_bandwidth.dir/fig19_feedback_bandwidth.cpp.o.d"
  "fig19_feedback_bandwidth"
  "fig19_feedback_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_feedback_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
