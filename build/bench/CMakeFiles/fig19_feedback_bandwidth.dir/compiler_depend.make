# Empty compiler generated dependencies file for fig19_feedback_bandwidth.
# This may be replaced when dependencies are built.
