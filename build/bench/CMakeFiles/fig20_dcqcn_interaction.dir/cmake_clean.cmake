file(REMOVE_RECURSE
  "CMakeFiles/fig20_dcqcn_interaction.dir/fig20_dcqcn_interaction.cpp.o"
  "CMakeFiles/fig20_dcqcn_interaction.dir/fig20_dcqcn_interaction.cpp.o.d"
  "fig20_dcqcn_interaction"
  "fig20_dcqcn_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_dcqcn_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
