# Empty compiler generated dependencies file for fig20_dcqcn_interaction.
# This may be replaced when dependencies are built.
