file(REMOVE_RECURSE
  "CMakeFiles/params_analysis.dir/params_analysis.cpp.o"
  "CMakeFiles/params_analysis.dir/params_analysis.cpp.o.d"
  "params_analysis"
  "params_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/params_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
