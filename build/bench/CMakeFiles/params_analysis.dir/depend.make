# Empty dependencies file for params_analysis.
# This may be replaced when dependencies are built.
