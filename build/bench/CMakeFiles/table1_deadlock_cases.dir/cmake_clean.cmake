file(REMOVE_RECURSE
  "CMakeFiles/table1_deadlock_cases.dir/table1_deadlock_cases.cpp.o"
  "CMakeFiles/table1_deadlock_cases.dir/table1_deadlock_cases.cpp.o.d"
  "table1_deadlock_cases"
  "table1_deadlock_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_deadlock_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
