# Empty dependencies file for table1_deadlock_cases.
# This may be replaced when dependencies are built.
