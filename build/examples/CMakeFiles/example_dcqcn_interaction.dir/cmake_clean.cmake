file(REMOVE_RECURSE
  "CMakeFiles/example_dcqcn_interaction.dir/dcqcn_interaction.cpp.o"
  "CMakeFiles/example_dcqcn_interaction.dir/dcqcn_interaction.cpp.o.d"
  "example_dcqcn_interaction"
  "example_dcqcn_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dcqcn_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
