# Empty compiler generated dependencies file for example_dcqcn_interaction.
# This may be replaced when dependencies are built.
