file(REMOVE_RECURSE
  "CMakeFiles/example_deadlock_ring.dir/deadlock_ring.cpp.o"
  "CMakeFiles/example_deadlock_ring.dir/deadlock_ring.cpp.o.d"
  "example_deadlock_ring"
  "example_deadlock_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_deadlock_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
