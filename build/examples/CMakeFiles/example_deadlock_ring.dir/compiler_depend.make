# Empty compiler generated dependencies file for example_deadlock_ring.
# This may be replaced when dependencies are built.
