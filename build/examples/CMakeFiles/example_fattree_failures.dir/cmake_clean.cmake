file(REMOVE_RECURSE
  "CMakeFiles/example_fattree_failures.dir/fattree_failures.cpp.o"
  "CMakeFiles/example_fattree_failures.dir/fattree_failures.cpp.o.d"
  "example_fattree_failures"
  "example_fattree_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fattree_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
