# Empty compiler generated dependencies file for example_fattree_failures.
# This may be replaced when dependencies are built.
