file(REMOVE_RECURSE
  "CMakeFiles/example_parameter_explorer.dir/parameter_explorer.cpp.o"
  "CMakeFiles/example_parameter_explorer.dir/parameter_explorer.cpp.o.d"
  "example_parameter_explorer"
  "example_parameter_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_parameter_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
