# Empty compiler generated dependencies file for example_parameter_explorer.
# This may be replaced when dependencies are built.
