file(REMOVE_RECURSE
  "CMakeFiles/gfc_cc.dir/cc/dcqcn.cpp.o"
  "CMakeFiles/gfc_cc.dir/cc/dcqcn.cpp.o.d"
  "libgfc_cc.a"
  "libgfc_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfc_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
