file(REMOVE_RECURSE
  "libgfc_cc.a"
)
