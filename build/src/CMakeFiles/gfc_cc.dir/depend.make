# Empty dependencies file for gfc_cc.
# This may be replaced when dependencies are built.
