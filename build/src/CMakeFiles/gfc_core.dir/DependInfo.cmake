
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/gfc_buffer.cpp" "src/CMakeFiles/gfc_core.dir/core/gfc_buffer.cpp.o" "gcc" "src/CMakeFiles/gfc_core.dir/core/gfc_buffer.cpp.o.d"
  "/root/repo/src/core/gfc_conceptual.cpp" "src/CMakeFiles/gfc_core.dir/core/gfc_conceptual.cpp.o" "gcc" "src/CMakeFiles/gfc_core.dir/core/gfc_conceptual.cpp.o.d"
  "/root/repo/src/core/gfc_time.cpp" "src/CMakeFiles/gfc_core.dir/core/gfc_time.cpp.o" "gcc" "src/CMakeFiles/gfc_core.dir/core/gfc_time.cpp.o.d"
  "/root/repo/src/core/mapping.cpp" "src/CMakeFiles/gfc_core.dir/core/mapping.cpp.o" "gcc" "src/CMakeFiles/gfc_core.dir/core/mapping.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/CMakeFiles/gfc_core.dir/core/params.cpp.o" "gcc" "src/CMakeFiles/gfc_core.dir/core/params.cpp.o.d"
  "/root/repo/src/core/rate_limiter.cpp" "src/CMakeFiles/gfc_core.dir/core/rate_limiter.cpp.o" "gcc" "src/CMakeFiles/gfc_core.dir/core/rate_limiter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gfc_flowctl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
