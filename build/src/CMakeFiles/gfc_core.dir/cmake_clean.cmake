file(REMOVE_RECURSE
  "CMakeFiles/gfc_core.dir/core/gfc_buffer.cpp.o"
  "CMakeFiles/gfc_core.dir/core/gfc_buffer.cpp.o.d"
  "CMakeFiles/gfc_core.dir/core/gfc_conceptual.cpp.o"
  "CMakeFiles/gfc_core.dir/core/gfc_conceptual.cpp.o.d"
  "CMakeFiles/gfc_core.dir/core/gfc_time.cpp.o"
  "CMakeFiles/gfc_core.dir/core/gfc_time.cpp.o.d"
  "CMakeFiles/gfc_core.dir/core/mapping.cpp.o"
  "CMakeFiles/gfc_core.dir/core/mapping.cpp.o.d"
  "CMakeFiles/gfc_core.dir/core/params.cpp.o"
  "CMakeFiles/gfc_core.dir/core/params.cpp.o.d"
  "CMakeFiles/gfc_core.dir/core/rate_limiter.cpp.o"
  "CMakeFiles/gfc_core.dir/core/rate_limiter.cpp.o.d"
  "libgfc_core.a"
  "libgfc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
