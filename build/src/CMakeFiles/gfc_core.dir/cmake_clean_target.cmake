file(REMOVE_RECURSE
  "libgfc_core.a"
)
