# Empty compiler generated dependencies file for gfc_core.
# This may be replaced when dependencies are built.
