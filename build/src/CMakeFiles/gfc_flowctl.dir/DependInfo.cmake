
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowctl/cbfc.cpp" "src/CMakeFiles/gfc_flowctl.dir/flowctl/cbfc.cpp.o" "gcc" "src/CMakeFiles/gfc_flowctl.dir/flowctl/cbfc.cpp.o.d"
  "/root/repo/src/flowctl/flow_control.cpp" "src/CMakeFiles/gfc_flowctl.dir/flowctl/flow_control.cpp.o" "gcc" "src/CMakeFiles/gfc_flowctl.dir/flowctl/flow_control.cpp.o.d"
  "/root/repo/src/flowctl/pfc.cpp" "src/CMakeFiles/gfc_flowctl.dir/flowctl/pfc.cpp.o" "gcc" "src/CMakeFiles/gfc_flowctl.dir/flowctl/pfc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gfc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
