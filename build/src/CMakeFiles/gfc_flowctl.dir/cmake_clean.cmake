file(REMOVE_RECURSE
  "CMakeFiles/gfc_flowctl.dir/flowctl/cbfc.cpp.o"
  "CMakeFiles/gfc_flowctl.dir/flowctl/cbfc.cpp.o.d"
  "CMakeFiles/gfc_flowctl.dir/flowctl/flow_control.cpp.o"
  "CMakeFiles/gfc_flowctl.dir/flowctl/flow_control.cpp.o.d"
  "CMakeFiles/gfc_flowctl.dir/flowctl/pfc.cpp.o"
  "CMakeFiles/gfc_flowctl.dir/flowctl/pfc.cpp.o.d"
  "libgfc_flowctl.a"
  "libgfc_flowctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfc_flowctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
