file(REMOVE_RECURSE
  "libgfc_flowctl.a"
)
