# Empty compiler generated dependencies file for gfc_flowctl.
# This may be replaced when dependencies are built.
