
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cpp" "src/CMakeFiles/gfc_net.dir/net/channel.cpp.o" "gcc" "src/CMakeFiles/gfc_net.dir/net/channel.cpp.o.d"
  "/root/repo/src/net/host.cpp" "src/CMakeFiles/gfc_net.dir/net/host.cpp.o" "gcc" "src/CMakeFiles/gfc_net.dir/net/host.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/gfc_net.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/gfc_net.dir/net/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/gfc_net.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/gfc_net.dir/net/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/gfc_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/gfc_net.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/port.cpp" "src/CMakeFiles/gfc_net.dir/net/port.cpp.o" "gcc" "src/CMakeFiles/gfc_net.dir/net/port.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/CMakeFiles/gfc_net.dir/net/switch.cpp.o" "gcc" "src/CMakeFiles/gfc_net.dir/net/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gfc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
