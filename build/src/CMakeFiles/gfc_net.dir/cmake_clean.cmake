file(REMOVE_RECURSE
  "CMakeFiles/gfc_net.dir/net/channel.cpp.o"
  "CMakeFiles/gfc_net.dir/net/channel.cpp.o.d"
  "CMakeFiles/gfc_net.dir/net/host.cpp.o"
  "CMakeFiles/gfc_net.dir/net/host.cpp.o.d"
  "CMakeFiles/gfc_net.dir/net/network.cpp.o"
  "CMakeFiles/gfc_net.dir/net/network.cpp.o.d"
  "CMakeFiles/gfc_net.dir/net/node.cpp.o"
  "CMakeFiles/gfc_net.dir/net/node.cpp.o.d"
  "CMakeFiles/gfc_net.dir/net/packet.cpp.o"
  "CMakeFiles/gfc_net.dir/net/packet.cpp.o.d"
  "CMakeFiles/gfc_net.dir/net/port.cpp.o"
  "CMakeFiles/gfc_net.dir/net/port.cpp.o.d"
  "CMakeFiles/gfc_net.dir/net/switch.cpp.o"
  "CMakeFiles/gfc_net.dir/net/switch.cpp.o.d"
  "libgfc_net.a"
  "libgfc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
