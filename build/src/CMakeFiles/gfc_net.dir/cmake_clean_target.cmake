file(REMOVE_RECURSE
  "libgfc_net.a"
)
