# Empty compiler generated dependencies file for gfc_net.
# This may be replaced when dependencies are built.
