file(REMOVE_RECURSE
  "CMakeFiles/gfc_runner.dir/runner/config.cpp.o"
  "CMakeFiles/gfc_runner.dir/runner/config.cpp.o.d"
  "CMakeFiles/gfc_runner.dir/runner/fabric.cpp.o"
  "CMakeFiles/gfc_runner.dir/runner/fabric.cpp.o.d"
  "CMakeFiles/gfc_runner.dir/runner/scenarios.cpp.o"
  "CMakeFiles/gfc_runner.dir/runner/scenarios.cpp.o.d"
  "libgfc_runner.a"
  "libgfc_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfc_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
