file(REMOVE_RECURSE
  "libgfc_runner.a"
)
