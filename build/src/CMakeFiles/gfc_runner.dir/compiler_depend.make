# Empty compiler generated dependencies file for gfc_runner.
# This may be replaced when dependencies are built.
