file(REMOVE_RECURSE
  "CMakeFiles/gfc_sim.dir/sim/logger.cpp.o"
  "CMakeFiles/gfc_sim.dir/sim/logger.cpp.o.d"
  "CMakeFiles/gfc_sim.dir/sim/random.cpp.o"
  "CMakeFiles/gfc_sim.dir/sim/random.cpp.o.d"
  "CMakeFiles/gfc_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/gfc_sim.dir/sim/scheduler.cpp.o.d"
  "CMakeFiles/gfc_sim.dir/sim/time.cpp.o"
  "CMakeFiles/gfc_sim.dir/sim/time.cpp.o.d"
  "libgfc_sim.a"
  "libgfc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
