file(REMOVE_RECURSE
  "libgfc_sim.a"
)
