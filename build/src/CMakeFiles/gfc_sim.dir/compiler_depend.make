# Empty compiler generated dependencies file for gfc_sim.
# This may be replaced when dependencies are built.
