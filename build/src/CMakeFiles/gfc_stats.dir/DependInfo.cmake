
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/cdf.cpp" "src/CMakeFiles/gfc_stats.dir/stats/cdf.cpp.o" "gcc" "src/CMakeFiles/gfc_stats.dir/stats/cdf.cpp.o.d"
  "/root/repo/src/stats/deadlock.cpp" "src/CMakeFiles/gfc_stats.dir/stats/deadlock.cpp.o" "gcc" "src/CMakeFiles/gfc_stats.dir/stats/deadlock.cpp.o.d"
  "/root/repo/src/stats/feedback.cpp" "src/CMakeFiles/gfc_stats.dir/stats/feedback.cpp.o" "gcc" "src/CMakeFiles/gfc_stats.dir/stats/feedback.cpp.o.d"
  "/root/repo/src/stats/flow_stats.cpp" "src/CMakeFiles/gfc_stats.dir/stats/flow_stats.cpp.o" "gcc" "src/CMakeFiles/gfc_stats.dir/stats/flow_stats.cpp.o.d"
  "/root/repo/src/stats/throughput.cpp" "src/CMakeFiles/gfc_stats.dir/stats/throughput.cpp.o" "gcc" "src/CMakeFiles/gfc_stats.dir/stats/throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gfc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
