file(REMOVE_RECURSE
  "CMakeFiles/gfc_stats.dir/stats/cdf.cpp.o"
  "CMakeFiles/gfc_stats.dir/stats/cdf.cpp.o.d"
  "CMakeFiles/gfc_stats.dir/stats/deadlock.cpp.o"
  "CMakeFiles/gfc_stats.dir/stats/deadlock.cpp.o.d"
  "CMakeFiles/gfc_stats.dir/stats/feedback.cpp.o"
  "CMakeFiles/gfc_stats.dir/stats/feedback.cpp.o.d"
  "CMakeFiles/gfc_stats.dir/stats/flow_stats.cpp.o"
  "CMakeFiles/gfc_stats.dir/stats/flow_stats.cpp.o.d"
  "CMakeFiles/gfc_stats.dir/stats/throughput.cpp.o"
  "CMakeFiles/gfc_stats.dir/stats/throughput.cpp.o.d"
  "libgfc_stats.a"
  "libgfc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
