file(REMOVE_RECURSE
  "libgfc_stats.a"
)
