# Empty compiler generated dependencies file for gfc_stats.
# This may be replaced when dependencies are built.
