
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/builders.cpp" "src/CMakeFiles/gfc_topo.dir/topo/builders.cpp.o" "gcc" "src/CMakeFiles/gfc_topo.dir/topo/builders.cpp.o.d"
  "/root/repo/src/topo/cbd.cpp" "src/CMakeFiles/gfc_topo.dir/topo/cbd.cpp.o" "gcc" "src/CMakeFiles/gfc_topo.dir/topo/cbd.cpp.o.d"
  "/root/repo/src/topo/routing.cpp" "src/CMakeFiles/gfc_topo.dir/topo/routing.cpp.o" "gcc" "src/CMakeFiles/gfc_topo.dir/topo/routing.cpp.o.d"
  "/root/repo/src/topo/scenario_gen.cpp" "src/CMakeFiles/gfc_topo.dir/topo/scenario_gen.cpp.o" "gcc" "src/CMakeFiles/gfc_topo.dir/topo/scenario_gen.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/CMakeFiles/gfc_topo.dir/topo/topology.cpp.o" "gcc" "src/CMakeFiles/gfc_topo.dir/topo/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gfc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
