file(REMOVE_RECURSE
  "CMakeFiles/gfc_topo.dir/topo/builders.cpp.o"
  "CMakeFiles/gfc_topo.dir/topo/builders.cpp.o.d"
  "CMakeFiles/gfc_topo.dir/topo/cbd.cpp.o"
  "CMakeFiles/gfc_topo.dir/topo/cbd.cpp.o.d"
  "CMakeFiles/gfc_topo.dir/topo/routing.cpp.o"
  "CMakeFiles/gfc_topo.dir/topo/routing.cpp.o.d"
  "CMakeFiles/gfc_topo.dir/topo/scenario_gen.cpp.o"
  "CMakeFiles/gfc_topo.dir/topo/scenario_gen.cpp.o.d"
  "CMakeFiles/gfc_topo.dir/topo/topology.cpp.o"
  "CMakeFiles/gfc_topo.dir/topo/topology.cpp.o.d"
  "libgfc_topo.a"
  "libgfc_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfc_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
