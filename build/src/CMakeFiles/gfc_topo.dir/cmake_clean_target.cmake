file(REMOVE_RECURSE
  "libgfc_topo.a"
)
