# Empty compiler generated dependencies file for gfc_topo.
# This may be replaced when dependencies are built.
