file(REMOVE_RECURSE
  "CMakeFiles/gfc_workload.dir/workload/empirical.cpp.o"
  "CMakeFiles/gfc_workload.dir/workload/empirical.cpp.o.d"
  "CMakeFiles/gfc_workload.dir/workload/generator.cpp.o"
  "CMakeFiles/gfc_workload.dir/workload/generator.cpp.o.d"
  "libgfc_workload.a"
  "libgfc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
