file(REMOVE_RECURSE
  "libgfc_workload.a"
)
