# Empty dependencies file for gfc_workload.
# This may be replaced when dependencies are built.
