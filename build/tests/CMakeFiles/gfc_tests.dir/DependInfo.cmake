
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cc_test.cpp" "tests/CMakeFiles/gfc_tests.dir/cc_test.cpp.o" "gcc" "tests/CMakeFiles/gfc_tests.dir/cc_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/gfc_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/gfc_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/flowctl_test.cpp" "tests/CMakeFiles/gfc_tests.dir/flowctl_test.cpp.o" "gcc" "tests/CMakeFiles/gfc_tests.dir/flowctl_test.cpp.o.d"
  "/root/repo/tests/integration_fattree_test.cpp" "tests/CMakeFiles/gfc_tests.dir/integration_fattree_test.cpp.o" "gcc" "tests/CMakeFiles/gfc_tests.dir/integration_fattree_test.cpp.o.d"
  "/root/repo/tests/integration_incast_test.cpp" "tests/CMakeFiles/gfc_tests.dir/integration_incast_test.cpp.o" "gcc" "tests/CMakeFiles/gfc_tests.dir/integration_incast_test.cpp.o.d"
  "/root/repo/tests/integration_ring_test.cpp" "tests/CMakeFiles/gfc_tests.dir/integration_ring_test.cpp.o" "gcc" "tests/CMakeFiles/gfc_tests.dir/integration_ring_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/gfc_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/gfc_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/gfc_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/gfc_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/gfc_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/gfc_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/gfc_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/gfc_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/theorem_test.cpp" "tests/CMakeFiles/gfc_tests.dir/theorem_test.cpp.o" "gcc" "tests/CMakeFiles/gfc_tests.dir/theorem_test.cpp.o.d"
  "/root/repo/tests/topo_test.cpp" "tests/CMakeFiles/gfc_tests.dir/topo_test.cpp.o" "gcc" "tests/CMakeFiles/gfc_tests.dir/topo_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/gfc_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/gfc_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gfc_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_flowctl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
