file(REMOVE_RECURSE
  "CMakeFiles/gfc_tests.dir/cc_test.cpp.o"
  "CMakeFiles/gfc_tests.dir/cc_test.cpp.o.d"
  "CMakeFiles/gfc_tests.dir/core_test.cpp.o"
  "CMakeFiles/gfc_tests.dir/core_test.cpp.o.d"
  "CMakeFiles/gfc_tests.dir/flowctl_test.cpp.o"
  "CMakeFiles/gfc_tests.dir/flowctl_test.cpp.o.d"
  "CMakeFiles/gfc_tests.dir/integration_fattree_test.cpp.o"
  "CMakeFiles/gfc_tests.dir/integration_fattree_test.cpp.o.d"
  "CMakeFiles/gfc_tests.dir/integration_incast_test.cpp.o"
  "CMakeFiles/gfc_tests.dir/integration_incast_test.cpp.o.d"
  "CMakeFiles/gfc_tests.dir/integration_ring_test.cpp.o"
  "CMakeFiles/gfc_tests.dir/integration_ring_test.cpp.o.d"
  "CMakeFiles/gfc_tests.dir/net_test.cpp.o"
  "CMakeFiles/gfc_tests.dir/net_test.cpp.o.d"
  "CMakeFiles/gfc_tests.dir/property_test.cpp.o"
  "CMakeFiles/gfc_tests.dir/property_test.cpp.o.d"
  "CMakeFiles/gfc_tests.dir/sim_test.cpp.o"
  "CMakeFiles/gfc_tests.dir/sim_test.cpp.o.d"
  "CMakeFiles/gfc_tests.dir/stats_test.cpp.o"
  "CMakeFiles/gfc_tests.dir/stats_test.cpp.o.d"
  "CMakeFiles/gfc_tests.dir/theorem_test.cpp.o"
  "CMakeFiles/gfc_tests.dir/theorem_test.cpp.o.d"
  "CMakeFiles/gfc_tests.dir/topo_test.cpp.o"
  "CMakeFiles/gfc_tests.dir/topo_test.cpp.o.d"
  "CMakeFiles/gfc_tests.dir/workload_test.cpp.o"
  "CMakeFiles/gfc_tests.dir/workload_test.cpp.o.d"
  "gfc_tests"
  "gfc_tests.pdb"
  "gfc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
