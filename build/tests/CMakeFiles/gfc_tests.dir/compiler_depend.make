# Empty compiler generated dependencies file for gfc_tests.
# This may be replaced when dependencies are built.
