// GFC as a safeguard under end-to-end congestion control (paper Sec 7):
// 8-to-1 incast with DCQCN; GFC caps the transient, DCQCN owns the steady
// state. Prints the three curves of Figure 20.
//
//   ./build/examples/example_dcqcn_interaction > fig20.csv
#include <cstdio>

#include "cc/dcqcn.hpp"
#include "runner/scenarios.hpp"
#include "stats/probe.hpp"

using namespace gfc;

int main() {
  runner::ScenarioConfig cfg;
  cfg.switch_buffer = 300'000;
  cfg.arch = net::SwitchArch::kCioqRoundRobin;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kGfcBuffer,
                                   cfg.switch_buffer, cfg.link.rate,
                                   cfg.tau());
  cfg.ecn.enabled = true;
  cfg.ecn.kmin = cfg.ecn.kmax = 40'000;
  auto s = runner::make_incast(cfg, 8);
  net::Network& net = s.fabric->net();

  cc::DcqcnConfig dc;
  dc.alpha_init = 0.5;
  auto dcqcn = std::make_unique<cc::DcqcnModule>(net, dc);
  cc::DcqcnModule* cc_mod = dcqcn.get();
  net.set_cc(std::move(dcqcn));
  for (const net::FlowId f : s.flows) cc_mod->on_flow_start(net.flow(f));

  std::printf("t_us,queue_B,dcqcn_rate_gbps,gfc_rate_gbps\n");
  stats::PeriodicProbe probe(net.sched(), sim::us(50), [&](sim::TimePs now) {
    std::printf("%.1f,%lld,%.4f,%.4f\n", sim::to_us(now),
                static_cast<long long>(s.fabric->ingress_queue_bytes(
                    s.info.sw, s.info.senders[0])),
                cc_mod->current_rate(s.flows[0]).gbps(),
                s.fabric->egress_rate(s.info.senders[0], s.info.sw).gbps());
  });
  net.run_until(sim::ms(8));
  std::fprintf(stderr, "CNPs sent: %llu, violations: %llu\n",
               static_cast<unsigned long long>(cc_mod->cnps_sent()),
               static_cast<unsigned long long>(
                   net.counters().lossless_violations));
  return 0;
}
