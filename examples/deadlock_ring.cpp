// Watch the deadlock form (or not) in detail: CSV trace of every switch's
// host-facing queue and the host rates, under a chosen mechanism.
//
//   ./build/examples/example_deadlock_ring [pfc|cbfc|gfcb|gfct] > trace.csv
#include <cstdio>
#include <cstring>

#include "runner/scenarios.hpp"
#include "stats/deadlock.hpp"
#include "stats/probe.hpp"

using namespace gfc;

int main(int argc, char** argv) {
  runner::FcKind kind = runner::FcKind::kPfc;
  net::SwitchArch arch = net::SwitchArch::kOutputQueuedFifo;
  if (argc > 1) {
    if (!std::strcmp(argv[1], "cbfc")) kind = runner::FcKind::kCbfc;
    if (!std::strcmp(argv[1], "gfcb")) {
      kind = runner::FcKind::kGfcBuffer;
      arch = net::SwitchArch::kCioqRoundRobin;
    }
    if (!std::strcmp(argv[1], "gfct")) {
      kind = runner::FcKind::kGfcTime;
      arch = net::SwitchArch::kCioqRoundRobin;
    }
  }
  runner::ScenarioConfig cfg;
  cfg.switch_buffer = 300'000;
  cfg.arch = arch;
  cfg.fc = runner::FcSetup::derive(kind, cfg.switch_buffer, cfg.link.rate,
                                   cfg.tau());
  runner::RingScenario ring = runner::make_ring(cfg);
  net::Network& net = ring.fabric->net();
  stats::DeadlockDetector detector(net);

  std::printf("# mechanism=%s\n", runner::fc_name(kind));
  std::printf("t_us,q_h0_B,q_h1_B,q_h2_B,rate_h0_gbps,rate_h1_gbps,"
              "rate_h2_gbps,deadlocked\n");
  stats::PeriodicProbe probe(net.sched(), sim::us(50), [&](sim::TimePs now) {
    std::printf("%.1f", sim::to_us(now));
    for (int i = 0; i < 3; ++i)
      std::printf(",%lld", static_cast<long long>(ring.fabric->ingress_queue_bytes(
                               ring.info.switches[static_cast<std::size_t>(i)],
                               ring.info.hosts[static_cast<std::size_t>(i)])));
    for (int i = 0; i < 3; ++i)
      std::printf(",%.3f", ring.fabric
                               ->egress_rate(ring.info.hosts[static_cast<std::size_t>(i)],
                                             ring.info.switches[static_cast<std::size_t>(i)])
                               .gbps());
    std::printf(",%d\n", detector.deadlocked() ? 1 : 0);
  });
  net.run_until(sim::ms(10));
  std::fprintf(stderr, "deadlocked: %s, violations: %llu\n",
               detector.deadlocked() ? "YES" : "no",
               static_cast<unsigned long long>(
                   net.counters().lossless_violations));
  return 0;
}
