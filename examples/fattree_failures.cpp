// The paper's fat-tree case study end to end: search for a 3-link-failure
// set that turns the four Figure-11 flows into a CBD, show the cycle, then
// run every mechanism over it.
//
//   ./build/examples/example_fattree_failures
#include <cstdio>

#include "runner/scenarios.hpp"
#include "stats/deadlock.hpp"
#include "stats/throughput.hpp"

using namespace gfc;

int main() {
  topo::Topology t;
  const topo::FatTreeInfo ft = topo::build_fattree(t, 4);
  std::printf("searching 3-link-failure sets on fat-tree(k=4)...\n");
  const auto cases = topo::find_fig11_cases(t, ft, 1);
  if (cases.empty()) {
    std::printf("no qualifying case found\n");
    return 1;
  }
  const topo::Fig11Case& c = cases.front();
  std::printf("failed links:");
  for (const auto l : c.failed_links)
    std::printf(" %s-%s", t.node(t.link(l).a).name.c_str(),
                t.node(t.link(l).b).name.c_str());
  std::printf("\ncyclic buffer dependency:");
  for (const auto& [a, b] : c.cbd.cycle)
    std::printf(" %s->%s", t.node(a).name.c_str(), t.node(b).name.c_str());
  std::printf("\nflow paths:\n");
  static const char* kNames[] = {"F1", "F2", "F3", "F4"};
  for (std::size_t f = 0; f < c.paths.size(); ++f) {
    std::printf("  %s:", kNames[f]);
    for (const auto n : c.paths[f]) std::printf(" %s", t.node(n).name.c_str());
    std::printf("\n");
  }

  for (const runner::FcKind kind :
       {runner::FcKind::kPfc, runner::FcKind::kCbfc,
        runner::FcKind::kGfcBuffer, runner::FcKind::kGfcTime}) {
    runner::ScenarioConfig cfg;
    cfg.switch_buffer = 300'000;
    const bool gfc = kind == runner::FcKind::kGfcBuffer ||
                     kind == runner::FcKind::kGfcTime;
    if (gfc) cfg.arch = net::SwitchArch::kCioqRoundRobin;
    cfg.fc = runner::FcSetup::derive(kind, cfg.switch_buffer, cfg.link.rate,
                                     cfg.tau());
    auto s = runner::make_fattree(cfg, 4, c.failed_links);
    net::Network& net = s.fabric->net();
    std::vector<net::FlowId> flows;
    for (std::size_t f = 0; f < c.flows.size(); ++f) {
      net::Flow& flow = net.create_flow(c.flows[f].first, c.flows[f].second,
                                        0, net::Flow::kUnbounded, 0);
      flow.path_salt = c.salts[f];
      flows.push_back(flow.id);
    }
    stats::ThroughputSampler tp(net, sim::us(100),
                                stats::ThroughputSampler::Key::kPerFlow);
    stats::DeadlockDetector det(net);
    net.run_until(sim::ms(20));
    std::printf("%-12s deadlock=%-3s flows [Gb/s]:", runner::fc_name(kind),
                det.deadlocked() ? "YES" : "no");
    for (const net::FlowId f : flows)
      std::printf(" %5.2f", tp.average_gbps(f, sim::ms(15), sim::ms(20)));
    std::printf("\n");
  }
  return 0;
}
