// Interactive-ish parameter exploration: give a link rate, buffer size and
// wire length, get every derived GFC/PFC/CBFC parameter the paper defines.
//
//   ./build/examples/example_parameter_explorer [rate_gbps] [buffer_KB] [wire_m]
#include <cstdio>
#include <cstdlib>

#include "core/mapping.hpp"
#include "core/params.hpp"
#include "runner/config.hpp"

using namespace gfc;

int main(int argc, char** argv) {
  const double rate_gbps = argc > 1 ? std::atof(argv[1]) : 10.0;
  const std::int64_t buffer = (argc > 2 ? std::atoll(argv[2]) : 300) * 1000;
  const double wire_m = argc > 3 ? std::atof(argv[3]) : 100.0;

  const sim::Rate c = sim::gbps(rate_gbps);
  // ~2e8 m/s on the wire.
  const sim::TimePs t_wire = sim::ns(wire_m / 0.2);
  const core::TauParams tp{c, 1500, t_wire, sim::us(3)};
  const sim::TimePs tau = core::worst_case_tau(tp);

  std::printf("link: %.0f Gb/s, buffer %lld KB, wire %.0f m\n", rate_gbps,
              static_cast<long long>(buffer / 1000), wire_m);
  std::printf("worst-case tau (Eq. 6): %s\n", sim::format_time(tau).c_str());
  std::printf("  = 2*MTU/C (%s) + 2*t_w (%s) + t_r (3us)\n",
              sim::format_time(2 * sim::tx_time(c, 1500)).c_str(),
              sim::format_time(2 * t_wire).c_str());

  std::printf("\nPFC:   XOFF headroom needed >= C*tau = %lld B\n",
              static_cast<long long>(core::bytes_over(c, tau)));
  std::printf("CBFC:  recommended period T = %s (65535 B)\n",
              sim::format_time(core::cbfc_recommended_period(c)).c_str());

  const std::int64_t b1 = core::b1_bound_buffer(buffer, c, tau);
  std::printf("\nbuffer-based GFC: B1 <= Bm - 2*C*tau = %lld B\n",
              static_cast<long long>(b1));
  if (b1 > 0) {
    core::MultiStageMapping m(c, b1, buffer);
    std::printf("  N = %d stages; first boundaries/rates:\n", m.num_stages());
    for (int k = 1; k <= std::min(6, m.num_stages()); ++k)
      std::printf("    B_%d = %7.1f KB   R_%d = %s\n", k,
                  static_cast<double>(m.boundary(k)) / 1000.0, k,
                  sim::format_rate(m.rate_of(k)).c_str());
  } else {
    std::printf("  !! buffer too small for this tau (needs > 2*C*tau)\n");
  }

  const sim::TimePs period = core::cbfc_recommended_period(c);
  const std::int64_t b0t = core::b0_bound_timebased(buffer, c, tau, period);
  std::printf("time-based GFC:  B0 <= Bm - (sqrt(tau/T)+1)^2*C*T = %lld B%s\n",
              static_cast<long long>(b0t),
              b0t > 0 ? "" : "  !! buffer too small");
  const std::int64_t b0c = core::b0_bound_conceptual(buffer, c, tau);
  std::printf("conceptual GFC:  B0 <= Bm - 4*C*tau = %lld B%s\n",
              static_cast<long long>(b0c),
              b0c > 0 ? "" : "  !! buffer too small");

  std::printf("\nfeedback bandwidth (m = 64 B): worst %s, steady %s\n",
              sim::format_rate(core::worst_case_feedback_bw(64, tau)).c_str(),
              sim::format_rate(core::steady_feedback_bw(64, tau)).c_str());
  return 0;
}
