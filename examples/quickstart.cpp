// Quickstart: build the paper's Figure-1 ring, run it under PFC and under
// buffer-based GFC, and watch one deadlock while the other converges.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <cstdio>

#include "runner/scenarios.hpp"
#include "stats/deadlock.hpp"
#include "stats/throughput.hpp"

using namespace gfc;

int main() {
  for (const runner::FcKind kind :
       {runner::FcKind::kPfc, runner::FcKind::kGfcBuffer}) {
    // 1. Configure the scenario: 10G links, 300 KB ingress buffers, and a
    //    flow-control mechanism with paper-compliant derived parameters.
    runner::ScenarioConfig cfg;
    cfg.switch_buffer = 300'000;
    if (kind == runner::FcKind::kGfcBuffer)
      cfg.arch = net::SwitchArch::kCioqRoundRobin;  // fair crossbar
    cfg.fc = runner::FcSetup::derive(kind, cfg.switch_buffer, cfg.link.rate,
                                     cfg.tau());

    // 2. Build the 3-switch deadlock ring: one host per switch, each
    //    sending a permanent flow two hops clockwise.
    runner::RingScenario ring = runner::make_ring(cfg);
    net::Network& net = ring.fabric->net();

    // 3. Attach instrumentation and run 20 ms of simulated time.
    stats::ThroughputSampler throughput(net, sim::us(100));
    stats::DeadlockDetector detector(net);
    net.run_until(sim::ms(20));

    // 4. Report.
    std::printf("%-12s deadlock: %-3s  per-host throughput (last 5 ms): "
                "%.2f Gb/s  lossless violations: %llu\n",
                runner::fc_name(kind), detector.deadlocked() ? "YES" : "no",
                throughput.average_gbps(0, sim::ms(15), sim::ms(20)) / 3.0,
                static_cast<unsigned long long>(
                    net.counters().lossless_violations));
    if (detector.deadlocked()) {
      std::printf("  wait-for cycle:");
      for (const auto& [node, port] : detector.cycle())
        std::printf(" %s.p%d", net.node(node).name().c_str(), port);
      std::printf("  (all paused forever)\n");
    }
  }
  return 0;
}
