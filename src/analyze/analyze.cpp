#include "analyze/analyze.hpp"

#include <algorithm>
#include <map>

#include "analyze/cycles.hpp"
#include "analyze/detail.hpp"
#include "net/packet.hpp"

namespace gfc::analyze {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kDeadlockFree: return "deadlock_free";
    case Verdict::kSafe: return "safe";
    case Verdict::kAtRisk: return "at_risk";
  }
  return "?";
}

bool Report::bounds_ok() const {
  return std::all_of(bounds.begin(), bounds.end(),
                     [](const BoundCheck& b) { return b.ok; });
}

Verdict Report::verdict() const {
  if (cbd_free()) return Verdict::kDeadlockFree;
  // A truncated enumeration saw only a prefix of the cycle set: any
  // safety argument quantified over "all cycles" is void, whatever the
  // mechanism, so never report better than at_risk from it.
  if (truncated) return Verdict::kAtRisk;
  // Circular wait exists; the mechanism decides whether hold-and-wait can
  // complete the deadlock. PFC and CBFC block indefinitely once paused /
  // out of credit. GFC's rate floor means every port always drains — but
  // only while the proven bound holds; past it the queue can saturate and
  // the guarantee is void. With no flow control there is no backpressure
  // to wait on (the fabric drops instead).
  switch (mechanism_kind) {
    case runner::FcKind::kNone:
      return Verdict::kSafe;
    case runner::FcKind::kPfc:
    case runner::FcKind::kCbfc:
    // DCFIT *recovers from* deadlock rather than preventing it: the static
    // verdict stays at-risk (the CBD can still wedge; detection then drops
    // or bypasses its way out at runtime).
    case runner::FcKind::kDcfit:
      return Verdict::kAtRisk;
    case runner::FcKind::kGfcBuffer:
    case runner::FcKind::kGfcTime:
    case runner::FcKind::kGfcConceptual:
      return bounds_ok() ? Verdict::kSafe : Verdict::kAtRisk;
  }
  return Verdict::kAtRisk;
}

namespace {

using topo::DirectedLink;

/// Consecutive switch-to-switch hops of a concrete node path (the
/// dependency-edge construction of BufferDependencyGraph::add_path).
std::vector<DirectedLink> switch_hops(const topo::Topology& topo,
                                      const std::vector<topo::NodeIndex>& path) {
  std::vector<DirectedLink> hops;
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    if (!topo.is_host(path[i]) && !topo.is_host(path[i + 1]))
      hops.push_back({path[i], path[i + 1]});
  return hops;
}

/// Per-cycle metadata over an already-canonical link-form cycle list:
/// names, flow coverage, activation — everything downstream of the graph
/// construction the incremental path shortcuts.
void fill_cycle_infos(const Input& in, detail::LinkCycles cycles,
                      Report* rep) {
  rep->truncated = cycles.truncated;

  // Dependency edges each configured flow induces along its traced path.
  std::vector<std::vector<std::pair<DirectedLink, DirectedLink>>> flow_edges;
  for (const FlowSpec& f : in.flows) {
    const auto hops =
        switch_hops(*in.topo, in.routing->trace(f.src, f.dst, f.salt));
    std::vector<std::pair<DirectedLink, DirectedLink>> edges;
    for (std::size_t i = 0; i + 1 < hops.size(); ++i)
      edges.push_back({hops[i], hops[i + 1]});
    flow_edges.push_back(std::move(edges));
  }

  for (auto& cyc : cycles.cycles) {
    CycleInfo info;
    info.links = std::move(cyc);
    for (const auto& [from, to] : info.links)
      info.link_names.push_back(in.topo->node(from).name + "->" +
                                in.topo->node(to).name);

    const std::size_t n = info.links.size();
    std::vector<char> edge_covered(n, 0);
    for (std::size_t fi = 0; fi < flow_edges.size(); ++fi) {
      bool touches = false;
      for (std::size_t e = 0; e < n; ++e) {
        const std::pair<DirectedLink, DirectedLink> edge{
            info.links[e], info.links[(e + 1) % n]};
        if (std::find(flow_edges[fi].begin(), flow_edges[fi].end(), edge) !=
            flow_edges[fi].end()) {
          edge_covered[e] = 1;
          touches = true;
        }
      }
      if (touches) info.flows.push_back(static_cast<int>(fi));
    }
    info.activated =
        n > 0 && !in.flows.empty() &&
        std::all_of(edge_covered.begin(), edge_covered.end(),
                    [](char c) { return c != 0; });
    rep->cycles.push_back(std::move(info));
  }
  // Canonical list order: by length, then by the link sequence itself.
  // Link form is numbering-independent, so this order is too.
  std::sort(rep->cycles.begin(), rep->cycles.end(),
            [](const CycleInfo& a, const CycleInfo& b) {
              if (a.links.size() != b.links.size())
                return a.links.size() < b.links.size();
              return a.links < b.links;
            });
}

void check_bounds(const Input& in, Report* rep) {
  const runner::FcSetup& fc = in.cfg.fc;
  const sim::Rate c = in.cfg.link.rate;
  const sim::TimePs tau = rep->tau_total;
  const std::int64_t capacity = in.cfg.switch_buffer;
  const std::int64_t mtu = in.cfg.link.mtu;
  const auto add = [rep](std::string name, std::string formula,
                         std::int64_t lhs, std::int64_t rhs) {
    rep->bounds.push_back(
        {std::move(name), std::move(formula), lhs, rhs, lhs <= rhs});
  };
  switch (fc.kind) {
    case runner::FcKind::kNone:
      break;
    case runner::FcKind::kPfc:
    case runner::FcKind::kDcfit:  // rides on PFC thresholds
      // Lossless headroom: everything in flight when PAUSE triggers (C*tau
      // plus packet-granularity slack, the derive() model) must still fit.
      add("pfc_headroom", "XOFF + C*tau + 2*MTU + 2*ctrl <= capacity",
          fc.xoff + core::bytes_over(c, tau) + 2 * mtu +
              2 * net::kControlFrameBytes,
          capacity);
      add("pfc_xon", "XON <= XOFF", fc.xon, fc.xoff);
      break;
    case runner::FcKind::kCbfc:
      // One credit round-trip of data must fit the advertised window.
      add("cbfc_period_inflight", "C*T + C*tau <= capacity",
          core::bytes_over(c, fc.period) + core::bytes_over(c, tau), capacity);
      break;
    case runner::FcKind::kGfcBuffer:
      add("gfc_buffer_b1", "B1 <= Bm - 2*C*tau", fc.b1,
          core::b1_bound_buffer(fc.bm, c, tau));
      add("gfc_buffer_bm", "Bm <= capacity", fc.bm, capacity);
      break;
    case runner::FcKind::kGfcTime:
      add("gfc_time_b0", "B0 <= Bm - (sqrt(tau/T)+1)^2 * C*T", fc.b0,
          core::b0_bound_timebased(fc.bm, c, tau, fc.period));
      add("gfc_time_bm", "Bm <= capacity", fc.bm, capacity);
      break;
    case runner::FcKind::kGfcConceptual:
      add("gfc_conceptual_b0", "B0 <= Bm - 4*C*tau", fc.b0,
          core::b0_bound_conceptual(fc.bm, c, tau));
      add("gfc_conceptual_bm", "Bm <= capacity", fc.bm, capacity);
      break;
  }
}

void lint_routing(const Input& in, Report* rep) {
  const topo::Topology& topo = *in.topo;
  const topo::RoutingTable& routing = *in.routing;
  const auto hosts = topo.hosts();
  const auto switches = topo.switches();

  // Unroutable host pairs (capped listing; the count is always exact).
  std::size_t unroutable = 0;
  for (const topo::NodeIndex s : hosts)
    for (const topo::NodeIndex d : hosts) {
      if (s == d || routing.routable(s, d)) continue;
      ++unroutable;
      if (unroutable <= 8)
        rep->lints.push_back({"unroutable", topo.node(s).name + " -> " +
                                                topo.node(d).name +
                                                " has no route"});
    }
  if (unroutable > 8)
    rep->lints.push_back(
        {"unroutable",
         "... " + std::to_string(unroutable - 8) + " more unroutable pairs"});

  // Per-destination next-hop graphs: loops and fat-tree valleys.
  int min_layer = 0, max_layer = 0;
  bool first_layer = true;
  for (const topo::NodeIndex s : switches) {
    const int l = topo.node(s).layer;
    if (first_layer) {
      min_layer = max_layer = l;
      first_layer = false;
    } else {
      min_layer = std::min(min_layer, l);
      max_layer = std::max(max_layer, l);
    }
  }
  const bool layered = max_layer > min_layer;

  for (const topo::NodeIndex dst : hosts) {
    // Loop detection: tri-color DFS over switch next-hops toward dst,
    // reporting the first cycle found (deterministic: switches ascending,
    // next hops in table order).
    std::map<topo::NodeIndex, int> color;  // 0/absent white, 1 grey, 2 black
    std::map<topo::NodeIndex, topo::NodeIndex> parent;
    bool loop_reported = false;
    for (const topo::NodeIndex root : switches) {
      if (loop_reported || color[root] != 0) continue;
      std::vector<std::pair<topo::NodeIndex, std::size_t>> stack{{root, 0}};
      color[root] = 1;
      while (!stack.empty() && !loop_reported) {
        auto& [v, next] = stack.back();
        const auto& hops = routing.next_hops(v, dst);
        std::size_t i = next++;
        // Skip host next-hops (delivery, not transit).
        while (i < hops.size() && topo.is_host(hops[i])) i = next++;
        if (i < hops.size()) {
          const topo::NodeIndex w = hops[i];
          if (color[w] == 0) {
            color[w] = 1;
            parent[w] = v;
            stack.push_back({w, 0});
          } else if (color[w] == 1) {
            std::string cyc = topo.node(w).name;
            std::vector<topo::NodeIndex> chain{v};
            for (topo::NodeIndex u = v; u != w; u = parent[u])
              chain.push_back(parent[u]);
            for (auto it = chain.rbegin(); it != chain.rend(); ++it)
              cyc += " -> " + topo.node(*it).name;
            cyc += " -> " + topo.node(w).name;
            rep->lints.push_back({"routing_loop", "routing toward " +
                                                      topo.node(dst).name +
                                                      " loops: " + cyc});
            loop_reported = true;
          }
        } else {
          color[v] = 2;
          stack.pop_back();
        }
      }
    }

    // Valley lint: in the ECMP closure toward dst, an up-edge (layer
    // increases) reachable after a down-edge violates up-down routing.
    // BFS over (switch, descended) states tolerates broken (cyclic)
    // tables; the first violation per destination is reported.
    if (!layered) continue;
    std::map<std::pair<topo::NodeIndex, bool>, char> seen;
    std::vector<std::pair<topo::NodeIndex, bool>> frontier;
    for (const topo::NodeIndex s : hosts) {
      if (s == dst) continue;
      for (const topo::NodeIndex n : routing.next_hops(s, dst))
        if (!topo.is_host(n) && !seen[{n, false}]++) frontier.push_back({n, false});
    }
    bool valley_reported = false;
    for (std::size_t qi = 0; qi < frontier.size() && !valley_reported; ++qi) {
      const auto [v, descended] = frontier[qi];
      for (const topo::NodeIndex w : routing.next_hops(v, dst)) {
        if (topo.is_host(w)) continue;
        const int lv = topo.node(v).layer, lw = topo.node(w).layer;
        if (descended && lw > lv) {
          rep->lints.push_back(
              {"valley", "route toward " + topo.node(dst).name +
                             " climbs after descending: " + topo.node(v).name +
                             " -> " + topo.node(w).name});
          valley_reported = true;
          break;
        }
        const bool next_descended = descended || lw < lv;
        if (!seen[{w, next_descended}]++) frontier.push_back({w, next_descended});
      }
    }
  }
}

}  // namespace

namespace detail {

LinkCycles to_link_cycles(const std::vector<DirectedLink>& links,
                          const CycleEnumeration& enumeration) {
  LinkCycles out;
  out.truncated = enumeration.truncated;
  for (const auto& cyc : enumeration.cycles) {
    std::vector<DirectedLink> cycle;
    for (const int v : cyc) cycle.push_back(links[static_cast<std::size_t>(v)]);
    topo::canonicalize_cycle(&cycle);
    out.cycles.push_back(std::move(cycle));
  }
  return out;
}

Report finish_report(const Input& in, const std::vector<DirectedLink>& links,
                     const std::vector<std::vector<int>>& adj,
                     LinkCycles cycles) {
  Report rep;
  rep.scenario = in.scenario;
  rep.mechanism_kind = in.cfg.fc.kind;
  rep.mechanism = runner::fc_name(in.cfg.fc.kind);
  rep.hosts = in.topo->hosts().size();
  rep.switches = in.topo->switches().size();
  for (std::size_t l = 0; l < in.topo->link_count(); ++l)
    if (in.topo->link(static_cast<topo::LinkIndex>(l)).up) ++rep.links_up;
  rep.buffer_per_port = in.cfg.switch_buffer;

  rep.tau_serialization = 2 * sim::tx_time(in.cfg.link.rate, in.cfg.link.mtu);
  rep.tau_wire = 2 * in.cfg.link.prop_delay;
  rep.tau_processing = in.cfg.control_delay;
  rep.tau_total = in.cfg.tau();

  rep.bdg_vertices = links.size();
  for (const auto& out : adj) rep.bdg_edges += out.size();
  const auto sccs = strongly_connected_components(adj);
  rep.sccs = sccs.size();
  for (const auto& comp : sccs) {
    const bool cyclic =
        comp.size() > 1 ||
        [&] {
          const auto& o = adj[static_cast<std::size_t>(comp.front())];
          return std::find(o.begin(), o.end(), comp.front()) != o.end();
        }();
    if (cyclic) ++rep.cyclic_sccs;
  }

  if (cycles.truncated) {
    const std::string label =
        in.scenario.empty() ? std::string() : in.scenario + ": ";
    std::fprintf(stderr,
                 "analyze: %scycle enumeration truncated at %zu cycles; "
                 "verdict degraded to at_risk\n",
                 label.c_str(), in.max_cycles);
  }
  fill_cycle_infos(in, std::move(cycles), &rep);
  check_bounds(in, &rep);
  lint_routing(in, &rep);
  return rep;
}

}  // namespace detail

Report analyze(const Input& in) {
  topo::BufferDependencyGraph graph(*in.topo);
  graph.add_routing_closure(*in.routing);
  const CycleEnumeration enumeration =
      elementary_cycles(graph.adjacency(), in.max_cycles);
  return detail::finish_report(
      in, graph.links(), graph.adjacency(),
      detail::to_link_cycles(graph.links(), enumeration));
}

bool report_contains_cycle(const Report& rep,
                           const std::vector<topo::DirectedLink>& cycle) {
  return std::any_of(
      rep.cycles.begin(), rep.cycles.end(),
      [&](const CycleInfo& info) { return info.links == cycle; });
}

CbdScreen screen_cbd(const topo::Topology& topo,
                     const topo::RoutingTable& routing) {
  topo::BufferDependencyGraph g(topo);
  g.add_routing_closure(routing);
  const topo::CbdResult r = g.find_cycle();
  CbdScreen out;
  out.prone = r.has_cbd;
  if (r.has_cbd) {
    out.cycle = r.cycle;
    out.witness = topo::describe_links(topo, r.cycle);
  }
  return out;
}

Verdict preflight_verdict(PreflightMode mode, const Report& rep) {
  const Verdict v = rep.verdict();
  if (mode == PreflightMode::kOff) return v;
  if (v != Verdict::kDeadlockFree || !rep.lints.empty()) {
    const std::string label =
        rep.scenario.empty() ? std::string() : rep.scenario + ": ";
    std::fprintf(stderr, "preflight %s%s\n", label.c_str(),
                 rep.summary().c_str());
  }
  if (mode == PreflightMode::kFail && v == Verdict::kAtRisk)
    throw PreflightError("preflight: " + rep.summary());
  return v;
}

Verdict preflight(PreflightMode mode, const topo::Topology& topo,
                  const topo::RoutingTable& routing,
                  const runner::ScenarioConfig& cfg,
                  const std::string& scenario) {
  if (mode == PreflightMode::kOff) return Verdict::kDeadlockFree;
  Input in;
  in.topo = &topo;
  in.routing = &routing;
  in.cfg = cfg;
  in.scenario = scenario;
  return preflight_verdict(mode, analyze(in));
}

}  // namespace gfc::analyze
