// Static deadlock-risk analysis, run before any event is scheduled.
//
// The paper's premise is that deadlock is a *structural* property: a
// cyclic buffer dependency (circular wait) plus a mechanism that can
// hold-and-wait. Both halves are checkable from the configuration alone:
//
//  1. CBD enumeration — Tarjan SCC decomposition of the buffer-dependency
//     graph plus Johnson's algorithm listing *all* elementary cycles
//     (topo::BufferDependencyGraph::find_cycle stops at one witness), with
//     per-cycle metadata: length, links, which configured flows cover it.
//  2. Safety-bound verification — recompute the worst-case feedback
//     latency tau from wire delay + serialization + processing time, then
//     check the mechanism's proven bound: B_1 <= B_m - 2*C*tau
//     (buffer-based GFC, Sec 4.2/5.4), Theorem 5.1's
//     B_0 <= B_m - (sqrt(tau/T)+1)^2 * C * T (time-based GFC), Theorem
//     4.1's B_0 <= B_m - 4*C*tau (conceptual), and the PFC lossless
//     headroom XOFF + C*tau + slack <= capacity.
//  3. Routing lints — unroutable host pairs, routing loops in a
//     destination's ECMP next-hop graph, and fat-tree valley (down-then-up)
//     violations in the ECMP closure.
//
// The verdict is sound in one direction, matching the paper's theorems:
// "deadlock_free" (no CBD) implies the dynamic detector can never fire,
// and "safe" (CBD present, but a GFC bound rules out hold-and-wait)
// implies no GFC stall. "at_risk" is a may-deadlock verdict: whether the
// risk is realized depends on which flows actually fill the cycle.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analyze/mode.hpp"
#include "runner/config.hpp"
#include "topo/cbd.hpp"
#include "topo/routing.hpp"
#include "topo/topology.hpp"

namespace gfc::analyze {

/// One elementary cycle of the buffer-dependency graph, canonical form
/// (smallest link first; see topo::canonicalize_cycle).
struct CycleInfo {
  std::vector<topo::DirectedLink> links;
  /// links rendered with topology names, e.g. "S0->S1" (same order).
  std::vector<std::string> link_names;
  /// Indices into Input::flows whose traced path crosses at least one
  /// dependency edge of this cycle.
  std::vector<int> flows;
  /// True when every dependency edge of the cycle is induced by at least
  /// one configured flow — the "specific flow combination that fills up
  /// the CBD" exists in this very scenario.
  bool activated = false;
};

/// One verified inequality `lhs <= rhs`.
struct BoundCheck {
  std::string name;     // e.g. "gfc_buffer_b1"
  std::string formula;  // human-readable form of the inequality
  std::int64_t lhs = 0;
  std::int64_t rhs = 0;
  bool ok = false;
};

struct LintFinding {
  std::string kind;  // "unroutable" | "routing_loop" | "valley"
  std::string message;
};

enum class Verdict {
  kDeadlockFree,  // no CBD: circular wait is structurally impossible
  kSafe,          // CBD exists, but the mechanism cannot hold-and-wait
  kAtRisk,        // CBD exists and the mechanism can hold-and-wait
};

const char* verdict_name(Verdict v);

/// One <=k-link-failure combination's re-analysis in a failure sweep.
struct FailureCombo {
  /// Failed switch-switch link indices, ascending (a combination).
  std::vector<topo::LinkIndex> links;
  /// Each failed link as "A-B" endpoint names (same order).
  std::vector<std::string> link_names;
  Verdict verdict = Verdict::kDeadlockFree;
  std::size_t cycle_count = 0;
  bool truncated = false;
  /// Some host pair became unroutable under this combo.
  bool disconnects = false;
  /// Baseline verdict was kDeadlockFree and this combo's is not: the
  /// failures manufactured a circular wait that wasn't there.
  bool flips = false;
};

/// `gfc-analyze --failures k`: every combination of at most k
/// switch-to-switch link failures, re-routed (shortest paths over the
/// surviving topology) and re-analyzed. See sweep.hpp.
struct FailureSweep {
  int max_failures = 0;
  Verdict baseline = Verdict::kDeadlockFree;
  std::size_t combos = 0;   // combinations examined
  std::size_t flipped = 0;  // combos with flips == true
  std::vector<FailureCombo> results;
  /// Minimal culprit sets: indices (into results) of flipping combos no
  /// proper subset of which flips — the smallest failure patterns that
  /// break the deadlock-freedom argument.
  std::vector<std::size_t> culprits;
};

/// One proposed repair: a removal set that breaks every targeted cycle,
/// statically re-verified. See repair.hpp.
struct RepairSuggestion {
  std::string kind;                   // "link_removal" | "turn_restriction"
  std::vector<std::string> removals;  // link names "A-B" or turns "A->B->C"
  std::size_t cycles_broken = 0;
  bool verified_cbd_free = false;
};

/// `gfc-analyze --suggest-repairs`: greedy minimal hitting sets over the
/// enumerated (preferring activated) cycles.
struct Repairs {
  /// True when only activated cycles were targeted (some were activated);
  /// false means every enumerated cycle was targeted.
  bool targeting_activated = false;
  std::vector<RepairSuggestion> suggestions;
};

/// A flow whose concrete path should be checked against the cycles.
struct FlowSpec {
  topo::NodeIndex src = -1;
  topo::NodeIndex dst = -1;
  std::uint64_t salt = 0;
};

struct Input {
  const topo::Topology* topo = nullptr;
  const topo::RoutingTable* routing = nullptr;
  runner::ScenarioConfig cfg;
  /// Optional configured flows (per-cycle activation metadata).
  std::vector<FlowSpec> flows;
  /// Cap on Johnson's enumeration; cycles beyond it set Report::truncated.
  std::size_t max_cycles = 4096;
  /// Label echoed into the report header ("fig09-ring", trial name, ...).
  std::string scenario;
};

struct Report {
  std::string scenario;
  runner::FcKind mechanism_kind = runner::FcKind::kNone;
  std::string mechanism;
  std::size_t hosts = 0;
  std::size_t switches = 0;
  std::size_t links_up = 0;
  std::int64_t buffer_per_port = 0;

  /// Tau breakdown (Eq. 6) recomputed from the link parameters.
  sim::TimePs tau_serialization = 0;  // 2 * MTU / C
  sim::TimePs tau_wire = 0;           // 2 * t_w
  sim::TimePs tau_processing = 0;     // t_r
  sim::TimePs tau_total = 0;

  /// Buffer-dependency graph shape.
  std::size_t bdg_vertices = 0;
  std::size_t bdg_edges = 0;
  std::size_t sccs = 0;
  std::size_t cyclic_sccs = 0;
  bool truncated = false;  // enumeration hit Input::max_cycles
  std::vector<CycleInfo> cycles;

  std::vector<BoundCheck> bounds;
  std::vector<LintFinding> lints;

  /// Engaged only by sweep_failures() / suggest_repairs(); absent from
  /// the plain analyze() report (and from its JSON).
  std::optional<FailureSweep> failure_sweep;
  std::optional<Repairs> repairs;

  /// No CBD at all (and the enumeration saw the whole graph).
  bool cbd_free() const { return cycles.empty() && !truncated; }
  /// Every verified inequality holds.
  bool bounds_ok() const;
  /// Truncated enumerations are always kAtRisk: a verdict from a prefix
  /// of the cycle set proves nothing about the cycles it never saw.
  Verdict verdict() const;

  /// Deterministic pretty-printed JSON ("gfc-analyze-v2" schema).
  std::string json() const;
  /// Human report; `out` defaults to stdout.
  void print_human(std::FILE* out = nullptr) const;
  /// One-line verdict summary, e.g.
  /// "at_risk: 3 CBD cycles (1 activated), 1 bound violation, 2 lints".
  std::string summary() const;
};

Report analyze(const Input& in);

/// Is `cycle` (canonical form; see topo::canonicalize_cycle) one of the
/// report's enumerated cycles? The membership test behind the runtime
/// witness cross-check: every deadlock the detector catches must appear
/// in the current static enumeration, or the analyzer is unsound.
bool report_contains_cycle(const Report& rep,
                           const std::vector<topo::DirectedLink>& cycle);

/// Cheap CBD-prone screening over the full ECMP routing closure — the
/// pre-filter large topology sweeps (paper-scale Table 1) run per sample
/// before deciding whether to spend a simulation on it. One witness-cycle
/// DFS, no Johnson enumeration, no bound checks: O(V + E) in the
/// buffer-dependency graph versus a full analyze() pass.
struct CbdScreen {
  bool prone = false;
  /// Canonical witness cycle (empty when !prone).
  std::vector<topo::DirectedLink> cycle;
  /// The witness rendered with topology names ("S0->S1 -> ..."), for
  /// bench logs; empty when !prone.
  std::string witness;
};

CbdScreen screen_cbd(const topo::Topology& topo,
                     const topo::RoutingTable& routing);

/// Thrown by preflight() in PreflightMode::kFail when the verdict is
/// kAtRisk (worker pools capture it as the trial's failure text).
class PreflightError : public std::runtime_error {
 public:
  explicit PreflightError(const std::string& what)
      : std::runtime_error(what) {}
};

/// The verdict-and-side-effect half of preflight(), for callers that
/// already hold a Report (the incremental analyzer in Fabric): print the
/// summary to stderr when the verdict isn't clean, throw PreflightError
/// on kAtRisk under kFail, return the verdict. Prints nothing and never
/// throws under kOff.
Verdict preflight_verdict(PreflightMode mode, const Report& rep);

/// The Fabric::install_routing hook: analyze, report risks on stderr
/// (kWarn/kFail), throw PreflightError on kAtRisk under kFail. Returns
/// the verdict. No-op returning kDeadlockFree under kOff.
Verdict preflight(PreflightMode mode, const topo::Topology& topo,
                  const topo::RoutingTable& routing,
                  const runner::ScenarioConfig& cfg,
                  const std::string& scenario = {});

}  // namespace gfc::analyze
