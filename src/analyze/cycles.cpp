#include "analyze/cycles.hpp"

#include <algorithm>

namespace gfc::analyze {

namespace {

// Iterative Tarjan: explicit DFS frames so deep dependency graphs (one
// vertex per directed link) can't overflow the call stack.
struct TarjanState {
  const Adjacency* adj;
  std::vector<int> index, lowlink;
  std::vector<char> on_stack;
  std::vector<int> stack;
  std::vector<std::vector<int>> components;
  int next_index = 0;

  explicit TarjanState(const Adjacency& a)
      : adj(&a),
        index(a.size(), -1),
        lowlink(a.size(), 0),
        on_stack(a.size(), 0) {}

  void run(int root) {
    struct Frame {
      int v;
      std::size_t next_edge;
    };
    std::vector<Frame> frames{{root, 0}};
    enter(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& out = (*adj)[static_cast<std::size_t>(f.v)];
      if (f.next_edge < out.size()) {
        const int w = out[f.next_edge++];
        if (index[static_cast<std::size_t>(w)] < 0) {
          enter(w);
          frames.push_back({w, 0});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(f.v)] =
              std::min(lowlink[static_cast<std::size_t>(f.v)],
                       index[static_cast<std::size_t>(w)]);
        }
      } else {
        const int v = f.v;
        if (lowlink[static_cast<std::size_t>(v)] ==
            index[static_cast<std::size_t>(v)]) {
          std::vector<int> comp;
          for (;;) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = 0;
            comp.push_back(w);
            if (w == v) break;
          }
          std::sort(comp.begin(), comp.end());
          components.push_back(std::move(comp));
        }
        frames.pop_back();
        if (!frames.empty()) {
          const int parent = frames.back().v;
          lowlink[static_cast<std::size_t>(parent)] =
              std::min(lowlink[static_cast<std::size_t>(parent)],
                       lowlink[static_cast<std::size_t>(v)]);
        }
      }
    }
  }

  void enter(int v) {
    index[static_cast<std::size_t>(v)] = next_index;
    lowlink[static_cast<std::size_t>(v)] = next_index;
    ++next_index;
    on_stack[static_cast<std::size_t>(v)] = 1;
    stack.push_back(v);
  }
};

// Johnson's CIRCUIT procedure over one SCC's adjacency, rooted at the
// component's smallest vertex `s`. Recursive: depth is bounded by the
// SCC size (one vertex per directed link, a few thousand at k = 16).
struct JohnsonState {
  const Adjacency* adj;  // restricted to the current SCC
  int s = 0;
  std::vector<char> blocked;
  std::vector<std::vector<int>> block_map;  // B sets
  std::vector<int> path;
  std::vector<std::vector<int>>* cycles;
  std::size_t max_cycles;
  bool truncated = false;

  bool circuit(int v) {
    if (truncated) return false;
    bool found = false;
    path.push_back(v);
    blocked[static_cast<std::size_t>(v)] = 1;
    for (const int w : (*adj)[static_cast<std::size_t>(v)]) {
      if (truncated) break;
      if (w == s) {
        if (cycles->size() >= max_cycles) {
          truncated = true;
          break;
        }
        cycles->push_back(path);
        found = true;
      } else if (!blocked[static_cast<std::size_t>(w)]) {
        if (circuit(w)) found = true;
      }
    }
    if (found) {
      unblock(v);
    } else {
      for (const int w : (*adj)[static_cast<std::size_t>(v)]) {
        auto& b = block_map[static_cast<std::size_t>(w)];
        if (std::find(b.begin(), b.end(), v) == b.end()) b.push_back(v);
      }
    }
    path.pop_back();
    return found;
  }

  void unblock(int v) {
    blocked[static_cast<std::size_t>(v)] = 0;
    std::vector<int> pending;
    pending.swap(block_map[static_cast<std::size_t>(v)]);
    for (const int w : pending)
      if (blocked[static_cast<std::size_t>(w)]) unblock(w);
  }
};

}  // namespace

std::vector<std::vector<int>> strongly_connected_components(
    const Adjacency& adj) {
  TarjanState t(adj);
  for (int v = 0; v < static_cast<int>(adj.size()); ++v)
    if (t.index[static_cast<std::size_t>(v)] < 0) t.run(v);
  std::sort(t.components.begin(), t.components.end(),
            [](const std::vector<int>& a, const std::vector<int>& b) {
              return a.front() < b.front();
            });
  return t.components;
}

CycleEnumeration elementary_cycles(const Adjacency& adj,
                                   std::size_t max_cycles) {
  CycleEnumeration out;
  const int n = static_cast<int>(adj.size());
  int s = 0;
  while (s < n && !out.truncated) {
    // SCCs of the subgraph induced by vertices >= s.
    Adjacency sub(adj.size());
    for (int v = s; v < n; ++v)
      for (const int w : adj[static_cast<std::size_t>(v)])
        if (w >= s) sub[static_cast<std::size_t>(v)].push_back(w);
    const auto comps = strongly_connected_components(sub);

    // The least vertex that sits in a component containing a cycle (size
    // > 1, or a self-loop) becomes the next Johnson root.
    int root = -1;
    const std::vector<int>* root_comp = nullptr;
    for (const auto& comp : comps) {
      if (comp.front() < s) continue;
      const bool cyclic =
          comp.size() > 1 ||
          [&] {
            const auto& o = sub[static_cast<std::size_t>(comp.front())];
            return std::find(o.begin(), o.end(), comp.front()) != o.end();
          }();
      if (!cyclic) continue;
      if (root < 0 || comp.front() < root) {
        root = comp.front();
        root_comp = &comp;
      }
    }
    if (root < 0) break;

    // Restrict adjacency to the root's component.
    std::vector<char> in_comp(adj.size(), 0);
    for (const int v : *root_comp) in_comp[static_cast<std::size_t>(v)] = 1;
    Adjacency scc_adj(adj.size());
    for (const int v : *root_comp)
      for (const int w : sub[static_cast<std::size_t>(v)])
        if (in_comp[static_cast<std::size_t>(w)])
          scc_adj[static_cast<std::size_t>(v)].push_back(w);

    JohnsonState js;
    js.adj = &scc_adj;
    js.s = root;
    js.blocked.assign(adj.size(), 0);
    js.block_map.assign(adj.size(), {});
    js.cycles = &out.cycles;
    js.max_cycles = max_cycles;
    js.circuit(root);
    out.truncated = js.truncated;
    s = root + 1;
  }
  // Each cycle already leads with its smallest vertex (the Johnson root);
  // a final sort makes the list order canonical as well.
  std::sort(out.cycles.begin(), out.cycles.end(),
            [](const std::vector<int>& a, const std::vector<int>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  return out;
}

}  // namespace gfc::analyze
