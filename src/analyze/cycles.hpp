// Deterministic directed-graph algorithms for the static analyzer:
// Tarjan's strongly-connected components and Johnson's enumeration of all
// elementary cycles. Both are pure functions of the adjacency lists (no
// hashing, no address-ordered iteration), so results are byte-identical
// across runs and platforms.
#pragma once

#include <cstddef>
#include <vector>

namespace gfc::analyze {

/// Adjacency-list digraph: adj[v] lists v's out-neighbors.
using Adjacency = std::vector<std::vector<int>>;

/// Tarjan SCC decomposition. Components are returned with their member
/// vertices sorted ascending, and the component list itself sorted by
/// smallest member, so the output is canonical for a given graph.
std::vector<std::vector<int>> strongly_connected_components(
    const Adjacency& adj);

struct CycleEnumeration {
  /// Every elementary (simple, closed) cycle, each rotated so its smallest
  /// vertex leads, the list sorted by (length, vertex sequence).
  std::vector<std::vector<int>> cycles;
  /// True when enumeration stopped at `max_cycles`; `cycles` is then a
  /// prefix of the full set, not the whole truth.
  bool truncated = false;
};

/// Johnson's algorithm (SIAM J. Comput. 1975): all elementary cycles of
/// the digraph, capped at `max_cycles`. Self-loops count as length-1
/// cycles. Worst-case cost O((V + E) * (#cycles + 1)).
CycleEnumeration elementary_cycles(const Adjacency& adj,
                                   std::size_t max_cycles = 4096);

}  // namespace gfc::analyze
