// The shared back half of analyze() — the seam the incremental analyzer
// plugs into.
//
// analyze() builds the buffer-dependency graph from scratch and runs
// Johnson's enumeration; IncrementalAnalyzer replays cached per-
// destination closure ops and reuses per-SCC cycle sets. Both then hand
// the assembled graph and the canonical link-form cycle list to
// finish_report(), which fills *everything else* in the Report (header,
// tau, graph/SCC stats, per-cycle flow coverage, bound checks, routing
// lints). Because the two paths share this single exit, their reports —
// and the JSON bytes derived from them — are identical by construction;
// the randomized flap differential test in tests/incremental_test.cpp
// holds the construction halves to the same standard.
#pragma once

#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/cycles.hpp"

namespace gfc::analyze::detail {

/// A cycle enumeration lifted out of vertex-number space: each cycle as
/// its canonical link sequence (topo::canonicalize_cycle form). Link form
/// is independent of vertex numbering, so enumerations assembled by
/// different construction orders compare (and sort) identically.
struct LinkCycles {
  std::vector<std::vector<topo::DirectedLink>> cycles;
  bool truncated = false;
};

/// Convert an integer-vertex enumeration to canonical link form.
LinkCycles to_link_cycles(const std::vector<topo::DirectedLink>& links,
                          const CycleEnumeration& enumeration);

/// Fill a complete Report from an assembled buffer-dependency graph
/// (vertex links + adjacency) and its cycle enumeration. Emits the
/// truncation warning on stderr when cycles.truncated (the verdict then
/// degrades to kAtRisk; see Report::verdict).
Report finish_report(const Input& in,
                     const std::vector<topo::DirectedLink>& links,
                     const std::vector<std::vector<int>>& adj,
                     LinkCycles cycles);

}  // namespace gfc::analyze::detail
