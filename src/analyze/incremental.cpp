#include "analyze/incremental.hpp"

#include <algorithm>

#include "analyze/cycles.hpp"
#include "analyze/detail.hpp"

namespace gfc::analyze {

namespace {

/// Keep the SCC cycle cache bounded during long flap campaigns / large
/// failure sweeps. FIFO keeps eviction deterministic.
constexpr std::size_t kSccCacheCap = 64;

}  // namespace

const Report& IncrementalAnalyzer::update(const topo::RoutingTable& routing) {
  ++stats_.updates;
  const topo::Topology& topo = *in_.topo;
  const auto& hosts = topo.hosts();
  dst_cache_.resize(hosts.size());

  // Rebuild the graph as the from-scratch closure would: per destination
  // in hosts() order, replaying cached ops when the routing column toward
  // that destination is unchanged. apply_ops performs exactly the vertex
  // creations and edge appends add_routing_closure would, in the same
  // order, so vertex numbering and adjacency come out identical.
  topo::BufferDependencyGraph graph(topo);
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const topo::NodeIndex dst = hosts[i];
    DstCache& cache = dst_cache_[i];
    std::vector<std::vector<topo::NodeIndex>> column;
    column.reserve(topo.node_count());
    for (std::size_t x = 0; x < topo.node_count(); ++x)
      column.push_back(routing.next_hops(static_cast<topo::NodeIndex>(x), dst));
    if (column == cache.column) {
      ++stats_.dst_reused;
    } else {
      ++stats_.dst_recomputed;
      cache.ops = topo::destination_closure_ops(topo, routing, dst);
      cache.column = std::move(column);
    }
    graph.apply_ops(cache.ops);
  }

  const auto& links = graph.links();
  const auto& adj = graph.adjacency();

  // Cycle enumeration per cyclic SCC, served from the shape cache when the
  // SCC's canonical link-form shape was seen before. Elementary cycles
  // never cross SCC boundaries, so the union over cyclic SCCs is the
  // whole-graph enumeration's cycle set.
  const auto sccs = strongly_connected_components(adj);
  detail::LinkCycles assembled;
  bool scc_truncated = false;
  for (const auto& comp : sccs) {
    const bool cyclic =
        comp.size() > 1 ||
        [&] {
          const auto& o = adj[static_cast<std::size_t>(comp.front())];
          return std::find(o.begin(), o.end(), comp.front()) != o.end();
        }();
    if (!cyclic) continue;

    SccShape shape;
    for (const int v : comp)
      shape.members.push_back(links[static_cast<std::size_t>(v)]);
    std::sort(shape.members.begin(), shape.members.end());
    std::vector<char> in_comp(adj.size(), 0);
    for (const int v : comp) in_comp[static_cast<std::size_t>(v)] = 1;
    for (const int v : comp)
      for (const int w : adj[static_cast<std::size_t>(v)])
        if (in_comp[static_cast<std::size_t>(w)])
          shape.edges.push_back({links[static_cast<std::size_t>(v)],
                                 links[static_cast<std::size_t>(w)]});
    std::sort(shape.edges.begin(), shape.edges.end());

    const auto hit =
        std::find_if(scc_cache_.begin(), scc_cache_.end(),
                     [&](const SccCacheEntry& e) { return e.shape == shape; });
    if (hit != scc_cache_.end()) {
      ++stats_.scc_reused;
      assembled.cycles.insert(assembled.cycles.end(), hit->cycles.begin(),
                              hit->cycles.end());
      continue;
    }

    ++stats_.scc_enumerations;
    Adjacency sub(adj.size());
    for (const int v : comp)
      for (const int w : adj[static_cast<std::size_t>(v)])
        if (in_comp[static_cast<std::size_t>(w)])
          sub[static_cast<std::size_t>(v)].push_back(w);
    const CycleEnumeration e = elementary_cycles(sub, in_.max_cycles);
    if (e.truncated) {
      // An incomplete per-SCC set can't be cached or unioned; the exact
      // fallback below reproduces the from-scratch result.
      scc_truncated = true;
      break;
    }
    detail::LinkCycles lc = detail::to_link_cycles(links, e);
    assembled.cycles.insert(assembled.cycles.end(), lc.cycles.begin(),
                            lc.cycles.end());
    if (scc_cache_.size() >= kSccCacheCap)
      scc_cache_.erase(scc_cache_.begin());
    scc_cache_.push_back({std::move(shape), std::move(lc.cycles)});
  }

  // Equivalence guard: the whole-graph enumeration caps the *total* at
  // max_cycles (and only reports truncated when a further cycle was
  // actually attempted past the cap). Per-SCC union can't tell which
  // cycles a capped run would have kept, so any truncation — or a union
  // larger than the cap — falls back to one exact enumeration on the
  // identical adjacency. Union <= cap implies the from-scratch run never
  // hit the cap either, so the assembled set is exactly its cycle set.
  Input in = in_;
  in.routing = &routing;
  if (scc_truncated || assembled.cycles.size() > in_.max_cycles) {
    ++stats_.full_fallbacks;
    report_ = detail::finish_report(
        in, links, adj,
        detail::to_link_cycles(links, elementary_cycles(adj, in_.max_cycles)));
  } else {
    report_ = detail::finish_report(in, links, adj, std::move(assembled));
  }
  return report_;
}

}  // namespace gfc::analyze
