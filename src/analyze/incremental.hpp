// Fault-aware incremental re-analysis.
//
// A link flap (src/fault) followed by a routing recompute invalidates the
// pre-flight verdict; re-running analyze() from scratch on every flap is
// wasteful because most of the work is untouched: a failed link changes
// the routing columns of only the destinations it carried, and most
// strongly-connected components of the buffer-dependency graph keep the
// exact same shape.
//
// IncrementalAnalyzer exploits both:
//
//  1. Per-destination closure-op caching. The graph construction is the
//     concatenation of per-destination op sequences (see
//     topo::destination_closure_ops), each a pure function of the routing
//     column toward that destination. Columns are compared by *exact
//     equality* (never a hash — a collision would silently break
//     byte-identity); unchanged columns replay their cached ops.
//  2. Per-SCC cycle caching. Elementary cycles never cross SCC
//     boundaries, so each cyclic SCC is enumerated alone and the result
//     cached under the SCC's canonical link-form shape (sorted member
//     links + sorted edges). A recurring shape — the common case when a
//     flap rewires one corner of a fat tree — reuses its cycle set.
//
// Every update() ends in the same detail::finish_report() seam analyze()
// uses, so the produced Report (and its JSON) is byte-identical to a
// from-scratch analyze() on the current topology + routing — the
// invariant the randomized flap differential test
// (tests/incremental_test.cpp) enforces. Whenever any per-SCC
// enumeration truncates, or the union exceeds max_cycles, the analyzer
// falls back to one exact whole-graph enumeration on the identical
// adjacency, which preserves the equivalence by construction.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "analyze/analyze.hpp"

namespace gfc::analyze {

class IncrementalAnalyzer {
 public:
  struct Stats {
    std::size_t updates = 0;
    std::size_t dst_recomputed = 0;    // routing column changed
    std::size_t dst_reused = 0;        // cached ops replayed
    std::size_t scc_enumerations = 0;  // Johnson runs on one SCC
    std::size_t scc_reused = 0;        // cycle set served from cache
    std::size_t full_fallbacks = 0;    // exact whole-graph re-enumeration
  };

  /// `in.topo` must outlive the analyzer; its *current* link state is
  /// read on every update(). `in.routing` may be null — each update()
  /// names the routing explicitly.
  explicit IncrementalAnalyzer(Input in) : in_(std::move(in)) {}

  /// Re-analyze the topology's current state under `routing`. The result
  /// is byte-identical to analyze() with the same Input. The reference is
  /// only borrowed for the duration of the call.
  const Report& update(const topo::RoutingTable& routing);

  /// The last update()'s report. Empty-initialized before the first call.
  const Report& report() const { return report_; }
  const Stats& stats() const { return stats_; }

 private:
  struct DstCache {
    /// Exact routing column this cache entry was computed from:
    /// next_hops(x, dst) for every node x, in node order. Starts empty
    /// (never equal to a real column), so first use always recomputes.
    std::vector<std::vector<topo::NodeIndex>> column;
    std::vector<topo::ClosureOp> ops;
  };

  /// Canonical, vertex-numbering-independent shape of one cyclic SCC.
  struct SccShape {
    std::vector<topo::DirectedLink> members;  // sorted
    std::vector<std::pair<topo::DirectedLink, topo::DirectedLink>>
        edges;  // sorted
    bool operator==(const SccShape& o) const {
      return members == o.members && edges == o.edges;
    }
  };
  struct SccCacheEntry {
    SccShape shape;
    /// Canonical link-form cycles, from a complete (never truncated)
    /// enumeration of this SCC.
    std::vector<std::vector<topo::DirectedLink>> cycles;
  };

  Input in_;
  /// Parallel to in_.topo->hosts() (the destination order the from-scratch
  /// closure uses).
  std::vector<DstCache> dst_cache_;
  /// Linear-scanned, FIFO-evicted (insertion order — deterministic).
  std::vector<SccCacheEntry> scc_cache_;
  Report report_;
  Stats stats_;
};

}  // namespace gfc::analyze
