// Pre-flight analysis mode, shared between runner::ScenarioConfig and
// exp::CliOptions (--analyze[=fail]). Lives in its own header so neither
// side has to pull in the analyzer proper.
#pragma once

namespace gfc::analyze {

enum class PreflightMode {
  kOff,   // no pre-flight analysis (seed behavior)
  kWarn,  // analyze, report risks on stderr, run anyway
  kFail,  // analyze, throw PreflightError on an at-risk verdict
};

}  // namespace gfc::analyze
