#include "analyze/repair.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "analyze/cycles.hpp"
#include "topo/routing.hpp"

namespace gfc::analyze {

namespace {

using topo::DirectedLink;

/// Greedy minimum hitting set over `sets` (each a sorted list of element
/// ids): repeatedly take the element covering the most un-hit sets,
/// breaking ties toward the smallest id. Returns the chosen element ids.
std::vector<int> greedy_hitting_set(
    const std::vector<std::vector<int>>& sets, int element_count) {
  std::vector<int> chosen;
  std::vector<char> hit(sets.size(), 0);
  std::size_t remaining = sets.size();
  while (remaining > 0) {
    std::vector<std::size_t> coverage(static_cast<std::size_t>(element_count),
                                      0);
    for (std::size_t s = 0; s < sets.size(); ++s) {
      if (hit[s]) continue;
      for (const int e : sets[s]) ++coverage[static_cast<std::size_t>(e)];
    }
    int best = -1;
    for (int e = 0; e < element_count; ++e)
      if (best < 0 || coverage[static_cast<std::size_t>(e)] >
                          coverage[static_cast<std::size_t>(best)])
        best = e;
    if (best < 0 || coverage[static_cast<std::size_t>(best)] == 0) break;
    chosen.push_back(best);
    for (std::size_t s = 0; s < sets.size(); ++s)
      if (!hit[s] && std::binary_search(sets[s].begin(), sets[s].end(), best)) {
        hit[s] = 1;
        --remaining;
      }
  }
  return chosen;
}

std::size_t count_broken(const std::vector<std::vector<int>>& sets,
                         const std::vector<int>& chosen) {
  std::size_t broken = 0;
  for (const auto& s : sets)
    for (const int e : chosen)
      if (std::binary_search(s.begin(), s.end(), e)) {
        ++broken;
        break;
      }
  return broken;
}

}  // namespace

Repairs suggest_repairs(const Input& in, const Report& rep) {
  Repairs out;
  const bool any_activated =
      std::any_of(rep.cycles.begin(), rep.cycles.end(),
                  [](const CycleInfo& c) { return c.activated; });
  out.targeting_activated = any_activated;
  std::vector<const CycleInfo*> targets;
  for (const CycleInfo& c : rep.cycles)
    if (!any_activated || c.activated) targets.push_back(&c);
  if (targets.empty()) return out;

  const topo::Topology& topo = *in.topo;

  // --- link_removal: elements are undirected switch-switch links. ---
  {
    // Element ids in sorted (min-endpoint, max-endpoint) order, so the
    // greedy's smallest-id tie break is the smallest link name pair.
    std::map<std::pair<topo::NodeIndex, topo::NodeIndex>, int> ids;
    for (const CycleInfo* c : targets)
      for (const auto& [from, to] : c->links)
        ids.try_emplace({std::min(from, to), std::max(from, to)}, 0);
    int next = 0;
    for (auto& [key, id] : ids) id = next++;

    std::vector<std::vector<int>> sets;
    for (const CycleInfo* c : targets) {
      std::vector<int> s;
      for (const auto& [from, to] : c->links)
        s.push_back(ids.at({std::min(from, to), std::max(from, to)}));
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
      sets.push_back(std::move(s));
    }
    const std::vector<int> chosen = greedy_hitting_set(sets, next);

    std::vector<std::pair<topo::NodeIndex, topo::NodeIndex>> by_id(
        static_cast<std::size_t>(next));
    for (const auto& [key, id] : ids) by_id[static_cast<std::size_t>(id)] = key;

    RepairSuggestion sug;
    sug.kind = "link_removal";
    sug.cycles_broken = count_broken(sets, chosen);
    topo::Topology scratch = topo;
    for (const int e : chosen) {
      const auto [a, b] = by_id[static_cast<std::size_t>(e)];
      sug.removals.push_back(topo.node(a).name + "-" + topo.node(b).name);
      for (std::size_t l = 0; l < scratch.link_count(); ++l) {
        const topo::TopoLink& link =
            scratch.link(static_cast<topo::LinkIndex>(l));
        if ((link.a == a && link.b == b) || (link.a == b && link.b == a))
          scratch.fail_link(static_cast<topo::LinkIndex>(l));
      }
    }
    // Re-verify on the *rerouted* survivor topology: removals that break
    // today's cycles can still mint new ones once traffic reroutes.
    const topo::RoutingTable rerouted = topo::compute_shortest_paths(scratch);
    Input verify = in;
    verify.topo = &scratch;
    verify.routing = &rerouted;
    verify.flows.clear();
    sug.verified_cbd_free = analyze(verify).cbd_free();
    out.suggestions.push_back(std::move(sug));
  }

  // --- turn_restriction: elements are dependency edges a->b -> b->c. ---
  {
    std::map<std::pair<DirectedLink, DirectedLink>, int> ids;
    for (const CycleInfo* c : targets) {
      const std::size_t n = c->links.size();
      for (std::size_t e = 0; e < n; ++e)
        ids.try_emplace({c->links[e], c->links[(e + 1) % n]}, 0);
    }
    int next = 0;
    for (auto& [key, id] : ids) id = next++;

    std::vector<std::vector<int>> sets;
    for (const CycleInfo* c : targets) {
      std::vector<int> s;
      const std::size_t n = c->links.size();
      for (std::size_t e = 0; e < n; ++e)
        s.push_back(ids.at({c->links[e], c->links[(e + 1) % n]}));
      std::sort(s.begin(), s.end());
      sets.push_back(std::move(s));
    }
    const std::vector<int> chosen = greedy_hitting_set(sets, next);

    std::vector<std::pair<DirectedLink, DirectedLink>> by_id(
        static_cast<std::size_t>(next));
    for (const auto& [key, id] : ids) by_id[static_cast<std::size_t>(id)] = key;

    RepairSuggestion sug;
    sug.kind = "turn_restriction";
    sug.cycles_broken = count_broken(sets, chosen);
    std::vector<char> banned(static_cast<std::size_t>(next), 0);
    for (const int e : chosen) {
      const auto& [ab, bc] = by_id[static_cast<std::size_t>(e)];
      banned[static_cast<std::size_t>(e)] = 1;
      sug.removals.push_back(topo.node(ab.first).name + "->" +
                             topo.node(ab.second).name + "->" +
                             topo.node(bc.second).name);
    }
    // Verify on the dependency graph itself: restricting turns leaves the
    // topology and routing alone, so acyclicity of the filtered graph is
    // the whole check.
    topo::BufferDependencyGraph graph(topo);
    graph.add_routing_closure(*in.routing);
    const auto& links = graph.links();
    Adjacency filtered(graph.adjacency().size());
    for (std::size_t v = 0; v < graph.adjacency().size(); ++v)
      for (const int w : graph.adjacency()[v]) {
        const auto it =
            ids.find({links[v], links[static_cast<std::size_t>(w)]});
        if (it != ids.end() && banned[static_cast<std::size_t>(it->second)])
          continue;
        filtered[v].push_back(w);
      }
    bool acyclic = true;
    for (const auto& comp : strongly_connected_components(filtered)) {
      const auto& o = filtered[static_cast<std::size_t>(comp.front())];
      if (comp.size() > 1 ||
          std::find(o.begin(), o.end(), comp.front()) != o.end()) {
        acyclic = false;
        break;
      }
    }
    sug.verified_cbd_free = acyclic;
    out.suggestions.push_back(std::move(sug));
  }

  return out;
}

}  // namespace gfc::analyze
