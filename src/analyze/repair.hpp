// `gfc-analyze --suggest-repairs`: from diagnosis to prescription.
//
// Given an at-risk report, propose minimal-ish sets of removals that
// break every targeted cycle (the activated ones when any are — those are
// the cycles this scenario's flows can actually fill — otherwise all of
// them), via greedy minimum hitting set (the classic ln(n)-approximation;
// exact minimality is NP-hard):
//
//  * link_removal — physical switch-to-switch links; hitting a link kills
//    both directed buffer vertices riding on it. Verified by failing the
//    links on a scratch topology, recomputing shortest paths, and
//    re-running the full analysis: the suggestion is marked
//    verified_cbd_free only if the *rerouted* fabric really has no CBD
//    (greedy breaks the enumerated cycles, but rerouting can mint new
//    ones — the verification catches exactly that).
//  * turn_restriction — dependency edges a->b->c (don't forward traffic
//    that arrived over a->b onto b->c), the up*/down* style fix that
//    keeps all links. Verified by deleting the edges from the dependency
//    graph and checking every SCC is acyclic.
#pragma once

#include "analyze/analyze.hpp"

namespace gfc::analyze {

/// Compute repair suggestions for `rep` (a report produced from `in`).
/// Returns an empty suggestion list when the report has no cycles.
/// Deterministic: greedy ties break toward the lexicographically smallest
/// element.
Repairs suggest_repairs(const Input& in, const Report& rep);

}  // namespace gfc::analyze
