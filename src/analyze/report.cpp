// Report rendering: deterministic "gfc-analyze-v2" JSON (byte-identical
// across runs, platforms and job counts — same discipline as the campaign
// results store) and the human-readable console form. v2 over v1: the
// optional "failure_sweep" / "repairs" sections (emitted only when
// engaged) and the truncated-implies-at_risk verdict rule.
#include <cstdio>

#include "analyze/analyze.hpp"
#include "exp/value.hpp"

namespace gfc::analyze {

namespace {

std::string quote(const std::string& s) { return exp::Value::quote(s); }

std::string json_string_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    out += quote(items[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string Report::summary() const {
  std::string out = verdict_name(verdict());
  out += ": ";
  if (cbd_free()) {
    out += "no CBD cycles";
  } else {
    std::size_t activated = 0;
    for (const CycleInfo& c : cycles) activated += c.activated ? 1 : 0;
    out += std::to_string(cycles.size()) + " CBD cycle" +
           (cycles.size() == 1 ? "" : "s");
    if (truncated) out += " (truncated)";
    if (activated > 0)
      out += " (" + std::to_string(activated) + " activated by flows)";
  }
  std::size_t violations = 0;
  for (const BoundCheck& b : bounds) violations += b.ok ? 0 : 1;
  if (violations > 0)
    out += ", " + std::to_string(violations) + " bound violation" +
           (violations == 1 ? "" : "s");
  if (!lints.empty())
    out += ", " + std::to_string(lints.size()) + " lint" +
           (lints.size() == 1 ? "" : "s");
  return out;
}

std::string Report::json() const {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"gfc-analyze-v2\",\n";
  out += "  \"scenario\": " + quote(scenario) + ",\n";
  out += "  \"mechanism\": " + quote(mechanism) + ",\n";
  out += "  \"hosts\": " + std::to_string(hosts) + ",\n";
  out += "  \"switches\": " + std::to_string(switches) + ",\n";
  out += "  \"links_up\": " + std::to_string(links_up) + ",\n";
  out += "  \"buffer_per_port\": " + std::to_string(buffer_per_port) + ",\n";
  out += "  \"tau_ps\": {\"serialization\": " +
         std::to_string(tau_serialization) +
         ", \"wire\": " + std::to_string(tau_wire) +
         ", \"processing\": " + std::to_string(tau_processing) +
         ", \"total\": " + std::to_string(tau_total) + "},\n";
  out += "  \"cbd\": {\n";
  out += "    \"vertices\": " + std::to_string(bdg_vertices) + ",\n";
  out += "    \"edges\": " + std::to_string(bdg_edges) + ",\n";
  out += "    \"sccs\": " + std::to_string(sccs) + ",\n";
  out += "    \"cyclic_sccs\": " + std::to_string(cyclic_sccs) + ",\n";
  out += "    \"cycle_count\": " + std::to_string(cycles.size()) + ",\n";
  out += std::string("    \"truncated\": ") + (truncated ? "true" : "false") +
         ",\n";
  out += "    \"cycles\": [";
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    const CycleInfo& c = cycles[i];
    out += i ? ",\n      " : "\n      ";
    out += "{\"length\": " + std::to_string(c.links.size());
    out += ", \"links\": " + json_string_array(c.link_names);
    out += ", \"flows\": [";
    for (std::size_t j = 0; j < c.flows.size(); ++j) {
      if (j) out += ", ";
      out += std::to_string(c.flows[j]);
    }
    out += "], \"activated\": ";
    out += c.activated ? "true" : "false";
    out += "}";
  }
  out += cycles.empty() ? "]\n" : "\n    ]\n";
  out += "  },\n";
  out += "  \"bounds\": [";
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const BoundCheck& b = bounds[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": " + quote(b.name) + ", \"formula\": " + quote(b.formula) +
           ", \"lhs\": " + std::to_string(b.lhs) +
           ", \"rhs\": " + std::to_string(b.rhs) + ", \"ok\": " +
           (b.ok ? "true" : "false") + "}";
  }
  out += bounds.empty() ? "],\n" : "\n  ],\n";
  out += "  \"lints\": [";
  for (std::size_t i = 0; i < lints.size(); ++i) {
    out += i ? ",\n    " : "\n    ";
    out += "{\"kind\": " + quote(lints[i].kind) + ", \"message\": " +
           quote(lints[i].message) + "}";
  }
  out += lints.empty() ? "],\n" : "\n  ],\n";
  if (failure_sweep) {
    const FailureSweep& fs = *failure_sweep;
    out += "  \"failure_sweep\": {\n";
    out += "    \"max_failures\": " + std::to_string(fs.max_failures) + ",\n";
    out += "    \"baseline\": " + quote(verdict_name(fs.baseline)) + ",\n";
    out += "    \"combos\": " + std::to_string(fs.combos) + ",\n";
    out += "    \"flipped\": " + std::to_string(fs.flipped) + ",\n";
    out += "    \"results\": [";
    for (std::size_t i = 0; i < fs.results.size(); ++i) {
      const FailureCombo& c = fs.results[i];
      out += i ? ",\n      " : "\n      ";
      out += "{\"failed\": " + json_string_array(c.link_names);
      out += ", \"verdict\": " + quote(verdict_name(c.verdict));
      out += ", \"cycles\": " + std::to_string(c.cycle_count);
      out += std::string(", \"truncated\": ") + (c.truncated ? "true" : "false");
      out +=
          std::string(", \"disconnects\": ") + (c.disconnects ? "true" : "false");
      out += std::string(", \"flips\": ") + (c.flips ? "true" : "false");
      out += "}";
    }
    out += fs.results.empty() ? "],\n" : "\n    ],\n";
    out += "    \"culprits\": [";
    for (std::size_t i = 0; i < fs.culprits.size(); ++i) {
      out += i ? ",\n      " : "\n      ";
      out += json_string_array(fs.results[fs.culprits[i]].link_names);
    }
    out += fs.culprits.empty() ? "]\n" : "\n    ]\n";
    out += "  },\n";
  }
  if (repairs) {
    out += "  \"repairs\": {\n";
    out += std::string("    \"targeting_activated\": ") +
           (repairs->targeting_activated ? "true" : "false") + ",\n";
    out += "    \"suggestions\": [";
    for (std::size_t i = 0; i < repairs->suggestions.size(); ++i) {
      const RepairSuggestion& s = repairs->suggestions[i];
      out += i ? ",\n      " : "\n      ";
      out += "{\"kind\": " + quote(s.kind);
      out += ", \"removals\": " + json_string_array(s.removals);
      out += ", \"cycles_broken\": " + std::to_string(s.cycles_broken);
      out += std::string(", \"verified_cbd_free\": ") +
             (s.verified_cbd_free ? "true" : "false");
      out += "}";
    }
    out += repairs->suggestions.empty() ? "]\n" : "\n    ]\n";
    out += "  },\n";
  }
  out += "  \"verdict\": " + quote(verdict_name(verdict())) + "\n";
  out += "}\n";
  return out;
}

void Report::print_human(std::FILE* out) const {
  if (out == nullptr) out = stdout;
  std::fprintf(out, "gfc-analyze: %s\n",
               scenario.empty() ? "(unnamed scenario)" : scenario.c_str());
  std::fprintf(out,
               "  topology: %zu hosts, %zu switches, %zu links up; "
               "mechanism %s, buffer %lld B/port\n",
               hosts, switches, links_up, mechanism.c_str(),
               static_cast<long long>(buffer_per_port));
  std::fprintf(out,
               "  tau = %.3f us (serialization %.3f + wire %.3f + "
               "processing %.3f)\n",
               sim::to_us(tau_total), sim::to_us(tau_serialization),
               sim::to_us(tau_wire), sim::to_us(tau_processing));
  std::fprintf(out,
               "  buffer-dependency graph: %zu vertices, %zu edges, %zu "
               "SCCs (%zu cyclic)\n",
               bdg_vertices, bdg_edges, sccs, cyclic_sccs);
  if (cycles.empty()) {
    std::fprintf(out, "  CBD cycles: none — circular wait is impossible\n");
  } else {
    std::fprintf(out, "  CBD cycles: %zu%s\n", cycles.size(),
                 truncated ? " (enumeration truncated)" : "");
    for (const CycleInfo& c : cycles) {
      std::string line;
      for (std::size_t i = 0; i < c.link_names.size(); ++i) {
        if (i) line += " -> ";
        line += c.link_names[i];
      }
      std::fprintf(out, "    [len %zu%s] %s\n", c.links.size(),
                   c.activated ? ", ACTIVATED" : "", line.c_str());
    }
  }
  if (!bounds.empty()) {
    std::fprintf(out, "  safety bounds (%s):\n", mechanism.c_str());
    for (const BoundCheck& b : bounds)
      std::fprintf(out, "    %-22s %-40s %lld <= %lld  %s\n", b.name.c_str(),
                   b.formula.c_str(), static_cast<long long>(b.lhs),
                   static_cast<long long>(b.rhs),
                   b.ok ? "ok" : "VIOLATED");
  }
  for (const LintFinding& l : lints)
    std::fprintf(out, "  lint [%s] %s\n", l.kind.c_str(), l.message.c_str());
  if (failure_sweep) {
    const FailureSweep& fs = *failure_sweep;
    std::fprintf(out,
                 "  failure sweep (<= %d failures): %zu combos, %zu flip "
                 "%s -> risky\n",
                 fs.max_failures, fs.combos, fs.flipped,
                 verdict_name(fs.baseline));
    for (const std::size_t ci : fs.culprits) {
      const FailureCombo& c = fs.results[ci];
      std::string line;
      for (std::size_t i = 0; i < c.link_names.size(); ++i) {
        if (i) line += " + ";
        line += c.link_names[i];
      }
      std::fprintf(out, "    culprit: %s (%zu cycle%s%s)\n", line.c_str(),
                   c.cycle_count, c.cycle_count == 1 ? "" : "s",
                   c.disconnects ? ", disconnects hosts" : "");
    }
  }
  if (repairs) {
    for (const RepairSuggestion& s : repairs->suggestions) {
      std::string line;
      for (std::size_t i = 0; i < s.removals.size(); ++i) {
        if (i) line += ", ";
        line += s.removals[i];
      }
      std::fprintf(out, "  repair [%s] remove {%s}: breaks %zu cycle%s, %s\n",
                   s.kind.c_str(), line.c_str(), s.cycles_broken,
                   s.cycles_broken == 1 ? "" : "s",
                   s.verified_cbd_free ? "re-verified CBD-free"
                                       : "NOT verified CBD-free");
    }
  }
  std::fprintf(out, "  verdict: %s\n", verdict_name(verdict()));
}

}  // namespace gfc::analyze
