#include "analyze/scenario.hpp"

#include <cstdlib>

#include "topo/builders.hpp"
#include "topo/cbd.hpp"
#include "topo/scenario_gen.hpp"

namespace gfc::analyze {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

bool parse_int(const std::string& s, long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool fail(std::string* err, const std::string& message) {
  if (err != nullptr) *err = message;
  return false;
}

bool build_ring_scenario(const std::vector<std::string>& parts,
                         BuiltScenario* out, std::string* err) {
  long n = 3, hops = 2;
  if (parts.size() > 1 && !parse_int(parts[1], &n))
    return fail(err, "ring: bad switch count '" + parts[1] + "'");
  if (parts.size() > 2 && !parse_int(parts[2], &hops))
    return fail(err, "ring: bad hop count '" + parts[2] + "'");
  if (n < 3 || hops < 1 || hops >= n)
    return fail(err, "ring: need N >= 3 and 1 <= H < N");
  const topo::RingInfo info =
      topo::build_ring(out->topo, static_cast<int>(n));
  out->routing = topo::ring_clockwise_routes(out->topo, info);
  for (long i = 0; i < n; ++i)
    out->flows.push_back({info.hosts[static_cast<std::size_t>(i)],
                          info.hosts[static_cast<std::size_t>((i + hops) % n)],
                          0});
  out->name = "ring:" + std::to_string(n) + ":" + std::to_string(hops);
  return true;
}

bool build_fattree_scenario(const std::vector<std::string>& parts,
                            BuiltScenario* out, std::string* err) {
  long k = 0;
  if (parts.size() < 2 || !parse_int(parts[1], &k) || k < 2 || k % 2 != 0)
    return fail(err, "fattree: need an even K >= 2, e.g. fattree:4");
  topo::build_fattree(out->topo, static_cast<int>(k));
  out->name = "fattree:" + std::to_string(k);

  std::uint64_t stress_seed = 0;
  if (parts.size() > 2) {
    const std::string& mod = parts[2];
    if (mod.rfind("seed=", 0) == 0) {
      long seed = 0;
      if (!parse_int(mod.substr(5), &seed) || seed < 1)
        return fail(err, "fattree: bad seed '" + mod + "'");
      // The Table 1 sampling recipe: 5% failures from a k-salted stream.
      sim::Rng rng(static_cast<std::uint64_t>(seed) * 7919 +
                   static_cast<std::uint64_t>(k));
      topo::random_failures(out->topo, rng, 0.05);
      stress_seed = static_cast<std::uint64_t>(seed);
      out->name += ":seed=" + std::to_string(seed);
    } else if (mod.rfind("fail=", 0) == 0) {
      const auto sw_links = out->topo.switch_links();
      for (const std::string& tok : split(mod.substr(5), ',')) {
        long idx = 0;
        if (!parse_int(tok, &idx) || idx < 0 ||
            idx >= static_cast<long>(sw_links.size()))
          return fail(err, "fattree: bad switch-link index '" + tok + "'");
        out->topo.fail_link(sw_links[static_cast<std::size_t>(idx)]);
      }
      stress_seed = 1;
      out->name += ":" + mod;
    } else {
      return fail(err, "fattree: unknown modifier '" + mod + "'");
    }
  }
  out->routing = topo::compute_shortest_paths(out->topo);

  // With failures: condition on the flows that fill the witness cycle,
  // exactly as Table 1 does, so the report shows cycle activation.
  if (stress_seed != 0) {
    topo::BufferDependencyGraph g(out->topo);
    g.add_routing_closure(out->routing);
    const topo::CbdResult cbd = g.find_cycle();
    if (cbd.has_cbd) {
      sim::Rng rng(stress_seed * 7919 + static_cast<std::uint64_t>(k));
      const topo::CbdStress stress =
          topo::build_cbd_stress(out->topo, out->routing, cbd.cycle, rng);
      if (stress.covered)
        for (const auto& f : stress.flows)
          out->flows.push_back({f.src, f.dst, f.salt});
    }
  }
  return true;
}

bool build_incast_scenario(const std::vector<std::string>& parts,
                           BuiltScenario* out, std::string* err) {
  long n = 2;
  if (parts.size() > 1 && !parse_int(parts[1], &n))
    return fail(err, "incast: bad sender count '" + parts[1] + "'");
  if (n < 1) return fail(err, "incast: need at least one sender");
  const topo::DumbbellInfo info =
      topo::build_dumbbell(out->topo, static_cast<int>(n));
  out->routing = topo::compute_shortest_paths(out->topo);
  for (const topo::NodeIndex s : info.senders)
    out->flows.push_back({s, info.receiver, 0});
  out->name = "incast:" + std::to_string(n);
  return true;
}

void build_loop2_scenario(BuiltScenario* out) {
  // H0 - S0 - S1 - H1, with the table toward H1 bouncing between the two
  // switches: the minimal routing loop (and, in the closure, the minimal
  // 2-link CBD).
  const topo::NodeIndex h0 = out->topo.add_host("H0");
  const topo::NodeIndex h1 = out->topo.add_host("H1");
  const topo::NodeIndex s0 = out->topo.add_switch("S0");
  const topo::NodeIndex s1 = out->topo.add_switch("S1");
  out->topo.add_link(h0, s0);
  out->topo.add_link(s0, s1);
  out->topo.add_link(s1, h1);
  out->routing = topo::RoutingTable(out->topo.node_count());
  out->routing.set_next_hops(h1, h0, {s1});
  out->routing.set_next_hops(s1, h0, {s0});
  out->routing.set_next_hops(s0, h0, {h0});
  out->routing.set_next_hops(h0, h1, {s0});
  out->routing.set_next_hops(s0, h1, {s1});
  out->routing.set_next_hops(s1, h1, {s0});  // the bounce: never delivers
  out->flows.push_back({h0, h1, 0});
  out->name = "loop2";
}

}  // namespace

bool build_scenario(const std::string& spec, BuiltScenario* out,
                    std::string* err) {
  const auto parts = split(spec, ':');
  if (parts.empty() || parts[0].empty())
    return fail(err, "empty scenario spec");
  if (parts[0] == "ring") return build_ring_scenario(parts, out, err);
  if (parts[0] == "fattree") return build_fattree_scenario(parts, out, err);
  if (parts[0] == "incast") return build_incast_scenario(parts, out, err);
  if (parts[0] == "loop2") {
    build_loop2_scenario(out);
    return true;
  }
  return fail(err, "unknown scenario '" + parts[0] +
                       "' (expected ring | fattree | incast | loop2)");
}

}  // namespace gfc::analyze
