// Named analysis scenarios for the gfc-analyze CLI and the golden-report
// tests: a tiny spec grammar that builds (Topology, RoutingTable, flows)
// without constructing any Fabric or scheduling any event.
#pragma once

#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "topo/routing.hpp"
#include "topo/topology.hpp"

namespace gfc::analyze {

/// A scenario realized for static analysis only.
struct BuiltScenario {
  std::string name;  // normalized spec, echoed into the report
  topo::Topology topo;
  topo::RoutingTable routing;
  std::vector<FlowSpec> flows;
};

/// Build a scenario from a spec string:
///   ring[:N[:H]]        N-switch clockwise ring (default 3), flow i ->
///                       i+H hosts clockwise (default 2) — Figure 1 / 9
///   fattree:K           intact fat-tree, shortest-path ECMP — Figure 12
///   fattree:K:seed=S    + random 5% link failures from seed S, plus the
///                       Table 1 CBD stress flows when the witness cycle
///                       is coverable
///   fattree:K:fail=a,b  + the explicit switch-link failure list (indices
///                       into Topology::switch_links() order)
///   incast:N            N senders, one switch, one receiver — Figure 5/20
///   loop2               2-switch topology whose table bounces traffic
///                       toward H1 between S0 and S1 (routing-loop demo)
/// Returns false and sets *err on a malformed spec.
bool build_scenario(const std::string& spec, BuiltScenario* out,
                    std::string* err);

}  // namespace gfc::analyze
