#include "analyze/sweep.hpp"

#include <algorithm>
#include <map>

#include "analyze/incremental.hpp"
#include "topo/routing.hpp"

namespace gfc::analyze {

namespace {

/// All size-`size` combinations of candidate positions, lexicographic.
void append_combos(std::size_t n, std::size_t size,
                   std::vector<std::vector<std::size_t>>* out) {
  std::vector<std::size_t> combo(size);
  for (std::size_t i = 0; i < size; ++i) combo[i] = i;
  if (size > n) return;
  while (true) {
    out->push_back(combo);
    // Advance: rightmost position that can still move right.
    std::size_t i = size;
    while (i > 0 && combo[i - 1] == n - size + (i - 1)) --i;
    if (i == 0) return;
    ++combo[i - 1];
    for (std::size_t j = i; j < size; ++j) combo[j] = combo[j - 1] + 1;
  }
}

bool risky(Verdict v) { return v != Verdict::kDeadlockFree; }

}  // namespace

Report sweep_failures(const Input& in, int max_failures) {
  Report base = analyze(in);

  FailureSweep sweep;
  sweep.max_failures = max_failures;
  sweep.baseline = base.verdict();

  // Failure candidates: switch-to-switch links that are currently up
  // (host access links only disconnect a host — no CBD can appear or
  // vanish that a routability lint wouldn't already flag).
  const topo::Topology& orig = *in.topo;
  std::vector<topo::LinkIndex> candidates;
  for (const topo::LinkIndex l : orig.switch_links())
    if (orig.link(l).up) candidates.push_back(l);

  std::vector<std::vector<std::size_t>> combos;
  for (int size = 1; size <= max_failures; ++size)
    append_combos(candidates.size(), static_cast<std::size_t>(size), &combos);

  topo::Topology scratch = orig;
  Input combo_in = in;
  combo_in.topo = &scratch;
  combo_in.routing = nullptr;
  IncrementalAnalyzer inc(combo_in);

  // Link set -> result index, for the minimal-culprit subset checks.
  std::map<std::vector<topo::LinkIndex>, std::size_t> by_links;
  for (const auto& combo : combos) {
    FailureCombo res;
    for (const std::size_t c : combo) {
      const topo::LinkIndex l = candidates[c];
      scratch.fail_link(l);
      res.links.push_back(l);
      res.link_names.push_back(orig.node(orig.link(l).a).name + "-" +
                               orig.node(orig.link(l).b).name);
    }
    const topo::RoutingTable routing = topo::compute_shortest_paths(scratch);
    const Report& rep = inc.update(routing);
    res.verdict = rep.verdict();
    res.cycle_count = rep.cycles.size();
    res.truncated = rep.truncated;
    res.disconnects =
        std::any_of(rep.lints.begin(), rep.lints.end(),
                    [](const LintFinding& f) { return f.kind == "unroutable"; });
    res.flips = sweep.baseline == Verdict::kDeadlockFree && risky(res.verdict);
    if (res.flips) ++sweep.flipped;
    for (const std::size_t c : combo)
      scratch.restore_link(candidates[c]);
    by_links[res.links] = sweep.results.size();
    sweep.results.push_back(std::move(res));
  }
  sweep.combos = sweep.results.size();

  // Minimal culprits: flipping combos none of whose proper non-empty
  // subsets flip. Every such subset has size < k, so it was enumerated.
  for (std::size_t i = 0; i < sweep.results.size(); ++i) {
    const FailureCombo& res = sweep.results[i];
    if (!res.flips) continue;
    const std::size_t n = res.links.size();
    bool minimal = true;
    for (std::uint32_t mask = 1; minimal && mask + 1 < (1u << n); ++mask) {
      std::vector<topo::LinkIndex> subset;
      for (std::size_t b = 0; b < n; ++b)
        if (mask & (1u << b)) subset.push_back(res.links[b]);
      const auto it = by_links.find(subset);
      if (it != by_links.end() && sweep.results[it->second].flips)
        minimal = false;
    }
    if (minimal) sweep.culprits.push_back(i);
  }

  base.failure_sweep = std::move(sweep);
  return base;
}

}  // namespace gfc::analyze
