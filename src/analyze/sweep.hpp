// `gfc-analyze --failures k`: exhaustive failure-conditioned analysis.
//
// The pre-flight verdict certifies the fabric as built; the sweep asks
// the operational question — does the certificate survive faults? Every
// combination of at most k switch-to-switch link failures is applied to
// a scratch copy of the topology, routing is recomputed (shortest paths
// over the survivors, matching what Fabric's mid-run reroute does after a
// flap — even scenarios whose *initial* routing is pinned, like the
// clockwise ring, reroute via SPF), and the full analysis reruns over the
// rerouted ECMP closure. Combos that flip a deadlock_free baseline to a
// risky verdict are the interesting output; the minimal ones (no flipping
// proper subset) are reported as culprit sets.
#pragma once

#include "analyze/analyze.hpp"

namespace gfc::analyze {

/// Run the baseline analysis plus the <=max_failures sweep. Returns the
/// baseline Report with Report::failure_sweep engaged. Combos are
/// enumerated in lexicographic candidate order by size then position, so
/// the report is byte-deterministic. `in.topo` / `in.routing` are not
/// mutated (the sweep works on copies).
Report sweep_failures(const Input& in, int max_failures);

}  // namespace gfc::analyze
