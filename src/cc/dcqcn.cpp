#include "cc/dcqcn.hpp"

#include <algorithm>

namespace gfc::cc {

void DcqcnModule::on_flow_start(net::Flow& flow) {
  FlowState st;
  st.line = net_.host(flow.src)->port(0).line_rate();
  st.rc = st.line;
  st.rt = st.line;
  st.alpha = cfg_.alpha_init;
  state_[flow.id] = st;
  flow.send_rate = st.line;
}

void DcqcnModule::apply_rate(net::Flow& flow, FlowState& st) {
  if (st.rc > st.line) st.rc = st.line;
  if (st.rc < cfg_.min_rate) st.rc = cfg_.min_rate;
  if (st.rt > st.line) st.rt = st.line;
  flow.send_rate = st.rc;
  net_.host(flow.src)->notify_rate_change(flow.id);
}

void DcqcnModule::arm_alpha_timer(net::FlowId id) {
  FlowState& st = state_[id];
  if (st.alpha_ev.valid()) net_.sched().cancel(st.alpha_ev);
  st.alpha_ev = net_.sched().schedule_in(cfg_.alpha_timer, [this, id] {
    auto it = state_.find(id);
    if (it == state_.end()) return;
    it->second.alpha *= (1.0 - cfg_.g);
    it->second.alpha_ev = {};
    arm_alpha_timer(id);
  });
}

void DcqcnModule::arm_increase_timer(net::FlowId id) {
  FlowState& st = state_[id];
  if (st.inc_ev.valid()) net_.sched().cancel(st.inc_ev);
  st.inc_ev = net_.sched().schedule_in(cfg_.increase_timer, [this, id] {
    auto it = state_.find(id);
    if (it == state_.end()) return;
    it->second.inc_ev = {};
    ++it->second.t_stage;
    do_increase(net_.flow(id), it->second);
    arm_increase_timer(id);
  });
}

void DcqcnModule::do_increase(net::Flow& flow, FlowState& st) {
  const int f = cfg_.fast_recovery_threshold;
  if (st.t_stage < f && st.b_stage < f) {
    // Fast recovery: close half the gap to the target.
  } else if (st.t_stage >= f && st.b_stage >= f) {
    st.rt = sim::Rate{st.rt.bps + cfg_.rhai.bps};  // hyper increase
  } else {
    st.rt = sim::Rate{st.rt.bps + cfg_.rai.bps};  // additive increase
  }
  st.rc = sim::Rate{(st.rt.bps + st.rc.bps) / 2};
  apply_rate(flow, st);
}

void DcqcnModule::on_data_sent(net::HostNode&, net::Flow& flow,
                               const net::Packet& pkt) {
  auto it = state_.find(flow.id);
  if (it == state_.end() || !it->second.cut_seen) return;
  FlowState& st = it->second;
  st.bytes += pkt.size_bytes;
  if (st.bytes >= cfg_.byte_counter) {
    st.bytes -= cfg_.byte_counter;
    ++st.b_stage;
    do_increase(flow, st);
  }
}

void DcqcnModule::on_data_received(net::HostNode& rx, net::Flow& flow,
                                   const net::Packet& pkt) {
  if (!pkt.ecn_ce) return;
  const sim::TimePs now = net_.sched().now();
  auto [it, fresh] = last_cnp_sent_.try_emplace(flow.id, sim::TimePs{-1});
  if (!fresh && it->second >= 0 && now - it->second < cfg_.cnp_interval) return;
  it->second = now;
  net::Packet* cnp = net_.pool().acquire();
  cnp->type = net::PacketType::kCnp;
  cnp->priority = cfg_.cnp_priority;
  cnp->size_bytes = net::kControlFrameBytes;
  cnp->src = rx.id();
  cnp->dst = flow.src;
  cnp->flow = flow.id;
  cnp->path_salt = flow.path_salt;
  cnp->created_at = now;
  ++cnps_sent_;
  rx.inject(cnp);
}

void DcqcnModule::on_cnp(net::HostNode&, net::Flow& flow, const net::Packet&) {
  auto it = state_.find(flow.id);
  if (it == state_.end()) return;
  FlowState& st = it->second;
  st.rt = st.rc;
  st.rc = st.rc * (1.0 - st.alpha / 2.0);
  st.alpha = (1.0 - cfg_.g) * st.alpha + cfg_.g;
  st.t_stage = 0;
  st.b_stage = 0;
  st.bytes = 0;
  st.cut_seen = true;
  apply_rate(flow, st);
  arm_alpha_timer(flow.id);
  arm_increase_timer(flow.id);
}

sim::Rate DcqcnModule::current_rate(net::FlowId id) const {
  auto it = state_.find(id);
  return it == state_.end() ? sim::Rate{0} : it->second.rc;
}

}  // namespace gfc::cc
