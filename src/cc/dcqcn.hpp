// DCQCN (Zhu et al., SIGCOMM '15) — the end-to-end congestion control the
// paper pairs with GFC in its Figure 20 interaction study.
//
// Receiver: ECN-marked arrivals trigger at most one CNP per `cnp_interval`
// per flow. Sender: a CNP multiplicatively cuts the current rate RC and
// bumps alpha; alpha decays every `alpha_timer` without CNPs; rate recovery
// runs the standard fast-recovery / additive-increase / hyper-increase
// ladder driven by a timer and a byte counter.
#pragma once

#include <map>

#include "net/network.hpp"

namespace gfc::cc {

struct DcqcnConfig {
  double alpha_init = 1.0;
  double g = 1.0 / 256;
  sim::TimePs cnp_interval = sim::us(50);  // N: receiver-side CNP spacing
  sim::TimePs alpha_timer = sim::us(55);   // K: alpha decay period
  sim::TimePs increase_timer = sim::us(55);
  std::int64_t byte_counter = 10ll * 1024 * 1024;
  sim::Rate rai = sim::mbps(40);    // additive-increase step
  sim::Rate rhai = sim::mbps(200);  // hyper-increase step
  int fast_recovery_threshold = 5;  // F
  sim::Rate min_rate = sim::kbps(100);
  std::uint8_t cnp_priority = 6;
};

class DcqcnModule final : public net::CcModule {
 public:
  DcqcnModule(net::Network& net, const DcqcnConfig& cfg)
      : net_(net), cfg_(cfg) {}

  void on_flow_start(net::Flow& flow) override;
  void on_data_sent(net::HostNode& tx, net::Flow& flow,
                    const net::Packet& pkt) override;
  void on_data_received(net::HostNode& rx, net::Flow& flow,
                        const net::Packet& pkt) override;
  void on_cnp(net::HostNode& tx, net::Flow& flow,
              const net::Packet& pkt) override;
  const char* name() const override { return "DCQCN"; }

  /// Current DCQCN rate of a flow (Figure 20's "DCQCN rate" curve).
  sim::Rate current_rate(net::FlowId id) const;
  std::uint64_t cnps_sent() const { return cnps_sent_; }

 private:
  struct FlowState {
    sim::Rate rc{};  // current rate
    sim::Rate rt{};  // target rate
    sim::Rate line{};
    double alpha = 1.0;
    bool cut_seen = false;  // timers arm after the first CNP
    int t_stage = 0;
    int b_stage = 0;
    std::int64_t bytes = 0;
    sim::EventId alpha_ev{};
    sim::EventId inc_ev{};
  };

  void apply_rate(net::Flow& flow, FlowState& st);
  void do_increase(net::Flow& flow, FlowState& st);
  void arm_alpha_timer(net::FlowId id);
  void arm_increase_timer(net::FlowId id);

  net::Network& net_;
  DcqcnConfig cfg_;
  std::map<net::FlowId, FlowState> state_;
  std::map<net::FlowId, sim::TimePs> last_cnp_sent_;
  std::uint64_t cnps_sent_ = 0;
};

}  // namespace gfc::cc
