#include "core/gfc_buffer.hpp"

namespace gfc::core {

void GfcBufferModule::on_attach() {
  const auto n = static_cast<std::size_t>(node().port_count());
  stage_.assign(n, {});
  gates_.assign(n, nullptr);
  for (int p = 0; p < node().port_count(); ++p) {
    if (peer_is_switch(p)) {
      auto gate = std::make_unique<RateGate>(node().port(p));
      gates_[static_cast<std::size_t>(p)] = gate.get();
      node().port(p).set_gate(std::move(gate));
    }
  }
}

void GfcBufferModule::send_stage(int port, int prio) {
  auto& st = stage_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)];
  st.sent_stage = st.cur_stage;
  st.last_sent = sched().now();
  st.pending = {};
  net::Packet* frame = node().make_control(net::PacketType::kGfcStage);
  frame->fc_priority = prio;
  frame->fc_stage = st.cur_stage;
  network().trace_event(trace::EventType::kStageTx, node().id(), port, prio,
                        frame->id, st.cur_stage);
  node().send_control(port, frame);
}

void GfcBufferModule::check_stage(int port, int prio) {
  flowctl::SwitchNode* sw = as_switch();
  if (sw == nullptr) return;
  const int s = mapping_.stage_of(sw->ingress_bytes(port, prio));
  auto& st = stage_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)];
  if (s == st.cur_stage) return;
  st.cur_stage = static_cast<std::int8_t>(s);
  if (st.cur_stage == st.sent_stage) {
    // Oscillated back before the trailing frame fired: nothing to say.
    if (st.pending.valid()) {
      sched().cancel(st.pending);
      st.pending = {};
    }
    return;
  }
  const sim::TimePs now = sched().now();
  if (min_gap_ <= 0 || st.last_sent < 0 || now - st.last_sent >= min_gap_) {
    send_stage(port, prio);
    return;
  }
  if (!st.pending.valid()) {
    st.pending = sched().schedule_at(
        st.last_sent + min_gap_, [this, port, prio] {
          auto& s2 = stage_[static_cast<std::size_t>(port)]
                           [static_cast<std::size_t>(prio)];
          s2.pending = {};
          if (s2.cur_stage != s2.sent_stage) send_stage(port, prio);
        });
  }
}

void GfcBufferModule::on_ingress_enqueue(int port, int prio,
                                         const net::Packet& pkt) {
  LinkFcBase::on_ingress_enqueue(port, prio, pkt);
  check_stage(port, prio);
}

void GfcBufferModule::on_ingress_dequeue(int port, int prio,
                                         const net::Packet&) {
  check_stage(port, prio);
}

void GfcBufferModule::on_control(int port, const net::Packet& pkt) {
  if (pkt.type != net::PacketType::kGfcStage) return;
  RateGate* gate = gates_[static_cast<std::size_t>(port)];
  if (gate == nullptr) return;
  network().trace_event(trace::EventType::kStageRx, node().id(), port,
                        pkt.fc_priority, pkt.id, pkt.fc_stage);
  gate->set_rate(pkt.fc_priority, mapping_.rate_of(pkt.fc_stage));
}

sim::Rate GfcBufferModule::programmed_rate(int port, int prio) const {
  const RateGate* gate = gates_[static_cast<std::size_t>(port)];
  if (gate == nullptr) return sim::Rate{0};
  return gate->rate(prio);
}

}  // namespace gfc::core
