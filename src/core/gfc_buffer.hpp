// Buffer-based GFC (Sec. 5.1): the PFC-style deployment.
//
// Downstream half reuses PFC's trigger machinery but with the multi-stage
// thresholds of Eq. (5): whenever the ingress queue length crosses into a
// different stage, a 64 B feedback frame carrying the stage id goes
// upstream. Upstream half maps stage -> R_k = C/2^k through a lookup and
// programs the per-priority Rate Limiter.
#pragma once

#include <memory>
#include <vector>

#include "core/mapping.hpp"
#include "core/rate_limiter.hpp"
#include "flowctl/flow_control.hpp"

namespace gfc::core {

class GfcBufferModule final : public flowctl::LinkFcBase {
 public:
  /// `min_message_gap` rate-limits feedback per (port, priority): a queue
  /// oscillating across one stage boundary (the intended steady state)
  /// would otherwise emit a frame per packet. The paper's bandwidth
  /// analysis assumes at most one message per tau (Sec 4.2); suppressed
  /// changes are coalesced into a trailing frame carrying the latest stage.
  explicit GfcBufferModule(const MultiStageMapping& mapping,
                           sim::TimePs min_message_gap = 0)
      : mapping_(mapping), min_gap_(min_message_gap) {}

  void on_ingress_enqueue(int port, int prio, const net::Packet& pkt) override;
  void on_ingress_dequeue(int port, int prio, const net::Packet& pkt) override;
  void on_control(int port, const net::Packet& pkt) override;
  const char* name() const override { return "GFC-buffer"; }

  const MultiStageMapping& mapping() const { return mapping_; }

  /// Upstream view of the currently programmed rate (tests, wait-for graph).
  sim::Rate programmed_rate(int port, int prio) const;

 protected:
  void on_attach() override;

 private:
  void check_stage(int port, int prio);

  void send_stage(int port, int prio);

  MultiStageMapping mapping_;
  sim::TimePs min_gap_;
  struct TxState {
    std::int8_t sent_stage = 0;   // last stage actually transmitted
    std::int8_t cur_stage = 0;    // current stage (may be unsent)
    sim::TimePs last_sent = -1;
    sim::EventId pending{};
  };
  std::vector<std::array<TxState, net::kNumPriorities>> stage_;  // downstream
  std::vector<RateGate*> gates_;  // upstream; null on host-facing ports
};

}  // namespace gfc::core
