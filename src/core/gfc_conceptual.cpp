#include "core/gfc_conceptual.hpp"

#include <cstdlib>

namespace gfc::core {

void GfcConceptualModule::on_attach() {
  const auto n = static_cast<std::size_t>(node().port_count());
  last_sent_q_.assign(n, {});
  gates_.assign(n, nullptr);
  for (int p = 0; p < node().port_count(); ++p) {
    if (peer_is_switch(p)) {
      auto gate = std::make_unique<RateGate>(node().port(p));
      gates_[static_cast<std::size_t>(p)] = gate.get();
      node().port(p).set_gate(std::move(gate));
    }
  }
}

void GfcConceptualModule::maybe_report(int port, int prio) {
  flowctl::SwitchNode* sw = as_switch();
  if (sw == nullptr) return;
  const std::int64_t q = sw->ingress_bytes(port, prio);
  auto& last = last_sent_q_[static_cast<std::size_t>(port)]
                           [static_cast<std::size_t>(prio)];
  // Only report movement that changes the mapped rate: below B_0 the
  // mapping is flat at line rate, so be quiet there (and once when
  // re-entering the flat region so the upstream restores line rate).
  const bool flat = q <= mapping_.b0() && last <= mapping_.b0();
  if (flat && last >= 0) return;
  if (std::llabs(q - last) < min_delta_ && !(q <= mapping_.b0() && last > mapping_.b0()))
    return;
  last = q;
  net::Packet* frame = node().make_control(net::PacketType::kGfcQueue);
  frame->fc_priority = prio;
  frame->fc_value = q;
  network().trace_event(trace::EventType::kQsampleTx, node().id(), port, prio,
                        frame->id, q);
  node().send_control(port, frame);
}

void GfcConceptualModule::on_ingress_enqueue(int port, int prio,
                                             const net::Packet& pkt) {
  LinkFcBase::on_ingress_enqueue(port, prio, pkt);
  maybe_report(port, prio);
}

void GfcConceptualModule::on_ingress_dequeue(int port, int prio,
                                             const net::Packet&) {
  maybe_report(port, prio);
}

void GfcConceptualModule::on_control(int port, const net::Packet& pkt) {
  if (pkt.type != net::PacketType::kGfcQueue) return;
  RateGate* gate = gates_[static_cast<std::size_t>(port)];
  if (gate == nullptr) return;
  network().trace_event(trace::EventType::kQsampleRx, node().id(), port,
                        pkt.fc_priority, pkt.id, pkt.fc_value);
  gate->set_rate(pkt.fc_priority, mapping_.rate_for(pkt.fc_value));
}

sim::Rate GfcConceptualModule::programmed_rate(int port, int prio) const {
  const RateGate* gate = gates_[static_cast<std::size_t>(port)];
  if (gate == nullptr) return sim::Rate{0};
  return gate->rate(prio);
}

}  // namespace gfc::core
