// Conceptual GFC (Sec. 4.1): continuous feedback, used for the Figure 5
// study and as the reference the practical designs approximate.
//
// Truly continuous feedback is unimplementable (and is exactly why the
// paper moves to the practical designs); we approximate it by emitting a
// queue-length sample whenever the occupancy moved by `min_delta_bytes`
// since the last report. The backward-bandwidth cost this incurs is part
// of what the Figure 5 bench demonstrates.
#pragma once

#include <memory>
#include <vector>

#include "core/mapping.hpp"
#include "core/rate_limiter.hpp"
#include "flowctl/flow_control.hpp"

namespace gfc::core {

class GfcConceptualModule final : public flowctl::LinkFcBase {
 public:
  GfcConceptualModule(const LinearMapping& mapping,
                      std::int64_t min_delta_bytes = 512)
      : mapping_(mapping), min_delta_(min_delta_bytes) {}

  void on_ingress_enqueue(int port, int prio, const net::Packet& pkt) override;
  void on_ingress_dequeue(int port, int prio, const net::Packet& pkt) override;
  void on_control(int port, const net::Packet& pkt) override;
  const char* name() const override { return "GFC-conceptual"; }

  const LinearMapping& mapping() const { return mapping_; }
  sim::Rate programmed_rate(int port, int prio) const;

 protected:
  void on_attach() override;

 private:
  void maybe_report(int port, int prio);

  LinearMapping mapping_;
  std::int64_t min_delta_;
  std::vector<std::array<std::int64_t, net::kNumPriorities>> last_sent_q_;
  std::vector<RateGate*> gates_;
};

}  // namespace gfc::core
