#include "core/gfc_time.hpp"

#include <cassert>

namespace gfc::core {

void GfcTimeModule::on_attach() {
  assert(period_ > 0);
  gates_.assign(static_cast<std::size_t>(node().port_count()), nullptr);
  for (int p = 0; p < node().port_count(); ++p) {
    if (peer_is_switch(p)) {
      auto gate = std::make_unique<RateGate>(node().port(p));
      gates_[static_cast<std::size_t>(p)] = gate.get();
      node().port(p).set_gate(std::move(gate));
    }
  }
  if (as_switch() != nullptr) {
    for (int p = 0; p < node().port_count(); ++p) arm_timer(p);
  }
}

void GfcTimeModule::arm_timer(int port) {
  sched().schedule_in(period_, [this, port] {
    send_samples(port);
    arm_timer(port);
  });
}

void GfcTimeModule::send_samples(int port) {
  const std::uint32_t mask = active_prios(port);
  if (mask == 0) return;
  flowctl::SwitchNode* sw = as_switch();
  for (int prio = 0; prio < net::kNumPriorities; ++prio) {
    if ((mask & (1u << prio)) == 0) continue;
    net::Packet* frame = node().make_control(net::PacketType::kGfcQueue);
    frame->fc_priority = prio;
    frame->fc_value = sw->ingress_bytes(port, prio);
    network().trace_event(trace::EventType::kQsampleTx, node().id(), port,
                          prio, frame->id, frame->fc_value);
    node().send_control(port, frame);
  }
}

void GfcTimeModule::on_control(int port, const net::Packet& pkt) {
  if (pkt.type != net::PacketType::kGfcQueue) return;
  RateGate* gate = gates_[static_cast<std::size_t>(port)];
  if (gate == nullptr) return;
  network().trace_event(trace::EventType::kQsampleRx, node().id(), port,
                        pkt.fc_priority, pkt.id, pkt.fc_value);
  gate->set_rate(pkt.fc_priority, mapping_.rate_for(pkt.fc_value));
}

sim::Rate GfcTimeModule::programmed_rate(int port, int prio) const {
  const RateGate* gate = gates_[static_cast<std::size_t>(port)];
  if (gate == nullptr) return sim::Rate{0};
  return gate->rate(prio);
}

}  // namespace gfc::core
