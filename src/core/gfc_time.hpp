// Time-based GFC (Sec. 5.2): the CBFC-style deployment.
//
// Downstream half keeps CBFC's periodic Message Generator: every `period`
// it reports the ingress queue length (equivalent information to the
// credit/remaining-buffer field CBFC already carries). Upstream half maps
// the sample through the conceptual linear function, whose B_0 must respect
// Theorem 5.1, and programs the Rate Limiter.
#pragma once

#include <memory>
#include <vector>

#include "core/mapping.hpp"
#include "core/rate_limiter.hpp"
#include "flowctl/flow_control.hpp"

namespace gfc::core {

class GfcTimeModule final : public flowctl::LinkFcBase {
 public:
  GfcTimeModule(const LinearMapping& mapping, sim::TimePs period)
      : mapping_(mapping), period_(period) {}

  void on_control(int port, const net::Packet& pkt) override;
  const char* name() const override { return "GFC-time"; }

  const LinearMapping& mapping() const { return mapping_; }
  sim::TimePs period() const { return period_; }
  sim::Rate programmed_rate(int port, int prio) const;

 protected:
  void on_attach() override;

 private:
  void arm_timer(int port);
  void send_samples(int port);

  LinearMapping mapping_;
  sim::TimePs period_;
  std::vector<RateGate*> gates_;
};

}  // namespace gfc::core
