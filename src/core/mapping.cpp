#include "core/mapping.hpp"

#include <cassert>

namespace gfc::core {

LinearMapping::LinearMapping(sim::Rate line_rate, std::int64_t b0,
                             std::int64_t bm, sim::Rate min_rate)
    : line_rate_(line_rate), b0_(b0), bm_(bm), min_rate_(min_rate) {
  assert(0 <= b0 && b0 < bm);
}

sim::Rate LinearMapping::rate_for(std::int64_t q) const {
  if (q <= b0_) return line_rate_;
  if (q >= bm_) return min_rate_;
  const double frac = static_cast<double>(bm_ - q) / static_cast<double>(bm_ - b0_);
  sim::Rate r = line_rate_ * frac;
  return r < min_rate_ ? min_rate_ : r;
}

MultiStageMapping::MultiStageMapping(sim::Rate line_rate, std::int64_t b1,
                                     std::int64_t bm, sim::Rate min_rate)
    : line_rate_(line_rate), bm_(bm), min_rate_(min_rate) {
  assert(0 < b1 && b1 < bm);
  // B_m - B_k = (B_m - B_1) / 2^(k-1)  (Eq. 5)
  std::int64_t gap = bm - b1;  // B_m - B_k for the stage being emitted
  sim::Rate rate = line_rate / 2.0;  // R_1
  std::int64_t prev_b = -1;
  while (true) {
    const std::int64_t b_k = bm - gap;
    if (prev_b >= 0 && b_k - prev_b < 1) break;  // stage narrower than 1 B
    boundaries_.push_back(b_k);
    prev_b = b_k;
    if (rate <= min_rate) break;  // deeper stages are below the rate floor
    gap /= 2;
    rate = rate / 2.0;
    if (gap <= 0) break;
  }
}

int MultiStageMapping::stage_of(std::int64_t q) const {
  // boundaries_ is ascending; stage = count of B_k <= q.
  int lo = 0;
  int hi = num_stages();
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (boundaries_[static_cast<std::size_t>(mid)] <= q)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

sim::Rate MultiStageMapping::rate_of(int stage) const {
  assert(stage >= 0 && stage <= num_stages());
  if (stage == 0) return line_rate_;
  sim::Rate r{line_rate_.bps >> stage};
  return r < min_rate_ ? min_rate_ : r;
}

}  // namespace gfc::core
