// GFC mapping functions: queue length -> upstream sending rate.
//
// * LinearMapping — the conceptual design (Fig. 4b) reused by time-based
//   GFC: full rate up to B_0, then linear decrease, hitting the rate floor
//   as q approaches B_m.
// * MultiStageMapping — the practical buffer-based step function (Fig. 6):
//   stage rates R_k = C / 2^k (Eq. 4) and stage boundaries
//   B_m - B_k = (B_m - B_1) / 2^(k-1) (Eq. 5).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace gfc::core {

/// Commodity-switch rate-limiter granularity floor (Sec. 7: 8 Kb/s).
inline constexpr sim::Rate kDefaultMinRate{8'000};

class LinearMapping {
 public:
  LinearMapping() = default;
  LinearMapping(sim::Rate line_rate, std::int64_t b0, std::int64_t bm,
                sim::Rate min_rate = kDefaultMinRate);

  /// Mapped sending rate for ingress queue length `q` (never below the
  /// floor: GFC rates never reach zero, that is the whole point).
  sim::Rate rate_for(std::int64_t q) const;

  sim::Rate line_rate() const { return line_rate_; }
  std::int64_t b0() const { return b0_; }
  std::int64_t bm() const { return bm_; }

 private:
  sim::Rate line_rate_{};
  std::int64_t b0_ = 0;
  std::int64_t bm_ = 0;
  sim::Rate min_rate_ = kDefaultMinRate;
};

class MultiStageMapping {
 public:
  MultiStageMapping() = default;
  /// `b1` is the first threshold (paper sets B_1 directly; stage 0 below it
  /// maps to line rate). Requires 0 < b1 < bm.
  MultiStageMapping(sim::Rate line_rate, std::int64_t b1, std::int64_t bm,
                    sim::Rate min_rate = kDefaultMinRate);

  /// Stage index for queue length `q`: 0 when q < B_1, else the largest k
  /// with q >= B_k.
  int stage_of(std::int64_t q) const;

  /// R_k = C / 2^k, clamped to the rate floor.
  sim::Rate rate_of(int stage) const;

  /// B_k for k in [1, num_stages()].
  std::int64_t boundary(int k) const {
    return boundaries_[static_cast<std::size_t>(k - 1)];
  }

  /// N: stages are enumerated 1..N; deeper stages are omitted once a stage
  /// is under one byte wide (paper: 8 bits) or under the rate floor.
  int num_stages() const { return static_cast<int>(boundaries_.size()); }

  sim::Rate line_rate() const { return line_rate_; }
  std::int64_t b1() const { return boundary(1); }
  std::int64_t bm() const { return bm_; }

 private:
  sim::Rate line_rate_{};
  std::int64_t bm_ = 0;
  sim::Rate min_rate_ = kDefaultMinRate;
  std::vector<std::int64_t> boundaries_;  // B_1 .. B_N
};

}  // namespace gfc::core
