#include "core/params.hpp"

#include <cmath>

namespace gfc::core {

sim::TimePs worst_case_tau(const TauParams& p) {
  return 2 * sim::tx_time(p.line_rate, p.mtu_bytes) + 2 * p.wire_delay +
         p.processing_delay;
}

std::int64_t bytes_over(sim::Rate rate, sim::TimePs dt) {
  const __int128 num = static_cast<__int128>(rate.bps) * dt;
  const __int128 den = 8 * static_cast<__int128>(sim::kPsPerSec);
  return static_cast<std::int64_t>((num + den - 1) / den);
}

std::int64_t b0_bound_conceptual(std::int64_t bm, sim::Rate c, sim::TimePs tau) {
  return bm - 4 * bytes_over(c, tau);
}

std::int64_t b1_bound_buffer(std::int64_t bm, sim::Rate c, sim::TimePs tau) {
  return bm - 2 * bytes_over(c, tau);
}

std::int64_t b0_bound_timebased(std::int64_t bm, sim::Rate c, sim::TimePs tau,
                                sim::TimePs period) {
  const double ratio = static_cast<double>(tau) / static_cast<double>(period);
  const double factor = (std::sqrt(ratio) + 1.0) * (std::sqrt(ratio) + 1.0);
  const double ct = static_cast<double>(bytes_over(c, period));
  return bm - static_cast<std::int64_t>(std::ceil(factor * ct));
}

sim::Rate worst_case_feedback_bw(std::int64_t message_bytes, sim::TimePs tau) {
  const double bits = static_cast<double>(message_bytes) * 8.0;
  return sim::Rate{static_cast<std::int64_t>(bits / sim::to_seconds(tau))};
}

sim::Rate steady_feedback_bw(std::int64_t message_bytes, sim::TimePs tau) {
  return worst_case_feedback_bw(message_bytes, tau) / 8.0;
}

sim::TimePs cbfc_recommended_period(sim::Rate line_rate) {
  return sim::tx_time(line_rate, 65535);
}

}  // namespace gfc::core
