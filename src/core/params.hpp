// Parameter math from the paper: the tau model (Eq. 6), the safety bounds
// of Theorems 4.1 / 5.1, the buffer-based B_1 constraint, and the
// feedback-bandwidth estimates of Sec. 4.2.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace gfc::core {

/// Constituents of the worst-case feedback latency tau (Sec. 5.4).
struct TauParams {
  sim::Rate line_rate{};
  std::int64_t mtu_bytes = 1500;
  sim::TimePs wire_delay = sim::us(1);     // t_w, one direction
  sim::TimePs processing_delay = sim::us(3);  // t_r upper bound [10]
};

/// Eq. (6): tau <= 2*MTU/C + 2*t_w + t_r.
sim::TimePs worst_case_tau(const TauParams& p);

/// Bytes accumulated at `rate` over `dt` (C * tau terms), rounded up.
std::int64_t bytes_over(sim::Rate rate, sim::TimePs dt);

/// Theorem 4.1: conceptual GFC avoids hold-and-wait iff B_0 <= B_m - 4*C*tau.
std::int64_t b0_bound_conceptual(std::int64_t bm, sim::Rate c, sim::TimePs tau);

/// Buffer-based GFC: B_1 <= B_m - 2*C*tau (Sec. 4.2 / 5.4).
std::int64_t b1_bound_buffer(std::int64_t bm, sim::Rate c, sim::TimePs tau);

/// Theorem 5.1: time-based GFC avoids hold-and-wait iff
/// B_0 <= B_m - (sqrt(tau/T) + 1)^2 * C * T.
std::int64_t b0_bound_timebased(std::int64_t bm, sim::Rate c, sim::TimePs tau,
                                sim::TimePs period);

/// Sec. 4.2 occupied-bandwidth analysis for buffer-based GFC: worst case one
/// message per tau; steady state one per 8*tau.
sim::Rate worst_case_feedback_bw(std::int64_t message_bytes, sim::TimePs tau);
sim::Rate steady_feedback_bw(std::int64_t message_bytes, sim::TimePs tau);

/// CBFC-recommended feedback period: time to transmit 65535 B (Sec. 5.4).
sim::TimePs cbfc_recommended_period(sim::Rate line_rate);

}  // namespace gfc::core
