#include "core/rate_limiter.hpp"

// Header-only today; this TU pins the library target.
