// The paper's per-queue Rate Limiter (Sec. 5.3) and the egress-port gate
// that GFC variants install upstream.
//
// Register semantics from the paper: after a packet whose transmission took
// R_I = L/C, the countdown R_c = (C - R_r)/R_r * R_I must elapse before the
// next packet — i.e. packet *starts* are spaced L/R_r apart. We keep the
// start timestamp and evaluate the spacing against the *current* rate, so a
// rate increase takes effect immediately instead of waiting out a stale
// countdown.
#pragma once

#include <array>
#include <memory>

#include "net/network.hpp"
#include "net/port.hpp"
#include "sim/time.hpp"

namespace gfc::core {

class RateLimiter {
 public:
  RateLimiter() = default;
  explicit RateLimiter(sim::Rate initial_rate) : rate_(initial_rate) {}

  void set_rate(sim::Rate r) {
    rate_ = r;
    recompute();
  }
  sim::Rate rate() const { return rate_; }

  /// Earliest instant the next packet may start. Cached: the spacing only
  /// changes on transmit or rate update, while the gate re-evaluates it on
  /// every poll — the poll path must not pay the tx_time division.
  sim::TimePs next_allowed() const { return next_allowed_; }

  bool allowed(sim::TimePs now) const { return now >= next_allowed_; }

  /// A packet of `bytes` started transmission at `now`.
  void on_transmit(sim::TimePs now, std::int64_t bytes) {
    last_start_ = now;
    last_bytes_ = bytes;
    recompute();
  }

 private:
  void recompute() {
    if (last_bytes_ == 0)
      next_allowed_ = 0;
    else if (rate_.is_zero())
      next_allowed_ = sim::kTimeNever;
    else
      next_allowed_ = last_start_ + sim::tx_time(rate_, last_bytes_);
  }

  sim::Rate rate_{};
  sim::TimePs last_start_ = 0;
  std::int64_t last_bytes_ = 0;  // 0 until the first packet
  sim::TimePs next_allowed_ = 0;
};

/// TxGate with one RateLimiter per priority; all GFC variants share it.
class RateGate final : public net::TxGate {
 public:
  explicit RateGate(net::EgressPort& port) : port_(&port) {
    for (auto& lim : limiters_) lim.set_rate(port.line_rate());
  }

  bool allowed(const net::Packet& pkt, sim::TimePs now,
               sim::TimePs* wake_at) override {
    const RateLimiter& lim = limiters_[pkt.priority];
    if (lim.allowed(now)) return true;
    const sim::TimePs t = lim.next_allowed();
    if (t < *wake_at) *wake_at = t;
    return false;
  }

  void on_transmit(const net::Packet& pkt, sim::TimePs now) override {
    limiters_[pkt.priority].on_transmit(now, pkt.size_bytes);
  }

  /// Rate Adjuster entry point: update the assigned rate and re-evaluate.
  void set_rate(int prio, sim::Rate r) {
    RateLimiter& lim = limiters_[static_cast<std::size_t>(prio)];
    if (lim.rate() != r) {
      lim.set_rate(r);
      port_->owner().network().trace_event(trace::EventType::kRateSet,
                                           port_->owner().id(), port_->index(),
                                           prio, 0, r.bps);
    }
    port_->kick();
  }

  sim::Rate rate(int prio) const {
    return limiters_[static_cast<std::size_t>(prio)].rate();
  }

 private:
  net::EgressPort* port_;
  std::array<RateLimiter, net::kNumPriorities> limiters_;
};

}  // namespace gfc::core
