// Declarative experiment campaigns: a Campaign is an ordered list of named
// Trials, each a self-contained factory that builds and runs its own
// simulation (private Scheduler/Network) and returns structured metrics.
// Because trials share nothing, a campaign's results are independent of
// execution order and thread count (see worker_pool.hpp).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exp/value.hpp"

namespace gfc::exp {

/// What a trial hands back: an ordered metric set. Keys are emitted to
/// JSON in insertion order.
struct TrialResult {
  ParamSet metrics;
  TrialResult& add(std::string name, Value v) {
    metrics.set(std::move(name), std::move(v));
    return *this;
  }
};

struct Trial {
  std::string name;    // unique within the campaign, e.g. "a/GFC-buffer/seed7"
  ParamSet params;     // the sweep coordinates this trial realizes
  std::function<TrialResult()> run;  // must not touch shared mutable state
};

struct Campaign {
  std::string name;
  /// Base RNG-seed offset the trials were built with (--seed); recorded in
  /// the results header so a JSON artifact is reproducible from itself.
  std::uint64_t seed = 0;
  std::vector<Trial> trials;

  Trial& add(std::string trial_name, ParamSet params,
             std::function<TrialResult()> run) {
    trials.push_back(
        Trial{std::move(trial_name), std::move(params), std::move(run)});
    return trials.back();
  }
  std::size_t size() const { return trials.size(); }
};

/// Cross-product sweep helper: named axes, expanded row-major (the first
/// axis varies slowest), each point an ordered ParamSet.
class Grid {
 public:
  Grid& axis(std::string name, std::vector<Value> values) {
    axes_.emplace_back(std::move(name), std::move(values));
    return *this;
  }

  std::size_t size() const {
    std::size_t n = 1;
    for (const auto& [name, vals] : axes_) n *= vals.size();
    return n;
  }

  /// All grid points; an axis-free grid yields one empty point. An axis
  /// with no values collapses the grid to nothing.
  std::vector<ParamSet> points() const {
    std::vector<ParamSet> out{ParamSet{}};
    for (const auto& [name, vals] : axes_) {
      std::vector<ParamSet> next;
      next.reserve(out.size() * vals.size());
      for (const auto& base : out)
        for (const auto& v : vals) {
          ParamSet p = base;
          p.set(name, v);
          next.push_back(std::move(p));
        }
      out = std::move(next);
    }
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::vector<Value>>> axes_;
};

}  // namespace gfc::exp
