#include "exp/cli.hpp"

#include <cstdlib>
#include <cstring>
#include <filesystem>

namespace gfc::exp {

namespace {

[[noreturn]] void usage_and_exit(const char* prog, const char* bad) {
  std::fprintf(stderr, "unknown or incomplete argument: %s\n", bad);
  std::fprintf(stderr,
               "usage: %s [--quick] [--jobs N] [--seed N] [--json PATH] "
               "[--timing] [--no-progress] [--analyze[=fail]] [--trace] "
               "[--trace-out DIR] [--trace-categories LIST]\n",
               prog);
  std::exit(2);
}

}  // namespace

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--quick")) {
      opts.quick = true;
    } else if (!std::strcmp(a, "--timing")) {
      opts.timing = true;
    } else if (!std::strcmp(a, "--no-progress")) {
      opts.progress = false;
    } else if (!std::strcmp(a, "--jobs")) {
      if (i + 1 >= argc) usage_and_exit(argv[0], a);
      opts.jobs = std::atoi(argv[++i]);
    } else if (!std::strncmp(a, "--jobs=", 7)) {
      opts.jobs = std::atoi(a + 7);
    } else if (!std::strcmp(a, "--seed")) {
      if (i + 1 >= argc) usage_and_exit(argv[0], a);
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strncmp(a, "--seed=", 7)) {
      opts.seed = std::strtoull(a + 7, nullptr, 10);
    } else if (!std::strcmp(a, "--json")) {
      if (i + 1 >= argc) usage_and_exit(argv[0], a);
      opts.json_path = argv[++i];
    } else if (!std::strncmp(a, "--json=", 7)) {
      opts.json_path = a + 7;
    } else if (!std::strcmp(a, "--analyze")) {
      opts.preflight = analyze::PreflightMode::kWarn;
    } else if (!std::strcmp(a, "--analyze=fail")) {
      opts.preflight = analyze::PreflightMode::kFail;
    } else if (!std::strcmp(a, "--analyze=warn")) {
      opts.preflight = analyze::PreflightMode::kWarn;
    } else if (!std::strcmp(a, "--trace")) {
      opts.trace = true;
    } else if (!std::strcmp(a, "--trace-out")) {
      if (i + 1 >= argc) usage_and_exit(argv[0], a);
      opts.trace_out = argv[++i];
    } else if (!std::strncmp(a, "--trace-out=", 12)) {
      opts.trace_out = a + 12;
    } else if (!std::strcmp(a, "--trace-categories") ||
               !std::strncmp(a, "--trace-categories=", 19)) {
      std::string spec;
      if (a[18] == '=') {
        spec = a + 19;
      } else {
        if (i + 1 >= argc) usage_and_exit(argv[0], a);
        spec = argv[++i];
      }
      std::string err;
      opts.trace_categories = trace::parse_categories(spec, &err);
      if (opts.trace_categories == 0) {
        std::fprintf(stderr, "%s\n", err.empty() ? "empty category list"
                                                 : err.c_str());
        usage_and_exit(argv[0], a);
      }
    } else {
      usage_and_exit(argv[0], a);
    }
  }
  if (opts.trace && !opts.trace_out.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.trace_out, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --trace-out directory %s: %s\n",
                   opts.trace_out.c_str(), ec.message().c_str());
      std::exit(2);
    }
  }
  return opts;
}

bool finish_cli(const CliOptions& opts, const CampaignResult& result) {
  bool ok = true;
  for (const auto& t : result.trials)
    if (t.failed) {
      std::fprintf(stderr, "trial %s failed: %s\n", t.name.c_str(),
                   t.error.c_str());
      ok = false;
    }
  if (opts.json_path.empty()) return ok;
  if (!result.write_json(opts.json_path, opts.timing)) {
    std::fprintf(stderr, "failed to write %s\n", opts.json_path.c_str());
    return false;
  }
  std::fprintf(stderr, "wrote %s (%zu trials, %zu failed)\n",
               opts.json_path.c_str(), result.trials.size(),
               result.failures());
  return ok;
}

}  // namespace gfc::exp
