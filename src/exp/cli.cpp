#include "exp/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "exp/journal.hpp"

namespace gfc::exp {

namespace {

[[noreturn]] void usage_and_exit(const char* prog, const char* bad) {
  std::fprintf(stderr, "unknown or incomplete argument: %s\n", bad);
  std::fprintf(stderr,
               "usage: %s [--quick] [--jobs N] [--seed N] [--scale F] "
               "[--json PATH] [--timing] [--no-progress] [--analyze[=fail]] "
               "[--cbd-free-routing] "
               "[--trace] [--trace-out DIR] [--trace-categories LIST] "
               "[--resume PATH]... [--journal PATH] [--trial-timeout SECS] "
               "[--retries N] [--shard I/N] [--shards N] [--wedge TRIAL]\n",
               prog);
  std::exit(2);
}

/// Strict numeric parsing: the whole value must be consumed, no silent
/// atoi-style "abc -> 0". `flag` names the offender in the usage message.
long long parse_ll(const char* prog, const char* flag, const char* text,
                   long long min_value, long long max_value) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < min_value ||
      v > max_value) {
    std::fprintf(stderr, "%s: expected an integer in [%lld, %lld], got '%s'\n",
                 flag, min_value, max_value, text);
    usage_and_exit(prog, flag);
  }
  return v;
}

std::uint64_t parse_u64(const char* prog, const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || *text == '-') {
    std::fprintf(stderr, "%s: expected a non-negative integer, got '%s'\n",
                 flag, text);
    usage_and_exit(prog, flag);
  }
  return v;
}

double parse_positive_double(const char* prog, const char* flag,
                             const char* text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !(v > 0)) {
    std::fprintf(stderr, "%s: expected a positive number, got '%s'\n", flag,
                 text);
    usage_and_exit(prog, flag);
  }
  return v;
}

/// "--shard I/N": 0 <= I < N, N > 0.
void parse_shard(const char* prog, const char* text, CliOptions* opts) {
  const char* slash = std::strchr(text, '/');
  if (slash == nullptr || slash == text || slash[1] == '\0') {
    std::fprintf(stderr, "--shard: expected I/N (e.g. 0/4), got '%s'\n", text);
    usage_and_exit(prog, "--shard");
  }
  const std::string i_part(text, slash);
  const long long i = parse_ll(prog, "--shard", i_part.c_str(), 0, 1 << 20);
  const long long c = parse_ll(prog, "--shard", slash + 1, 1, 1 << 20);
  if (i >= c) {
    std::fprintf(stderr, "--shard: index %lld out of range for %lld shards\n",
                 i, c);
    usage_and_exit(prog, "--shard");
  }
  opts->shard_index = static_cast<int>(i);
  opts->shard_count = static_cast<int>(c);
}

/// Flag value for `--flag VALUE` or `--flag=VALUE`; advances *i for the
/// two-token form. Null when `a` is not this flag at all.
const char* flag_value(const char* prog, const char* flag, int argc,
                       char** argv, int* i) {
  const char* a = argv[*i];
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(a, flag, len) != 0) return nullptr;
  if (a[len] == '=') return a + len + 1;
  if (a[len] != '\0') return nullptr;  // prefix of a longer flag
  if (*i + 1 >= argc) usage_and_exit(prog, a);
  return argv[++*i];
}

}  // namespace

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const char* v = nullptr;
    if (!std::strcmp(a, "--quick")) {
      opts.quick = true;
    } else if (!std::strcmp(a, "--timing")) {
      opts.timing = true;
    } else if (!std::strcmp(a, "--no-progress")) {
      opts.progress = false;
    } else if ((v = flag_value(argv[0], "--jobs", argc, argv, &i))) {
      opts.jobs = static_cast<int>(parse_ll(argv[0], "--jobs", v, 0, 4096));
    } else if ((v = flag_value(argv[0], "--seed", argc, argv, &i))) {
      opts.seed = parse_u64(argv[0], "--seed", v);
    } else if ((v = flag_value(argv[0], "--scale", argc, argv, &i))) {
      opts.scale = parse_positive_double(argv[0], "--scale", v);
    } else if ((v = flag_value(argv[0], "--json", argc, argv, &i))) {
      opts.json_path = v;
    } else if ((v = flag_value(argv[0], "--resume", argc, argv, &i))) {
      opts.resume_paths.emplace_back(v);
    } else if ((v = flag_value(argv[0], "--journal", argc, argv, &i))) {
      opts.journal_path = v;
    } else if ((v = flag_value(argv[0], "--trial-timeout", argc, argv, &i))) {
      opts.trial_timeout_s =
          parse_positive_double(argv[0], "--trial-timeout", v);
    } else if ((v = flag_value(argv[0], "--retries", argc, argv, &i))) {
      opts.retries =
          static_cast<int>(parse_ll(argv[0], "--retries", v, 0, 1000));
    } else if ((v = flag_value(argv[0], "--shards", argc, argv, &i))) {
      opts.sim_shards =
          static_cast<int>(parse_ll(argv[0], "--shards", v, 1, 256));
    } else if ((v = flag_value(argv[0], "--shard", argc, argv, &i))) {
      parse_shard(argv[0], v, &opts);
    } else if ((v = flag_value(argv[0], "--wedge", argc, argv, &i))) {
      opts.wedge_trial = v;
    } else if (!std::strcmp(a, "--analyze")) {
      opts.preflight = analyze::PreflightMode::kWarn;
    } else if (!std::strcmp(a, "--analyze=fail")) {
      opts.preflight = analyze::PreflightMode::kFail;
    } else if (!std::strcmp(a, "--analyze=warn")) {
      opts.preflight = analyze::PreflightMode::kWarn;
    } else if (!std::strcmp(a, "--cbd-free-routing")) {
      opts.cbd_free_routing = true;
    } else if (!std::strcmp(a, "--trace")) {
      opts.trace = true;
    } else if ((v = flag_value(argv[0], "--trace-out", argc, argv, &i))) {
      opts.trace_out = v;
    } else if ((v = flag_value(argv[0], "--trace-categories", argc, argv,
                               &i))) {
      std::string err;
      opts.trace_categories = trace::parse_categories(v, &err);
      if (opts.trace_categories == 0) {
        std::fprintf(stderr, "%s\n", err.empty() ? "empty category list"
                                                 : err.c_str());
        usage_and_exit(argv[0], a);
      }
    } else {
      usage_and_exit(argv[0], a);
    }
  }
  if (opts.trace && !opts.trace_out.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.trace_out, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --trace-out directory %s: %s\n",
                   opts.trace_out.c_str(), ec.message().c_str());
      std::exit(2);
    }
  }
  return opts;
}

CampaignResult run_campaign_cli(const Campaign& campaign,
                                const CliOptions& opts) {
  try {
    return run_campaign(campaign, opts.pool());
  } catch (const JournalError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

int finish_cli(const CliOptions& opts, const CampaignResult& result) {
  int status = 0;
  for (const auto& t : result.trials) {
    if (t.failed) {
      std::fprintf(stderr, "trial %s failed: %s\n", t.name.c_str(),
                   t.error.c_str());
      status = 1;
    } else if (t.timed_out) {
      std::fprintf(stderr, "trial %s TIMED OUT: %s\n", t.name.c_str(),
                   t.error.c_str());
      if (status == 0) status = 3;
    }
  }
  if (opts.json_path.empty()) return status;
  if (!result.write_json(opts.json_path, opts.timing)) {
    std::fprintf(stderr, "failed to write %s\n", opts.json_path.c_str());
    return 1;
  }
  const std::size_t skipped = result.skipped();
  std::fprintf(stderr, "wrote %s (%zu trials, %zu failed, %zu timed out",
               opts.json_path.c_str(), result.trials.size(),
               result.failures(), result.timeouts());
  if (skipped > 0)
    std::fprintf(stderr, ", %zu skipped by --shard", skipped);
  std::fprintf(stderr, ")\n");
  return status;
}

}  // namespace gfc::exp
