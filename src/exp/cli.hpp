// Shared command-line surface for campaign binaries:
//   --jobs N      worker threads (0 = all cores)        [default 1]
//   --quick       shrunken sweep for smoke runs
//   --seed N      offset added to every trial's RNG seeds [default 0]
//   --scale F     sweep-size multiplier for the scaling benches (table1
//                 topology counts)                      [default 1]
//   --json PATH   write the campaign's JSON results to PATH
//   --timing      include wall-clock metadata in the JSON
//   --no-progress suppress the live progress/ETA line
//   --trace               enable binary event tracing per trial
//   --trace-out DIR       write per-trial trace artifacts under DIR
//   --trace-categories S  comma list (port,link,pfc,credit,gfc,sched,
//                         deadlock,flow) or "all"       [default all]
//   --analyze[=fail]      static pre-flight deadlock-risk analysis per
//                         fabric: warn on stderr, or fail the trial
//   --cbd-free-routing    replace every scenario's routing with the
//                         up*/down* CBD-free tables (FcSetup's
//                         cbd_free_routing); composes with --analyze=fail
//                         to assert the restriction actually removes the
//                         cycles
// Crash-safe campaign execution (see exp/journal.hpp, exp/worker_pool.hpp):
//   --resume PATH         journal-backed run: load PATH if it exists
//                         (skipping completed trials), append each newly
//                         completed trial to it. Repeatable — extra paths
//                         are load-only, e.g. merging shard journals.
//   --journal PATH        write the journal here instead of the first
//                         --resume path (or with no --resume at all)
//   --trial-timeout SECS  watchdog: cancel a trial attempt after SECS
//                         wall-clock seconds, record it as timed_out
//   --retries N           re-run a timed-out trial up to N extra times
//                         (same seed) before recording the timeout
//   --shard I/N           run only shard I of N (contiguous trial-id
//                         ranges); merge the shards' journals afterwards
//   --shards N            parallel core: run each trial's fabric on N
//                         scheduler shards (src/par); results are
//                         byte-identical at any N  [default 1]
//   --wedge TRIAL         testing hook: replace TRIAL's body with an
//                         infinite heartbeat loop (watchdog smoke tests)
#pragma once

#include <string>
#include <vector>

#include "analyze/mode.hpp"
#include "exp/worker_pool.hpp"
#include "trace/trace.hpp"

namespace gfc::exp {

struct CliOptions {
  int jobs = 1;
  bool quick = false;
  bool timing = false;
  bool progress = true;
  /// Base seed offset: campaign binaries add it to every trial's RNG seeds
  /// (sim, workload and fault streams) and stamp it into Campaign::seed.
  /// Zero — the default — reproduces the historical fixed-seed outputs.
  std::uint64_t seed = 0;
  /// Sweep-size multiplier for the scaling benches (table1 samples
  /// round(base * scale) topologies per k). 1 = the tracked default.
  double scale = 1.0;
  /// Parallel core shard count per trial fabric (--shards; assign to
  /// ScenarioConfig::shards). Orthogonal to --shard I/N journal sharding
  /// and to --jobs: trials stay deterministic at any combination.
  int sim_shards = 1;
  std::string json_path;  // empty = don't write JSON

  // Crash-safe execution (exp/worker_pool.hpp has the semantics).
  double trial_timeout_s = 0;
  int retries = 0;
  int shard_index = 0;
  int shard_count = 1;
  std::string journal_path;               // --journal
  std::vector<std::string> resume_paths;  // --resume (repeatable)
  std::string wedge_trial;                // --wedge (testing hook)

  /// Static pre-flight analysis mode for every fabric the binary builds
  /// (assign to ScenarioConfig::preflight after parse_cli).
  analyze::PreflightMode preflight = analyze::PreflightMode::kOff;

  /// Route restriction for every scenario the binary builds (assign to
  /// FcSetup::cbd_free_routing after parse_cli; the scenario builders
  /// honor it). With --analyze=fail this turns the campaign into a proof
  /// that the restricted routing really is cycle-free on every topology
  /// the sweep visits.
  bool cbd_free_routing = false;

  // Tracing (see src/trace/): each trial gets its own Tracer, so artifacts
  // are deterministic at any --jobs.
  bool trace = false;
  std::string trace_out;       // artifact directory ("." when empty)
  std::uint32_t trace_categories = trace::kCatAll;

  PoolOptions pool() const {
    PoolOptions p;
    p.jobs = jobs;
    p.progress = progress;
    p.trial_timeout_s = trial_timeout_s;
    p.retries = retries;
    p.shard_index = shard_index;
    p.shard_count = shard_count;
    p.resume_paths = resume_paths;
    p.wedge_trial = wedge_trial;
    // --resume doubles as the journal unless --journal overrides it.
    p.journal_path = !journal_path.empty()
                         ? journal_path
                         : (resume_paths.empty() ? std::string{}
                                                 : resume_paths.front());
    return p;
  }

  /// TraceOptions for a trial's ScenarioConfig (enabled iff --trace).
  trace::TraceOptions trace_options() const {
    trace::TraceOptions t;
    t.enabled = trace;
    t.categories = trace_categories;
    return t;
  }

  /// "<dir>/<trial>.<ext>" artifact path for a trial id — the trial name is
  /// the deterministic key, never the worker index, so artifacts are stable
  /// at any --jobs. Path separators and spaces inside the trial name are
  /// flattened to '_' to keep everything in one directory.
  std::string trace_artifact(const std::string& trial_name,
                             const char* ext) const {
    std::string flat = trial_name;
    for (char& c : flat)
      if (c == '/' || c == '\\' || c == ' ') c = '_';
    const std::string dir = trace_out.empty() ? "." : trace_out;
    return dir + "/" + flat + "." + ext;
  }
};

/// Parse the flags above; on an unknown argument, missing flag value, or a
/// malformed numeric value (--jobs=abc, --shard 4/0, ...), prints usage to
/// stderr and exits with status 2.
CliOptions parse_cli(int argc, char** argv);

/// run_campaign with the CLI's crash-safety options, translating journal
/// problems (fingerprint mismatch, corruption, I/O failure) into the
/// usage-error exit: message on stderr, exit status 2.
CampaignResult run_campaign_cli(const Campaign& campaign,
                                const CliOptions& opts);

/// Standard campaign epilogue: if `--json` was given, write `result` there
/// (honoring `--timing`) and print a one-line confirmation. Lists every
/// failed and timed-out trial on stderr, so a broken trial can't hide
/// inside a green pipeline. Returns the process exit status:
///   0 — every executed trial completed
///   1 — a trial failed, or the JSON could not be written
///   3 — no failures, but at least one trial timed out under the watchdog
int finish_cli(const CliOptions& opts, const CampaignResult& result);

}  // namespace gfc::exp
