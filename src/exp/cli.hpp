// Shared command-line surface for campaign binaries:
//   --jobs N      worker threads (0 = all cores)        [default 1]
//   --quick       shrunken sweep for smoke runs
//   --seed N      offset added to every trial's RNG seeds [default 0]
//   --json PATH   write the campaign's JSON results to PATH
//   --timing      include wall-clock metadata in the JSON
//   --no-progress suppress the live progress/ETA line
#pragma once

#include <string>

#include "exp/worker_pool.hpp"

namespace gfc::exp {

struct CliOptions {
  int jobs = 1;
  bool quick = false;
  bool timing = false;
  bool progress = true;
  /// Base seed offset: campaign binaries add it to every trial's RNG seeds
  /// (sim, workload and fault streams) and stamp it into Campaign::seed.
  /// Zero — the default — reproduces the historical fixed-seed outputs.
  std::uint64_t seed = 0;
  std::string json_path;  // empty = don't write JSON

  PoolOptions pool() const {
    PoolOptions p;
    p.jobs = jobs;
    p.progress = progress;
    return p;
  }
};

/// Parse the flags above; on an unknown argument or missing flag value,
/// prints usage to stderr and exits with status 2.
CliOptions parse_cli(int argc, char** argv);

/// Standard campaign epilogue: if `--json` was given, write `result` there
/// (honoring `--timing`) and print a one-line confirmation. Lists every
/// failed trial on stderr. False — callers should exit nonzero — on I/O
/// failure or when any trial failed, so a broken trial can't hide inside a
/// green pipeline.
bool finish_cli(const CliOptions& opts, const CampaignResult& result);

}  // namespace gfc::exp
