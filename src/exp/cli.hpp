// Shared command-line surface for campaign binaries:
//   --jobs N      worker threads (0 = all cores)        [default 1]
//   --quick       shrunken sweep for smoke runs
//   --seed N      offset added to every trial's RNG seeds [default 0]
//   --json PATH   write the campaign's JSON results to PATH
//   --timing      include wall-clock metadata in the JSON
//   --no-progress suppress the live progress/ETA line
//   --trace               enable binary event tracing per trial
//   --trace-out DIR       write per-trial trace artifacts under DIR
//   --trace-categories S  comma list (port,link,pfc,credit,gfc,sched,
//                         deadlock,flow) or "all"       [default all]
//   --analyze[=fail]      static pre-flight deadlock-risk analysis per
//                         fabric: warn on stderr, or fail the trial
#pragma once

#include <string>

#include "analyze/mode.hpp"
#include "exp/worker_pool.hpp"
#include "trace/trace.hpp"

namespace gfc::exp {

struct CliOptions {
  int jobs = 1;
  bool quick = false;
  bool timing = false;
  bool progress = true;
  /// Base seed offset: campaign binaries add it to every trial's RNG seeds
  /// (sim, workload and fault streams) and stamp it into Campaign::seed.
  /// Zero — the default — reproduces the historical fixed-seed outputs.
  std::uint64_t seed = 0;
  std::string json_path;  // empty = don't write JSON

  /// Static pre-flight analysis mode for every fabric the binary builds
  /// (assign to ScenarioConfig::preflight after parse_cli).
  analyze::PreflightMode preflight = analyze::PreflightMode::kOff;

  // Tracing (see src/trace/): each trial gets its own Tracer, so artifacts
  // are deterministic at any --jobs.
  bool trace = false;
  std::string trace_out;       // artifact directory ("." when empty)
  std::uint32_t trace_categories = trace::kCatAll;

  PoolOptions pool() const {
    PoolOptions p;
    p.jobs = jobs;
    p.progress = progress;
    return p;
  }

  /// TraceOptions for a trial's ScenarioConfig (enabled iff --trace).
  trace::TraceOptions trace_options() const {
    trace::TraceOptions t;
    t.enabled = trace;
    t.categories = trace_categories;
    return t;
  }

  /// "<dir>/<trial>.<ext>" artifact path for a trial id — the trial name is
  /// the deterministic key, never the worker index, so artifacts are stable
  /// at any --jobs. Path separators and spaces inside the trial name are
  /// flattened to '_' to keep everything in one directory.
  std::string trace_artifact(const std::string& trial_name,
                             const char* ext) const {
    std::string flat = trial_name;
    for (char& c : flat)
      if (c == '/' || c == '\\' || c == ' ') c = '_';
    const std::string dir = trace_out.empty() ? "." : trace_out;
    return dir + "/" + flat + "." + ext;
  }
};

/// Parse the flags above; on an unknown argument or missing flag value,
/// prints usage to stderr and exits with status 2.
CliOptions parse_cli(int argc, char** argv);

/// Standard campaign epilogue: if `--json` was given, write `result` there
/// (honoring `--timing`) and print a one-line confirmation. Lists every
/// failed trial on stderr. False — callers should exit nonzero — on I/O
/// failure or when any trial failed, so a broken trial can't hide inside a
/// green pipeline.
bool finish_cli(const CliOptions& opts, const CampaignResult& result);

}  // namespace gfc::exp
