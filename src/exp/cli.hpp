// Shared command-line surface for campaign binaries:
//   --jobs N      worker threads (0 = all cores)        [default 1]
//   --quick       shrunken sweep for smoke runs
//   --json PATH   write the campaign's JSON results to PATH
//   --timing      include wall-clock metadata in the JSON
//   --no-progress suppress the live progress/ETA line
#pragma once

#include <string>

#include "exp/worker_pool.hpp"

namespace gfc::exp {

struct CliOptions {
  int jobs = 1;
  bool quick = false;
  bool timing = false;
  bool progress = true;
  std::string json_path;  // empty = don't write JSON

  PoolOptions pool() const {
    PoolOptions p;
    p.jobs = jobs;
    p.progress = progress;
    return p;
  }
};

/// Parse the flags above; on an unknown argument or missing flag value,
/// prints usage to stderr and exits with status 2.
CliOptions parse_cli(int argc, char** argv);

/// If `--json` was given, write `result` there (honoring `--timing`) and
/// print a one-line confirmation; false only on I/O failure.
bool finish_cli(const CliOptions& opts, const CampaignResult& result);

}  // namespace gfc::exp
