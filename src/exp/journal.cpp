#include "exp/journal.hpp"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace gfc::exp {

namespace {

// --- CRC-32 (IEEE reflected, zlib polynomial) ----------------------------

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

// --- record framing ------------------------------------------------------

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t get_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

// --- minimal JSON parser -------------------------------------------------
//
// Exactly the subset journal_record_json / JournalHeader::json emit: one
// flat object whose values are bool / integer / double / string, or a
// nested flat object of the same scalars (params / metrics). Numbers keep
// their int-vs-double identity from the token shape ('.', 'e', 'E' =>
// double); doubles were rendered by std::to_chars, so strtod + to_chars
// round-trips to identical bytes.

class MiniJson {
 public:
  explicit MiniJson(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  // Parse `{...}` where values may themselves be flat objects.
  void parse_top(
      std::vector<std::pair<std::string, Value>>* scalars,
      std::vector<std::pair<std::string, ParamSet>>* objects) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++p_;
      return;
    }
    for (;;) {
      std::string key = parse_string();
      expect(':');
      skip_ws();
      if (peek() == '{') {
        ParamSet nested;
        parse_flat_object(&nested);
        objects->emplace_back(std::move(key), std::move(nested));
      } else {
        scalars->emplace_back(std::move(key), parse_scalar());
      }
      skip_ws();
      if (peek() == ',') {
        ++p_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void check_done() {
    skip_ws();
    if (p_ != end_) fail("trailing bytes after JSON value");
  }

 private:
  [[noreturn]] void fail(const char* why) {
    throw JournalError(std::string("journal record parse error: ") + why);
  }

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r'))
      ++p_;
  }

  char peek() {
    if (p_ == end_) fail("unexpected end of record");
    return *p_;
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) fail("unexpected token");
    ++p_;
  }

  void parse_flat_object(ParamSet* out) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++p_;
      return;
    }
    for (;;) {
      std::string key = parse_string();
      expect(':');
      out->set(std::move(key), parse_scalar());
      skip_ws();
      if (peek() == ',') {
        ++p_;
        continue;
      }
      expect('}');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (p_ == end_) fail("unterminated string");
      char c = *p_++;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p_ == end_) fail("unterminated escape");
      char e = *p_++;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (end_ - p_ < 4) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape digit");
          }
          // Value::quote only \u-escapes control bytes (< 0x20); anything
          // wider never round-trips through our own writer.
          if (code > 0x7F) fail("unsupported \\u escape above ASCII");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_scalar() {
    skip_ws();
    const char c = peek();
    if (c == '"') return Value(parse_string());
    if (c == 't') {
      literal("true");
      return Value(true);
    }
    if (c == 'f') {
      literal("false");
      return Value(false);
    }
    // Number: grab the token, classify by shape.
    const char* start = p_;
    bool is_double = false;
    while (p_ != end_ &&
           (*p_ == '-' || *p_ == '+' || *p_ == '.' || *p_ == 'e' ||
            *p_ == 'E' || (*p_ >= '0' && *p_ <= '9'))) {
      if (*p_ == '.' || *p_ == 'e' || *p_ == 'E') is_double = true;
      ++p_;
    }
    if (p_ == start) fail("expected a value");
    const std::string tok(start, p_);
    errno = 0;
    char* endp = nullptr;
    if (is_double) {
      const double d = std::strtod(tok.c_str(), &endp);
      if (endp != tok.c_str() + tok.size() || errno == ERANGE)
        fail("bad double literal");
      return Value(d);
    }
    const long long i = std::strtoll(tok.c_str(), &endp, 10);
    if (endp != tok.c_str() + tok.size() || errno == ERANGE)
      fail("bad integer literal");
    return Value(static_cast<std::int64_t>(i));
  }

  void literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (static_cast<std::size_t>(end_ - p_) < len ||
        std::memcmp(p_, lit, len) != 0)
      fail("bad literal");
    p_ += len;
  }

  const char* p_;
  const char* end_;
};

const Value* find_scalar(
    const std::vector<std::pair<std::string, Value>>& kv,
    const std::string& key) {
  for (const auto& [k, v] : kv)
    if (k == key) return &v;
  return nullptr;
}

JournalHeader parse_header(const std::string& payload) {
  std::vector<std::pair<std::string, Value>> scalars;
  std::vector<std::pair<std::string, ParamSet>> objects;
  MiniJson parser(payload);
  parser.parse_top(&scalars, &objects);
  parser.check_done();
  const Value* schema = find_scalar(scalars, "schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kJournalSchema)
    throw JournalError("not a " + std::string(kJournalSchema) + " file");
  JournalHeader h;
  const Value* campaign = find_scalar(scalars, "campaign");
  const Value* seed = find_scalar(scalars, "seed");
  const Value* n = find_scalar(scalars, "n_trials");
  const Value* hash = find_scalar(scalars, "param_hash");
  if (campaign == nullptr || !campaign->is_string() || seed == nullptr ||
      !seed->is_int() || n == nullptr || !n->is_int() || hash == nullptr ||
      !hash->is_string())
    throw JournalError("malformed journal header");
  h.campaign = campaign->as_string();
  h.seed = static_cast<std::uint64_t>(seed->as_int());
  h.n_trials = static_cast<std::uint64_t>(n->as_int());
  errno = 0;
  char* endp = nullptr;
  h.param_hash = std::strtoull(hash->as_string().c_str(), &endp, 16);
  if (*endp != '\0' || errno == ERANGE)
    throw JournalError("malformed journal header param_hash");
  return h;
}

void fnv1a_mix(std::uint64_t& h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  h ^= 0xFFu;  // record separator, so ("ab","c") != ("a","bc")
  h *= 0x100000001B3ull;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t campaign_param_hash(const Campaign& campaign) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const Trial& t : campaign.trials) {
    fnv1a_mix(h, t.name);
    fnv1a_mix(h, t.params.json());
  }
  return h;
}

JournalHeader journal_header_for(const Campaign& campaign) {
  JournalHeader h;
  h.campaign = campaign.name;
  h.seed = campaign.seed;
  h.n_trials = campaign.trials.size();
  h.param_hash = campaign_param_hash(campaign);
  return h;
}

std::string JournalHeader::json() const {
  char hash[24];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(param_hash));
  std::string out = "{\"schema\":" + Value::quote(kJournalSchema);
  out += ",\"campaign\":" + Value::quote(campaign);
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"n_trials\":" + std::to_string(n_trials);
  out += ",\"param_hash\":\"" + std::string(hash) + "\"}";
  return out;
}

std::string JournalHeader::describe() const {
  char hash[24];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(param_hash));
  return "campaign '" + campaign + "' seed " + std::to_string(seed) + " (" +
         std::to_string(n_trials) + " trials, params " + hash + ")";
}

std::string journal_record_json(std::size_t trial, const TrialRecord& rec) {
  std::string out = "{\"trial\":" + std::to_string(trial);
  out += ",\"name\":" + Value::quote(rec.name);
  out += ",\"params\":" + rec.params.json();
  if (rec.failed) {
    out += ",\"failed\":true,\"error\":" + Value::quote(rec.error);
  } else if (rec.timed_out) {
    out += ",\"timed_out\":true,\"error\":" + Value::quote(rec.error);
  } else {
    out += ",\"metrics\":" + rec.metrics.json();
  }
  if (rec.attempts > 1) out += ",\"attempts\":" + std::to_string(rec.attempts);
  out += "}";
  return out;
}

JournalEntry parse_journal_record(const std::string& payload) {
  std::vector<std::pair<std::string, Value>> scalars;
  std::vector<std::pair<std::string, ParamSet>> objects;
  MiniJson parser(payload);
  parser.parse_top(&scalars, &objects);
  parser.check_done();

  JournalEntry e;
  const Value* trial = find_scalar(scalars, "trial");
  const Value* name = find_scalar(scalars, "name");
  if (trial == nullptr || !trial->is_int() || trial->as_int() < 0 ||
      name == nullptr || !name->is_string())
    throw JournalError("journal record missing trial index or name");
  e.trial = static_cast<std::size_t>(trial->as_int());
  e.rec.name = name->as_string();
  if (const Value* v = find_scalar(scalars, "failed"))
    e.rec.failed = v->is_bool() && v->as_bool();
  if (const Value* v = find_scalar(scalars, "timed_out"))
    e.rec.timed_out = v->is_bool() && v->as_bool();
  if (const Value* v = find_scalar(scalars, "error"))
    if (v->is_string()) e.rec.error = v->as_string();
  if (const Value* v = find_scalar(scalars, "attempts"))
    if (v->is_int()) e.rec.attempts = static_cast<int>(v->as_int());
  for (auto& [key, obj] : objects) {
    if (key == "params")
      e.rec.params = std::move(obj);
    else if (key == "metrics")
      e.rec.metrics = std::move(obj);
  }
  return e;
}

LoadedJournal load_journal(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw JournalError("cannot open journal " + path + ": " +
                       std::strerror(errno));
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(buf, 1, sizeof(buf), f);
    bytes.append(buf, got);
    if (got < sizeof(buf)) break;
  }
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err)
    throw JournalError("I/O error reading journal " + path);

  LoadedJournal out;
  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::size_t size = bytes.size();
  std::size_t pos = 0;
  bool have_header = false;
  for (;;) {
    if (size - pos < 8) {
      // A partial frame header is a torn tail (or clean EOF at pos==size).
      out.torn_tail = pos != size;
      break;
    }
    const std::uint32_t len = get_u32le(data + pos);
    const std::uint32_t want_crc = get_u32le(data + pos + 4);
    if (size - pos - 8 < len) {
      out.torn_tail = true;  // payload truncated mid-write: discard
      break;
    }
    const char* payload = bytes.data() + pos + 8;
    if (crc32(payload, len) != want_crc)
      throw JournalError("journal " + path + ": checksum mismatch at byte " +
                         std::to_string(pos) +
                         " (record is size-complete; refusing corrupt data)");
    const std::string text(payload, len);
    if (!have_header) {
      out.header = parse_header(text);
      have_header = true;
    } else {
      out.entries.push_back(parse_journal_record(text));
    }
    pos += 8 + len;
    out.clean_bytes = pos;
  }
  if (!have_header)
    throw JournalError("journal " + path + ": no intact header record (" +
                       (size == 0 ? "empty file" : "torn before first sync") +
                       ")");
  return out;
}

// --- JournalWriter -------------------------------------------------------

JournalWriter::~JournalWriter() { close(); }

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : f_(other.f_), path_(std::move(other.path_)) {
  other.f_ = nullptr;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    close();
    f_ = other.f_;
    path_ = std::move(other.path_);
    other.f_ = nullptr;
  }
  return *this;
}

void JournalWriter::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

void JournalWriter::write_record(const std::string& payload) {
  std::string frame;
  frame.reserve(payload.size() + 8);
  put_u32le(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32le(frame, crc32(payload.data(), payload.size()));
  frame += payload;
  if (std::fwrite(frame.data(), 1, frame.size(), f_) != frame.size() ||
      std::fflush(f_) != 0 || ::fsync(fileno(f_)) != 0)
    throw JournalError("I/O error appending to journal " + path_);
}

JournalWriter JournalWriter::create(const std::string& path,
                                    const JournalHeader& header) {
  JournalWriter w;
  w.path_ = path;
  w.f_ = std::fopen(path.c_str(), "wb");
  if (w.f_ == nullptr)
    throw JournalError("cannot create journal " + path + ": " +
                       std::strerror(errno));
  w.write_record(header.json());
  return w;
}

JournalWriter JournalWriter::open_or_create(const std::string& path,
                                            const JournalHeader& header) {
  {
    std::FILE* probe = std::fopen(path.c_str(), "rb");
    if (probe == nullptr) return create(path, header);
    std::fclose(probe);
  }
  const LoadedJournal existing = load_journal(path);
  if (existing.header != header)
    throw JournalError("journal " + path + " fingerprint mismatch: file has " +
                       existing.header.describe() + ", campaign is " +
                       header.describe());
  // Drop a torn tail before appending, or the next record's framing would
  // land mid-garbage and corrupt the whole file.
  if (::truncate(path.c_str(),
                 static_cast<off_t>(existing.clean_bytes)) != 0)
    throw JournalError("cannot truncate torn tail of journal " + path + ": " +
                       std::strerror(errno));
  JournalWriter w;
  w.path_ = path;
  w.f_ = std::fopen(path.c_str(), "ab");
  if (w.f_ == nullptr)
    throw JournalError("cannot append to journal " + path + ": " +
                       std::strerror(errno));
  return w;
}

void JournalWriter::append(std::size_t trial, const TrialRecord& rec) {
  if (f_ == nullptr) return;
  write_record(journal_record_json(trial, rec));
}

}  // namespace gfc::exp
