// Append-only trial journal (gfc-journal-v1): the crash-safety layer under
// campaign runs.
//
// A journal is a flat file of length-prefixed, CRC-checked JSON records:
//
//   record   := u32le payload_len | u32le crc32(payload) | payload bytes
//   file     := header_record trial_record*
//   header   := {"schema":"gfc-journal-v1","campaign":...,"seed":N,
//                "n_trials":N,"param_hash":"%016x"}
//   trial    := {"trial":i,"name":...,"params":{...},...outcome fields...}
//
// The worker pool appends one fsync'd record per *completed* trial (in
// completion order, not campaign order), so a SIGKILL loses at most the
// record being written. Loading tolerates exactly that: an incomplete
// final record (fewer bytes on disk than its declared length) is treated
// as torn and discarded; a size-complete record whose CRC mismatches is
// corruption and a hard error. The header's fingerprint (campaign name,
// seed, trial count, hash over every trial's name + params) must match the
// campaign being resumed — resuming a journal from a different campaign,
// seed or sweep shape is refused.
//
// Shard journals of the same campaign share the fingerprint (it covers the
// full trial list, not the shard), so merging is concatenation: load every
// shard's records into one resume set and re-emit the store.
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/results.hpp"

namespace gfc::exp {

inline constexpr const char* kJournalSchema = "gfc-journal-v1";

/// Any journal I/O, framing, checksum or fingerprint problem. parse_cli
/// wrappers turn it into exit 2 (a usage-class error: the journal the user
/// pointed at cannot serve this campaign).
class JournalError : public std::runtime_error {
 public:
  explicit JournalError(const std::string& what) : std::runtime_error(what) {}
};

/// The campaign fingerprint stored in (and validated against) the header.
struct JournalHeader {
  std::string campaign;
  std::uint64_t seed = 0;
  std::uint64_t n_trials = 0;
  std::uint64_t param_hash = 0;

  bool operator==(const JournalHeader&) const = default;
  std::string json() const;
  /// "campaign 'x' seed 3 (17 trials, params 0123456789abcdef)".
  std::string describe() const;
};

/// FNV-1a over every trial's name and params JSON: two campaigns hash
/// equal iff they sweep the same named points in the same order.
std::uint64_t campaign_param_hash(const Campaign& campaign);
JournalHeader journal_header_for(const Campaign& campaign);

struct JournalEntry {
  std::size_t trial = 0;  // index into Campaign::trials
  TrialRecord rec;
};

struct LoadedJournal {
  JournalHeader header;
  /// Completion order as written; a later record for the same trial index
  /// supersedes an earlier one (a resumed run may re-append).
  std::vector<JournalEntry> entries;
  /// Byte offset of the end of the last intact record — appending must
  /// truncate the file here first to drop a torn tail.
  std::uint64_t clean_bytes = 0;
  bool torn_tail = false;  // an incomplete final record was discarded
};

/// Parse `path`; throws JournalError on open failure, framing/CRC
/// corruption, or a non-journal file. A torn final record is tolerated.
LoadedJournal load_journal(const std::string& path);

/// IEEE CRC-32 (zlib-compatible, so Python tooling can verify records).
std::uint32_t crc32(const void* data, std::size_t len);

/// The per-trial record payload (single line, compact separators).
std::string journal_record_json(std::size_t trial, const TrialRecord& rec);

/// Parse a trial record payload back into (index, TrialRecord). Values
/// round-trip exactly: everything in a record was rendered by Value::json,
/// whose shortest-round-trip doubles re-serialize to identical bytes.
JournalEntry parse_journal_record(const std::string& payload);

/// Append-side handle. Writes are CRC-framed, flushed and fsync'd before
/// returning, so a completed trial survives any later kill. Thread-safe
/// via the caller's lock (the worker pool serializes appends).
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;

  /// Start a fresh journal at `path` (truncating), writing the header.
  static JournalWriter create(const std::string& path,
                              const JournalHeader& header);
  /// Continue an existing journal: validates the on-disk fingerprint
  /// against `header`, truncates any torn tail, opens for append. Falls
  /// back to create() when the file does not exist.
  static JournalWriter open_or_create(const std::string& path,
                                      const JournalHeader& header);

  bool is_open() const { return f_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Append one completed trial; throws JournalError on I/O failure.
  void append(std::size_t trial, const TrialRecord& rec);

  void close();

 private:
  void write_record(const std::string& payload);

  std::FILE* f_ = nullptr;
  std::string path_;
};

}  // namespace gfc::exp
