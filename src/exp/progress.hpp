// Per-trial progress heartbeats and cooperative cancellation.
//
// The worker pool publishes one ProgressSink per worker through a
// thread-local pointer; runner::Fabric picks it up at construction and
// installs a periodic scheduler timer that beacons (sim time, executed
// events) into the sink as the trial runs. The pool's watchdog reads the
// beacons from its own thread and, when a trial exceeds --trial-timeout,
// sets the sink's cancel flag; the next beacon throws CancelledError,
// unwinding the trial cleanly out of run_until (the trial's private
// Network/Scheduler tears down as usual; the pool records `timed_out`).
//
// Cancellation is cooperative: a trial that never beacons — a non-sim
// trial body, or a pathological zero-delay event storm that starves the
// beacon timer — cannot be cancelled. Every sim trial beacons via the
// Fabric hook; synthetic trial bodies can call progress_checkpoint() in
// their own loops.
//
// Header-only on purpose: runner::Fabric includes this without linking
// gfc_exp (same layering trick as analyze's use of runner/config.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>

namespace gfc::exp {

/// Thrown out of a trial body by ProgressSink::beacon after the watchdog
/// requested cancellation. The worker pool catches it and records the
/// trial as timed out (it is not a failure in the --jobs-pool sense).
class CancelledError : public std::exception {
 public:
  const char* what() const noexcept override {
    return "trial cancelled: exceeded --trial-timeout";
  }
};

class ProgressSink {
 public:
  /// Publish a heartbeat; throws CancelledError when cancellation has been
  /// requested. Called from the trial's (worker) thread.
  void beacon(std::int64_t sim_time_ps, std::uint64_t events) {
    sim_time_ps_.store(sim_time_ps, std::memory_order_relaxed);
    events_.store(events, std::memory_order_relaxed);
    beats_.fetch_add(1, std::memory_order_relaxed);
    if (cancel_.load(std::memory_order_acquire)) throw CancelledError();
  }

  /// Non-throwing heartbeat for parallel-core (src/par) worker threads:
  /// publish the engine-wide event count so the monitor sees a live trial,
  /// without beacon()'s throw-on-cancel — worker threads must not throw
  /// through the window barrier, so cancellation instead surfaces on the
  /// coordinator through par::Engine's abort handler.
  void heartbeat(std::uint64_t events) {
    events_.store(events, std::memory_order_relaxed);
    beats_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Watchdog side: make the next beacon throw.
  void request_cancel() { cancel_.store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_acquire);
  }

  /// Monitoring reads (watchdog / progress line); racy-by-design counters.
  std::uint64_t beats() const { return beats_.load(std::memory_order_relaxed); }
  std::int64_t sim_time_ps() const {
    return sim_time_ps_.load(std::memory_order_relaxed);
  }
  std::uint64_t events() const {
    return events_.load(std::memory_order_relaxed);
  }

  /// Re-arm for the next attempt (retries reuse the worker's sink).
  void reset() {
    cancel_.store(false, std::memory_order_release);
    beats_.store(0, std::memory_order_relaxed);
    sim_time_ps_.store(0, std::memory_order_relaxed);
    events_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancel_{false};
  std::atomic<std::uint64_t> beats_{0};
  std::atomic<std::int64_t> sim_time_ps_{0};
  std::atomic<std::uint64_t> events_{0};
};

namespace detail {
inline thread_local ProgressSink* t_current_sink = nullptr;
}

/// The sink of the trial currently running on this thread (null outside a
/// worker-pool trial). runner::Fabric consults this at construction.
inline ProgressSink* current_progress_sink() {
  return detail::t_current_sink;
}
inline void set_current_progress_sink(ProgressSink* sink) {
  detail::t_current_sink = sink;
}

/// Convenience for synthetic (non-sim) trial bodies: beacon if a sink is
/// installed, else no-op. Long-running hand-written trials should call this
/// inside their loops so --trial-timeout can reach them.
inline void progress_checkpoint(std::int64_t sim_time_ps = 0,
                                std::uint64_t events = 0) {
  if (ProgressSink* s = current_progress_sink()) s->beacon(sim_time_ps, events);
}

}  // namespace gfc::exp
