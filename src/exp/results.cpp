#include "exp/results.hpp"

#include <algorithm>
#include <cstring>

namespace gfc::exp {

std::size_t CampaignResult::failures() const {
  return static_cast<std::size_t>(
      std::count_if(trials.begin(), trials.end(),
                    [](const TrialRecord& t) { return t.failed; }));
}

std::size_t CampaignResult::timeouts() const {
  return static_cast<std::size_t>(
      std::count_if(trials.begin(), trials.end(),
                    [](const TrialRecord& t) { return t.timed_out; }));
}

std::size_t CampaignResult::skipped() const {
  return static_cast<std::size_t>(
      std::count_if(trials.begin(), trials.end(),
                    [](const TrialRecord& t) { return t.skipped; }));
}

const TrialRecord* CampaignResult::find(const std::string& trial_name) const {
  for (const auto& t : trials)
    if (t.name == trial_name) return &t;
  return nullptr;
}

std::string CampaignResult::json(bool include_timing) const {
  std::string out;
  out += "{\n";
  out += "  \"schema\": " + Value::quote(kCampaignSchema) + ",\n";
  out += "  \"campaign\": " + Value::quote(campaign) + ",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  if (include_timing) {
    out += "  \"jobs\": " + std::to_string(jobs) + ",\n";
    out += "  \"wall_ms\": " + Value(wall_ms).json() + ",\n";
  }
  out += "  \"trials\": [\n";
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const TrialRecord& t = trials[i];
    out += "    {\"name\": " + Value::quote(t.name);
    out += ", \"params\": " + t.params.json();
    if (t.failed) {
      out += ", \"failed\": true, \"error\": " + Value::quote(t.error);
    } else if (t.timed_out) {
      out += ", \"timed_out\": true, \"error\": " + Value::quote(t.error);
    } else if (t.skipped) {
      out += ", \"skipped\": true";
    } else {
      out += ", \"metrics\": " + t.metrics.json();
    }
    // attempts is 1 in the common case and omitted, so stores without
    // watchdog retries stay byte-identical to the historical schema.
    if (t.attempts > 1)
      out += ", \"attempts\": " + std::to_string(t.attempts);
    if (include_timing) out += ", \"wall_ms\": " + Value(t.wall_ms).json();
    out += i + 1 < trials.size() ? "},\n" : "}\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

bool CampaignResult::write_json(const std::string& path,
                                bool include_timing) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string doc = json(include_timing);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

void CampaignResult::print_report(std::FILE* out) const {
  // Column set: union of metric keys in first-seen order.
  std::vector<std::string> cols;
  for (const auto& t : trials)
    for (const auto& [k, v] : t.metrics)
      if (std::find(cols.begin(), cols.end(), k) == cols.end())
        cols.push_back(k);

  std::size_t name_w = std::strlen("trial");
  for (const auto& t : trials) name_w = std::max(name_w, t.name.size());
  std::vector<std::size_t> col_w;
  for (const auto& c : cols) col_w.push_back(std::max<std::size_t>(c.size(), 8));

  std::fprintf(out, "%-*s", static_cast<int>(name_w), "trial");
  for (std::size_t j = 0; j < cols.size(); ++j)
    std::fprintf(out, "  %*s", static_cast<int>(col_w[j]), cols[j].c_str());
  std::fprintf(out, "\n");
  for (const auto& t : trials) {
    std::fprintf(out, "%-*s", static_cast<int>(name_w), t.name.c_str());
    if (t.failed) {
      std::fprintf(out, "  FAILED: %s", t.error.c_str());
    } else if (t.timed_out) {
      std::fprintf(out, "  TIMEOUT%s%s", t.error.empty() ? "" : ": ",
                   t.error.c_str());
    } else if (t.skipped) {
      std::fprintf(out, "  SKIPPED");
    } else {
      for (std::size_t j = 0; j < cols.size(); ++j) {
        const Value* v = t.metrics.find(cols[j]);
        std::fprintf(out, "  %*s", static_cast<int>(col_w[j]),
                     v ? v->json().c_str() : "-");
      }
    }
    std::fprintf(out, "\n");
  }
}

}  // namespace gfc::exp
