// Campaign results store: per-trial records in campaign order, schema'd
// JSON serialization, and an aligned-table report printer for paper
// comparison. Timing fields (wall_ms, jobs) are metadata, excluded from
// JSON by default so output is byte-identical across thread counts.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "exp/campaign.hpp"

namespace gfc::exp {

inline constexpr const char* kCampaignSchema = "gfc-campaign-v1";

struct TrialRecord {
  std::string name;
  ParamSet params;
  ParamSet metrics;   // empty if the trial failed, timed out or was skipped
  bool failed = false;
  /// Cancelled by the worker pool's watchdog (--trial-timeout) on every
  /// attempt. Distinct from `failed`: the trial did not throw on its own.
  bool timed_out = false;
  /// Not run by this invocation: outside the --shard range and not
  /// supplied by a resumed journal. Never set in a complete store.
  bool skipped = false;
  /// Attempts consumed (1 + watchdog retries). 1 everywhere unless the
  /// watchdog cancelled and --retries re-ran the trial.
  int attempts = 1;
  std::string error;  // exception message when failed / timeout note
  double wall_ms = 0;  // timing metadata, not part of the result proper

  /// Completed with metrics (not failed / timed out / skipped).
  bool ok() const { return !failed && !timed_out && !skipped; }
};

struct CampaignResult {
  std::string campaign;
  std::uint64_t seed = 0;           // base seed offset (Campaign::seed)
  std::vector<TrialRecord> trials;  // always in Campaign::trials order
  int jobs = 1;        // timing metadata
  double wall_ms = 0;  // timing metadata

  std::size_t failures() const;
  std::size_t timeouts() const;
  std::size_t skipped() const;
  const TrialRecord* find(const std::string& trial_name) const;

  /// Pretty-printed JSON document. With include_timing = false (the
  /// default) the bytes depend only on trial results: no wall-clock, no
  /// job count, so `--jobs 1` and `--jobs N` serialize identically.
  std::string json(bool include_timing = false) const;
  /// Write `json()` (plus trailing newline) to `path`; false on I/O error.
  bool write_json(const std::string& path, bool include_timing = false) const;

  /// Aligned table: one row per trial, one column per metric key (union,
  /// first-seen order), for eyeballing against the paper's tables.
  void print_report(std::FILE* out = stdout) const;
};

}  // namespace gfc::exp
