// Scalar parameter/metric values for experiment campaigns, with
// deterministic JSON rendering: doubles use shortest-round-trip
// formatting (std::to_chars), so identical runs serialize to identical
// bytes regardless of locale or platform printf quirks.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace gfc::exp {

class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  Value(bool b) : v_(b) {}
  Value(std::int64_t i) : v_(i) {}
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}
  Value(unsigned u) : v_(static_cast<std::int64_t>(u)) {}
  Value(std::uint64_t u) : v_(static_cast<std::int64_t>(u)) {}
  Value(double d) : v_(d) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(const char* s) : v_(std::string(s)) {}

  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  double as_double() const {
    return is_int() ? static_cast<double>(as_int()) : std::get<double>(v_);
  }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  bool operator==(const Value&) const = default;

  /// JSON token for this value (quoted + escaped for strings).
  std::string json() const {
    switch (v_.index()) {
      case 0: return as_bool() ? "true" : "false";
      case 1: return std::to_string(as_int());
      case 2: {
        char buf[32];
        const auto r = std::to_chars(buf, buf + sizeof(buf), std::get<double>(v_));
        return std::string(buf, r.ptr);
      }
      default: return quote(as_string());
    }
  }

  /// Quote and escape a string as a JSON string literal.
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

 private:
  std::variant<bool, std::int64_t, double, std::string> v_;
};

/// Ordered name -> value list (insertion order is serialization order, so
/// JSON output is deterministic; no hashing anywhere).
class ParamSet {
 public:
  void set(std::string name, Value v) {
    for (auto& [k, old] : kv_)
      if (k == name) {
        old = std::move(v);
        return;
      }
    kv_.emplace_back(std::move(name), std::move(v));
  }

  const Value* find(const std::string& name) const {
    for (const auto& [k, v] : kv_)
      if (k == name) return &v;
    return nullptr;
  }

  bool empty() const { return kv_.empty(); }
  std::size_t size() const { return kv_.size(); }
  auto begin() const { return kv_.begin(); }
  auto end() const { return kv_.end(); }

  bool operator==(const ParamSet&) const = default;

  /// `{"a":1,"b":"x"}`.
  std::string json() const {
    std::string out = "{";
    for (std::size_t i = 0; i < kv_.size(); ++i) {
      if (i) out += ',';
      out += Value::quote(kv_[i].first);
      out += ':';
      out += kv_[i].second.json();
    }
    out += '}';
    return out;
  }

 private:
  std::vector<std::pair<std::string, Value>> kv_;
};

}  // namespace gfc::exp
