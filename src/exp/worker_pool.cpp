#include "exp/worker_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "exp/journal.hpp"
#include "exp/progress.hpp"

namespace gfc::exp {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Per-worker watchdog slot: the worker flips `active` around each trial
/// attempt under `mu`; the watchdog thread scans the slots and requests
/// cancellation through the sink when an attempt overruns its budget. The
/// sink outlives every attempt (one per worker), so there is never a
/// dangling-pointer window between watchdog and worker.
struct WorkerSlot {
  std::mutex mu;
  bool active = false;
  Clock::time_point attempt_start{};
  ProgressSink sink;
};

class Watchdog {
 public:
  Watchdog(std::vector<WorkerSlot>& slots, double timeout_s)
      : slots_(slots),
        timeout_(std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(timeout_s))) {
    thread_ = std::thread([this] { run(); });
  }

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(50));
      if (stop_) return;
      const Clock::time_point now = Clock::now();
      for (WorkerSlot& slot : slots_) {
        std::lock_guard<std::mutex> slot_lock(slot.mu);
        if (slot.active && now - slot.attempt_start > timeout_)
          slot.sink.request_cancel();
      }
    }
  }

  std::vector<WorkerSlot>& slots_;
  Clock::duration timeout_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// One attempt of a trial body with the worker's sink installed as the
/// thread's current ProgressSink. Returns true when the attempt was
/// cancelled by the watchdog (rec left untouched in that case).
bool run_attempt(const Trial& trial, WorkerSlot& slot, TrialRecord& rec,
                 bool wedge) {
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.sink.reset();
    slot.attempt_start = Clock::now();
    slot.active = true;
  }
  set_current_progress_sink(&slot.sink);
  bool cancelled = false;
  try {
    if (wedge) {
      // Deliberately-wedged body: heartbeat forever so only the watchdog
      // can end the attempt. Used by tests and the --wedge CI smoke.
      for (std::uint64_t beat = 1;; ++beat) {
        slot.sink.beacon(0, beat);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    rec.metrics = trial.run().metrics;
    rec.failed = false;
    rec.error.clear();
  } catch (const CancelledError&) {
    cancelled = true;
  } catch (const std::exception& e) {
    rec.failed = true;
    rec.error = e.what();
  } catch (...) {
    rec.failed = true;
    rec.error = "unknown exception";
  }
  set_current_progress_sink(nullptr);
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.active = false;
  }
  return cancelled;
}

TrialRecord run_one(const Trial& trial, WorkerSlot& slot,
                    const PoolOptions& opts, bool wedge) {
  TrialRecord rec;
  rec.name = trial.name;
  rec.params = trial.params;
  const auto t0 = Clock::now();
  const int max_attempts = 1 + std::max(opts.retries, 0);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    rec.attempts = attempt;
    if (!run_attempt(trial, slot, rec, wedge)) {
      rec.timed_out = false;
      break;
    }
    rec.timed_out = true;
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "exceeded --trial-timeout %.3gs on %d attempt(s)",
                  opts.trial_timeout_s, attempt);
    rec.error = msg;
    rec.metrics = ParamSet{};
  }
  rec.wall_ms = ms_since(t0);
  return rec;
}

class Progress {
 public:
  Progress(bool enabled, std::FILE* out, const std::string& name,
           std::size_t total)
      : enabled_(enabled), out_(out ? out : stderr), name_(name),
        total_(total), t0_(Clock::now()) {}

  void tick(std::size_t done) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    const double elapsed = ms_since(t0_) / 1000.0;
    const double eta =
        done ? elapsed / static_cast<double>(done) *
                   static_cast<double>(total_ - done)
             : 0.0;
    std::fprintf(out_, "\r[%s] %zu/%zu trials, %.1fs elapsed, eta %.1fs ",
                 name_.c_str(), done, total_, elapsed, eta);
    if (done == total_) std::fprintf(out_, "\n");
    std::fflush(out_);
  }

 private:
  bool enabled_;
  std::FILE* out_;
  std::string name_;
  std::size_t total_;
  Clock::time_point t0_;
  std::mutex mu_;
};

/// Shard i of n over N trials: the contiguous id range
/// [floor(i*N/n), floor((i+1)*N/n)).
std::pair<std::size_t, std::size_t> shard_range(std::size_t n_trials,
                                                int index, int count) {
  if (count <= 1) return {0, n_trials};
  const auto lo = static_cast<std::size_t>(
      static_cast<unsigned long long>(index) * n_trials /
      static_cast<unsigned long long>(count));
  const auto hi = static_cast<std::size_t>(
      (static_cast<unsigned long long>(index) + 1) * n_trials /
      static_cast<unsigned long long>(count));
  return {lo, hi};
}

}  // namespace

CampaignResult run_campaign(const Campaign& campaign, const PoolOptions& opts) {
  const std::size_t n = campaign.trials.size();
  CampaignResult result;
  result.campaign = campaign.name;
  result.seed = campaign.seed;
  result.trials.resize(n);

  const JournalHeader header = journal_header_for(campaign);

  // --- resume: load journals, prefill completed slots ----------------------
  std::vector<bool> resumed(n, false);
  /// Trials whose record already lives in opts.journal_path itself (no
  /// need to re-append them below).
  std::vector<bool> in_journal(n, false);
  std::size_t resumed_count = 0;
  for (const std::string& path : opts.resume_paths) {
    {
      std::FILE* probe = std::fopen(path.c_str(), "rb");
      if (probe == nullptr) continue;  // fresh start: nothing to resume yet
      std::fclose(probe);
    }
    LoadedJournal loaded = load_journal(path);
    if (loaded.header != header)
      throw JournalError("cannot resume from " + path +
                         ": fingerprint mismatch (journal has " +
                         loaded.header.describe() + ", campaign is " +
                         header.describe() + ")");
    for (JournalEntry& e : loaded.entries) {
      if (e.trial >= n || e.rec.name != campaign.trials[e.trial].name)
        throw JournalError("journal " + path + " record '" + e.rec.name +
                           "' does not match campaign trial " +
                           std::to_string(e.trial));
      if (!resumed[e.trial]) ++resumed_count;
      resumed[e.trial] = true;
      if (path == opts.journal_path) in_journal[e.trial] = true;
      // Later records supersede earlier ones (a re-appended trial).
      result.trials[e.trial] = std::move(e.rec);
      // The campaign's params are the source of truth (the fingerprint
      // guarantees they serialize identically to what the journal holds).
      result.trials[e.trial].params = campaign.trials[e.trial].params;
    }
  }

  // --- journal writer ------------------------------------------------------
  JournalWriter journal;
  std::mutex journal_mu;
  if (!opts.journal_path.empty()) {
    journal = JournalWriter::open_or_create(opts.journal_path, header);
    // Copy records resumed from *other* journals in, so merging N shard
    // journals (--resume each, --journal merged) yields one self-contained
    // store and the shard files can be discarded.
    for (std::size_t i = 0; i < n; ++i)
      if (resumed[i] && !in_journal[i]) journal.append(i, result.trials[i]);
  }

  // --- work list: this shard's not-yet-completed trials --------------------
  const auto [shard_lo, shard_hi] =
      shard_range(n, opts.shard_index, opts.shard_count);
  std::vector<std::size_t> todo;
  todo.reserve(shard_hi - shard_lo);
  for (std::size_t i = shard_lo; i < shard_hi; ++i)
    if (!resumed[i]) todo.push_back(i);
  for (std::size_t i = 0; i < n; ++i)
    if (!resumed[i] && (i < shard_lo || i >= shard_hi)) {
      result.trials[i].name = campaign.trials[i].name;
      result.trials[i].params = campaign.trials[i].params;
      result.trials[i].skipped = true;
    }

  if (resumed_count > 0 && opts.progress)
    std::fprintf(opts.progress_out ? opts.progress_out : stderr,
                 "[%s] resumed %zu/%zu completed trials from journal\n",
                 campaign.name.c_str(), resumed_count, n);

  int jobs = opts.jobs;
  if (jobs <= 0) jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;
  jobs = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(jobs), std::max<std::size_t>(todo.size(), 1)));
  result.jobs = jobs;

  const auto t0 = Clock::now();
  Progress progress(opts.progress, opts.progress_out, campaign.name,
                    todo.size());
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};

  std::vector<WorkerSlot> slots(static_cast<std::size_t>(jobs));
  std::optional<Watchdog> watchdog;
  if (opts.trial_timeout_s > 0) watchdog.emplace(slots, opts.trial_timeout_s);

  const auto worker = [&](int worker_idx) {
    WorkerSlot& slot = slots[static_cast<std::size_t>(worker_idx)];
    for (;;) {
      const std::size_t w = next.fetch_add(1, std::memory_order_relaxed);
      if (w >= todo.size()) return;
      const std::size_t i = todo[w];
      const bool wedge = !opts.wedge_trial.empty() &&
                         campaign.trials[i].name == opts.wedge_trial;
      result.trials[i] = run_one(campaign.trials[i], slot, opts, wedge);
      if (journal.is_open()) {
        std::lock_guard<std::mutex> lock(journal_mu);
        journal.append(i, result.trials[i]);
      }
      progress.tick(done.fetch_add(1, std::memory_order_relaxed) + 1);
    }
  };

  if (jobs == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j) threads.emplace_back(worker, j);
    for (auto& t : threads) t.join();
  }

  result.wall_ms = ms_since(t0);
  return result;
}

}  // namespace gfc::exp
