#include "exp/worker_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

namespace gfc::exp {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

TrialRecord run_one(const Trial& trial) {
  TrialRecord rec;
  rec.name = trial.name;
  rec.params = trial.params;
  const auto t0 = Clock::now();
  try {
    rec.metrics = trial.run().metrics;
  } catch (const std::exception& e) {
    rec.failed = true;
    rec.error = e.what();
  } catch (...) {
    rec.failed = true;
    rec.error = "unknown exception";
  }
  rec.wall_ms = ms_since(t0);
  return rec;
}

class Progress {
 public:
  Progress(bool enabled, std::FILE* out, const std::string& name,
           std::size_t total)
      : enabled_(enabled), out_(out ? out : stderr), name_(name),
        total_(total), t0_(Clock::now()) {}

  void tick(std::size_t done) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    const double elapsed = ms_since(t0_) / 1000.0;
    const double eta =
        done ? elapsed / static_cast<double>(done) *
                   static_cast<double>(total_ - done)
             : 0.0;
    std::fprintf(out_, "\r[%s] %zu/%zu trials, %.1fs elapsed, eta %.1fs ",
                 name_.c_str(), done, total_, elapsed, eta);
    if (done == total_) std::fprintf(out_, "\n");
    std::fflush(out_);
  }

 private:
  bool enabled_;
  std::FILE* out_;
  std::string name_;
  std::size_t total_;
  Clock::time_point t0_;
  std::mutex mu_;
};

}  // namespace

CampaignResult run_campaign(const Campaign& campaign, const PoolOptions& opts) {
  const std::size_t n = campaign.trials.size();
  CampaignResult result;
  result.campaign = campaign.name;
  result.seed = campaign.seed;
  result.trials.resize(n);

  int jobs = opts.jobs;
  if (jobs <= 0) jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;
  jobs = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs), std::max<std::size_t>(n, 1)));
  result.jobs = jobs;

  const auto t0 = Clock::now();
  Progress progress(opts.progress, opts.progress_out, campaign.name, n);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      result.trials[i] = run_one(campaign.trials[i]);
      progress.tick(done.fetch_add(1, std::memory_order_relaxed) + 1);
    }
  };

  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  result.wall_ms = ms_since(t0);
  return result;
}

}  // namespace gfc::exp
