// Worker pool over a Campaign's independent trials: N std::threads pull
// trial indices off a shared atomic cursor; each record lands in a
// pre-sized slot, so the result vector is in campaign order no matter
// which worker ran what. A throwing trial is captured in its record
// (failed/error) and never takes down the pool. Because every trial owns
// its simulation outright, results are byte-identical for any job count.
#pragma once

#include "exp/campaign.hpp"
#include "exp/results.hpp"

namespace gfc::exp {

struct PoolOptions {
  /// Worker threads; <= 0 means std::thread::hardware_concurrency().
  int jobs = 1;
  /// Live "done/total + ETA" line on progress_out (stderr); wall-clock
  /// only ever goes here, never into results.
  bool progress = false;
  std::FILE* progress_out = nullptr;  // nullptr -> stderr
};

CampaignResult run_campaign(const Campaign& campaign,
                            const PoolOptions& opts = {});

}  // namespace gfc::exp
