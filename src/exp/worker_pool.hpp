// Worker pool over a Campaign's independent trials: N std::threads pull
// trial indices off a shared atomic cursor; each record lands in a
// pre-sized slot, so the result vector is in campaign order no matter
// which worker ran what. A throwing trial is captured in its record
// (failed/error) and never takes down the pool. Because every trial owns
// its simulation outright, results are byte-identical for any job count.
//
// Crash safety rides on three orthogonal options:
//  - journal_path: append one fsync'd gfc-journal-v1 record per completed
//    trial, so a killed campaign loses at most the trial mid-write.
//  - resume_paths: load journals first, skip their completed trials, and
//    produce a final store byte-identical to an uninterrupted run.
//    Fingerprint mismatches throw JournalError.
//  - shard_index/shard_count: run only the contiguous trial-id range of
//    this shard; shard journals merge by resuming them all at once.
// Plus a watchdog: when trial_timeout_s > 0, a monitor thread cancels any
// trial whose attempt exceeds the budget (via the trial's ProgressSink
// heartbeat channel) and retries it up to `retries` times with the same
// seed — deterministic trials either reproduce the hang or expose a pool
// bug; either way the sweep keeps moving and the outcome is recorded as
// `timed_out` instead of stalling the pool forever.
#pragma once

#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/results.hpp"

namespace gfc::exp {

struct PoolOptions {
  /// Worker threads; <= 0 means std::thread::hardware_concurrency().
  int jobs = 1;
  /// Live "done/total + ETA" line on progress_out (stderr); wall-clock
  /// only ever goes here, never into results.
  bool progress = false;
  std::FILE* progress_out = nullptr;  // nullptr -> stderr

  /// Watchdog: cancel a trial attempt after this many wall-clock seconds
  /// (<= 0 disables). Cancellation is cooperative via ProgressSink
  /// heartbeats — see exp/progress.hpp.
  double trial_timeout_s = 0;
  /// Re-run a cancelled trial up to this many extra attempts (same seed).
  int retries = 0;

  /// Contiguous trial-id-range sharding: shard i of n runs trials in
  /// [floor(i*N/n), floor((i+1)*N/n)). Out-of-shard trials are recorded
  /// as `skipped` unless a resumed journal supplies them.
  int shard_index = 0;
  int shard_count = 1;

  /// Append-only journal to write (created, or continued when it already
  /// holds this campaign's fingerprint). Empty = no journal.
  std::string journal_path;
  /// Journals to load before running: completed trials are skipped and
  /// their records reused verbatim. Missing files are ignored (first run
  /// of a --resume campaign); mismatched fingerprints throw JournalError.
  std::vector<std::string> resume_paths;

  /// Testing hook (--wedge): replace the named trial's body with an
  /// infinite heartbeat loop, so watchdog cancellation can be exercised
  /// end-to-end from any campaign binary.
  std::string wedge_trial;
};

CampaignResult run_campaign(const Campaign& campaign,
                            const PoolOptions& opts = {});

}  // namespace gfc::exp
