#include "fault/fault.hpp"

namespace gfc::fault {

FaultPlan::FaultPlan(net::Network& net, const FaultConfig& cfg)
    : net_(net), cfg_(cfg), rng_(cfg.seed) {
  net_.set_fault_hook(this);
}

FaultPlan::~FaultPlan() {
  if (net_.fault_hook() == this) net_.set_fault_hook(nullptr);
}

net::ControlFaultHook::Verdict FaultPlan::on_control_frame(
    const net::Packet& pkt) {
  const auto& r = cfg_.rates[static_cast<std::size_t>(pkt.type)];
  if (!r.any()) return {};
  const sim::TimePs now = net_.sched().now();
  if (now < cfg_.active_from || now >= cfg_.active_until) return {};
  ++counters_.consulted;
  // One draw per frame, stacked thresholds: keeps the random stream's
  // length independent of which fault class fires.
  const double u = rng_.uniform_real();
  if (u < r.drop) {
    ++counters_.dropped;
    ++counters_.dropped_by_type[static_cast<std::size_t>(pkt.type)];
    return {Action::kDrop, 0};
  }
  if (u < r.drop + r.dup) {
    ++counters_.duplicated;
    return {Action::kDuplicate, 0};
  }
  if (u < r.drop + r.dup + r.delay_prob) {
    ++counters_.delayed;
    return {Action::kDelay, r.delay};
  }
  return {};
}

}  // namespace gfc::fault
