// Runtime fault injection for link-control frames.
//
// A FaultPlan installs itself as the Network's ControlFaultHook and decides
// — from one seeded RNG draw per consulted frame — whether each PFC
// pause/resume, CBFC credit or GFC feedback frame is dropped, duplicated or
// delayed on the wire. Rates are per PacketType, so an experiment can lose
// only RESUMEs (the classic PFC wedge) or only credits, and an optional
// [active_from, active_until) window scopes the faults to part of the run
// (deterministic "lose the next RESUME" regression tests).
//
// Determinism: the plan owns its own Rng (never the Network's), consumes
// exactly one uniform draw per consulted control frame, and campaigns
// construct one plan per trial — results are byte-identical for any
// worker-pool job count.
#pragma once

#include <array>
#include <cstdint>

#include "net/fault_hook.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace gfc::fault {

/// Per-PacketType fault rates. Probabilities are evaluated in drop ->
/// duplicate -> delay order from a single uniform draw (stacked
/// thresholds), so drop + dup + delay_prob should stay <= 1.
struct ControlFaultRates {
  double drop = 0.0;
  double dup = 0.0;
  double delay_prob = 0.0;
  sim::TimePs delay = 0;  // extra wire latency when delayed

  bool any() const { return drop > 0 || dup > 0 || delay_prob > 0; }
};

struct FaultConfig {
  std::uint64_t seed = 1;
  /// Faults apply only to frames entering the wire in [from, until).
  sim::TimePs active_from = 0;
  sim::TimePs active_until = sim::kTimeNever;

  std::array<ControlFaultRates, 8> rates{};  // indexed by PacketType

  ControlFaultRates& rate(net::PacketType t) {
    return rates[static_cast<std::size_t>(t)];
  }
  const ControlFaultRates& rate(net::PacketType t) const {
    return rates[static_cast<std::size_t>(t)];
  }

  /// Same rates for every link-control type (the "lossy wire" model).
  void set_all_control(const ControlFaultRates& r) {
    for (std::size_t t = 0; t < rates.size(); ++t)
      if (net::is_link_control(static_cast<net::PacketType>(t))) rates[t] = r;
  }

  bool enabled() const {
    for (const auto& r : rates)
      if (r.any()) return true;
    return false;
  }
};

class FaultPlan final : public net::ControlFaultHook {
 public:
  /// Installs itself on `net`; the destructor uninstalls.
  FaultPlan(net::Network& net, const FaultConfig& cfg);
  ~FaultPlan() override;
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  Verdict on_control_frame(const net::Packet& pkt) override;

  struct Counters {
    std::uint64_t consulted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
    std::array<std::uint64_t, 8> dropped_by_type{};  // indexed by PacketType
  };
  const Counters& counters() const { return counters_; }
  const FaultConfig& config() const { return cfg_; }

 private:
  net::Network& net_;
  FaultConfig cfg_;
  sim::Rng rng_;
  Counters counters_;
};

}  // namespace gfc::fault
