#include "fault/link_scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace gfc::fault {

LinkScheduler::LinkScheduler(net::Network& net,
                             std::function<void(const LinkEvent&)> on_change)
    : net_(net), on_change_(std::move(on_change)) {}

void LinkScheduler::schedule(const LinkEvent& ev) {
  assert(ev.at >= net_.sched().now());
  net_.sched().schedule_at(ev.at, [this, ev] { apply(ev); });
}

void LinkScheduler::schedule_flap(net::NodeId a, net::NodeId b,
                                  sim::TimePs down_at, sim::TimePs up_at) {
  assert(down_at < up_at);
  schedule(LinkEvent{down_at, a, b, /*up=*/false});
  schedule(LinkEvent{up_at, a, b, /*up=*/true});
}

void LinkScheduler::apply(const LinkEvent& ev) {
  net_.set_link_state(ev.a, ev.b, ev.up);
  if (ev.up) {
    ++ups_;
  } else {
    ++downs_;
  }
  if (on_change_) on_change_(ev);
  // Move stranded packets after routing settled; for an `up` transition the
  // pass is a no-op unless other links are still down.
  if (!ev.up) net_.reroute_stranded();
}

std::vector<LinkEvent> LinkScheduler::random_flaps(
    const std::vector<std::pair<net::NodeId, net::NodeId>>& links,
    sim::Rng& rng, int count, sim::TimePs window_from, sim::TimePs window_until,
    sim::TimePs outage) {
  assert(!links.empty() && window_until > window_from);
  std::vector<LinkEvent> out;
  out.reserve(static_cast<std::size_t>(count) * 2);
  for (int i = 0; i < count; ++i) {
    const auto& [a, b] = links[rng.pick_index(links.size())];
    const sim::TimePs down_at =
        rng.uniform_int(window_from, window_until - 1);
    out.push_back(LinkEvent{down_at, a, b, /*up=*/false});
    out.push_back(LinkEvent{down_at + outage, a, b, /*up=*/true});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const LinkEvent& x, const LinkEvent& y) {
                     return x.at < y.at;
                   });
  return out;
}

}  // namespace gfc::fault
