// Mid-run link failures: take full-duplex links down and up at scheduled
// instants (or at seeded random flap times). On every transition the
// scheduler flips the Network link state, lets the caller recompute routing
// (on_change callback), then asks switches to re-route packets stranded
// behind dead egresses — the runtime counterpart of the static failure
// sets in Table 1 / Figure 11.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace gfc::fault {

struct LinkEvent {
  sim::TimePs at = 0;
  net::NodeId a = net::kInvalidNode;
  net::NodeId b = net::kInvalidNode;
  bool up = false;
};

class LinkScheduler {
 public:
  /// `on_change(ev)` runs after the link state flips and before stranded
  /// packets are re-routed — the place to recompute and install routing.
  explicit LinkScheduler(net::Network& net,
                         std::function<void(const LinkEvent&)> on_change = {});

  /// Schedule one transition (must be at or after the current instant).
  void schedule(const LinkEvent& ev);
  /// Convenience: down at `down_at`, back up at `up_at`.
  void schedule_flap(net::NodeId a, net::NodeId b, sim::TimePs down_at,
                     sim::TimePs up_at);

  /// Seeded random flaps: `count` outages of `outage` each, uniformly
  /// placed in [window_from, window_until), each on a uniformly chosen link
  /// from `links`. Sorted by time for reproducible application order.
  static std::vector<LinkEvent> random_flaps(
      const std::vector<std::pair<net::NodeId, net::NodeId>>& links,
      sim::Rng& rng, int count, sim::TimePs window_from,
      sim::TimePs window_until, sim::TimePs outage);

  int downs() const { return downs_; }
  int ups() const { return ups_; }

 private:
  void apply(const LinkEvent& ev);

  net::Network& net_;
  std::function<void(const LinkEvent&)> on_change_;
  int downs_ = 0;
  int ups_ = 0;
};

}  // namespace gfc::fault
