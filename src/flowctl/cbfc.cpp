#include "flowctl/cbfc.hpp"

#include <cassert>
#include <limits>

namespace gfc::flowctl {

void CbfcModule::on_attach() {
  assert(cfg_.period > 0 && cfg_.buffer_bytes > 0);
  const auto n = static_cast<std::size_t>(node().port_count());
  fwd_blocks_.assign(n, {});
  gates_.assign(n, nullptr);
  for (int p = 0; p < node().port_count(); ++p) {
    // Credit-gate only links whose peer advertises credits (switches).
    if (peer_is_switch(p)) {
      auto gate = std::make_unique<CreditGate>(cfg_, node().port(p));
      gates_[static_cast<std::size_t>(p)] = gate.get();
      node().port(p).set_gate(std::move(gate));
    }
  }
  // Only switches do ingress accounting, hence only they advertise.
  if (as_switch() != nullptr) {
    for (int p = 0; p < node().port_count(); ++p) {
      arm_timer(p);
      if (cfg_.sync_period > 0) arm_sync(p);
    }
  }
}

void CbfcModule::arm_sync(int port) {
  sched().schedule_in(cfg_.sync_period, [this, port] {
    send_credits(port);
    arm_sync(port);
  });
}

void CbfcModule::arm_timer(int port) {
  sched().schedule_in(cfg_.period, [this, port] {
    send_credits(port);
    arm_timer(port);
  });
}

void CbfcModule::send_credits(int port) {
  const std::uint32_t mask = active_prios(port);
  if (mask == 0) return;
  for (int prio = 0; prio < kNumPriorities; ++prio) {
    if ((mask & (1u << prio)) == 0) continue;
    Packet* frame = node().make_control(PacketType::kCredit);
    frame->fc_priority = prio;
    frame->fc_value = fwd_blocks_[static_cast<std::size_t>(port)]
                                 [static_cast<std::size_t>(prio)] +
                      cfg_.buffer_blocks();
    network().trace_event(trace::EventType::kCreditTx, node().id(), port, prio,
                          frame->id, frame->fc_value);
    node().send_control(port, frame);
  }
}

void CbfcModule::on_ingress_dequeue(int port, int prio, const Packet& pkt) {
  fwd_blocks_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)] +=
      cfg_.blocks_for(pkt.size_bytes);
}

void CbfcModule::on_control(int port, const Packet& pkt) {
  if (pkt.type != PacketType::kCredit) return;
  CreditGate* gate = gates_[static_cast<std::size_t>(port)];
  if (gate == nullptr) return;
  network().trace_event(trace::EventType::kCreditRx, node().id(), port,
                        pkt.fc_priority, pkt.id, pkt.fc_value);
  gate->update_fccl(pkt.fc_priority, pkt.fc_value);
  node().port(port).kick();
}

std::int64_t CbfcModule::available_credits(int port, int prio) const {
  const CreditGate* gate = gates_[static_cast<std::size_t>(port)];
  if (gate == nullptr) return std::numeric_limits<std::int64_t>::max();
  return gate->credits(prio);
}

}  // namespace gfc::flowctl
