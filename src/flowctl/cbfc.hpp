// Credit-Based Flow Control (InfiniBand-style), the time-based baseline.
//
// Downstream half: per (port, priority) it tracks cumulative forwarded
// 64-byte blocks and periodically (every `period`) advertises
// FCCL = forwarded_blocks + buffer_blocks.
// Upstream half: per priority it tracks FCTBS (blocks sent) and may start a
// packet only while FCTBS + packet_blocks <= FCCL — running out of credits
// is exactly the paper's hold-and-wait state.
#pragma once

#include <memory>

#include "flowctl/flow_control.hpp"

namespace gfc::flowctl {

struct CbfcConfig {
  sim::TimePs period = 0;           // feedback period T
  std::int64_t buffer_bytes = 0;    // advertised per (port, prio) credit pool
  std::int64_t block_bytes = 64;    // IB credit granularity

  /// Optional credit-sync cadence (0 = off): an extra full FCCL
  /// re-advertisement every sync_period. CBFC's primary advertisements are
  /// already periodic *and cumulative*, so a single lost credit frame heals
  /// within one `period` on its own; the sync timer exists to bound repair
  /// under correlated loss (a flapping link dropping several consecutive
  /// advertisements) and to make the repair cadence an explicit knob in the
  /// fault studies. Off by default; zero keeps seed behavior bit-for-bit.
  sim::TimePs sync_period = 0;

  std::int64_t buffer_blocks() const { return buffer_bytes / block_bytes; }
  std::int64_t blocks_for(std::int64_t bytes) const {
    return (bytes + block_bytes - 1) / block_bytes;
  }
};

class CbfcModule final : public LinkFcBase {
 public:
  explicit CbfcModule(const CbfcConfig& cfg) : cfg_(cfg) {}

  void on_ingress_dequeue(int port, int prio, const Packet& pkt) override;
  void on_control(int port, const Packet& pkt) override;
  const char* name() const override { return "CBFC"; }

  const CbfcConfig& config() const { return cfg_; }

  /// Upstream view: available credit blocks on (port, prio); for tests and
  /// the deadlock wait-for graph. Ports without a credit gate report a huge
  /// value.
  std::int64_t available_credits(int port, int prio) const;

 protected:
  void on_attach() override;

 private:
  class CreditGate final : public net::TxGate {
   public:
    CreditGate(const CbfcConfig& cfg, net::EgressPort& port)
        : cfg_(cfg), port_(port) {
      fccl_.fill(cfg.buffer_blocks());  // initial advertisement at link init
    }
    bool allowed(const Packet& pkt, sim::TimePs, sim::TimePs*) override {
      const auto p = static_cast<std::size_t>(pkt.priority);
      if (fctbs_[p] + cfg_.blocks_for(pkt.size_bytes) <= fccl_[p]) return true;
      if (!exhausted_[p]) {
        // Edge-triggered: first blocked attempt since credits last grew.
        exhausted_[p] = true;
        port_.owner().network().trace_event(
            trace::EventType::kCreditExhausted, port_.owner().id(),
            port_.index(), pkt.priority, pkt.id, fccl_[p] - fctbs_[p]);
      }
      return false;
    }
    void on_transmit(const Packet& pkt, sim::TimePs) override {
      fctbs_[pkt.priority] += cfg_.blocks_for(pkt.size_bytes);
    }
    void update_fccl(int prio, std::int64_t fccl) {
      auto& cur = fccl_[static_cast<std::size_t>(prio)];
      if (fccl > cur) {
        cur = fccl;  // FCCL is cumulative, never regresses
        exhausted_[static_cast<std::size_t>(prio)] = false;
      }
    }
    std::int64_t credits(int prio) const {
      const auto p = static_cast<std::size_t>(prio);
      return fccl_[p] - fctbs_[p];
    }

   private:
    const CbfcConfig cfg_;
    net::EgressPort& port_;
    std::array<std::int64_t, kNumPriorities> fccl_{};
    std::array<std::int64_t, kNumPriorities> fctbs_{};
    std::array<bool, kNumPriorities> exhausted_{};
  };

  void send_credits(int port);
  void arm_timer(int port);
  void arm_sync(int port);

  CbfcConfig cfg_;
  /// Downstream: cumulative forwarded blocks per (port, prio).
  std::vector<std::array<std::int64_t, kNumPriorities>> fwd_blocks_;
  std::vector<CreditGate*> gates_;  // null on ports facing hosts
};

}  // namespace gfc::flowctl
