#include "flowctl/flow_control.hpp"

namespace gfc::flowctl {

void LinkFcBase::attach(Node& node) {
  node_ = &node;
  sw_ = dynamic_cast<SwitchNode*>(&node);
  active_prios_.assign(static_cast<std::size_t>(node.port_count()), 0);
  on_attach();
}

void LinkFcBase::on_ingress_enqueue(int port, int prio, const Packet&) {
  active_prios_[static_cast<std::size_t>(port)] |= 1u << prio;
}

bool LinkFcBase::peer_is_switch(int port) const {
  const auto peer = node_->peer(port);
  if (peer.node == net::kInvalidNode) return false;
  return node_->network().node(peer.node).is_switch();
}

}  // namespace gfc::flowctl
