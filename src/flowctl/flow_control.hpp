// Shared scaffolding for hop-by-hop flow-control mechanisms.
//
// Terminology follows the paper: the *downstream* half watches a node's
// ingress occupancy and generates feedback; the *upstream* half gates the
// peer's egress port. One module instance per node implements both halves
// for all of that node's ports.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/network.hpp"

namespace gfc::flowctl {

using net::FcModule;
using net::kNumPriorities;
using net::Node;
using net::Packet;
using net::PacketType;
using net::SwitchNode;

/// Common base: node binding, peer inspection, per-port priority-activity
/// tracking (periodic mechanisms only emit feedback for priorities that
/// have carried traffic).
class LinkFcBase : public FcModule {
 public:
  void attach(Node& node) override;

  void on_ingress_enqueue(int port, int prio, const Packet& pkt) override;
  void on_ingress_dequeue(int, int, const Packet&) override {}
  void on_control(int, const Packet&) override {}

 protected:
  /// Hook for subclasses: called once from attach() after node_ is bound.
  virtual void on_attach() = 0;

  Node& node() { return *node_; }
  net::Network& network() { return node_->network(); }
  sim::Scheduler& sched() { return node_->sched_ref(); }

  /// The node as a switch, or nullptr when attached to a host.
  SwitchNode* as_switch() { return sw_; }

  bool peer_is_switch(int port) const;

  /// Bitmask of priorities that have had ingress traffic on `port`.
  std::uint32_t active_prios(int port) const {
    return active_prios_[static_cast<std::size_t>(port)];
  }

 private:
  Node* node_ = nullptr;
  SwitchNode* sw_ = nullptr;
  std::vector<std::uint32_t> active_prios_;
};

}  // namespace gfc::flowctl
