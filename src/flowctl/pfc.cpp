#include "flowctl/pfc.hpp"

#include <cassert>

namespace gfc::flowctl {

void PfcModule::on_attach() {
  assert(cfg_.xon_bytes < cfg_.xoff_bytes && cfg_.xon_bytes >= 0);
  const auto n = static_cast<std::size_t>(node().port_count());
  pause_sent_.assign(n, {});
  refresh_.assign(n, {});
  gates_.assign(n, nullptr);
  for (int p = 0; p < node().port_count(); ++p) {
    auto gate = std::make_unique<PauseGate>();
    gates_[static_cast<std::size_t>(p)] = gate.get();
    node().port(p).set_gate(std::move(gate));
  }
}

void PfcModule::arm_refresh(int port, int prio) {
  auto& ev = refresh_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)];
  ev = sched().schedule_in(cfg_.pause_timeout / 2, [this, port, prio] {
    refresh_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)] = {};
    if (!pause_sent_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)])
      return;
    // Keep the upstream's quanta topped up (and repair a lost PAUSE).
    Packet* frame = node().make_control(PacketType::kPfcPause);
    frame->fc_priority = prio;
    decorate_pause(*frame, port, prio);
    network().trace_event(trace::EventType::kPauseTx, node().id(), port, prio,
                          frame->id, /*refresh=*/1);
    node().send_control(port, frame);
    arm_refresh(port, prio);
  });
}

void PfcModule::send_pause_state(int port, int prio, bool pause) {
  Packet* frame = node().make_control(pause ? PacketType::kPfcPause
                                            : PacketType::kPfcResume);
  frame->fc_priority = prio;
  if (pause) decorate_pause(*frame, port, prio);
  network().trace_event(
      pause ? trace::EventType::kPauseTx : trace::EventType::kResumeTx,
      node().id(), port, prio, frame->id, /*refresh=*/0);
  node().send_control(port, frame);
  pause_sent_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)] = pause;
  on_pause_state(port, prio, pause);
  if (cfg_.pause_timeout > 0) {
    auto& ev =
        refresh_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)];
    if (ev.valid()) {
      sched().cancel(ev);
      ev = {};
    }
    if (pause) arm_refresh(port, prio);
  }
}

void PfcModule::on_ingress_enqueue(int port, int prio, const Packet& pkt) {
  LinkFcBase::on_ingress_enqueue(port, prio, pkt);
  SwitchNode* sw = as_switch();
  if (sw == nullptr) return;
  if (!pause_sent_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)] &&
      sw->ingress_bytes(port, prio) >= cfg_.xoff_bytes) {
    send_pause_state(port, prio, /*pause=*/true);
  }
}

void PfcModule::on_ingress_dequeue(int port, int prio, const Packet&) {
  SwitchNode* sw = as_switch();
  if (sw == nullptr) return;
  if (pause_sent_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)] &&
      sw->ingress_bytes(port, prio) <= cfg_.xon_bytes) {
    send_pause_state(port, prio, /*pause=*/false);
  }
}

void PfcModule::on_control(int port, const Packet& pkt) {
  if (pkt.type != PacketType::kPfcPause && pkt.type != PacketType::kPfcResume) return;
  network().trace_event(pkt.type == PacketType::kPfcPause
                            ? trace::EventType::kPauseRx
                            : trace::EventType::kResumeRx,
                        node().id(), port, pkt.fc_priority, pkt.id, 0);
  PauseGate* gate = gates_[static_cast<std::size_t>(port)];
  if (pkt.type == PacketType::kPfcPause) {
    gate->set_paused_until(pkt.fc_priority,
                           cfg_.pause_timeout > 0
                               ? sched().now() + cfg_.pause_timeout
                               : sim::kTimeNever);
    on_pause_rx(port, pkt);
  } else {
    gate->set_paused_until(pkt.fc_priority, 0);
    on_resume_rx(port, pkt);
  }
  node().port(port).kick();
}

void PfcModule::force_unpause(int port, int prio) {
  PauseGate* gate = gates_[static_cast<std::size_t>(port)];
  if (gate == nullptr) return;
  gate->set_paused_until(prio, 0);
  node().port(port).kick();
}

bool PfcModule::gate_paused(int port, int prio) {
  const PauseGate* gate = gates_[static_cast<std::size_t>(port)];
  return gate != nullptr && gate->paused(prio, sched().now());
}

}  // namespace gfc::flowctl
