// Priority Flow Control (IEEE 802.1Qbb), the CEE baseline.
//
// Downstream half: when the (ingress port, priority) occupancy reaches XOFF
// a PAUSE frame is sent upstream; when it drains to XON a RESUME follows.
// Upstream half: a paused priority cannot start new data transmissions.
// The buffer above XOFF is the headroom that absorbs in-flight packets; it
// must cover C * tau or the lossless-violation counter will fire.
//
// Optional pause expiry (pause_timeout > 0) models the 802.1Qbb pause
// quanta: a received PAUSE only holds for the timeout and the downstream
// refreshes outstanding pauses every timeout/2. This makes PFC self-healing
// under control-frame loss — a lost RESUME un-wedges when the quanta run
// out, a lost PAUSE is re-sent by the refresh — at the cost of the classic
// edge-triggered hold-forever semantics (and of headroom: an expired pause
// that should still stand readmits traffic into a full buffer). Off by
// default; zero-timeout behavior is bit-for-bit the seed's.
#pragma once

#include <memory>

#include "flowctl/flow_control.hpp"

namespace gfc::flowctl {

struct PfcConfig {
  std::int64_t xoff_bytes = 0;
  std::int64_t xon_bytes = 0;  // must be < xoff_bytes

  /// 802.1Qbb-style pause expiry; 0 = classic indefinite pauses.
  sim::TimePs pause_timeout = 0;

  /// Recommended XON gap of 2 MTU below XOFF (paper Sec 4.1 / [59]).
  static PfcConfig for_buffer(std::int64_t xoff, std::int64_t mtu = 1500) {
    return PfcConfig{xoff, xoff - 2 * mtu};
  }
};

class PfcModule : public LinkFcBase {
 public:
  explicit PfcModule(const PfcConfig& cfg) : cfg_(cfg) {}

  void on_ingress_enqueue(int port, int prio, const Packet& pkt) override;
  void on_ingress_dequeue(int port, int prio, const Packet& pkt) override;
  void on_control(int port, const Packet& pkt) override;
  const char* name() const override { return "PFC"; }

  const PfcConfig& config() const { return cfg_; }
  /// Downstream view: is this (port, prio) currently holding the upstream
  /// paused? (exposed for tests and the deadlock wait-for graph)
  bool pause_sent(int port, int prio) const {
    return pause_sent_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)];
  }
  /// Upstream view: is this port's gate currently blocking `prio`?
  bool gate_paused(int port, int prio);

 protected:
  void on_attach() override;

  // --- subclass hooks (DCFIT, src/mech/dcfit.*) ---------------------------
  /// An outgoing PAUSE frame is about to be sent on `port` for `prio`
  /// (both the XOFF edge and refresh re-sends); decorate its payload.
  virtual void decorate_pause(Packet&, int /*port*/, int /*prio*/) {}
  /// The downstream pause state for (port, prio) just changed.
  virtual void on_pause_state(int /*port*/, int /*prio*/, bool /*pause*/) {}
  /// A PAUSE / RESUME frame was received and applied to the gate.
  virtual void on_pause_rx(int /*port*/, const Packet&) {}
  virtual void on_resume_rx(int /*port*/, const Packet&) {}

  /// Emit the PAUSE (pause=true) or RESUME edge on `port` for `prio` and
  /// record the new downstream state.
  void send_pause_state(int port, int prio, bool pause);
  /// Force-open this port's gate for `prio` (DCFIT temporary bypass); the
  /// downstream's next PAUSE re-closes it.
  void force_unpause(int port, int prio);

 private:
  /// Upstream-side gate: blocks paused priorities until the pause expires
  /// (kTimeNever = indefinite, the classic edge-triggered mode).
  class PauseGate final : public net::TxGate {
   public:
    bool allowed(const Packet& pkt, sim::TimePs now, sim::TimePs* wake_at) override {
      const sim::TimePs until = paused_until_[pkt.priority];
      if (now >= until) return true;
      // A finite pause is its own wake-up (the port self-heals); an
      // indefinite one waits for the RESUME kick.
      if (until != sim::kTimeNever && until < *wake_at) *wake_at = until;
      return false;
    }
    void on_transmit(const Packet&, sim::TimePs) override {}
    void set_paused_until(int prio, sim::TimePs until) {
      paused_until_[static_cast<std::size_t>(prio)] = until;
    }
    bool paused(int prio, sim::TimePs now) const {
      return now < paused_until_[static_cast<std::size_t>(prio)];
    }

   private:
    std::array<sim::TimePs, kNumPriorities> paused_until_{};  // 0 = open
  };

  void arm_refresh(int port, int prio);

  PfcConfig cfg_;
  std::vector<std::array<bool, kNumPriorities>> pause_sent_;
  /// Pending pause-refresh timers (only armed when pause_timeout > 0).
  std::vector<std::array<sim::EventId, kNumPriorities>> refresh_;
  std::vector<PauseGate*> gates_;  // owned by the egress ports
};

}  // namespace gfc::flowctl
