// Priority Flow Control (IEEE 802.1Qbb), the CEE baseline.
//
// Downstream half: when the (ingress port, priority) occupancy reaches XOFF
// a PAUSE frame is sent upstream; when it drains to XON a RESUME follows.
// Upstream half: a paused priority cannot start new data transmissions.
// The buffer above XOFF is the headroom that absorbs in-flight packets; it
// must cover C * tau or the lossless-violation counter will fire.
#pragma once

#include <memory>

#include "flowctl/flow_control.hpp"

namespace gfc::flowctl {

struct PfcConfig {
  std::int64_t xoff_bytes = 0;
  std::int64_t xon_bytes = 0;  // must be < xoff_bytes

  /// Recommended XON gap of 2 MTU below XOFF (paper Sec 4.1 / [59]).
  static PfcConfig for_buffer(std::int64_t xoff, std::int64_t mtu = 1500) {
    return PfcConfig{xoff, xoff - 2 * mtu};
  }
};

class PfcModule final : public LinkFcBase {
 public:
  explicit PfcModule(const PfcConfig& cfg) : cfg_(cfg) {}

  void on_ingress_enqueue(int port, int prio, const Packet& pkt) override;
  void on_ingress_dequeue(int port, int prio, const Packet& pkt) override;
  void on_control(int port, const Packet& pkt) override;
  const char* name() const override { return "PFC"; }

  const PfcConfig& config() const { return cfg_; }
  /// Downstream view: is this (port, prio) currently holding the upstream
  /// paused? (exposed for tests and the deadlock wait-for graph)
  bool pause_sent(int port, int prio) const {
    return pause_sent_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)];
  }

 protected:
  void on_attach() override;

 private:
  /// Upstream-side gate: blocks paused priorities.
  class PauseGate final : public net::TxGate {
   public:
    bool allowed(const Packet& pkt, sim::TimePs, sim::TimePs*) override {
      return !paused_[pkt.priority];
    }
    void on_transmit(const Packet&, sim::TimePs) override {}
    void set_paused(int prio, bool paused) {
      paused_[static_cast<std::size_t>(prio)] = paused;
    }
    bool paused(int prio) const { return paused_[static_cast<std::size_t>(prio)]; }

   private:
    std::array<bool, kNumPriorities> paused_{};
  };

  void send_pause_state(int port, int prio, bool pause);

  PfcConfig cfg_;
  std::vector<std::array<bool, kNumPriorities>> pause_sent_;
  std::vector<PauseGate*> gates_;  // owned by the egress ports
};

}  // namespace gfc::flowctl
