#include "mech/cbd_routing.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>

#include "topo/cbd.hpp"

namespace gfc::mech {
namespace {

using topo::NodeIndex;

constexpr int kInf = std::numeric_limits<int>::max();

/// BFS visit order over switch-to-switch links, rooted at the smallest
/// switch index of each connected component. rank[v] < rank[w] means v is
/// closer to (or is) its component's root: the "up" direction.
std::vector<int> switch_ranks(const topo::Topology& topo) {
  std::vector<int> rank(topo.node_count(), kInf);
  int next = 0;
  for (const NodeIndex root : topo.switches()) {
    if (rank[static_cast<std::size_t>(root)] != kInf) continue;
    std::deque<NodeIndex> bfs{root};
    rank[static_cast<std::size_t>(root)] = next++;
    while (!bfs.empty()) {
      const NodeIndex v = bfs.front();
      bfs.pop_front();
      // neighbors() is insertion-ordered; sort by index so the rank
      // assignment is a pure function of the topology.
      std::vector<NodeIndex> nbrs;
      for (const auto& [w, link] : topo.neighbors(v)) {
        if (!topo.is_host(w) && rank[static_cast<std::size_t>(w)] == kInf)
          nbrs.push_back(w);
      }
      std::sort(nbrs.begin(), nbrs.end());
      for (const NodeIndex w : nbrs) {
        if (rank[static_cast<std::size_t>(w)] != kInf) continue;
        rank[static_cast<std::size_t>(w)] = next++;
        bfs.push_back(w);
      }
    }
  }
  return rank;
}

}  // namespace

topo::RoutingTable cbd_free_routes(const topo::Topology& topo,
                                   RoutingStats* stats) {
  const std::size_t n = topo.node_count();
  topo::RoutingTable table(n);
  const std::vector<int> rank = switch_ranks(topo);
  const std::vector<NodeIndex> switches = topo.switches();
  const std::vector<NodeIndex> hosts = topo.hosts();

  // Switches in descending rank (leaves first): the processing order that
  // makes the all-down distance computable in one pass, since every down
  // hop goes to a strictly larger rank.
  std::vector<NodeIndex> by_rank_desc = switches;
  std::sort(by_rank_desc.begin(), by_rank_desc.end(),
            [&rank](NodeIndex a, NodeIndex b) {
              return rank[static_cast<std::size_t>(a)] >
                     rank[static_cast<std::size_t>(b)];
            });

  std::vector<int> ddist(n);   // hops to dst using down hops only
  std::vector<int> legal(n);   // hops to dst over any up* down* path
  for (const NodeIndex dst : hosts) {
    std::fill(ddist.begin(), ddist.end(), kInf);
    std::fill(legal.begin(), legal.end(), kInf);
    for (const auto& [s, link] : topo.neighbors(dst)) {
      if (!topo.is_host(s)) ddist[static_cast<std::size_t>(s)] = 1;
    }
    // All-down distance, leaves toward root.
    for (const NodeIndex v : by_rank_desc) {
      const auto vi = static_cast<std::size_t>(v);
      for (const auto& [w, link] : topo.neighbors(v)) {
        const auto wi = static_cast<std::size_t>(w);
        if (topo.is_host(w) || rank[wi] <= rank[vi]) continue;  // not down
        if (ddist[wi] != kInf && ddist[wi] + 1 < ddist[vi])
          ddist[vi] = ddist[wi] + 1;
      }
    }
    // Legal distance, root toward leaves: either descend from here, or
    // take one up hop and recurse (up hops strictly decrease rank, so
    // ascending-rank order sees every up-neighbor first).
    for (auto it = by_rank_desc.rbegin(); it != by_rank_desc.rend(); ++it) {
      const auto vi = static_cast<std::size_t>(*it);
      legal[vi] = ddist[vi];
      for (const auto& [w, link] : topo.neighbors(*it)) {
        const auto wi = static_cast<std::size_t>(w);
        if (topo.is_host(w) || rank[wi] >= rank[vi]) continue;  // not up
        if (legal[wi] != kInf && legal[wi] + 1 < legal[vi])
          legal[vi] = legal[wi] + 1;
      }
    }
    // Next hops, phase-free: descend as soon as possible. A switch with a
    // finite down distance *only* offers down hops — even when an up detour
    // would be shorter — so any packet position determines its phase and
    // every realized path is up* down*.
    for (const NodeIndex v : switches) {
      const auto vi = static_cast<std::size_t>(v);
      std::vector<NodeIndex> hops;
      if (ddist[vi] == 1) {
        hops.push_back(dst);
      } else if (ddist[vi] != kInf) {
        for (const auto& [w, link] : topo.neighbors(v)) {
          const auto wi = static_cast<std::size_t>(w);
          if (topo.is_host(w) || rank[wi] <= rank[vi]) continue;
          if (ddist[wi] != kInf && ddist[wi] + 1 == ddist[vi]) hops.push_back(w);
        }
      } else if (legal[vi] != kInf) {
        for (const auto& [w, link] : topo.neighbors(v)) {
          const auto wi = static_cast<std::size_t>(w);
          if (topo.is_host(w) || rank[wi] >= rank[vi]) continue;
          if (legal[wi] != kInf && legal[wi] + 1 == legal[vi]) hops.push_back(w);
        }
      }
      std::sort(hops.begin(), hops.end());
      table.set_next_hops(v, dst, std::move(hops));
    }
    // Source hosts enter at their edge switch (if it can reach dst).
    for (const NodeIndex src : hosts) {
      if (src == dst) continue;
      std::vector<NodeIndex> hops;
      for (const auto& [s, link] : topo.neighbors(src)) {
        if (topo.is_host(s)) continue;
        if (s == dst) continue;
        if (legal[static_cast<std::size_t>(s)] != kInf ||
            table.routable(s, dst))
          hops.push_back(s);
      }
      std::sort(hops.begin(), hops.end());
      table.set_next_hops(src, dst, std::move(hops));
    }
  }

  if (stats != nullptr) {
    *stats = RoutingStats{};
    topo::BufferDependencyGraph g(topo);
    g.add_routing_closure(table);
    stats->cbd_free = !g.find_cycle().has_cbd;

    const topo::RoutingTable shortest = topo::compute_shortest_paths(topo);
    double sum_stretch = 0.0;
    double max_stretch = 1.0;
    std::map<topo::DirectedLink, std::uint64_t> load;
    for (const NodeIndex src : hosts) {
      for (const NodeIndex dst : hosts) {
        if (src == dst) continue;
        const std::vector<NodeIndex> path = table.trace(src, dst, /*salt=*/0);
        if (path.size() < 2) {
          ++stats->unroutable_pairs;
          continue;
        }
        ++stats->pairs;
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          if (!topo.is_host(path[i]) && !topo.is_host(path[i + 1]))
            ++load[{path[i], path[i + 1]}];
        }
        const std::vector<NodeIndex> ideal = shortest.trace(src, dst, 0);
        if (ideal.size() >= 2) {
          const double stretch = static_cast<double>(path.size() - 1) /
                                 static_cast<double>(ideal.size() - 1);
          sum_stretch += stretch;
          max_stretch = std::max(max_stretch, stretch);
        } else {
          sum_stretch += 1.0;
        }
      }
    }
    if (stats->pairs > 0) {
      stats->avg_stretch = sum_stretch / static_cast<double>(stats->pairs);
      stats->max_stretch = max_stretch;
    }
    if (!load.empty()) {
      std::uint64_t max_load = 0, total = 0;
      for (const auto& [l, c] : load) {
        max_load = std::max(max_load, c);
        total += c;
      }
      stats->load_imbalance = static_cast<double>(max_load) * load.size() /
                              static_cast<double>(total);
    }
  }
  return table;
}

}  // namespace gfc::mech
