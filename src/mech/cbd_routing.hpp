// Deadlock avoidance by route restriction (Mendlovic & Matias, "Deadlock-
// free routing for lossless networks", arXiv 2503.04583): an up*/down*
// turn-elimination pass that provably removes every cyclic buffer
// dependency, at the cost of path stretch and load concentration near the
// spanning-tree root — the avoidance-by-routing baseline GFC competes
// against.
//
// Construction:
//  1. Rank every switch by BFS visit order from a deterministic root (the
//     smallest switch index; one BFS per connected component). An "up"
//     hop moves to a smaller rank (toward the root), a "down" hop to a
//     larger one.
//  2. A legal path is up* then down*. Per destination, compute the
//     all-down distance (reverse BFS over down hops from the destination's
//     edge switches) and the legal distance (down distance, or one up hop
//     plus the up-neighbor's legal distance, in ascending rank order).
//  3. Next hops are phase-free by the "descend as soon as possible" rule:
//     a switch with a finite all-down distance only offers down hops (all
//     ECMP candidates continue descending), otherwise only up hops. Every
//     realized path is therefore up* down* regardless of ECMP choices, and
//     the induced channel-dependency graph is acyclic (classic Autonet
//     argument; verified per call via topo::BufferDependencyGraph and
//     reported in RoutingStats::cbd_free).
#pragma once

#include <cstddef>

#include "topo/routing.hpp"
#include "topo/topology.hpp"

namespace gfc::mech {

struct RoutingStats {
  /// Re-verified on every call: the restricted routing closure has no CBD.
  bool cbd_free = false;
  std::size_t pairs = 0;             // routable ordered host pairs
  std::size_t unroutable_pairs = 0;  // pairs the restriction cannot serve
  /// Restricted-path hops / shortest-path hops (salt-0 traces).
  double avg_stretch = 1.0;
  double max_stretch = 1.0;
  /// max / mean load over directed switch-to-switch links (salt-0 traces,
  /// all ordered host pairs) — the concentration cost of tree-ordered
  /// routing.
  double load_imbalance = 1.0;
};

/// The restricted routing table for `topo` (hosts and switches filled in,
/// same RoutingTable contract as topo::compute_shortest_paths).
topo::RoutingTable cbd_free_routes(const topo::Topology& topo,
                                   RoutingStats* stats = nullptr);

}  // namespace gfc::mech
