#include "mech/dcfit.hpp"

#include <algorithm>

namespace gfc::mech {

void DcfitModule::on_attach() {
  PfcModule::on_attach();
  const auto n = static_cast<std::size_t>(node().port_count());
  origin_.assign(n, {});
  incoming_.assign(n, {});
  refresh_.assign(n, {});
  refresh_count_.assign(n, {});
}

bool DcfitModule::origin_seq_live(int prio, std::uint64_t seq) const {
  for (const auto& ports : origin_) {
    const OriginState& o = ports[static_cast<std::size_t>(prio)];
    if (o.active && o.seq == seq) return true;
  }
  return false;
}

void DcfitModule::attach_trigger(net::Packet& frame, int port, int prio,
                                 bool allow_propagate) {
  net::SwitchNode* sw = as_switch();
  if (sw == nullptr) return;
  // Propagate: the congested ingress waits on a paused egress whose
  // downstream sent us a trigger — this pause is that pause's consequence.
  // Deterministic pick: the smallest such egress index.
  sw->head_targets(port, &head_targets_);
  std::sort(head_targets_.begin(), head_targets_.end());
  if (allow_propagate) {
    for (const int e : head_targets_) {
      if (e < 0 || e == port) continue;
      const IncomingTrigger& in = incoming_[static_cast<std::size_t>(e)]
                                           [static_cast<std::size_t>(prio)];
      if (in.origin == net::kInvalidNode || !gate_paused(e, prio)) continue;
      // Never recirculate our own *dead* trigger: after a break-and-rewedge
      // the cycle can refill with pauses that all carry sequences whose
      // origin entries have since resumed, and a cycle of dead triggers
      // detects nothing forever. Fall through and originate fresh instead.
      if (in.origin == node().id() && !origin_seq_live(prio, in.seq)) continue;
      frame.fc_trigger_origin = in.origin;
      frame.fc_trigger_seq = in.seq;
      network().trace_event(trace::EventType::kTriggerPropagate, node().id(),
                            port, prio, in.seq, in.origin);
      return;
    }
  }
  // Originate: this pause heads its chain. Keep the existing sequence and
  // timestamp while the pause stands (refresh re-sends must not reset the
  // detection-latency clock).
  OriginState& o =
      origin_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)];
  if (!o.active) {
    o.active = true;
    o.seq = ++next_seq_;
    o.originated_at = sched().now();
    network().trace_event(trace::EventType::kTriggerOriginate, node().id(),
                          port, prio, o.seq, 0);
  }
  frame.fc_trigger_origin = node().id();
  frame.fc_trigger_seq = o.seq;
}

void DcfitModule::decorate_pause(net::Packet& frame, int port, int prio) {
  attach_trigger(frame, port, prio);
}

void DcfitModule::arm_trigger_refresh(int port, int prio) {
  auto& ev =
      refresh_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)];
  ev = sched().schedule_in(dcfg_.trigger_period, [this, port, prio] {
    refresh_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)] =
        {};
    if (!pause_sent(port, prio)) return;
    // Re-send the outstanding PAUSE with the *current* trigger: in a wedged
    // cycle this recirculates triggers one hop per period until one
    // returns to its origin. Every kReoriginateEvery-th refresh skips the
    // propagate step and injects a *fresh* origin: a cycle can otherwise
    // fill up with stale triggers whose (off-cycle) origins have resumed,
    // which circulate forever without ever proving the deadlock.
    auto& count = refresh_count_[static_cast<std::size_t>(port)]
                               [static_cast<std::size_t>(prio)];
    const bool reoriginate = ++count >= kReoriginateEvery;
    if (reoriginate) count = 0;
    net::Packet* frame = node().make_control(net::PacketType::kPfcPause);
    frame->fc_priority = prio;
    attach_trigger(*frame, port, prio, /*allow_propagate=*/!reoriginate);
    network().trace_event(trace::EventType::kPauseTx, node().id(), port, prio,
                          frame->id, /*refresh=*/1);
    node().send_control(port, frame);
    arm_trigger_refresh(port, prio);
  });
}

void DcfitModule::on_pause_state(int port, int prio, bool pause) {
  auto& ev =
      refresh_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)];
  if (ev.valid()) {
    sched().cancel(ev);
    ev = {};
  }
  if (pause) {
    refresh_count_[static_cast<std::size_t>(port)]
                  [static_cast<std::size_t>(prio)] = 0;
    arm_trigger_refresh(port, prio);
  } else {
    // RESUME: the chain headed here (if any) is over; its trigger dies.
    origin_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)]
        .active = false;
  }
}

void DcfitModule::on_pause_rx(int port, const net::Packet& pkt) {
  const int prio = pkt.fc_priority;
  incoming_[static_cast<std::size_t>(port)][static_cast<std::size_t>(prio)] = {
      pkt.fc_trigger_origin, pkt.fc_trigger_seq};
  if (pkt.fc_trigger_origin != node().id()) return;
  // Our own trigger came back. Liveness re-check: the originating pause
  // must still be standing, else the chain resolved while the trigger was
  // in flight — a false positive, counted and ignored.
  for (int p = 0; p < node().port_count(); ++p) {
    const OriginState& o =
        origin_[static_cast<std::size_t>(p)][static_cast<std::size_t>(prio)];
    if (!o.active || o.seq != pkt.fc_trigger_seq) continue;
    ++detections_;
    const sim::TimePs latency = sched().now() - o.originated_at;
    if (first_latency_ < 0) first_latency_ = latency;
    network().trace_event(trace::EventType::kTriggerReturn, node().id(), port,
                          prio, o.seq, latency);
    break_deadlock(port, prio);
    return;
  }
  ++false_positives_;
}

void DcfitModule::break_deadlock(int egress, int prio) {
  last_break_at_ = sched().now();
  if (dcfg_.break_policy == runner::DcfitBreak::kDropOne) {
    net::SwitchNode* sw = as_switch();
    const std::uint64_t n = sw != nullptr ? sw->drop_egress_head(egress) : 0;
    packets_sacrificed_ += n;
    network().trace_event(trace::EventType::kMechBreak, node().id(), egress,
                          prio, /*id=*/0, static_cast<std::int64_t>(n));
  } else {
    // Temporary bypass: open the gate and let the egress push into the
    // (full) downstream ingress until the downstream's next trigger
    // refresh re-pauses us. No packet loss, but the downstream may exceed
    // its buffer — the lossless-violation counter records the cost.
    ++bypasses_;
    network().trace_event(trace::EventType::kMechBreak, node().id(), egress,
                          prio, /*id=*/1, 0);
    force_unpause(egress, prio);
  }
}

void DcfitModule::on_resume_rx(int port, const net::Packet& pkt) {
  incoming_[static_cast<std::size_t>(port)]
           [static_cast<std::size_t>(pkt.fc_priority)] = {};
}

DcfitTotals collect_dcfit(net::Network& net) {
  DcfitTotals t;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    auto* m = dynamic_cast<DcfitModule*>(
        net.node(static_cast<net::NodeId>(i)).fc());
    if (m == nullptr) continue;
    t.detections += m->detections();
    t.false_positives += m->false_positives();
    t.packets_sacrificed += m->packets_sacrificed();
    t.bypasses += m->bypasses();
    if (m->first_detection_latency() >= 0 &&
        (t.first_detection_latency < 0 ||
         m->first_detection_latency() < t.first_detection_latency))
      t.first_detection_latency = m->first_detection_latency();
    t.last_break_at = std::max(t.last_break_at, m->last_break_at());
  }
  return t;
}

}  // namespace gfc::mech
