// DCFIT: in-data-plane PFC deadlock detection and break (Wu & Ng,
// "Detecting and Resolving PFC Deadlocks with ITSY Entirely in the Data
// Plane", arXiv 2009.13446) — the detect-and-break baseline GFC competes
// against.
//
// The mechanism rides on classic PFC (indefinite pauses, edge-triggered
// XOFF/XON) and adds an *initial trigger* to every PAUSE frame:
//
//  * Originate — when a switch pauses an upstream and none of the egresses
//    its congested ingress waits on is itself paused, the pause is the
//    chain's initial trigger: the frame carries (origin = this switch,
//    seq = fresh node-local sequence number).
//  * Propagate — if the congested ingress waits on an egress that *is*
//    paused by the downstream, the pause is a consequence of that pause:
//    the frame forwards the trigger recorded from the downstream's PAUSE.
//  * Recirculate — every outstanding pause is re-sent with the *current*
//    trigger every `trigger_period` (the DCFIT module's own refresh; the
//    gates still hold indefinitely, so classic PFC semantics — and its
//    deadlocks — are preserved). In a wedged cycle of N switches the
//    triggers rotate one hop per refresh.
//  * Detect — a received PAUSE whose trigger origin is this switch, with
//    that origin sequence still live (the originating pause still
//    standing), proves the pause chain closed a cycle: deadlock. A
//    returned trigger whose origin entry has since been resumed is counted
//    as a false positive and ignored.
//  * Break — configurable policy at the detecting switch: kDropOne drops
//    the single next-up packet of the deadlocked egress (repeats on each
//    detection until the cycle unwinds); kBypass force-opens the paused
//    gate until the downstream's next refresh re-closes it, trading
//    possible lossless violations for zero packet loss.
//
// Detection latency is now - the origin entry's timestamp: the time from
// the first PAUSE of the chain to the trigger's round trip home.
#pragma once

#include <array>
#include <vector>

#include "flowctl/pfc.hpp"
#include "runner/config.hpp"

namespace gfc::mech {

struct DcfitConfig {
  flowctl::PfcConfig pfc;
  runner::DcfitBreak break_policy = runner::DcfitBreak::kDropOne;
  /// Trigger-refresh period (re-send cadence of outstanding pauses).
  sim::TimePs trigger_period = sim::us(20);
};

class DcfitModule final : public flowctl::PfcModule {
 public:
  explicit DcfitModule(const DcfitConfig& cfg)
      : PfcModule(cfg.pfc), dcfg_(cfg) {}

  const char* name() const override { return "DCFIT"; }

  // --- per-module counters (aggregated into RunSummary) -------------------
  int detections() const { return detections_; }
  int false_positives() const { return false_positives_; }
  std::uint64_t packets_sacrificed() const { return packets_sacrificed_; }
  int bypasses() const { return bypasses_; }
  /// Latency of the first confirmed detection (origin pause -> trigger
  /// return), -1 if none.
  sim::TimePs first_detection_latency() const { return first_latency_; }
  /// Absolute time of the most recent break action, -1 if none.
  sim::TimePs last_break_at() const { return last_break_at_; }

 protected:
  void on_attach() override;
  void decorate_pause(net::Packet& frame, int port, int prio) override;
  void on_pause_state(int port, int prio, bool pause) override;
  void on_pause_rx(int port, const net::Packet& pkt) override;
  void on_resume_rx(int port, const net::Packet& pkt) override;

 private:
  /// Trigger this node originated when pausing ingress (port, prio).
  struct OriginState {
    bool active = false;
    std::uint64_t seq = 0;
    sim::TimePs originated_at = 0;
  };
  /// Trigger recorded from the downstream's last PAUSE of egress
  /// (port, prio); origin == kInvalidNode when none.
  struct IncomingTrigger {
    net::NodeId origin = net::kInvalidNode;
    std::uint64_t seq = 0;
  };

  /// Every this-many trigger refreshes of one outstanding pause, skip the
  /// propagate step and originate fresh — the liveness backstop against
  /// cycles saturated with stale (dead-origin) triggers.
  static constexpr std::uint8_t kReoriginateEvery = 64;

  /// The trigger a PAUSE of ingress (port, prio) should carry *now*:
  /// propagate the paused-egress trigger the ingress's head packets wait
  /// on (when allowed), else (re-)originate. Writes the choice into
  /// `frame`.
  void attach_trigger(net::Packet& frame, int port, int prio,
                      bool allow_propagate = true);
  /// True when `seq` is a trigger this node originated and whose pause is
  /// still standing.
  bool origin_seq_live(int prio, std::uint64_t seq) const;
  void arm_trigger_refresh(int port, int prio);
  void break_deadlock(int egress, int prio);

  DcfitConfig dcfg_;
  std::vector<std::array<OriginState, net::kNumPriorities>> origin_;
  std::vector<std::array<IncomingTrigger, net::kNumPriorities>> incoming_;
  std::vector<std::array<sim::EventId, net::kNumPriorities>> refresh_;
  std::vector<std::array<std::uint8_t, net::kNumPriorities>> refresh_count_;
  std::uint64_t next_seq_ = 0;
  std::vector<int> head_targets_;  // scratch for attach_trigger

  int detections_ = 0;
  int false_positives_ = 0;
  std::uint64_t packets_sacrificed_ = 0;
  int bypasses_ = 0;
  sim::TimePs first_latency_ = -1;
  sim::TimePs last_break_at_ = -1;
};

/// Network-wide DCFIT accounting, summed over every attached DcfitModule
/// (all-zero when the fabric runs another mechanism).
struct DcfitTotals {
  int detections = 0;
  int false_positives = 0;
  std::uint64_t packets_sacrificed = 0;
  int bypasses = 0;
  sim::TimePs first_detection_latency = -1;  // min over modules
  sim::TimePs last_break_at = -1;            // max over modules
};
DcfitTotals collect_dcfit(net::Network& net);

}  // namespace gfc::mech
