#include "mech/registry.hpp"

namespace gfc::mech {

using runner::DcfitBreak;
using runner::FcKind;
using runner::FcSetup;

const std::vector<MechSpec>& all_mechanisms() {
  static const std::vector<MechSpec> kMechs = [] {
    std::vector<MechSpec> m;
    m.push_back({"PFC", FcKind::kPfc});
    m.push_back({"PFC+expiry", FcKind::kPfc, /*heal=*/true});
    m.push_back({"CBFC", FcKind::kCbfc});
    m.push_back({"CBFC+sync", FcKind::kCbfc, /*heal=*/true});
    m.push_back({"GFC-buffer", FcKind::kGfcBuffer});
    m.push_back({"GFC-time", FcKind::kGfcTime});
    m.push_back({"GFC-conceptual", FcKind::kGfcConceptual});
    m.push_back({"DCFIT-drop", FcKind::kDcfit, false, DcfitBreak::kDropOne});
    m.push_back({"DCFIT-bypass", FcKind::kDcfit, false, DcfitBreak::kBypass});
    MechSpec updown{"CBD-routing", FcKind::kPfc};
    updown.cbd_free_routing = true;
    m.push_back(updown);
    return m;
  }();
  return kMechs;
}

const MechSpec* find_mechanism(std::string_view name) {
  for (const MechSpec& m : all_mechanisms())
    if (m.name == name) return &m;
  return nullptr;
}

std::optional<FcSetup> setup_for(const MechSpec& spec, std::int64_t buffer,
                                 sim::Rate c, sim::TimePs tau,
                                 std::int64_t mtu) {
  std::optional<FcSetup> fc = FcSetup::try_derive(spec.kind, buffer, c, tau, mtu);
  if (!fc) return std::nullopt;
  if (spec.heal) {
    // Pause expiry well above the refresh the pauser sends every timeout/2,
    // so a healthy run never expires early; credit re-sync every ~2 periods
    // (the fault studies' healing configuration).
    fc->pfc_pause_timeout = sim::us(50);
    fc->cbfc_sync_period = sim::us(100);
  }
  fc->dcfit_break = spec.dcfit_break;
  fc->cbd_free_routing = spec.cbd_free_routing;
  return fc;
}

net::PacketType unblock_frame(FcKind kind) {
  switch (kind) {
    case FcKind::kPfc:
    case FcKind::kDcfit: return net::PacketType::kPfcResume;
    case FcKind::kCbfc: return net::PacketType::kCredit;
    case FcKind::kGfcBuffer: return net::PacketType::kGfcStage;
    default: return net::PacketType::kGfcQueue;  // time-based GFC
  }
}

std::string summary_label(const FcSetup& fc) {
  switch (fc.kind) {
    case FcKind::kNone: return "none";
    case FcKind::kPfc:
      if (fc.cbd_free_routing) return "CBD-routing";
      return fc.pfc_pause_timeout > 0 ? "PFC+expiry" : "PFC";
    case FcKind::kCbfc:
      return fc.cbfc_sync_period > 0 ? "CBFC+sync" : "CBFC";
    case FcKind::kGfcBuffer: return "GFC-buffer";
    case FcKind::kGfcTime: return "GFC-time";
    case FcKind::kGfcConceptual: return "GFC-conceptual";
    case FcKind::kDcfit:
      return fc.dcfit_break == DcfitBreak::kDropOne ? "DCFIT-drop"
                                                    : "DCFIT-bypass";
  }
  return "?";
}

}  // namespace gfc::mech
