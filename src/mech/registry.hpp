// The mechanism registry: every deadlock-handling baseline the benches
// compare, by name, in one deterministic list — the rows of the
// mechanism x scenario matrix (bench/fault_sweep group "matrix",
// bench/table1_deadlock_cases).
//
// Three strategy families, all behind the same runner::FcSetup seam:
//   prevention  — GFC variants and CBFC (the paper's subject and its
//                 credit-based ancestor): deadlock cannot form.
//   detection   — DCFIT (src/mech/dcfit.*): classic PFC, deadlocks form
//                 and are detected in-band and broken.
//   avoidance   — CBD-free up*/down* routing (src/mech/cbd_routing.*):
//                 classic PFC on a route-restricted fabric with no cyclic
//                 buffer dependency to wedge.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "runner/config.hpp"

namespace gfc::mech {

struct MechSpec {
  std::string name;  // stable CLI / JSON / report identifier
  runner::FcKind kind = runner::FcKind::kNone;
  /// Self-healing knobs on (PFC pause expiry / CBFC credit re-sync), as in
  /// the fault studies.
  bool heal = false;
  runner::DcfitBreak dcfit_break = runner::DcfitBreak::kDropOne;
  /// Replace the scenario routing with mech::cbd_free_routes.
  bool cbd_free_routing = false;
};

/// Every registered mechanism, in the fixed matrix row order:
/// PFC, PFC+expiry, CBFC, CBFC+sync, GFC-buffer, GFC-time, GFC-conceptual,
/// DCFIT-drop, DCFIT-bypass, CBD-routing.
const std::vector<MechSpec>& all_mechanisms();

/// Registry lookup by name; nullptr when unknown.
const MechSpec* find_mechanism(std::string_view name);

/// The spec realized as a paper-compliant FcSetup for this buffer / rate /
/// tau (FcSetup::try_derive plus the spec's heal / break / routing knobs);
/// nullopt when the buffer is too small for the spec's safety bound.
std::optional<runner::FcSetup> setup_for(const MechSpec& spec,
                                         std::int64_t buffer, sim::Rate c,
                                         sim::TimePs tau,
                                         std::int64_t mtu = 1500);

/// The control-frame type whose loss wedges this mechanism (the fault
/// studies' injection target).
net::PacketType unblock_frame(runner::FcKind kind);

/// The registry name a realized setup corresponds to — the inverse of
/// setup_for, used to label RunSummary rows and to round-trip-test the
/// registry.
std::string summary_label(const runner::FcSetup& fc);

}  // namespace gfc::mech
