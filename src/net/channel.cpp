#include "net/channel.hpp"

#include "net/fault_hook.hpp"
#include "net/network.hpp"
#include "net/node.hpp"

namespace gfc::net {

Channel::Channel(Network& net, Node& dst, int dst_port, sim::TimePs prop_delay)
    : net_(net), dst_(dst), dst_port_(dst_port), prop_delay_(prop_delay) {}

void Channel::propagate(Packet* pkt, sim::TimePs delay) {
  net_.sched().schedule_in(delay, [this, pkt] {
    // Arrival-time check: a link that went down mid-propagation loses the
    // frame (both PHYs are gone; there is no store-and-forward on a wire).
    if (!up_) {
      ++net_.counters().wire_lost_packets;
      net_.trace_event(trace::EventType::kWireLost, dst_.id(), dst_port_,
                       pkt->priority, pkt->id, pkt->size_bytes);
      net_.free_packet(pkt);
      return;
    }
    dst_.receive(pkt, dst_port_);
  });
}

void Channel::deliver(Packet* pkt) {
  if (pkt->is_control()) {
    if (ControlFaultHook* hook = net_.fault_hook()) {
      const ControlFaultHook::Verdict v = hook->on_control_frame(*pkt);
      switch (v.action) {
        case ControlFaultHook::Action::kDrop:
          net_.free_packet(pkt);
          return;
        case ControlFaultHook::Action::kDuplicate:
          propagate(net_.clone_control(*pkt), prop_delay_);
          break;  // the original still propagates normally
        case ControlFaultHook::Action::kDelay:
          propagate(pkt, prop_delay_ + v.extra_delay);
          return;
        case ControlFaultHook::Action::kDeliver:
          break;
      }
    }
  }
  propagate(pkt, prop_delay_);
}

}  // namespace gfc::net
