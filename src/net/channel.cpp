#include "net/channel.hpp"

#include "net/network.hpp"
#include "net/node.hpp"

namespace gfc::net {

Channel::Channel(Network& net, Node& dst, int dst_port, sim::TimePs prop_delay)
    : net_(net), dst_(dst), dst_port_(dst_port), prop_delay_(prop_delay) {}

void Channel::deliver(Packet* pkt) {
  net_.sched().schedule_in(prop_delay_,
                           [this, pkt] { dst_.receive(pkt, dst_port_); });
}

}  // namespace gfc::net
