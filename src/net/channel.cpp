#include "net/channel.hpp"

#include "net/fault_hook.hpp"
#include "net/network.hpp"
#include "net/node.hpp"

namespace gfc::net {

Channel::Channel(Network& net, Node& dst, int dst_port, sim::TimePs prop_delay)
    : net_(net), dst_(dst), dst_port_(dst_port), prop_delay_(prop_delay) {}

void Channel::flight_arrival() {
  Packet* pkt = flight_.front();
  flight_.pop_front();
  // Arrival-time check: a link that went down mid-propagation loses the
  // frame (both PHYs are gone; there is no store-and-forward on a wire).
  if (!up_) {
    ++net_.counters().wire_lost_packets;
    net_.trace_event(trace::EventType::kWireLost, dst_.id(), dst_port_,
                     pkt->priority, pkt->id, pkt->size_bytes);
    net_.free_packet(pkt);
    return;
  }
  dst_.receive(pkt, dst_port_);
}

void Channel::propagate(Packet* pkt, sim::TimePs delay) {
  if (delay == prop_delay_) {
    // Fixed-delay fast path: the packet rides the wire FIFO and the shared
    // multishot timer. fire_at takes its sequence number right here, where
    // schedule_in took it, so arrival order is byte-identical.
    if (!flight_timer_.valid())
      flight_timer_ = net_.sched().register_multishot([this] { flight_arrival(); });
    flight_.push_back(pkt);
    net_.sched().fire_at(flight_timer_, net_.sched().now() + delay);
    return;
  }
  net_.sched().schedule_in(delay, [this, pkt] {
    if (!up_) {
      ++net_.counters().wire_lost_packets;
      net_.trace_event(trace::EventType::kWireLost, dst_.id(), dst_port_,
                       pkt->priority, pkt->id, pkt->size_bytes);
      net_.free_packet(pkt);
      return;
    }
    dst_.receive(pkt, dst_port_);
  });
}

void Channel::deliver(Packet* pkt) {
  if (pkt->is_control()) {
    if (ControlFaultHook* hook = net_.fault_hook()) {
      const ControlFaultHook::Verdict v = hook->on_control_frame(*pkt);
      switch (v.action) {
        case ControlFaultHook::Action::kDrop:
          net_.free_packet(pkt);
          return;
        case ControlFaultHook::Action::kDuplicate:
          propagate(net_.clone_control(*pkt), prop_delay_);
          break;  // the original still propagates normally
        case ControlFaultHook::Action::kDelay:
          propagate(pkt, prop_delay_ + v.extra_delay);
          return;
        case ControlFaultHook::Action::kDeliver:
          break;
      }
    }
  }
  propagate(pkt, prop_delay_);
}

}  // namespace gfc::net
