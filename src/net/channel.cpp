#include "net/channel.hpp"

#include "net/fault_hook.hpp"
#include "net/network.hpp"
#include "net/node.hpp"

namespace gfc::net {

Channel::Channel(Network& net, Node& dst, int dst_port, sim::TimePs prop_delay)
    : net_(net),
      dst_(dst),
      dst_port_(dst_port),
      prop_delay_(prop_delay),
      final_hop_(!dst.is_switch()) {}

void Channel::ensure_flight_timer() {
  if (!flight_timer_.valid())
    flight_timer_ =
        dst_.sched_ref().register_multishot([this] { flight_arrival(); });
}

void Channel::flight_arrival() {
  Packet* pkt = flight_.front();
  flight_.pop_front();
  // Arrival-time check: a link that went down mid-propagation loses the
  // frame (both PHYs are gone; there is no store-and-forward on a wire).
  if (!up_) {
    ++net_.counters().wire_lost_packets;
    net_.trace_event(trace::EventType::kWireLost, dst_.id(), dst_port_,
                     pkt->priority, pkt->id, pkt->size_bytes);
    net_.free_packet(pkt);
    return;
  }
  dst_.receive(pkt, dst_port_);
}

void Channel::propagate(Packet* pkt, sim::TimePs delay) {
  if (delay == prop_delay_) {
    ShardContext* c = shard_ctx();
    if (c != nullptr) {
      par_propagate(pkt, *c);
      return;
    }
    // Fixed-delay fast path: the packet rides the wire FIFO and the shared
    // multishot timer. fire_at takes its sequence number right here, where
    // schedule_in took it, so arrival order is byte-identical.
    ensure_flight_timer();
    flight_.push_back(pkt);
    sim::Scheduler& sched = dst_.sched_ref();
    sched.fire_at(flight_timer_, sched.now() + delay);
    return;
  }
  net_.sched().schedule_in(delay, [this, pkt] {
    if (!up_) {
      ++net_.counters().wire_lost_packets;
      net_.trace_event(trace::EventType::kWireLost, dst_.id(), dst_port_,
                       pkt->priority, pkt->id, pkt->size_bytes);
      net_.free_packet(pkt);
      return;
    }
    dst_.receive(pkt, dst_port_);
  });
}

void Channel::par_propagate(Packet* pkt, ShardContext& c) {
  sim::Scheduler& dsched = dst_.sched_ref();
  const sim::TimePs t_arr = c.sched->now() + prop_delay_;
  std::uint64_t g_direct = 0;
  if (c.log == nullptr) {
    // Direct (coordinator boundary) mode: single-threaded, the fire_at
    // draws the next true global sequence number — remember it for the
    // split hook below.
    g_direct = c.gseq != nullptr ? *c.gseq : 0;
    flight_.push_back(pkt);
    dsched.fire_at(flight_timer_, t_arr);
  } else if (&dsched == c.sched) {
    // Same-shard wire. The window is at most tau = min prop delay wide, so
    // t_arr lands at/after the window end and fire_at logs a deferred
    // record; the packet joins the wire FIFO directly.
    flight_.push_back(pkt);
    dsched.fire_at(flight_timer_, t_arr);
  } else {
    // Cross-shard wire: the destination scheduler belongs to another
    // worker. Stage the packet (the coordinator splices it into flight_ at
    // the barrier, in log-replay order) and log a foreign deferred fire_at.
    // Reading the multishot timer's generation from this thread is safe:
    // it never changes while the timer stays registered.
    staged_.push_back(pkt);
    sim::WinRecord r;
    r.kind = sim::WinRecord::kCall;
    r.flags = sim::WinRecord::kDeferred | sim::WinRecord::kForeignLive;
    r.slot = flight_timer_.value - 1;
    r.gen = dsched.timer_gen(flight_timer_);
    r.t = t_arr;
    r.target = &dsched;
    c.log->recs.push_back(r);
  }
  // Completion-split prediction. The final hop is lossless and FIFO, so
  // the arrival whose cumulative bytes reach size_bytes is exactly the
  // delivery that completes the flow. Completions touch global state
  // (workload relaunch, FCT stats), so the coordinator must execute that
  // arrival as a boundary step — mark the logged fire (window mode) or
  // hand the key to the agenda hook (direct mode).
  if (final_hop_ && pkt->type == PacketType::kData && pkt->flow >= 0) {
    Flow& f = net_.flow(pkt->flow);
    if (!f.unbounded()) {
      f.par_wire_bytes += pkt->size_bytes;
      if (f.par_wire_bytes >= f.size_bytes) {
        if (c.log != nullptr)
          c.log->recs.back().flags |= sim::WinRecord::kSplit;
        else if (c.on_split != nullptr)
          c.on_split(c.split_env, t_arr, g_direct);
      }
    }
  }
}

void Channel::deliver(Packet* pkt) {
  if (pkt->is_control()) {
    if (ControlFaultHook* hook = net_.fault_hook()) {
      const ControlFaultHook::Verdict v = hook->on_control_frame(*pkt);
      switch (v.action) {
        case ControlFaultHook::Action::kDrop:
          net_.free_packet(pkt);
          return;
        case ControlFaultHook::Action::kDuplicate:
          propagate(net_.clone_control(*pkt), prop_delay_);
          break;  // the original still propagates normally
        case ControlFaultHook::Action::kDelay:
          propagate(pkt, prop_delay_ + v.extra_delay);
          return;
        case ControlFaultHook::Action::kDeliver:
          break;
      }
    }
  }
  propagate(pkt, prop_delay_);
}

}  // namespace gfc::net
