// Unidirectional wire: fixed propagation delay to a (node, port) endpoint.
// Serialization happens at the egress port; the channel only delays
// delivery, so any number of packets may be "on the wire" at once.
//
// The channel is also where runtime faults live: link-control frames are
// offered to the Network's ControlFaultHook (drop / duplicate / delay) as
// they enter the wire, and a downed channel loses whatever is in flight
// when the propagation delay elapses — exactly the failure mode that makes
// edge-triggered protocols (PFC) lose XOFF/XON state.
#pragma once

#include <deque>
#include <vector>

#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace gfc::net {

class Node;
class Network;
struct ShardContext;

class Channel {
 public:
  Channel(Network& net, Node& dst, int dst_port, sim::TimePs prop_delay);

  /// Hand over a fully transmitted packet; it arrives after prop_delay
  /// (subject to fault injection for link-control frames).
  void deliver(Packet* pkt);

  /// Link state. Packets already propagating when the link goes down are
  /// lost at their arrival instant (counted in Counters::wire_lost_packets).
  void set_up(bool up) { up_ = up; }
  bool up() const { return up_; }

  sim::TimePs prop_delay() const { return prop_delay_; }
  Node& dst() { return dst_; }
  int dst_port() const { return dst_port_; }

  // --- sharded-core plumbing (src/par) -------------------------------------
  /// Register the flight timer on the destination's (shard) scheduler up
  /// front, so cross-shard sends never register on a foreign scheduler from
  /// a worker thread. Idempotent; the single-threaded engine keeps the lazy
  /// registration in propagate().
  void ensure_flight_timer();
  /// Move packets staged by cross-shard window sends into the wire FIFO.
  /// Called at the barrier only (single-threaded), in any channel order:
  /// per-channel arrival keys are FIFO, so appending staged packets in the
  /// order the source shard sent them matches the merged fire order.
  void splice_staged() {
    for (Packet* p : staged_) flight_.push_back(p);
    staged_.clear();
  }

 private:
  void propagate(Packet* pkt, sim::TimePs delay);
  void par_propagate(Packet* pkt, ShardContext& c);
  void flight_arrival();

  Network& net_;
  Node& dst_;
  int dst_port_;
  sim::TimePs prop_delay_;
  bool up_ = true;
  /// Destination is a host NIC: the wire is a flow's final hop, where the
  /// sharded core predicts completions (see Flow::par_wire_bytes).
  bool final_hop_ = false;
  // Fixed-delay wire FIFO: arrivals fire in send order (constant delay,
  // monotonic clock), so one multishot timer pops this queue head per
  // firing instead of each packet carrying its own one-shot closure.
  // Fault-delayed frames break FIFO and keep the one-shot path.
  std::deque<Packet*> flight_;
  /// Cross-shard sends staged during a window (single writer: the source
  /// shard; spliced into flight_ at the barrier by the coordinator).
  std::vector<Packet*> staged_;
  sim::TimerId flight_timer_{};
};

}  // namespace gfc::net
