// Unidirectional wire: fixed propagation delay to a (node, port) endpoint.
// Serialization happens at the egress port; the channel only delays
// delivery, so any number of packets may be "on the wire" at once.
#pragma once

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace gfc::net {

class Node;
class Network;

class Channel {
 public:
  Channel(Network& net, Node& dst, int dst_port, sim::TimePs prop_delay);

  /// Hand over a fully transmitted packet; it arrives after prop_delay.
  void deliver(Packet* pkt);

  sim::TimePs prop_delay() const { return prop_delay_; }
  Node& dst() { return dst_; }
  int dst_port() const { return dst_port_; }

 private:
  Network& net_;
  Node& dst_;
  int dst_port_;
  sim::TimePs prop_delay_;
};

}  // namespace gfc::net
