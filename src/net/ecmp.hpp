// ECMP next-hop selection hash, shared by the switch data path and the
// offline CBD analyzer so both see identical paths for a given flow salt.
#pragma once

#include <cstdint>

namespace gfc::net {

inline std::uint64_t ecmp_hash(std::uint64_t salt, std::int32_t switch_id) {
  std::uint64_t h = salt;
  h ^= static_cast<std::uint64_t>(switch_id) * 0x9E3779B97F4A7C15ull;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h;
}

inline std::size_t ecmp_select(std::uint64_t salt, std::int32_t switch_id,
                               std::size_t n_choices) {
  const std::uint64_t h = ecmp_hash(salt, switch_id);
  // Fan-outs are powers of two in the regular topologies; mask instead of
  // dividing there (identical residue for pow2 moduli). All shipped
  // topologies take this branch, so goldens are pinned to it.
  if ((n_choices & (n_choices - 1)) == 0)
    return static_cast<std::size_t>(h & (n_choices - 1));
  // Irregular fan-outs: Lemire multiply-shift maps the hash onto
  // [0, n_choices) with bias bounded by n/2^64 — `h % n` keeps the low
  // bits' modulo bias and costs a 64-bit divide on the data path.
  return static_cast<std::size_t>(
      (static_cast<unsigned __int128>(h) * n_choices) >> 64);
}

}  // namespace gfc::net
