// Hook point for runtime fault injection on link-control frames.
//
// The channel consults the installed hook once per link-control frame at
// the wire hand-off (transmission complete, before propagation). Data
// packets are never consulted: the lossless fabrics under study drop
// control frames (tiny, unacknowledged, fate-shared with a flapping link)
// long before they corrupt data, and keeping data untouched preserves the
// lossless-violation accounting. With no hook installed the path is a
// single null check — baseline runs are bit-for-bit unchanged.
#pragma once

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace gfc::net {

class ControlFaultHook {
 public:
  enum class Action : std::uint8_t {
    kDeliver,    // forward unharmed
    kDrop,       // lose the frame on the wire
    kDuplicate,  // deliver twice (original + clone)
    kDelay,      // deliver after prop_delay + extra_delay
  };
  struct Verdict {
    Action action = Action::kDeliver;
    sim::TimePs extra_delay = 0;  // only read for kDelay
  };

  virtual ~ControlFaultHook() = default;

  /// Decide the fate of one link-control frame entering the wire.
  virtual Verdict on_control_frame(const Packet& pkt) = 0;
};

}  // namespace gfc::net
