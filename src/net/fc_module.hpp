// Interfaces connecting the network substrate to pluggable flow-control
// (PFC / CBFC / GFC variants) and congestion-control (DCQCN) mechanisms.
//
// A flow-control mechanism has two halves, mirroring the paper:
//   * downstream half ("Message Generator"): watches ingress occupancy of a
//     node's ports and emits control frames upstream;
//   * upstream half ("Rate Adjuster" + "Rate Limiter"): reacts to control
//     frames by gating the matching egress port.
// One FcModule instance is attached per node and implements both halves for
// that node's ports.
#pragma once

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace gfc::net {

class Node;
class HostNode;
struct Flow;

class FcModule {
 public:
  virtual ~FcModule() = default;

  /// Install egress gates / timers on the node. Called once after all the
  /// node's links are connected.
  virtual void attach(Node& node) = 0;

  /// Downstream half: a data packet was charged to (`port`, `prio`) ingress
  /// accounting (switches only).
  virtual void on_ingress_enqueue(int port, int prio, const Packet& pkt) = 0;

  /// Downstream half: a data packet departed and was released from
  /// (`port`, `prio`) ingress accounting.
  virtual void on_ingress_dequeue(int port, int prio, const Packet& pkt) = 0;

  /// Upstream half: a link-control frame arrived on `port`.
  virtual void on_control(int port, const Packet& pkt) = 0;

  virtual const char* name() const = 0;

 protected:
  FcModule() = default;
};

/// End-to-end congestion control (one instance per network; per-flow state
/// lives inside the module).
class CcModule {
 public:
  virtual ~CcModule() = default;

  virtual void on_flow_start(Flow&) {}
  /// Sender-side hook: a data packet of `flow` left the source NIC.
  virtual void on_data_sent(HostNode&, Flow&, const Packet&) {}
  /// Receiver-side hook: a data packet of `flow` arrived at host `rx`.
  virtual void on_data_received(HostNode&, Flow&, const Packet&) {}
  /// Sender-side hook: a CNP for `flow` arrived back at the source.
  virtual void on_cnp(HostNode&, Flow&, const Packet&) {}

  virtual const char* name() const = 0;
};

}  // namespace gfc::net
