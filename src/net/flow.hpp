// Flow descriptor shared by hosts, workload generators, congestion control
// and statistics. The network is lossless and delivers in order, so flow
// completion is simply "destination received size_bytes".
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace gfc::net {

struct Flow {
  FlowId id = kInvalidFlow;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint8_t priority = 0;

  /// Total bytes to transfer; kUnbounded for permanent flows used in
  /// deadlock scenarios.
  static constexpr std::int64_t kUnbounded = -1;
  std::int64_t size_bytes = kUnbounded;

  sim::TimePs start_time = 0;
  sim::TimePs finish_time = -1;

  /// Sender-side pacing rate (line rate unless congestion control lowers
  /// it). This is the "DCQCN rate" knob in the paper's Figure 20.
  sim::Rate send_rate{0};  // 0 = unlimited (host NIC line rate)

  /// ECMP salt: switches hash this to pick among equal-cost next hops.
  std::uint64_t path_salt = 0;

  // Progress.
  std::int64_t bytes_enqueued = 0;   // handed to the sender NIC
  std::int64_t bytes_delivered = 0;  // arrived at the destination

  /// Sharded-core bookkeeping (src/par): bytes that have entered the final
  /// wire hop toward dst. The final hop is lossless FIFO, so the arrival
  /// whose bytes reach size_bytes is the delivery that completes the flow —
  /// the coordinator runs that arrival as a boundary step.
  std::int64_t par_wire_bytes = 0;

  bool unbounded() const { return size_bytes == kUnbounded; }
  bool sender_done() const { return !unbounded() && bytes_enqueued >= size_bytes; }
  bool completed() const { return !unbounded() && bytes_delivered >= size_bytes; }
};

}  // namespace gfc::net
