#include "net/host.hpp"

#include <algorithm>
#include <cassert>

#include "net/network.hpp"
#include "sim/logger.hpp"

namespace gfc::net {

HostNode::HostNode(Network& net, NodeId id, std::string name)
    : Node(net, id, std::move(name)) {}

HostNode::SenderFlow* HostNode::find_sender(FlowId id, std::size_t* idx) {
  for (std::size_t i = 0; i < sending_.size(); ++i) {
    if (sending_[i].id == id) {
      if (idx != nullptr) *idx = i;
      return &sending_[i];
    }
  }
  return nullptr;
}

void HostNode::drop_sender(std::size_t idx) {
  if (sending_[idx].timer.valid()) sched_ref().cancel(sending_[idx].timer);
  sending_.erase(sending_.begin() + static_cast<std::ptrdiff_t>(idx));
}

void HostNode::start_flow(FlowId id) {
  Flow& flow = network().flow(id);
  assert(flow.src == this->id());
  assert(find_sender(id) == nullptr && "flow already active");
  sending_.push_back(SenderFlow{id, false, {}});
  network().trace_event(trace::EventType::kFlowStart, this->id(), -1,
                        flow.priority, static_cast<std::uint64_t>(id),
                        flow.size_bytes);
  if (network().cc()) network().cc()->on_flow_start(flow);
  stage_next(sending_.size() - 1);
}

void HostNode::stage_next(std::size_t idx) {
  SenderFlow& sf = sending_[idx];
  sf.timer = {};
  Flow& flow = network().flow(sf.id);
  if (flow.sender_done()) {
    if (!sf.staged) drop_sender(idx);
    return;
  }
  const std::int64_t remaining =
      flow.unbounded() ? mtu_ : flow.size_bytes - flow.bytes_enqueued;
  const std::int64_t len = std::min<std::int64_t>(mtu_, remaining);
  Packet* pkt = network().pool().acquire();
  pkt->type = PacketType::kData;
  pkt->priority = flow.priority;
  pkt->size_bytes = len;
  pkt->src = flow.src;
  pkt->dst = flow.dst;
  pkt->flow = flow.id;
  pkt->path_salt = flow.path_salt;
  pkt->created_at = sched_ref().now();
  flow.bytes_enqueued += len;
  sf.staged = true;
  port(uplink_port()).enqueue(pkt);
}

void HostNode::on_departure(Packet& pkt, int /*out_port*/) {
  if (pkt.flow == kInvalidFlow || pkt.type != PacketType::kData) return;
  std::size_t idx = 0;
  SenderFlow* sf = find_sender(pkt.flow, &idx);
  if (sf == nullptr) return;
  if (pkt.src != id()) return;
  sf->staged = false;
  Flow& flow = network().flow(pkt.flow);
  if (network().cc()) network().cc()->on_data_sent(*this, flow, pkt);
  if (flow.sender_done()) {
    drop_sender(idx);
    return;
  }
  // Pacing: space packet starts L/R apart. Transmission took L/C; wait the
  // complement before staging the next packet.
  sim::TimePs extra = 0;
  if (!flow.send_rate.is_zero() && flow.send_rate < port(uplink_port()).line_rate()) {
    extra = sim::tx_time(flow.send_rate, pkt.size_bytes) -
            sim::tx_time(port(uplink_port()).line_rate(), pkt.size_bytes);
  }
  if (extra <= 0) {
    stage_next(idx);
  } else {
    const FlowId fid = pkt.flow;
    sf->timer = sched_ref().schedule_in(extra, [this, fid] {
      std::size_t i = 0;
      if (find_sender(fid, &i) != nullptr) stage_next(i);
    });
  }
}

void HostNode::notify_rate_change(FlowId id) {
  // A rate increase while the pacing timer is armed should take effect
  // immediately; conservatively restage now (the NIC line rate still lower-
  // bounds packet spacing, and one early packet is within pacing slack).
  std::size_t idx = 0;
  SenderFlow* sf = find_sender(id, &idx);
  if (sf == nullptr || sf->staged || !sf->timer.valid()) return;
  sched_ref().cancel(sf->timer);
  sf->timer = {};
  stage_next(idx);
}

void HostNode::inject(Packet* pkt) { port(uplink_port()).enqueue(pkt); }

void HostNode::receive(Packet* pkt, int in_port) {
  if (pkt->is_control()) {
    deliver_control(pkt, in_port);
    return;
  }
  if (pkt->type == PacketType::kCnp) {
    Flow& flow = network().flow(pkt->flow);
    if (network().cc()) network().cc()->on_cnp(*this, flow, *pkt);
    network().free_packet(pkt);
    return;
  }
  assert(pkt->type == PacketType::kData);
  assert(pkt->dst == id() && "data packet delivered to wrong host");
  Flow& flow = network().flow(pkt->flow);
  flow.bytes_delivered += pkt->size_bytes;
  auto& counters = network().counters();
  ++counters.data_packets_delivered;
  counters.data_bytes_delivered += pkt->size_bytes;
  network().trace_event(trace::EventType::kDeliver, id(), in_port,
                        pkt->priority, static_cast<std::uint64_t>(pkt->flow),
                        pkt->size_bytes);
  network().notify_delivery(*pkt);
  if (network().cc()) network().cc()->on_data_received(*this, flow, *pkt);
  if (flow.completed() && flow.finish_time < 0) {
    flow.finish_time = sched_ref().now();
    ++counters.flows_completed;
    network().trace_event(trace::EventType::kFlowComplete, id(), -1,
                          flow.priority,
                          static_cast<std::uint64_t>(flow.id),
                          flow.bytes_delivered);
    network().notify_completion(flow);
  }
  network().free_packet(pkt);
}

}  // namespace gfc::net
