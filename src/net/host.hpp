// Host: a NIC-attached traffic source/sink.
//
// Sending keeps at most one packet per active flow staged in the NIC egress
// queue; the next packet is staged when the previous one departs (plus any
// pacing delay demanded by the flow's send_rate — the DCQCN knob). The NIC
// egress port itself is gated by the link-level flow control exactly like a
// switch port, so PFC can pause a host and GFC can rate it.
#pragma once

#include <vector>

#include "net/flow.hpp"
#include "net/node.hpp"

namespace gfc::net {

class HostNode final : public Node {
 public:
  HostNode(Network& net, NodeId id, std::string name);

  bool is_switch() const override { return false; }
  void receive(Packet* pkt, int in_port) override;
  void on_departure(Packet& pkt, int out_port) override;

  /// Begin transmitting a registered flow (source must be this host).
  void start_flow(FlowId id);

  /// Congestion control changed flow.send_rate; pacing re-evaluates on the
  /// next departure, or immediately if the flow is waiting on its timer.
  void notify_rate_change(FlowId id);

  /// Inject a pre-built routable packet (e.g. a CNP) into the NIC.
  void inject(Packet* pkt);

  int uplink_port() const { return 0; }

  void set_mtu(std::int64_t mtu) { mtu_ = mtu; }
  std::int64_t mtu() const { return mtu_; }

  std::size_t active_sender_flows() const { return sending_.size(); }

 private:
  struct SenderFlow {
    FlowId id = kInvalidFlow;
    bool staged = false;      // one packet currently in the NIC queue
    sim::EventId timer{};     // pending pacing timer
  };

  void stage_next(std::size_t idx);
  SenderFlow* find_sender(FlowId id, std::size_t* idx = nullptr);
  void drop_sender(std::size_t idx);

  std::vector<SenderFlow> sending_;
  std::int64_t mtu_ = 1500;
};

}  // namespace gfc::net
