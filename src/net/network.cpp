#include "net/network.hpp"

#include <cassert>

namespace gfc::net {

Network::Network() = default;
Network::~Network() = default;

template <typename NodeT, typename... Args>
NodeT& Network::emplace_node(Args&&... args) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto node = std::make_unique<NodeT>(*this, id, std::forward<Args>(args)...);
  NodeT& ref = *node;
  nodes_.push_back(std::move(node));
  return ref;
}

SwitchNode& Network::add_switch(std::string name, std::int64_t buffer) {
  return emplace_node<SwitchNode>(std::move(name), buffer);
}

HostNode& Network::add_host(std::string name) {
  return emplace_node<HostNode>(std::move(name));
}

HostNode* Network::host(NodeId id) {
  return dynamic_cast<HostNode*>(nodes_[static_cast<std::size_t>(id)].get());
}

SwitchNode* Network::sw(NodeId id) {
  return dynamic_cast<SwitchNode*>(nodes_[static_cast<std::size_t>(id)].get());
}

std::pair<int, int> Network::connect(NodeId a, NodeId b, sim::Rate rate,
                                     sim::TimePs prop_delay) {
  Node& na = node(a);
  Node& nb = node(b);
  const int pa = na.add_port(rate);
  const int pb = nb.add_port(rate);
  channels_.push_back(std::make_unique<Channel>(*this, nb, pb, prop_delay));
  na.port(pa).connect(channels_.back().get());
  channels_.push_back(std::make_unique<Channel>(*this, na, pa, prop_delay));
  nb.port(pb).connect(channels_.back().get());
  na.peers_[static_cast<std::size_t>(pa)] = Node::Peer{b, pb};
  nb.peers_[static_cast<std::size_t>(pb)] = Node::Peer{a, pa};
  return {pa, pb};
}

int Network::find_port(NodeId from, NodeId to) const {
  const Node& n = node(from);
  for (int p = 0; p < n.port_count(); ++p)
    if (n.peer(p).node == to) return p;
  return -1;
}

void Network::set_link_state(NodeId a, NodeId b, bool up) {
  const int pa = find_port(a, b);
  assert(pa >= 0 && "set_link_state on non-adjacent nodes");
  const int pb = node(a).peer(pa).port;
  EgressPort& ea = node(a).port(pa);
  EgressPort& eb = node(b).port(pb);
  ea.set_link_up(up);
  eb.set_link_up(up);
  if (up) {
    ea.kick();
    eb.kick();
  }
}

void Network::reroute_stranded() {
  for (auto& n : nodes_)
    if (auto* s = dynamic_cast<SwitchNode*>(n.get())) s->reroute_stranded();
}

Packet* Network::clone_control(const Packet& src) {
  Packet* pkt = pool().acquire();
  pkt->type = src.type;
  pkt->priority = src.priority;
  pkt->size_bytes = src.size_bytes;
  pkt->src = src.src;
  pkt->dst = src.dst;
  pkt->fc_priority = src.fc_priority;
  pkt->fc_stage = src.fc_stage;
  pkt->fc_value = src.fc_value;
  pkt->fc_trigger_origin = src.fc_trigger_origin;
  pkt->fc_trigger_seq = src.fc_trigger_seq;
  pkt->created_at = src.created_at;
  return pkt;
}

Flow& Network::create_flow(NodeId src, NodeId dst, std::uint8_t priority,
                           std::int64_t size_bytes, sim::TimePs start_time) {
  assert(host(src) != nullptr && host(dst) != nullptr);
  Flow flow;
  flow.id = static_cast<FlowId>(flows_.size());
  flow.src = src;
  flow.dst = dst;
  flow.priority = priority;
  flow.size_bytes = size_bytes;
  flow.start_time = start_time;
  flow.path_salt = rng_.engine()();
  flows_.push_back(flow);
  const FlowId id = flow.id;
  if (start_time <= sched_.now()) {
    host(src)->start_flow(id);
  } else {
    sched_.schedule_at(start_time, [this, src, id] { host(src)->start_flow(id); });
  }
  return flows_.back();
}

void Network::notify_delivery(const Packet& pkt) {
  ShardContext* c = shard_ctx();
  if (c != nullptr && c->log != nullptr) {
    // Listener state is global; log the fields listeners consume and replay
    // the notification on the coordinator at the barrier, in merge order.
    sim::WinRecord r;
    r.kind = sim::WinRecord::kDelivery;
    r.flags = pkt.priority;
    r.slot = static_cast<std::uint32_t>(pkt.src);
    r.gen = static_cast<std::uint32_t>(pkt.dst);
    r.aux = static_cast<std::uint32_t>(pkt.size_bytes);
    r.t = c->sched->now();
    r.prov = static_cast<std::uint64_t>(pkt.flow);
    c->log->recs.push_back(r);
    return;
  }
  for (DeliveryListener* l : delivery_listeners_) l->on_delivery(pkt, sched_.now());
}

void Network::replay_delivery(const sim::WinRecord& r) {
  // The original Packet may already be freed and reused; listeners only read
  // the routing/size fields, so a synthesized packet carries the logged view.
  Packet tmp;
  tmp.type = PacketType::kData;
  tmp.priority = r.flags;
  tmp.size_bytes = static_cast<std::int64_t>(r.aux);
  tmp.src = static_cast<NodeId>(r.slot);
  tmp.dst = static_cast<NodeId>(r.gen);
  tmp.flow = static_cast<FlowId>(r.prov);
  for (DeliveryListener* l : delivery_listeners_) l->on_delivery(tmp, r.t);
}

void Network::stage_trace(ShardContext& c, trace::EventType type,
                          std::int32_t node, std::int32_t port,
                          std::int32_t prio, std::uint64_t id,
                          std::int64_t value) {
  if (!tracer_->enabled(trace::category_of(type))) return;
  trace::TraceEvent e;
  e.t = c.sched->now();
  e.value = value;
  e.id = id;
  e.node = node;
  e.port = static_cast<std::int16_t>(port);
  e.prio = static_cast<std::int8_t>(prio);
  e.type = static_cast<std::uint8_t>(type);
  sim::WinRecord r;
  r.kind = sim::WinRecord::kTrace;
  r.aux = static_cast<std::uint32_t>(c.trace_stage->size());
  c.trace_stage->push_back(e);
  c.log->recs.push_back(r);
}

void Network::notify_completion(Flow& flow) {
  // Completions must run on the coordinator between windows (the split
  // prediction in Channel::propagate guarantees it) — listeners relaunch
  // flows through the shared rng and the main scheduler.
  assert(shard_ctx() == nullptr || shard_ctx()->log == nullptr);
  for (auto& fn : completion_listeners_) fn(flow);
}

}  // namespace gfc::net
