// Network: owner of the scheduler, packet pool, nodes, channels, flows and
// the pluggable congestion-control module. The single place experiments
// talk to.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/channel.hpp"
#include "net/fc_module.hpp"
#include "net/flow.hpp"
#include "net/host.hpp"
#include "net/node.hpp"
#include "net/switch.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"

namespace gfc::net {

class ControlFaultHook;

/// Receives every data-packet delivery at any host (throughput samplers).
class DeliveryListener {
 public:
  virtual ~DeliveryListener() = default;
  virtual void on_delivery(const Packet& pkt, sim::TimePs now) = 0;
};

struct Counters {
  std::uint64_t lossless_violations = 0;  // ingress buffer exceeded capacity
  std::uint64_t route_drops = 0;          // unroutable packets (config bug)
  std::uint64_t data_packets_delivered = 0;
  std::int64_t data_bytes_delivered = 0;
  std::uint64_t control_frames_sent = 0;
  std::uint64_t flows_completed = 0;
  // Runtime-fault accounting (all zero unless faults are injected):
  std::uint64_t wire_lost_packets = 0;   // in flight when the link went down
  std::uint64_t failover_drops = 0;      // stranded on a dead egress, no route
};

/// Per-thread routing context for the sharded parallel core (src/par). A
/// worker executing one shard's window installs a context, and Network's
/// hot-path accessors (pool / counters / trace_event / notify_delivery)
/// route to shard-local replicas whose effects are merged deterministically
/// at the barrier; the coordinator installs a "direct" context (log ==
/// nullptr) that routes to the Network-owned instances but draws ids and
/// sequence numbers from the shared global counters. No context installed
/// (the default, and always on the single-threaded engine) means no routing
/// at all.
struct ShardContext {
  sim::Scheduler* sched = nullptr;  // shard scheduler (direct mode: main)
  PacketPool* pool = nullptr;
  Counters* counters = nullptr;
  sim::WindowLog* log = nullptr;    // non-null => window (parallel) mode
  std::vector<trace::TraceEvent>* trace_stage = nullptr;  // window staging
  std::uint64_t* gseq = nullptr;  // shared global event-sequence counter
  // Direct-mode completion-split hook (Channel::propagate -> par agenda).
  void (*on_split)(void* env, sim::TimePs t, std::uint64_t g) = nullptr;
  void* split_env = nullptr;
};

namespace detail {
inline thread_local ShardContext* t_shard_ctx = nullptr;
}  // namespace detail
inline ShardContext* shard_ctx() { return detail::t_shard_ctx; }
inline void set_shard_ctx(ShardContext* c) { detail::t_shard_ctx = c; }

/// Parallel-engine hook: when installed, Network::run_until hands the run
/// to the sharded coordinator instead of the single scheduler.
class ParHook {
 public:
  virtual ~ParHook() = default;
  virtual void run_until(sim::TimePs t_end) = 0;
  virtual std::uint64_t executed_events() const = 0;
  virtual std::uint64_t packets_created() const = 0;
};

class Network {
 public:
  Network();
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Scheduler& sched() { return sched_; }
  PacketPool& pool() {
    ShardContext* c = shard_ctx();
    return c != nullptr ? *c->pool : pool_;
  }
  sim::Rng& rng() { return rng_; }
  void reseed(std::uint64_t seed) { rng_ = sim::Rng(seed); }

  // --- construction -------------------------------------------------------
  SwitchNode& add_switch(std::string name, std::int64_t ingress_buffer_bytes);
  HostNode& add_host(std::string name);

  /// Wire a full-duplex link: creates one port on each node and a channel
  /// in each direction. Returns {port index on a, port index on b}.
  std::pair<int, int> connect(NodeId a, NodeId b, sim::Rate rate,
                              sim::TimePs prop_delay);

  /// First port on `from` whose peer is `to`; -1 when not adjacent.
  int find_port(NodeId from, NodeId to) const;

  /// Take the full-duplex a<->b link down or up at the current instant.
  /// Down: both directions stop accepting transmissions, packets already
  /// propagating are lost on arrival, and hold-and-wait probing ignores the
  /// dead ports (a failed link is not a flow-control wait). Up: both ports
  /// are kicked. Queued packets stay put; call reroute_stranded() after
  /// updating routing to move them.
  void set_link_state(NodeId a, NodeId b, bool up);

  /// Ask every switch to re-route packets queued behind dead egress ports
  /// (drops the unroutable ones into Counters::failover_drops).
  void reroute_stranded();

  Node& node(NodeId id) { return *nodes_[static_cast<std::size_t>(id)]; }
  const Node& node(NodeId id) const { return *nodes_[static_cast<std::size_t>(id)]; }
  std::size_t node_count() const { return nodes_.size(); }
  HostNode* host(NodeId id);
  SwitchNode* sw(NodeId id);

  // --- flows ---------------------------------------------------------------
  /// Register a flow; it starts automatically at `start_time`.
  Flow& create_flow(NodeId src, NodeId dst, std::uint8_t priority,
                    std::int64_t size_bytes, sim::TimePs start_time);
  Flow& flow(FlowId id) { return flows_[static_cast<std::size_t>(id)]; }
  const Flow& flow(FlowId id) const { return flows_[static_cast<std::size_t>(id)]; }
  std::size_t flow_count() const { return flows_.size(); }

  // --- modules -------------------------------------------------------------
  void set_cc(std::unique_ptr<CcModule> cc) { cc_ = std::move(cc); }
  CcModule* cc() { return cc_.get(); }

  /// Feedback processing latency t_r applied to every link-control frame on
  /// receipt (also absorbs testbed-style software padding of tau).
  void set_control_delay(sim::TimePs d) { control_delay_ = d; }
  sim::TimePs control_delay() const { return control_delay_; }

  /// Install (or clear) the runtime fault hook consulted by channels for
  /// every link-control frame. Not owned; the installer must outlive use or
  /// clear it. Null (the default) keeps the wire perfect.
  void set_fault_hook(ControlFaultHook* hook) { fault_hook_ = hook; }
  ControlFaultHook* fault_hook() { return fault_hook_; }

  /// Copy of a link-control frame with a fresh id (fault duplication).
  Packet* clone_control(const Packet& src);

  // --- observation ----------------------------------------------------------
  Counters& counters() {
    ShardContext* c = shard_ctx();
    return c != nullptr ? *c->counters : counters_;
  }
  const Counters& counters() const { return counters_; }

  /// Install (or clear) the binary tracer. Not owned (runner::Fabric owns
  /// it); one tracer per network — campaigns run many sims concurrently, so
  /// there is deliberately no global. Null (the default) disables tracing.
  void set_tracer(trace::Tracer* t) { tracer_ = t; }
  trace::Tracer* tracer() { return tracer_; }

  /// Hot-path trace hook. With no tracer installed this is one predictable
  /// branch; arguments are values the caller already holds. Inside a shard
  /// window the record is staged in the shard's log and appended to the
  /// real tracer at the barrier, in replay order.
  void trace_event(trace::EventType type, std::int32_t node, std::int32_t port,
                   std::int32_t prio, std::uint64_t id, std::int64_t value) {
    if (tracer_ == nullptr) return;
    ShardContext* c = shard_ctx();
    if (c != nullptr && c->log != nullptr) {
      stage_trace(*c, type, node, port, prio, id, value);
      return;
    }
    tracer_->record(type, sched_.now(), node, port, prio, id, value);
  }

  void add_delivery_listener(DeliveryListener* l) { delivery_listeners_.push_back(l); }
  void add_completion_listener(std::function<void(Flow&)> fn) {
    completion_listeners_.push_back(std::move(fn));
  }

  void notify_delivery(const Packet& pkt);
  void notify_completion(Flow& flow);

  void free_packet(Packet* pkt) { pool().release(pkt); }

  /// Advance the simulation (through the parallel coordinator when one is
  /// installed).
  void run_until(sim::TimePs t) {
    if (par_ != nullptr) {
      par_->run_until(t);
      return;
    }
    sched_.run_until(t);
  }

  /// Install (or clear) the sharded parallel coordinator. Not owned.
  void set_par_hook(ParHook* p) { par_ = p; }
  ParHook* par_hook() { return par_; }

  /// Events executed so far, summed across shards when sharded.
  std::uint64_t executed_events() const {
    return par_ != nullptr ? par_->executed_events() : sched_.executed_events();
  }
  /// Packets ever allocated, from the global id counter when sharded.
  std::uint64_t packets_created() const {
    return par_ != nullptr ? par_->packets_created() : pool_.total_created();
  }

  // --- sharded-core plumbing (src/par) -------------------------------------
  std::size_t channel_count() const { return channels_.size(); }
  Channel& channel(std::size_t i) { return *channels_[i]; }

  /// Re-dispatch a logged delivery notification (barrier merge replay).
  void replay_delivery(const sim::WinRecord& r);

  /// Append a shard-staged trace record to the real tracer (merge replay;
  /// produces the exact record the single-threaded hot path would have).
  void emit_trace(const trace::TraceEvent& e) {
    if (tracer_ != nullptr)
      tracer_->record(e.event_type(), e.t, e.node, e.port, e.prio, e.id,
                      e.value);
  }

 private:
  void stage_trace(ShardContext& c, trace::EventType type, std::int32_t node,
                   std::int32_t port, std::int32_t prio, std::uint64_t id,
                   std::int64_t value);

  template <typename NodeT, typename... Args>
  NodeT& emplace_node(Args&&... args);

  sim::Scheduler sched_;
  PacketPool pool_;
  sim::Rng rng_{0x9FC0DE5EEDull};
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::deque<Flow> flows_;  // deque: stable Flow& across mid-run create_flow
  std::unique_ptr<CcModule> cc_;
  ControlFaultHook* fault_hook_ = nullptr;
  ParHook* par_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  sim::TimePs control_delay_ = 0;
  Counters counters_;
  std::vector<DeliveryListener*> delivery_listeners_;
  std::vector<std::function<void(Flow&)>> completion_listeners_;
};

}  // namespace gfc::net
