#include "net/node.hpp"

#include <cassert>

#include "net/network.hpp"

namespace gfc::net {

Node::Node(Network& net, NodeId id, std::string name)
    : net_(net), sched_(&net.sched()), id_(id), name_(std::move(name)) {}

int Node::add_port(sim::Rate rate) {
  const int idx = static_cast<int>(ports_.size());
  ports_.push_back(std::make_unique<EgressPort>(*this, idx, rate));
  peers_.push_back(Peer{});
  return idx;
}

void Node::set_fc(std::unique_ptr<FcModule> fc) {
  fc_ = std::move(fc);
  if (fc_) fc_->attach(*this);
}

void Node::on_departure(Packet&, int) {}

Packet* Node::poll_data(int, sim::TimePs, sim::TimePs*, bool, bool*) {
  return nullptr;
}

Packet* Node::make_control(PacketType type) {
  assert(is_link_control(type));
  Packet* pkt = net_.pool().acquire();
  pkt->type = type;
  pkt->size_bytes = kControlFrameBytes;
  pkt->created_at = sched_ref().now();
  return pkt;
}

void Node::send_control(int port_index, Packet* pkt) {
  ++net_.counters().control_frames_sent;
  port(port_index).enqueue_control(pkt);
}

void Node::deliver_control(Packet* pkt, int in_port) {
  const sim::TimePs delay = net_.control_delay();
  if (delay == 0) {
    if (fc_) fc_->on_control(in_port, *pkt);
    net_.free_packet(pkt);
    return;
  }
  sched_ref().schedule_in(delay, [this, pkt, in_port] {
    if (fc_) fc_->on_control(in_port, *pkt);
    net_.free_packet(pkt);
  });
}

}  // namespace gfc::net
