// Node base class: anything with ports (switches, hosts).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/fc_module.hpp"
#include "net/packet.hpp"
#include "net/port.hpp"

namespace gfc::net {

class Network;

class Node {
 public:
  Node(Network& net, NodeId id, std::string name);
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// A packet fully arrived on `in_port` (after serialization+propagation).
  /// Ownership transfers to the node.
  virtual void receive(Packet* pkt, int in_port) = 0;

  /// An egress port finished transmitting `pkt` (called before the channel
  /// hand-off, at the transmission-complete instant).
  virtual void on_departure(Packet& pkt, int out_port);

  /// Pull-mode data source (input-queued switches): hand the egress port
  /// its next transmittable packet, honoring head-of-line order within each
  /// ingress queue and the port's gate. With consume == false this is a
  /// dry-run probe. *any_waiting reports whether any head targets this
  /// egress at all; *wake_at is lowered to the earliest gate wake time.
  /// Hosts (queue-mode) return nullptr and keep data in the port itself.
  virtual Packet* poll_data(int egress_port, sim::TimePs now,
                            sim::TimePs* wake_at, bool consume,
                            bool* any_waiting);

  /// True when poll_data drives this node's egress ports.
  virtual bool pull_mode() const { return is_switch(); }

  virtual bool is_switch() const = 0;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  Network& network() { return net_; }
  const Network& network() const { return net_; }

  /// Scheduler this node's events run on: the Network's scheduler, unless
  /// the sharded core (src/par) re-pointed the node at its shard. All
  /// node-side timers and callbacks must go through this — never
  /// network().sched() — so a shard's events stay on the shard.
  sim::Scheduler& sched_ref() { return *sched_; }
  void set_shard_sched(sim::Scheduler* s) { sched_ = s; }

  int port_count() const { return static_cast<int>(ports_.size()); }
  EgressPort& port(int i) { return *ports_[static_cast<std::size_t>(i)]; }
  const EgressPort& port(int i) const { return *ports_[static_cast<std::size_t>(i)]; }

  /// Peer wiring (filled by Network::connect).
  struct Peer {
    NodeId node = kInvalidNode;
    int port = -1;
  };
  Peer peer(int port_index) const { return peers_[static_cast<std::size_t>(port_index)]; }

  /// Create a new port transmitting at `rate`; returns its index.
  int add_port(sim::Rate rate);

  void set_fc(std::unique_ptr<FcModule> fc);
  FcModule* fc() { return fc_.get(); }

  /// Build a 64 B link-control frame (caller fills type-specific fields,
  /// then hands it to send_control).
  Packet* make_control(PacketType type);

  /// Emit a link-control frame out of `port_index` (bypass queue).
  void send_control(int port_index, Packet* pkt);

 protected:
  /// Route an arriving link-control frame to the FcModule after the
  /// configured processing delay, then free it.
  void deliver_control(Packet* pkt, int in_port);

 private:
  friend class Network;

  Network& net_;
  sim::Scheduler* sched_;  // set in the ctor; re-pointed by src/par
  NodeId id_;
  std::string name_;
  std::vector<std::unique_ptr<EgressPort>> ports_;
  std::vector<Peer> peers_;
  std::unique_ptr<FcModule> fc_;
};

}  // namespace gfc::net
