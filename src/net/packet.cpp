#include "net/packet.hpp"

namespace gfc::net {

Packet* PacketPool::acquire() {
  if (free_list_.empty()) {
    auto chunk = std::make_unique<Packet[]>(kChunk);
    free_list_.reserve(free_list_.size() + kChunk);
    for (std::size_t i = 0; i < kChunk; ++i) free_list_.push_back(&chunk[i]);
    chunks_.push_back(std::move(chunk));
  }
  Packet* pkt = free_list_.back();
  free_list_.pop_back();
  *pkt = Packet{};
  if (log_ != nullptr) {
    pkt->id = prov_base_ | prov_next_++;
    sim::WinRecord r;
    r.kind = sim::WinRecord::kAlloc;
    r.prov = pkt->id;
    r.target = pkt;
    log_->recs.push_back(r);
  } else if (shared_id_ != nullptr) {
    pkt->id = (*shared_id_)++;
  } else {
    pkt->id = next_id_++;
  }
  ++live_;
  return pkt;
}

void PacketPool::release(Packet* pkt) {
  --live_;
  free_list_.push_back(pkt);
}

}  // namespace gfc::net
