// Packet model and pool.
//
// One Packet struct covers data packets and every control frame the
// flow-control mechanisms exchange (PFC pause/resume, GFC stage messages,
// CBFC credit updates, DCQCN CNPs). Control frames are 64 B on the wire,
// matching the paper's feedback-message size m.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "sim/window.hpp"

namespace gfc::net {

using NodeId = std::int32_t;
using FlowId = std::int64_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr FlowId kInvalidFlow = -1;

/// Number of traffic classes (priorities) modeled, as in 802.1Qbb.
inline constexpr int kNumPriorities = 8;

/// Wire size of a flow-control / congestion-notification frame (bytes).
inline constexpr std::int64_t kControlFrameBytes = 64;

enum class PacketType : std::uint8_t {
  kData = 0,
  kPfcPause,    // PFC XOFF for one priority
  kPfcResume,   // PFC XON for one priority
  kGfcStage,    // buffer-based GFC: stage id for one priority
  kGfcQueue,    // time-based / conceptual GFC: queue-length sample
  kCredit,      // CBFC: FCCL update for one priority
  kCnp,         // DCQCN congestion notification packet (routed like data)
};

/// Is this a link-local flow-control frame (consumed by the adjacent node,
/// never forwarded, never subject to pause or rate limiting)?
constexpr bool is_link_control(PacketType t) {
  return t == PacketType::kPfcPause || t == PacketType::kPfcResume ||
         t == PacketType::kGfcStage || t == PacketType::kGfcQueue ||
         t == PacketType::kCredit;
}

struct Packet {
  std::uint64_t id = 0;
  PacketType type = PacketType::kData;
  std::uint8_t priority = 0;
  std::int64_t size_bytes = 0;  // wire size, used for all timing/accounting

  NodeId src = kInvalidNode;  // originating host (data / CNP)
  NodeId dst = kInvalidNode;  // destination host (data / CNP)
  FlowId flow = kInvalidFlow;
  /// Copy of Flow::path_salt, stamped wherever `flow` is assigned, so the
  /// per-hop ECMP choice reads it without dereferencing the flow table.
  std::uint64_t path_salt = 0;

  /// Per-hop state: ingress port at the switch currently buffering the
  /// packet (charged back on departure) and the egress its route selected.
  std::int32_t ingress_port = -1;
  std::int32_t out_port = -1;

  /// ECN congestion-experienced mark (set by switches, read by receivers).
  bool ecn_ce = false;

  /// Control payloads (interpretation depends on `type`).
  std::int32_t fc_priority = 0;  // priority the control frame acts on
  std::int32_t fc_stage = 0;     // kGfcStage: stage index
  std::int64_t fc_value = 0;     // kGfcQueue: queue bytes; kCredit: FCCL blocks

  /// DCFIT deadlock-detection trigger carried by kPfcPause frames (see
  /// src/mech/dcfit.hpp): the switch that originated the trigger and its
  /// node-local sequence number. kInvalidNode = no trigger attached.
  std::int32_t fc_trigger_origin = kInvalidNode;
  std::uint64_t fc_trigger_seq = 0;

  sim::TimePs created_at = 0;  // for latency accounting

  /// True for frames that bypass data queues at the egress port.
  bool is_control() const { return is_link_control(type); }
};

/// Free-list pool. Packets are created/destroyed at very high rate; the
/// pool keeps them out of the general-purpose allocator and stabilizes ids.
class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Fetch a zeroed packet with a fresh id.
  Packet* acquire();

  /// Return a packet to the pool. Pointer must have come from acquire().
  void release(Packet* pkt);

  std::size_t live_count() const { return live_; }
  std::uint64_t total_created() const { return next_id_ - 1; }

  // --- sharded-core id modes (src/par) -------------------------------------
  /// Direct mode: draw ids from a shared global counter (coordinator
  /// boundary steps). Null restores the pool-own counter.
  void set_id_source(std::uint64_t* shared) { shared_id_ = shared; }
  /// Window mode: hand out provisional ids tagged with the shard index and
  /// log each allocation; the barrier merge assigns true global ids in
  /// replay order and patches the packets in place.
  void begin_window(sim::WindowLog* log, std::uint32_t shard) {
    log_ = log;
    prov_base_ = sim::kProvSeqBit | (std::uint64_t{shard} << 48);
    prov_next_ = 0;
  }
  void end_window() { log_ = nullptr; }

 private:
  static constexpr std::size_t kChunk = 1024;

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<Packet*> free_list_;
  std::uint64_t next_id_ = 1;
  std::size_t live_ = 0;
  std::uint64_t* shared_id_ = nullptr;
  sim::WindowLog* log_ = nullptr;
  std::uint64_t prov_base_ = 0;
  std::uint64_t prov_next_ = 0;
};

}  // namespace gfc::net
