#include "net/port.hpp"

#include <bit>
#include <cassert>

#include "net/channel.hpp"
#include "net/network.hpp"
#include "net/node.hpp"

namespace gfc::net {

EgressPort::EgressPort(Node& owner, int index, sim::Rate line_rate)
    : owner_(owner),
      index_(index),
      rate_(line_rate),
      gate_(std::make_unique<OpenGate>()) {}

sim::Scheduler& EgressPort::sched() { return owner_.sched_ref(); }

std::int64_t EgressPort::queued_bytes_total() const {
  std::int64_t sum = 0;
  for (const auto& pq : data_) sum += pq.bytes;
  return sum;
}

std::size_t EgressPort::queued_packets() const {
  std::size_t n = control_q_.size();
  for (const auto& pq : data_) n += pq.packets;
  return n;
}

Packet* EgressPort::PrioQueue::next_up(std::size_t* bucket_out) {
  if (packets == 0) return nullptr;
  const std::size_t n = buckets.size();
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t b = rr + step;
    if (b >= n) b -= n;  // rr + step < 2*n
    if (!buckets[b].q.empty()) {
      *bucket_out = b;
      return buckets[b].q.front();
    }
  }
  return nullptr;
}

void EgressPort::set_gate(std::unique_ptr<TxGate> gate) {
  assert(gate != nullptr);
  gate_ = std::move(gate);
}

void EgressPort::enqueue(Packet* pkt) {
  assert(!pkt->is_control());
  auto& pq = data_[static_cast<std::size_t>(pkt->priority)];
  Bucket* bucket = nullptr;
  for (auto& b : pq.buckets)
    if (b.key == pkt->ingress_port) bucket = &b;
  if (bucket == nullptr) {
    pq.buckets.push_back(Bucket{pkt->ingress_port, {}});
    bucket = &pq.buckets.back();
  }
  bucket->q.push_back(pkt);
  pq.bytes += pkt->size_bytes;
  ++pq.packets;
  nonempty_prios_ |= 1u << pkt->priority;
  owner_.network().trace_event(trace::EventType::kPortEnqueue, owner_.id(),
                               index_, pkt->priority, pkt->id, pq.bytes);
  try_transmit();
}

void EgressPort::enqueue_control(Packet* pkt) {
  assert(pkt->is_control());
  control_q_.push_back(pkt);
  try_transmit();
}

void EgressPort::kick() { try_transmit(); }

void EgressPort::set_link_up(bool up) {
  link_up_ = up;
  owner_.network().trace_event(
      up ? trace::EventType::kLinkUp : trace::EventType::kLinkDown,
      owner_.id(), index_, -1, 0, queued_bytes_total());
  if (channel_ != nullptr) channel_->set_up(up);
}

void EgressPort::cancel_wake() {
  if (wake_event_.valid()) {
    sched().cancel(wake_event_);
    wake_event_ = {};
    owner_.network().trace_event(trace::EventType::kWakeCancel, owner_.id(),
                                 index_, -1, 0, wake_at_);
  }
  wake_at_ = sim::kTimeNever;
}

void EgressPort::set_wake(sim::TimePs wake_at) {
  if (wake_event_.valid()) {
    if (wake_at == wake_at_) return;  // timer already armed for that instant
    owner_.network().trace_event(trace::EventType::kWakeCancel, owner_.id(),
                                 index_, -1, 0, wake_at_);
    if (wake_at != sim::kTimeNever) {
      // Retarget the armed timer in place: same callback, fresh FIFO
      // sequence number — observably identical to cancel + schedule, minus
      // the callback teardown/rebuild and slot free-list round trip.
      const sim::EventId moved = sched().reschedule(wake_event_, wake_at);
      if (moved.valid()) {
        wake_event_ = moved;
        wake_at_ = wake_at;
        owner_.network().trace_event(trace::EventType::kWakeArm, owner_.id(),
                                     index_, -1, 0, wake_at);
        return;
      }
    }
    sched().cancel(wake_event_);
    wake_event_ = {};
  }
  wake_at_ = wake_at;
  if (wake_at == sim::kTimeNever) return;
  owner_.network().trace_event(trace::EventType::kWakeArm, owner_.id(), index_,
                               -1, 0, wake_at);
  wake_event_ = sched().schedule_at(wake_at, [this] {
    wake_event_ = {};
    wake_at_ = sim::kTimeNever;
    owner_.network().trace_event(trace::EventType::kWakeFire, owner_.id(),
                                 index_, -1, 0, sched().now());
    try_transmit();
  });
}

void EgressPort::try_transmit() {
  if (in_flight_ != nullptr || !link_up_) return;

  // Control frames bypass data queues and all gating.
  if (!control_q_.empty()) {
    cancel_wake();
    Packet* pkt = control_q_.front();
    control_q_.pop_front();
    start_tx(pkt, /*control=*/true);
    return;
  }

  const sim::TimePs now = sched().now();
  sim::TimePs wake_at = sim::kTimeNever;

  if (owner_.pull_mode()) {
    bool any_waiting = false;
    Packet* pkt = owner_.poll_data(index_, now, &wake_at, /*consume=*/true,
                                   &any_waiting);
    if (pkt != nullptr) {
      cancel_wake();
      start_tx(pkt, /*control=*/false);
    } else {
      set_wake(wake_at);
    }
    return;
  }

  // Queue mode (hosts): round-robin over priorities (no head-of-line
  // blocking across classes), then over source buckets within the priority.
  // Rotate the nonempty mask so bit k stands for priority (rr_prio_ + k);
  // walking its set bits visits exactly the prios the full scan would.
  std::uint32_t rot = ((nonempty_prios_ >> rr_prio_) |
                       (nonempty_prios_ << (kNumPriorities - rr_prio_))) &
                      ((1u << kNumPriorities) - 1);
  while (rot != 0) {
    const int step = std::countr_zero(rot);
    rot &= rot - 1;
    const int prio = (rr_prio_ + step) % kNumPriorities;
    auto& pq = data_[static_cast<std::size_t>(prio)];
    std::size_t bucket = 0;
    Packet* pkt = pq.next_up(&bucket);
    if (pkt == nullptr) continue;
    if (gate_->allowed(*pkt, now, &wake_at)) {
      pq.buckets[bucket].q.pop_front();
      pq.bytes -= pkt->size_bytes;
      --pq.packets;
      if (pq.packets == 0) nonempty_prios_ &= ~(1u << prio);
      pq.rr = bucket + 1 == pq.buckets.size() ? 0 : bucket + 1;
      rr_prio_ = (prio + 1) % kNumPriorities;
      cancel_wake();
      start_tx(pkt, /*control=*/false);
      return;
    }
  }

  assert(wake_at == sim::kTimeNever || wake_at >= now);
  set_wake(wake_at);
}

bool EgressPort::probe_hold_and_wait(sim::TimePs now) {
  // A downed link stalls for physical reasons, not flow control — it is
  // not part of the paper's hold-and-wait condition.
  if (in_flight_ != nullptr || !control_q_.empty() || !link_up_) return false;
  sim::TimePs wake_at = sim::kTimeNever;
  if (owner_.pull_mode()) {
    bool any_waiting = false;
    Packet* pkt = owner_.poll_data(index_, now, &wake_at, /*consume=*/false,
                                   &any_waiting);
    return pkt == nullptr && any_waiting && wake_at == sim::kTimeNever;
  }
  bool has_data = false;
  for (auto& pq : data_) {
    std::size_t bucket = 0;
    Packet* pkt = pq.next_up(&bucket);
    if (pkt == nullptr) continue;
    has_data = true;
    if (gate_->allowed(*pkt, now, &wake_at)) return false;
  }
  return has_data && wake_at == sim::kTimeNever;
}

void EgressPort::start_tx(Packet* pkt, bool control) {
  assert(channel_ != nullptr && "port must be connected");
  in_flight_ = pkt;
  in_flight_control_ = control;
  if (!control) {
    owner_.network().trace_event(trace::EventType::kTxStart, owner_.id(),
                                 index_, pkt->priority, pkt->id,
                                 pkt->size_bytes);
    gate_->on_transmit(*pkt, sched().now());
  }
  // Batched wire events: a saturated port's N back-to-back transmissions
  // arm this one registered drain timer N times (often from inside its own
  // firing, via complete_tx -> try_transmit) instead of constructing and
  // destroying N one-shot events. Arming takes a fresh FIFO sequence
  // number exactly where schedule_in did, so event order is unchanged.
  if (!tx_done_timer_.valid())
    tx_done_timer_ = sched().register_timer([this] { complete_tx(); });
  const sim::TimePs t = sim::tx_time(rate_, pkt->size_bytes);
  sched().arm_timer(tx_done_timer_, sched().now() + t);
}

void EgressPort::complete_tx() {
  Packet* pkt = in_flight_;
  in_flight_ = nullptr;
  if (in_flight_control_) {
    tx_control_bytes_ += static_cast<std::uint64_t>(pkt->size_bytes);
    ++tx_control_frames_;
  } else {
    tx_data_bytes_ += static_cast<std::uint64_t>(pkt->size_bytes);
    // Release ingress accounting / notify sender pacing before hand-off.
    owner_.on_departure(*pkt, index_);
  }
  channel_->deliver(pkt);
  try_transmit();
}

}  // namespace gfc::net
