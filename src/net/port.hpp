// Egress port: per-priority data queues, a control-frame bypass queue, and
// a transmit state machine gated by the attached flow-control mechanism.
//
// Within a priority, packets are kept in per-ingress-source buckets served
// round-robin (the per-source fairness a shared-buffer switch's egress
// arbiter provides). Without it, egress bandwidth splits proportionally to
// arrival rate and transit queues balloon ahead of source queues, which is
// neither how real fabrics behave nor how the paper's queues evolve.
//
// Control frames bypass data queues and are never paused/rate limited, but
// they cannot preempt an in-flight data packet — this produces the MTU/C
// components of the paper's feedback latency tau (Eq. 6).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace gfc::net {

class Node;
class Channel;

/// Transmission gate installed on an egress port by the flow-control
/// mechanism's upstream half. Decides whether a data packet may start
/// transmission now.
class TxGate {
 public:
  virtual ~TxGate() = default;

  /// May `pkt` start transmission at `now`? If blocked and the gate knows
  /// its own wake time (rate limiters do), it lowers *wake_at (absolute
  /// time); event-driven gates (pause, credits) leave it untouched and call
  /// EgressPort::kick() when state changes.
  virtual bool allowed(const Packet& pkt, sim::TimePs now, sim::TimePs* wake_at) = 0;

  /// A data packet passed the gate and started transmission at `now`.
  virtual void on_transmit(const Packet& pkt, sim::TimePs now) = 0;
};

/// Gate that always allows (no flow control).
class OpenGate final : public TxGate {
 public:
  bool allowed(const Packet&, sim::TimePs, sim::TimePs*) override { return true; }
  void on_transmit(const Packet&, sim::TimePs) override {}
};

class EgressPort {
 public:
  EgressPort(Node& owner, int index, sim::Rate line_rate);

  void connect(Channel* channel) { channel_ = channel; }
  bool connected() const { return channel_ != nullptr; }
  Channel* channel() { return channel_; }

  /// Link state (runtime failures). A downed port keeps its queues but
  /// starts no transmissions; its outgoing channel mirrors the state so
  /// in-flight packets are lost. Callers kick() after bringing it back up.
  void set_link_up(bool up);
  bool link_up() const { return link_up_; }

  /// Queue a data packet (or routed CNP) for transmission. The packet's
  /// current ingress_port keys the fairness bucket.
  void enqueue(Packet* pkt);

  /// Queue a link-control frame (bypass lane).
  void enqueue_control(Packet* pkt);

  /// Re-evaluate transmission; called by gates when they open.
  void kick();

  void set_gate(std::unique_ptr<TxGate> gate);
  TxGate& gate() { return *gate_; }

  // --- observers ---------------------------------------------------------
  int index() const { return index_; }
  sim::Rate line_rate() const { return rate_; }
  Node& owner() { return owner_; }
  bool busy() const { return in_flight_ != nullptr; }
  std::int64_t queued_bytes(int prio) const {
    return data_[static_cast<std::size_t>(prio)].bytes;
  }
  std::int64_t queued_bytes_total() const;
  std::size_t queued_packets() const;
  std::uint64_t tx_data_bytes() const { return tx_data_bytes_; }
  std::uint64_t tx_control_bytes() const { return tx_control_bytes_; }
  std::uint64_t tx_control_frames() const { return tx_control_frames_; }

  /// Deadlock probe: true iff the port holds data, is idle, and every
  /// priority's next-up packet is blocked by the gate with no scheduled
  /// wake — i.e. the port is in the paper's hold-and-wait state.
  bool probe_hold_and_wait(sim::TimePs now);

  /// Visit every queued data packet (deadlock analysis).
  template <typename Fn>
  void for_each_queued(Fn&& fn) const {
    for (const auto& pq : data_)
      for (const auto& bucket : pq.buckets)
        for (const Packet* p : bucket.q) fn(*p);
    if (in_flight_ != nullptr && !in_flight_->is_control()) fn(*in_flight_);
  }

 private:
  /// Per-ingress-source FIFO inside one priority class.
  struct Bucket {
    std::int32_t key;
    std::deque<Packet*> q;
  };
  struct PrioQueue {
    std::vector<Bucket> buckets;
    std::size_t rr = 0;  // bucket round-robin cursor
    std::int64_t bytes = 0;
    std::size_t packets = 0;

    bool empty() const { return packets == 0; }
    /// The packet the round-robin arbiter would serve next (nullptr when
    /// empty); *bucket_out reports which bucket it sits in.
    Packet* next_up(std::size_t* bucket_out);
  };

  void try_transmit();
  void start_tx(Packet* pkt, bool control);
  void complete_tx();
  sim::Scheduler& sched();

  /// Drop any pending wake timer.
  void cancel_wake();
  /// Arm (or keep) the wake timer for `wake_at`; kTimeNever disarms. A
  /// pending timer for the same instant is kept instead of being
  /// cancel/re-scheduled — gate kicks that do not change the wake time are
  /// common and the churn is measurable (BM_SchedulerCancelChurn).
  void set_wake(sim::TimePs wake_at);

  Node& owner_;
  int index_;
  sim::Rate rate_;
  Channel* channel_ = nullptr;

  std::deque<Packet*> control_q_;
  std::array<PrioQueue, kNumPriorities> data_;
  int rr_prio_ = 0;  // round-robin pointer over priorities
  // Bit p set iff data_[p] holds packets; the transmit scan walks set bits
  // only (in the same rr order) instead of touching all eight PrioQueues.
  std::uint32_t nonempty_prios_ = 0;

  std::unique_ptr<TxGate> gate_;
  bool link_up_ = true;
  Packet* in_flight_ = nullptr;
  bool in_flight_control_ = false;
  sim::EventId wake_event_{};
  sim::TimePs wake_at_ = sim::kTimeNever;  // instant wake_event_ fires at
  sim::TimerId tx_done_timer_{};           // registered complete_tx drain timer

  std::uint64_t tx_data_bytes_ = 0;
  std::uint64_t tx_control_bytes_ = 0;
  std::uint64_t tx_control_frames_ = 0;
};

}  // namespace gfc::net
