#include "net/switch.hpp"

#include <bit>
#include <cassert>

#include "net/ecmp.hpp"
#include "net/network.hpp"
#include "sim/logger.hpp"

namespace gfc::net {

SwitchNode::SwitchNode(Network& net, NodeId id, std::string name,
                       std::int64_t ingress_buffer_bytes)
    : Node(net, id, std::move(name)), buffer_(ingress_buffer_bytes) {}

void SwitchNode::ensure_tables() {
  const auto n = static_cast<std::size_t>(port_count());
  if (ingress_bytes_.size() < n) {
    ingress_bytes_.resize(n);
    inq_.resize(n);
    outq_.resize(n);
    outq_bytes_.resize(n);
    rr_.resize(n);
    arb_rr_.resize(n, 0);
    assert(n <= 64 && "dispatch bitmasks assume <= 64 ports");
  }
}

void SwitchNode::set_route(NodeId dst, std::vector<std::int32_t> out_ports) {
  const auto idx = static_cast<std::size_t>(dst);
  if (route_ref_.size() <= idx) route_ref_.resize(idx + 1);
  route_ref_[idx] = RouteRef{static_cast<std::uint32_t>(route_slots_.size()),
                             static_cast<std::uint32_t>(out_ports.size())};
  route_slots_.insert(route_slots_.end(), out_ports.begin(), out_ports.end());
}

void SwitchNode::clear_routes() {
  route_ref_.clear();
  route_slots_.clear();
}

int SwitchNode::route_for(const Packet& pkt) const {
  const auto idx = static_cast<std::size_t>(pkt.dst);
  if (idx >= route_ref_.size()) return -1;
  const RouteRef ref = route_ref_[idx];
  if (ref.n == 0) return -1;
  const std::int32_t* candidates = route_slots_.data() + ref.off;
  if (ref.n == 1) return candidates[0];
  // Deterministic ECMP: hash the flow's path salt with this switch's id so
  // consecutive hops don't make correlated choices. Flowless packets
  // (should not occur for routed traffic) fall back to their packet id.
  const std::uint64_t salt = pkt.flow >= 0 ? pkt.path_salt : pkt.id;
  return candidates[ecmp_select(salt, id(), ref.n)];
}

std::int64_t SwitchNode::ingress_bytes_total(int port) const {
  std::int64_t sum = 0;
  for (std::int64_t b : ingress_bytes_[static_cast<std::size_t>(port)]) sum += b;
  return sum;
}

void SwitchNode::head_targets(int in_port, std::vector<int>* out) const {
  out->clear();
  if (static_cast<std::size_t>(in_port) >= inq_.size()) return;
  // Input-queue heads wait on the egress their route selected.
  for (const auto& q : inq_[static_cast<std::size_t>(in_port)])
    if (!q.empty()) out->push_back(q.front()->out_port);
  // Already-dispatched packets wait inside their egress output queue.
  for (std::size_t e = 0; e < outq_.size(); ++e) {
    bool holds = false;
    for (const auto& q : outq_[e]) {
      for (const Packet* p : q)
        if (p->ingress_port == in_port) {
          holds = true;
          break;
        }
      if (holds) break;
    }
    if (holds) out->push_back(static_cast<int>(e));
  }
}

void SwitchNode::account_enqueue(Packet& pkt, int in_port) {
  auto& bytes = ingress_bytes_[static_cast<std::size_t>(in_port)]
                              [static_cast<std::size_t>(pkt.priority)];
  bytes += pkt.size_bytes;
  if (bytes > buffer_) {
    // Lossless invariant violated: a real switch would have dropped. We
    // keep the packet (the sim has memory) but record the violation; every
    // test asserts this counter stays zero.
    ++network().counters().lossless_violations;
    GFC_LOG_WARN_CAT(::gfc::trace::kCatPort,
                 "%s: ingress buffer overflow on port %d prio %d (%lld > %lld)",
                 name().c_str(), in_port, pkt.priority,
                 static_cast<long long>(bytes), static_cast<long long>(buffer_));
  }
  pkt.ingress_port = in_port;
  network().trace_event(trace::EventType::kIngressEnqueue, id(), in_port,
                        pkt.priority, pkt.id, bytes);
}

void SwitchNode::maybe_mark_ecn(Packet& pkt, int in_port) {
  if (!ecn_.enabled) return;
  const std::int64_t q = ingress_bytes(in_port, pkt.priority);
  if (q <= ecn_.kmin) return;
  if (q >= ecn_.kmax) {
    if (ecn_.pmax >= 1.0 || network().rng().chance(ecn_.pmax)) pkt.ecn_ce = true;
    return;
  }
  const double p = ecn_.pmax * static_cast<double>(q - ecn_.kmin) /
                   static_cast<double>(ecn_.kmax - ecn_.kmin);
  if (network().rng().chance(p)) pkt.ecn_ce = true;
}

void SwitchNode::receive(Packet* pkt, int in_port) {
  if (pkt->is_control()) {
    deliver_control(pkt, in_port);
    return;
  }
  ensure_tables();
  const int out = route_for(*pkt);
  if (out < 0) {
    ++network().counters().route_drops;
    GFC_LOG_ERROR_CAT(::gfc::trace::kCatPort, "%s: no route for dst %d, dropping",
                      name().c_str(), pkt->dst);
    network().trace_event(trace::EventType::kDrop, id(), in_port,
                          pkt->priority, pkt->id, pkt->size_bytes);
    network().free_packet(pkt);
    return;
  }
  pkt->out_port = out;
  account_enqueue(*pkt, in_port);
  maybe_mark_ecn(*pkt, in_port);
  active_prios_ |= 1u << pkt->priority;
  // Output-queued: straight into the egress FIFO, arrival order.
  auto& q = arch_ == SwitchArch::kOutputQueuedFifo
                ? outq_[static_cast<std::size_t>(out)]
                       [static_cast<std::size_t>(pkt->priority)]
                : inq_[static_cast<std::size_t>(in_port)]
                      [static_cast<std::size_t>(pkt->priority)];
  q.push_back(pkt);
  if (arch_ == SwitchArch::kOutputQueuedFifo)
    outq_bytes_[static_cast<std::size_t>(out)]
               [static_cast<std::size_t>(pkt->priority)] += pkt->size_bytes;
  if (fc()) fc()->on_ingress_enqueue(in_port, pkt->priority, *pkt);
  // Only a fresh head can unblock anything.
  if (q.size() == 1) {
    if (arch_ == SwitchArch::kCioqRoundRobin) {
      dispatch(out);
    } else {
      port(out).kick();
    }
  }
}

void SwitchNode::dispatch(int seed_egress) {
  const int ports = port_count();
  std::uint64_t pending = 1ull << static_cast<unsigned>(seed_egress);
  std::uint64_t kicked = 0;
  while (pending != 0) {
    const int e = __builtin_ctzll(pending);
    pending &= pending - 1;
    auto& cursor = arb_rr_[static_cast<std::size_t>(e)];
    for (int prio = 0; prio < kNumPriorities; ++prio) {
      if ((active_prios_ & (1u << prio)) == 0) continue;
      auto& oq = outq_[static_cast<std::size_t>(e)][static_cast<std::size_t>(prio)];
      auto& ob = outq_bytes_[static_cast<std::size_t>(e)][static_cast<std::size_t>(prio)];
      // Admit competing input-queue heads round-robin while there is room.
      bool progress = true;
      while (progress) {
        progress = false;
        for (int step = 0; step < ports; ++step) {
          int in = cursor + step;
          if (in >= ports) in -= ports;  // cursor + step < 2*ports
          auto& q =
              inq_[static_cast<std::size_t>(in)][static_cast<std::size_t>(prio)];
          if (q.empty() || q.front()->out_port != e) continue;
          Packet* head = q.front();
          // Head-of-line rule: a full output queue blocks this whole input
          // FIFO (for this priority). An empty output queue always accepts.
          if (!oq.empty() && ob + head->size_bytes > egress_cap_) break;
          q.pop_front();
          oq.push_back(head);
          ob += head->size_bytes;
          kicked |= 1ull << static_cast<unsigned>(e);
          cursor = in + 1 == ports ? 0 : in + 1;
          progress = true;
          // The freed input FIFO may now offer a head to another egress.
          if (!q.empty() && q.front()->out_port != e)
            pending |= 1ull << static_cast<unsigned>(q.front()->out_port);
          break;
        }
      }
    }
  }
  if (kicked != 0) {
    // Wake receiving egresses after the current call stack (this may run
    // inside one of their transmit paths) unwinds. Each dispatch queues its
    // own mask and arms the shared drain timer at `now`: firings execute in
    // arming (sequence) order and the masks pop FIFO, so each firing sees
    // exactly the mask the per-firing closure used to capture.
    if (!kick_timer_.valid())
      kick_timer_ = sched_ref().register_multishot([this] { fire_kicks(); });
    kick_masks_.push_back(kicked);
    sched_ref().fire_at(kick_timer_, sched_ref().now());
  }
}

void SwitchNode::fire_kicks() {
  const std::uint64_t kicked = kick_masks_.front();
  kick_masks_.pop_front();
  for (int e = 0; e < port_count(); ++e)
    if (kicked & (1ull << static_cast<unsigned>(e))) port(e).kick();
}

Packet* SwitchNode::poll_data(int egress_port, sim::TimePs now,
                              sim::TimePs* wake_at, bool consume,
                              bool* any_waiting) {
  ensure_tables();
  EgressRr& rr = rr_[static_cast<std::size_t>(egress_port)];
  TxGate& gate = port(egress_port).gate();

  if (arch_ != SwitchArch::kInputQueued) {
    // Walk active_prios_ set bits in rr order (bit k of the rotated mask is
    // priority rr.prio + k) — same visit order as the full 8-step scan.
    std::uint32_t prot = ((active_prios_ >> rr.prio) |
                          (active_prios_ << (kNumPriorities - rr.prio))) &
                         ((1u << kNumPriorities) - 1);
    while (prot != 0) {
      const int pstep = std::countr_zero(prot);
      prot &= prot - 1;
      const int prio = (rr.prio + pstep) % kNumPriorities;
      auto& q = outq_[static_cast<std::size_t>(egress_port)]
                     [static_cast<std::size_t>(prio)];
      if (q.empty()) continue;
      Packet* head = q.front();
      if (any_waiting != nullptr) *any_waiting = true;
      if (!gate.allowed(*head, now, wake_at)) continue;
      if (!consume) return head;
      q.pop_front();
      outq_bytes_[static_cast<std::size_t>(egress_port)]
                 [static_cast<std::size_t>(prio)] -= head->size_bytes;
      rr.prio = (prio + 1) % kNumPriorities;
      if (arch_ == SwitchArch::kCioqRoundRobin)
        dispatch(egress_port);  // freed room: pull waiting input heads in
      return head;
    }
    return nullptr;
  }

  // Pure input-queued (ablation): pull competing input heads directly.
  const int ports = port_count();
  for (int pstep = 0; pstep < kNumPriorities; ++pstep) {
    const int prio = (rr.prio + pstep) % kNumPriorities;
    if ((active_prios_ & (1u << prio)) == 0) continue;
    for (int istep = 0; istep < ports; ++istep) {
      int in = rr.in + istep;
      if (in >= ports) in -= ports;  // rr.in + istep < 2*ports
      auto& q = inq_[static_cast<std::size_t>(in)][static_cast<std::size_t>(prio)];
      if (q.empty()) continue;
      Packet* head = q.front();
      if (head->out_port != egress_port) continue;
      if (any_waiting != nullptr) *any_waiting = true;
      if (!gate.allowed(*head, now, wake_at)) continue;  // HOL: FIFO waits
      if (!consume) return head;
      q.pop_front();
      rr.in = in + 1 == ports ? 0 : in + 1;
      rr.prio = (prio + 1) % kNumPriorities;
      if (!q.empty() && q.front()->out_port != egress_port) {
        // The new head targets a different egress; wake it once the current
        // call stack (which is inside that port's transmit path) unwinds.
        const int next_egress = q.front()->out_port;
        sched_ref().schedule_in(
            0, [this, next_egress] { port(next_egress).kick(); });
      }
      return head;
    }
  }
  return nullptr;
}

void SwitchNode::release_ingress(Packet& pkt) {
  assert(pkt.ingress_port >= 0);
  const int in_port = pkt.ingress_port;
  auto& bytes = ingress_bytes_[static_cast<std::size_t>(in_port)]
                              [static_cast<std::size_t>(pkt.priority)];
  bytes -= pkt.size_bytes;
  assert(bytes >= 0);
  pkt.ingress_port = -1;
  pkt.out_port = -1;
  network().trace_event(trace::EventType::kIngressDequeue, id(), in_port,
                        pkt.priority, pkt.id, bytes);
  if (fc()) fc()->on_ingress_dequeue(in_port, pkt.priority, pkt);
}

void SwitchNode::on_departure(Packet& pkt, int /*out_port*/) {
  ++forwarded_packets_;
  release_ingress(pkt);
}

void SwitchNode::reroute_stranded() {
  ensure_tables();
  const int ports = port_count();
  std::uint64_t kicked = 0;
  const auto drop = [this](Packet* p) {
    ++network().counters().failover_drops;
    network().trace_event(trace::EventType::kDrop, id(), p->out_port,
                          p->priority, p->id, p->size_bytes);
    release_ingress(*p);
    network().free_packet(p);
  };
  // Output queues behind dead links: pull everything out and requeue on the
  // freshly routed egress (arrival order preserved within each queue).
  for (int e = 0; e < ports; ++e) {
    if (port(e).link_up()) continue;
    for (int prio = 0; prio < kNumPriorities; ++prio) {
      auto& q = outq_[static_cast<std::size_t>(e)][static_cast<std::size_t>(prio)];
      if (q.empty()) continue;
      std::deque<Packet*> stranded;
      stranded.swap(q);
      outq_bytes_[static_cast<std::size_t>(e)][static_cast<std::size_t>(prio)] = 0;
      for (Packet* p : stranded) {
        const int out = route_for(*p);
        if (out < 0 || !port(out).link_up()) {
          drop(p);
          continue;
        }
        p->out_port = out;
        outq_[static_cast<std::size_t>(out)][static_cast<std::size_t>(prio)]
            .push_back(p);
        outq_bytes_[static_cast<std::size_t>(out)]
                   [static_cast<std::size_t>(prio)] += p->size_bytes;
        kicked |= 1ull << static_cast<unsigned>(out);
      }
    }
  }
  // Input-FIFO entries targeting dead egresses: retarget in place.
  for (int in = 0; in < ports; ++in) {
    for (int prio = 0; prio < kNumPriorities; ++prio) {
      auto& q = inq_[static_cast<std::size_t>(in)][static_cast<std::size_t>(prio)];
      for (std::size_t i = 0; i < q.size();) {
        Packet* p = q[i];
        if (p->out_port >= 0 && !port(p->out_port).link_up()) {
          const int out = route_for(*p);
          if (out < 0 || !port(out).link_up()) {
            drop(p);
            q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
            continue;
          }
          p->out_port = out;
          kicked |= 1ull << static_cast<unsigned>(out);
        }
        ++i;
      }
    }
  }
  for (int e = 0; e < ports; ++e) {
    if ((kicked & (1ull << static_cast<unsigned>(e))) == 0) continue;
    if (arch_ == SwitchArch::kCioqRoundRobin) {
      dispatch(e);
    } else {
      port(e).kick();
    }
  }
}

std::uint64_t SwitchNode::drain_egress(int egress) {
  ensure_tables();
  std::uint64_t dropped = 0;
  const auto drop = [this, &dropped, egress](Packet* p) {
    network().trace_event(trace::EventType::kDrop, id(), egress, p->priority,
                          p->id, p->size_bytes);
    release_ingress(*p);
    network().free_packet(p);
    ++dropped;
  };
  for (int prio = 0; prio < kNumPriorities; ++prio) {
    auto& q =
        outq_[static_cast<std::size_t>(egress)][static_cast<std::size_t>(prio)];
    while (!q.empty()) {
      Packet* p = q.front();
      q.pop_front();
      outq_bytes_[static_cast<std::size_t>(egress)]
                 [static_cast<std::size_t>(prio)] -= p->size_bytes;
      drop(p);
    }
  }
  // Input-FIFO heads wedged on this egress (CIOQ / input-queued archs).
  std::uint64_t kicked = 0;
  for (int in = 0; in < port_count(); ++in) {
    for (int prio = 0; prio < kNumPriorities; ++prio) {
      auto& q = inq_[static_cast<std::size_t>(in)][static_cast<std::size_t>(prio)];
      while (!q.empty() && q.front()->out_port == egress) {
        Packet* p = q.front();
        q.pop_front();
        drop(p);
      }
      if (!q.empty() && q.front()->out_port != egress)
        kicked |= 1ull << static_cast<unsigned>(q.front()->out_port);
    }
  }
  if (dropped == 0) return 0;
  if (arch_ == SwitchArch::kCioqRoundRobin) dispatch(egress);
  for (int e = 0; e < port_count(); ++e)
    if (kicked & (1ull << static_cast<unsigned>(e))) port(e).kick();
  return dropped;
}

std::uint64_t SwitchNode::drop_egress_head(int egress) {
  ensure_tables();
  const auto drop = [this, egress](Packet* p) {
    network().trace_event(trace::EventType::kDrop, id(), egress, p->priority,
                          p->id, p->size_bytes);
    release_ingress(*p);
    network().free_packet(p);
  };
  for (int prio = 0; prio < kNumPriorities; ++prio) {
    auto& q =
        outq_[static_cast<std::size_t>(egress)][static_cast<std::size_t>(prio)];
    if (q.empty()) continue;
    Packet* p = q.front();
    q.pop_front();
    outq_bytes_[static_cast<std::size_t>(egress)]
               [static_cast<std::size_t>(prio)] -= p->size_bytes;
    drop(p);
    if (arch_ == SwitchArch::kCioqRoundRobin) dispatch(egress);
    return 1;
  }
  // No output-queued packet: drop an input-FIFO head wedged on this egress.
  for (int in = 0; in < port_count(); ++in) {
    for (int prio = 0; prio < kNumPriorities; ++prio) {
      auto& q =
          inq_[static_cast<std::size_t>(in)][static_cast<std::size_t>(prio)];
      if (q.empty() || q.front()->out_port != egress) continue;
      Packet* p = q.front();
      q.pop_front();
      drop(p);
      if (!q.empty() && q.front()->out_port != egress)
        port(q.front()->out_port).kick();
      if (arch_ == SwitchArch::kCioqRoundRobin) dispatch(egress);
      return 1;
    }
  }
  return 0;
}

}  // namespace gfc::net
