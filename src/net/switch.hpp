// Switch model with per-(ingress port, priority) buffer accounting and a
// configurable queueing discipline:
//
// * kOutputQueuedFifo (default): one unbounded FIFO per (egress,
//   priority), admission in arrival order — the classic OMNET++/ns-3
//   switch model the paper's simulator corresponds to. A contended egress
//   splits bandwidth proportionally to arrival rate, so transient
//   overloads push ingress accounting to XOFF and pauses propagate: this
//   is the model that reproduces the paper's PFC/CBFC deadlocks.
// * kCioqRoundRobin: CIOQ — one FIFO per (ingress, priority) feeding a
//   *bounded* FIFO per (egress, priority), with per-egress round-robin
//   arbitration across ingress ports (a crossbar / DPDK-RX-polling
//   fabric). Gives per-source-fair shares; reproduces the paper's GFC
//   steady-state numbers exactly. Under fair arbitration a *static*
//   symmetric ring reaches a stable equilibrium instead of deadlocking —
//   an ablation finding this library documents (bench/ablation_arbitration).
// * kInputQueued: no output stage; egress ports pull competing input-queue
//   heads directly (pure VOQ-less input queueing). Ablation only.
//
// Either way a packet is charged to the (ingress port, priority) it arrived
// on until it finishes transmitting on its egress, which is what the
// PFC/CBFC/GFC downstream halves watch.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "net/node.hpp"

namespace gfc::net {

/// ECN marking config (RED-style on ingress occupancy; kmin == kmax &&
/// pmax == 1 gives the simple threshold marking used in the paper's DCQCN
/// study).
struct EcnConfig {
  bool enabled = false;
  std::int64_t kmin = 0;
  std::int64_t kmax = 0;
  double pmax = 1.0;
};

enum class SwitchArch {
  kOutputQueuedFifo,  // arrival-order shared egress FIFOs (default)
  kCioqRoundRobin,    // fair crossbar: input FIFOs + bounded egress FIFOs
  kInputQueued,       // pure input queueing (ablation)
};

class SwitchNode final : public Node {
 public:
  SwitchNode(Network& net, NodeId id, std::string name,
             std::int64_t ingress_buffer_bytes);

  void set_arch(SwitchArch a) { arch_ = a; }
  SwitchArch arch() const { return arch_; }

  /// CIOQ egress output-queue byte cap per (egress, priority).
  void set_egress_queue_cap(std::int64_t cap) { egress_cap_ = cap; }
  std::int64_t egress_queue_cap() const { return egress_cap_; }

  bool is_switch() const override { return true; }
  void receive(Packet* pkt, int in_port) override;
  void on_departure(Packet& pkt, int out_port) override;
  Packet* poll_data(int egress_port, sim::TimePs now, sim::TimePs* wake_at,
                    bool consume, bool* any_waiting) override;

  // --- forwarding ---------------------------------------------------------
  /// Equal-cost candidate out-ports toward destination host `dst`.
  void set_route(NodeId dst, std::vector<std::int32_t> out_ports);
  void clear_routes();
  /// Selected out-port for this packet (-1 if unroutable). ECMP choice is
  /// a deterministic hash of the flow's path salt.
  int route_for(const Packet& pkt) const;

  // --- buffers ------------------------------------------------------------
  std::int64_t ingress_buffer_bytes() const { return buffer_; }
  /// Occupancy charged to (port, prio): queued + being transmitted.
  std::int64_t ingress_bytes(int port, int prio) const {
    return ingress_bytes_[static_cast<std::size_t>(port)]
                         [static_cast<std::size_t>(prio)];
  }
  std::int64_t ingress_bytes_total(int port) const;

  /// Egress ports targeted by the current heads of ingress queue
  /// `in_port` (one per active priority) — deadlock wait-for edges.
  void head_targets(int in_port, std::vector<int>* out) const;

  void set_ecn(const EcnConfig& cfg) { ecn_ = cfg; }
  const EcnConfig& ecn() const { return ecn_; }

  std::uint64_t forwarded_packets() const { return forwarded_packets_; }

  // --- runtime failures ----------------------------------------------------
  /// Re-route every queued packet whose selected egress link is down (new
  /// ECMP choice among live candidates; FIFO order preserved per queue).
  /// Unroutable packets are dropped into Counters::failover_drops with
  /// their ingress accounting released. Call after routing tables have
  /// been updated for the failure.
  void reroute_stranded();

  /// Deadlock recovery: discard everything queued for `egress` (output
  /// queue plus wedged input-FIFO heads), releasing ingress accounting so
  /// flow control can recover. Returns the number of packets dropped.
  std::uint64_t drain_egress(int egress);

  /// Surgical deadlock break (DCFIT drop-one policy): discard only the
  /// single next-up packet queued for `egress` — lowest non-empty priority
  /// FIFO first, wedged input-FIFO heads as fallback — releasing its
  /// ingress accounting. Returns the number of packets dropped (0 or 1).
  std::uint64_t drop_egress_head(int egress);

 private:
  void account_enqueue(Packet& pkt, int in_port);
  /// Release (ingress port, priority) accounting and fire the flow-control
  /// dequeue hook — shared by departure and the runtime drop paths.
  void release_ingress(Packet& pkt);
  void maybe_mark_ecn(Packet& pkt, int in_port);
  void ensure_tables();

  std::int64_t buffer_;
  EcnConfig ecn_;
  std::vector<std::array<std::int64_t, kNumPriorities>> ingress_bytes_;
  /// Input FIFOs per (ingress port, priority).
  std::vector<std::array<std::deque<Packet*>, kNumPriorities>> inq_;
  /// CIOQ egress FIFOs per (egress port, priority), bounded by egress_cap_.
  std::vector<std::array<std::deque<Packet*>, kNumPriorities>> outq_;
  std::vector<std::array<std::int64_t, kNumPriorities>> outq_bytes_;
  /// Round-robin cursors per egress port.
  struct EgressRr {
    int prio = 0;
    int in = 0;
  };
  std::vector<EgressRr> rr_;
  /// Move eligible input-queue heads into the output queues of
  /// `seed_egress` (and any egress unblocked by the moves), with per-egress
  /// round-robin arbitration across ingress ports — a crossbar arbiter.
  /// Wakes egresses that received work (deferred to avoid re-entering the
  /// transmit path this may be called from).
  void dispatch(int seed_egress);
  /// Drain one queued kick mask (one dispatch's deferred egress wake-ups).
  void fire_kicks();

  std::uint32_t active_prios_ = 0;  // bitmask: priorities ever seen
  // Deferred-kick masks, FIFO, drained by the shared multishot kick timer —
  // one firing per queued mask, in the order the dispatches armed it.
  std::deque<std::uint64_t> kick_masks_;
  sim::TimerId kick_timer_{};
  SwitchArch arch_ = SwitchArch::kOutputQueuedFifo;
  std::int64_t egress_cap_ = 3000;  // 2 MTU
  /// Per-egress RR cursor over ingress ports (dispatch arbitration).
  std::vector<int> arb_rr_;
  // Route table, flattened: per-dst (offset, count) into one contiguous
  // candidate array — route_for reads two adjacent allocations instead of
  // chasing a heap vector per destination. Re-routing a dst appends fresh
  // slots (the orphaned old ones are build-time-bounded garbage).
  struct RouteRef {
    std::uint32_t off = 0;
    std::uint32_t n = 0;
  };
  std::vector<RouteRef> route_ref_;          // indexed by dst NodeId
  std::vector<std::int32_t> route_slots_;    // all candidate out-ports
  std::uint64_t forwarded_packets_ = 0;
};

}  // namespace gfc::net
