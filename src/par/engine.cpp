#include "par/engine.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace gfc::par {

namespace {
constexpr std::uint64_t kUnknown = std::numeric_limits<std::uint64_t>::max();
constexpr std::uint64_t kCtrMask = (std::uint64_t{1} << 48) - 1;

std::uint64_t& slot_for(std::vector<std::uint64_t>& v, std::uint64_t prov) {
  const auto i = static_cast<std::size_t>(prov & kCtrMask);
  if (i >= v.size()) v.resize(i + 1, kUnknown);
  return v[i];
}

void add_counters(net::Counters& dst, net::Counters& src) {
  dst.lossless_violations += src.lossless_violations;
  dst.route_drops += src.route_drops;
  dst.data_packets_delivered += src.data_packets_delivered;
  dst.data_bytes_delivered += src.data_bytes_delivered;
  dst.control_frames_sent += src.control_frames_sent;
  dst.flows_completed += src.flows_completed;
  dst.wire_lost_packets += src.wire_lost_packets;
  dst.failover_drops += src.failover_drops;
  src = net::Counters{};
}
}  // namespace

Engine::Engine(net::Network& net, const std::vector<int>& shard_of_node,
               int n_shards)
    : net_(net), main_(&net.sched()) {
  assert(n_shards >= 1);
  assert(shard_of_node.size() == net.node_count());

  // Lookahead: the minimum propagation delay anywhere in the fabric. Any
  // cross-shard influence rides a wire, so tau bounds the window width for
  // every partition (a boundary-only minimum would also be correct, but the
  // global minimum keeps the invariant partition-independent).
  tau_ = 0;
  for (std::size_t i = 0; i < net.channel_count(); ++i) {
    const sim::TimePs d = net.channel(i).prop_delay();
    if (tau_ == 0 || d < tau_) tau_ = d;
  }
  assert(tau_ > 0 && "sharded engine needs positive link propagation delay");

  // Continue the sequential counters exactly where the single-threaded
  // engine stood at attach time (the runner attaches before any traffic,
  // but this also keeps late attachment honest).
  gseq_ = main_->next_seq();
  gid_ = net.pool().total_created() + 1;

  shards_.reserve(static_cast<std::size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s) {
    auto st = std::make_unique<ShardState>(*this);
    st->index = static_cast<std::uint32_t>(s);
    st->ctx.sched = &st->sched;
    st->ctx.pool = &st->pool;
    st->ctx.counters = &st->counters;
    st->ctx.log = &st->log;
    st->ctx.trace_stage = &st->trace_stage;
    st->sched.set_seq_source(&gseq_);
    shards_.push_back(std::move(st));
  }

  // Re-point every node, then pre-register the wire timers so no worker
  // ever registers a callback on a foreign scheduler mid-window. The
  // runner attaches before traffic starts, so no flight timer exists yet.
  for (std::size_t i = 0; i < net.node_count(); ++i)
    net.node(static_cast<net::NodeId>(i))
        .set_shard_sched(
            &shards_[static_cast<std::size_t>(shard_of_node[i])]->sched);
  for (std::size_t i = 0; i < net.channel_count(); ++i)
    net.channel(i).ensure_flight_timer();

  // Coordinator-side direct context: routes to the Network-owned pool and
  // counters but draws sequence numbers / packet ids from the shared
  // global counters, and feeds completion splits into the agenda. It stays
  // installed on this thread for the engine's whole lifetime (setup that
  // runs after attachment — fc modules, flow creation — is part of the
  // deterministic sequence stream too).
  direct_ctx_.sched = main_;
  direct_ctx_.pool = &net.pool();
  direct_ctx_.counters = &net.counters();
  direct_ctx_.gseq = &gseq_;
  direct_ctx_.split_env = this;
  direct_ctx_.on_split = [](void* env, sim::TimePs t, std::uint64_t g) {
    static_cast<Engine*>(env)->agenda_.insert({t, g});
  };
  main_->set_seq_source(&gseq_);
  net.pool().set_id_source(&gid_);
  net::set_shard_ctx(&direct_ctx_);
  net.set_par_hook(this);

  for (auto& sh : shards_)
    sh->thread = std::thread([this, st = sh.get()] { worker(*st); });
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& sh : shards_)
    if (sh->thread.joinable()) sh->thread.join();

  net_.set_par_hook(nullptr);
  net::set_shard_ctx(nullptr);
  net_.pool().set_id_source(nullptr);
  main_->set_seq_source(nullptr);
  for (std::size_t i = 0; i < net_.node_count(); ++i)
    net_.node(static_cast<net::NodeId>(i)).set_shard_sched(main_);
}

std::uint64_t Engine::executed_events() const {
  // Shard counts come from the progress atomics, not the schedulers'
  // plain counters: this is called from worker threads (the watchdog
  // cancel poll) while other shards are mid-window. The atomics are
  // refreshed at every poll interval and are exact at every barrier and
  // boundary step, where the deterministic readers (beacons, summaries)
  // run.
  std::uint64_t n = main_->executed_events();
  for (const auto& sh : shards_)
    n += sh->progress.load(std::memory_order_relaxed);
  return n;
}

bool Engine::poll_tramp(void* env) {
  auto* st = static_cast<ShardState*>(env);
  Engine& e = st->engine;
  st->progress.store(st->sched.executed_events(), std::memory_order_relaxed);
  if (e.abort_flag_.load(std::memory_order_relaxed)) return true;
  return e.cancel_poll_ != nullptr && e.cancel_poll_(e.cancel_env_);
}

void Engine::worker(ShardState& st) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    sim::TimePs end_t;
    std::uint64_t end_seq;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      end_t = win_end_t_;
      end_seq = win_end_seq_;
    }
    net::set_shard_ctx(&st.ctx);
    st.sched.begin_window(&st.log, end_t, end_seq);
    st.pool.begin_window(&st.log, st.index);
    const bool ok = st.sched.run_window(&Engine::poll_tramp, &st);
    st.pool.end_window();
    st.sched.end_window();
    net::set_shard_ctx(nullptr);
    if (!ok) abort_flag_.store(true, std::memory_order_relaxed);
    st.progress.store(st.sched.executed_events(), std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void Engine::run_parallel_window(sim::TimePs end_t, std::uint64_t end_seq) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    win_end_t_ = end_t;
    win_end_seq_ = end_seq;
    pending_ = static_cast<int>(shards_.size());
    ++epoch_;
  }
  cv_work_.notify_all();
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return pending_ == 0; });
  }
  if (abort_flag_.load(std::memory_order_relaxed)) handle_abort();
  merge();
}

void Engine::merge() {
  // K-way replay of the shard logs in true global (t, key) order. See the
  // header comment for why the minimum known-key head is always the global
  // minimum.
  for (auto& sh : shards_) {
    sh->head = 0;
    sh->true_key.clear();
    sh->true_id.clear();
  }
  for (;;) {
    ShardState* best = nullptr;
    sim::TimePs best_t = 0;
    std::uint64_t best_k = 0;
    [[maybe_unused]] bool remaining = false;  // assert-only in NDEBUG builds
    for (auto& sh : shards_) {
      if (sh->head >= sh->log.groups.size()) continue;
      remaining = true;
      const sim::WinGroup& g = sh->log.groups[sh->head];
      std::uint64_t k = g.key;
      if (k & sim::kProvSeqBit) {
        const auto i = static_cast<std::size_t>(k & kCtrMask);
        if (i >= sh->true_key.size() || sh->true_key[i] == kUnknown)
          continue;  // creator not replayed yet: cannot be the global min
        k = sh->true_key[i];
      }
      if (best == nullptr || g.t < best_t || (g.t == best_t && k < best_k)) {
        best = sh.get();
        best_t = g.t;
        best_k = k;
      }
    }
    if (best == nullptr) {
      assert(!remaining && "merge wedged: no known-key head");
      break;
    }
    const sim::WinGroup& g = best->log.groups[best->head];
    for (std::uint32_t ri = g.first; ri < g.first + g.n; ++ri) {
      const sim::WinRecord& r = best->log.recs[ri];
      switch (r.kind) {
        case sim::WinRecord::kCall: {
          const std::uint64_t seq = gseq_++;
          if ((r.flags & sim::WinRecord::kDeferred) == 0) {
            // In-window event: publish its true key for the k-way merge.
            slot_for(best->true_key, r.prov) = seq;
            break;
          }
          auto* tgt = r.target != nullptr
                          ? static_cast<sim::Scheduler*>(r.target)
                          : &best->sched;
          tgt->apply_logged_insert(r.slot, r.gen, r.t, seq,
                                   (r.flags & sim::WinRecord::kForeignLive) !=
                                       0);
          if (r.flags & sim::WinRecord::kSplit) agenda_.insert({r.t, seq});
          break;
        }
        case sim::WinRecord::kAlloc: {
          const std::uint64_t id = gid_++;
          slot_for(best->true_id, r.prov) = id;
          auto* pkt = static_cast<net::Packet*>(r.target);
          // Freed-and-reacquired packets carry a newer provisional id; the
          // later kAlloc record patches those.
          if (pkt->id == r.prov) pkt->id = id;
          break;
        }
        case sim::WinRecord::kTrace: {
          trace::TraceEvent e = best->trace_stage[r.aux];
          if (e.id & sim::kProvSeqBit) {
            // Provisional packet id: the alloc record always precedes any
            // use, so the true id is already known.
            const std::uint64_t t = slot_for(best->true_id, e.id);
            assert(t != kUnknown);
            e.id = t;
          }
          net_.emit_trace(e);
          break;
        }
        case sim::WinRecord::kDelivery:
          net_.replay_delivery(r);
          break;
      }
    }
    ++best->head;
  }
  for (auto& sh : shards_) {
    add_counters(net_.counters(), sh->counters);
    sh->log.clear();
    sh->trace_stage.clear();
  }
  // Move cross-shard wire traffic into the destination FIFOs. Per-channel
  // arrival order is FIFO, so appending in staging (source send) order
  // matches the merged fire order.
  for (std::size_t i = 0; i < net_.channel_count(); ++i)
    net_.channel(i).splice_staged();
}

void Engine::run_until(sim::TimePs t_end) {
  main_->clear_stop();
  for (;;) {
    if (cancel_poll_ != nullptr && cancel_poll_(cancel_env_)) handle_abort();

    // Global minimum pending key across every scheduler.
    sim::Scheduler* owner = nullptr;
    sim::TimePs mt = 0;
    std::uint64_t ms = 0;
    auto consider = [&](sim::Scheduler* s) {
      sim::TimePs t;
      std::uint64_t q;
      if (!s->peek_next_key(&t, &q)) return;
      if (owner == nullptr || t < mt || (t == mt && q < ms)) {
        owner = s;
        mt = t;
        ms = q;
      }
    };
    consider(main_);
    for (auto& sh : shards_) consider(&sh->sched);
    if (owner == nullptr || mt > t_end) break;

    // Boundary key: the next event the coordinator must run directly
    // (main-scheduler work, or a predicted completion split).
    bool b_any = false;
    sim::TimePs b_t = 0;
    std::uint64_t b_s = 0;
    {
      sim::TimePs t;
      std::uint64_t q;
      if (main_->peek_next_key(&t, &q)) {
        b_any = true;
        b_t = t;
        b_s = q;
      }
      if (!agenda_.empty()) {
        const auto [at, as] = *agenda_.begin();
        if (!b_any || at < b_t || (at == b_t && as < b_s)) {
          b_any = true;
          b_t = at;
          b_s = as;
        }
      }
    }
    if (b_any && (b_t < mt || (b_t == mt && b_s < ms))) {
      // A boundary key below every pending event can only be a stale
      // agenda entry (its event was cancelled); drop it.
      agenda_.erase(agenda_.begin());
      continue;
    }

    if (b_any && b_t == mt && b_s == ms) {
      // Boundary step: single-threaded, with every clock at the
      // sequential value so now()-dependent callbacks match exactly.
      main_->advance_now(mt);
      for (auto& sh : shards_) sh->sched.advance_now(mt);
      if (!agenda_.empty() && agenda_.begin()->first == mt &&
          agenda_.begin()->second == ms)
        agenda_.erase(agenda_.begin());
      owner->step();
      if (main_->stop_requested()) return;  // mirror run_until's early stop
      continue;
    }

    // Parallel window starting at the global minimum. The end key is the
    // tightest of: the tau lookahead, the next boundary event (windows
    // must not run past coordinator work), and the run horizon. Always
    // strictly above (mt, ms), so every window executes at least one
    // event.
    sim::TimePs end_t = mt + tau_;
    std::uint64_t end_seq = 0;
    if (t_end + 1 < end_t) end_t = t_end + 1;
    if (b_any && b_t < end_t) {
      end_t = b_t;
      end_seq = b_s;
    }
    run_parallel_window(end_t, end_seq);
  }
  // Tail: mirror the sequential clock semantics (advance to t_end, sweep
  // the wheel cursor) on every scheduler. Nothing executes — every pending
  // key is past t_end.
  for (auto& sh : shards_) sh->sched.run_until(t_end);
  main_->run_until(t_end);
}

void Engine::handle_abort() {
  abort_flag_.store(false, std::memory_order_relaxed);
  if (abort_handler_) abort_handler_();
  throw std::runtime_error("par::Engine: run aborted by cancellation poll");
}

}  // namespace gfc::par
