// Sharded parallel discrete-event engine (conservative tau-lookahead PDES).
//
// The fabric is partitioned at switch granularity (topo::partition); every
// node's events run on its shard's own sim::Scheduler inside a dedicated
// worker thread. Execution alternates between
//
//  * parallel windows: all shards execute their pending events with
//    timestamps in [t_min, t_end) concurrently, where t_end - t_min <= tau,
//    the minimum link propagation delay anywhere in the fabric. Within a
//    window a shard can only affect another shard through a wire, and every
//    wire crossing takes >= tau — so nothing a shard does in a window can
//    change what another shard must execute in that same window. Windows
//    run with provisional event keys and log every globally-visible side
//    effect (sequence-taking scheduler calls, packet-id allocations, trace
//    records, delivery notifications) into per-shard WindowLogs.
//
//  * boundary steps: events on the main (Network) scheduler — stats
//    beacons, flow starts, deadlock probes — and predicted flow-completion
//    arrivals are executed one at a time by the coordinator, single
//    threaded, with every shard clock advanced to the event's timestamp, so
//    they observe exactly the state the sequential engine would.
//
// At each window barrier the coordinator replays the shard logs in true
// global order and assigns real sequence numbers and packet ids from the
// shared global counters (the "merge"). Determinism argument:
//  * A shard executes its window events in (t, key) order, where in-window
//    provisional keys sort after every pre-window true key at the same
//    timestamp — which is exactly the global order restricted to the shard,
//    because sequence numbers grow monotonically and an in-window event's
//    true sequence exceeds every sequence assigned before the window.
//  * The merge is a k-way merge over the per-shard group streams: among the
//    heads whose keys are known (true keys, or provisional keys whose
//    creating call was already replayed), pick the minimum (t, key). The
//    globally next group always has a known key — its creating call either
//    predates the window or belongs to an earlier group of the same merge —
//    and no unknown-key head can precede a known minimum (its creator is a
//    not-yet-replayed group that itself precedes it). Induction gives the
//    exact sequential replay order, so sequence numbers, packet ids, trace
//    bytes, stat updates and counter sums come out byte-identical to the
//    single-threaded engine, at any shard count and under any thread
//    schedule.
//
// Modeled after the barrier-window scheme of Graphite's cycle-level
// simulator (clock_skew_minimization), with the merge-replay layer added to
// get bit-exact, shard-count-independent outputs rather than just bounded
// skew.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/window.hpp"

namespace gfc::par {

class Engine final : public net::ParHook {
 public:
  /// Attach to `net`: re-points every node at its shard's scheduler,
  /// pre-registers wire timers, switches all schedulers and the packet
  /// pool to the shared global counters, installs the ParHook, and spawns
  /// one worker thread per shard. `shard_of_node[i]` is the shard owning
  /// net node i (see topo::partition). Must be attached before any
  /// simulation traffic runs (the runner attaches right after the links
  /// are wired); detaching (destruction) restores the single-threaded
  /// wiring.
  Engine(net::Network& net, const std::vector<int>& shard_of_node,
         int n_shards);
  ~Engine() override;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  void run_until(sim::TimePs t_end) override;
  std::uint64_t executed_events() const override;
  std::uint64_t packets_created() const override { return gid_ - 1; }

  int shard_count() const { return static_cast<int>(shards_.size()); }
  sim::TimePs tau() const { return tau_; }

  /// Install a cancellation/heartbeat poll: every worker calls it every
  /// 4096 executed events during a window (and the coordinator between
  /// steps). Returning true aborts the run — the abort handler is invoked
  /// on the coordinator thread. Must be thread-safe; this is how a wedged
  /// single shard still honors the exp watchdog's --trial-timeout.
  void set_cancel_poll(bool (*fn)(void*), void* env) {
    cancel_poll_ = fn;
    cancel_env_ = env;
  }
  /// Invoked on the coordinator when a window aborts (cancel poll returned
  /// true on any shard); expected to throw. Default: std::runtime_error.
  void set_abort_handler(std::function<void()> fn) {
    abort_handler_ = std::move(fn);
  }

  /// Events this shard has executed — updated at every poll interval and
  /// barrier, readable from any thread (watchdog diagnostics).
  std::uint64_t shard_executed(int s) const {
    return shards_[static_cast<std::size_t>(s)]->progress.load(
        std::memory_order_relaxed);
  }

 private:
  struct ShardState {
    explicit ShardState(Engine& e) : engine(e) {}
    Engine& engine;
    std::uint32_t index = 0;
    sim::Scheduler sched;
    net::PacketPool pool;
    net::Counters counters;
    sim::WindowLog log;
    std::vector<trace::TraceEvent> trace_stage;
    net::ShardContext ctx;
    // Per-window merge scratch: provisional event-key ctr -> true sequence
    // and provisional packet-id ctr -> true id (UINT64_MAX = unknown).
    std::vector<std::uint64_t> true_key;
    std::vector<std::uint64_t> true_id;
    std::size_t head = 0;  // merge cursor into log.groups
    std::atomic<std::uint64_t> progress{0};
    std::thread thread;
  };

  static bool poll_tramp(void* env);
  void worker(ShardState& st);
  void run_parallel_window(sim::TimePs end_t, std::uint64_t end_seq);
  void merge();
  [[noreturn]] void handle_abort();

  net::Network& net_;
  sim::Scheduler* main_;
  sim::TimePs tau_ = 0;
  std::uint64_t gseq_ = 0;  // shared global event-sequence counter
  std::uint64_t gid_ = 1;   // shared global packet-id counter
  net::ShardContext direct_ctx_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  /// Predicted flow-completion arrivals (t, seq): boundary steps the
  /// coordinator must execute single-threaded.
  std::set<std::pair<sim::TimePs, std::uint64_t>> agenda_;

  // Window barrier.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
  sim::TimePs win_end_t_ = 0;
  std::uint64_t win_end_seq_ = 0;
  std::atomic<bool> abort_flag_{false};

  bool (*cancel_poll_)(void*) = nullptr;
  void* cancel_env_ = nullptr;
  std::function<void()> abort_handler_;
};

}  // namespace gfc::par
