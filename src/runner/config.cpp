#include "runner/config.hpp"

#include <algorithm>
#include <cassert>

namespace gfc::runner {

FcSetup FcSetup::pfc(std::int64_t xoff, std::int64_t xon) {
  FcSetup s;
  s.kind = FcKind::kPfc;
  s.xoff = xoff;
  s.xon = xon;
  return s;
}

FcSetup FcSetup::cbfc(sim::TimePs period) {
  FcSetup s;
  s.kind = FcKind::kCbfc;
  s.period = period;
  return s;
}

FcSetup FcSetup::gfc_buffer(std::int64_t b1, std::int64_t bm) {
  FcSetup s;
  s.kind = FcKind::kGfcBuffer;
  s.b1 = b1;
  s.bm = bm;
  return s;
}

FcSetup FcSetup::gfc_time(std::int64_t b0, std::int64_t bm, sim::TimePs period) {
  FcSetup s;
  s.kind = FcKind::kGfcTime;
  s.b0 = b0;
  s.bm = bm;
  s.period = period;
  return s;
}

FcSetup FcSetup::gfc_conceptual(std::int64_t b0, std::int64_t bm,
                                std::int64_t min_delta) {
  FcSetup s;
  s.kind = FcKind::kGfcConceptual;
  s.b0 = b0;
  s.bm = bm;
  s.conceptual_min_delta = min_delta;
  return s;
}

namespace {

struct Derived {
  FcSetup setup;
  bool feasible = true;
};

Derived derive_impl(FcKind kind, std::int64_t buffer, sim::Rate c,
                    sim::TimePs tau, std::int64_t mtu) {
  switch (kind) {
    case FcKind::kNone:
      return {FcSetup::none(), true};
    case FcKind::kPfc: {
      // C*tau of in-flight absorption plus packet-granularity slack: one
      // MTU already serializing when the PAUSE is triggered, one more that
      // may start before it lands, and the pause frame itself.
      const std::int64_t headroom =
          core::bytes_over(c, tau) + 2 * mtu + 2 * net::kControlFrameBytes;
      const std::int64_t xoff = std::max<std::int64_t>(buffer - headroom, 2 * mtu + 1);
      return {FcSetup::pfc(xoff, std::max<std::int64_t>(xoff - 2 * mtu, 1)),
              true};
    }
    case FcKind::kCbfc:
      return {FcSetup::cbfc(core::cbfc_recommended_period(c)), true};
    case FcKind::kGfcBuffer: {
      // The paper's bounds are fluid-model ("B_m can be set equal to B");
      // packets are not fluid, and the rate floor means a saturated queue
      // can creep past B_m slowly, so leave a few MTUs of slack.
      const std::int64_t bm = buffer - 4 * mtu;
      const std::int64_t b1 = core::b1_bound_buffer(bm, c, tau) - 2 * mtu;
      return {FcSetup::gfc_buffer(b1, bm), b1 > 0};
    }
    case FcKind::kGfcTime: {
      const sim::TimePs period = core::cbfc_recommended_period(c);
      const std::int64_t bm = buffer - 4 * mtu;
      const std::int64_t b0 =
          core::b0_bound_timebased(bm, c, tau, period) - 2 * mtu;
      return {FcSetup::gfc_time(b0, bm, period), b0 > 0};
    }
    case FcKind::kGfcConceptual: {
      const std::int64_t bm = buffer - 4 * mtu;
      const std::int64_t b0 = core::b0_bound_conceptual(bm, c, tau) - 2 * mtu;
      return {FcSetup::gfc_conceptual(b0, bm), b0 > 0};
    }
  }
  return {FcSetup::none(), true};
}

}  // namespace

FcSetup FcSetup::derive(FcKind kind, std::int64_t buffer, sim::Rate c,
                        sim::TimePs tau, std::int64_t mtu) {
  const Derived d = derive_impl(kind, buffer, c, tau, mtu);
  assert(d.feasible && "buffer too small for this kind's safety bound");
  return d.setup;
}

std::optional<FcSetup> FcSetup::try_derive(FcKind kind, std::int64_t buffer,
                                           sim::Rate c, sim::TimePs tau,
                                           std::int64_t mtu) {
  const Derived d = derive_impl(kind, buffer, c, tau, mtu);
  if (!d.feasible) return std::nullopt;
  return d.setup;
}

}  // namespace gfc::runner
