// Experiment configuration: link parameters plus the flow-control setup,
// with factory helpers that derive safe GFC parameters from the paper's
// bounds (Theorems 4.1 / 5.1, Sec. 5.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "analyze/mode.hpp"
#include "core/mapping.hpp"
#include "core/params.hpp"
#include "fault/fault.hpp"
#include "net/switch.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace gfc::runner {

enum class FcKind {
  kNone,
  kPfc,
  kCbfc,
  kGfcBuffer,
  kGfcTime,
  kGfcConceptual,
};

// Inline so header-only consumers (the static analyzer) need no
// gfc_runner symbols.
inline const char* fc_name(FcKind kind) {
  switch (kind) {
    case FcKind::kNone: return "none";
    case FcKind::kPfc: return "PFC";
    case FcKind::kCbfc: return "CBFC";
    case FcKind::kGfcBuffer: return "GFC-buffer";
    case FcKind::kGfcTime: return "GFC-time";
    case FcKind::kGfcConceptual: return "GFC-conceptual";
  }
  return "?";
}

struct LinkConfig {
  sim::Rate rate = sim::gbps(10);
  sim::TimePs prop_delay = sim::us(1);
  std::int64_t mtu = 1500;
};

struct FcSetup {
  FcKind kind = FcKind::kNone;

  // PFC
  std::int64_t xoff = 0;
  std::int64_t xon = 0;

  // CBFC and time-based GFC: feedback period T.
  sim::TimePs period = 0;

  // GFC buffer-based: first threshold B_1; all: B_m.
  std::int64_t b1 = 0;
  std::int64_t bm = 0;

  // GFC time-based / conceptual: linear-mapping knee B_0.
  std::int64_t b0 = 0;

  sim::Rate min_rate = core::kDefaultMinRate;
  std::int64_t conceptual_min_delta = 512;

  // Self-healing knobs (0 = off = seed behavior; see the fault studies):
  /// PFC: 802.1Qbb pause expiry + downstream refresh cadence.
  sim::TimePs pfc_pause_timeout = 0;
  /// CBFC: extra full-credit re-advertisement period.
  sim::TimePs cbfc_sync_period = 0;

  static FcSetup none() { return FcSetup{}; }
  static FcSetup pfc(std::int64_t xoff, std::int64_t xon);
  static FcSetup cbfc(sim::TimePs period);
  static FcSetup gfc_buffer(std::int64_t b1, std::int64_t bm);
  static FcSetup gfc_time(std::int64_t b0, std::int64_t bm, sim::TimePs period);
  static FcSetup gfc_conceptual(std::int64_t b0, std::int64_t bm,
                                std::int64_t min_delta = 512);

  /// Derive paper-compliant parameters from the buffer size, link rate and
  /// worst-case tau: PFC gets XOFF = buffer - C*tau headroom (XON 2 MTU
  /// lower), CBFC the recommended 65535 B period, buffer-based GFC
  /// B_1 = B_m - 2*C*tau, time-based GFC B_0 from Theorem 5.1.
  /// Asserts the buffer admits a positive threshold (use try_derive when
  /// sweeping buffers that may be too small for the given tau).
  static FcSetup derive(FcKind kind, std::int64_t buffer, sim::Rate c,
                        sim::TimePs tau, std::int64_t mtu = 1500);

  /// Like derive(), but returns nullopt when the Theorem 4.1 / 5.1 / B_1
  /// bound (with derive()'s packet-granularity slack) leaves no positive
  /// threshold — i.e. the buffer is too small to run that GFC variant
  /// safely at this rate and tau. PFC/CBFC/none are always derivable.
  static std::optional<FcSetup> try_derive(FcKind kind, std::int64_t buffer,
                                           sim::Rate c, sim::TimePs tau,
                                           std::int64_t mtu = 1500);
};

struct ScenarioConfig {
  LinkConfig link;
  std::int64_t switch_buffer = 300 * 1000;  // per (ingress port, priority)
  /// Switch architecture. kOutputQueuedFifo is the literature-standard
  /// simulator model and the one under which the paper's deadlocks form;
  /// kCioqRoundRobin is a fair crossbar (see bench/ablation_arbitration).
  net::SwitchArch arch = net::SwitchArch::kOutputQueuedFifo;
  std::int64_t egress_queue_bytes = 3000;  // CIOQ egress cap (2 MTU)
  FcSetup fc;
  /// Control-frame processing latency t_r (also used to pad tau up to
  /// testbed-like values).
  sim::TimePs control_delay = sim::us(1);
  net::EcnConfig ecn;  // disabled unless a DCQCN study turns it on
  std::uint64_t seed = 1;

  /// Runtime control-frame fault injection; all-zero rates (the default)
  /// install no hook and leave every event identical to the seed.
  fault::FaultConfig fault;

  /// Binary event tracing (src/trace/). Disabled (the default) costs one
  /// null-pointer branch per instrumentation site.
  trace::TraceOptions trace;

  /// Static pre-flight analysis (src/analyze/), run when a Fabric installs
  /// its routing: kWarn reports deadlock risks on stderr, kFail throws
  /// analyze::PreflightError on an at-risk verdict. Off by default.
  analyze::PreflightMode preflight = analyze::PreflightMode::kOff;

  /// Worst-case feedback latency for these parameters (Eq. 6 with this
  /// config's processing delay).
  sim::TimePs tau() const {
    return core::worst_case_tau(core::TauParams{
        link.rate, link.mtu, link.prop_delay, control_delay});
  }
};

}  // namespace gfc::runner
