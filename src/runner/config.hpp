// Experiment configuration: link parameters plus the flow-control setup,
// with factory helpers that derive safe GFC parameters from the paper's
// bounds (Theorems 4.1 / 5.1, Sec. 5.4).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "analyze/mode.hpp"
#include "core/mapping.hpp"
#include "core/params.hpp"
#include "fault/fault.hpp"
#include "net/switch.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace gfc::runner {

enum class FcKind {
  kNone,
  kPfc,
  kCbfc,
  kGfcBuffer,
  kGfcTime,
  kGfcConceptual,
  kDcfit,  // classic PFC + DCFIT detect-and-break (src/mech/dcfit.*)
};

/// DCFIT deadlock-break policy, applied at the switch whose trigger
/// returned (see src/mech/dcfit.hpp).
enum class DcfitBreak {
  kDropOne,  // drop the next-up packet of the deadlocked egress
  kBypass,   // temporarily open the paused gate (risks lossless violations)
};

// Inline so header-only consumers (the static analyzer) need no
// gfc_runner symbols.
inline const char* fc_name(FcKind kind) {
  switch (kind) {
    case FcKind::kNone: return "none";
    case FcKind::kPfc: return "PFC";
    case FcKind::kCbfc: return "CBFC";
    case FcKind::kGfcBuffer: return "GFC-buffer";
    case FcKind::kGfcTime: return "GFC-time";
    case FcKind::kGfcConceptual: return "GFC-conceptual";
    case FcKind::kDcfit: return "DCFIT";
  }
  return "?";
}

struct LinkConfig {
  sim::Rate rate = sim::gbps(10);
  sim::TimePs prop_delay = sim::us(1);
  std::int64_t mtu = 1500;
};

struct FcSetup {
  FcKind kind = FcKind::kNone;

  // PFC
  std::int64_t xoff = 0;
  std::int64_t xon = 0;

  // CBFC and time-based GFC: feedback period T.
  sim::TimePs period = 0;

  // GFC buffer-based: first threshold B_1; all: B_m.
  std::int64_t b1 = 0;
  std::int64_t bm = 0;

  // GFC time-based / conceptual: linear-mapping knee B_0.
  std::int64_t b0 = 0;

  sim::Rate min_rate = core::kDefaultMinRate;
  std::int64_t conceptual_min_delta = 512;

  // Self-healing knobs (0 = off = seed behavior; see the fault studies):
  /// PFC: 802.1Qbb pause expiry + downstream refresh cadence.
  sim::TimePs pfc_pause_timeout = 0;
  /// CBFC: extra full-credit re-advertisement period.
  sim::TimePs cbfc_sync_period = 0;

  // DCFIT (kind == kDcfit): detect-and-break on top of classic PFC.
  DcfitBreak dcfit_break = DcfitBreak::kDropOne;
  /// Trigger-refresh cadence: outstanding pauses are re-sent with the
  /// current trigger every period, recirculating triggers around a wedged
  /// PFC dependency cycle until one returns home.
  sim::TimePs dcfit_period = sim::us(20);

  /// Route restriction request honored by the scenario builders (any base
  /// mechanism): replace the scenario's routing with the up*/down* CBD-free
  /// tables from mech::cbd_free_routes before the fabric installs it.
  bool cbd_free_routing = false;

  static FcSetup none() { return FcSetup{}; }
  static FcSetup pfc(std::int64_t xoff, std::int64_t xon) {
    FcSetup s;
    s.kind = FcKind::kPfc;
    s.xoff = xoff;
    s.xon = xon;
    return s;
  }
  static FcSetup cbfc(sim::TimePs period) {
    FcSetup s;
    s.kind = FcKind::kCbfc;
    s.period = period;
    return s;
  }
  static FcSetup gfc_buffer(std::int64_t b1, std::int64_t bm) {
    FcSetup s;
    s.kind = FcKind::kGfcBuffer;
    s.b1 = b1;
    s.bm = bm;
    return s;
  }
  static FcSetup gfc_time(std::int64_t b0, std::int64_t bm,
                          sim::TimePs period) {
    FcSetup s;
    s.kind = FcKind::kGfcTime;
    s.b0 = b0;
    s.bm = bm;
    s.period = period;
    return s;
  }
  static FcSetup gfc_conceptual(std::int64_t b0, std::int64_t bm,
                                std::int64_t min_delta = 512) {
    FcSetup s;
    s.kind = FcKind::kGfcConceptual;
    s.b0 = b0;
    s.bm = bm;
    s.conceptual_min_delta = min_delta;
    return s;
  }
  static FcSetup dcfit(std::int64_t xoff, std::int64_t xon,
                       DcfitBreak brk = DcfitBreak::kDropOne) {
    FcSetup s = pfc(xoff, xon);
    s.kind = FcKind::kDcfit;
    s.dcfit_break = brk;
    return s;
  }

  /// Derive paper-compliant parameters from the buffer size, link rate and
  /// worst-case tau: PFC gets XOFF = buffer - C*tau headroom (XON 2 MTU
  /// lower), CBFC the recommended 65535 B period, buffer-based GFC
  /// B_1 = B_m - 2*C*tau, time-based GFC B_0 from Theorem 5.1. DCFIT uses
  /// the PFC thresholds (its triggers ride on the PAUSE frames).
  /// Asserts the buffer admits a positive threshold (use try_derive when
  /// sweeping buffers that may be too small for the given tau).
  /// Defined inline so header-only consumers (the static analyzer, the
  /// src/mech registry) need no gfc_runner symbols.
  static FcSetup derive(FcKind kind, std::int64_t buffer, sim::Rate c,
                        sim::TimePs tau, std::int64_t mtu = 1500);

  /// Like derive(), but returns nullopt when the Theorem 4.1 / 5.1 / B_1
  /// bound (with derive()'s packet-granularity slack) leaves no positive
  /// threshold — i.e. the buffer is too small to run that GFC variant
  /// safely at this rate and tau. PFC/CBFC/DCFIT/none are always derivable.
  static std::optional<FcSetup> try_derive(FcKind kind, std::int64_t buffer,
                                           sim::Rate c, sim::TimePs tau,
                                           std::int64_t mtu = 1500);
};

namespace detail {
/// (setup, feasible): the setup is always populated — derive() hands it
/// out even when the bound is violated (assert-guarded), matching the
/// "check against a deliberately out-of-bound parameter" uses; try_derive
/// turns infeasible into nullopt.
inline std::pair<FcSetup, bool> derive_fc(FcKind kind, std::int64_t buffer,
                                          sim::Rate c, sim::TimePs tau,
                                          std::int64_t mtu) {
  switch (kind) {
    case FcKind::kNone:
      return {FcSetup::none(), true};
    case FcKind::kPfc:
    case FcKind::kDcfit: {
      // C*tau of in-flight absorption plus packet-granularity slack: one
      // MTU already serializing when the PAUSE is triggered, one more that
      // may start before it lands, and the pause frame itself.
      const std::int64_t headroom =
          core::bytes_over(c, tau) + 2 * mtu + 2 * net::kControlFrameBytes;
      const std::int64_t xoff =
          std::max<std::int64_t>(buffer - headroom, 2 * mtu + 1);
      FcSetup s =
          FcSetup::pfc(xoff, std::max<std::int64_t>(xoff - 2 * mtu, 1));
      s.kind = kind;
      return {s, true};
    }
    case FcKind::kCbfc:
      return {FcSetup::cbfc(core::cbfc_recommended_period(c)), true};
    case FcKind::kGfcBuffer: {
      // The paper's bounds are fluid-model ("B_m can be set equal to B");
      // packets are not fluid, and the rate floor means a saturated queue
      // can creep past B_m slowly, so leave a few MTUs of slack.
      const std::int64_t bm = buffer - 4 * mtu;
      const std::int64_t b1 = core::b1_bound_buffer(bm, c, tau) - 2 * mtu;
      return {FcSetup::gfc_buffer(b1, bm), b1 > 0};
    }
    case FcKind::kGfcTime: {
      const sim::TimePs period = core::cbfc_recommended_period(c);
      const std::int64_t bm = buffer - 4 * mtu;
      const std::int64_t b0 =
          core::b0_bound_timebased(bm, c, tau, period) - 2 * mtu;
      return {FcSetup::gfc_time(b0, bm, period), b0 > 0};
    }
    case FcKind::kGfcConceptual: {
      const std::int64_t bm = buffer - 4 * mtu;
      const std::int64_t b0 = core::b0_bound_conceptual(bm, c, tau) - 2 * mtu;
      return {FcSetup::gfc_conceptual(b0, bm), b0 > 0};
    }
  }
  return {FcSetup::none(), true};
}
}  // namespace detail

inline FcSetup FcSetup::derive(FcKind kind, std::int64_t buffer, sim::Rate c,
                               sim::TimePs tau, std::int64_t mtu) {
  const auto [setup, feasible] = detail::derive_fc(kind, buffer, c, tau, mtu);
  assert(feasible && "buffer too small for this kind's safety bound");
  (void)feasible;
  return setup;
}

inline std::optional<FcSetup> FcSetup::try_derive(FcKind kind,
                                                  std::int64_t buffer,
                                                  sim::Rate c, sim::TimePs tau,
                                                  std::int64_t mtu) {
  const auto [setup, feasible] = detail::derive_fc(kind, buffer, c, tau, mtu);
  if (!feasible) return std::nullopt;
  return setup;
}

struct ScenarioConfig {
  LinkConfig link;
  std::int64_t switch_buffer = 300 * 1000;  // per (ingress port, priority)
  /// Switch architecture. kOutputQueuedFifo is the literature-standard
  /// simulator model and the one under which the paper's deadlocks form;
  /// kCioqRoundRobin is a fair crossbar (see bench/ablation_arbitration).
  net::SwitchArch arch = net::SwitchArch::kOutputQueuedFifo;
  std::int64_t egress_queue_bytes = 3000;  // CIOQ egress cap (2 MTU)
  FcSetup fc;
  /// Control-frame processing latency t_r (also used to pad tau up to
  /// testbed-like values).
  sim::TimePs control_delay = sim::us(1);
  net::EcnConfig ecn;  // disabled unless a DCQCN study turns it on
  std::uint64_t seed = 1;

  /// Parallel core (src/par): shard count for the conservative PDES
  /// engine. 1 (the default) runs the plain single-threaded scheduler;
  /// N > 1 partitions the fabric at switch granularity (topo::partition)
  /// and runs one worker thread per shard, with outputs byte-identical to
  /// shards = 1 at any N. Fault injection and ECN/DCQCN are pinned to the
  /// sequential engine: requesting shards with either enabled falls back
  /// to 1 with a stderr warning.
  int shards = 1;

  /// Runtime control-frame fault injection; all-zero rates (the default)
  /// install no hook and leave every event identical to the seed.
  fault::FaultConfig fault;

  /// Binary event tracing (src/trace/). Disabled (the default) costs one
  /// null-pointer branch per instrumentation site.
  trace::TraceOptions trace;

  /// Static pre-flight analysis (src/analyze/), run when a Fabric installs
  /// its routing: kWarn reports deadlock risks on stderr, kFail throws
  /// analyze::PreflightError on an at-risk verdict. Off by default.
  /// Re-installs (mid-run reroutes after link flaps) re-analyze
  /// incrementally and re-issue the verdict — see Fabric::analysis().
  analyze::PreflightMode preflight = analyze::PreflightMode::kOff;

  /// Soundness oracle: keep the incremental analyzer's report current even
  /// under PreflightMode::kOff (no stderr, no throw) so the runner can
  /// cross-validate every runtime deadlock witness cycle against the
  /// static enumeration (runner::check_witness_cycle). Off by default.
  bool witness_check = false;

  /// Worst-case feedback latency for these parameters (Eq. 6 with this
  /// config's processing delay).
  sim::TimePs tau() const {
    return core::worst_case_tau(core::TauParams{
        link.rate, link.mtu, link.prop_delay, control_delay});
  }
};

}  // namespace gfc::runner
