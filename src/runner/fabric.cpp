#include "runner/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "analyze/analyze.hpp"
#include "analyze/incremental.hpp"
#include "core/gfc_buffer.hpp"
#include "core/gfc_conceptual.hpp"
#include "core/gfc_time.hpp"
#include "flowctl/cbfc.hpp"
#include "flowctl/pfc.hpp"
#include "mech/dcfit.hpp"
#include "par/engine.hpp"
#include "topo/partition.hpp"

namespace gfc::runner {

std::unique_ptr<net::FcModule> make_fc_module(const ScenarioConfig& cfg) {
  const FcSetup& fc = cfg.fc;
  switch (fc.kind) {
    case FcKind::kNone:
      return nullptr;
    case FcKind::kPfc:
      return std::make_unique<flowctl::PfcModule>(
          flowctl::PfcConfig{fc.xoff, fc.xon, fc.pfc_pause_timeout});
    case FcKind::kDcfit:
      // Classic PFC (indefinite pauses — pause_timeout stays 0 so the
      // deadlocks DCFIT exists to break can actually form) plus the
      // trigger machinery.
      return std::make_unique<mech::DcfitModule>(mech::DcfitConfig{
          flowctl::PfcConfig{fc.xoff, fc.xon, 0}, fc.dcfit_break,
          fc.dcfit_period});
    case FcKind::kCbfc: {
      flowctl::CbfcConfig c;
      c.period = fc.period;
      c.buffer_bytes = cfg.switch_buffer;
      c.sync_period = fc.cbfc_sync_period;
      return std::make_unique<flowctl::CbfcModule>(c);
    }
    case FcKind::kGfcBuffer:
      // Coalesce feedback to at most one frame per tau per (port, prio),
      // in line with the paper's one-per-tau worst-case analysis.
      return std::make_unique<core::GfcBufferModule>(
          core::MultiStageMapping(cfg.link.rate, fc.b1, fc.bm, fc.min_rate),
          cfg.tau());
    case FcKind::kGfcTime:
      return std::make_unique<core::GfcTimeModule>(
          core::LinearMapping(cfg.link.rate, fc.b0, fc.bm, fc.min_rate),
          fc.period);
    case FcKind::kGfcConceptual:
      return std::make_unique<core::GfcConceptualModule>(
          core::LinearMapping(cfg.link.rate, fc.b0, fc.bm, fc.min_rate),
          fc.conceptual_min_delta);
  }
  return nullptr;
}

Fabric::Fabric(const topo::Topology& topo, const ScenarioConfig& cfg)
    : cfg_(cfg) {
  if (cfg.trace.enabled) {
    tracer_ = std::make_unique<trace::Tracer>(cfg.trace);
    net_.set_tracer(tracer_.get());
  }
  net_.reseed(cfg.seed);
  net_.set_control_delay(cfg.control_delay);
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    const auto& tn = topo.node(static_cast<topo::NodeIndex>(i));
    if (tn.is_host) {
      net::HostNode& h = net_.add_host(tn.name);
      h.set_mtu(cfg.link.mtu);
    } else {
      net::SwitchNode& s = net_.add_switch(tn.name, cfg.switch_buffer);
      s.set_arch(cfg.arch);
      s.set_egress_queue_cap(cfg.egress_queue_bytes);
      if (cfg.ecn.enabled) s.set_ecn(cfg.ecn);
    }
  }
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    const auto& link = topo.link(static_cast<topo::LinkIndex>(l));
    if (!link.up) continue;
    const auto [pa, pb] =
        net_.connect(link.a, link.b, cfg.link.rate, cfg.link.prop_delay);
    port_map_[{link.a, link.b}] = pa;
    port_map_[{link.b, link.a}] = pb;
    peer_map_[{link.a, pa}] = link.b;
    peer_map_[{link.b, pb}] = link.a;
  }
  // Parallel core: attach before flow control so every FC timer lands on
  // its owner's shard scheduler with a globally-sequenced key. Faults and
  // ECN/DCQCN are pinned to the sequential engine (their hooks touch
  // cross-shard state outside the wire discipline the lookahead relies on).
  if (cfg_.shards > 1) {
    if (cfg_.fault.enabled() || cfg_.ecn.enabled) {
      std::fprintf(stderr,
                   "fabric: %d shards requested but fault injection / ECN are "
                   "pinned to the sequential engine; running 1 shard\n",
                   cfg_.shards);
    } else if (cfg_.link.prop_delay <= 0) {
      std::fprintf(stderr,
                   "fabric: %d shards requested but zero propagation delay "
                   "leaves no lookahead; running 1 shard\n",
                   cfg_.shards);
    } else {
      const std::vector<int> shard_of =
          topo::partition(topo, cfg_.shards, cfg_.seed);
      const int eff =
          shard_of.empty()
              ? 1
              : 1 + *std::max_element(shard_of.begin(), shard_of.end());
      if (eff > 1)
        engine_ = std::make_unique<par::Engine>(net_, shard_of, eff);
    }
  }
  // Flow control attaches last: gates need the peer wiring.
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    auto module = make_fc_module(cfg_);
    if (module) net_.node(static_cast<net::NodeId>(i)).set_fc(std::move(module));
  }
  if (cfg_.fault.enabled())
    fault_plan_ = std::make_unique<fault::FaultPlan>(net_, cfg_.fault);
  // Campaign watchdog heartbeat: when the worker pool installed a
  // ProgressSink on this thread, beacon (sim time, executed events) on a
  // persistent timer. The beacon only reads scheduler counters — results
  // and goldens are untouched — and throws CancelledError once the
  // watchdog requests cancellation, unwinding the trial out of run_until.
  if (exp::ProgressSink* sink = exp::current_progress_sink()) {
    progress_sink_ = sink;
    constexpr sim::TimePs kBeaconPeriod = sim::us(100);
    sim::Scheduler& sched = net_.sched();
    progress_timer_ = sched.register_timer([this, sink] {
      sim::Scheduler& s = net_.sched();
      // Re-arm first: beacon may throw, and the next attempt's Fabric is a
      // fresh object anyway — but keeping the timer armed costs nothing and
      // keeps the no-cancel path a plain periodic timer.
      s.arm_timer(progress_timer_, s.now() + kBeaconPeriod);
      // net_.executed_events() totals across shards when the parallel
      // engine is attached (the beacon fires as a coordinator boundary
      // step, so the shard counters are barrier-exact here).
      sink->beacon(s.now(), net_.executed_events());
    });
    sched.arm_timer(progress_timer_, sched.now() + kBeaconPeriod);
    if (engine_) {
      // Shard-aware watchdog wiring: every worker polls this during a
      // window, so one wedged shard still heartbeats engine-wide progress
      // and observes --trial-timeout cancellation even while the main
      // scheduler (and its beacon timer) sits blocked at the barrier.
      engine_->set_cancel_poll(
          [](void* env) -> bool {
            auto* f = static_cast<Fabric*>(env);
            f->progress_sink_->heartbeat(f->net_.executed_events());
            return f->progress_sink_->cancel_requested();
          },
          this);
      engine_->set_abort_handler([] { throw exp::CancelledError(); });
    }
  }
}

Fabric::~Fabric() = default;

trace::NodeNameFn Fabric::node_name_fn() {
  return [this](std::int32_t id) -> std::string {
    if (id < 0 || static_cast<std::size_t>(id) >= net_.node_count()) return {};
    return net_.node(id).name();
  };
}

int Fabric::port_to(topo::NodeIndex from, topo::NodeIndex to) const {
  const auto it = port_map_.find({from, to});
  return it == port_map_.end() ? -1 : it->second;
}

topo::NodeIndex Fabric::peer_of(topo::NodeIndex node, int port) const {
  const auto it = peer_map_.find({node, port});
  return it == peer_map_.end() ? -1 : it->second;
}

const analyze::Report* Fabric::analysis() const {
  return analyzer_ ? &analyzer_->report() : nullptr;
}

void Fabric::install_routing(const topo::Topology& topo,
                             const topo::RoutingTable& routing) {
  // Pre-flight: the one spot where topology, routing and flow-control
  // parameters are all known before the new routes take effect. The
  // analyzer is incremental, so a mid-run reroute after a link flap
  // re-verdicts at delta cost; kFail throws analyze::PreflightError on an
  // at-risk verdict (campaign worker pools record it as the trial's
  // failure) — including flap-induced regressions mid-run.
  if (cfg_.preflight != analyze::PreflightMode::kOff || cfg_.witness_check) {
    if (!analyzer_ || analyzed_topo_ != &topo) {
      analyze::Input in;
      in.topo = &topo;
      in.cfg = cfg_;
      analyzer_ = std::make_unique<analyze::IncrementalAnalyzer>(in);
      analyzed_topo_ = &topo;
    }
    const analyze::Report& rep = analyzer_->update(routing);
    const int ordinal = reverdicts_++;
    if (tracer_)
      tracer_->record(trace::EventType::kAnalyzeVerdict, net_.sched().now(),
                      -1, -1, -1, ordinal,
                      static_cast<std::int64_t>(rep.verdict()));
    analyze::preflight_verdict(cfg_.preflight, rep);
  }
  for (topo::NodeIndex s : topo.switches()) {
    net::SwitchNode& swn = sw(s);
    swn.clear_routes();
    for (topo::NodeIndex dst : topo.hosts()) {
      const auto& hops = routing.next_hops(s, dst);
      if (hops.empty()) continue;
      std::vector<std::int32_t> ports;
      ports.reserve(hops.size());
      for (topo::NodeIndex nh : hops) {
        const int p = port_to(s, nh);
        assert(p >= 0 && "routing references a failed link");
        ports.push_back(p);
      }
      swn.set_route(dst, std::move(ports));
    }
  }
}

std::int64_t Fabric::ingress_queue_bytes(topo::NodeIndex at,
                                         topo::NodeIndex from, int prio) {
  const int p = port_to(at, from);
  assert(p >= 0);
  return sw(at).ingress_bytes(p, prio);
}

sim::Rate Fabric::egress_rate(topo::NodeIndex node, topo::NodeIndex toward,
                              int prio) {
  const int p = port_to(node, toward);
  assert(p >= 0);
  net::Node& n = net_.node(node);
  if (auto* m = dynamic_cast<core::GfcBufferModule*>(n.fc())) {
    const sim::Rate r = m->programmed_rate(p, prio);
    return r.is_zero() ? cfg_.link.rate : r;
  }
  if (auto* m = dynamic_cast<core::GfcTimeModule*>(n.fc())) {
    const sim::Rate r = m->programmed_rate(p, prio);
    return r.is_zero() ? cfg_.link.rate : r;
  }
  if (auto* m = dynamic_cast<core::GfcConceptualModule*>(n.fc())) {
    const sim::Rate r = m->programmed_rate(p, prio);
    return r.is_zero() ? cfg_.link.rate : r;
  }
  return cfg_.link.rate;
}

}  // namespace gfc::runner
