// Fabric: realize an abstract Topology as a live Network with the chosen
// flow-control mechanism attached to every node. Topology node indices and
// net::NodeId values coincide by construction.
#pragma once

#include <map>
#include <memory>

#include "exp/progress.hpp"
#include "fault/fault.hpp"
#include "net/network.hpp"
#include "runner/config.hpp"
#include "topo/routing.hpp"
#include "topo/topology.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace gfc::par {
class Engine;
}

namespace gfc::analyze {
class IncrementalAnalyzer;
struct Report;
}  // namespace gfc::analyze

namespace gfc::runner {

/// Build the flow-control module configured in `cfg` (one fresh instance
/// per node).
std::unique_ptr<net::FcModule> make_fc_module(const ScenarioConfig& cfg);

class Fabric {
 public:
  Fabric(const topo::Topology& topo, const ScenarioConfig& cfg);
  ~Fabric();  // out-of-line: par::Engine is incomplete here

  net::Network& net() { return net_; }
  const ScenarioConfig& config() const { return cfg_; }

  net::HostNode& host(topo::NodeIndex i) { return *net_.host(i); }
  net::SwitchNode& sw(topo::NodeIndex i) { return *net_.sw(i); }

  /// Port index on `from` of the (up) link toward `to`; -1 if absent.
  int port_to(topo::NodeIndex from, topo::NodeIndex to) const;

  /// Inverse of port_to: the node `node`'s `port` leads to; -1 if absent.
  /// (How deadlock witness cycles — (node, egress port) pairs — are mapped
  /// back to directed topology links for the static cross-check.)
  topo::NodeIndex peer_of(topo::NodeIndex node, int port) const;

  /// The current static analysis, refreshed by install_routing whenever
  /// cfg.preflight != kOff or cfg.witness_check; null before the first
  /// install (or when both are off).
  const analyze::Report* analysis() const;

  /// How many verdicts install_routing has issued (1 for the initial
  /// install, +1 per mid-run reroute).
  int analysis_reverdicts() const { return reverdicts_; }

  /// Translate a next-hop-node routing table into per-switch port routes.
  void install_routing(const topo::Topology& topo,
                       const topo::RoutingTable& routing);

  /// Ingress occupancy at switch `at` for the link arriving from `from`.
  std::int64_t ingress_queue_bytes(topo::NodeIndex at, topo::NodeIndex from,
                                   int prio = 0);

  /// The GFC rate currently programmed on `node`'s egress toward `toward`
  /// (line rate for non-GFC mechanisms or ungated ports).
  sim::Rate egress_rate(topo::NodeIndex node, topo::NodeIndex toward,
                        int prio = 0);

  /// The installed fault plan (null when cfg.fault has no enabled rates).
  fault::FaultPlan* fault_plan() { return fault_plan_.get(); }

  /// The installed tracer (null unless cfg.trace.enabled).
  trace::Tracer* tracer() { return tracer_.get(); }

  /// The parallel core (null when cfg.shards <= 1, or when the scenario
  /// pinned the sequential engine — faults, ECN, single-switch topology).
  par::Engine* par_engine() { return engine_.get(); }

  /// Node-id -> topo-name resolver for the trace exporters.
  trace::NodeNameFn node_name_fn();

 private:
  ScenarioConfig cfg_;
  /// Watchdog heartbeat timer (see exp/progress.hpp): armed only when the
  /// constructing thread has a campaign ProgressSink installed.
  sim::TimerId progress_timer_;
  /// Declared before net_ so the tracer outlives every node's teardown.
  std::unique_ptr<trace::Tracer> tracer_;
  net::Network net_;
  /// Declared after net_: the plan unhooks itself before the network dies.
  std::unique_ptr<fault::FaultPlan> fault_plan_;
  std::map<std::pair<topo::NodeIndex, topo::NodeIndex>, int> port_map_;
  /// (node, port) -> neighbor: port_map_ inverted, for witness mapping.
  std::map<std::pair<topo::NodeIndex, int>, topo::NodeIndex> peer_map_;
  /// Fault-aware incremental re-analysis (see src/analyze/incremental.hpp):
  /// created lazily by the first install_routing that wants a verdict, fed
  /// a fresh report on every reroute. The analyzed topology must outlive
  /// the fabric (scenario runners keep it on their RunContext).
  std::unique_ptr<analyze::IncrementalAnalyzer> analyzer_;
  const topo::Topology* analyzed_topo_ = nullptr;
  int reverdicts_ = 0;
  /// Declared last: the engine joins its workers and restores the
  /// single-threaded wiring before anything else tears down.
  std::unique_ptr<par::Engine> engine_;
  /// The campaign sink observed at construction (null outside a worker
  /// pool); the parallel engine's cancel poll reads it from shard threads.
  exp::ProgressSink* progress_sink_ = nullptr;
};

}  // namespace gfc::runner
