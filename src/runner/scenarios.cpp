#include "runner/scenarios.hpp"

#include <cassert>
#include <stdexcept>

#include "analyze/analyze.hpp"
#include "mech/dcfit.hpp"
#include "stats/flow_stats.hpp"
#include "stats/throughput.hpp"
#include "workload/generator.hpp"

namespace gfc::runner {

RingScenario make_ring(const ScenarioConfig& cfg, int n_switches, int hops) {
  assert(hops >= 1 && hops < n_switches);
  RingScenario s;
  s.info = topo::build_ring(s.topo, n_switches);
  s.fabric = std::make_unique<Fabric>(s.topo, cfg);
  // The clockwise pinning *is* the Figure 1 deadlock; a CBD-free request
  // replaces it with up*/down* tables (which dissolve the cycle — and the
  // scenario's point — by letting flows take the short way around).
  s.fabric->install_routing(
      s.topo, cfg.fc.cbd_free_routing
                  ? mech::cbd_free_routes(s.topo, &s.route_stats)
                  : topo::ring_clockwise_routes(s.topo, s.info));
  for (int i = 0; i < n_switches; ++i) {
    const net::NodeId src = s.info.hosts[static_cast<std::size_t>(i)];
    const net::NodeId dst =
        s.info.hosts[static_cast<std::size_t>((i + hops) % n_switches)];
    s.flows.push_back(s.fabric->net()
                          .create_flow(src, dst, 0, net::Flow::kUnbounded, 0)
                          .id);
  }
  return s;
}

IncastScenario make_incast(const ScenarioConfig& cfg, int n_senders,
                           std::int64_t flow_size) {
  IncastScenario s;
  s.info = topo::build_dumbbell(s.topo, n_senders);
  s.fabric = std::make_unique<Fabric>(s.topo, cfg);
  s.fabric->install_routing(
      s.topo, cfg.fc.cbd_free_routing
                  ? mech::cbd_free_routes(s.topo, &s.route_stats)
                  : topo::compute_shortest_paths(s.topo));
  for (topo::NodeIndex h : s.info.senders) {
    s.flows.push_back(
        s.fabric->net().create_flow(h, s.info.receiver, 0, flow_size, 0).id);
  }
  return s;
}

FatTreeScenario make_fattree(const ScenarioConfig& cfg, int k,
                             const std::vector<topo::LinkIndex>& failures) {
  FatTreeScenario s;
  s.info = topo::build_fattree(s.topo, k);
  for (topo::LinkIndex l : failures) s.topo.fail_link(l);
  s.failed_links = failures;
  s.routing = cfg.fc.cbd_free_routing
                  ? mech::cbd_free_routes(s.topo, &s.route_stats)
                  : topo::compute_shortest_paths(s.topo);
  s.cbd_prone = topo::cbd_prone(s.topo, s.routing);
  s.fabric = std::make_unique<Fabric>(s.topo, cfg);
  s.fabric->install_routing(s.topo, s.routing);
  return s;
}

FatTreeScenario make_random_fattree(const ScenarioConfig& cfg, int k,
                                    double fail_prob, std::uint64_t topo_seed) {
  FatTreeScenario s;
  s.info = topo::build_fattree(s.topo, k);
  sim::Rng rng(topo_seed);
  s.failed_links = topo::random_failures(s.topo, rng, fail_prob);
  s.routing = cfg.fc.cbd_free_routing
                  ? mech::cbd_free_routes(s.topo, &s.route_stats)
                  : topo::compute_shortest_paths(s.topo);
  s.cbd_prone = topo::cbd_prone(s.topo, s.routing);
  s.fabric = std::make_unique<Fabric>(s.topo, cfg);
  s.fabric->install_routing(s.topo, s.routing);
  return s;
}

std::string describe_cycle(const stats::DeadlockDetector& det,
                           net::Network& net) {
  std::string out;
  for (const auto& [nid, port] : det.cycle()) {
    if (!out.empty()) out += " -> ";
    out += net.node(nid).name() + ":" + std::to_string(port);
  }
  return out;
}

bool check_witness_cycle(Fabric& fabric, const stats::DeadlockDetector& det) {
  const analyze::Report* rep = fabric.analysis();
  if (rep == nullptr || det.cycle().empty() || rep->truncated) return false;
  // Each witness hop (node, egress port) is the directed link node ->
  // peer(node, port); the detector's wait-for edges guarantee the peer is
  // the next hop's node, so the mapped links close into a cycle.
  std::vector<topo::DirectedLink> links;
  for (const auto& [nid, port] : det.cycle()) {
    const topo::NodeIndex peer = fabric.peer_of(nid, port);
    if (peer < 0 || fabric.net().sw(peer) == nullptr) return false;
    links.push_back({static_cast<topo::NodeIndex>(nid), peer});
  }
  topo::canonicalize_cycle(&links);
  if (!analyze::report_contains_cycle(*rep, links))
    throw std::runtime_error(
        "witness cross-check failed: runtime deadlock cycle [" +
        describe_cycle(det, fabric.net()) +
        "] is missing from the static enumeration (" +
        std::to_string(rep->cycles.size()) +
        " cycles) — the analyzer is unsound for this topology/routing");
  return true;
}

RunSummary run_closed_loop(FatTreeScenario& scenario, const RunOptions& opts) {
  net::Network& net = scenario.fabric->net();
  const ScenarioConfig& cfg = scenario.fabric->config();

  // Rack = edge switch: pod-major host and edge numbering line up.
  std::vector<net::NodeId> hosts;
  std::vector<int> racks;
  for (topo::NodeIndex h : scenario.info.hosts) {
    hosts.push_back(h);
    racks.push_back(scenario.topo.rack_of(h));
  }

  stats::ThroughputSampler throughput(net, sim::us(100));
  stats::FlowStats flow_stats(net, [&](const net::Flow& flow) {
    const auto path =
        scenario.routing.trace(flow.src, flow.dst, flow.path_salt);
    const int hops = path.empty() ? 4 : static_cast<int>(path.size()) - 2;
    return stats::FlowStats::default_ideal_fct(
        flow, cfg.link.rate, hops, cfg.link.prop_delay, cfg.link.mtu);
  });
  stats::DeadlockOptions dl_opts{sim::ms(1), 3,
                                 opts.stop_on_deadlock && !opts.recover_deadlock,
                                 opts.recover_deadlock, {}};
  if (!opts.flight_dump_path.empty() && net.tracer() != nullptr &&
      net.tracer()->flight() != nullptr) {
    Fabric& fabric = *scenario.fabric;
    const std::string path = opts.flight_dump_path;
    dl_opts.on_detect = [&fabric, path](const stats::DeadlockDetector& det) {
      trace::dump_flight(path, *fabric.net().tracer()->flight(),
                         fabric.node_name_fn(),
                         "deadlock detected at " +
                             sim::format_time(det.detected_at()) +
                             "\nwitness cycle: " +
                             describe_cycle(det, fabric.net()));
    };
  }
  int witness_checks = 0;
  if (cfg.witness_check) {
    // Compose after the flight dump so the post-mortem is on disk before a
    // failed cross-check throws the run away.
    Fabric& fabric = *scenario.fabric;
    const auto prev = dl_opts.on_detect;
    dl_opts.on_detect = [&fabric, prev,
                         &witness_checks](stats::DeadlockDetector& det) {
      if (prev) prev(det);
      if (check_witness_cycle(fabric, det)) ++witness_checks;
    };
  }
  stats::DeadlockDetector detector(net, dl_opts);

  workload::ClosedLoopGenerator gen(net, hosts, racks, opts.sizes,
                                    sim::Rng(opts.workload_seed));
  gen.start();
  net.run_until(opts.duration);

  RunSummary out;
  out.deadlocked = detector.deadlocked();
  out.deadlock_at = detector.detected_at();
  out.ended_at = net.sched().now();
  out.stopped_on_deadlock = detector.deadlocked() && opts.stop_on_deadlock &&
                            !opts.recover_deadlock;
  out.deadlock_detections = detector.detections();
  out.deadlock_recoveries = detector.recoveries();
  out.recovered_packets = detector.recovered_packets();
  out.per_host_gbps = throughput.per_host_average_gbps(
      static_cast<int>(hosts.size()), opts.warmup, opts.duration);
  out.mean_slowdown = flow_stats.mean_slowdown();
  out.flows_completed = net.counters().flows_completed;
  out.flows_started = gen.flows_started();
  out.lossless_violations = net.counters().lossless_violations;
  const mech::DcfitTotals dcfit = mech::collect_dcfit(net);
  out.mech_detections = dcfit.detections;
  out.mech_false_positives = dcfit.false_positives;
  out.mech_packets_sacrificed = dcfit.packets_sacrificed;
  out.mech_bypasses = dcfit.bypasses;
  out.mech_first_detection_latency = dcfit.first_detection_latency;
  out.analyze_reverdicts = scenario.fabric->analysis_reverdicts();
  if (const analyze::Report* rep = scenario.fabric->analysis())
    out.analyze_verdict = analyze::verdict_name(rep->verdict());
  out.witness_checks = witness_checks;
  return out;
}

}  // namespace gfc::runner
