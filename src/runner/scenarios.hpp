// Canned experiment scenarios covering every evaluation setup in the paper:
// the Figure 1 ring, 2-to-1 / N-to-1 incast, and fat-trees with link
// failures, plus a closed-loop run helper shared by Table 1 and Figures
// 16-18.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mech/cbd_routing.hpp"
#include "runner/fabric.hpp"
#include "stats/deadlock.hpp"
#include "topo/builders.hpp"
#include "topo/cbd.hpp"
#include "topo/scenario_gen.hpp"
#include "workload/empirical.hpp"

namespace gfc::runner {

/// Figure 1 / Sec 6.1: N-switch ring, one host per switch, flow i runs
/// clockwise across `hops` inter-switch links (default 2: every link then
/// carries two line-rate flows, the congestion that arms the deadlock).
struct RingScenario {
  topo::Topology topo;
  topo::RingInfo info;
  std::unique_ptr<Fabric> fabric;
  std::vector<net::FlowId> flows;
  /// Filled when cfg.fc.cbd_free_routing replaced the clockwise routing.
  mech::RoutingStats route_stats;
};
RingScenario make_ring(const ScenarioConfig& cfg, int n_switches = 3,
                       int hops = 2);

/// N senders, one receiver, one switch (Figure 5 with n = 2, Figure 20
/// with n = 8). size < 0 means permanent flows.
struct IncastScenario {
  topo::Topology topo;
  topo::DumbbellInfo info;
  std::unique_ptr<Fabric> fabric;
  std::vector<net::FlowId> flows;
  /// Filled when cfg.fc.cbd_free_routing replaced the shortest paths.
  mech::RoutingStats route_stats;
};
IncastScenario make_incast(const ScenarioConfig& cfg, int n_senders,
                           std::int64_t flow_size = net::Flow::kUnbounded);

/// Fat-tree with an explicit failure set, shortest-path-first routing.
struct FatTreeScenario {
  topo::Topology topo;
  topo::FatTreeInfo info;
  topo::RoutingTable routing;
  std::vector<topo::LinkIndex> failed_links;
  bool cbd_prone = false;
  std::unique_ptr<Fabric> fabric;
  /// Filled when cfg.fc.cbd_free_routing replaced the shortest paths.
  mech::RoutingStats route_stats;
};
FatTreeScenario make_fattree(const ScenarioConfig& cfg, int k,
                             const std::vector<topo::LinkIndex>& failures = {});

/// Fat-tree with random failures (each switch link down with `fail_prob`,
/// hosts kept connected), as in Sec 6.2.3.
FatTreeScenario make_random_fattree(const ScenarioConfig& cfg, int k,
                                    double fail_prob, std::uint64_t topo_seed);

/// Closed-loop empirical-workload run over a fat-tree scenario.
struct RunSummary {
  bool deadlocked = false;
  sim::TimePs deadlock_at = -1;
  /// True when DeadlockOptions::stop_on_detect halted the run early; the
  /// simulated clock then stops at `ended_at` < the requested duration.
  bool stopped_on_deadlock = false;
  sim::TimePs ended_at = 0;
  double per_host_gbps = 0.0;   // paper's "average available bandwidth"
  double mean_slowdown = 0.0;   // paper's Figure 17 metric
  std::uint64_t flows_completed = 0;
  std::uint64_t flows_started = 0;
  std::uint64_t lossless_violations = 0;
  // Deadlock-recovery accounting (nonzero only with recover_deadlock):
  int deadlock_detections = 0;
  int deadlock_recoveries = 0;
  std::uint64_t recovered_packets = 0;
  // DCFIT in-band detection accounting (nonzero only under FcKind::kDcfit;
  // see mech::collect_dcfit):
  int mech_detections = 0;
  int mech_false_positives = 0;
  std::uint64_t mech_packets_sacrificed = 0;
  int mech_bypasses = 0;
  sim::TimePs mech_first_detection_latency = -1;
  // Fault-aware static analysis (nonzero/nonempty only when the fabric ran
  // with preflight enabled or cfg.witness_check):
  /// Verdicts issued by install_routing (1 initial + 1 per mid-run reroute).
  int analyze_reverdicts = 0;
  /// The verdict current at the end of the run ("" when analysis is off).
  std::string analyze_verdict;
  /// Runtime deadlock witnesses cross-checked against the static
  /// enumeration (each one found missing throws out of the run instead).
  int witness_checks = 0;
};
struct RunOptions {
  sim::TimePs duration = sim::ms(20);
  sim::TimePs warmup = sim::ms(1);  // excluded from bandwidth averaging
  std::uint64_t workload_seed = 42;
  bool stop_on_deadlock = true;
  /// Drain-and-reset confirmed deadlock cycles instead of latching/stopping
  /// (DeadlockOptions::recover); overrides stop_on_deadlock.
  bool recover_deadlock = false;
  /// When non-empty and the fabric has a tracer with a flight recorder,
  /// every confirmed deadlock detection dumps the per-node pre-stall event
  /// windows here (trace::write_flight_dump format).
  std::string flight_dump_path;
  workload::FlowSizeCdf sizes = workload::FlowSizeCdf::enterprise();
};
RunSummary run_closed_loop(FatTreeScenario& scenario, const RunOptions& opts);

/// "s0:2 -> s3:1 -> ..." — the detector's witness cycle with node names,
/// used as the flight-dump reason line.
std::string describe_cycle(const stats::DeadlockDetector& det,
                           net::Network& net);

/// Soundness oracle: map the detector's witness cycle — (node, egress
/// port) pairs — to directed topology links, canonicalize, and require
/// membership in the fabric's current static cycle enumeration. Returns
/// true when the check ran and passed; false when it was skipped (no
/// analysis attached, empty witness, truncated enumeration — membership
/// in a prefix proves nothing — or a hop that isn't switch-to-switch).
/// Throws std::runtime_error when the cycle is missing: a runtime
/// deadlock the static analyzer failed to predict means the analyzer is
/// unsound, and that must never pass silently.
bool check_witness_cycle(Fabric& fabric, const stats::DeadlockDetector& det);

}  // namespace gfc::runner
