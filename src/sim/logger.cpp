#include "sim/logger.hpp"

#include <cstdarg>

namespace gfc::sim {

namespace {
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

namespace detail {
void vlog(LogLevel level, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace gfc::sim
