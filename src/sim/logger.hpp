// Minimal leveled logger. Simulation hot paths use GFC_LOG_DEBUG, which
// compiles to a level check and is off by default.
#pragma once

#include <cstdio>
#include <string>

namespace gfc::sim {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void vlog(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
}  // namespace detail

}  // namespace gfc::sim

#define GFC_LOG(level, ...)                                  \
  do {                                                       \
    if (static_cast<int>(level) >=                           \
        static_cast<int>(::gfc::sim::log_level()))           \
      ::gfc::sim::detail::vlog(level, __VA_ARGS__);          \
  } while (0)

#define GFC_LOG_DEBUG(...) GFC_LOG(::gfc::sim::LogLevel::kDebug, __VA_ARGS__)
#define GFC_LOG_INFO(...) GFC_LOG(::gfc::sim::LogLevel::kInfo, __VA_ARGS__)
#define GFC_LOG_WARN(...) GFC_LOG(::gfc::sim::LogLevel::kWarn, __VA_ARGS__)
#define GFC_LOG_ERROR(...) GFC_LOG(::gfc::sim::LogLevel::kError, __VA_ARGS__)
