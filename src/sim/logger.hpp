// Minimal leveled logger, sharing the trace subsystem's category
// vocabulary (trace/categories.hpp) so `--trace-categories` and the log
// filter speak the same names.
//
// The level and category mask are inline globals read straight from the
// macro, so a suppressed statement compiles to a load + compare — no
// function call and, crucially, no evaluation or formatting of the
// arguments. Simulation hot paths use GFC_LOG_DEBUG, which is off by
// default.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "trace/categories.hpp"

namespace gfc::sim {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace detail {
inline LogLevel g_log_level = LogLevel::kWarn;
inline std::uint32_t g_log_categories = trace::kCatAll;
void vlog(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
}  // namespace detail

inline LogLevel log_level() { return detail::g_log_level; }
inline void set_log_level(LogLevel level) { detail::g_log_level = level; }

/// Category filter (trace::Category bits); default passes everything, so
/// output is unchanged unless a caller narrows it.
inline std::uint32_t log_categories() { return detail::g_log_categories; }
inline void set_log_categories(std::uint32_t mask) { detail::g_log_categories = mask; }

inline bool log_enabled(LogLevel level, std::uint32_t cat) {
  return static_cast<int>(level) >= static_cast<int>(detail::g_log_level) &&
         (detail::g_log_categories & cat) != 0;
}

}  // namespace gfc::sim

/// Category-tagged statement: suppressed level or masked-off category skips
/// the argument list entirely (the `if` guards evaluation).
#define GFC_LOG_CAT(cat, level, ...)                         \
  do {                                                       \
    if (::gfc::sim::log_enabled(level, cat))                 \
      ::gfc::sim::detail::vlog(level, __VA_ARGS__);          \
  } while (0)

/// Uncategorized statement: passes whenever any category is enabled.
#define GFC_LOG(level, ...) \
  GFC_LOG_CAT(::gfc::trace::kCatAll, level, __VA_ARGS__)

#define GFC_LOG_DEBUG(...) GFC_LOG(::gfc::sim::LogLevel::kDebug, __VA_ARGS__)
#define GFC_LOG_INFO(...) GFC_LOG(::gfc::sim::LogLevel::kInfo, __VA_ARGS__)
#define GFC_LOG_WARN(...) GFC_LOG(::gfc::sim::LogLevel::kWarn, __VA_ARGS__)
#define GFC_LOG_ERROR(...) GFC_LOG(::gfc::sim::LogLevel::kError, __VA_ARGS__)

#define GFC_LOG_DEBUG_CAT(cat, ...) \
  GFC_LOG_CAT(cat, ::gfc::sim::LogLevel::kDebug, __VA_ARGS__)
#define GFC_LOG_INFO_CAT(cat, ...) \
  GFC_LOG_CAT(cat, ::gfc::sim::LogLevel::kInfo, __VA_ARGS__)
#define GFC_LOG_WARN_CAT(cat, ...) \
  GFC_LOG_CAT(cat, ::gfc::sim::LogLevel::kWarn, __VA_ARGS__)
#define GFC_LOG_ERROR_CAT(cat, ...) \
  GFC_LOG_CAT(cat, ::gfc::sim::LogLevel::kError, __VA_ARGS__)
