#include "sim/random.hpp"

// Header-only today; this TU pins the library target.
