// Deterministic random source for workloads and scenario generation.
// One Rng per independent stream; seeding is explicit so every experiment
// is reproducible from its printed seed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace gfc::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) { return uniform_real() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Pick a uniformly random element index of a non-empty range.
  std::size_t pick_index(std::size_t size) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[pick_index(items.size())];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[pick_index(items.size())];
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Derive an independent child stream (for per-host generators).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace gfc::sim
