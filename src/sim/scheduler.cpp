#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace gfc::sim {

EventId Scheduler::schedule_at(TimePs t, Callback fn) {
  assert(t >= now_ && "cannot schedule in the past");
  if (t < now_) t = now_;
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{t, id, std::move(fn)});
  return EventId{id};
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid() || id.value >= next_id_) return false;
  // Lazy cancellation: remember the id; skip it when popped.
  return cancelled_.insert(id.value).second;
}

void Scheduler::fire_top() {
  // Move the callback out before executing: the callback may schedule
  // new events and reallocate the heap.
  Entry top = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
    cancelled_.erase(it);
    return;
  }
  now_ = top.t;
  ++executed_;
  top.fn();
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    const bool was_cancelled = cancelled_.contains(heap_.top().id);
    fire_top();
    if (!was_cancelled) return true;
  }
  return false;
}

void Scheduler::run_until(TimePs t_end) {
  stop_requested_ = false;
  while (!heap_.empty() && !stop_requested_) {
    if (heap_.top().t > t_end) break;
    fire_top();
  }
  if (now_ < t_end && !stop_requested_) now_ = t_end;
}

void Scheduler::run_all() {
  stop_requested_ = false;
  while (!heap_.empty() && !stop_requested_) fire_top();
}

}  // namespace gfc::sim
