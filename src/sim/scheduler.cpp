#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>

namespace gfc::sim {
namespace {

// 4-ary min-heap helpers for the overflow heap. Hole-based sifts: copy
// entries toward the hole, write the moved entry once.
template <typename E>
bool heap_earlier(const E& a, const E& b) {
  return a.t != b.t ? a.t < b.t : a.seq < b.seq;
}

template <typename E>
void heap_push(std::vector<E>& h, E e) {
  h.push_back(e);
  std::size_t i = h.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!heap_earlier(e, h[parent])) break;
    h[i] = h[parent];
    i = parent;
  }
  h[i] = e;
}

/// Pop the heap minimum. Precondition: heap non-empty.
template <typename E>
E heap_pop(std::vector<E>& h) {
  const E top = h.front();
  const E last = h.back();
  h.pop_back();
  const std::size_t n = h.size();
  if (n != 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = (i << 2) + 1;
      if (first_child >= n) break;
      std::size_t min_child = first_child;
      const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
      for (std::size_t c = first_child + 1; c < end; ++c)
        if (heap_earlier(h[c], h[min_child])) min_child = c;
      if (!heap_earlier(h[min_child], last)) break;
      h[i] = h[min_child];
      i = min_child;
    }
    h[i] = last;
  }
  return top;
}

}  // namespace

Scheduler::Scheduler() {
  for (auto& level : wheel_)
    for (auto& head : level) head = kNoNode;
}

Scheduler::~Scheduler() { destroy_pending_callbacks(); }

void Scheduler::destroy_pending_callbacks() {
  // Destroy the callbacks of still-pending events wherever their queue
  // entry lives (cancelled entries fail the generation check and were
  // already destroyed at cancel time).
  const auto destroy_ref = [this](std::uint32_t slot, std::uint32_t gen) {
    Slot& s = *slot_ptr(slot);
    if (!s.persistent && s.gen == gen && s.destroy != nullptr)
      s.destroy(s.storage);
  };
  for (std::size_t i = near_idx_; i < near_.size(); ++i)
    destroy_ref(near_[i].slot, near_[i].gen);
  for (const HeapEntry& e : overflow_) destroy_ref(e.slot, e.gen);
  for (const auto& level : wheel_)
    for (std::uint32_t head : level)
      for (std::uint32_t n = head; n != kNoNode; n = nodes_[n].next)
        destroy_ref(nodes_[n].slot, nodes_[n].gen);
  // Persistent-timer callbacks live outside any queue entry.
  for (std::uint32_t i = 0; i < slots_used_; ++i) {
    Slot& s = *slot_ptr(i);
    if (s.persistent && s.destroy != nullptr) s.destroy(s.storage);
  }
}

void Scheduler::clear() {
  destroy_pending_callbacks();
  near_.clear();
  near_idx_ = 0;
  overflow_.clear();
  for (auto& level : wheel_)
    for (auto& head : level) head = kNoNode;
  for (auto& word : occ_) word = 0;
  nodes_.clear();  // keeps capacity
  node_free_ = kNoNode;
  cur_tick_ = 0;
  // Reset generations over the slot high-water mark so the cleared
  // scheduler re-issues the same EventIds a fresh one would.
  for (std::uint32_t i = 0; i < slots_used_; ++i) {
    Slot& s = *slot_ptr(i);
    s.gen = 1;
    s.persistent = false;
    s.armed = false;
    s.multishot = false;
  }
  slots_used_ = 0;
  free_head_ = kNoFreeSlot;
  next_seq_ = 0;
  shared_seq_ = nullptr;
  window_log_ = nullptr;
  win_end_t_ = 0;
  win_end_seq_ = 0;
  prov_next_ = 0;
  now_ = 0;
  live_ = 0;
  executed_ = 0;
  stop_requested_ = false;
}

std::uint32_t Scheduler::alloc_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t idx = free_head_;
    free_head_ = slot_ptr(idx)->next_free;
    return idx;
  }
  if (slots_used_ == chunks_.size() * kSlotsPerChunk)
    chunks_.push_back(std::make_unique<Slot[]>(kSlotsPerChunk));
  return slots_used_++;
}

void Scheduler::release_slot(std::uint32_t idx, Slot& s) {
  if (++s.gen == 0) s.gen = 1;  // invalidate ids; tag is never 0
  s.next_free = free_head_;
  free_head_ = idx;
}

void Scheduler::wheel_link(int level, std::uint32_t wslot, TimePs t,
                           std::uint64_t seq, std::uint32_t slot,
                           std::uint32_t gen) {
  std::uint32_t n;
  if (node_free_ != kNoNode) {
    n = node_free_;
    node_free_ = nodes_[n].next;
  } else {
    n = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(WheelNode{});
  }
  WheelNode& node = nodes_[n];
  node.t = t;
  node.seq = seq;
  node.slot = slot;
  node.gen = gen;
  node.next = wheel_[level][wslot];
  wheel_[level][wslot] = n;
  occ_[level] |= std::uint64_t{1} << wslot;
}

void Scheduler::insert_entry(TimePs t, std::uint64_t seq, std::uint32_t slot,
                             std::uint32_t gen) {
  const Tick tick = tick_of(t);
  const std::int64_t delta = tick - cur_tick_;
  if (delta <= 0) {
    // At or behind the cursor: splice into the sorted unconsumed tail of
    // the near batch. Only execution-time inserts (events landing in the
    // tick being drained) take this path — advance_once() appends its
    // dumps directly and sorts once.
    const HeapEntry e{t, seq, slot, gen};
    const auto pos = std::upper_bound(
        near_.begin() + static_cast<std::ptrdiff_t>(near_idx_), near_.end(), e,
        heap_earlier<HeapEntry>);
    near_.insert(pos, e);
    return;
  }
  if (delta >= kHorizonTicks) {
    heap_push(overflow_, HeapEntry{t, seq, slot, gen});
    return;
  }
  // Level L holds deltas in [64^L, 64^(L+1)): the highest 6-bit group in
  // which the delta is non-zero.
  const int level =
      (std::bit_width(static_cast<std::uint64_t>(delta)) - 1) / kLevelBits;
  const std::uint32_t wslot =
      static_cast<std::uint32_t>(tick >> (kLevelBits * level)) & kSlotMask;
  wheel_link(level, wslot, t, seq, slot, gen);
}

void Scheduler::queue_call(TimePs t, std::uint32_t slot, std::uint32_t gen) {
  if (window_log_ == nullptr) {
    const std::uint64_t seq = shared_seq_ != nullptr ? (*shared_seq_)++  //
                                                     : next_seq_++;
    insert_entry(t, seq, slot, gen);
    return;
  }
  // Window mode: log the call for barrier-merge sequence assignment. A
  // call landing inside the window queues locally under a provisional key;
  // one at or past the window end only logs (kDeferred) and is queued with
  // its true sequence by apply_logged_insert() at the barrier. Every
  // provisional key at win_end_t_ would sort at or past (win_end_t_,
  // win_end_seq_) anyway — kProvSeqBit outranks any true sequence — so
  // t >= win_end_t_ is the exact deferral condition.
  WinRecord r;
  r.kind = WinRecord::kCall;
  r.slot = slot;
  r.gen = gen;
  r.t = t;
  if (t >= win_end_t_) {
    r.flags = WinRecord::kDeferred;
    window_log_->recs.push_back(r);
    return;
  }
  r.prov = kProvSeqBit | prov_next_++;
  window_log_->recs.push_back(r);
  insert_entry(t, r.prov, slot, gen);
}

bool Scheduler::run_window(PollFn poll, void* poll_ctx) {
  HeapEntry e;
  std::uint32_t since_poll = 0;
  while (peek_live(&e)) {
    if (e.t > win_end_t_ || (e.t == win_end_t_ && e.seq >= win_end_seq_))
      break;
    ++near_idx_;
    now_ = e.t;
    // One log group per executed event: its queue key plus the record
    // range its callback appends (scheduler calls, allocs, traces,
    // deliveries — in true call order).
    const auto first = static_cast<std::uint32_t>(window_log_->recs.size());
    window_log_->groups.push_back(WinGroup{e.t, e.seq, first, 0});
    const std::size_t gi = window_log_->groups.size() - 1;
    execute(e);
    window_log_->groups[gi].n =
        static_cast<std::uint32_t>(window_log_->recs.size()) - first;
    if ((++since_poll & 4095u) == 0 && poll != nullptr && poll(poll_ctx))
      return false;
  }
  return true;
}

bool Scheduler::advance_once(Tick limit) {
  // Fast path for the sparse short-horizon workload (most ticks hold a
  // handful of events): with nothing in overflow, an occupied level-0 slot
  // inside the cursor's current frame — no wrap past the next 64-tick
  // boundary — is always the earliest work anywhere in the wheel, because
  // higher-level slots can only cascade at a later frame boundary. Skip
  // the full per-level candidate scan and the cascade checks.
  if (overflow_.empty() && occ_[0] != 0) {
    const std::uint32_t pos = static_cast<std::uint32_t>(cur_tick_) & kSlotMask;
    const std::uint64_t rotated = std::rotr(occ_[0], (pos + 1) & 63);
    const std::uint32_t d =
        static_cast<std::uint32_t>(std::countr_zero(rotated)) + 1;
    if (pos + d < kSlotsPerLevel) {
      const Tick target = cur_tick_ + d;
      if (target > limit) return false;
      cur_tick_ = target;
      const std::uint32_t wslot = pos + d;  // target & kSlotMask, no wrap
      std::uint32_t n = wheel_[0][wslot];
      wheel_[0][wslot] = kNoNode;
      occ_[0] &= ~(std::uint64_t{1} << wslot);
      const std::size_t fast_base = near_.size();
      while (n != kNoNode) {
        const WheelNode node = nodes_[n];
        nodes_[n].next = node_free_;
        node_free_ = n;
        if (slot_ptr(node.slot)->gen == node.gen)
          near_.push_back(HeapEntry{node.t, node.seq, node.slot, node.gen});
        n = node.next;
      }
      if (near_.size() - fast_base > 1)
        std::sort(near_.begin() + static_cast<std::ptrdiff_t>(fast_base),
                  near_.end(), heap_earlier<HeapEntry>);
      return true;
    }
  }

  // Per level, the nearest occupied slot ahead of the cursor. All wheel
  // frames start strictly after cur_tick_, so rotating the occupancy word
  // right by pos+1 makes countr_zero() yield distance-1, distances 1..64
  // (a slot equal to the cursor position means a full level cycle ahead).
  Tick cand_start[kLevels];
  std::uint32_t cand_slot[kLevels];
  Tick best = -1;
  for (int l = 0; l < kLevels; ++l) {
    cand_start[l] = -1;
    if (occ_[l] == 0) continue;
    const int shift = kLevelBits * l;
    const std::uint32_t pos =
        static_cast<std::uint32_t>(cur_tick_ >> shift) & kSlotMask;
    const std::uint64_t rotated = std::rotr(occ_[l], (pos + 1) & 63);
    const int d = std::countr_zero(rotated) + 1;  // 1..64
    cand_start[l] = ((cur_tick_ >> shift) + d) << shift;
    cand_slot[l] = (pos + static_cast<std::uint32_t>(d)) & kSlotMask;
    if (best < 0 || cand_start[l] < best) best = cand_start[l];
  }

  // Overflow candidate: the heap minimum (discard stale tops on the way —
  // their callbacks were destroyed at cancel time).
  while (!overflow_.empty() &&
         slot_ptr(overflow_.front().slot)->gen != overflow_.front().gen)
    heap_pop(overflow_);
  const Tick otick =
      overflow_.empty() ? Tick{-1} : tick_of(overflow_.front().t);

  Tick target = best;
  if (otick >= 0 && (target < 0 || otick < target)) target = otick;
  if (target < 0 || target > limit) return false;
  cur_tick_ = target;

  // Cascade every higher-level slot whose frame starts here, highest
  // level first, so entries land in their final lower-level homes (or the
  // near batch for the target tick itself). Stale nodes are dropped and
  // recycled on the way. Target-tick entries are appended raw and sorted
  // once at the end — one sort per drained tick instead of a heap push and
  // a heap pop per event.
  const std::size_t base = near_.size();
  for (int l = kLevels - 1; l >= 1; --l) {
    if (cand_start[l] != target) continue;
    std::uint32_t n = wheel_[l][cand_slot[l]];
    wheel_[l][cand_slot[l]] = kNoNode;
    occ_[l] &= ~(std::uint64_t{1} << cand_slot[l]);
    while (n != kNoNode) {
      const WheelNode node = nodes_[n];
      nodes_[n].next = node_free_;
      node_free_ = n;
      if (slot_ptr(node.slot)->gen == node.gen) {
        if (tick_of(node.t) == target)
          near_.push_back(HeapEntry{node.t, node.seq, node.slot, node.gen});
        else
          insert_entry(node.t, node.seq, node.slot, node.gen);
      }
      n = node.next;
    }
  }
  if (cand_start[0] == target) {
    std::uint32_t n = wheel_[0][cand_slot[0]];
    wheel_[0][cand_slot[0]] = kNoNode;
    occ_[0] &= ~(std::uint64_t{1} << cand_slot[0]);
    while (n != kNoNode) {
      const WheelNode node = nodes_[n];
      nodes_[n].next = node_free_;
      node_free_ = n;
      if (slot_ptr(node.slot)->gen == node.gen)
        near_.push_back(HeapEntry{node.t, node.seq, node.slot, node.gen});
      n = node.next;
    }
  }
  while (!overflow_.empty()) {
    const HeapEntry top = overflow_.front();
    if (slot_ptr(top.slot)->gen != top.gen) {
      heap_pop(overflow_);
      continue;
    }
    if (tick_of(top.t) != target) break;
    heap_pop(overflow_);
    near_.push_back(top);
  }
  if (near_.size() - base > 1)
    std::sort(near_.begin() + static_cast<std::ptrdiff_t>(base), near_.end(),
              heap_earlier<HeapEntry>);
  return true;
}

bool Scheduler::refill_near() {
  near_.clear();  // everything before near_idx_ was consumed; keep capacity
  near_idx_ = 0;
  while (near_.empty())
    if (!advance_once(std::numeric_limits<Tick>::max())) return false;
  return true;
}

bool Scheduler::peek_live(HeapEntry* out) {
  for (;;) {
    if (near_idx_ >= near_.size() && !refill_near()) return false;
    const HeapEntry& top = near_[near_idx_];
    if (slot_ptr(top.slot)->gen == top.gen) {
      *out = top;
      return true;
    }
    ++near_idx_;  // cancelled; skip lazily
  }
}

void Scheduler::execute(const HeapEntry& e) {
  Slot& s = *slot_ptr(e.slot);
  ++executed_;
  --live_;
  if (s.multishot) {
    // Other firings of this slot may still be queued; the generation must
    // keep matching them.
    s.run(s.storage);
    return;
  }
  // Invalidate the id before invoking, so cancel() of the running event
  // from inside its own callback is a clean "no longer pending" no-op —
  // but keep the slot off the free list until the callback (which may
  // schedule new events into other slots) has finished and been destroyed.
  if (++s.gen == 0) s.gen = 1;
  if (s.persistent) {
    s.armed = false;  // before run: the callback may re-arm its own timer
    s.run(s.storage);
    return;  // slot and callback stay registered
  }
  s.run(s.storage);
  s.next_free = free_head_;
  free_head_ = e.slot;
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t low = static_cast<std::uint32_t>(id.value);
  if (low == 0 || low > slots_used_) return false;
  const std::uint32_t idx = low - 1;
  Slot& s = *slot_ptr(idx);
  if (s.gen != static_cast<std::uint32_t>(id.value >> 32)) return false;
  // Still pending: destroy the callback and retire the slot now. The queue
  // entry stays behind; its stale generation tag gets it skipped when its
  // wheel slot or heap position is next visited.
  if (s.destroy != nullptr) s.destroy(s.storage);
  release_slot(idx, s);
  --live_;
  return true;
}

EventId Scheduler::reschedule(EventId id, TimePs t) {
  if (!id.valid()) return EventId{};
  const std::uint32_t low = static_cast<std::uint32_t>(id.value);
  if (low == 0 || low > slots_used_) return EventId{};
  const std::uint32_t idx = low - 1;
  Slot& s = *slot_ptr(idx);
  if (s.gen != static_cast<std::uint32_t>(id.value >> 32)) return EventId{};
  if (t < now_) t = now_;  // same clamp as schedule_at
  // Bump the generation: the old id and the old queue entry both go stale,
  // while the callback stays constructed in place.
  if (++s.gen == 0) s.gen = 1;
  queue_call(t, idx, s.gen);
  return EventId{(static_cast<std::uint64_t>(s.gen) << 32) |
                 (static_cast<std::uint64_t>(idx) + 1)};
}

void Scheduler::fire_at(TimerId timer, TimePs t) {
  if (!timer.valid()) return;
  Slot& s = *slot_ptr(timer.value - 1);
  if (t < now_) t = now_;  // same clamp as schedule_at
  queue_call(t, timer.value - 1, s.gen);
  ++live_;
}

void Scheduler::arm_timer(TimerId timer, TimePs t) {
  if (!timer.valid()) return;
  Slot& s = *slot_ptr(timer.value - 1);
  if (t < now_) t = now_;  // same clamp as schedule_at
  if (s.armed) {
    // Move the pending firing: stale out the old queue entry.
    if (++s.gen == 0) s.gen = 1;
  } else {
    s.armed = true;
    ++live_;
  }
  queue_call(t, timer.value - 1, s.gen);
}

void Scheduler::disarm_timer(TimerId timer) {
  if (!timer.valid()) return;
  Slot& s = *slot_ptr(timer.value - 1);
  if (!s.armed) return;
  if (++s.gen == 0) s.gen = 1;
  s.armed = false;
  --live_;
}

bool Scheduler::step() {
  HeapEntry e;
  if (!peek_live(&e)) return false;
  ++near_idx_;
  now_ = e.t;
  execute(e);
  return true;
}

void Scheduler::run_until(TimePs t_end) {
  stop_requested_ = false;
  HeapEntry e;
  while (!stop_requested_ && peek_live(&e)) {
    if (e.t > t_end) break;
    ++near_idx_;
    now_ = e.t;
    execute(e);
  }
  if (now_ < t_end && !stop_requested_) {
    now_ = t_end;
    // Keep the wheel cursor in step with the clock after an idle jump so
    // short-horizon scheduling stays O(1). Pure performance: correctness
    // never depends on the cursor tracking now() (the near heap orders
    // whatever the sweep dumps; live entries swept here are the
    // same-tick-as-t_end ones with t > t_end).
    const Tick t_tick = tick_of(now_);
    if (t_tick > cur_tick_) {
      while (advance_once(t_tick)) {
      }
      cur_tick_ = t_tick;
    }
  }
}

void Scheduler::run_all() {
  stop_requested_ = false;
  HeapEntry e;
  while (!stop_requested_ && peek_live(&e)) {
    ++near_idx_;
    now_ = e.t;
    execute(e);
  }
}

}  // namespace gfc::sim
