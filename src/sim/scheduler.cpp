#include "sim/scheduler.hpp"

namespace gfc::sim {

Scheduler::~Scheduler() {
  // Destroy the callbacks of still-pending events (cancelled entries fail
  // the generation check and were already destroyed at cancel time).
  for (const HeapEntry& e : heap_) {
    Slot& s = *slot_ptr(e.slot);
    if (s.gen == e.gen && s.destroy != nullptr) s.destroy(s.storage);
  }
}

std::uint32_t Scheduler::alloc_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t idx = free_head_;
    free_head_ = slot_ptr(idx)->next_free;
    return idx;
  }
  if (slots_used_ == chunks_.size() * kSlotsPerChunk)
    chunks_.push_back(std::make_unique<Slot[]>(kSlotsPerChunk));
  return slots_used_++;
}

void Scheduler::release_slot(std::uint32_t idx, Slot& s) {
  if (++s.gen == 0) s.gen = 1;  // invalidate ids; tag is never 0
  s.next_free = free_head_;
  free_head_ = idx;
}

void Scheduler::push_entry(HeapEntry e) {
  // Hole-based sift-up: copy parents down, write `e` once.
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

Scheduler::HeapEntry Scheduler::pop_top() {
  const HeapEntry top = heap_.front();
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n != 0) {
    // Hole-based sift-down of `last` from the root of the 4-ary heap.
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = (i << 2) + 1;
      if (first_child >= n) break;
      std::size_t min_child = first_child;
      const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
      for (std::size_t c = first_child + 1; c < end; ++c)
        if (earlier(heap_[c], heap_[min_child])) min_child = c;
      if (!earlier(heap_[min_child], last)) break;
      heap_[i] = heap_[min_child];
      i = min_child;
    }
    heap_[i] = last;
  }
  return top;
}

void Scheduler::execute(const HeapEntry& e) {
  Slot& s = *slot_ptr(e.slot);
  ++executed_;
  --live_;
  // Invalidate the id before invoking, so cancel() of the running event
  // from inside its own callback is a clean "no longer pending" no-op —
  // but keep the slot off the free list until the callback (which may
  // schedule new events into other slots) has finished and been destroyed.
  if (++s.gen == 0) s.gen = 1;
  s.run(s.storage);
  s.next_free = free_head_;
  free_head_ = e.slot;
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t low = static_cast<std::uint32_t>(id.value);
  if (low == 0 || low > slots_used_) return false;
  const std::uint32_t idx = low - 1;
  Slot& s = *slot_ptr(idx);
  if (s.gen != static_cast<std::uint32_t>(id.value >> 32)) return false;
  // Still pending: destroy the callback and retire the slot now. The heap
  // entry stays behind; its stale generation tag gets it skipped on pop.
  if (s.destroy != nullptr) s.destroy(s.storage);
  release_slot(idx, s);
  --live_;
  return true;
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    const HeapEntry e = pop_top();
    if (slot_ptr(e.slot)->gen != e.gen) continue;  // cancelled
    now_ = e.t;
    execute(e);
    return true;
  }
  return false;
}

void Scheduler::run_until(TimePs t_end) {
  stop_requested_ = false;
  while (!heap_.empty() && !stop_requested_) {
    const TimePs t = heap_.front().t;
    if (t > t_end) break;
    // Drain the whole same-timestamp batch without re-checking the
    // horizon: anything scheduled at `t` during the batch (necessarily
    // with a higher sequence number) joins the same drain.
    do {
      const HeapEntry e = pop_top();
      if (slot_ptr(e.slot)->gen != e.gen) continue;  // cancelled
      now_ = t;
      execute(e);
    } while (!stop_requested_ && !heap_.empty() && heap_.front().t == t);
  }
  if (now_ < t_end && !stop_requested_) now_ = t_end;
}

void Scheduler::run_all() {
  stop_requested_ = false;
  while (!heap_.empty() && !stop_requested_) {
    const TimePs t = heap_.front().t;
    do {
      const HeapEntry e = pop_top();
      if (slot_ptr(e.slot)->gen != e.gen) continue;
      now_ = t;
      execute(e);
    } while (!stop_requested_ && !heap_.empty() && heap_.front().t == t);
  }
}

}  // namespace gfc::sim
