#include "sim/scheduler.hpp"

#include <utility>

namespace gfc::sim {

EventId Scheduler::schedule_at(TimePs t, Callback fn) {
  if (t < now_) t = now_;  // past-dated events fire at now()
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{t, id, std::move(fn)});
  pending_.insert(id);
  return EventId{id};
}

bool Scheduler::cancel(EventId id) {
  // Lazy cancellation: forget the id; the heap entry is skipped when popped.
  // Fired, already-cancelled and never-issued ids are all absent.
  return id.valid() && pending_.erase(id.value) != 0;
}

void Scheduler::fire_top() {
  // Move the callback out before executing: the callback may schedule
  // new events and reallocate the heap.
  Entry top = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  if (pending_.erase(top.id) == 0) return;  // cancelled
  now_ = top.t;
  ++executed_;
  top.fn();
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    const bool live = pending_.contains(heap_.top().id);
    fire_top();
    if (live) return true;
  }
  return false;
}

void Scheduler::run_until(TimePs t_end) {
  stop_requested_ = false;
  while (!heap_.empty() && !stop_requested_) {
    if (heap_.top().t > t_end) break;
    fire_top();
  }
  if (now_ < t_end && !stop_requested_) now_ = t_end;
}

void Scheduler::run_all() {
  stop_requested_ = false;
  while (!heap_.empty() && !stop_requested_) fire_top();
}

}  // namespace gfc::sim
