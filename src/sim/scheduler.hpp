// Discrete-event scheduler, engineered for the per-packet hot path.
//
// Design (this is the hottest code in the repo — see BENCH_microbench.json):
//  - Event callbacks live in a slab of pooled, generation-tagged slots with
//    inline small-callback storage (no per-event std::function heap
//    allocation; oversized callables fall back to one heap thunk). Slots
//    are recycled through a free list, PacketPool-style.
//  - The ready queue is a 4-ary min-heap of 24-byte POD entries
//    (time, FIFO sequence, slot, generation); sifts are plain copies.
//  - cancel() and the pop-side liveness check compare the entry's
//    generation tag against the slot's — O(1), no hashing. A cancelled
//    event's heap entry stays behind and is skipped when popped.
//  - run_until()/run_all() drain same-timestamp batches without
//    re-checking the horizon per event.
//
// Observable semantics are pinned by tests/sim_test.cpp (SchedulerPinned),
// tests/sim_property_test.cpp (random scripts vs a reference model) and
// tests/determinism_test.cpp: events at the same timestamp fire in schedule
// order, which keeps runs deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace gfc::sim {

/// Handle to a scheduled event; pass to Scheduler::cancel(). Encodes
/// (generation << 32) | (slot index + 1); value 0 is the invalid handle.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
};

class Scheduler {
 public:
  Scheduler() = default;
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time. Monotonically non-decreasing.
  TimePs now() const { return now_; }

  /// Schedule `fn` at absolute time `t`. A `t` in the past is clamped to
  /// now(): the event fires "immediately", after the currently-executing
  /// event, before any later-stamped event.
  template <typename F>
  EventId schedule_at(TimePs t, F&& fn) {
    using Fn = std::decay_t<F>;
    if (t < now_) t = now_;  // past-dated events fire at now()
    const std::uint32_t idx = alloc_slot();
    Slot& s = *slot_ptr(idx);
    if constexpr (sizeof(Fn) <= kInlineStorage &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s.storage)) Fn(std::forward<F>(fn));
      // One indirect call on the fire path: invoke + destroy fused (the
      // destructor call folds away for trivially destructible captures).
      s.run = [](void* p) {
        Fn* f = static_cast<Fn*>(p);
        (*f)();
        f->~Fn();
      };
      if constexpr (std::is_trivially_destructible_v<Fn>)
        s.destroy = nullptr;
      else
        s.destroy = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    } else {
      // Oversized/overaligned callable: one heap thunk, pointer inline.
      Fn* heap_fn = new Fn(std::forward<F>(fn));
      ::new (static_cast<void*>(s.storage)) Fn*(heap_fn);
      s.run = [](void* p) {
        Fn* f = *static_cast<Fn**>(p);
        (*f)();
        delete f;
      };
      s.destroy = [](void* p) { delete *static_cast<Fn**>(p); };
    }
    push_entry(HeapEntry{t, next_seq_++, idx, s.gen});
    ++live_;
    return EventId{(static_cast<std::uint64_t>(s.gen) << 32) |
                   (static_cast<std::uint64_t>(idx) + 1)};
  }

  /// Schedule `fn` after `delay` from now.
  template <typename F>
  EventId schedule_in(TimePs delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled
  /// or invalid id is a no-op; returns whether the event was still pending.
  bool cancel(EventId id);

  /// Run events until the queue empties or `t_end` is passed; events
  /// stamped exactly `t_end` are executed. The clock is left at t_end
  /// (even if the queue empties earlier) unless a callback calls
  /// request_stop(), in which case it stays at the last executed event's
  /// time. run_until into the past (t_end < now()) runs nothing and leaves
  /// the clock untouched.
  void run_until(TimePs t_end);

  /// Run until the queue is empty.
  void run_all();

  /// Execute the single next event. Returns false if the queue is empty.
  bool step();

  /// Request that run_until/run_all return after the current event.
  void request_stop() { stop_requested_ = true; }

  std::size_t pending_events() const { return live_; }
  std::uint64_t executed_events() const { return executed_; }

 private:
  /// Inline storage for event callbacks. Sized for the repo's captures
  /// (this + a couple of words); a copied std::function (32 B on
  /// libstdc++) still fits.
  static constexpr std::size_t kInlineStorage = 48;
  static constexpr std::uint32_t kSlotsPerChunk = 256;
  static constexpr std::uint32_t kNoFreeSlot = 0xFFFFFFFFu;

  struct Slot {
    alignas(std::max_align_t) std::byte storage[kInlineStorage];
    void (*run)(void*);      // invoke the callback, then destroy it
    void (*destroy)(void*);  // destroy only (cancel path); nullptr if trivial
    // Generation tag; bumped when the event fires or is cancelled, which
    // invalidates outstanding EventIds and stale heap entries in O(1).
    // Never 0, so a forged/zero EventId can't match. (A tag wraps only
    // after 2^32 reuses of one slot while a stale handle survives —
    // beyond any simulation length we run.)
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoFreeSlot;
  };

  /// POD ready-queue entry; `seq` is the global FIFO tiebreaker.
  struct HeapEntry {
    TimePs t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  Slot* slot_ptr(std::uint32_t idx) {
    return &chunks_[idx / kSlotsPerChunk][idx % kSlotsPerChunk];
  }

  std::uint32_t alloc_slot();
  void release_slot(std::uint32_t idx, Slot& s);

  void push_entry(HeapEntry e);
  /// Pop the heap minimum. Precondition: heap non-empty.
  HeapEntry pop_top();
  /// Run the live event in `e`'s slot (generation already verified).
  void execute(const HeapEntry& e);

  // Slab of stable-address slot chunks plus an intrusive free list.
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t free_head_ = kNoFreeSlot;
  std::uint32_t slots_used_ = 0;  // high-water mark of allocated slots

  std::vector<HeapEntry> heap_;  // 4-ary min-heap
  std::uint64_t next_seq_ = 0;

  TimePs now_ = 0;
  std::size_t live_ = 0;  // scheduled, not yet fired or cancelled
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace gfc::sim
