// Discrete-event scheduler, engineered for the per-packet hot path.
//
// Design (this is the hottest code in the repo — see BENCH_microbench.json):
//  - Event callbacks live in a slab of pooled, generation-tagged slots with
//    inline small-callback storage (no per-event std::function heap
//    allocation; oversized callables fall back to one heap thunk). Slots
//    are recycled through a free list, PacketPool-style.
//  - The ready queue is a hierarchical timing wheel: 4 levels of 64 slots
//    over a 131 ns tick (2^17 ps), one occupancy bitmap word per level, an
//    overflow 4-ary min-heap for events beyond the ~2.2 s wheel horizon,
//    and a "near" batch of 24-byte POD entries holding the events of the
//    tick being drained — appended raw at dump time, sorted once by
//    (time, seq), consumed by index. schedule and cancel are O(1); a pop is
//    an index increment (one sort per drained tick replaces a heap push
//    plus a heap pop per event; the old global heap paid O(log pending)).
//    Events landing in the tick currently being drained splice into the
//    sorted unconsumed tail (binary search + vector insert).
//  - Exact ordering is preserved: wheel slots only partition events by
//    tick; every entry carries the global FIFO sequence number, and events
//    reach execution exclusively through the near batch, which orders by
//    (time, seq). Same-timestamp events therefore fire in schedule order —
//    the determinism discipline every golden output depends on.
//  - cancel(), reschedule() and the pop-side liveness check compare the
//    entry's generation tag against the slot's — O(1), no hashing. A
//    cancelled event's wheel/heap entry stays behind and is discarded when
//    its slot position is next visited.
//
// Observable semantics are pinned by tests/sim_test.cpp (SchedulerPinned),
// tests/sim_property_test.cpp (random scripts vs a reference model),
// tests/scheduler_differential_test.cpp + tests/scheduler_fuzz.cpp (lock-
// step against the PR-1 heap engine kept under tests/) and
// tests/determinism_test.cpp: events at the same timestamp fire in schedule
// order, which keeps runs deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "sim/window.hpp"

namespace gfc::sim {

/// Handle to a scheduled event; pass to Scheduler::cancel(). Encodes
/// (generation << 32) | (slot index + 1); value 0 is the invalid handle.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
};

/// Handle to a persistent timer (Scheduler::register_timer). Encodes slot
/// index + 1; value 0 is the invalid handle.
struct TimerId {
  std::uint32_t value = 0;
  bool valid() const { return value != 0; }
};

class Scheduler {
 public:
  Scheduler();
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time. Monotonically non-decreasing.
  TimePs now() const { return now_; }

  /// Schedule `fn` at absolute time `t`. A `t` in the past is clamped to
  /// now(): the event fires "immediately", after the currently-executing
  /// event, before any later-stamped event.
  template <typename F>
  EventId schedule_at(TimePs t, F&& fn) {
    using Fn = std::decay_t<F>;
    if (t < now_) t = now_;  // past-dated events fire at now()
    const std::uint32_t idx = alloc_slot();
    Slot& s = *slot_ptr(idx);
    if constexpr (sizeof(Fn) <= kInlineStorage &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s.storage)) Fn(std::forward<F>(fn));
      // One indirect call on the fire path: invoke + destroy fused (the
      // destructor call folds away for trivially destructible captures).
      s.run = [](void* p) {
        Fn* f = static_cast<Fn*>(p);
        (*f)();
        f->~Fn();
      };
      if constexpr (std::is_trivially_destructible_v<Fn>)
        s.destroy = nullptr;
      else
        s.destroy = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    } else {
      // Oversized/overaligned callable: one heap thunk, pointer inline.
      Fn* heap_fn = new Fn(std::forward<F>(fn));
      ::new (static_cast<void*>(s.storage)) Fn*(heap_fn);
      s.run = [](void* p) {
        Fn* f = *static_cast<Fn**>(p);
        (*f)();
        delete f;
      };
      s.destroy = [](void* p) { delete *static_cast<Fn**>(p); };
    }
    queue_call(t, idx, s.gen);
    ++live_;
    return EventId{(static_cast<std::uint64_t>(s.gen) << 32) |
                   (static_cast<std::uint64_t>(idx) + 1)};
  }

  /// Schedule `fn` after `delay` from now.
  template <typename F>
  EventId schedule_in(TimePs delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled
  /// or invalid id is a no-op; returns whether the event was still pending.
  bool cancel(EventId id);

  /// Move a pending event to absolute time `t` (clamped to now()), keeping
  /// its callback — the wake-timer churn path (cancel + schedule of the
  /// same closure) without destroying and re-constructing the callback or
  /// cycling the slot through the free list. Takes a fresh FIFO sequence
  /// number, exactly as a cancel+schedule at this point would, so
  /// same-timestamp ordering is indistinguishable from the two-call form.
  /// Returns the new id (the old id is invalidated); returns the invalid
  /// id if the event already fired or was cancelled (nothing is scheduled
  /// then — callers fall back to schedule_at).
  EventId reschedule(EventId id, TimePs t);

  /// Reset to the just-constructed state, retaining every allocated
  /// capacity (callback slots, wheel nodes, heap storage). Pending events
  /// are destroyed without being fired, in O(pending) — not O(pending ·
  /// log pending) heap draining. Outstanding EventIds and TimerIds are
  /// invalidated (timer callbacks are destroyed too), and a cleared
  /// scheduler re-issues exactly the EventId sequence a freshly
  /// constructed one would (slot indices and generations restart), which
  /// keeps campaign runs that reuse one scheduler byte-identical to
  /// fresh-scheduler runs.
  void clear();

  // --- persistent timers (batched wire events) ----------------------------
  // A timer is a pre-registered event slot whose callback is constructed
  // once and fired many times: arming allocates nothing and constructs
  // nothing, so N back-to-back transmissions on a saturated port arm one
  // drain timer N times instead of building and tearing down N one-shot
  // events. Arming takes a fresh FIFO sequence number at the call site,
  // exactly like schedule_at, so event ordering — and every golden output —
  // is indistinguishable from the one-shot form.

  /// Register `fn` as a reusable timer. The callback is kept alive until
  /// clear() or destruction. Returns a handle for arm/disarm; never 0.
  template <typename F>
  TimerId register_timer(F&& fn) {
    using Fn = std::decay_t<F>;
    const std::uint32_t idx = alloc_slot();
    Slot& s = *slot_ptr(idx);
    static_assert(sizeof(Fn) <= kInlineStorage &&
                      alignof(Fn) <= alignof(std::max_align_t),
                  "timer callbacks must fit the inline slot storage");
    ::new (static_cast<void*>(s.storage)) Fn(std::forward<F>(fn));
    // Invoke WITHOUT destroying: the callback survives the firing (and may
    // re-arm its own timer from inside it).
    s.run = [](void* p) { (*static_cast<Fn*>(p))(); };
    if constexpr (std::is_trivially_destructible_v<Fn>)
      s.destroy = nullptr;
    else
      s.destroy = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    s.persistent = true;
    s.armed = false;
    return TimerId{idx + 1};
  }

  /// Register `fn` as a multishot timer: any number of firings may be
  /// pending at once (fire_at queues one more; there is no per-firing
  /// cancel). The per-firing payload lives with the caller — wire FIFOs
  /// keep their own packet queue and pop one head per firing, so a
  /// saturated link's N in-flight packets share one registered callback
  /// instead of constructing and destroying N one-shot closures. Each
  /// fire_at takes a fresh FIFO sequence number exactly where schedule_at
  /// did, so event ordering is unchanged.
  template <typename F>
  TimerId register_multishot(F&& fn) {
    const TimerId id = register_timer(std::forward<F>(fn));
    slot_ptr(id.value - 1)->multishot = true;
    return id;
  }

  /// Queue one more firing of a multishot timer at absolute time `t`,
  /// clamped to now().
  void fire_at(TimerId timer, TimePs t);

  /// Arm (or re-arm) the timer to fire at absolute time `t`, clamped to
  /// now(). An already-armed timer is moved — at most one firing is ever
  /// pending. Legal from inside the timer's own callback.
  void arm_timer(TimerId timer, TimePs t);

  /// Cancel the pending firing, if any. The callback stays registered.
  void disarm_timer(TimerId timer);

  /// Whether the timer has a pending firing.
  bool timer_armed(TimerId timer) {
    return timer.valid() && slot_ptr(timer.value - 1)->armed;
  }

  /// Run events until the queue empties or `t_end` is passed; events
  /// stamped exactly `t_end` are executed. The clock is left at t_end
  /// (even if the queue empties earlier) unless a callback calls
  /// request_stop(), in which case it stays at the last executed event's
  /// time. run_until into the past (t_end < now()) runs nothing and leaves
  /// the clock untouched.
  void run_until(TimePs t_end);

  /// Run until the queue is empty.
  void run_all();

  /// Execute the single next event. Returns false if the queue is empty.
  bool step();

  /// Request that run_until/run_all return after the current event.
  void request_stop() { stop_requested_ = true; }

  /// Whether request_stop() fired during the last run_until/run_all (or
  /// since clear_stop()). The sharded coordinator polls this between
  /// boundary steps instead of calling run_until.
  bool stop_requested() const { return stop_requested_; }
  void clear_stop() { stop_requested_ = false; }

  std::size_t pending_events() const { return live_; }
  std::uint64_t executed_events() const { return executed_; }

  // --- sharded-PDES hooks (src/par) ---------------------------------------
  // Three sequencing modes for the FIFO tiebreaker:
  //  - own counter (default): the classic single-threaded engine;
  //  - direct: seqs come from a shared global counter (coordinator-side
  //    single-threaded setup and boundary steps across many schedulers);
  //  - window: seqs are provisional (kProvSeqBit | local counter) and every
  //    sequence-taking call is logged for barrier-merge reassignment.
  // The merge algorithm and the determinism argument live in src/par.

  /// Install (or remove, with nullptr) a shared global sequence counter.
  void set_seq_source(std::uint64_t* shared) { shared_seq_ = shared; }

  /// Next FIFO sequence number the own counter would assign. The sharded
  /// engine seeds its shared global counter from the main scheduler's
  /// value at attach time, so the combined sequence stream continues
  /// exactly where the single-threaded one stood.
  std::uint64_t next_seq() const { return next_seq_; }

  /// Enter window mode: log sequence-taking calls into `log`, assign
  /// provisional keys, and defer (log without queuing) any call that
  /// targets t >= end_t — those are applied with true sequence numbers by
  /// apply_logged_insert() at the barrier. The window executes keys
  /// strictly below (end_t, end_seq); end_seq is a true (untagged) global
  /// sequence, so every provisional key at end_t sorts at or past the end.
  void begin_window(WindowLog* log, TimePs end_t, std::uint64_t end_seq) {
    window_log_ = log;
    win_end_t_ = end_t;
    win_end_seq_ = end_seq;
    prov_next_ = 0;
  }
  void end_window() { window_log_ = nullptr; }
  bool in_window() const { return window_log_ != nullptr; }

  /// Execute every pending event with key < (end_t, end_seq) of
  /// begin_window(). `poll`, when non-null, is consulted every 4096 events;
  /// returning true aborts the window (the caller abandons the run).
  /// Returns false iff aborted.
  using PollFn = bool (*)(void*);
  bool run_window(PollFn poll, void* poll_ctx);

  /// Jump the clock forward without executing anything (never backward).
  /// Legal only when every pending key at or below `t` has been executed —
  /// the coordinator advances all shard clocks to each boundary step's
  /// timestamp so now()-dependent callbacks observe the sequential clock.
  void advance_now(TimePs t) {
    if (t > now_) now_ = t;
  }

  /// Earliest pending key without consuming it. False when empty. Between
  /// windows every key is a true global sequence.
  bool peek_next_key(TimePs* t, std::uint64_t* seq) {
    HeapEntry e;
    if (!peek_live(&e)) return false;
    *t = e.t;
    *seq = e.seq;
    return true;
  }

  /// Barrier-merge apply of a deferred logged call: queue (t, seq) for
  /// `slot` iff the slot generation still matches (a mismatch means the
  /// event was cancelled/re-armed later in the window; the merge consumed
  /// its sequence number regardless, exactly like the sequential engine).
  /// `bump_live` is set for cross-shard multishot fire_at, whose live
  /// count could not be touched from the foreign thread.
  void apply_logged_insert(std::uint32_t slot, std::uint32_t gen, TimePs t,
                           std::uint64_t seq, bool bump_live) {
    Slot& s = *slot_ptr(slot);
    if (s.gen != gen) return;
    insert_entry(t, seq, slot, gen);
    if (bump_live) ++live_;
  }

  /// Slot generation of a registered timer — stable for multishot timers
  /// (never bumped while registered), which makes the cross-shard fire_at
  /// log entry safe to stamp from the sending shard's thread.
  std::uint32_t timer_gen(TimerId timer) {
    return slot_ptr(timer.value - 1)->gen;
  }

 private:
  /// Inline storage for event callbacks. Sized for the repo's captures
  /// (this + a couple of words); a copied std::function (32 B on
  /// libstdc++) still fits.
  static constexpr std::size_t kInlineStorage = 48;
  static constexpr std::uint32_t kSlotsPerChunk = 256;
  static constexpr std::uint32_t kNoFreeSlot = 0xFFFFFFFFu;

  // --- timing-wheel geometry ------------------------------------------------
  // Tick width 2^17 ps = 131.072 ns: a 1500 B frame at 10 Gb/s (1.2 us)
  // spans ~9 ticks, so the dominant short-horizon timers (tx completions,
  // wake timers, rate-gate reprograms, PFC refresh) land in level 0/1.
  // Four levels of 64 slots cover 64^4 ticks ~ 2.2 s; rarer far-horizon
  // events (run horizons, stats flushes) go to the overflow heap and are
  // promoted to the near heap when the cursor reaches their tick.
  static constexpr int kTickShift = 17;
  static constexpr int kLevelBits = 6;
  static constexpr int kLevels = 4;
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kLevelBits;  // 64
  static constexpr std::uint32_t kSlotMask = kSlotsPerLevel - 1;
  static constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;
  /// Wheel horizon in ticks: 64^4.
  static constexpr std::int64_t kHorizonTicks = std::int64_t{1}
                                                << (kLevelBits * kLevels);

  using Tick = std::int64_t;
  static Tick tick_of(TimePs t) { return t >> kTickShift; }

  struct Slot {
    alignas(std::max_align_t) std::byte storage[kInlineStorage];
    void (*run)(void*);      // invoke the callback, then destroy it
    void (*destroy)(void*);  // destroy only (cancel path); nullptr if trivial
    // Generation tag; bumped when the event fires, is cancelled or is
    // rescheduled, which invalidates outstanding EventIds and stale queue
    // entries in O(1). Never 0, so a forged/zero EventId can't match. (A
    // tag wraps only after 2^32 reuses of one slot while a stale handle
    // survives — beyond any simulation length we run.)
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoFreeSlot;
    // Persistent-timer slots (register_timer): the callback outlives each
    // firing and the slot never enters the free list while registered.
    bool persistent = false;
    bool armed = false;  // persistent only: a firing is pending
    // Multishot timers allow many pending firings: the generation is never
    // bumped while registered, so every queued entry stays live.
    bool multishot = false;
  };

  /// POD ready-queue entry; `seq` is the global FIFO tiebreaker. Used by
  /// both the near batch (events at or below the cursor tick) and the
  /// overflow heap (events beyond the wheel horizon).
  struct HeapEntry {
    TimePs t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Pooled wheel-slot list node (singly linked, intra-slot order is
  /// irrelevant: the near batch re-establishes (t, seq) order at dump time).
  struct WheelNode {
    TimePs t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
    std::uint32_t next;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  Slot* slot_ptr(std::uint32_t idx) {
    return &chunks_[idx / kSlotsPerChunk][idx % kSlotsPerChunk];
  }

  std::uint32_t alloc_slot();
  void release_slot(std::uint32_t idx, Slot& s);

  /// Queue a sequence-taking call for `slot` at time `t` under the active
  /// sequencing mode (own counter / shared counter / window log).
  void queue_call(TimePs t, std::uint32_t slot, std::uint32_t gen);

  /// Route a pending entry to the near batch (tick <= cursor), a wheel slot
  /// (within the horizon) or the overflow heap.
  void insert_entry(TimePs t, std::uint64_t seq, std::uint32_t slot,
                    std::uint32_t gen);
  void wheel_link(int level, std::uint32_t wslot, TimePs t, std::uint64_t seq,
                  std::uint32_t slot, std::uint32_t gen);

  /// Advance the cursor to the earliest occupied wheel/overflow position,
  /// if its tick is <= `limit`: cascade higher-level slots starting there,
  /// dump its level-0 slot and matching overflow entries into the near
  /// batch (sorted once). Returns false when nothing is pending at or
  /// below `limit`.
  bool advance_once(Tick limit);

  /// Reset and refill the near batch from the wheel/overflow. False when
  /// empty. Only legal once the previous batch is fully consumed.
  bool refill_near();

  /// Earliest still-live pending entry without consuming it (stale entries
  /// at the consume index are skipped on the way). False when nothing is
  /// pending.
  bool peek_live(HeapEntry* out);

  /// Run the live event in `e`'s slot (generation already verified).
  void execute(const HeapEntry& e);

  void destroy_pending_callbacks();

  // Slab of stable-address slot chunks plus an intrusive free list.
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t free_head_ = kNoFreeSlot;
  std::uint32_t slots_used_ = 0;  // high-water mark of allocated slots

  // Timing wheel + near/overflow heaps (see geometry above).
  std::uint32_t wheel_[kLevels][kSlotsPerLevel];  // head node per slot
  std::uint64_t occ_[kLevels] = {0, 0, 0, 0};     // occupancy bitmaps
  Tick cur_tick_ = 0;                             // wheel cursor
  std::vector<WheelNode> nodes_;                  // wheel node pool
  std::uint32_t node_free_ = kNoNode;
  std::vector<HeapEntry> near_;      // sorted batch, (t, seq) order
  std::size_t near_idx_ = 0;         // consume cursor into near_
  std::vector<HeapEntry> overflow_;  // 4-ary min-heap, (t, seq) order

  std::uint64_t next_seq_ = 0;

  // Sharded-PDES sequencing state (see the public hooks above). All null /
  // zero in the single-threaded engine.
  std::uint64_t* shared_seq_ = nullptr;  // direct mode: shared global counter
  WindowLog* window_log_ = nullptr;      // window mode when non-null
  TimePs win_end_t_ = 0;
  std::uint64_t win_end_seq_ = 0;
  std::uint64_t prov_next_ = 0;  // provisional-seq counter, reset per window

  TimePs now_ = 0;
  std::size_t live_ = 0;  // scheduled, not yet fired or cancelled
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace gfc::sim
