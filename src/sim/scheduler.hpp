// Discrete-event scheduler: a binary heap of timestamped callbacks with
// O(1) lazy cancellation. Events at the same timestamp fire in the order
// they were scheduled, which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace gfc::sim {

/// Handle to a scheduled event; pass to Scheduler::cancel().
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time. Monotonically non-decreasing.
  TimePs now() const { return now_; }

  /// Schedule `fn` at absolute time `t`. A `t` in the past is clamped to
  /// now(): the event fires "immediately", after the currently-executing
  /// event, before any later-stamped event.
  EventId schedule_at(TimePs t, Callback fn);

  /// Schedule `fn` after `delay` from now.
  EventId schedule_in(TimePs delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired or invalid id is a
  /// no-op; returns whether the event was still pending.
  bool cancel(EventId id);

  /// Run events until the queue empties or `t_end` is passed; events
  /// stamped exactly `t_end` are executed. The clock is left at t_end
  /// (even if the queue empties earlier) unless a callback calls
  /// request_stop(), in which case it stays at the last executed event's
  /// time. run_until into the past (t_end < now()) runs nothing and leaves
  /// the clock untouched.
  void run_until(TimePs t_end);

  /// Run until the queue is empty.
  void run_all();

  /// Execute the single next event. Returns false if the queue is empty.
  bool step();

  /// Request that run_until/run_all return after the current event.
  void request_stop() { stop_requested_ = true; }

  std::size_t pending_events() const { return pending_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    TimePs t;
    std::uint64_t id;  // doubles as tiebreaker: lower id fires first
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;
    }
  };

  /// Pop and run the top entry. Precondition: heap non-empty.
  void fire_top();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Ids of scheduled-but-not-yet-fired, not-cancelled events. cancel()
  // erases from here (lazily leaving the heap entry in place); the pop path
  // skips entries whose id is gone. Membership is the single source of
  // truth for "still pending", so cancelling a fired id is a clean no-op.
  std::unordered_set<std::uint64_t> pending_;
  TimePs now_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace gfc::sim
