#include "sim/time.hpp"

#include <cstdio>

namespace gfc::sim {

std::string format_time(TimePs t) {
  char buf[64];
  if (t == kTimeNever) return "never";
  if (t >= kPsPerSec) {
    std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds(t));
  } else if (t >= kPsPerMs) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_ms(t));
  } else if (t >= kPsPerUs) {
    std::snprintf(buf, sizeof(buf), "%.3fus", to_us(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fns", static_cast<double>(t) / kPsPerNs);
  }
  return buf;
}

std::string format_rate(Rate r) {
  char buf[64];
  if (r.bps >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fGbps", r.gbps());
  } else if (r.bps >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fMbps", static_cast<double>(r.bps) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fKbps", static_cast<double>(r.bps) / 1e3);
  }
  return buf;
}

}  // namespace gfc::sim
