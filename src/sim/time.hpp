// Simulation clock and physical units.
//
// The engine runs on an integer picosecond clock: one byte at 100 Gb/s
// serializes in exactly 80 ps, so every transmission boundary in the
// evaluated configurations (10/40/100 Gb/s) is exactly representable and
// runs are bit-for-bit deterministic.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace gfc::sim {

/// Simulation time in picoseconds since t = 0.
using TimePs = std::int64_t;

inline constexpr TimePs kPsPerNs = 1'000;
inline constexpr TimePs kPsPerUs = 1'000'000;
inline constexpr TimePs kPsPerMs = 1'000'000'000;
inline constexpr TimePs kPsPerSec = 1'000'000'000'000;

/// Sentinel "never" timestamp.
inline constexpr TimePs kTimeNever = std::numeric_limits<TimePs>::max();

constexpr TimePs ns(double v) { return static_cast<TimePs>(v * kPsPerNs); }
constexpr TimePs us(double v) { return static_cast<TimePs>(v * kPsPerUs); }
constexpr TimePs ms(double v) { return static_cast<TimePs>(v * kPsPerMs); }
constexpr TimePs seconds(double v) { return static_cast<TimePs>(v * kPsPerSec); }

constexpr double to_seconds(TimePs t) { return static_cast<double>(t) / kPsPerSec; }
constexpr double to_us(TimePs t) { return static_cast<double>(t) / kPsPerUs; }
constexpr double to_ms(TimePs t) { return static_cast<double>(t) / kPsPerMs; }

/// Link/line rate. Strong type so a raw byte count can't be mistaken
/// for a rate; stored in bits per second.
struct Rate {
  std::int64_t bps = 0;

  constexpr auto operator<=>(const Rate&) const = default;

  constexpr bool is_zero() const { return bps <= 0; }
  constexpr double gbps() const { return static_cast<double>(bps) / 1e9; }
  /// Bytes transferred over an interval at this rate (floor).
  constexpr std::int64_t bytes_in(TimePs dt) const {
    return static_cast<std::int64_t>(
        (static_cast<__int128>(bps) * dt) / (8 * static_cast<__int128>(kPsPerSec)));
  }
};

constexpr Rate bps(std::int64_t v) { return Rate{v}; }
constexpr Rate kbps(double v) { return Rate{static_cast<std::int64_t>(v * 1e3)}; }
constexpr Rate mbps(double v) { return Rate{static_cast<std::int64_t>(v * 1e6)}; }
constexpr Rate gbps(double v) { return Rate{static_cast<std::int64_t>(v * 1e9)}; }

constexpr Rate operator*(Rate r, double f) {
  return Rate{static_cast<std::int64_t>(static_cast<double>(r.bps) * f)};
}
constexpr Rate operator/(Rate r, double f) {
  return Rate{static_cast<std::int64_t>(static_cast<double>(r.bps) / f)};
}

/// Serialization delay of `bytes` at `rate`, rounded up so the modeled
/// sender never exceeds the physical rate. Frame-sized byte counts keep
/// the whole computation in 64 bits (one hardware divide on the per-packet
/// path); only jumbo multi-megabyte counts pay the 128-bit libcall.
constexpr TimePs tx_time(Rate rate, std::int64_t bytes) {
  if (rate.is_zero()) return kTimeNever;
  if (bytes >= 0 && bytes < (std::int64_t{1} << 20)) {
    const std::int64_t num = bytes * 8 * kPsPerSec;  // < 2^63 for bytes < 2^20
    return (num + rate.bps - 1) / rate.bps;
  }
  const __int128 num = static_cast<__int128>(bytes) * 8 * kPsPerSec;
  return static_cast<TimePs>((num + rate.bps - 1) / rate.bps);
}

/// Human-readable "12.345 us" style rendering (for traces and logs).
std::string format_time(TimePs t);
std::string format_rate(Rate r);

}  // namespace gfc::sim
