// Window-log structures for the sharded parallel core (src/par).
//
// In a conservative tau-lookahead window, each shard's Scheduler executes
// with *provisional* sequence numbers (kProvSeqBit | local counter) and
// records every globally-visible side effect of every executed event into
// its WindowLog: sequence-taking scheduler calls, packet-id allocations,
// staged trace records, and delivery notifications. At the barrier the
// coordinator replays the per-shard logs in true global (time, seq) order,
// assigning real sequence numbers and packet ids from the shared global
// counters — which makes every stat, trace byte and results-store byte
// identical to the single-threaded engine at any shard count. See
// src/par/engine.cpp for the merge algorithm and the ordering proof.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace gfc::sim {

class Scheduler;

/// Provisional-sequence tag. Keys assigned inside a window carry this bit,
/// so they compare after every true global sequence number (the global
/// counter never gets near 2^63) — a pre-window entry always outranks a
/// same-timestamp in-window insert until the merge assigns true keys.
inline constexpr std::uint64_t kProvSeqBit = std::uint64_t{1} << 63;

/// One logged side effect of an event executed inside a window.
struct WinRecord {
  enum Kind : std::uint8_t {
    kCall = 0,      // sequence-taking scheduler call (schedule/fire/arm/resched)
    kAlloc = 1,     // packet-id allocation from a shard pool
    kTrace = 2,     // staged trace record (aux indexes the shard's stage)
    kDelivery = 3,  // Network delivery notification (replayed on the merge)
  };
  enum Flags : std::uint8_t {
    kDeferred = 1,     // kCall: targets t >= window end; queued at the barrier
    kForeignLive = 2,  // kCall: bump the target's live count when applied
                       // (cross-shard multishot fire_at)
    kSplit = 4,        // kCall: final-hop wire arrival that completes a flow —
                       // the coordinator must run it as a boundary step
  };
  std::uint8_t kind = kCall;
  std::uint8_t flags = 0;
  std::uint32_t slot = 0;  // kCall: callback slot index on the target
  std::uint32_t gen = 0;   // kCall: slot generation at call time (staleness)
  std::uint32_t aux = 0;   // kTrace: stage index; kDelivery: payload bytes
  std::int64_t t = 0;      // kCall: target time; kDelivery: delivery time
  std::uint64_t prov = 0;  // kCall: provisional seq; kAlloc: provisional
                           // packet id; kDelivery: flow id
  void* target = nullptr;  // kCall: foreign Scheduler (null = own);
                           // kAlloc: the Packet whose id gets patched
};

/// One executed event: its queue key and its record range.
struct WinGroup {
  TimePs t = 0;
  std::uint64_t key = 0;   // true seq (pre-window entry) or provisional
  std::uint32_t first = 0; // records [first, first + n) belong to this event
  std::uint32_t n = 0;
};

/// Per-shard log of one window. Groups are appended in shard execution
/// order, which is the global (t, key) order restricted to this shard.
struct WindowLog {
  std::vector<WinGroup> groups;
  std::vector<WinRecord> recs;
  void clear() {
    groups.clear();
    recs.clear();
  }
};

}  // namespace gfc::sim
