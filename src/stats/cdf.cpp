#include "stats/cdf.hpp"

#include <algorithm>
#include <cmath>

namespace gfc::stats {

void CdfBuilder::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double CdfBuilder::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double CdfBuilder::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double CdfBuilder::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double CdfBuilder::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(rank));
  return samples_[std::min(idx, samples_.size() - 1)];
}

std::vector<std::pair<double, double>> CdfBuilder::points(int n) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || n <= 1) return out;
  ensure_sorted();
  for (int i = 0; i < n; ++i) {
    const double q = static_cast<double>(i) / (n - 1);
    out.push_back({quantile(q), q});
  }
  return out;
}

}  // namespace gfc::stats
