// Sample accumulator with quantile / CDF extraction (Figure 19 and the
// Table-1 companion statistics).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace gfc::stats {

class CdfBuilder {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// q in [0, 1]; nearest-rank quantile.
  double quantile(double q) const;
  /// `n` evenly spaced (value, cumulative probability) points.
  std::vector<std::pair<double, double>> points(int n) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace gfc::stats
