#include "stats/deadlock.hpp"

#include <algorithm>
#include <map>

namespace gfc::stats {

DeadlockDetector::DeadlockDetector(net::Network& net, Options opts)
    : net_(net),
      opts_(opts),
      probe_(net.sched(), opts.period, [this](sim::TimePs now) { scan(now); }) {}

bool DeadlockDetector::cycle_now(std::vector<std::pair<net::NodeId, int>>* cycle) {
  const sim::TimePs now = net_.sched().now();
  // 1. Collect hold-and-wait egress ports.
  std::map<std::pair<net::NodeId, int>, int> ids;
  std::vector<std::pair<net::NodeId, int>> ports;
  for (std::size_t n = 0; n < net_.node_count(); ++n) {
    net::Node& node = net_.node(static_cast<net::NodeId>(n));
    for (int p = 0; p < node.port_count(); ++p) {
      if (node.port(p).probe_hold_and_wait(now)) {
        ids[{node.id(), p}] = static_cast<int>(ports.size());
        ports.push_back({node.id(), p});
      }
    }
  }
  if (ports.empty()) return false;

  // 2. Wait-for edges: stalled egress (A, p) waits on the ingress buffer of
  //    B = peer(A, p); that buffer's queue heads target egress ports of B;
  //    if those are stalled too, the wait continues through them.
  std::vector<std::vector<int>> edges(ports.size());
  std::vector<int> targets;
  for (std::size_t i = 0; i < ports.size(); ++i) {
    net::Node& a = net_.node(ports[i].first);
    const auto peer = a.peer(ports[i].second);
    if (peer.node == net::kInvalidNode) continue;
    auto* b = dynamic_cast<net::SwitchNode*>(&net_.node(peer.node));
    if (b == nullptr) continue;  // hosts sink everything
    b->head_targets(peer.port, &targets);
    for (int q : targets) {
      const auto it = ids.find({b->id(), q});
      if (it != ids.end()) edges[i].push_back(it->second);
    }
  }

  // 3. Cycle detection (tri-color DFS with parent chain for the witness).
  const int n = static_cast<int>(ports.size());
  std::vector<int> color(static_cast<std::size_t>(n), 0);
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  for (int root = 0; root < n; ++root) {
    if (color[static_cast<std::size_t>(root)] != 0) continue;
    std::vector<std::pair<int, std::size_t>> stack{{root, 0}};
    color[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next < edges[static_cast<std::size_t>(v)].size()) {
        const int w = edges[static_cast<std::size_t>(v)][next++];
        if (color[static_cast<std::size_t>(w)] == 0) {
          color[static_cast<std::size_t>(w)] = 1;
          parent[static_cast<std::size_t>(w)] = v;
          stack.push_back({w, 0});
        } else if (color[static_cast<std::size_t>(w)] == 1) {
          if (cycle != nullptr) {
            std::vector<int> cyc{v};
            for (int u = v; u != w; u = parent[static_cast<std::size_t>(u)])
              cyc.push_back(parent[static_cast<std::size_t>(u)]);
            std::reverse(cyc.begin(), cyc.end());
            cycle->clear();
            for (int u : cyc) cycle->push_back(ports[static_cast<std::size_t>(u)]);
          }
          return true;
        }
      } else {
        color[static_cast<std::size_t>(v)] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

void DeadlockDetector::recover_cycle(
    const std::vector<std::pair<net::NodeId, int>>& cycle) {
  // Witness-cycle members are always switch egress ports (edges only ever
  // lead into switches); draining them releases the ingress claims the
  // cycle's PAUSE/credit state is wedged on.
  for (const auto& [nid, port] : cycle) {
    if (auto* sw = net_.sw(nid)) {
      const std::uint64_t dropped = sw->drain_egress(port);
      recovered_packets_ += dropped;
      net_.trace_event(trace::EventType::kDeadlockRecover, nid, port, -1, 0,
                       static_cast<std::int64_t>(dropped));
    }
  }
  ++recoveries_;
}

void DeadlockDetector::scan(sim::TimePs now) {
  if (deadlocked_) return;
  std::vector<std::pair<net::NodeId, int>> cycle;
  if (cycle_now(&cycle)) {
    ++consecutive_;
    if (consecutive_ >= opts_.confirm_scans) {
      ++detections_;
      if (detected_at_ < 0) {
        detected_at_ = now;  // first confirmation, kept across recoveries
        cycle_ = cycle;
      }
      consecutive_ = 0;
      // One trace event per witness-cycle member; value indexes the
      // position within the cycle so the dump reconstructs its order.
      for (std::size_t i = 0; i < cycle.size(); ++i)
        net_.trace_event(trace::EventType::kDeadlockDetect, cycle[i].first,
                         cycle[i].second, -1, static_cast<std::uint64_t>(i),
                         static_cast<std::int64_t>(cycle.size()));
      if (opts_.on_detect) opts_.on_detect(*this);
      if (opts_.recover) {
        recover_cycle(cycle);
      } else {
        deadlocked_ = true;
        if (opts_.stop_on_detect) net_.sched().request_stop();
      }
    }
  } else {
    consecutive_ = 0;
  }
}

}  // namespace gfc::stats
