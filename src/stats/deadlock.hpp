// Runtime deadlock detection.
//
// A port is in hold-and-wait when it is idle, holds data, and its gate
// blocks every head-of-line packet with no self-scheduled wake (PFC pause /
// CBFC credit exhaustion; GFC's rate limiter always has a wake time, so GFC
// ports never qualify — exactly the paper's argument). Deadlock is declared
// when the wait-for graph over hold-and-wait ports contains a cycle for
// `confirm_scans` consecutive scans: stalled egress A->B waits on the
// stalled egress ports of B that hold packets charged to the A->B ingress.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "stats/probe.hpp"

namespace gfc::stats {

class DeadlockDetector;

struct DeadlockOptions {
  sim::TimePs period = sim::ms(1);
  int confirm_scans = 3;
  bool stop_on_detect = false;  // halt the scheduler at detection
  /// Recovery mode: instead of latching `deadlocked`, drain the witness
  /// cycle's egress queues (dropping their packets, releasing ingress
  /// accounting so PAUSE/credit state heals) and keep scanning. The run
  /// continues; detections/recoveries/dropped counts are reported instead.
  bool recover = false;
  /// Called at every confirmed detection, after the witness cycle is
  /// captured but before any recovery drain — the flight-recorder dump
  /// hook. May call DeadlockDetector::stop() (the detector's probe survives
  /// reentrant stops), hence the non-const reference; lambdas taking a
  /// const reference convert fine.
  std::function<void(DeadlockDetector&)> on_detect;
};

class DeadlockDetector {
 public:
  using Options = DeadlockOptions;

  explicit DeadlockDetector(net::Network& net, Options opts = {});

  bool deadlocked() const { return deadlocked_; }
  sim::TimePs detected_at() const { return detected_at_; }
  /// The witness cycle: (node id, egress port index) pairs.
  const std::vector<std::pair<net::NodeId, int>>& cycle() const { return cycle_; }

  /// Confirmed deadlocks seen (>= 1 per recovery in recover mode; 0 or 1
  /// otherwise, matching `deadlocked`).
  int detections() const { return detections_; }
  /// Completed drain-and-reset recoveries (recover mode only).
  int recoveries() const { return recoveries_; }
  /// Data packets discarded while draining witness cycles.
  std::uint64_t recovered_packets() const { return recovered_packets_; }

  /// One-shot analysis at the current instant (also used by tests).
  bool cycle_now(std::vector<std::pair<net::NodeId, int>>* cycle = nullptr);

  /// Stop scanning. Safe from inside on_detect (i.e. mid-scan).
  void stop() { probe_.stop(); }

 private:
  void scan(sim::TimePs now);
  void recover_cycle(const std::vector<std::pair<net::NodeId, int>>& cycle);

  net::Network& net_;
  Options opts_;
  PeriodicProbe probe_;
  int consecutive_ = 0;
  bool deadlocked_ = false;
  sim::TimePs detected_at_ = -1;
  int detections_ = 0;
  int recoveries_ = 0;
  std::uint64_t recovered_packets_ = 0;
  std::vector<std::pair<net::NodeId, int>> cycle_;
};

}  // namespace gfc::stats
