#include "stats/feedback.hpp"

namespace gfc::stats {

FeedbackBandwidthMonitor::FeedbackBandwidthMonitor(net::Network& net,
                                                   sim::TimePs window)
    : net_(net),
      window_(window),
      probe_(net.sched(), window, [this](sim::TimePs now) { sample(now); }) {
  last_ctrl_bytes_.resize(net.node_count());
  for (std::size_t n = 0; n < net.node_count(); ++n)
    last_ctrl_bytes_[n].assign(
        static_cast<std::size_t>(net.node(static_cast<net::NodeId>(n)).port_count()),
        0);
}

void FeedbackBandwidthMonitor::sample(sim::TimePs) {
  const double window_sec = sim::to_seconds(window_);
  for (std::size_t n = 0; n < net_.node_count(); ++n) {
    net::Node& node = net_.node(static_cast<net::NodeId>(n));
    if (!node.is_switch()) continue;  // feedback originates at switches
    for (int p = 0; p < node.port_count(); ++p) {
      const std::uint64_t cur = node.port(p).tx_control_bytes();
      std::uint64_t& last = last_ctrl_bytes_[n][static_cast<std::size_t>(p)];
      const double bits = static_cast<double>(cur - last) * 8.0;
      last = cur;
      const double cap = static_cast<double>(node.port(p).line_rate().bps);
      cdf_.add(bits / (cap * window_sec));
    }
  }
}

}  // namespace gfc::stats
