// Feedback-message bandwidth accounting (Figure 19): every `window` it
// samples, per switch egress port, the fraction of link capacity consumed
// by flow-control frames in that window.
#pragma once

#include <vector>

#include "net/network.hpp"
#include "stats/cdf.hpp"
#include "stats/probe.hpp"

namespace gfc::stats {

class FeedbackBandwidthMonitor {
 public:
  FeedbackBandwidthMonitor(net::Network& net, sim::TimePs window = sim::us(500));

  /// Per-port per-window occupied-bandwidth fractions (0..1).
  const CdfBuilder& samples() const { return cdf_; }
  double mean_fraction() const { return cdf_.mean(); }
  double p99_fraction() const { return cdf_.quantile(0.99); }
  double max_fraction() const { return cdf_.max(); }

 private:
  void sample(sim::TimePs now);

  net::Network& net_;
  sim::TimePs window_;
  PeriodicProbe probe_;
  std::vector<std::vector<std::uint64_t>> last_ctrl_bytes_;  // [node][port]
  CdfBuilder cdf_;
};

}  // namespace gfc::stats
