#include "stats/flow_stats.hpp"

#include <algorithm>
#include <cmath>

namespace gfc::stats {

FlowStats::FlowStats(net::Network& net,
                     std::function<sim::TimePs(const net::Flow&)> ideal_fct)
    : ideal_fct_(std::move(ideal_fct)) {
  net.add_completion_listener([this](net::Flow& flow) {
    const sim::TimePs fct = flow.finish_time - flow.start_time;
    const sim::TimePs ideal = ideal_fct_(flow);
    records_.push_back(Record{flow.id, flow.size_bytes, fct,
                              ideal > 0 ? static_cast<double>(fct) /
                                              static_cast<double>(ideal)
                                        : 1.0});
  });
}

double FlowStats::mean_slowdown() const {
  if (records_.empty()) return 0.0;
  double sum = 0;
  for (const auto& r : records_) sum += r.slowdown;
  return sum / static_cast<double>(records_.size());
}

double FlowStats::mean_fct_us() const {
  if (records_.empty()) return 0.0;
  double sum = 0;
  for (const auto& r : records_) sum += sim::to_us(r.fct);
  return sum / static_cast<double>(records_.size());
}

double FlowStats::slowdown_quantile(double q) const {
  if (records_.empty()) return 0.0;
  std::vector<double> s;
  s.reserve(records_.size());
  for (const auto& r : records_) s.push_back(r.slowdown);
  std::sort(s.begin(), s.end());
  const auto idx = static_cast<std::size_t>(
      std::llround(q * static_cast<double>(s.size() - 1)));
  return s[std::min(idx, s.size() - 1)];
}

sim::TimePs FlowStats::default_ideal_fct(const net::Flow& flow,
                                         sim::Rate line_rate, int hops,
                                         sim::TimePs prop_delay,
                                         std::int64_t mtu) {
  const std::int64_t size = flow.size_bytes > 0 ? flow.size_bytes : mtu;
  // Sender serializes the whole flow; each switch hop store-and-forwards
  // (at most) one MTU and adds propagation.
  return sim::tx_time(line_rate, size) +
         hops * (sim::tx_time(line_rate, std::min(size, mtu)) + prop_delay) +
         prop_delay;
}

}  // namespace gfc::stats
