// Flow-completion statistics: FCT and slowdown (actual FCT divided by the
// shortest possible time for the same size on an unloaded network —
// Figure 17's metric).
#pragma once

#include <functional>
#include <vector>

#include "net/network.hpp"

namespace gfc::stats {

class FlowStats {
 public:
  struct Record {
    net::FlowId id;
    std::int64_t size_bytes;
    sim::TimePs fct;
    double slowdown;
  };

  /// `ideal_fct` gives the unloaded completion time of a flow (topology
  /// aware callers pass hop-exact values; default_ideal_fct is a helper).
  FlowStats(net::Network& net, std::function<sim::TimePs(const net::Flow&)> ideal_fct);

  const std::vector<Record>& records() const { return records_; }
  std::size_t count() const { return records_.size(); }
  double mean_slowdown() const;
  double mean_fct_us() const;
  /// Slowdown quantile, q in [0,1].
  double slowdown_quantile(double q) const;

  /// Store-and-forward ideal: serialization of the flow + per-hop MTU
  /// forwarding and propagation over `hops` switch hops.
  static sim::TimePs default_ideal_fct(const net::Flow& flow, sim::Rate line_rate,
                                       int hops, sim::TimePs prop_delay,
                                       std::int64_t mtu);

 private:
  std::function<sim::TimePs(const net::Flow&)> ideal_fct_;
  std::vector<Record> records_;
};

}  // namespace gfc::stats
