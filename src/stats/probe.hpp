// Self-rearming periodic sampler: the building block for the queue-length /
// rate evolution traces of Figures 5, 9, 10, 18 and 20.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"

namespace gfc::stats {

class PeriodicProbe {
 public:
  /// Calls `fn(now)` every `period` starting at now + period, until stop().
  PeriodicProbe(sim::Scheduler& sched, sim::TimePs period,
                std::function<void(sim::TimePs)> fn)
      : sched_(sched), period_(period), fn_(std::move(fn)) {
    arm();
  }
  ~PeriodicProbe() { stop(); }
  PeriodicProbe(const PeriodicProbe&) = delete;
  PeriodicProbe& operator=(const PeriodicProbe&) = delete;

  /// Safe to call from inside the probe's own callback: the timer event has
  /// already fired by then (cancel alone would be a no-op), so a flag also
  /// suppresses the re-arm that would otherwise follow the callback.
  void stop() {
    stopped_ = true;
    if (event_.valid()) {
      sched_.cancel(event_);
      event_ = {};
    }
  }

  bool stopped() const { return stopped_; }

 private:
  void arm() {
    event_ = sched_.schedule_in(period_, [this] {
      event_ = {};  // fired; nothing left to cancel
      fn_(sched_.now());
      if (!stopped_) arm();
    });
  }

  sim::Scheduler& sched_;
  sim::TimePs period_;
  std::function<void(sim::TimePs)> fn_;
  sim::EventId event_{};
  bool stopped_ = false;
};

/// A (time, value) trace with CSV-ish dumping helpers.
struct TimeSeries {
  std::vector<std::pair<sim::TimePs, double>> points;
  void add(sim::TimePs t, double v) { points.push_back({t, v}); }
  double last() const { return points.empty() ? 0.0 : points.back().second; }
  double max() const {
    if (points.empty()) return 0.0;
    double m = points.front().second;
    for (const auto& [t, v] : points) m = v > m ? v : m;
    return m;
  }
  double min() const {
    if (points.empty()) return 0.0;
    double m = points.front().second;
    for (const auto& [t, v] : points) m = v < m ? v : m;
    return m;
  }
  /// Mean of samples with t in [from, to).
  double mean(sim::TimePs from, sim::TimePs to) const {
    double sum = 0;
    std::size_t n = 0;
    for (const auto& [t, v] : points)
      if (t >= from && t < to) {
        sum += v;
        ++n;
      }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  }
};

}  // namespace gfc::stats
