#include "stats/throughput.hpp"

namespace gfc::stats {

ThroughputSampler::ThroughputSampler(net::Network& net, sim::TimePs bin_width,
                                     Key key)
    : bin_(bin_width), key_(key) {
  net.add_delivery_listener(this);
}

std::int64_t ThroughputSampler::key_of(const net::Packet& pkt) const {
  switch (key_) {
    case Key::kAggregate: return 0;
    case Key::kPerFlow: return pkt.flow;
    case Key::kPerSrcHost: return pkt.src;
    case Key::kPerDstHost: return pkt.dst;
  }
  return 0;
}

void ThroughputSampler::on_delivery(const net::Packet& pkt, sim::TimePs now) {
  const auto bin = static_cast<std::size_t>(now / bin_);
  auto& series = bins_[key_of(pkt)];
  if (series.size() <= bin) series.resize(bin + 1, 0);
  series[bin] += pkt.size_bytes;
  if (bin > max_bin_) max_bin_ = bin;
  total_bytes_ += pkt.size_bytes;
}

std::vector<double> ThroughputSampler::series_gbps(std::int64_t key) const {
  std::vector<double> out(max_bin_ + 1, 0.0);
  auto it = bins_.find(key);
  if (it == bins_.end()) return out;
  const double secs = sim::to_seconds(bin_);
  for (std::size_t i = 0; i < it->second.size(); ++i)
    out[i] = static_cast<double>(it->second[i]) * 8.0 / secs / 1e9;
  return out;
}

double ThroughputSampler::average_gbps(std::int64_t key, sim::TimePs from,
                                       sim::TimePs to) const {
  auto it = bins_.find(key);
  if (it == bins_.end() || to <= from) return 0.0;
  std::int64_t bytes = 0;
  const auto b0 = static_cast<std::size_t>(from / bin_);
  const auto b1 = static_cast<std::size_t>(to / bin_);
  for (std::size_t b = b0; b < b1 && b < it->second.size(); ++b)
    bytes += it->second[b];
  return static_cast<double>(bytes) * 8.0 / sim::to_seconds(to - from) / 1e9;
}

double ThroughputSampler::per_host_average_gbps(int n_hosts, sim::TimePs from,
                                                sim::TimePs to) const {
  if (n_hosts <= 0) return 0.0;
  return average_gbps(0, from, to) / n_hosts;
}

}  // namespace gfc::stats
