// Binned delivery-rate measurement (the paper counts sent bytes every
// 100 us for its throughput figures).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/network.hpp"

namespace gfc::stats {

class ThroughputSampler final : public net::DeliveryListener {
 public:
  enum class Key { kAggregate, kPerFlow, kPerSrcHost, kPerDstHost };

  ThroughputSampler(net::Network& net, sim::TimePs bin_width,
                    Key key = Key::kAggregate);
  ~ThroughputSampler() override = default;

  void on_delivery(const net::Packet& pkt, sim::TimePs now) override;

  /// Gb/s per bin for one key (key 0 for aggregate), from bin 0 through the
  /// last bin that saw data anywhere.
  std::vector<double> series_gbps(std::int64_t key = 0) const;

  /// Mean delivered rate for `key` over [from, to) in Gb/s.
  double average_gbps(std::int64_t key, sim::TimePs from, sim::TimePs to) const;

  /// Aggregate mean delivered rate over [from, to) divided by `n_hosts`
  /// (the paper's "average available bandwidth" per server).
  double per_host_average_gbps(int n_hosts, sim::TimePs from,
                               sim::TimePs to) const;

  sim::TimePs bin_width() const { return bin_; }
  std::int64_t total_bytes() const { return total_bytes_; }

 private:
  std::int64_t key_of(const net::Packet& pkt) const;

  sim::TimePs bin_;
  Key key_;
  std::map<std::int64_t, std::vector<std::int64_t>> bins_;
  std::size_t max_bin_ = 0;
  std::int64_t total_bytes_ = 0;
};

}  // namespace gfc::stats
