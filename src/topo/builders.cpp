#include "topo/builders.hpp"

#include <cassert>
#include <string>

namespace gfc::topo {

namespace {
std::string idx_name(const char* prefix, int i) {
  // Built via += : GCC 12's -O3 -Wrestrict misfires on prefix + suffix
  // string concatenation (PR105651).
  std::string name(prefix);
  name += std::to_string(i);
  return name;
}
}  // namespace

RingInfo build_ring(Topology& topo, int n_switches) {
  assert(n_switches >= 3);
  RingInfo info;
  for (int i = 0; i < n_switches; ++i)
    info.hosts.push_back(topo.add_host(idx_name("H", i), /*pod=*/i));
  for (int i = 0; i < n_switches; ++i)
    info.switches.push_back(topo.add_switch(idx_name("S", i), /*layer=*/1, i));
  for (int i = 0; i < n_switches; ++i) {
    topo.add_link(info.hosts[static_cast<std::size_t>(i)],
                  info.switches[static_cast<std::size_t>(i)]);
    topo.add_link(info.switches[static_cast<std::size_t>(i)],
                  info.switches[static_cast<std::size_t>((i + 1) % n_switches)]);
  }
  return info;
}

NodeIndex FatTreeInfo::host(int pod, int idx) const {
  const int per_pod = k * k / 4;
  return hosts[static_cast<std::size_t>(pod * per_pod + idx)];
}

int FatTreeInfo::pod_of_host(NodeIndex h) const {
  for (std::size_t i = 0; i < hosts.size(); ++i)
    if (hosts[i] == h) return static_cast<int>(i) / (k * k / 4);
  return -1;
}

FatTreeInfo build_fattree(Topology& topo, int k) {
  assert(k >= 2 && k % 2 == 0);
  FatTreeInfo info;
  info.k = k;
  const int half = k / 2;
  // Hosts first: ids 0 .. k^3/4-1 match the paper's H labels.
  for (int p = 0; p < k; ++p)
    for (int i = 0; i < half * half; ++i)
      info.hosts.push_back(
          topo.add_host(idx_name("H", p * half * half + i), p));
  for (int p = 0; p < k; ++p)
    for (int e = 0; e < half; ++e)
      info.edges.push_back(
          topo.add_switch(idx_name("E", p * half + e), /*layer=*/1, p));
  for (int p = 0; p < k; ++p)
    for (int a = 0; a < half; ++a)
      info.aggs.push_back(
          topo.add_switch(idx_name("A", p * half + a), /*layer=*/2, p));
  for (int c = 0; c < half * half; ++c)
    info.cores.push_back(topo.add_switch(idx_name("C", c), /*layer=*/3, -1));

  for (int p = 0; p < k; ++p) {
    for (int e = 0; e < half; ++e) {
      const NodeIndex edge = info.edge(p, e);
      for (int h = 0; h < half; ++h)
        topo.add_link(info.host(p, e * half + h), edge);
      for (int a = 0; a < half; ++a) topo.add_link(edge, info.agg(p, a));
    }
    // Agg a of any pod connects to cores [a*half, (a+1)*half).
    for (int a = 0; a < half; ++a)
      for (int j = 0; j < half; ++j)
        topo.add_link(info.agg(p, a),
                      info.cores[static_cast<std::size_t>(a * half + j)]);
  }
  return info;
}

DumbbellInfo build_dumbbell(Topology& topo, int n_senders) {
  DumbbellInfo info;
  for (int i = 0; i < n_senders; ++i)
    info.senders.push_back(topo.add_host(idx_name("H", i + 1)));
  info.receiver = topo.add_host(idx_name("H", n_senders + 1));
  info.sw = topo.add_switch("S0");
  for (NodeIndex h : info.senders) topo.add_link(h, info.sw);
  topo.add_link(info.receiver, info.sw);
  return info;
}

}  // namespace gfc::topo
