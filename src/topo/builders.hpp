// Topology builders for every scenario in the paper's evaluation.
#pragma once

#include <vector>

#include "topo/topology.hpp"

namespace gfc::topo {

/// Figure 1 / Sec 6.1: N switches in a directed ring, one host per switch.
/// Deadlock requires the clockwise routing installed by ring_routes().
struct RingInfo {
  std::vector<NodeIndex> hosts;     // H_i attached to S_i
  std::vector<NodeIndex> switches;  // S_0 .. S_{n-1}
};
RingInfo build_ring(Topology& topo, int n_switches = 3);

/// Three-layer fat-tree [1] with parameter k (even): k pods, k/2 edge and
/// k/2 agg switches per pod, (k/2)^2 cores, k^3/4 hosts. Host ids are
/// contiguous and pod-major so the paper's H0..H15 labels line up for k=4.
struct FatTreeInfo {
  int k = 0;
  std::vector<NodeIndex> hosts;  // pod-major
  std::vector<NodeIndex> edges;  // pod-major: edge e of pod p = edges[p*k/2+e]
  std::vector<NodeIndex> aggs;   // pod-major, same layout
  std::vector<NodeIndex> cores;  // core (i,j) = cores[i*k/2+j]
  NodeIndex host(int pod, int idx) const;  // idx in [0, k^2/4)
  NodeIndex edge(int pod, int e) const { return edges[static_cast<std::size_t>(pod * (k / 2) + e)]; }
  NodeIndex agg(int pod, int a) const { return aggs[static_cast<std::size_t>(pod * (k / 2) + a)]; }
  int pod_of_host(NodeIndex h) const;
};
FatTreeInfo build_fattree(Topology& topo, int k);

/// Sec 7 / Figure 20: n senders and one receiver on a single switch.
struct DumbbellInfo {
  std::vector<NodeIndex> senders;
  NodeIndex receiver = -1;
  NodeIndex sw = -1;
};
DumbbellInfo build_dumbbell(Topology& topo, int n_senders);

/// Figure 5: two senders, one switch, one receiver (special dumbbell).
inline DumbbellInfo build_two_to_one(Topology& topo) {
  return build_dumbbell(topo, 2);
}

}  // namespace gfc::topo
