#include "topo/cbd.hpp"

#include <algorithm>

namespace gfc::topo {

int BufferDependencyGraph::vertex(DirectedLink l) {
  auto [it, inserted] = vertex_ids_.try_emplace(l, static_cast<int>(vertices_.size()));
  if (inserted) {
    vertices_.push_back(l);
    edges_.emplace_back();
  }
  return it->second;
}

void BufferDependencyGraph::add_path(const std::vector<NodeIndex>& path) {
  // Collect consecutive switch->switch hops, then chain them.
  std::vector<DirectedLink> hops;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!topo_->is_host(path[i]) && !topo_->is_host(path[i + 1]))
      hops.push_back({path[i], path[i + 1]});
  }
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    const int a = vertex(hops[i]);
    const int b = vertex(hops[i + 1]);
    auto& out = edges_[static_cast<std::size_t>(a)];
    if (std::find(out.begin(), out.end(), b) == out.end()) out.push_back(b);
  }
}

std::vector<ClosureOp> destination_closure_ops(const Topology& topo,
                                               const RoutingTable& routing,
                                               NodeIndex dst) {
  // Only switches actually reachable from some source host along the ECMP
  // DAG contribute dependencies: a next-hop table entry no packet can
  // arrive at (common after failures, when a switch keeps a bounce route
  // toward d but nothing routes *through* it toward d) must not fabricate
  // cycles.
  std::vector<ClosureOp> ops;
  std::vector<char> reachable(topo.node_count());
  std::vector<NodeIndex> frontier;
  for (NodeIndex s : topo.hosts()) {
    if (s == dst) continue;
    for (NodeIndex n : routing.next_hops(s, dst)) {
      if (!topo.is_host(n) && !reachable[static_cast<std::size_t>(n)]) {
        reachable[static_cast<std::size_t>(n)] = 1;
        frontier.push_back(n);
      }
    }
  }
  while (!frontier.empty()) {
    const NodeIndex v = frontier.back();
    frontier.pop_back();
    for (NodeIndex n : routing.next_hops(v, dst)) {
      if (!topo.is_host(n) && !reachable[static_cast<std::size_t>(n)]) {
        reachable[static_cast<std::size_t>(n)] = 1;
        frontier.push_back(n);
      }
    }
  }
  for (NodeIndex s : topo.switches()) {
    if (!reachable[static_cast<std::size_t>(s)]) continue;
    for (NodeIndex n : routing.next_hops(s, dst)) {
      if (topo.is_host(n)) continue;
      ops.push_back({{s, n}, {}, false});
      for (NodeIndex m : routing.next_hops(n, dst)) {
        if (topo.is_host(m)) continue;
        ops.push_back({{s, n}, {n, m}, true});
      }
    }
  }
  return ops;
}

void BufferDependencyGraph::apply_ops(const std::vector<ClosureOp>& ops) {
  for (const ClosureOp& op : ops) {
    const int a = vertex(op.a);
    if (!op.edge) continue;
    const int b = vertex(op.b);
    auto& out = edges_[static_cast<std::size_t>(a)];
    if (std::find(out.begin(), out.end(), b) == out.end()) out.push_back(b);
  }
}

void BufferDependencyGraph::add_routing_closure(const RoutingTable& routing) {
  for (NodeIndex dst : topo_->hosts())
    apply_ops(destination_closure_ops(*topo_, routing, dst));
}

void canonicalize_cycle(std::vector<DirectedLink>* cycle) {
  if (cycle->empty()) return;
  const auto smallest = std::min_element(cycle->begin(), cycle->end());
  std::rotate(cycle->begin(), smallest, cycle->end());
}

std::string describe_links(const Topology& topo,
                           const std::vector<DirectedLink>& cycle) {
  std::string out;
  for (const auto& [from, to] : cycle) {
    if (!out.empty()) out += " -> ";
    out += topo.node(from).name + "->" + topo.node(to).name;
  }
  return out;
}

CbdResult BufferDependencyGraph::find_cycle() const {
  CbdResult result;
  const int n = static_cast<int>(vertices_.size());
  // Iterative DFS with tri-color marking; reconstruct the cycle from the
  // parent chain when a back edge is found. Roots are tried in ascending
  // vertex order and edges in insertion order, so the selected cycle is a
  // pure function of the graph construction sequence; the witness is then
  // rotated into canonical smallest-link-first form.
  std::vector<int> color(static_cast<std::size_t>(n), 0);  // 0 white 1 grey 2 black
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  for (int root = 0; root < n; ++root) {
    if (color[static_cast<std::size_t>(root)] != 0) continue;
    std::vector<std::pair<int, std::size_t>> stack{{root, 0}};
    color[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      auto& [v, next_edge] = stack.back();
      const auto& out = edges_[static_cast<std::size_t>(v)];
      if (next_edge < out.size()) {
        const int w = out[next_edge++];
        if (color[static_cast<std::size_t>(w)] == 0) {
          color[static_cast<std::size_t>(w)] = 1;
          parent[static_cast<std::size_t>(w)] = v;
          stack.push_back({w, 0});
        } else if (color[static_cast<std::size_t>(w)] == 1) {
          // Back edge v -> w closes a cycle w -> ... -> v -> w.
          result.has_cbd = true;
          std::vector<int> cyc{v};
          for (int u = v; u != w; u = parent[static_cast<std::size_t>(u)])
            cyc.push_back(parent[static_cast<std::size_t>(u)]);
          std::reverse(cyc.begin(), cyc.end());
          for (int u : cyc)
            result.cycle.push_back(vertices_[static_cast<std::size_t>(u)]);
          canonicalize_cycle(&result.cycle);
          return result;
        }
      } else {
        color[static_cast<std::size_t>(v)] = 2;
        stack.pop_back();
      }
    }
  }
  return result;
}

bool cbd_prone(const Topology& topo, const RoutingTable& routing) {
  BufferDependencyGraph graph(topo);
  graph.add_routing_closure(routing);
  return graph.find_cycle().has_cbd;
}

}  // namespace gfc::topo
