// Cyclic-buffer-dependency (CBD) analysis — the circular-wait condition.
//
// Vertices of the dependency graph are directed switch-to-switch links
// (equivalently: the downstream ingress buffer each link feeds). A flow
// whose path crosses switches ... -> s1 -> s2 -> s3 -> ... makes the buffer
// at (s1->s2) depend on the buffer at (s2->s3). A directed cycle is a CBD.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "topo/routing.hpp"
#include "topo/topology.hpp"

namespace gfc::topo {

/// A directed switch-to-switch hop.
using DirectedLink = std::pair<NodeIndex, NodeIndex>;

struct CbdResult {
  bool has_cbd = false;
  /// One witness cycle of directed links (empty if none), in canonical
  /// form: rotated so the smallest DirectedLink (lexicographic (from, to)
  /// order) leads. See find_cycle() for which cycle is selected.
  std::vector<DirectedLink> cycle;
};

/// One step of a destination's routing-closure construction: ensure the
/// vertex for `a` exists; when `edge` is set, also ensure `b`'s vertex and
/// append the (deduplicated) dependency edge a -> b. Replaying a
/// destination's op sequence performs exactly the vertex creations and
/// edge appends add_routing_closure would — in the same order — which is
/// the contract the incremental analyzer's byte-identity rests on.
struct ClosureOp {
  DirectedLink a;
  DirectedLink b;
  bool edge = false;
};

class BufferDependencyGraph {
 public:
  explicit BufferDependencyGraph(const Topology& topo) : topo_(&topo) {}

  /// Add the dependencies induced by one concrete flow path (node ids).
  void add_path(const std::vector<NodeIndex>& path);

  /// Add dependencies for *every* ECMP option toward *every* host: the
  /// union routing closure. A cycle here means the scenario is CBD-prone
  /// (the pre-filter used for Table 1). Equivalent to replaying
  /// destination_closure_ops() for every host in hosts() order.
  void add_routing_closure(const RoutingTable& routing);

  /// Replay a recorded op sequence (see ClosureOp). Idempotent per op:
  /// existing vertices and edges are reused, so mixing replay with
  /// add_path/add_routing_closure is safe.
  void apply_ops(const std::vector<ClosureOp>& ops);

  /// One witness cycle, deterministically selected: a DFS in ascending
  /// vertex order (vertices are numbered by first insertion, itself a
  /// deterministic function of the added paths/closure) reports the first
  /// back edge it meets, and the witness is rotated so its smallest
  /// DirectedLink comes first. Exhaustive enumeration with per-cycle
  /// metadata lives in analyze::enumerate_cbd (src/analyze/).
  CbdResult find_cycle() const;

  std::size_t vertex_count() const { return vertices_.size(); }

  /// Vertex i's directed link. Exposed for the static analyzer.
  const std::vector<DirectedLink>& links() const { return vertices_; }
  /// Out-edges per vertex, in insertion order. Exposed for the analyzer.
  const std::vector<std::vector<int>>& adjacency() const { return edges_; }

 private:
  int vertex(DirectedLink l);

  const Topology* topo_;
  std::map<DirectedLink, int> vertex_ids_;
  std::vector<DirectedLink> vertices_;
  std::vector<std::vector<int>> edges_;
};

/// The op sequence add_routing_closure performs for one destination host,
/// in execution order. A pure function of the topology's static structure
/// (host/switch partition) and the routing column toward `dst`: two calls
/// with equal columns return equal sequences, which is what lets the
/// incremental analyzer cache per-destination ops and replay them
/// unchanged after unrelated link flaps.
std::vector<ClosureOp> destination_closure_ops(const Topology& topo,
                                               const RoutingTable& routing,
                                               NodeIndex dst);

/// Rotate a cycle of directed links so the smallest link (lexicographic
/// (from, to) order) comes first. The canonical form every witness and
/// enumerated cycle is reported in.
void canonicalize_cycle(std::vector<DirectedLink>* cycle);

/// "S0->S1 -> S1->S2 -> S2->S0" — a cycle rendered with topology names.
std::string describe_links(const Topology& topo,
                           const std::vector<DirectedLink>& cycle);

/// Convenience: is the routed topology CBD-prone at all?
bool cbd_prone(const Topology& topo, const RoutingTable& routing);

}  // namespace gfc::topo
