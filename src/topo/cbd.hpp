// Cyclic-buffer-dependency (CBD) analysis — the circular-wait condition.
//
// Vertices of the dependency graph are directed switch-to-switch links
// (equivalently: the downstream ingress buffer each link feeds). A flow
// whose path crosses switches ... -> s1 -> s2 -> s3 -> ... makes the buffer
// at (s1->s2) depend on the buffer at (s2->s3). A directed cycle is a CBD.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "topo/routing.hpp"
#include "topo/topology.hpp"

namespace gfc::topo {

/// A directed switch-to-switch hop.
using DirectedLink = std::pair<NodeIndex, NodeIndex>;

struct CbdResult {
  bool has_cbd = false;
  /// One witness cycle of directed links (empty if none), in canonical
  /// form: rotated so the smallest DirectedLink (lexicographic (from, to)
  /// order) leads. See find_cycle() for which cycle is selected.
  std::vector<DirectedLink> cycle;
};

class BufferDependencyGraph {
 public:
  explicit BufferDependencyGraph(const Topology& topo) : topo_(&topo) {}

  /// Add the dependencies induced by one concrete flow path (node ids).
  void add_path(const std::vector<NodeIndex>& path);

  /// Add dependencies for *every* ECMP option toward *every* host: the
  /// union routing closure. A cycle here means the scenario is CBD-prone
  /// (the pre-filter used for Table 1).
  void add_routing_closure(const RoutingTable& routing);

  /// One witness cycle, deterministically selected: a DFS in ascending
  /// vertex order (vertices are numbered by first insertion, itself a
  /// deterministic function of the added paths/closure) reports the first
  /// back edge it meets, and the witness is rotated so its smallest
  /// DirectedLink comes first. Exhaustive enumeration with per-cycle
  /// metadata lives in analyze::enumerate_cbd (src/analyze/).
  CbdResult find_cycle() const;

  std::size_t vertex_count() const { return vertices_.size(); }

  /// Vertex i's directed link. Exposed for the static analyzer.
  const std::vector<DirectedLink>& links() const { return vertices_; }
  /// Out-edges per vertex, in insertion order. Exposed for the analyzer.
  const std::vector<std::vector<int>>& adjacency() const { return edges_; }

 private:
  int vertex(DirectedLink l);

  const Topology* topo_;
  std::map<DirectedLink, int> vertex_ids_;
  std::vector<DirectedLink> vertices_;
  std::vector<std::vector<int>> edges_;
};

/// Rotate a cycle of directed links so the smallest link (lexicographic
/// (from, to) order) comes first. The canonical form every witness and
/// enumerated cycle is reported in.
void canonicalize_cycle(std::vector<DirectedLink>* cycle);

/// "S0->S1 -> S1->S2 -> S2->S0" — a cycle rendered with topology names.
std::string describe_links(const Topology& topo,
                           const std::vector<DirectedLink>& cycle);

/// Convenience: is the routed topology CBD-prone at all?
bool cbd_prone(const Topology& topo, const RoutingTable& routing);

}  // namespace gfc::topo
