#include "topo/partition.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace gfc::topo {

std::vector<int> partition(const Topology& topo, int n_shards,
                           std::uint64_t seed) {
  const std::size_t n = topo.node_count();
  std::vector<int> shard(n, 0);
  if (n_shards <= 1 || n == 0) return shard;

  const std::vector<NodeIndex> switches = topo.switches();
  if (switches.empty()) return shard;
  const int k = std::min<int>(n_shards, static_cast<int>(switches.size()));

  // Pod groups first (std::map: iteration order is the pod label order,
  // not hash order). Unlabeled switches keep topology-index order, and so
  // do singleton labels: a pod shared by no other switch carries no
  // grouping information, and LPT-packing singletons degenerates to a
  // round-robin — the worst possible cut on a ring. The contiguous-block
  // fallback handles both.
  std::map<int, int> pod_count;
  for (NodeIndex s : switches) {
    const int pod = topo.node(s).pod;
    if (pod >= 0) ++pod_count[pod];
  }
  std::map<int, std::vector<NodeIndex>> pods;
  std::vector<NodeIndex> loose;
  for (NodeIndex s : switches) {
    const int pod = topo.node(s).pod;
    if (pod >= 0 && pod_count[pod] > 1)
      pods[pod].push_back(s);
    else
      loose.push_back(s);
  }

  std::vector<std::size_t> load(static_cast<std::size_t>(k), 0);
  const auto lightest = [&load, k]() {
    int best = 0;
    for (int i = 1; i < k; ++i)
      if (load[static_cast<std::size_t>(i)] <
          load[static_cast<std::size_t>(best)])
        best = i;
    return best;
  };

  // LPT-pack pod groups: largest first, ties by smallest member index so
  // the order never depends on map internals.
  std::vector<const std::vector<NodeIndex>*> groups;
  groups.reserve(pods.size());
  for (const auto& [pod, members] : pods) groups.push_back(&members);
  std::sort(groups.begin(), groups.end(),
            [](const std::vector<NodeIndex>* a, const std::vector<NodeIndex>* b) {
              if (a->size() != b->size()) return a->size() > b->size();
              return a->front() < b->front();
            });
  for (const auto* g : groups) {
    const int dst = lightest();
    for (NodeIndex s : *g) shard[static_cast<std::size_t>(s)] = dst;
    load[static_cast<std::size_t>(dst)] += g->size();
  }

  // Unlabeled switches: contiguous index blocks (minimal cut on rings and
  // lines), rotated by the seed as the deterministic fallback when the
  // builder attached no structure at all.
  if (!loose.empty()) {
    const std::size_t m = loose.size();
    const std::size_t rot = static_cast<std::size_t>(seed % m);
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t pos = (i + m - rot) % m;
      const int dst = pods.empty()
                          ? static_cast<int>(pos * static_cast<std::size_t>(k) / m)
                          : lightest();
      shard[static_cast<std::size_t>(loose[i])] = dst;
      load[static_cast<std::size_t>(dst)] += 1;
    }
  }

  // Hosts ride with their rack; a disconnected host stays on shard 0.
  for (NodeIndex h : topo.hosts()) {
    const NodeIndex rack = topo.rack_of(h);
    if (rack >= 0)
      shard[static_cast<std::size_t>(h)] = shard[static_cast<std::size_t>(rack)];
  }
  return shard;
}

std::size_t partition_cut(const Topology& topo,
                          const std::vector<int>& shard) {
  std::size_t cut = 0;
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    const TopoLink& e = topo.link(static_cast<LinkIndex>(l));
    if (shard[static_cast<std::size_t>(e.a)] !=
        shard[static_cast<std::size_t>(e.b)])
      ++cut;
  }
  return cut;
}

}  // namespace gfc::topo
