// Static shard partitioner for the parallel core (src/par).
//
// Splits a topology into n_shards switch-granularity shards: every switch
// is owned by exactly one shard and each host follows its rack's shard, so
// host<->edge wires never cross a shard boundary. Partition quality only
// affects speed (cross-shard wires bound the tau-lookahead window and the
// barrier traffic), never results: the parallel engine is byte-identical
// to the single-threaded one for any assignment.
//
// Strategy (min-cut-ish, fully deterministic):
//  * Switches that share a builder pod label with at least one other
//    switch stay together; pod groups are
//    LPT-packed onto shards (largest group first, onto the least-loaded
//    shard, ties by lowest shard id) — for fat-trees this keeps the dense
//    intra-pod edge<->agg mesh off the cut and only pod<->core links cross.
//  * Unlabeled switches (pod < 0, e.g. fat-tree cores or ring switches)
//    are dealt over the shards in contiguous index blocks, rotated by the
//    seed — contiguous blocks make ring/line cuts minimal, and the seeded
//    rotation is the deterministic fallback for topologies with no
//    structure labels at all.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"

namespace gfc::topo {

/// Shard id per topology node index (size node_count()), values in
/// [0, n_shards). n_shards <= 1 yields all zeros. Deterministic for a
/// given (topology, n_shards, seed).
std::vector<int> partition(const Topology& topo, int n_shards,
                           std::uint64_t seed = 0);

/// Number of links whose endpoints land on different shards (cut size —
/// diagnostics / tests only).
std::size_t partition_cut(const Topology& topo, const std::vector<int>& shard);

}  // namespace gfc::topo
