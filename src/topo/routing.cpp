#include "topo/routing.hpp"

#include <deque>
#include <limits>

#include "net/ecmp.hpp"

namespace gfc::topo {

std::vector<NodeIndex> RoutingTable::trace(NodeIndex src, NodeIndex dst,
                                           std::uint64_t salt) const {
  std::vector<NodeIndex> path{src};
  NodeIndex at = src;
  while (at != dst) {
    if (path.size() > n_) return {};  // loop guard
    const auto& hops = next_hops(at, dst);
    if (hops.empty()) return {};
    const std::size_t pick =
        hops.size() == 1 ? 0 : net::ecmp_select(salt, at, hops.size());
    at = hops[pick];
    path.push_back(at);
  }
  return path;
}

RoutingTable compute_shortest_paths(const Topology& topo) {
  const std::size_t n = topo.node_count();
  RoutingTable table(n);
  constexpr int kInf = std::numeric_limits<int>::max();
  std::vector<int> dist(n);
  for (NodeIndex dst : topo.hosts()) {
    dist.assign(n, kInf);
    dist[static_cast<std::size_t>(dst)] = 0;
    std::deque<NodeIndex> bfs{dst};
    while (!bfs.empty()) {
      const NodeIndex v = bfs.front();
      bfs.pop_front();
      for (const auto& [nbr, link] : topo.neighbors(v)) {
        // Hosts never transit traffic: only the destination itself may be
        // an intermediate BFS node on the host layer.
        if (topo.is_host(nbr)) continue;
        if (dist[static_cast<std::size_t>(nbr)] == kInf) {
          dist[static_cast<std::size_t>(nbr)] = dist[static_cast<std::size_t>(v)] + 1;
          bfs.push_back(nbr);
        }
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      const NodeIndex at = static_cast<NodeIndex>(v);
      if (at == dst) continue;
      std::vector<NodeIndex> hops;
      if (topo.is_host(at)) {
        // Source hosts (BFS never labels them) exit via their closest
        // attached switch(es).
        int best = kInf;
        for (const auto& [nbr, link] : topo.neighbors(at)) {
          if (topo.is_host(nbr)) continue;
          const int d = dist[static_cast<std::size_t>(nbr)];
          if (d < best) {
            best = d;
            hops.assign(1, nbr);
          } else if (d == best && d != kInf) {
            hops.push_back(nbr);
          }
        }
      } else {
        if (dist[v] == kInf) continue;
        for (const auto& [nbr, link] : topo.neighbors(at)) {
          const int d_nbr =
              nbr == dst
                  ? 0
                  : (topo.is_host(nbr) ? kInf : dist[static_cast<std::size_t>(nbr)]);
          if (d_nbr != kInf && d_nbr == dist[v] - 1) hops.push_back(nbr);
        }
      }
      if (!hops.empty()) table.set_next_hops(at, dst, std::move(hops));
    }
  }
  return table;
}

RoutingTable ring_clockwise_routes(const Topology& topo, const RingInfo& ring) {
  RoutingTable table(topo.node_count());
  const int n = static_cast<int>(ring.switches.size());
  for (int d = 0; d < n; ++d) {
    const NodeIndex dst = ring.hosts[static_cast<std::size_t>(d)];
    // Host sources go to their local switch.
    for (int s = 0; s < n; ++s) {
      if (s != d)
        table.set_next_hops(ring.hosts[static_cast<std::size_t>(s)], dst,
                            {ring.switches[static_cast<std::size_t>(s)]});
    }
    for (int s = 0; s < n; ++s) {
      const NodeIndex at = ring.switches[static_cast<std::size_t>(s)];
      if (s == d) {
        table.set_next_hops(at, dst, {dst});
      } else {
        table.set_next_hops(at, dst,
                            {ring.switches[static_cast<std::size_t>((s + 1) % n)]});
      }
    }
  }
  return table;
}

}  // namespace gfc::topo
