// Shortest-path-first routing with ECMP, exactly the algorithm named in
// the paper's evaluation, plus the constrained clockwise routing that the
// Figure 1 ring scenario needs.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/builders.hpp"
#include "topo/topology.hpp"

namespace gfc::topo {

class RoutingTable {
 public:
  RoutingTable() = default;
  explicit RoutingTable(std::size_t node_count) : n_(node_count) {
    table_.resize(n_ * n_);
  }

  /// Equal-cost next-hop *nodes* from `at` toward destination host `dst`.
  const std::vector<NodeIndex>& next_hops(NodeIndex at, NodeIndex dst) const {
    return table_[idx(at, dst)];
  }
  void set_next_hops(NodeIndex at, NodeIndex dst, std::vector<NodeIndex> hops) {
    table_[idx(at, dst)] = std::move(hops);
  }

  /// The exact node sequence a flow with `salt` follows (replicates the
  /// switch data-path ECMP hash). Empty if unroutable or a loop is hit.
  std::vector<NodeIndex> trace(NodeIndex src, NodeIndex dst,
                               std::uint64_t salt) const;

  bool routable(NodeIndex src, NodeIndex dst) const {
    return !next_hops(src, dst).empty();
  }

  std::size_t node_count() const { return n_; }

 private:
  std::size_t idx(NodeIndex at, NodeIndex dst) const {
    return static_cast<std::size_t>(at) * n_ + static_cast<std::size_t>(dst);
  }
  std::size_t n_ = 0;
  std::vector<std::vector<NodeIndex>> table_;
};

/// BFS all-shortest-paths toward every host, over up links.
RoutingTable compute_shortest_paths(const Topology& topo);

/// Ring scenario: every switch forwards non-local destinations clockwise
/// (S_i -> S_{i+1}). This pinned routing is what creates the cyclic buffer
/// dependency of Figure 1.
RoutingTable ring_clockwise_routes(const Topology& topo, const RingInfo& ring);

}  // namespace gfc::topo
