#include "topo/scenario_gen.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

namespace gfc::topo {

std::vector<LinkIndex> random_failures(Topology& topo, sim::Rng& rng, double p,
                                       int max_tries) {
  const std::vector<LinkIndex> candidates = topo.switch_links();
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    std::vector<LinkIndex> failed;
    for (LinkIndex l : candidates)
      if (rng.chance(p)) failed.push_back(l);
    for (LinkIndex l : failed) topo.fail_link(l);
    if (topo.hosts_connected()) return failed;
    topo.restore_all();
  }
  return {};  // keep the pristine topology if no connected sample was found
}

namespace {

/// CBD check over the four concrete paths; accepts only cycles that live
/// entirely above the edge layer and are at least 4 links long.
std::optional<CbdResult> qualifying_cbd(
    const Topology& topo, const std::vector<std::vector<NodeIndex>>& paths,
    int min_flows_per_cycle_link) {
  BufferDependencyGraph graph(topo);
  for (const auto& p : paths) graph.add_path(p);
  CbdResult cbd = graph.find_cycle();
  if (!cbd.has_cbd || cbd.cycle.size() < 4) return std::nullopt;
  for (const auto& [a, b] : cbd.cycle) {
    if (topo.node(a).layer < 2 || topo.node(b).layer < 2) return std::nullopt;
    int users = 0;
    for (const auto& p : paths) {
      for (std::size_t i = 0; i + 1 < p.size(); ++i)
        if (p[i] == a && p[i + 1] == b) {
          ++users;
          break;
        }
    }
    if (users < min_flows_per_cycle_link) return std::nullopt;
  }
  return cbd;
}

}  // namespace

std::vector<Fig11Case> find_fig11_cases(Topology& topo, const FatTreeInfo& ft,
                                        std::size_t max_cases,
                                        int min_flows_per_cycle_link) {
  std::vector<Fig11Case> found;
  const std::vector<std::pair<NodeIndex, NodeIndex>> flows = {
      {ft.hosts[0], ft.hosts[8]},
      {ft.hosts[4], ft.hosts[12]},
      {ft.hosts[9], ft.hosts[1]},
      {ft.hosts[13], ft.hosts[5]},
  };
  const std::vector<LinkIndex> sw_links = topo.switch_links();
  const std::size_t m = sw_links.size();
  for (std::size_t i = 0; i < m && found.size() < max_cases; ++i) {
    for (std::size_t j = i + 1; j < m && found.size() < max_cases; ++j) {
      for (std::size_t k = j + 1; k < m && found.size() < max_cases; ++k) {
        topo.restore_all();
        topo.fail_link(sw_links[i]);
        topo.fail_link(sw_links[j]);
        topo.fail_link(sw_links[k]);
        if (!topo.hosts_connected()) continue;
        const RoutingTable routing = compute_shortest_paths(topo);
        bool routable = true;
        for (const auto& [s, d] : flows)
          routable = routable && routing.routable(s, d);
        if (!routable) continue;
        // Cheap pre-filter: the all-options closure must be cyclic at all.
        if (!cbd_prone(topo, routing)) continue;
        // Pin concrete paths: sweep a small per-flow salt space.
        for (std::uint64_t s0 = 0; s0 < 4; ++s0)
          for (std::uint64_t s1 = 0; s1 < 4; ++s1)
            for (std::uint64_t s2 = 0; s2 < 4; ++s2)
              for (std::uint64_t s3 = 0; s3 < 4; ++s3) {
                const std::vector<std::uint64_t> salts{s0, s1, s2, s3};
                std::vector<std::vector<NodeIndex>> paths;
                for (std::size_t f = 0; f < flows.size(); ++f) {
                  paths.push_back(routing.trace(flows[f].first,
                                                flows[f].second, salts[f]));
                }
                if (std::any_of(paths.begin(), paths.end(),
                                [](const auto& p) { return p.empty(); }))
                  continue;
                auto cbd =
                    qualifying_cbd(topo, paths, min_flows_per_cycle_link);
                if (!cbd) continue;
                found.push_back(Fig11Case{
                    {sw_links[i], sw_links[j], sw_links[k]},
                    flows,
                    salts,
                    std::move(paths),
                    std::move(*cbd)});
                goto next_combo;
              }
      next_combo:;
      }
    }
  }
  topo.restore_all();
  return found;
}

CbdStress build_cbd_stress(const Topology& topo, const RoutingTable& routing,
                           const std::vector<DirectedLink>& cycle,
                           sim::Rng& rng, int per_link,
                           int max_tries_per_link) {
  CbdStress out;
  std::vector<NodeIndex> hosts = topo.hosts();
  std::vector<int> coverage(cycle.size(), 0);
  // One sampled flow realizes the dependency (a,b) -> (b,c2) iff its
  // concrete path contains the node triple a,b,c2; full triple coverage
  // reconstructs the cyclic dependency with every cycle link carrying
  // >= per_link line-rate flows (oversubscribed, so the buffers fill).
  auto triple_hits = [&](const std::vector<NodeIndex>& path,
                         std::vector<int>* hits) {
    bool any = false;
    for (std::size_t c = 0; c < cycle.size(); ++c) {
      const NodeIndex a = cycle[c].first;
      const NodeIndex b = cycle[c].second;
      const NodeIndex c2 = cycle[(c + 1) % cycle.size()].second;
      for (std::size_t i = 0; i + 2 < path.size(); ++i) {
        if (path[i] == a && path[i + 1] == b && path[i + 2] == c2) {
          if (hits != nullptr) ++(*hits)[c];
          any = true;
        }
      }
    }
    return any;
  };
  auto keep_flow = [&](NodeIndex src, NodeIndex dst, std::uint64_t salt,
                       const std::vector<NodeIndex>& path) {
    std::vector<int> hits(cycle.size(), 0);
    triple_hits(path, &hits);
    bool useful = false;
    for (std::size_t i = 0; i < cycle.size(); ++i)
      if (hits[i] > 0 && coverage[i] < per_link) useful = true;
    if (!useful) return;
    for (std::size_t i = 0; i < cycle.size(); ++i) coverage[i] += hits[i];
    out.flows.push_back(CbdStress::FlowSpec{src, dst, salt});
  };
  for (std::size_t c = 0; c < cycle.size(); ++c) {
    if (coverage[c] >= per_link) continue;
    const NodeIndex a = cycle[c].first;
    const NodeIndex b = cycle[c].second;
    const NodeIndex c2 = cycle[(c + 1) % cycle.size()].second;
    // Witness destinations: the ECMP DAG toward d must contain both hops.
    std::vector<NodeIndex> dsts;
    for (NodeIndex d : hosts) {
      const auto& h1 = routing.next_hops(a, d);
      const auto& h2 = routing.next_hops(b, d);
      const bool w1 = std::find(h1.begin(), h1.end(), b) != h1.end();
      const bool w2 = std::find(h2.begin(), h2.end(), c2) != h2.end();
      if (w1 && w2) dsts.push_back(d);
    }
    rng.shuffle(dsts);
    std::vector<NodeIndex> srcs = hosts;
    rng.shuffle(srcs);
    int tries = 0;
    for (NodeIndex d : dsts) {
      for (NodeIndex src : srcs) {
        if (src == d || topo.rack_of(src) == topo.rack_of(d)) continue;
        bool found = false;
        for (std::uint64_t salt = 0; salt < 64 && tries < max_tries_per_link;
             ++salt) {
          ++tries;
          const auto path = routing.trace(src, d, salt);
          if (path.empty()) continue;
          std::vector<int> hits(cycle.size(), 0);
          triple_hits(path, &hits);
          if (hits[c] > 0) {
            keep_flow(src, d, salt, path);
            found = true;
            break;
          }
        }
        if (found && coverage[c] >= per_link) break;
        if (tries >= max_tries_per_link) break;
      }
      if (coverage[c] >= per_link || tries >= max_tries_per_link) break;
    }
  }
  out.covered = true;
  for (int c : coverage)
    if (c < per_link) out.covered = false;
#ifdef GFC_DEBUG_STRESS
  for (std::size_t c = 0; c < coverage.size(); ++c)
    std::fprintf(stderr, "triple %zu coverage %d\n", c, coverage[c]);
#endif
  return out;
}

}  // namespace gfc::topo
