// Deadlock-prone scenario generation: random link failures (Table 1) and
// the deterministic search for a Figure-11-style case study (a 3-failure
// fat-tree(k=4) where the paper's four flows form a 4-hop core/agg CBD).
#pragma once

#include <optional>
#include <vector>

#include "sim/random.hpp"
#include "topo/cbd.hpp"

namespace gfc::topo {

/// Fail each switch-to-switch link independently with probability `p`,
/// requiring that all hosts stay connected (resampled up to `max_tries`
/// times otherwise). Returns the failed link set; the topology is left
/// with those links down.
std::vector<LinkIndex> random_failures(Topology& topo, sim::Rng& rng, double p,
                                       int max_tries = 100);

struct Fig11Case {
  std::vector<LinkIndex> failed_links;            // exactly 3
  std::vector<std::pair<NodeIndex, NodeIndex>> flows;  // (src, dst) hosts
  std::vector<std::uint64_t> salts;               // pins each flow's path
  std::vector<std::vector<NodeIndex>> paths;      // resulting node paths
  CbdResult cbd;                                  // the witness cycle
};

/// Search 3-link-failure combinations of a fat-tree(k=4) under which the
/// paper's four flows (H0->H8, H4->H12, H9->H1, H13->H5) form a CBD whose
/// cycle spans >= 4 directed links among agg/core switches, with every
/// cycle link shared by >= `min_flows_per_cycle_link` of the flows (2 makes
/// the cycle links oversubscribed, so the buffers actually fill and PFC
/// really deadlocks). The topology is restored before returning; the bench
/// re-applies `failed_links`.
std::vector<Fig11Case> find_fig11_cases(Topology& topo, const FatTreeInfo& ft,
                                        std::size_t max_cases = 4,
                                        int min_flows_per_cycle_link = 2);

/// A set of host-to-host flows whose concrete paths cover every directed
/// link of a CBD cycle at least `per_link` times — the "specific flow
/// combination that fills up the CBD" (Sec 6.2.3) made explicit. The paper
/// hunts for such combinations stochastically with 100 repeats per
/// scenario; at laptop scale we condition on them directly (see
/// EXPERIMENTS.md, Table 1).
struct CbdStress {
  struct FlowSpec {
    NodeIndex src;
    NodeIndex dst;
    std::uint64_t salt;
  };
  std::vector<FlowSpec> flows;
  bool covered = false;  // every cycle link reached the target multiplicity
};
CbdStress build_cbd_stress(const Topology& topo, const RoutingTable& routing,
                           const std::vector<DirectedLink>& cycle,
                           sim::Rng& rng, int per_link = 2,
                           int max_tries_per_link = 4000);

}  // namespace gfc::topo
