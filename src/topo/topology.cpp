#include "topo/topology.hpp"

#include <cassert>
#include <deque>

namespace gfc::topo {

NodeIndex Topology::add_host(std::string name, int pod) {
  nodes_.push_back(TopoNode{std::move(name), true, 0, pod});
  adj_dirty_ = true;
  return static_cast<NodeIndex>(nodes_.size() - 1);
}

NodeIndex Topology::add_switch(std::string name, int layer, int pod) {
  nodes_.push_back(TopoNode{std::move(name), false, layer, pod});
  adj_dirty_ = true;
  return static_cast<NodeIndex>(nodes_.size() - 1);
}

LinkIndex Topology::add_link(NodeIndex a, NodeIndex b) {
  assert(a != b);
  links_.push_back(TopoLink{a, b, true});
  adj_dirty_ = true;
  return static_cast<LinkIndex>(links_.size() - 1);
}

void Topology::restore_all() {
  for (auto& l : links_) l.up = true;
  adj_dirty_ = true;
}

std::vector<NodeIndex> Topology::hosts() const {
  std::vector<NodeIndex> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].is_host) out.push_back(static_cast<NodeIndex>(i));
  return out;
}

std::vector<NodeIndex> Topology::switches() const {
  std::vector<NodeIndex> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (!nodes_[i].is_host) out.push_back(static_cast<NodeIndex>(i));
  return out;
}

std::vector<LinkIndex> Topology::switch_links() const {
  std::vector<LinkIndex> out;
  for (std::size_t l = 0; l < links_.size(); ++l)
    if (!is_host(links_[l].a) && !is_host(links_[l].b))
      out.push_back(static_cast<LinkIndex>(l));
  return out;
}

void Topology::rebuild_adjacency() const {
  adj_.assign(nodes_.size(), {});
  for (std::size_t l = 0; l < links_.size(); ++l) {
    const TopoLink& link = links_[l];
    if (!link.up) continue;
    adj_[static_cast<std::size_t>(link.a)].push_back(
        {link.b, static_cast<LinkIndex>(l)});
    adj_[static_cast<std::size_t>(link.b)].push_back(
        {link.a, static_cast<LinkIndex>(l)});
  }
  adj_dirty_ = false;
}

const std::vector<std::pair<NodeIndex, LinkIndex>>& Topology::neighbors(
    NodeIndex i) const {
  if (adj_dirty_) rebuild_adjacency();
  return adj_[static_cast<std::size_t>(i)];
}

NodeIndex Topology::rack_of(NodeIndex host) const {
  for (const auto& [nbr, link] : neighbors(host))
    if (!is_host(nbr)) return nbr;
  return -1;
}

bool Topology::hosts_connected() const {
  const auto hs = hosts();
  if (hs.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<NodeIndex> bfs{hs[0]};
  seen[static_cast<std::size_t>(hs[0])] = true;
  std::size_t host_seen = 0;
  while (!bfs.empty()) {
    const NodeIndex v = bfs.front();
    bfs.pop_front();
    if (is_host(v)) ++host_seen;
    for (const auto& [nbr, link] : neighbors(v)) {
      if (!seen[static_cast<std::size_t>(nbr)]) {
        seen[static_cast<std::size_t>(nbr)] = true;
        bfs.push_back(nbr);
      }
    }
  }
  return host_seen == hs.size();
}

}  // namespace gfc::topo
