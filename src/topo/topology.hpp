// Abstract topology graph: hosts + switches + (failable) links.
//
// Node indices here become the net::NodeId values when a Fabric realizes
// the topology, so routing tables and CBD analysis can be computed offline
// and installed verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gfc::topo {

using NodeIndex = std::int32_t;
using LinkIndex = std::int32_t;

struct TopoNode {
  std::string name;
  bool is_host = false;
  int layer = 0;  // builder-specific label (fat-tree: 0=host,1=edge,2=agg,3=core)
  int pod = -1;   // builder-specific grouping (fat-tree pod / rack group)
};

struct TopoLink {
  NodeIndex a = -1;
  NodeIndex b = -1;
  bool up = true;
};

class Topology {
 public:
  NodeIndex add_host(std::string name, int pod = -1);
  NodeIndex add_switch(std::string name, int layer = 1, int pod = -1);
  LinkIndex add_link(NodeIndex a, NodeIndex b);

  void fail_link(LinkIndex l) {
    links_[static_cast<std::size_t>(l)].up = false;
    adj_dirty_ = true;
  }
  void restore_link(LinkIndex l) {
    links_[static_cast<std::size_t>(l)].up = true;
    adj_dirty_ = true;
  }
  void restore_all();

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const TopoNode& node(NodeIndex i) const { return nodes_[static_cast<std::size_t>(i)]; }
  const TopoLink& link(LinkIndex l) const { return links_[static_cast<std::size_t>(l)]; }

  bool is_host(NodeIndex i) const { return node(i).is_host; }
  std::vector<NodeIndex> hosts() const;
  std::vector<NodeIndex> switches() const;
  /// Links whose both endpoints are switches (failure candidates).
  std::vector<LinkIndex> switch_links() const;

  /// Neighbors over *up* links: (neighbor, link index) pairs.
  const std::vector<std::pair<NodeIndex, LinkIndex>>& neighbors(NodeIndex i) const;

  /// The edge switch a host hangs off (its "rack"); -1 if disconnected.
  NodeIndex rack_of(NodeIndex host) const;

  /// Are all hosts mutually reachable over up links?
  bool hosts_connected() const;

 private:
  void rebuild_adjacency() const;

  std::vector<TopoNode> nodes_;
  std::vector<TopoLink> links_;
  mutable std::vector<std::vector<std::pair<NodeIndex, LinkIndex>>> adj_;
  mutable bool adj_dirty_ = true;
};

}  // namespace gfc::topo
