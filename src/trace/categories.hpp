// Trace categories and event types.
//
// This header is dependency-free on purpose: sim::Logger (one layer below
// the tracer) tags log statements with the same category bits the binary
// tracer uses, so `--trace-categories` and the log filter speak one
// vocabulary. Categories are compile-time constants; the event-type ->
// category mapping is a constexpr switch that folds away at every call
// site that passes a literal EventType.
#pragma once

#include <cstdint>

namespace gfc::trace {

/// Category bit flags. A Tracer records an event iff its category bit is
/// set in the runtime mask; `kCatAll` is the default.
enum Category : std::uint32_t {
  kCatPort = 1u << 0,      // egress/ingress queue enqueue, dequeue, drop
  kCatLink = 1u << 1,      // link down/up, packets lost on a dead wire
  kCatPfc = 1u << 2,       // PFC PAUSE / RESUME, sent and received
  kCatCredit = 1u << 3,    // CBFC credit grants and credit exhaustion
  kCatGfc = 1u << 4,       // GFC stage crossings, queue samples, rate changes
  kCatSched = 1u << 5,     // egress-port wake-timer arm / cancel / fire
  kCatDeadlock = 1u << 6,  // deadlock detection and recovery
  kCatFlow = 1u << 7,      // flow start / completion, host deliveries
  kCatMech = 1u << 8,      // mechanism baselines: DCFIT triggers and breaks
  kCatAnalyze = 1u << 9,   // static re-analysis verdicts on routing installs
  kCatAll = 0x3FFu,
};

inline constexpr int kNumCategories = 10;

enum class EventType : std::uint8_t {
  // kCatPort
  kPortEnqueue = 0,  // data packet queued at an egress port (hosts)
  kTxStart,          // data packet started transmitting
  kIngressEnqueue,   // switch ingress accounting charged (value = bytes now)
  kIngressDequeue,   // switch ingress accounting released (value = bytes now)
  kDrop,             // packet discarded (unroutable / failover / recovery)
  // kCatLink
  kLinkDown,
  kLinkUp,
  kWireLost,  // in flight when the link went down
  // kCatPfc
  kPauseTx,
  kPauseRx,
  kResumeTx,
  kResumeRx,
  // kCatCredit
  kCreditTx,         // FCCL advertisement sent (value = FCCL blocks)
  kCreditRx,         // FCCL advertisement applied upstream
  kCreditExhausted,  // gate newly out of credits (edge-triggered)
  // kCatGfc
  kStageTx,    // buffer-based GFC stage feedback sent (value = stage)
  kStageRx,    // stage feedback applied upstream
  kQsampleTx,  // time-based/conceptual queue sample sent (value = bytes)
  kQsampleRx,  // queue sample applied upstream
  kRateSet,    // rate limiter reprogrammed (value = rate in bps)
  // kCatSched
  kWakeArm,     // wake timer armed (value = absolute wake instant)
  kWakeCancel,  // wake timer cancelled
  kWakeFire,    // wake timer fired
  // kCatDeadlock
  kDeadlockDetect,   // confirmed: one event per witness-cycle port
  kDeadlockRecover,  // recovery drained a cycle port (value = packets dropped)
  // kCatFlow
  kFlowStart,
  kFlowComplete,
  kDeliver,  // data packet delivered at a host (value = bytes, id = flow)
  // kCatMech (DCFIT, src/mech/dcfit.*)
  kTriggerOriginate,  // fresh trigger attached to a PAUSE (id = trigger seq)
  kTriggerPropagate,  // upstream trigger forwarded (value = origin node)
  kTriggerReturn,     // own trigger came back: deadlock (value = latency ps)
  kMechBreak,         // break action taken (value = packets dropped; 0=bypass)
  // kCatAnalyze (incremental re-analysis, src/analyze/incremental.*)
  kAnalyzeVerdict,  // verdict after a routing install (id = re-verdict
                    // ordinal, value = analyze::Verdict enum value)

  kNumEventTypes,  // sentinel
};

constexpr Category category_of(EventType t) {
  switch (t) {
    case EventType::kPortEnqueue:
    case EventType::kTxStart:
    case EventType::kIngressEnqueue:
    case EventType::kIngressDequeue:
    case EventType::kDrop:
      return kCatPort;
    case EventType::kLinkDown:
    case EventType::kLinkUp:
    case EventType::kWireLost:
      return kCatLink;
    case EventType::kPauseTx:
    case EventType::kPauseRx:
    case EventType::kResumeTx:
    case EventType::kResumeRx:
      return kCatPfc;
    case EventType::kCreditTx:
    case EventType::kCreditRx:
    case EventType::kCreditExhausted:
      return kCatCredit;
    case EventType::kStageTx:
    case EventType::kStageRx:
    case EventType::kQsampleTx:
    case EventType::kQsampleRx:
    case EventType::kRateSet:
      return kCatGfc;
    case EventType::kWakeArm:
    case EventType::kWakeCancel:
    case EventType::kWakeFire:
      return kCatSched;
    case EventType::kDeadlockDetect:
    case EventType::kDeadlockRecover:
      return kCatDeadlock;
    case EventType::kTriggerOriginate:
    case EventType::kTriggerPropagate:
    case EventType::kTriggerReturn:
    case EventType::kMechBreak:
      return kCatMech;
    case EventType::kAnalyzeVerdict:
      return kCatAnalyze;
    default:
      return kCatFlow;
  }
}

/// Stable lowercase identifier, used by both exporters and the CSV parser.
const char* type_name(EventType t);

/// "port", "pfc", ... (single category bit -> name).
const char* category_name(Category c);

}  // namespace gfc::trace
