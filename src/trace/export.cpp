#include "trace/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "sim/time.hpp"

namespace gfc::trace {
namespace {

// All numeric output goes through snprintf with integer conversions only:
// no locale, no floating point, byte-identical everywhere.
template <std::size_t N, typename... Args>
void emitf(std::ostream& os, const char (&fmt)[N], Args... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  os.write(buf, n > 0 ? (n < static_cast<int>(sizeof(buf))
                             ? n
                             : static_cast<int>(sizeof(buf)) - 1)
                      : 0);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;  // names are plain
    out += c;
  }
  return out;
}

/// Microsecond timestamp with full ps precision: "12.000080".
void emit_ts(std::ostream& os, sim::TimePs t) {
  emitf(os, "%" PRId64 ".%06" PRId64, t / sim::kPsPerUs, t % sim::kPsPerUs);
}

std::string display_name(const NodeNameFn& node_name, std::int32_t node) {
  if (node_name) {
    std::string n = node_name(node);
    if (!n.empty()) return n;
  }
  return "node" + std::to_string(node);
}

/// Counter-track events carry a running value; everything else is an
/// instant. Counters render as Perfetto counter tracks, which is what the
/// Fig 5/9/10 queue/rate plots want.
const char* counter_track(EventType t) {
  switch (t) {
    case EventType::kIngressEnqueue:
    case EventType::kIngressDequeue:
      return "ingress_bytes";
    case EventType::kRateSet:
      return "rate_bps";
    default:
      return nullptr;
  }
}

bool split_csv_row(const std::string& line, std::string (&field)[8]) {
  std::size_t pos = 0;
  for (int i = 0; i < 8; ++i) {
    const std::size_t comma = line.find(',', pos);
    const bool last = (i == 7);
    if (last != (comma == std::string::npos)) return false;
    field[i] = line.substr(pos, last ? std::string::npos : comma - pos);
    pos = comma + 1;
  }
  return true;
}

bool parse_i64(const std::string& s, std::int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

}  // namespace

void write_chrome_json(std::ostream& os, const TraceBuffer& buf,
                       const NodeNameFn& node_name) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  // Process-name metadata for every node that appears in the buffer.
  std::int32_t max_node = -1;
  for (std::size_t i = 0; i < buf.size(); ++i)
    if (buf[i].node > max_node) max_node = buf[i].node;
  for (std::int32_t n = 0; n <= max_node; ++n) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":" << n
       << ",\"name\":\"process_name\",\"args\":{\"name\":\""
       << json_escape(display_name(node_name, n)) << "\"}}";
  }
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const TraceEvent& e = buf[i];
    if (!first) os << ",\n";
    first = false;
    const int pid = e.node >= 0 ? e.node : 0;
    const int tid = e.port >= 0 ? e.port : 0;
    if (const char* track = counter_track(e.event_type())) {
      os << "{\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"ts\":";
      emit_ts(os, e.t);
      os << ",\"name\":\"" << track;
      if (e.prio >= 0) os << "_p" << static_cast<int>(e.prio);
      emitf(os, "\",\"args\":{\"value\":%" PRId64 "}}", e.value);
    } else {
      os << "{\"ph\":\"i\",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"ts\":";
      emit_ts(os, e.t);
      os << ",\"s\":\"t\",\"name\":\"" << type_name(e.event_type())
         << "\",\"cat\":\"" << category_name(e.category());
      emitf(os, "\",\"args\":{\"id\":%" PRIu64 ",\"value\":%" PRId64, e.id,
            e.value);
      if (e.prio >= 0) os << ",\"prio\":" << static_cast<int>(e.prio);
      os << "}}";
    }
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

bool export_chrome_json(const std::string& path, const TraceBuffer& buf,
                        const NodeNameFn& node_name, std::string* error) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  write_chrome_json(os, buf, node_name);
  return static_cast<bool>(os);
}

void write_csv(std::ostream& os, const TraceBuffer& buf) {
  os << "# gfc-trace-v1\n";
  os << "t_ps,type,category,node,port,prio,id,value\n";
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const TraceEvent& e = buf[i];
    emitf(os, "%" PRId64 ",%s,%s,%d,%d,%d,%" PRIu64 ",%" PRId64 "\n", e.t,
          type_name(e.event_type()), category_name(e.category()), e.node,
          static_cast<int>(e.port), static_cast<int>(e.prio), e.id, e.value);
  }
}

bool export_csv(const std::string& path, const TraceBuffer& buf,
                std::string* error) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  write_csv(os, buf);
  return static_cast<bool>(os);
}

bool parse_csv(std::istream& is, std::vector<TraceEvent>* out,
               std::string* error) {
  std::string line;
  std::size_t lineno = 0;
  bool saw_header = false;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header && line.rfind("t_ps,", 0) == 0) {
      saw_header = true;
      continue;
    }
    std::string f[8];
    std::int64_t t, node, port, prio, id, value;
    EventType type;
    if (!split_csv_row(line, f) || !parse_i64(f[0], &t) ||
        !type_from_name(f[1], &type) || !parse_i64(f[3], &node) ||
        !parse_i64(f[4], &port) || !parse_i64(f[5], &prio) ||
        !parse_i64(f[6], &id) || !parse_i64(f[7], &value)) {
      if (error)
        *error = "malformed trace CSV at line " + std::to_string(lineno);
      return false;
    }
    TraceEvent e;
    e.t = t;
    e.value = value;
    e.id = static_cast<std::uint64_t>(id);
    e.node = static_cast<std::int32_t>(node);
    e.port = static_cast<std::int16_t>(port);
    e.prio = static_cast<std::int8_t>(prio);
    e.type = static_cast<std::uint8_t>(type);
    out->push_back(e);
  }
  return true;
}

bool parse_csv_file(const std::string& path, std::vector<TraceEvent>* out,
                    std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  return parse_csv(is, out, error);
}

void write_flight_dump(std::ostream& os, const FlightRecorder& fr,
                       const NodeNameFn& node_name, const std::string& reason) {
  os << "# gfc-flight-v1\n";
  if (!reason.empty()) {
    // Prefix every reason line so the dump stays greppable line-by-line.
    std::size_t pos = 0;
    while (pos < reason.size()) {
      std::size_t nl = reason.find('\n', pos);
      if (nl == std::string::npos) nl = reason.size();
      os << "# reason: " << reason.substr(pos, nl - pos) << "\n";
      pos = nl + 1;
    }
  }
  os << "# nodes: " << fr.node_count() << " window: " << fr.window()
     << " events/node\n";
  for (const TraceEvent& e : fr.merged_window()) {
    emitf(os, "t_ps=%" PRId64 " node=%d", e.t, e.node);
    os << "(" << display_name(node_name, e.node) << ")";
    emitf(os, " port=%d prio=%d %s id=%" PRIu64 " value=%" PRId64 "\n",
          static_cast<int>(e.port), static_cast<int>(e.prio),
          type_name(e.event_type()), e.id, e.value);
  }
}

bool dump_flight(const std::string& path, const FlightRecorder& fr,
                 const NodeNameFn& node_name, const std::string& reason,
                 std::string* error) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  write_flight_dump(os, fr, node_name, reason);
  return static_cast<bool>(os);
}

}  // namespace gfc::trace
