// Trace exporters: Chrome trace_event JSON (loadable in Perfetto / Chrome
// about:tracing) and a flat CSV time series that regenerates the paper's
// probe data (Figs 5/9/10/18) without bespoke samplers.
//
// Both formats are produced with integer-only arithmetic and fixed-width
// formatting, so a seeded run exports byte-identically across reruns and
// across worker-thread counts.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace gfc::trace {

/// Resolves a node id to its display name (runner::Fabric provides one
/// backed by topo node names). May be empty; ids are printed then.
using NodeNameFn = std::function<std::string(std::int32_t)>;

// --- Chrome trace_event JSON ------------------------------------------------
/// Queue/rate events become counter tracks ("C"), everything else instant
/// events ("i"); nodes map to pids with process_name metadata, ports to tids.
/// `ts` is microseconds with ps precision (integer math, no doubles).
void write_chrome_json(std::ostream& os, const TraceBuffer& buf,
                       const NodeNameFn& node_name);
bool export_chrome_json(const std::string& path, const TraceBuffer& buf,
                        const NodeNameFn& node_name,
                        std::string* error = nullptr);

// --- CSV time series --------------------------------------------------------
/// Header "# gfc-trace-v1" then `t_ps,type,category,node,port,prio,id,value`.
void write_csv(std::ostream& os, const TraceBuffer& buf);
bool export_csv(const std::string& path, const TraceBuffer& buf,
                std::string* error = nullptr);

/// Re-import a write_csv stream. Returns false (and sets *error) on any
/// malformed line; used by the round-trip tests and offline analysis.
bool parse_csv(std::istream& is, std::vector<TraceEvent>* out,
               std::string* error = nullptr);
bool parse_csv_file(const std::string& path, std::vector<TraceEvent>* out,
                    std::string* error = nullptr);

// --- Flight-recorder dump ---------------------------------------------------
/// Human-readable post-mortem: one line per retained event, merged across
/// nodes in time order, preceded by `reason` (e.g. the detector's witness
/// cycle description).
void write_flight_dump(std::ostream& os, const FlightRecorder& fr,
                       const NodeNameFn& node_name, const std::string& reason);
bool dump_flight(const std::string& path, const FlightRecorder& fr,
                 const NodeNameFn& node_name, const std::string& reason,
                 std::string* error = nullptr);

}  // namespace gfc::trace
