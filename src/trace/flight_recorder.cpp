#include <algorithm>

#include "trace/trace.hpp"

namespace gfc::trace {

void FlightRecorder::observe(const TraceEvent& e) {
  if (e.node < 0) return;
  const auto idx = static_cast<std::size_t>(e.node);
  while (nodes_.size() <= idx) nodes_.emplace_back(window_);
  nodes_[idx].push(e);
}

std::vector<TraceEvent> FlightRecorder::node_window(std::int32_t node) const {
  std::vector<TraceEvent> out;
  if (node < 0 || static_cast<std::size_t>(node) >= nodes_.size()) return out;
  const TraceBuffer& ring = nodes_[static_cast<std::size_t>(node)];
  // The backing ring rounds up to a power of two; the observable window is
  // exactly the last `window_` events.
  const std::size_t first = ring.size() > window_ ? ring.size() - window_ : 0;
  out.reserve(ring.size() - first);
  for (std::size_t i = first; i < ring.size(); ++i) out.push_back(ring[i]);
  return out;
}

std::vector<TraceEvent> FlightRecorder::merged_window() const {
  std::vector<TraceEvent> out;
  for (const TraceBuffer& ring : nodes_) {
    const std::size_t first =
        ring.size() > window_ ? ring.size() - window_ : 0;
    for (std::size_t i = first; i < ring.size(); ++i) out.push_back(ring[i]);
  }
  // stable_sort keeps per-node push order for equal timestamps, and nodes_
  // iterates in node-id order, so the merge is fully deterministic.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.t != b.t) return a.t < b.t;
                     return a.node < b.node;
                   });
  return out;
}

}  // namespace gfc::trace
