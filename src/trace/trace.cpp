#include "trace/trace.hpp"

#include <array>

namespace gfc::trace {
namespace {

// Indexed by EventType; order must match categories.hpp.
constexpr std::array<const char*, static_cast<int>(EventType::kNumEventTypes)>
    kTypeNames = {
        "port_enqueue",    "tx_start",         "ingress_enqueue",
        "ingress_dequeue", "drop",             "link_down",
        "link_up",         "wire_lost",        "pause_tx",
        "pause_rx",        "resume_tx",        "resume_rx",
        "credit_tx",       "credit_rx",        "credit_exhausted",
        "stage_tx",        "stage_rx",         "qsample_tx",
        "qsample_rx",      "rate_set",         "wake_arm",
        "wake_cancel",     "wake_fire",        "deadlock_detect",
        "deadlock_recover", "flow_start",      "flow_complete",
        "deliver",          "trigger_originate", "trigger_propagate",
        "trigger_return",  "mech_break",        "analyze_verdict",
};

struct CategoryName {
  Category bit;
  const char* name;
};
constexpr std::array<CategoryName, kNumCategories> kCategoryNames = {{
    {kCatPort, "port"},
    {kCatLink, "link"},
    {kCatPfc, "pfc"},
    {kCatCredit, "credit"},
    {kCatGfc, "gfc"},
    {kCatSched, "sched"},
    {kCatDeadlock, "deadlock"},
    {kCatFlow, "flow"},
    {kCatMech, "mech"},
    {kCatAnalyze, "analyze"},
}};

}  // namespace

void Tracer::flush_staged() const {
  if (!deferred_ || seq_ == flushed_) return;
  // The staged seqs form exactly the contiguous range [flushed_, seq_):
  // every record's final ring position is known, so this is a compare-free
  // scatter — one store per record — rather than a k-way merge.
  for (auto& st : staged_)
    for (const StagedEvent& s : st) ring_.scatter(s.seq - flushed_, s.e);
  ring_.advance(seq_ - flushed_);
  flushed_ = seq_;
  for (auto& st : staged_) st.clear();  // keeps the reserve()d capacity
}

FlightRecorder* Tracer::flight_impl() const {
  if (!deferred_) return flight_.get();
  if (flight_window_ == 0) return nullptr;
  flush_staged();
  // Rebuild the per-node windows by replaying the retained ring — the
  // whole flight-recorder cost lands here, at post-mortem/dump time,
  // instead of on every recorded event.
  if (!flight_built_ || flight_fed_ != ring_.total_recorded()) {
    flight_ = std::make_unique<FlightRecorder>(flight_window_);
    for (std::size_t i = 0; i < ring_.size(); ++i) flight_->observe(ring_[i]);
    flight_fed_ = ring_.total_recorded();
    flight_built_ = true;
  }
  return flight_.get();
}

const char* type_name(EventType t) {
  const auto i = static_cast<std::size_t>(t);
  return i < kTypeNames.size() ? kTypeNames[i] : "unknown";
}

const char* category_name(Category c) {
  for (const auto& e : kCategoryNames)
    if (e.bit == c) return e.name;
  return "unknown";
}

std::uint32_t parse_categories(const std::string& spec, std::string* error) {
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string name = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (name.empty()) continue;
    if (name == "all") {
      mask |= kCatAll;
      continue;
    }
    bool found = false;
    for (const auto& e : kCategoryNames) {
      if (name == e.name) {
        mask |= e.bit;
        found = true;
        break;
      }
    }
    if (!found) {
      if (error) *error = "unknown trace category: " + name;
      return 0;
    }
  }
  return mask;
}

bool type_from_name(const std::string& name, EventType* out) {
  for (std::size_t i = 0; i < kTypeNames.size(); ++i) {
    if (name == kTypeNames[i]) {
      *out = static_cast<EventType>(i);
      return true;
    }
  }
  return false;
}

std::string categories_to_string(std::uint32_t mask) {
  if ((mask & kCatAll) == kCatAll) return "all";
  std::string out;
  for (const auto& e : kCategoryNames) {
    if ((mask & e.bit) == 0) continue;
    if (!out.empty()) out += ',';
    out += e.name;
  }
  return out.empty() ? "none" : out;
}

}  // namespace gfc::trace
