// Binary event tracing: a preallocated ring buffer of fixed-size records
// plus per-node flight-recorder windows.
//
// Design constraints (this instruments the per-packet hot paths PR 1
// optimized — see BM_TraceOff/BM_TraceOn in bench/microbench.cpp):
//  * With tracing disabled, every instrumentation site costs exactly one
//    predictable branch: `Network::trace_event` tests a pointer that is
//    null unless a Tracer was installed. No arguments are materialized
//    beyond what the caller already has in registers.
//  * With tracing enabled, `Tracer::record` is a constexpr-foldable
//    category-mask test followed by a 32-byte POD store into a ring that
//    never allocates after construction. No formatting, no strings, no
//    clock reads (the simulation clock is passed in).
//  * One Tracer per Network/simulation: experiment campaigns run many
//    sims concurrently, so there is deliberately no global state here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "trace/categories.hpp"

namespace gfc::trace {

/// One trace record. 32 bytes, POD, fixed layout — the ring is just an
/// array of these and exports walk it without any per-event allocation.
struct TraceEvent {
  sim::TimePs t = 0;        // simulation timestamp (ps)
  std::int64_t value = 0;   // payload: queue bytes, stage, rate bps, ...
  std::uint64_t id = 0;     // packet id or flow id (event-type dependent)
  std::int32_t node = -1;   // owning node
  std::int16_t port = -1;   // port index on `node` (-1 = node-level event)
  std::int8_t prio = -1;    // priority class (-1 = not priority-scoped)
  std::uint8_t type = 0;    // EventType

  EventType event_type() const { return static_cast<EventType>(type); }
  Category category() const { return category_of(event_type()); }
  bool operator==(const TraceEvent&) const = default;
};
static_assert(sizeof(TraceEvent) == 32, "trace records must stay 32 bytes");

/// Fixed-capacity overwriting ring of TraceEvents (flight-recorder
/// semantics: when full, the oldest record is replaced).
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity)
      : buf_(capacity > 0 ? capacity : 1) {}

  void push(const TraceEvent& e) {
    buf_[static_cast<std::size_t>(total_ % buf_.size())] = e;
    ++total_;
  }

  std::size_t capacity() const { return buf_.size(); }
  /// Events ever pushed (>= size() once the ring has wrapped).
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const {
    return total_ > buf_.size() ? total_ - buf_.size() : 0;
  }
  std::size_t size() const {
    return total_ < buf_.size() ? static_cast<std::size_t>(total_)
                                : buf_.size();
  }

  /// i-th retained event in chronological (push) order, 0 = oldest.
  const TraceEvent& operator[](std::size_t i) const {
    const std::uint64_t first = total_ - size();
    return buf_[static_cast<std::size_t>((first + i) % buf_.size())];
  }

 private:
  std::vector<TraceEvent> buf_;
  std::uint64_t total_ = 0;
};

/// Per-node last-N event windows, fed by the Tracer on every recorded
/// event. On deadlock detection (or any post-mortem) the windows hold the
/// pre-stall event sequence for each node — the forensic evidence a
/// verdict-only detector cannot give.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t per_node_window)
      : window_(per_node_window > 0 ? per_node_window : 1) {}

  void observe(const TraceEvent& e);

  std::size_t window() const { return window_; }
  /// Highest node id seen + 1.
  std::int32_t node_count() const {
    return static_cast<std::int32_t>(nodes_.size());
  }
  /// Chronological last-N window for `node` (empty if never seen).
  std::vector<TraceEvent> node_window(std::int32_t node) const;
  /// All nodes' windows merged, time-ordered (ties keep node order — the
  /// result is deterministic for deterministic runs).
  std::vector<TraceEvent> merged_window() const;

 private:
  std::size_t window_;
  std::vector<TraceBuffer> nodes_;  // indexed by node id, lazily grown
};

/// Runtime trace configuration, carried by runner::ScenarioConfig and
/// populated from the --trace / --trace-categories / --trace-out CLI.
struct TraceOptions {
  bool enabled = false;
  std::uint32_t categories = kCatAll;
  /// Main ring capacity in events (32 B each). The ring overwrites, so
  /// this bounds memory, not run length.
  std::size_t capacity = 1u << 20;
  /// Flight-recorder window per node; 0 disables the recorder.
  std::size_t flight_window = 256;
};

class Tracer {
 public:
  explicit Tracer(const TraceOptions& opts)
      : mask_(opts.categories), ring_(opts.capacity) {
    if (opts.flight_window > 0)
      flight_ = std::make_unique<FlightRecorder>(opts.flight_window);
  }

  std::uint32_t mask() const { return mask_; }
  void set_mask(std::uint32_t m) { mask_ = m; }
  bool enabled(Category c) const { return (mask_ & c) != 0; }

  /// Hot-path record. The mask test folds to a compile-time-known bit for
  /// literal `type` arguments; a masked-off category costs the test only.
  void record(EventType type, sim::TimePs t, std::int32_t node,
              std::int32_t port, std::int32_t prio, std::uint64_t id,
              std::int64_t value) {
    if ((mask_ & category_of(type)) == 0) return;
    TraceEvent e;
    e.t = t;
    e.value = value;
    e.id = id;
    e.node = node;
    e.port = static_cast<std::int16_t>(port);
    e.prio = static_cast<std::int8_t>(prio);
    e.type = static_cast<std::uint8_t>(type);
    ring_.push(e);
    if (flight_) flight_->observe(e);
  }

  const TraceBuffer& buffer() const { return ring_; }
  FlightRecorder* flight() { return flight_.get(); }
  const FlightRecorder* flight() const { return flight_.get(); }

 private:
  std::uint32_t mask_;
  TraceBuffer ring_;
  std::unique_ptr<FlightRecorder> flight_;
};

/// Parse "pfc,port,sched" (or "all") into a category mask; unknown names
/// are reported via *error (when non-null) and yield 0.
std::uint32_t parse_categories(const std::string& spec,
                               std::string* error = nullptr);

/// Inverse of parse_categories for a mask: "port,link,..." or "all".
std::string categories_to_string(std::uint32_t mask);

/// Inverse of type_name; false for unrecognized names (CSV re-import).
bool type_from_name(const std::string& name, EventType* out);

}  // namespace gfc::trace
