// Binary event tracing: a preallocated ring buffer of fixed-size records
// plus per-node flight-recorder windows.
//
// Design constraints (this instruments the per-packet hot paths PR 1
// optimized — see BM_TraceOff/BM_TraceOn in bench/microbench.cpp):
//  * With tracing disabled, every instrumentation site costs exactly one
//    predictable branch: `Network::trace_event` tests a pointer that is
//    null unless a Tracer was installed. No arguments are materialized
//    beyond what the caller already has in registers.
//  * With tracing enabled, `Tracer::record` is a constexpr-foldable
//    category-mask test followed by a POD store that never allocates after
//    construction. No formatting, no strings, no clock reads (the
//    simulation clock is passed in). Ring capacities round up to powers of
//    two so indexing is a mask, not a 64-bit modulo.
//  * Deferred (staged) mode — the default: the hot path appends the record
//    to a per-category staging buffer and nothing else. Main-ring
//    overwrite bookkeeping and per-node flight-recorder windows are
//    updated in batched flushes (when a staging buffer fills, or at
//    buffer()/flight() access), replaying records in global order — so the
//    observable ring and flight state is byte-identical to eager mode at
//    every access, by construction. tests/trace_test.cpp locks this down.
//  * One Tracer per Network/simulation: experiment campaigns run many
//    sims concurrently, so there is deliberately no global state here.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "trace/categories.hpp"

namespace gfc::trace {

/// One trace record. 32 bytes, POD, fixed layout — the ring is just an
/// array of these and exports walk it without any per-event allocation.
struct TraceEvent {
  sim::TimePs t = 0;        // simulation timestamp (ps)
  std::int64_t value = 0;   // payload: queue bytes, stage, rate bps, ...
  std::uint64_t id = 0;     // packet id or flow id (event-type dependent)
  std::int32_t node = -1;   // owning node
  std::int16_t port = -1;   // port index on `node` (-1 = node-level event)
  std::int8_t prio = -1;    // priority class (-1 = not priority-scoped)
  std::uint8_t type = 0;    // EventType

  EventType event_type() const { return static_cast<EventType>(type); }
  Category category() const { return category_of(event_type()); }
  bool operator==(const TraceEvent&) const = default;
};
static_assert(sizeof(TraceEvent) == 32, "trace records must stay 32 bytes");

/// Fixed-capacity overwriting ring of TraceEvents (flight-recorder
/// semantics: when full, the oldest record is replaced). Capacity rounds
/// up to a power of two so the hot-path index is a mask, not a modulo.
/// The backing store is deliberately left uninitialized: every readable
/// cell (index < size()) is written by push/scatter first, and skipping
/// the value-init avoids faulting + zeroing megabytes per Tracer — rings
/// default to 32 MB and campaigns build one per simulation.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity)
      : cap_(std::bit_ceil(std::max<std::size_t>(capacity, 1))),
        mask_(cap_ - 1),
        buf_(static_cast<TraceEvent*>(
            ::operator new(cap_ * sizeof(TraceEvent)))) {}

  void push(const TraceEvent& e) {
    // Placement-new: cells start as raw storage (see class comment); for
    // this trivially-copyable type it compiles to a plain 32-byte store.
    ::new (&buf_[static_cast<std::size_t>(total_) & mask_]) TraceEvent(e);
    ++total_;
  }

  /// Batched push, out of order: place `e` at logical position total() + k
  /// without committing, then advance(n) once all n positions [0, n) have
  /// been written. Writing the same logical position twice keeps the later
  /// write; positions that wrap behave exactly as sequential push()es
  /// would. Used by the Tracer's staging flush, where each record's global
  /// sequence number is its position — no comparisons, one store each.
  void scatter(std::uint64_t k, const TraceEvent& e) {
    ::new (&buf_[static_cast<std::size_t>(total_ + k) & mask_]) TraceEvent(e);
  }
  void advance(std::uint64_t n) { total_ += n; }

  std::size_t capacity() const { return cap_; }
  /// Events ever pushed (>= size() once the ring has wrapped).
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const {
    return total_ > cap_ ? total_ - cap_ : 0;
  }
  std::size_t size() const {
    return total_ < cap_ ? static_cast<std::size_t>(total_) : cap_;
  }

  /// i-th retained event in chronological (push) order, 0 = oldest.
  const TraceEvent& operator[](std::size_t i) const {
    const std::uint64_t first = total_ - size();
    return buf_[static_cast<std::size_t>(first + i) & mask_];
  }

 private:
  struct OpDelete {
    void operator()(TraceEvent* p) const { ::operator delete(p); }
  };

  std::size_t cap_;
  std::size_t mask_;
  std::unique_ptr<TraceEvent[], OpDelete> buf_;
  std::uint64_t total_ = 0;
};

/// Per-node last-N event windows, fed by the Tracer on every recorded
/// event. On deadlock detection (or any post-mortem) the windows hold the
/// pre-stall event sequence for each node — the forensic evidence a
/// verdict-only detector cannot give.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t per_node_window)
      : window_(per_node_window > 0 ? per_node_window : 1) {}

  void observe(const TraceEvent& e);

  std::size_t window() const { return window_; }
  /// Highest node id seen + 1.
  std::int32_t node_count() const {
    return static_cast<std::int32_t>(nodes_.size());
  }
  /// Chronological last-N window for `node` (empty if never seen).
  std::vector<TraceEvent> node_window(std::int32_t node) const;
  /// All nodes' windows merged, time-ordered (ties keep node order — the
  /// result is deterministic for deterministic runs).
  std::vector<TraceEvent> merged_window() const;

 private:
  std::size_t window_;
  std::vector<TraceBuffer> nodes_;  // indexed by node id, lazily grown
};

/// Runtime trace configuration, carried by runner::ScenarioConfig and
/// populated from the --trace / --trace-categories / --trace-out CLI.
struct TraceOptions {
  bool enabled = false;
  std::uint32_t categories = kCatAll;
  /// Main ring capacity in events (32 B each; rounds up to a power of
  /// two). The ring overwrites, so this bounds memory, not run length.
  std::size_t capacity = 1u << 20;
  /// Flight-recorder window per node (rounds up to a power of two); 0
  /// disables the recorder.
  std::size_t flight_window = 256;
  /// Deferred (staged) recording — the default. The hot path appends to a
  /// per-category staging buffer and nothing else; the main ring is filled
  /// by batched, order-preserving flushes and the flight recorder is
  /// reconstructed from the ring at access time instead of being fed per
  /// event. Exports are byte-identical to eager mode (deferred = false);
  /// flight windows are identical as long as the ring has not overwritten
  /// (for multi-hour forensic runs where the ring wraps far past the
  /// windows, eager mode keeps the exact per-node last-N semantics).
  bool deferred = true;
  /// Per-category staging capacity in events (40 B each); 0 picks a small
  /// cache-friendly default. Flushes trigger when a buffer fills, so this
  /// trades flush frequency against staging locality, never correctness.
  std::size_t staging_capacity = 0;
};

/// A trace record parked in a per-category staging buffer, carrying the
/// global record sequence number that restores total order at flush time.
struct StagedEvent {
  TraceEvent e;
  std::uint64_t seq;
};
static_assert(sizeof(StagedEvent) == 40, "staged records must stay 40 bytes");

class Tracer {
 public:
  explicit Tracer(const TraceOptions& opts)
      : mask_(opts.categories),
        ring_(opts.capacity),
        deferred_(opts.deferred),
        flight_window_(opts.flight_window) {
    if (flight_window_ > 0 && !deferred_)
      flight_ = std::make_unique<FlightRecorder>(flight_window_);
    if (deferred_) {
      // Small buffers flush often but stay cache-resident; the default
      // keeps the whole staging working set around 640 KB. The clamp to
      // capacity/8 bounds any flush batch to the ring capacity, which the
      // scatter-based flush requires (see TraceBuffer::scatter).
      staging_cap_ = opts.staging_capacity != 0 ? opts.staging_capacity
                                                : std::size_t{2048};
      staging_cap_ = std::max<std::size_t>(
          1, std::min(staging_cap_, ring_.capacity() / kNumCategories));
      for (auto& st : staged_) st.reserve(staging_cap_);
    }
  }

  std::uint32_t mask() const { return mask_; }
  void set_mask(std::uint32_t m) { mask_ = m; }
  bool enabled(Category c) const { return (mask_ & c) != 0; }
  bool deferred() const { return deferred_; }

  /// Hot-path record. The mask test folds to a compile-time-known bit for
  /// literal `type` arguments; a masked-off category costs the test only.
  /// Deferred mode: one append into the category's staging buffer (no ring
  /// bookkeeping, no flight-recorder update — those happen at flush).
  void record(EventType type, sim::TimePs t, std::int32_t node,
              std::int32_t port, std::int32_t prio, std::uint64_t id,
              std::int64_t value) {
    const Category cat = category_of(type);
    if ((mask_ & cat) == 0) return;
    TraceEvent e;
    e.t = t;
    e.value = value;
    e.id = id;
    e.node = node;
    e.port = static_cast<std::int16_t>(port);
    e.prio = static_cast<std::int8_t>(prio);
    e.type = static_cast<std::uint8_t>(type);
    if (!deferred_) {
      ring_.push(e);
      if (flight_) flight_->observe(e);
      return;
    }
    auto& st = staged_[category_index(cat)];
    st.push_back(StagedEvent{e, seq_++});  // within reserve: no allocation
    if (st.size() == staging_cap_) flush_staged();
  }

  /// Drain every staging buffer into the ring in global record order
  /// (each buffer is seq-ascending; k-way merge). No-op in eager mode or
  /// when nothing is staged.
  void flush_staged() const;

  /// The main ring, with any staged records flushed in first.
  const TraceBuffer& buffer() const {
    flush_staged();
    return ring_;
  }
  /// The flight recorder (null when flight_window was 0). Deferred mode
  /// rebuilds the per-node windows from the ring here — at post-mortem
  /// time — instead of observing every record on the hot path.
  FlightRecorder* flight() { return flight_impl(); }
  const FlightRecorder* flight() const { return flight_impl(); }

 private:
  static int category_index(Category c) {
    return std::countr_zero(static_cast<std::uint32_t>(c));
  }

  FlightRecorder* flight_impl() const;

  std::uint32_t mask_;
  // Flush targets are updated from const accessors (buffer() on a const
  // Tracer must still see staged records), hence mutable.
  mutable TraceBuffer ring_;
  mutable std::unique_ptr<FlightRecorder> flight_;
  bool deferred_ = false;
  std::size_t flight_window_ = 0;
  std::size_t staging_cap_ = 0;
  std::uint64_t seq_ = 0;  // global record sequence (deferred mode)
  mutable std::uint64_t flushed_ = 0;  // first seq not yet flushed
  // Ring total the deferred flight rebuild last ran at (stale detector).
  mutable std::uint64_t flight_fed_ = 0;
  mutable bool flight_built_ = false;
  mutable std::vector<StagedEvent> staged_[kNumCategories];
};

/// Parse "pfc,port,sched" (or "all") into a category mask; unknown names
/// are reported via *error (when non-null) and yield 0.
std::uint32_t parse_categories(const std::string& spec,
                               std::string* error = nullptr);

/// Inverse of parse_categories for a mask: "port,link,..." or "all".
std::string categories_to_string(std::uint32_t mask);

/// Inverse of type_name; false for unrecognized names (CSV re-import).
bool type_from_name(const std::string& name, EventType* out);

}  // namespace gfc::trace
