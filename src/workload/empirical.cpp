#include "workload/empirical.hpp"

#include <cassert>
#include <cmath>

namespace gfc::workload {

FlowSizeCdf::FlowSizeCdf(std::vector<std::pair<std::int64_t, double>> points)
    : points_(std::move(points)) {
  assert(!points_.empty());
  assert(points_.back().second >= 0.999);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    assert(points_[i].first >= points_[i - 1].first);
    assert(points_[i].second >= points_[i - 1].second);
  }
}

std::int64_t FlowSizeCdf::sample(sim::Rng& rng) const {
  const double u = rng.uniform_real();
  if (u <= points_.front().second) return points_.front().first;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (u <= points_[i].second) {
      const auto [s0, p0] = points_[i - 1];
      const auto [s1, p1] = points_[i];
      if (p1 <= p0 || s1 <= s0) return s1;
      // Interpolate in log(size): heavy-tailed distributions are roughly
      // straight lines on a log axis.
      const double f = (u - p0) / (p1 - p0);
      const double ls = std::log(static_cast<double>(s0)) +
                        f * (std::log(static_cast<double>(s1)) -
                             std::log(static_cast<double>(s0)));
      return static_cast<std::int64_t>(std::exp(ls));
    }
  }
  return points_.back().first;
}

double FlowSizeCdf::mean_bytes() const {
  double mean = points_.front().second * static_cast<double>(points_.front().first);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double dp = points_[i].second - points_[i - 1].second;
    mean += dp * 0.5 *
            static_cast<double>(points_[i].first + points_[i - 1].first);
  }
  return mean;
}

FlowSizeCdf FlowSizeCdf::enterprise() {
  return FlowSizeCdf({
      {250, 0.00},
      {500, 0.15},
      {1'000, 0.30},
      {2'000, 0.40},
      {10'000, 0.53},
      {30'000, 0.60},
      {100'000, 0.70},
      {300'000, 0.80},
      {1'000'000, 0.90},
      {3'000'000, 0.95},
      {10'000'000, 0.99},
      {30'000'000, 1.00},
  });
}

FlowSizeCdf FlowSizeCdf::fixed(std::int64_t size) {
  return FlowSizeCdf({{size, 1.0}});
}

FlowSizeCdf FlowSizeCdf::uniform(std::int64_t lo, std::int64_t hi) {
  return FlowSizeCdf({{lo, 0.0}, {hi, 1.0}});
}

}  // namespace gfc::workload
