// Flow-size distributions, including the enterprise workload of Figure 15.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/random.hpp"

namespace gfc::workload {

/// Piecewise-log-linear inverse-CDF sampler over (size, cum_prob) points.
class FlowSizeCdf {
 public:
  /// Points must be ascending in both coordinates; the last cum_prob must
  /// be 1.0.
  explicit FlowSizeCdf(std::vector<std::pair<std::int64_t, double>> points);

  std::int64_t sample(sim::Rng& rng) const;

  /// Approximate mean (by the trapezoid rule over the inverse CDF).
  double mean_bytes() const;

  const std::vector<std::pair<std::int64_t, double>>& points() const {
    return points_;
  }

  /// Figure 15's empirically observed enterprise traffic pattern [57],
  /// approximated: ~half the flows under ~10 KB with a heavy tail to
  /// ~30 MB. (Substitution documented in DESIGN.md.)
  static FlowSizeCdf enterprise();

  static FlowSizeCdf fixed(std::int64_t size);
  static FlowSizeCdf uniform(std::int64_t lo, std::int64_t hi);

 private:
  std::vector<std::pair<std::int64_t, double>> points_;
};

}  // namespace gfc::workload
