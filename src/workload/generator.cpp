#include "workload/generator.hpp"

#include <cassert>

namespace gfc::workload {

ClosedLoopGenerator::ClosedLoopGenerator(net::Network& net,
                                         std::vector<net::NodeId> hosts,
                                         std::vector<int> rack_of,
                                         FlowSizeCdf sizes, sim::Rng rng,
                                         std::uint8_t priority)
    : net_(net),
      hosts_(std::move(hosts)),
      rack_of_(std::move(rack_of)),
      sizes_(std::move(sizes)),
      rng_(rng),
      priority_(priority) {
  assert(hosts_.size() == rack_of_.size());
  net_.add_completion_listener([this](net::Flow& flow) {
    if (!active_) return;
    auto it = mine_.find(flow.id);
    if (it == mine_.end()) return;
    mine_.erase(it);
    launch(flow.src);
  });
}

void ClosedLoopGenerator::start() {
  active_ = true;
  for (net::NodeId h : hosts_) launch(h);
}

void ClosedLoopGenerator::launch(net::NodeId src) {
  // Find the source's rack, then draw a destination from another rack.
  int src_rack = -1;
  for (std::size_t i = 0; i < hosts_.size(); ++i)
    if (hosts_[i] == src) src_rack = rack_of_[i];
  net::NodeId dst = src;
  for (int tries = 0; tries < 1000; ++tries) {
    const std::size_t i = rng_.pick_index(hosts_.size());
    if (hosts_[i] != src && rack_of_[i] != src_rack) {
      dst = hosts_[i];
      break;
    }
  }
  if (dst == src) return;  // degenerate topology (single rack)
  const std::int64_t size = sizes_.sample(rng_);
  net::Flow& flow =
      net_.create_flow(src, dst, priority_, size, net_.sched().now());
  mine_.insert(flow.id);
  ++flows_started_;
}

}  // namespace gfc::workload
