// Closed-loop traffic generation (Sec 6.2.3): each host picks a random
// destination in a different rack, runs one flow, and immediately starts
// the next when it completes.
#pragma once

#include <set>
#include <vector>

#include "net/network.hpp"
#include "sim/random.hpp"
#include "workload/empirical.hpp"

namespace gfc::workload {

class ClosedLoopGenerator {
 public:
  /// `rack_of[i]` is a rack label for hosts[i]; destinations are drawn
  /// uniformly from hosts in other racks.
  ClosedLoopGenerator(net::Network& net, std::vector<net::NodeId> hosts,
                      std::vector<int> rack_of, FlowSizeCdf sizes,
                      sim::Rng rng, std::uint8_t priority = 0);

  /// Launch one flow per host.
  void start();

  /// Stop replacing completed flows (in-flight flows run out).
  void stop() { active_ = false; }

  std::uint64_t flows_started() const { return flows_started_; }

 private:
  void launch(net::NodeId src);

  net::Network& net_;
  std::vector<net::NodeId> hosts_;
  std::vector<int> rack_of_;
  FlowSizeCdf sizes_;
  sim::Rng rng_;
  std::uint8_t priority_;
  bool active_ = false;
  std::uint64_t flows_started_ = 0;
  std::set<net::FlowId> mine_;
};

}  // namespace gfc::workload
