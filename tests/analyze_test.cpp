// Tests for the static analysis pass (src/analyze/): golden JSON reports,
// structural properties of the enumerated cycles (simple, chained, closed,
// edges real), canonical-witness determinism, verdict semantics, the
// --analyze pre-flight hook, and the load-bearing cross-validation: the
// static verdict must agree with what the simulator actually does.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/repair.hpp"
#include "analyze/scenario.hpp"
#include "analyze/sweep.hpp"
#include "runner/scenarios.hpp"
#include "sim/random.hpp"
#include "stats/deadlock.hpp"
#include "topo/builders.hpp"
#include "topo/cbd.hpp"
#include "topo/routing.hpp"
#include "topo/scenario_gen.hpp"

namespace gfc::analyze {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << "missing " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// The exact configuration gfc-analyze builds for --fc KIND --buffer B:
/// everything derived from the buffer via the paper's bounds.
runner::ScenarioConfig cli_config(runner::FcKind kind, std::int64_t buffer) {
  runner::ScenarioConfig cfg;
  cfg.switch_buffer = buffer;
  cfg.fc = runner::FcSetup::derive(kind, buffer, cfg.link.rate, cfg.tau(),
                                   cfg.link.mtu);
  return cfg;
}

Report analyze_spec(const std::string& spec, const runner::ScenarioConfig& cfg,
                    std::size_t max_cycles = 4096) {
  BuiltScenario sc;
  std::string err;
  EXPECT_TRUE(build_scenario(spec, &sc, &err)) << err;
  Input in;
  in.topo = &sc.topo;
  in.routing = &sc.routing;
  in.cfg = cfg;
  in.flows = sc.flows;
  in.max_cycles = max_cycles;
  in.scenario = sc.name;
  return analyze(in);
}

// --- Golden reports: Report::json() is a stable, versioned artifact. ---
// Regenerate with, e.g.:
//   build/tools/gfc-analyze ring:3:2 --fc pfc --buffer 1000000
//     --json tests/golden/ring3_pfc.json

TEST(AnalyzeGolden, RingPfc) {
  const Report r =
      analyze_spec("ring:3:2", cli_config(runner::FcKind::kPfc, 1'000'000));
  EXPECT_EQ(r.json(),
            read_file(GFC_TEST_DATA_DIR "/golden/ring3_pfc.json"));
}

TEST(AnalyzeGolden, FatTreeSeed22GfcBuffer) {
  const Report r = analyze_spec(
      "fattree:4:seed=22", cli_config(runner::FcKind::kGfcBuffer, 300'000));
  EXPECT_EQ(r.json(),
            read_file(GFC_TEST_DATA_DIR
                      "/golden/fattree4_seed22_gfc_buffer.json"));
}

TEST(AnalyzeGolden, RoutingLoopPfc) {
  const Report r =
      analyze_spec("loop2", cli_config(runner::FcKind::kPfc, 300'000));
  EXPECT_EQ(r.json(),
            read_file(GFC_TEST_DATA_DIR "/golden/loop2_pfc.json"));
}

// Regenerate with:
//   build/tools/gfc-analyze ring:3:2 --fc pfc --buffer 1000000 --failures 1
//     --suggest-repairs --json tests/golden/ring3_pfc_failures.json
TEST(AnalyzeGolden, RingPfcFailureSweepWithRepairs) {
  BuiltScenario sc;
  std::string err;
  ASSERT_TRUE(build_scenario("ring:3:2", &sc, &err)) << err;
  Input in;
  in.topo = &sc.topo;
  in.routing = &sc.routing;
  in.cfg = cli_config(runner::FcKind::kPfc, 1'000'000);
  in.flows = sc.flows;
  in.scenario = sc.name;
  Report r = sweep_failures(in, 1);
  r.repairs = suggest_repairs(in, r);
  EXPECT_EQ(r.json(),
            read_file(GFC_TEST_DATA_DIR "/golden/ring3_pfc_failures.json"));
}

// --- Structural properties of the enumeration. ---

/// Every reported cycle must be an elementary cycle of the real
/// buffer-dependency graph: consecutive links chained head-to-tail, the
/// last link closing back on the first, no vertex repeated, and every
/// dependency edge present in the graph built from the same routing.
void check_cycles_well_formed(const std::string& spec) {
  SCOPED_TRACE(spec);
  BuiltScenario sc;
  std::string err;
  ASSERT_TRUE(build_scenario(spec, &sc, &err)) << err;
  Input in;
  in.topo = &sc.topo;
  in.routing = &sc.routing;
  in.cfg = cli_config(runner::FcKind::kPfc, 300'000);
  in.flows = sc.flows;
  in.scenario = sc.name;
  const Report r = analyze(in);
  EXPECT_FALSE(r.truncated);

  topo::BufferDependencyGraph g(sc.topo);
  g.add_routing_closure(sc.routing);
  const auto& verts = g.links();
  auto vertex_of = [&](const topo::DirectedLink& l) {
    const auto it = std::find(verts.begin(), verts.end(), l);
    return it == verts.end() ? -1 : static_cast<int>(it - verts.begin());
  };

  std::set<std::vector<topo::DirectedLink>> seen;
  for (const CycleInfo& c : r.cycles) {
    ASSERT_GE(c.links.size(), 2u);
    EXPECT_EQ(c.links.size(), c.link_names.size());
    // Simple: no directed link appears twice.
    std::set<topo::DirectedLink> uniq(c.links.begin(), c.links.end());
    EXPECT_EQ(uniq.size(), c.links.size());
    // No cycle reported twice (canonical form makes this well-defined).
    EXPECT_TRUE(seen.insert(c.links).second);
    // Canonical: rotated so the smallest link leads.
    EXPECT_EQ(c.links.front(),
              *std::min_element(c.links.begin(), c.links.end()));
    for (std::size_t i = 0; i < c.links.size(); ++i) {
      const topo::DirectedLink& cur = c.links[i];
      const topo::DirectedLink& nxt = c.links[(i + 1) % c.links.size()];
      // Chained and closed: each hop ends where the next begins.
      EXPECT_EQ(cur.second, nxt.first);
      // Every dependency edge exists in the graph.
      const int u = vertex_of(cur);
      const int v = vertex_of(nxt);
      ASSERT_GE(u, 0);
      ASSERT_GE(v, 0);
      const auto& out = g.adjacency()[static_cast<std::size_t>(u)];
      EXPECT_NE(std::find(out.begin(), out.end(), v), out.end())
          << c.link_names[i] << " -> " << c.link_names[(i + 1) % c.links.size()];
    }
  }
}

TEST(AnalyzeCycles, WellFormedAcrossScenarios) {
  check_cycles_well_formed("ring:3:2");
  check_cycles_well_formed("ring:6:3");
  check_cycles_well_formed("loop2");
  check_cycles_well_formed("fattree:4:seed=22");
  check_cycles_well_formed("fattree:4:seed=26");
}

TEST(AnalyzeCycles, TruncationIsReportedNotSilent) {
  // seed=12 has thousands of elementary cycles; a tiny cap must be
  // reported as truncation, and a truncated report is never "cbd_free".
  const Report r = analyze_spec(
      "fattree:4:seed=12", cli_config(runner::FcKind::kPfc, 300'000), 16);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.cycles.size(), 16u);
  EXPECT_FALSE(r.cbd_free());
  // The verdict from a prefix of the cycle set proves nothing about the
  // cycles it never saw: truncation always degrades to at_risk, even for
  // mechanisms whose bounds would otherwise argue "safe".
  EXPECT_EQ(r.verdict(), Verdict::kAtRisk);
  const Report g = analyze_spec(
      "fattree:4:seed=12", cli_config(runner::FcKind::kGfcBuffer, 300'000),
      16);
  EXPECT_TRUE(g.truncated);
  EXPECT_TRUE(g.bounds_ok());
  EXPECT_EQ(g.verdict(), Verdict::kAtRisk);
}

TEST(AnalyzeCycles, WitnessIsCanonicalAndDeterministic) {
  topo::Topology t;
  topo::build_ring(t, 5);
  const auto routing = topo::compute_shortest_paths(t);
  topo::BufferDependencyGraph g(t);
  g.add_routing_closure(routing);
  const topo::CbdResult a = g.find_cycle();
  const topo::CbdResult b = g.find_cycle();
  ASSERT_TRUE(a.has_cbd);
  EXPECT_EQ(a.cycle, b.cycle);
  EXPECT_EQ(a.cycle.front(),
            *std::min_element(a.cycle.begin(), a.cycle.end()));
}

TEST(AnalyzeCycles, JsonByteDeterministic) {
  const auto cfg = cli_config(runner::FcKind::kGfcBuffer, 300'000);
  EXPECT_EQ(analyze_spec("fattree:4:seed=22", cfg).json(),
            analyze_spec("fattree:4:seed=22", cfg).json());
}

// --- Verdict semantics. ---

TEST(AnalyzeVerdict, RingUnderPfcIsAtRisk) {
  const Report r =
      analyze_spec("ring:3:2", cli_config(runner::FcKind::kPfc, 300'000));
  EXPECT_FALSE(r.cbd_free());
  EXPECT_EQ(r.verdict(), Verdict::kAtRisk);
}

TEST(AnalyzeVerdict, RingWithoutFlowControlIsSafe) {
  // No flow control: packets drop instead of waiting, so a CBD alone
  // cannot deadlock (no hold-and-wait half of the circular wait).
  const Report r =
      analyze_spec("ring:3:2", cli_config(runner::FcKind::kNone, 300'000));
  EXPECT_FALSE(r.cbd_free());
  EXPECT_EQ(r.verdict(), Verdict::kSafe);
}

TEST(AnalyzeVerdict, RingUnderDerivedGfcBufferIsSafe) {
  const Report r = analyze_spec(
      "ring:3:2", cli_config(runner::FcKind::kGfcBuffer, 300'000));
  EXPECT_FALSE(r.cbd_free());
  EXPECT_TRUE(r.bounds_ok());
  EXPECT_EQ(r.verdict(), Verdict::kSafe);
}

TEST(AnalyzeVerdict, ViolatedGfcBoundIsAtRisk) {
  // B_1 = B_m leaves no 2*C*tau reserve: the Sec 4.2 bound fails and the
  // mechanism can hold-and-wait after all.
  auto cfg = cli_config(runner::FcKind::kGfcBuffer, 300'000);
  cfg.fc.b1 = cfg.fc.bm;
  const Report r = analyze_spec("ring:3:2", cfg);
  EXPECT_FALSE(r.bounds_ok());
  EXPECT_EQ(r.verdict(), Verdict::kAtRisk);
}

TEST(AnalyzeVerdict, IncastIsDeadlockFree) {
  const Report r =
      analyze_spec("incast:4", cli_config(runner::FcKind::kPfc, 300'000));
  EXPECT_TRUE(r.cbd_free());
  EXPECT_EQ(r.verdict(), Verdict::kDeadlockFree);
  EXPECT_EQ(r.cycles.size(), 0u);
}

// --- The --analyze pre-flight hook on the simulation path. ---

TEST(AnalyzePreflight, FailModeThrowsBeforeAnyEvent) {
  runner::ScenarioConfig cfg = cli_config(runner::FcKind::kPfc, 300'000);
  cfg.preflight = PreflightMode::kFail;
  EXPECT_THROW(runner::make_ring(cfg), PreflightError);
}

TEST(AnalyzePreflight, WarnModeOnlyReports) {
  runner::ScenarioConfig cfg = cli_config(runner::FcKind::kPfc, 300'000);
  cfg.preflight = PreflightMode::kWarn;
  EXPECT_NO_THROW(runner::make_ring(cfg));
  // A safe configuration passes even under kFail.
  runner::ScenarioConfig safe =
      cli_config(runner::FcKind::kGfcBuffer, 300'000);
  safe.preflight = PreflightMode::kFail;
  EXPECT_NO_THROW(runner::make_ring(safe));
}

// --- Cross-validation: static verdicts against the real simulator. ---

/// Rebuild the Table 1 sample for (k=4, seed): the same salted failure
/// stream the analyzer's fattree:4:seed=S spec uses.
std::vector<topo::LinkIndex> table1_failures(std::uint64_t seed) {
  topo::Topology t;
  topo::build_fattree(t, 4);
  sim::Rng rng(seed * 7919 + 4);
  return topo::random_failures(t, rng, 0.05);
}

TEST(AnalyzeXval, CbdFreeFabricNeverDeadlocksUnderPfc) {
  // Statically CBD-free (seed 1, verified by the analyzer below) implies
  // even PFC cannot deadlock at runtime: circular wait is impossible.
  const Report r = analyze_spec(
      "fattree:4:seed=1", cli_config(runner::FcKind::kPfc, 300'000));
  ASSERT_TRUE(r.cbd_free());

  runner::ScenarioConfig cfg = cli_config(runner::FcKind::kPfc, 300'000);
  cfg.seed = 1;
  auto sc = runner::make_fattree(cfg, 4, table1_failures(1));
  runner::RunOptions opts;
  opts.duration = sim::ms(6);
  opts.workload_seed = 1001;
  const runner::RunSummary s = run_closed_loop(sc, opts);
  EXPECT_FALSE(s.deadlocked);
}

TEST(AnalyzeXval, ActivatedCycleDeadlocksUnderPfcNotUnderGfc) {
  // seed 22's witness cycle is covered by the stress flows (the analyzer
  // marks it ACTIVATED): under PFC those flows must actually deadlock,
  // and under the derived buffer-GFC bound they must not.
  const Report r = analyze_spec(
      "fattree:4:seed=22", cli_config(runner::FcKind::kPfc, 300'000));
  ASSERT_FALSE(r.cycles.empty());
  EXPECT_TRUE(r.cycles.front().activated);
  EXPECT_EQ(r.verdict(), Verdict::kAtRisk);

  // The same stress probe Table 1 runs, at both mechanisms.
  topo::Topology t;
  topo::build_fattree(t, 4);
  sim::Rng rng(22 * 7919 + 4);
  auto failed = topo::random_failures(t, rng, 0.05);
  const auto routing = topo::compute_shortest_paths(t);
  topo::BufferDependencyGraph g(t);
  g.add_routing_closure(routing);
  const auto cbd = g.find_cycle();
  ASSERT_TRUE(cbd.has_cbd);
  auto stress = topo::build_cbd_stress(t, routing, cbd.cycle, rng);
  ASSERT_TRUE(stress.covered);

  for (const runner::FcKind kind :
       {runner::FcKind::kPfc, runner::FcKind::kGfcBuffer}) {
    runner::ScenarioConfig cfg = cli_config(kind, 300'000);
    cfg.seed = 1;
    auto sc = runner::make_fattree(cfg, 4, failed);
    net::Network& net = sc.fabric->net();
    for (const auto& f : stress.flows) {
      net::Flow& flow =
          net.create_flow(f.src, f.dst, 0, net::Flow::kUnbounded, 0);
      flow.path_salt = f.salt;
    }
    stats::DeadlockOptions dl_opts;
    dl_opts.stop_on_detect = true;
    stats::DeadlockDetector det(net, dl_opts);
    net.run_until(sim::ms(8));
    if (kind == runner::FcKind::kPfc)
      EXPECT_TRUE(det.deadlocked()) << "activated CBD must bite under PFC";
    else
      EXPECT_FALSE(det.deadlocked()) << "GFC bound must prevent the stall";
  }
}

}  // namespace
}  // namespace gfc::analyze
