// Unit tests for DCQCN and its interaction with GFC (the Sec 7 study).
#include <gtest/gtest.h>

#include "cc/dcqcn.hpp"
#include "runner/scenarios.hpp"
#include "stats/throughput.hpp"

namespace gfc::cc {
namespace {

using sim::gbps;
using sim::ms;
using sim::us;

runner::IncastScenario make_dcqcn_incast(int n, runner::FcKind fc,
                                         DcqcnModule** cc_out,
                                         const DcqcnConfig& dc = {}) {
  runner::ScenarioConfig cfg;
  cfg.switch_buffer = 300'000;
  cfg.fc = runner::FcSetup::derive(fc, cfg.switch_buffer, cfg.link.rate,
                                   cfg.tau());
  cfg.ecn.enabled = true;
  cfg.ecn.kmin = 40'000;  // paper Sec 7: ECN threshold 40 KB
  cfg.ecn.kmax = 40'000;
  auto s = runner::make_incast(cfg, n);
  auto cc = std::make_unique<DcqcnModule>(s.fabric->net(), dc);
  *cc_out = cc.get();
  s.fabric->net().set_cc(std::move(cc));
  // make_incast created the flows before cc attachment; restart rate state.
  for (net::FlowId f : s.flows)
    (*cc_out)->on_flow_start(s.fabric->net().flow(f));
  return s;
}

TEST(Dcqcn, CnpsAreGeneratedUnderCongestion) {
  DcqcnModule* cc = nullptr;
  auto s = make_dcqcn_incast(8, runner::FcKind::kNone, &cc);
  s.fabric->net().run_until(ms(5));
  EXPECT_GT(cc->cnps_sent(), 10u);
}

TEST(Dcqcn, RateDropsOnCnpAndRecovers) {
  DcqcnConfig dc;
  dc.alpha_init = 0.5;
  DcqcnModule* cc = nullptr;
  auto s = make_dcqcn_incast(8, runner::FcKind::kNone, &cc, dc);
  net::Network& net = s.fabric->net();
  net.run_until(ms(3));
  // 8-to-1 incast: rates must drop well below line rate.
  double max_rate = 0;
  for (net::FlowId f : s.flows)
    max_rate = std::max(max_rate, cc->current_rate(f).gbps());
  EXPECT_LT(max_rate, 9.0);
  EXPECT_GT(max_rate, 0.01);
  // Long run: aggregate throughput approaches the bottleneck rate.
  stats::ThroughputSampler tp(net, us(100));
  net.run_until(ms(30));
  EXPECT_NEAR(tp.average_gbps(0, ms(20), ms(30)), 10.0, 1.5);
}

TEST(Dcqcn, KeepsQueueNearEcnThreshold) {
  DcqcnConfig dc;
  dc.alpha_init = 0.5;
  DcqcnModule* cc = nullptr;
  auto s = make_dcqcn_incast(8, runner::FcKind::kNone, &cc, dc);
  net::Network& net = s.fabric->net();
  net.run_until(ms(30));
  // DCQCN regulates the bottleneck ingress queues to around K; with 8
  // senders the queue hovers above K but far from the 300 KB buffer.
  std::int64_t total_q = 0;
  for (auto h : s.info.senders)
    total_q += s.fabric->ingress_queue_bytes(s.info.sw, h);
  EXPECT_LT(total_q, 8 * 150'000);
  EXPECT_GT(total_q, 0);
}

TEST(Dcqcn, GfcActsAsSafeguardNotSteadyState) {
  // Sec 7 / Fig 20: GFC caps the port rate during the incast transient;
  // once DCQCN converges below GFC's mapped rate, GFC is effectively
  // disabled and the steady state belongs to DCQCN.
  DcqcnConfig dc;
  dc.alpha_init = 0.5;
  DcqcnModule* cc = nullptr;
  auto s = make_dcqcn_incast(8, runner::FcKind::kGfcBuffer, &cc, dc);
  net::Network& net = s.fabric->net();
  bool gfc_engaged = false;
  stats::PeriodicProbe probe(net.sched(), us(20), [&](sim::TimePs) {
    const sim::Rate r =
        s.fabric->egress_rate(s.info.senders[0], s.info.sw);
    if (r < gbps(10)) gfc_engaged = true;
  });
  net.run_until(ms(30));
  EXPECT_TRUE(gfc_engaged);  // the safeguard fired during the transient
  // Steady state: DCQCN rate is the binding constraint (well below 10G),
  // and the GFC-programmed rate is above it (GFC disengaged).
  const double dcqcn_rate = cc->current_rate(s.flows[0]).gbps();
  EXPECT_LT(dcqcn_rate, 5.0);
  const double gfc_rate =
      s.fabric->egress_rate(s.info.senders[0], s.info.sw).gbps();
  EXPECT_GE(gfc_rate, dcqcn_rate - 0.1);
  EXPECT_EQ(net.counters().lossless_violations, 0u);
}

TEST(Dcqcn, NoCnpsWithoutEcn) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::none();
  auto s = runner::make_incast(cfg, 4);  // ECN disabled
  DcqcnModule* cc_raw = nullptr;
  auto cc = std::make_unique<DcqcnModule>(s.fabric->net(), DcqcnConfig{});
  cc_raw = cc.get();
  s.fabric->net().set_cc(std::move(cc));
  for (net::FlowId f : s.flows)
    cc_raw->on_flow_start(s.fabric->net().flow(f));
  s.fabric->net().run_until(ms(3));
  EXPECT_EQ(cc_raw->cnps_sent(), 0u);
  EXPECT_EQ(cc_raw->current_rate(s.flows[0]), gbps(10));
}

TEST(Dcqcn, CnpIntervalRateLimitsCnps) {
  DcqcnConfig dc;
  dc.cnp_interval = us(500);  // very sparse CNPs
  DcqcnModule* cc = nullptr;
  auto s = make_dcqcn_incast(8, runner::FcKind::kNone, &cc, dc);
  s.fabric->net().run_until(ms(5));
  // Up to 8 flows x (5 ms / 500 us) = 80 CNPs max.
  EXPECT_LE(cc->cnps_sent(), 88u);
}

}  // namespace
}  // namespace gfc::cc
