// Unit tests for the GFC core: mapping functions (Eqs. 4-5), parameter
// bounds (Theorems 4.1/5.1, Eq. 6), and the Rate Limiter register model.
#include <gtest/gtest.h>

#include "core/gfc_buffer.hpp"
#include "core/mapping.hpp"
#include "core/params.hpp"
#include "core/rate_limiter.hpp"

namespace gfc::core {
namespace {

using sim::gbps;
using sim::kbps;
using sim::mbps;
using sim::us;

TEST(LinearMapping, FlatBelowB0) {
  LinearMapping m(gbps(10), 50'000, 100'000);
  EXPECT_EQ(m.rate_for(0), gbps(10));
  EXPECT_EQ(m.rate_for(50'000), gbps(10));
}

TEST(LinearMapping, LinearBetweenB0AndBm) {
  LinearMapping m(gbps(10), 50'000, 100'000);
  EXPECT_EQ(m.rate_for(75'000), gbps(5));
  EXPECT_NEAR(m.rate_for(90'000).gbps(), 2.0, 1e-9);
}

TEST(LinearMapping, FloorAtBm) {
  LinearMapping m(gbps(10), 50'000, 100'000);
  // The rate never reaches zero — hold-and-wait is impossible by design.
  EXPECT_EQ(m.rate_for(100'000), kDefaultMinRate);
  EXPECT_EQ(m.rate_for(10'000'000), kDefaultMinRate);
  EXPECT_GT(m.rate_for(99'999).bps, 0);
}

TEST(MultiStageMapping, StageRatesHalve) {
  // Eq. (4): R_k = C / 2^k.
  MultiStageMapping m(gbps(10), 281'000, 300'000);
  EXPECT_EQ(m.rate_of(0), gbps(10));
  EXPECT_EQ(m.rate_of(1), gbps(5));
  EXPECT_EQ(m.rate_of(2), gbps(2.5));
  EXPECT_EQ(m.rate_of(3).bps, gbps(10).bps >> 3);
}

TEST(MultiStageMapping, BoundariesFollowEq5) {
  // Eq. (5): B_m - B_k = (B_m - B_1) / 2^(k-1).
  MultiStageMapping m(gbps(10), 281'000, 300'000);
  EXPECT_EQ(m.boundary(1), 281'000);
  EXPECT_EQ(m.boundary(2), 300'000 - 19'000 / 2);
  EXPECT_EQ(m.boundary(3), 300'000 - 19'000 / 4);
}

TEST(MultiStageMapping, PaperStageCountAt10G) {
  // Sec 5.4: at 10 Gb/s roughly N = 16 stages before stage width < 1 byte.
  MultiStageMapping m(gbps(10), 281'000, 300'000);
  EXPECT_GE(m.num_stages(), 14);
  EXPECT_LE(m.num_stages(), 18);
}

TEST(MultiStageMapping, StageOfIsMonotone) {
  MultiStageMapping m(gbps(10), 281'000, 300'000);
  EXPECT_EQ(m.stage_of(0), 0);
  EXPECT_EQ(m.stage_of(280'999), 0);
  EXPECT_EQ(m.stage_of(281'000), 1);
  int prev = 0;
  for (std::int64_t q = 0; q <= 310'000; q += 100) {
    const int s = m.stage_of(q);
    EXPECT_GE(s, prev);
    prev = s;
  }
  EXPECT_EQ(m.stage_of(400'000), m.num_stages());
}

TEST(MultiStageMapping, StageRateNeverZero) {
  MultiStageMapping m(gbps(100), 100'000, 400'000);
  for (int s = 0; s <= m.num_stages(); ++s) EXPECT_GT(m.rate_of(s).bps, 0);
  EXPECT_GE(m.rate_of(m.num_stages()), kDefaultMinRate);
}

TEST(Params, TauMatchesPaperTable) {
  // Sec 5.4: CEE (MTU 1.5 KB, t_w = 1 us, t_r = 3 us):
  // worst-case tau = 7.4 / 5.6 / 5.2 us at 10 / 40 / 100 Gb/s.
  EXPECT_NEAR(sim::to_us(worst_case_tau({gbps(10), 1500, us(1), us(3)})), 7.4, 0.05);
  EXPECT_NEAR(sim::to_us(worst_case_tau({gbps(40), 1500, us(1), us(3)})), 5.6, 0.05);
  EXPECT_NEAR(sim::to_us(worst_case_tau({gbps(100), 1500, us(1), us(3)})), 5.2, 0.05);
}

TEST(Params, TauInfiniBandMtu) {
  // InfiniBand MTU 4 KB: 11.4 / 6.6 / 5.6 us at 10 / 40 / 100 Gb/s.
  EXPECT_EQ(worst_case_tau({gbps(10), 4096, us(1), us(3)}), us(3 + 2) + 2 * sim::tx_time(gbps(10), 4096));
  EXPECT_NEAR(sim::to_us(worst_case_tau({gbps(10), 4096, us(1), us(3)})), 11.55, 0.3);
  EXPECT_NEAR(sim::to_us(worst_case_tau({gbps(40), 4096, us(1), us(3)})), 6.6, 0.2);
  EXPECT_NEAR(sim::to_us(worst_case_tau({gbps(100), 4096, us(1), us(3)})), 5.66, 0.2);
}

TEST(Params, Theorem41Bound) {
  // B_0 <= B_m - 4*C*tau.
  const auto b0 = b0_bound_conceptual(100'000, gbps(10), us(4));
  EXPECT_EQ(b0, 100'000 - 4 * 5'000);
}

TEST(Params, BufferB1Bound) {
  // B_1 <= B_m - 2*C*tau; paper: 2*C*tau <= 18.5/56/130 KB at 10/40/100G.
  const sim::TimePs tau10 = worst_case_tau({gbps(10), 1500, us(1), us(3)});
  EXPECT_NEAR(static_cast<double>(300'000 - b1_bound_buffer(300'000, gbps(10), tau10)),
              18'500, 100);
  const sim::TimePs tau40 = worst_case_tau({gbps(40), 1500, us(1), us(3)});
  EXPECT_NEAR(static_cast<double>(300'000 - b1_bound_buffer(300'000, gbps(40), tau40)),
              56'000, 200);
  const sim::TimePs tau100 = worst_case_tau({gbps(100), 1500, us(1), us(3)});
  // (the paper rounds tau to 5.2 us; the exact value gives 131 KB)
  EXPECT_NEAR(static_cast<double>(300'000 - b1_bound_buffer(300'000, gbps(100), tau100)),
              130'000, 1'500);
}

TEST(Params, Theorem51Bound) {
  // Paper: (sqrt(tau/T)+1)^2 * C * T <= 140.8 KB at 10 Gb/s. Time-based
  // GFC is the InfiniBand deployment, so tau uses the 4 KB IB MTU
  // (tau = 11.4 us); T is the 65535 B transmission time.
  const sim::TimePs period = cbfc_recommended_period(gbps(10));
  EXPECT_NEAR(sim::to_us(period), 52.4, 0.1);
  const sim::TimePs tau = worst_case_tau({gbps(10), 4096, us(1), us(3)});
  const auto reserve =
      1'000'000 - b0_bound_timebased(1'000'000, gbps(10), tau, period);
  EXPECT_NEAR(static_cast<double>(reserve), 140'800, 2'000);
}

TEST(Params, FeedbackBandwidthAnalysis) {
  // Sec 4.2: m = 64 B, tau = 7.4 us -> 69 Mb/s worst case, ~8.6 Mb/s steady.
  EXPECT_NEAR(worst_case_feedback_bw(64, us(7.4)).bps / 1e6, 69.2, 0.5);
  EXPECT_NEAR(steady_feedback_bw(64, us(7.4)).bps / 1e6, 8.65, 0.1);
}

TEST(Params, BytesOverRoundsUp) {
  EXPECT_EQ(bytes_over(gbps(10), us(1)), 1250);
  EXPECT_EQ(bytes_over(sim::bps(8), 1), 1);  // rounds up to a full byte
}

TEST(RateLimiter, FirstPacketAlwaysAllowed) {
  RateLimiter lim(gbps(5));
  EXPECT_TRUE(lim.allowed(0));
}

TEST(RateLimiter, SpacingMatchesRate) {
  // Paper Sec 5.3: after a packet of L, the next may start L/R later.
  RateLimiter lim(gbps(5));
  lim.on_transmit(0, 1500);
  // 1500 B at 5 Gb/s = 2.4 us between starts.
  EXPECT_FALSE(lim.allowed(us(2.4) - 1));
  EXPECT_TRUE(lim.allowed(us(2.4)));
  EXPECT_EQ(lim.next_allowed(), us(2.4));
}

TEST(RateLimiter, RateIncreaseTakesEffectImmediately) {
  RateLimiter lim(kbps(100));
  lim.on_transmit(0, 1500);
  EXPECT_FALSE(lim.allowed(us(100)));  // 100 Kb/s -> 120 ms gap
  lim.set_rate(gbps(10));
  EXPECT_TRUE(lim.allowed(us(2)));  // re-evaluated against the new rate
}

TEST(RateLimiter, ZeroRateBlocksForever) {
  RateLimiter lim(sim::Rate{0});
  lim.on_transmit(0, 1500);
  EXPECT_EQ(lim.next_allowed(), sim::kTimeNever);
}

TEST(RateLimiter, AchievedRateLongRun) {
  // Property: over many packets the achieved average rate equals R.
  for (const auto rate : {mbps(100), gbps(1), gbps(2.5), gbps(7.3)}) {
    RateLimiter lim(rate);
    sim::TimePs now = 0;
    std::int64_t bytes = 0;
    for (int i = 0; i < 1000; ++i) {
      now = std::max(now, lim.next_allowed());
      lim.on_transmit(now, 1500);
      bytes += 1500;
    }
    const double achieved = static_cast<double>(bytes - 1500) * 8 /
                            sim::to_seconds(now);
    EXPECT_NEAR(achieved / static_cast<double>(rate.bps), 1.0, 0.01)
        << sim::format_rate(rate);
  }
}

}  // namespace
}  // namespace gfc::core
