// Determinism regression tests: identical seeds must give bit-identical
// runs. These pin the engine-level guarantees (same-timestamp FIFO firing,
// stable event ids) that make every paper figure reproducible, and must
// keep passing unchanged across event-engine rewrites.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "runner/scenarios.hpp"
#include "stats/deadlock.hpp"

namespace gfc::runner {
namespace {

using sim::ms;

// Compare doubles as bit patterns: determinism means byte-identical, not
// merely approximately equal.
std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

struct FatTreeResult {
  RunSummary summary;
  std::uint64_t executed_events;
  std::uint64_t packets_created;
};

FatTreeResult run_fattree_once() {
  ScenarioConfig cfg;
  cfg.switch_buffer = 300'000;
  cfg.fc = FcSetup::derive(FcKind::kGfcBuffer, cfg.switch_buffer,
                           cfg.link.rate, cfg.tau());
  FatTreeScenario s = make_random_fattree(cfg, 4, 0.05, /*topo_seed=*/17);
  RunOptions opts;
  opts.duration = ms(6);
  opts.workload_seed = 42;
  FatTreeResult r;
  r.summary = run_closed_loop(s, opts);
  r.executed_events = s.fabric->net().sched().executed_events();
  r.packets_created = s.fabric->net().pool().total_created();
  return r;
}

TEST(Determinism, FatTreeClosedLoopRunsAreByteIdentical) {
  const FatTreeResult a = run_fattree_once();
  const FatTreeResult b = run_fattree_once();
  // Every RunSummary field, including float metrics at the bit level.
  EXPECT_EQ(a.summary.deadlocked, b.summary.deadlocked);
  EXPECT_EQ(a.summary.deadlock_at, b.summary.deadlock_at);
  EXPECT_EQ(bits(a.summary.per_host_gbps), bits(b.summary.per_host_gbps));
  EXPECT_EQ(bits(a.summary.mean_slowdown), bits(b.summary.mean_slowdown));
  EXPECT_EQ(a.summary.flows_completed, b.summary.flows_completed);
  EXPECT_EQ(a.summary.flows_started, b.summary.flows_started);
  EXPECT_EQ(a.summary.lossless_violations, b.summary.lossless_violations);
  // The engine executed the exact same event sequence, not just one that
  // produced similar aggregates.
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.packets_created, b.packets_created);
}

struct RingVerdict {
  bool deadlocked;
  sim::TimePs detected_at;
  std::uint64_t executed_events;
  std::uint64_t data_packets;
};

RingVerdict run_ring_once(FcKind kind) {
  ScenarioConfig cfg;
  cfg.switch_buffer = 300'000;
  cfg.fc = FcSetup::derive(kind, cfg.switch_buffer, cfg.link.rate, cfg.tau());
  RingScenario s = make_ring(cfg, /*n_switches=*/3, /*hops=*/2);
  stats::DeadlockDetector det(s.fabric->net());
  s.fabric->net().run_until(ms(25));
  return RingVerdict{det.deadlocked(), det.detected_at(),
                     s.fabric->net().sched().executed_events(),
                     s.fabric->net().counters().data_packets_delivered};
}

TEST(Determinism, RingDeadlockVerdictsStableAcrossRepeats) {
  // Figure 9 setting: PFC rings deadlock, GFC rings never do. Repeated
  // runs must agree on the verdict, the detection time, and the exact
  // event count.
  for (FcKind kind : {FcKind::kPfc, FcKind::kGfcBuffer}) {
    const RingVerdict first = run_ring_once(kind);
    EXPECT_EQ(first.deadlocked, kind == FcKind::kPfc) << fc_name(kind);
    for (int rep = 0; rep < 2; ++rep) {
      const RingVerdict again = run_ring_once(kind);
      EXPECT_EQ(again.deadlocked, first.deadlocked) << fc_name(kind);
      EXPECT_EQ(again.detected_at, first.detected_at) << fc_name(kind);
      EXPECT_EQ(again.executed_events, first.executed_events) << fc_name(kind);
      EXPECT_EQ(again.data_packets, first.data_packets) << fc_name(kind);
    }
  }
}

}  // namespace
}  // namespace gfc::runner
