// Shared driver for the scheduler differential layer: a seeded adversarial
// op-script generator plus a harness that applies the script to either
// engine (production timing-wheel sim::Scheduler or the frozen PR-1 heap
// in tests/reference_scheduler.hpp) and records every observable:
// callback firings (tag, time), cancel/reschedule/step results, now(),
// pending_events().
//
// Used by tests/scheduler_differential_test.cpp (gtest, fixed seeds) and
// tests/scheduler_fuzz.cpp (standalone binary, seed sweep / timed runs).
#pragma once

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "reference_scheduler.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace gfc::sim::difftest {

// One log record per callback firing.
struct Fire {
  std::uint64_t tag;
  TimePs t;
  bool operator==(const Fire&) const = default;
};

// The op script is pure data, generated once per seed and applied to both
// engines. Callback side effects (chained schedules, timer re-arms) are
// pure functions of the callback's tag, so identical execution order
// implies identical behavior — and divergent order shows up in the logs.
struct Op {
  enum Kind : std::uint8_t {
    kSchedule,    // one event at now + delta
    kBurst,       // `count` events at the same instant (FIFO tie-order)
    kCancel,      // cancel live[sel] (often already fired -> must be false)
    kReschedule,  // reschedule live[sel] to now + delta
    kRegisterTimer,
    kArmTimer,    // arm timers[sel] at now + delta (re-targets if armed)
    kDisarmTimer,
    kStep,
    kRunUntil,  // drain to now + delta
    kClear,     // reset the engine; invalidates live ids and timers
  };
  Kind kind;
  std::uint32_t count;  // kBurst width
  std::uint32_t sel;    // index selector for cancel/resched/timer ops
  TimePs delta;         // time offset for schedule/arm/run_until
};

// Timestamp deltas that probe every structural boundary of the wheel:
// tick 0 (near list), exact bucket boundaries and off-by-ones, each
// level-promotion frontier (2^(17+6k)), the last in-wheel frame, the
// first overflow tick and deep overflow, plus generic near-term noise.
inline TimePs adversarial_delta(std::mt19937_64& rng) {
  constexpr TimePs kTick = TimePs{1} << 17;      // one wheel tick
  constexpr TimePs kHorizon = kTick << (6 * 4);  // 64^4 ticks
  switch (rng() % 16) {
    case 0: return 0;                            // same instant
    case 1: return 1;                            // same tick
    case 2: return kTick - 1;                    // last ps of tick 0
    case 3: return kTick;                        // exact tick boundary
    case 4: return kTick + 1;
    case 5: return kTick * (1 + static_cast<TimePs>(rng() % 63));  // level 0
    case 6: return kTick << 6;                   // level-1 frontier
    case 7: return (kTick << 6) * static_cast<TimePs>(1 + rng() % 63);
    case 8: return kTick << 12;                  // level-2 frontier
    case 9: return kTick << 18;                  // level-3 frontier
    case 10: return (kTick << 18) * static_cast<TimePs>(1 + rng() % 63);
    case 11: return kHorizon - kTick;            // last in-wheel frame
    case 12: return kHorizon;                    // first overflow tick
    case 13: return kHorizon + static_cast<TimePs>(rng() % (1u << 20));
    case 14: return kHorizon * static_cast<TimePs>(1 + rng() % 7);  // deep
    default: return static_cast<TimePs>(rng() % 200000);  // generic near
  }
}

inline std::vector<Op> make_script(std::uint64_t seed, std::size_t n_ops) {
  std::mt19937_64 rng(seed);
  std::vector<Op> script;
  script.reserve(n_ops);
  for (std::size_t i = 0; i < n_ops; ++i) {
    Op op{};
    const std::uint32_t roll = static_cast<std::uint32_t>(rng() % 100);
    if (roll < 30) {
      op.kind = Op::kSchedule;
      op.delta = adversarial_delta(rng);
    } else if (roll < 40) {
      op.kind = Op::kBurst;  // dense same-instant churn
      op.count = 2 + static_cast<std::uint32_t>(rng() % 7);
      op.delta = adversarial_delta(rng);
    } else if (roll < 52) {
      op.kind = Op::kCancel;  // stale ids included on purpose
      op.sel = static_cast<std::uint32_t>(rng());
    } else if (roll < 60) {
      op.kind = Op::kReschedule;
      op.sel = static_cast<std::uint32_t>(rng());
      op.delta = adversarial_delta(rng);
    } else if (roll < 63) {
      op.kind = Op::kRegisterTimer;
    } else if (roll < 70) {
      op.kind = Op::kArmTimer;
      op.sel = static_cast<std::uint32_t>(rng());
      op.delta = adversarial_delta(rng);
    } else if (roll < 73) {
      op.kind = Op::kDisarmTimer;
      op.sel = static_cast<std::uint32_t>(rng());
    } else if (roll < 85) {
      op.kind = Op::kStep;
    } else if (roll < 99) {
      op.kind = Op::kRunUntil;
      // Mostly modest drains; occasionally a huge jump that rolls the
      // wheel cursor across whole level-3 frames (epoch advance).
      op.delta = rng() % 8 == 0 ? adversarial_delta(rng) * 64
                                : adversarial_delta(rng);
    } else {
      op.kind = Op::kClear;
    }
    script.push_back(op);
  }
  return script;
}

// Drives one engine through the script. Sched is sim::Scheduler or
// testref::ReferenceScheduler — the API subset used here is identical.
template <typename Sched>
class Harness {
 public:
  void apply(const Op& op) {
    switch (op.kind) {
      case Op::kSchedule:
        schedule_one(s_.now() + op.delta);
        break;
      case Op::kBurst: {
        const TimePs t = s_.now() + op.delta;
        for (std::uint32_t i = 0; i < op.count; ++i) schedule_one(t);
        break;
      }
      case Op::kCancel:
        if (!live_.empty())
          results_.push_back(s_.cancel(live_[op.sel % live_.size()]));
        break;
      case Op::kReschedule:
        if (!live_.empty()) {
          const std::size_t k = op.sel % live_.size();
          const EventId moved = s_.reschedule(live_[k], s_.now() + op.delta);
          results_.push_back(moved.valid());
          if (moved.valid()) live_[k] = moved;
        }
        break;
      case Op::kRegisterTimer: {
        const std::size_t ti = timers_.size();
        timers_.push_back(s_.register_timer([this, ti] {
          log_.push_back(Fire{kTimerTagBase + ti, s_.now()});
          // Self re-arm with a bounded budget: the saturated-port drain
          // pattern (arm from inside the timer's own firing).
          if (timer_budget_[ti] > 0) {
            --timer_budget_[ti];
            s_.arm_timer(timers_[ti],
                         s_.now() + 1 + static_cast<TimePs>(ti % 5) * 97);
          }
        }));
        timer_budget_.push_back(0);
        break;
      }
      case Op::kArmTimer:
        if (!timers_.empty()) {
          const std::size_t k = op.sel % timers_.size();
          timer_budget_[k] = 3;
          s_.arm_timer(timers_[k], s_.now() + op.delta);
        }
        break;
      case Op::kDisarmTimer:
        if (!timers_.empty()) {
          const std::size_t k = op.sel % timers_.size();
          s_.disarm_timer(timers_[k]);
          results_.push_back(s_.timer_armed(timers_[k]));
        }
        break;
      case Op::kStep:
        results_.push_back(s_.step());
        break;
      case Op::kRunUntil:
        s_.run_until(s_.now() + op.delta);
        break;
      case Op::kClear:
        s_.clear();
        live_.clear();
        timers_.clear();
        timer_budget_.clear();
        break;
    }
  }

  const std::vector<Fire>& log() const { return log_; }
  const std::vector<bool>& results() const { return results_; }
  TimePs now() const { return s_.now(); }
  std::size_t pending() const { return s_.pending_events(); }
  void drain() { s_.run_all(); }

 private:
  void schedule_one(TimePs t) {
    const std::uint64_t tag = next_tag_++;
    live_.push_back(s_.schedule_at(t, [this, tag] {
      log_.push_back(Fire{tag, s_.now()});
      // Every 7th callback chains a follow-up (in-callback scheduling is
      // the simulator's normal mode); the delay is a pure function of the
      // tag so both engines chain identically when order matches.
      if (tag % 7 == 0) schedule_one(s_.now() + 1 + (tag % 1000) * 131);
    }));
  }

  static constexpr std::uint64_t kTimerTagBase = 1ull << 48;

  Sched s_;
  std::vector<Fire> log_;
  std::vector<bool> results_;
  std::vector<EventId> live_;  // every id ever issued (stale ones included)
  std::vector<TimerId> timers_;
  std::vector<int> timer_budget_;
  std::uint64_t next_tag_ = 0;
};

// Runs both engines through an `n_ops` script for `seed`. Returns an empty
// string on agreement, else a description of the first divergence.
inline std::string run_differential(std::uint64_t seed, std::size_t n_ops) {
  const std::vector<Op> script = make_script(seed, n_ops);
  Harness<Scheduler> wheel;
  Harness<testref::ReferenceScheduler> ref;
  auto fail = [seed](std::size_t i, const char* what) {
    std::ostringstream os;
    os << "seed " << seed << ": engines diverged on " << what << " after op "
       << i;
    return os.str();
  };
  for (std::size_t i = 0; i < script.size(); ++i) {
    wheel.apply(script[i]);
    ref.apply(script[i]);
    if (wheel.now() != ref.now()) return fail(i, "now()");
    if (wheel.pending() != ref.pending()) return fail(i, "pending_events()");
    if (wheel.log().size() != ref.log().size())
      return fail(i, "executed-event count");
  }
  wheel.drain();
  ref.drain();
  const std::size_t n = script.size();
  if (wheel.log() != ref.log()) return fail(n, "execution log");
  if (wheel.results() != ref.results()) return fail(n, "op results");
  if (wheel.now() != ref.now()) return fail(n, "final now()");
  if (wheel.pending() != ref.pending()) return fail(n, "final pending");
  return {};
}

}  // namespace gfc::sim::difftest
