// Unit tests for the experiment-campaign subsystem: value/JSON rendering,
// grid expansion, worker-pool failure capture, and the determinism
// guarantee (a campaign of real simulations serializes to identical bytes
// for --jobs 1 and --jobs 8).
#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/cli.hpp"
#include "exp/worker_pool.hpp"
#include "runner/scenarios.hpp"
#include "stats/deadlock.hpp"
#include "stats/throughput.hpp"

namespace gfc::exp {
namespace {

TEST(Value, JsonRendering) {
  EXPECT_EQ(Value(true).json(), "true");
  EXPECT_EQ(Value(false).json(), "false");
  EXPECT_EQ(Value(std::int64_t{-42}).json(), "-42");
  EXPECT_EQ(Value(7).json(), "7");
  EXPECT_EQ(Value(0.06).json(), "0.06");  // shortest round-trip, no 0.059999...
  EXPECT_EQ(Value(5.0).json(), "5");
  EXPECT_EQ(Value("plain").json(), "\"plain\"");
  EXPECT_EQ(Value("q\"uote\\n").json(), "\"q\\\"uote\\\\n\"");
  EXPECT_EQ(Value("tab\there").json(), "\"tab\\there\"");
}

TEST(Value, DoubleRoundTrips) {
  const double v = 3.2800000000000002;
  const std::string s = Value(v).json();
  EXPECT_EQ(std::stod(s), v);
}

TEST(ParamSet, OrderedAndOverwritable) {
  ParamSet p;
  p.set("b", 1);
  p.set("a", 2);
  p.set("b", 3);  // overwrite keeps position
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.json(), "{\"b\":3,\"a\":2}");
  ASSERT_NE(p.find("a"), nullptr);
  EXPECT_EQ(p.find("a")->as_int(), 2);
  EXPECT_EQ(p.find("missing"), nullptr);
}

TEST(Grid, CrossProductRowMajor) {
  Grid g;
  g.axis("fc", {"PFC", "GFC"});
  g.axis("seed", {1, 2, 3});
  EXPECT_EQ(g.size(), 6u);
  const auto pts = g.points();
  ASSERT_EQ(pts.size(), 6u);
  // First axis varies slowest.
  EXPECT_EQ(pts[0].find("fc")->as_string(), "PFC");
  EXPECT_EQ(pts[0].find("seed")->as_int(), 1);
  EXPECT_EQ(pts[2].find("fc")->as_string(), "PFC");
  EXPECT_EQ(pts[2].find("seed")->as_int(), 3);
  EXPECT_EQ(pts[3].find("fc")->as_string(), "GFC");
  EXPECT_EQ(pts[3].find("seed")->as_int(), 1);
}

TEST(Grid, EmptyGridIsOnePoint) {
  Grid g;
  EXPECT_EQ(g.size(), 1u);
  const auto pts = g.points();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_TRUE(pts[0].empty());
}

TEST(Grid, EmptyAxisCollapses) {
  Grid g;
  g.axis("seed", {1, 2});
  g.axis("nothing", {});
  EXPECT_EQ(g.size(), 0u);
  EXPECT_TRUE(g.points().empty());
}

TEST(WorkerPool, ResultsInCampaignOrderAnyJobCount) {
  for (int jobs : {1, 4}) {
    Campaign c;
    c.name = "order";
    for (int i = 0; i < 17; ++i) {
      ParamSet p;
      p.set("i", i);
      std::string name("t");  // += form: -Wrestrict misfire (PR105651)
      name += std::to_string(i);
      c.add(name, p,
            [i] { return TrialResult().add("square", std::int64_t{i} * i); });
    }
    const CampaignResult r = run_campaign(c, PoolOptions{jobs, false, nullptr});
    ASSERT_EQ(r.trials.size(), 17u);
    EXPECT_EQ(r.jobs, jobs);
    for (int i = 0; i < 17; ++i) {
      // Built via += : GCC 12's -O3 -Wrestrict misfires on literal +
      // temporary string concatenation (PR105651).
      std::string want("t");
      want += std::to_string(i);
      EXPECT_EQ(r.trials[static_cast<std::size_t>(i)].name, want);
      EXPECT_EQ(r.trials[static_cast<std::size_t>(i)]
                    .metrics.find("square")
                    ->as_int(),
                std::int64_t{i} * i);
    }
  }
}

TEST(WorkerPool, ThrowingTrialIsCapturedNotFatal) {
  Campaign c;
  c.name = "failures";
  c.add("ok1", {}, [] { return TrialResult().add("v", 1); });
  c.add("boom", {}, []() -> TrialResult {
    throw std::runtime_error("synthetic trial failure");
  });
  c.add("ok2", {}, [] { return TrialResult().add("v", 2); });
  const CampaignResult r = run_campaign(c, PoolOptions{4, false, nullptr});
  ASSERT_EQ(r.trials.size(), 3u);
  EXPECT_EQ(r.failures(), 1u);
  EXPECT_FALSE(r.trials[0].failed);
  EXPECT_TRUE(r.trials[1].failed);
  EXPECT_EQ(r.trials[1].error, "synthetic trial failure");
  EXPECT_TRUE(r.trials[1].metrics.empty());
  EXPECT_FALSE(r.trials[2].failed);
  ASSERT_NE(r.find("boom"), nullptr);
  EXPECT_TRUE(r.find("boom")->failed);
  // Failure shows up in JSON as failed/error, not metrics.
  EXPECT_NE(r.json().find("\"failed\": true"), std::string::npos);
  EXPECT_NE(r.json().find("synthetic trial failure"), std::string::npos);
}

TEST(WorkerPool, NonExceptionThrowCaptured) {
  Campaign c;
  c.name = "odd-throw";
  c.add("weird", {}, []() -> TrialResult { throw 42; });
  const CampaignResult r = run_campaign(c, PoolOptions{2, false, nullptr});
  ASSERT_EQ(r.trials.size(), 1u);
  EXPECT_TRUE(r.trials[0].failed);
  EXPECT_EQ(r.trials[0].error, "unknown exception");
}

// The load-bearing guarantee: each trial owns a private Scheduler/Network,
// so a campaign of real deterministic sims must serialize to byte-identical
// JSON regardless of worker count or interleaving.
Campaign small_sim_campaign() {
  using namespace gfc::runner;
  Campaign c;
  c.name = "determinism";
  const FcKind kinds[] = {FcKind::kPfc, FcKind::kGfcBuffer};
  for (const FcKind kind : kinds) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      ParamSet p;
      p.set("fc", fc_name(kind));
      p.set("seed", seed);
      c.add(std::string(fc_name(kind)) + "/" + std::to_string(seed), p,
            [kind, seed] {
              ScenarioConfig cfg;
              cfg.seed = seed;
              cfg.fc = FcSetup::derive(kind, cfg.switch_buffer, cfg.link.rate,
                                       cfg.tau());
              RingScenario s = make_ring(cfg);
              net::Network& net = s.fabric->net();
              stats::ThroughputSampler tp(net, sim::us(100));
              stats::DeadlockDetector det(net);
              net.run_until(sim::ms(2));
              return TrialResult()
                  .add("deadlocked", det.deadlocked())
                  .add("gbps", tp.average_gbps(0, sim::ms(1), sim::ms(2)))
                  .add("violations", net.counters().lossless_violations);
            });
    }
  }
  return c;
}

TEST(WorkerPool, CampaignJsonByteIdenticalAcrossJobCounts) {
  const CampaignResult r1 =
      run_campaign(small_sim_campaign(), PoolOptions{1, false, nullptr});
  const CampaignResult r8 =
      run_campaign(small_sim_campaign(), PoolOptions{8, false, nullptr});
  EXPECT_EQ(r1.json(), r8.json());
  // Default JSON carries no wall-clock or job-count fields at all.
  EXPECT_EQ(r1.json().find("wall_ms"), std::string::npos);
  EXPECT_EQ(r1.json().find("jobs"), std::string::npos);
  // Opting into timing metadata adds them (jobs clamps to the 6 trials).
  EXPECT_NE(r1.json(true).find("wall_ms"), std::string::npos);
  EXPECT_NE(r8.json(true).find("\"jobs\": 6"), std::string::npos);
}

TEST(Cli, ParsesCampaignFlags) {
  const char* argv[] = {"prog", "--quick", "--jobs", "6", "--json",
                        "/tmp/out.json", "--timing", "--no-progress"};
  const CliOptions o = parse_cli(8, const_cast<char**>(argv));
  EXPECT_TRUE(o.quick);
  EXPECT_EQ(o.jobs, 6);
  EXPECT_EQ(o.json_path, "/tmp/out.json");
  EXPECT_TRUE(o.timing);
  EXPECT_FALSE(o.progress);
  const char* argv2[] = {"prog", "--jobs=3", "--json=x.json"};
  const CliOptions o2 = parse_cli(3, const_cast<char**>(argv2));
  EXPECT_EQ(o2.jobs, 3);
  EXPECT_EQ(o2.json_path, "x.json");
  EXPECT_FALSE(o2.quick);
}

}  // namespace
}  // namespace gfc::exp
