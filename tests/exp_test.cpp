// Unit tests for the experiment-campaign subsystem: value/JSON rendering,
// grid expansion, worker-pool failure capture, the determinism guarantee
// (a campaign of real simulations serializes to identical bytes for
// --jobs 1 and --jobs 8), and the crash-safety layer — journal framing and
// corruption handling, checkpoint/resume byte-identity, trial-range
// sharding, and the per-trial watchdog.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "exp/cli.hpp"
#include "exp/journal.hpp"
#include "exp/progress.hpp"
#include "exp/worker_pool.hpp"
#include "runner/scenarios.hpp"
#include "stats/deadlock.hpp"
#include "stats/throughput.hpp"

namespace gfc::exp {
namespace {

PoolOptions pool_opts(int jobs) {
  PoolOptions p;
  p.jobs = jobs;
  return p;
}

TEST(Value, JsonRendering) {
  EXPECT_EQ(Value(true).json(), "true");
  EXPECT_EQ(Value(false).json(), "false");
  EXPECT_EQ(Value(std::int64_t{-42}).json(), "-42");
  EXPECT_EQ(Value(7).json(), "7");
  EXPECT_EQ(Value(0.06).json(), "0.06");  // shortest round-trip, no 0.059999...
  EXPECT_EQ(Value(5.0).json(), "5");
  EXPECT_EQ(Value("plain").json(), "\"plain\"");
  EXPECT_EQ(Value("q\"uote\\n").json(), "\"q\\\"uote\\\\n\"");
  EXPECT_EQ(Value("tab\there").json(), "\"tab\\there\"");
}

TEST(Value, DoubleRoundTrips) {
  const double v = 3.2800000000000002;
  const std::string s = Value(v).json();
  EXPECT_EQ(std::stod(s), v);
}

TEST(ParamSet, OrderedAndOverwritable) {
  ParamSet p;
  p.set("b", 1);
  p.set("a", 2);
  p.set("b", 3);  // overwrite keeps position
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.json(), "{\"b\":3,\"a\":2}");
  ASSERT_NE(p.find("a"), nullptr);
  EXPECT_EQ(p.find("a")->as_int(), 2);
  EXPECT_EQ(p.find("missing"), nullptr);
}

TEST(Grid, CrossProductRowMajor) {
  Grid g;
  g.axis("fc", {"PFC", "GFC"});
  g.axis("seed", {1, 2, 3});
  EXPECT_EQ(g.size(), 6u);
  const auto pts = g.points();
  ASSERT_EQ(pts.size(), 6u);
  // First axis varies slowest.
  EXPECT_EQ(pts[0].find("fc")->as_string(), "PFC");
  EXPECT_EQ(pts[0].find("seed")->as_int(), 1);
  EXPECT_EQ(pts[2].find("fc")->as_string(), "PFC");
  EXPECT_EQ(pts[2].find("seed")->as_int(), 3);
  EXPECT_EQ(pts[3].find("fc")->as_string(), "GFC");
  EXPECT_EQ(pts[3].find("seed")->as_int(), 1);
}

TEST(Grid, EmptyGridIsOnePoint) {
  Grid g;
  EXPECT_EQ(g.size(), 1u);
  const auto pts = g.points();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_TRUE(pts[0].empty());
}

TEST(Grid, EmptyAxisCollapses) {
  Grid g;
  g.axis("seed", {1, 2});
  g.axis("nothing", {});
  EXPECT_EQ(g.size(), 0u);
  EXPECT_TRUE(g.points().empty());
}

TEST(WorkerPool, ResultsInCampaignOrderAnyJobCount) {
  for (int jobs : {1, 4}) {
    Campaign c;
    c.name = "order";
    for (int i = 0; i < 17; ++i) {
      ParamSet p;
      p.set("i", i);
      std::string name("t");  // += form: -Wrestrict misfire (PR105651)
      name += std::to_string(i);
      c.add(name, p,
            [i] { return TrialResult().add("square", std::int64_t{i} * i); });
    }
    const CampaignResult r = run_campaign(c, pool_opts(jobs));
    ASSERT_EQ(r.trials.size(), 17u);
    EXPECT_EQ(r.jobs, jobs);
    for (int i = 0; i < 17; ++i) {
      // Built via += : GCC 12's -O3 -Wrestrict misfires on literal +
      // temporary string concatenation (PR105651).
      std::string want("t");
      want += std::to_string(i);
      EXPECT_EQ(r.trials[static_cast<std::size_t>(i)].name, want);
      EXPECT_EQ(r.trials[static_cast<std::size_t>(i)]
                    .metrics.find("square")
                    ->as_int(),
                std::int64_t{i} * i);
    }
  }
}

TEST(WorkerPool, ThrowingTrialIsCapturedNotFatal) {
  Campaign c;
  c.name = "failures";
  c.add("ok1", {}, [] { return TrialResult().add("v", 1); });
  c.add("boom", {}, []() -> TrialResult {
    throw std::runtime_error("synthetic trial failure");
  });
  c.add("ok2", {}, [] { return TrialResult().add("v", 2); });
  const CampaignResult r = run_campaign(c, pool_opts(4));
  ASSERT_EQ(r.trials.size(), 3u);
  EXPECT_EQ(r.failures(), 1u);
  EXPECT_FALSE(r.trials[0].failed);
  EXPECT_TRUE(r.trials[1].failed);
  EXPECT_EQ(r.trials[1].error, "synthetic trial failure");
  EXPECT_TRUE(r.trials[1].metrics.empty());
  EXPECT_FALSE(r.trials[2].failed);
  ASSERT_NE(r.find("boom"), nullptr);
  EXPECT_TRUE(r.find("boom")->failed);
  // Failure shows up in JSON as failed/error, not metrics.
  EXPECT_NE(r.json().find("\"failed\": true"), std::string::npos);
  EXPECT_NE(r.json().find("synthetic trial failure"), std::string::npos);
}

TEST(WorkerPool, NonExceptionThrowCaptured) {
  Campaign c;
  c.name = "odd-throw";
  c.add("weird", {}, []() -> TrialResult { throw 42; });
  const CampaignResult r = run_campaign(c, pool_opts(2));
  ASSERT_EQ(r.trials.size(), 1u);
  EXPECT_TRUE(r.trials[0].failed);
  EXPECT_EQ(r.trials[0].error, "unknown exception");
}

// The load-bearing guarantee: each trial owns a private Scheduler/Network,
// so a campaign of real deterministic sims must serialize to byte-identical
// JSON regardless of worker count or interleaving.
Campaign small_sim_campaign() {
  using namespace gfc::runner;
  Campaign c;
  c.name = "determinism";
  const FcKind kinds[] = {FcKind::kPfc, FcKind::kGfcBuffer};
  for (const FcKind kind : kinds) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      ParamSet p;
      p.set("fc", fc_name(kind));
      p.set("seed", seed);
      c.add(std::string(fc_name(kind)) + "/" + std::to_string(seed), p,
            [kind, seed] {
              ScenarioConfig cfg;
              cfg.seed = seed;
              cfg.fc = FcSetup::derive(kind, cfg.switch_buffer, cfg.link.rate,
                                       cfg.tau());
              RingScenario s = make_ring(cfg);
              net::Network& net = s.fabric->net();
              stats::ThroughputSampler tp(net, sim::us(100));
              stats::DeadlockDetector det(net);
              net.run_until(sim::ms(2));
              return TrialResult()
                  .add("deadlocked", det.deadlocked())
                  .add("gbps", tp.average_gbps(0, sim::ms(1), sim::ms(2)))
                  .add("violations", net.counters().lossless_violations);
            });
    }
  }
  return c;
}

TEST(WorkerPool, CampaignJsonByteIdenticalAcrossJobCounts) {
  const CampaignResult r1 =
      run_campaign(small_sim_campaign(), pool_opts(1));
  const CampaignResult r8 =
      run_campaign(small_sim_campaign(), pool_opts(8));
  EXPECT_EQ(r1.json(), r8.json());
  // Default JSON carries no wall-clock or job-count fields at all.
  EXPECT_EQ(r1.json().find("wall_ms"), std::string::npos);
  EXPECT_EQ(r1.json().find("jobs"), std::string::npos);
  // Opting into timing metadata adds them (jobs clamps to the 6 trials).
  EXPECT_NE(r1.json(true).find("wall_ms"), std::string::npos);
  EXPECT_NE(r8.json(true).find("\"jobs\": 6"), std::string::npos);
}

TEST(Cli, ParsesCampaignFlags) {
  const char* argv[] = {"prog", "--quick", "--jobs", "6", "--json",
                        "/tmp/out.json", "--timing", "--no-progress"};
  const CliOptions o = parse_cli(8, const_cast<char**>(argv));
  EXPECT_TRUE(o.quick);
  EXPECT_EQ(o.jobs, 6);
  EXPECT_EQ(o.json_path, "/tmp/out.json");
  EXPECT_TRUE(o.timing);
  EXPECT_FALSE(o.progress);
  const char* argv2[] = {"prog", "--jobs=3", "--json=x.json"};
  const CliOptions o2 = parse_cli(3, const_cast<char**>(argv2));
  EXPECT_EQ(o2.jobs, 3);
  EXPECT_EQ(o2.json_path, "x.json");
  EXPECT_FALSE(o2.quick);
}

TEST(Cli, AnalyzeAndCbdFreeRoutingRoundTrip) {
  // The campaign binaries assign these straight into ScenarioConfig /
  // FcSetup; the round trip here is what makes "--analyze=fail
  // --cbd-free-routing" a provable combination (pre-flight must pass on
  // the restricted tables) on all four of them.
  const char* argv[] = {"prog", "--analyze=fail", "--cbd-free-routing"};
  const CliOptions o = parse_cli(3, const_cast<char**>(argv));
  EXPECT_EQ(o.preflight, gfc::analyze::PreflightMode::kFail);
  EXPECT_TRUE(o.cbd_free_routing);
  const char* argv2[] = {"prog", "--analyze"};
  const CliOptions o2 = parse_cli(2, const_cast<char**>(argv2));
  EXPECT_EQ(o2.preflight, gfc::analyze::PreflightMode::kWarn);
  EXPECT_FALSE(o2.cbd_free_routing);  // default stays off
}

// ---------------------------------------------------------------------------
// Crash-safe campaigns: journal, resume, sharding, watchdog.

std::string tmp_path(const char* name) {
  std::string p = testing::TempDir();
  if (!p.empty() && p.back() != '/') p += '/';
  p += name;
  std::remove(p.c_str());
  return p;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, got);
  std::fclose(f);
  return out;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Byte offsets of the frame boundaries in a journal file (0, end of
/// header, end of record 1, ...).
std::vector<std::size_t> frame_boundaries(const std::string& bytes) {
  std::vector<std::size_t> out{0};
  std::size_t pos = 0;
  while (bytes.size() - pos >= 8) {
    std::uint32_t len = 0;
    for (int i = 3; i >= 0; --i)
      len = (len << 8) |
            static_cast<unsigned char>(bytes[pos + static_cast<std::size_t>(i)]);
    pos += 8 + len;
    EXPECT_LE(pos, bytes.size());
    out.push_back(pos);
  }
  return out;
}

/// A deterministic synthetic campaign; `runs` (optional) counts how many
/// trial bodies actually execute, so resume tests can assert completed
/// trials are skipped rather than silently re-run.
Campaign counting_campaign(int n, std::uint64_t seed = 7,
                           std::atomic<int>* runs = nullptr) {
  Campaign c;
  c.name = "journal-test";
  c.seed = seed;
  for (int i = 0; i < n; ++i) {
    ParamSet p;
    p.set("i", i);
    p.set("half", i / 2.0);
    std::string name("t");  // += form: -Wrestrict misfire (PR105651)
    name += std::to_string(i);
    c.add(name, p, [i, runs] {
      if (runs != nullptr) runs->fetch_add(1);
      return TrialResult()
          .add("square", std::int64_t{i} * i)
          .add("ratio", i / 3.0)
          .add("even", i % 2 == 0)
          .add("tag", std::string("v") + std::to_string(i));
    });
  }
  return c;
}

TEST(Journal, AppendLoadRoundTrip) {
  const std::string path = tmp_path("roundtrip.journal");
  const Campaign c = counting_campaign(3);
  const JournalHeader header = journal_header_for(c);

  {
    JournalWriter w = JournalWriter::create(path, header);
    TrialRecord ok;
    ok.name = "t0";
    ok.params = c.trials[0].params;
    ok.metrics.set("gbps", 3.2800000000000002);
    ok.metrics.set("deadlocked", false);
    ok.metrics.set("note", "quote\" tab\t nl\n");
    w.append(0, ok);
    TrialRecord bad;
    bad.name = "t2";
    bad.params = c.trials[2].params;
    bad.failed = true;
    bad.error = "synthetic \"quoted\" failure";
    bad.attempts = 2;
    w.append(2, bad);
  }

  const LoadedJournal loaded = load_journal(path);
  EXPECT_TRUE(loaded.header == header);
  EXPECT_FALSE(loaded.torn_tail);
  EXPECT_EQ(loaded.clean_bytes, read_file(path).size());
  ASSERT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ(loaded.entries[0].trial, 0u);
  EXPECT_EQ(loaded.entries[0].rec.name, "t0");
  EXPECT_EQ(loaded.entries[0].rec.metrics.find("gbps")->as_double(),
            3.2800000000000002);
  EXPECT_FALSE(loaded.entries[0].rec.metrics.find("deadlocked")->as_bool());
  EXPECT_EQ(loaded.entries[0].rec.metrics.find("note")->as_string(),
            "quote\" tab\t nl\n");
  EXPECT_EQ(loaded.entries[1].trial, 2u);
  EXPECT_TRUE(loaded.entries[1].rec.failed);
  EXPECT_EQ(loaded.entries[1].rec.error, "synthetic \"quoted\" failure");
  EXPECT_EQ(loaded.entries[1].rec.attempts, 2);
}

TEST(Journal, TornTailToleratedAtEveryByteOffset) {
  const std::string path = tmp_path("torn.journal");
  Campaign c = counting_campaign(4);
  PoolOptions opts = pool_opts(1);
  opts.journal_path = path;
  run_campaign(c, opts);

  const std::string bytes = read_file(path);
  const std::vector<std::size_t> bounds = frame_boundaries(bytes);
  ASSERT_EQ(bounds.size(), 6u);  // 0, header, 4 records
  const std::string cut_path = tmp_path("torn-cut.journal");
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    write_file(cut_path, bytes.substr(0, cut));
    if (cut < bounds[1]) {
      // Not even the header survived the torn write.
      EXPECT_THROW(load_journal(cut_path), JournalError) << "cut=" << cut;
      continue;
    }
    const LoadedJournal l = load_journal(cut_path);
    // clean_bytes = the last complete frame boundary at or before the cut.
    std::size_t want_clean = 0;
    std::size_t want_records = 0;
    for (std::size_t bi = 1; bi < bounds.size(); ++bi)
      if (bounds[bi] <= cut) {
        want_clean = bounds[bi];
        want_records = bi - 1;
      }
    EXPECT_EQ(l.clean_bytes, want_clean) << "cut=" << cut;
    EXPECT_EQ(l.entries.size(), want_records) << "cut=" << cut;
    EXPECT_EQ(l.torn_tail, cut != want_clean) << "cut=" << cut;
  }
}

TEST(Journal, SizeCompleteCorruptionIsRejected) {
  const std::string path = tmp_path("corrupt.journal");
  Campaign c = counting_campaign(2);
  PoolOptions opts = pool_opts(1);
  opts.journal_path = path;
  run_campaign(c, opts);

  std::string bytes = read_file(path);
  const std::vector<std::size_t> bounds = frame_boundaries(bytes);
  ASSERT_GE(bounds.size(), 3u);
  // Flip one payload byte of the first trial record: the frame is still
  // size-complete, so this is corruption, not a torn tail.
  bytes[bounds[1] + 12] ^= 0x01;
  write_file(path, bytes);
  try {
    load_journal(path);
    FAIL() << "corrupt journal was accepted";
  } catch (const JournalError& e) {
    EXPECT_NE(std::string(e.what()).find("size-complete"), std::string::npos)
        << e.what();
  }
}

TEST(Journal, HeaderFingerprintDistinguishesCampaigns) {
  const Campaign a = counting_campaign(3, 7);
  EXPECT_TRUE(journal_header_for(a) ==
              journal_header_for(counting_campaign(3, 7)));
  // Seed, trial count and per-trial params all feed the fingerprint.
  EXPECT_FALSE(journal_header_for(a) ==
               journal_header_for(counting_campaign(3, 8)));
  EXPECT_FALSE(journal_header_for(a) ==
               journal_header_for(counting_campaign(4, 7)));
  Campaign renamed = counting_campaign(3, 7);
  renamed.trials[1].name = "other";
  EXPECT_FALSE(journal_header_for(a) == journal_header_for(renamed));
  Campaign reparam = counting_campaign(3, 7);
  reparam.trials[1].params.set("i", 99);
  EXPECT_FALSE(journal_header_for(a) == journal_header_for(reparam));
}

TEST(WorkerPool, ResumeAfterTornKillIsByteIdenticalAndSkipsCompleted) {
  const std::string path = tmp_path("resume.journal");
  std::atomic<int> runs{0};
  Campaign c = counting_campaign(6, 7, &runs);
  PoolOptions opts = pool_opts(2);
  opts.journal_path = path;
  const std::string full_json = run_campaign(c, opts).json();
  EXPECT_EQ(runs.load(), 6);

  // Simulate a SIGKILL mid-campaign: keep the header + 2 records, then a
  // torn partial frame (6 bytes of a would-be header).
  const std::string bytes = read_file(path);
  const std::vector<std::size_t> bounds = frame_boundaries(bytes);
  ASSERT_EQ(bounds.size(), 8u);
  write_file(path, bytes.substr(0, bounds[3]) + std::string("\x40\x00\x00\x00\xde\xad", 6));

  runs = 0;
  PoolOptions resume = pool_opts(2);
  resume.journal_path = path;
  resume.resume_paths = {path};
  const CampaignResult r = run_campaign(counting_campaign(6, 7, &runs), resume);
  EXPECT_EQ(runs.load(), 4);  // only the 4 lost trials re-ran
  EXPECT_EQ(r.json(), full_json);
  // The journal healed: torn tail truncated, every trial appended exactly
  // once, so a second resume runs nothing at all.
  runs = 0;
  const CampaignResult r2 =
      run_campaign(counting_campaign(6, 7, &runs), resume);
  EXPECT_EQ(runs.load(), 0);
  EXPECT_EQ(r2.json(), full_json);
  const LoadedJournal healed = load_journal(path);
  EXPECT_FALSE(healed.torn_tail);
  EXPECT_EQ(healed.entries.size(), 6u);
}

TEST(WorkerPool, ResumeFingerprintMismatchThrows) {
  const std::string path = tmp_path("mismatch.journal");
  PoolOptions opts = pool_opts(1);
  opts.journal_path = path;
  run_campaign(counting_campaign(4, 7), opts);

  PoolOptions resume = pool_opts(1);
  resume.resume_paths = {path};
  try {
    run_campaign(counting_campaign(4, 8), resume);  // different seed
    FAIL() << "fingerprint mismatch was accepted";
  } catch (const JournalError& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
              std::string::npos)
        << e.what();
  }
  // A missing resume file is NOT an error: first run of --resume.
  PoolOptions fresh = pool_opts(1);
  fresh.resume_paths = {tmp_path("never-written.journal")};
  EXPECT_EQ(run_campaign(counting_campaign(4, 7), fresh).failures(), 0u);
}

TEST(WorkerPool, ShardsCoverDisjointRangesAndMergeByteIdentical) {
  const std::string full_json = run_campaign(counting_campaign(10), pool_opts(1)).json();

  std::vector<std::string> shard_paths;
  for (int i = 0; i < 4; ++i) {
    std::string name("shard");  // += form: -Wrestrict misfire (PR105651)
    name += std::to_string(i);
    name += ".journal";
    const std::string path = tmp_path(name.c_str());
    PoolOptions opts = pool_opts(2);
    opts.shard_index = i;
    opts.shard_count = 4;
    opts.journal_path = path;
    const CampaignResult r = run_campaign(counting_campaign(10), opts);
    ASSERT_EQ(r.trials.size(), 10u);
    // Out-of-shard slots are marked skipped, in-shard ones completed.
    for (const TrialRecord& t : r.trials)
      EXPECT_NE(t.ok(), t.skipped) << t.name;
    EXPECT_EQ(r.skipped(), 10u - (load_journal(path).entries.size()));
    shard_paths.push_back(path);
  }

  // Every trial ran in exactly one shard.
  std::vector<int> seen(10, 0);
  for (const std::string& p : shard_paths)
    for (const JournalEntry& e : load_journal(p).entries)
      ++seen[e.trial];
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], 1);

  // Merging = resuming all shard journals at once; nothing re-runs and the
  // merged store is byte-identical to the uninterrupted --jobs 1 run. The
  // merge journal absorbs every shard's records, so it alone can rebuild
  // the store afterwards.
  const std::string merged = tmp_path("merged.journal");
  std::atomic<int> runs{0};
  PoolOptions merge = pool_opts(2);
  merge.resume_paths = shard_paths;
  merge.journal_path = merged;
  const CampaignResult r =
      run_campaign(counting_campaign(10, 7, &runs), merge);
  EXPECT_EQ(runs.load(), 0);
  EXPECT_EQ(r.json(), full_json);
  PoolOptions from_merged = pool_opts(1);
  from_merged.resume_paths = {merged};
  EXPECT_EQ(run_campaign(counting_campaign(10), from_merged).json(),
            full_json);
}

TEST(WorkerPool, WatchdogTimesOutWedgedTrialAndRetries) {
  Campaign c;
  c.name = "watchdog";
  c.add("ok-before", {}, [] { return TrialResult().add("v", 1); });
  // Body is irrelevant: wedge_trial replaces it with an infinite heartbeat
  // loop (the --wedge testing hook).
  c.add("wedged", {}, [] { return TrialResult().add("v", 2); });
  c.add("ok-after", {}, [] { return TrialResult().add("v", 3); });
  PoolOptions opts = pool_opts(2);
  opts.trial_timeout_s = 0.2;
  opts.retries = 2;
  opts.wedge_trial = "wedged";
  const CampaignResult r = run_campaign(c, opts);
  ASSERT_EQ(r.trials.size(), 3u);
  EXPECT_TRUE(r.trials[0].ok());
  EXPECT_TRUE(r.trials[2].ok());
  const TrialRecord& w = r.trials[1];
  EXPECT_TRUE(w.timed_out);
  EXPECT_FALSE(w.failed);
  EXPECT_EQ(w.attempts, 3);  // 1 + 2 retries, all cancelled
  EXPECT_NE(w.error.find("exceeded --trial-timeout"), std::string::npos);
  EXPECT_TRUE(w.metrics.empty());
  EXPECT_EQ(r.timeouts(), 1u);
  EXPECT_EQ(r.failures(), 0u);
  // Serialized as timed_out (+ attempts), never as failed.
  const std::string json = r.json();
  EXPECT_NE(json.find("\"timed_out\": true"), std::string::npos);
  EXPECT_NE(json.find("\"attempts\": 3"), std::string::npos);
  EXPECT_EQ(json.find("\"failed\""), std::string::npos);
}

TEST(WorkerPool, WatchdogCancelsSyntheticBodyViaProgressCheckpoint) {
  Campaign c;
  c.name = "checkpoint";
  c.add("spin", {}, [] {
    // A hand-written long-running body: progress_checkpoint is its only
    // cancellation point, exactly as documented in exp/progress.hpp.
    for (std::uint64_t i = 0;; ++i) {
      progress_checkpoint(0, i);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return TrialResult();
  });
  PoolOptions opts = pool_opts(1);
  opts.trial_timeout_s = 0.15;
  const CampaignResult r = run_campaign(c, opts);
  ASSERT_EQ(r.trials.size(), 1u);
  EXPECT_TRUE(r.trials[0].timed_out);
  EXPECT_EQ(r.trials[0].attempts, 1);
}

TEST(WorkerPool, WatchdogCancelsRealSimulationViaFabricBeacon) {
  using namespace gfc::runner;
  Campaign c;
  c.name = "sim-cancel";
  c.add("endless-ring", {}, [] {
    ScenarioConfig cfg;
    cfg.seed = 1;
    cfg.fc = FcSetup::derive(FcKind::kGfcBuffer, cfg.switch_buffer,
                             cfg.link.rate, cfg.tau());
    RingScenario s = make_ring(cfg);
    // Far beyond what 0.3 wall seconds can simulate: only the beacon
    // timer Fabric registered (through the thread's ProgressSink) can end
    // this trial.
    s.fabric->net().run_until(sim::ms(600000));
    return TrialResult().add("finished", true);
  });
  PoolOptions opts = pool_opts(1);
  opts.trial_timeout_s = 0.3;
  const CampaignResult r = run_campaign(c, opts);
  ASSERT_EQ(r.trials.size(), 1u);
  EXPECT_TRUE(r.trials[0].timed_out);
  EXPECT_FALSE(r.trials[0].failed);
}

TEST(WorkerPool, BeaconTimerDoesNotPerturbResults) {
  // The Fabric heartbeat is scheduled only when a ProgressSink is
  // installed, i.e. only inside worker-pool trials — and even then it
  // must not shift any simulation outcome. Compare a watchdogged pool run
  // against the same campaign run with the watchdog off.
  const std::string plain = run_campaign(small_sim_campaign(), pool_opts(2)).json();
  PoolOptions watched = pool_opts(2);
  watched.trial_timeout_s = 3600;  // armed, never fires
  EXPECT_EQ(run_campaign(small_sim_campaign(), watched).json(), plain);
}

TEST(Cli, ParsesCrashSafetyFlags) {
  const char* argv[] = {"prog",           "--resume", "a.journal",
                        "--resume",       "b.journal", "--trial-timeout",
                        "2.5",            "--retries", "3",
                        "--shard",        "2/5",       "--wedge",
                        "loss/ring/PFC",  "--scale",   "12.5"};
  const CliOptions o = parse_cli(15, const_cast<char**>(argv));
  ASSERT_EQ(o.resume_paths.size(), 2u);
  EXPECT_EQ(o.resume_paths[0], "a.journal");
  EXPECT_EQ(o.resume_paths[1], "b.journal");
  EXPECT_EQ(o.trial_timeout_s, 2.5);
  EXPECT_EQ(o.retries, 3);
  EXPECT_EQ(o.shard_index, 2);
  EXPECT_EQ(o.shard_count, 5);
  EXPECT_EQ(o.wedge_trial, "loss/ring/PFC");
  EXPECT_EQ(o.scale, 12.5);
  // --resume doubles as the journal unless --journal overrides.
  EXPECT_EQ(o.pool().journal_path, "a.journal");
  const char* argv2[] = {"prog", "--resume=a.journal", "--journal=j.bin"};
  EXPECT_EQ(parse_cli(3, const_cast<char**>(argv2)).pool().journal_path,
            "j.bin");
}

TEST(CliDeath, RejectsMalformedNumericArguments) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto run = [](std::vector<const char*> args) {
    args.insert(args.begin(), "prog");
    parse_cli(static_cast<int>(args.size()),
              const_cast<char**>(args.data()));
  };
  // std::atoi would have parsed these as 0 and silently serialized the
  // campaign (or run every trial with seed 0). Exit 2 + usage instead.
  EXPECT_EXIT(run({"--jobs", "abc"}), testing::ExitedWithCode(2),
              "expected an integer");
  EXPECT_EXIT(run({"--jobs", "4x"}), testing::ExitedWithCode(2),
              "expected an integer");
  EXPECT_EXIT(run({"--seed", "12monkeys"}), testing::ExitedWithCode(2),
              "non-negative integer");
  EXPECT_EXIT(run({"--seed", "-3"}), testing::ExitedWithCode(2),
              "non-negative integer");
  EXPECT_EXIT(run({"--trial-timeout", "fast"}), testing::ExitedWithCode(2),
              "positive number");
  EXPECT_EXIT(run({"--trial-timeout", "-1"}), testing::ExitedWithCode(2),
              "positive number");
  EXPECT_EXIT(run({"--trial-timeout", "0"}), testing::ExitedWithCode(2),
              "positive number");
  EXPECT_EXIT(run({"--retries", "many"}), testing::ExitedWithCode(2),
              "expected an integer");
  EXPECT_EXIT(run({"--scale", "big"}), testing::ExitedWithCode(2),
              "positive number");
  EXPECT_EXIT(run({"--shard", "3"}), testing::ExitedWithCode(2),
              "expected I/N");
  EXPECT_EXIT(run({"--shard", "4/4"}), testing::ExitedWithCode(2),
              "out of range");
  EXPECT_EXIT(run({"--shard", "0/0"}), testing::ExitedWithCode(2),
              "expected an integer");
  EXPECT_EXIT(run({"--shard", "a/b"}), testing::ExitedWithCode(2),
              "expected an integer");
  EXPECT_EXIT(run({"--jobs"}), testing::ExitedWithCode(2), "usage:");
  EXPECT_EXIT(run({"--bogus"}), testing::ExitedWithCode(2), "usage:");
}

TEST(Cli, FinishCliDistinguishesTimeoutsFromFailures) {
  CliOptions cli;  // no --json: finish_cli only reports + sets the status
  CampaignResult r;
  r.campaign = "codes";
  r.trials.resize(3);
  r.trials[0].name = "ok";
  r.trials[1].name = "slow";
  r.trials[2].name = "ok2";
  EXPECT_EQ(finish_cli(cli, r), 0);
  r.trials[1].timed_out = true;
  r.trials[1].error = "exceeded --trial-timeout 1s on 1 attempt(s)";
  EXPECT_EQ(finish_cli(cli, r), 3);  // timeouts only
  r.trials[2].failed = true;
  r.trials[2].error = "boom";
  EXPECT_EQ(finish_cli(cli, r), 1);  // any failure dominates
}

TEST(Results, ReportRendersTimeoutAndSkippedRows) {
  CampaignResult r;
  r.campaign = "render";
  r.trials.resize(3);
  r.trials[0].name = "good";
  r.trials[0].metrics.set("v", 1);
  r.trials[1].name = "slow";
  r.trials[1].timed_out = true;
  r.trials[1].error = "exceeded --trial-timeout";
  r.trials[2].name = "elsewhere";
  r.trials[2].skipped = true;
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  r.print_report(f);
  std::rewind(f);
  std::string text(1 << 12, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), f));
  std::fclose(f);
  EXPECT_NE(text.find("TIMEOUT"), std::string::npos) << text;
  EXPECT_NE(text.find("SKIPPED"), std::string::npos) << text;
}

}  // namespace
}  // namespace gfc::exp
