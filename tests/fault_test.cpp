// Tests for the runtime fault-injection subsystem (src/fault/) and the
// self-healing flow-control modes it exercises: reproducible control-frame
// drop/duplicate/delay, the classic lost-RESUME PFC wedge and its pause-
// expiry repair, CBFC credit-loss healing, mid-run link flaps with
// re-routing, and drain-and-reset deadlock recovery.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "fault/link_scheduler.hpp"
#include "flowctl/cbfc.hpp"
#include "flowctl/pfc.hpp"
#include "net/network.hpp"
#include "runner/scenarios.hpp"
#include "stats/deadlock.hpp"
#include "stats/throughput.hpp"

namespace gfc::fault {
namespace {

using net::Flow;
using net::Network;
using net::NodeId;
using net::PacketType;
using sim::gbps;
using sim::ms;
using sim::us;

// ---------------------------------------------------------------------------
// FaultPlan basics on runner-built scenarios.

TEST(FaultPlan, ReproducibleAcrossIdenticalRuns) {
  auto run = [] {
    runner::ScenarioConfig cfg;
    cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                     cfg.link.rate, cfg.tau());
    cfg.fault.seed = 99;
    cfg.fault.set_all_control({0.1, 0.1, 0.1, us(2)});
    auto s = runner::make_ring(cfg, 3, 2);
    s.fabric->net().run_until(ms(3));
    const FaultPlan* plan = s.fabric->fault_plan();
    EXPECT_NE(plan, nullptr);
    return std::tuple{plan->counters().consulted, plan->counters().dropped,
                      plan->counters().duplicated, plan->counters().delayed,
                      s.fabric->net().counters().data_bytes_delivered,
                      s.fabric->net().counters().lossless_violations};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_GT(std::get<0>(a), 0u);
  EXPECT_GT(std::get<1>(a), 0u);
  EXPECT_EQ(a, b);
}

TEST(FaultPlan, ZeroRatesInstallNoHook) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  auto s = runner::make_incast(cfg, 2);
  EXPECT_EQ(s.fabric->fault_plan(), nullptr);
  EXPECT_EQ(s.fabric->net().fault_hook(), nullptr);
}

TEST(FaultPlan, DuplicatedControlFramesAreIdempotent) {
  // PFC pause state is absolute and CBFC's FCCL is cumulative, so a
  // duplicated frame must change nothing: still lossless, still line rate.
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  cfg.fault.seed = 7;
  cfg.fault.set_all_control({0.0, 1.0, 0.0, 0});  // duplicate every frame
  auto s = runner::make_incast(cfg, 4);
  net::Network& net = s.fabric->net();
  stats::ThroughputSampler tp(net, us(100));
  net.run_until(ms(4));
  EXPECT_GT(s.fabric->fault_plan()->counters().duplicated, 0u);
  EXPECT_EQ(net.counters().lossless_violations, 0u);
  EXPECT_NEAR(tp.average_gbps(0, ms(1), ms(4)), 10.0, 0.5);
}

TEST(FaultPlan, DelayedControlFramesDoNotWedge) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  cfg.fault.seed = 11;
  cfg.fault.set_all_control({0.0, 0.0, 1.0, us(1)});  // delay every frame
  auto s = runner::make_incast(cfg, 4);
  net::Network& net = s.fabric->net();
  stats::ThroughputSampler tp(net, us(100));
  stats::DeadlockDetector det(net);
  net.run_until(ms(4));
  EXPECT_GT(s.fabric->fault_plan()->counters().delayed, 0u);
  EXPECT_FALSE(det.deadlocked());
  // Slightly late pauses can cost headroom but never throughput.
  EXPECT_GT(tp.average_gbps(0, ms(3), ms(4)), 8.0);
}

// ---------------------------------------------------------------------------
// The lost-RESUME wedge and its self-healing repairs, on the H0-S0-S1-H1
// line from the flowctl tests: congestion is created by sticking S1's
// egress to H1, and the single RESUME S1 sends on unsticking is dropped.

class StuckGate final : public net::TxGate {
 public:
  bool allowed(const net::Packet&, sim::TimePs, sim::TimePs*) override {
    return false;
  }
  void on_transmit(const net::Packet&, sim::TimePs) override {}
};

class ResumeLossFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    h0_ = net_.add_host("H0").id();
    h1_ = net_.add_host("H1").id();
    s0_ = net_.add_switch("S0", kBuffer).id();
    s1_ = net_.add_switch("S1", kBuffer).id();
    net_.connect(h0_, s0_, gbps(10), us(1));  // H0: port 0 / S0: port 0
    net_.connect(s0_, s1_, gbps(10), us(1));  // S0: port 1 / S1: port 0
    net_.connect(s1_, h1_, gbps(10), us(1));  // S1: port 1 / H1: port 0
    net_.sw(s0_)->set_route(h1_, {1});
    net_.sw(s1_)->set_route(h1_, {1});
    net_.sw(s0_)->set_route(h0_, {0});
    net_.sw(s1_)->set_route(h0_, {0});
  }

  void attach_pfc(sim::TimePs pause_timeout) {
    for (NodeId id : {h0_, h1_, s0_, s1_})
      net_.node(id).set_fc(std::make_unique<flowctl::PfcModule>(
          flowctl::PfcConfig{80'000, 77'000, pause_timeout}));
  }

  /// Congest until S1 pauses S0, then unstick while every RESUME on the
  /// wire is dropped (fault window covers the drain), then run fault-free.
  std::uint64_t run_lost_resume(sim::TimePs pause_timeout) {
    attach_pfc(pause_timeout);
    FaultConfig fc;
    fc.seed = 3;
    fc.active_until = ms(3);
    fc.rate(PacketType::kPfcResume).drop = 1.0;
    FaultPlan plan(net_, fc);

    net_.sw(s1_)->port(1).set_gate(std::make_unique<StuckGate>());
    net_.create_flow(h0_, h1_, 0, Flow::kUnbounded, 0);
    net_.run_until(ms(2));
    auto* fc1 = dynamic_cast<flowctl::PfcModule*>(net_.sw(s1_)->fc());
    EXPECT_TRUE(fc1->pause_sent(0, 0));

    net_.sw(s1_)->port(1).set_gate(std::make_unique<net::OpenGate>());
    net_.sw(s1_)->port(1).kick();
    net_.run_until(ms(5));
    const std::uint64_t at_5ms = net_.counters().data_packets_delivered;
    EXPECT_GE(plan.counters().dropped_by_type[static_cast<std::size_t>(
                  PacketType::kPfcResume)],
              1u);
    net_.run_until(ms(8));
    delivered_delta_ = net_.counters().data_packets_delivered - at_5ms;
    return delivered_delta_;
  }

  static constexpr std::int64_t kBuffer = 100'000;
  Network net_;
  NodeId h0_, h1_, s0_, s1_;
  std::uint64_t delivered_delta_ = 0;
};

TEST_F(ResumeLossFixture, LostResumeWedgesClassicPfcForever) {
  // Edge-triggered PFC has no second chance: the queue is already below
  // XON, so no further RESUME is ever generated and the upstream stays
  // paused for the rest of time — even though faults stop at 3 ms.
  EXPECT_EQ(run_lost_resume(0), 0u);
}

TEST_F(ResumeLossFixture, PauseExpiryHealsLostResume) {
  // With 802.1Qbb-style quanta the pause expires 50 us after the
  // downstream stops refreshing it; the line returns to full rate.
  const std::uint64_t delta = run_lost_resume(us(50));
  // 3 ms at 10G is ~2500 MTU packets; allow generous slack for the re-ramp.
  EXPECT_GT(delta, 2000u);
}

TEST(PauseExpiry, StaysLosslessWhenHealthy) {
  // The expiry must never fire early on a healthy link: the downstream
  // refreshes standing pauses every timeout/2, so a congested-but-fault-
  // free incast stays lossless.
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  cfg.fc.pfc_pause_timeout = us(50);
  auto s = runner::make_incast(cfg, 4);
  net::Network& net = s.fabric->net();
  stats::ThroughputSampler tp(net, us(100));
  net.run_until(ms(4));
  EXPECT_EQ(net.counters().lossless_violations, 0u);
  EXPECT_NEAR(tp.average_gbps(0, ms(1), ms(4)), 10.0, 0.5);
}

// ---------------------------------------------------------------------------
// CBFC credit loss: periodic cumulative advertisements self-heal.

TEST(CbfcCreditLoss, DropWindowStallsThenHeals) {
  auto run = [](sim::TimePs sync_period) {
    Network net;
    const NodeId h0 = net.add_host("H0").id();
    const NodeId h1 = net.add_host("H1").id();
    const NodeId s0 = net.add_switch("S0", 100'000).id();
    const NodeId s1 = net.add_switch("S1", 100'000).id();
    net.connect(h0, s0, gbps(10), us(1));
    net.connect(s0, s1, gbps(10), us(1));
    net.connect(s1, h1, gbps(10), us(1));
    net.sw(s0)->set_route(h1, {1});
    net.sw(s1)->set_route(h1, {1});
    net.sw(s0)->set_route(h0, {0});
    net.sw(s1)->set_route(h0, {0});
    flowctl::CbfcConfig cc;
    cc.period = us(10);
    cc.buffer_bytes = 100'000;
    cc.sync_period = sync_period;
    for (NodeId id : {h0, h1, s0, s1})
      net.node(id).set_fc(std::make_unique<flowctl::CbfcModule>(cc));

    FaultConfig fc;
    fc.seed = 5;
    fc.active_from = ms(1);
    fc.active_until = ms(2);
    fc.rate(PacketType::kCredit).drop = 1.0;  // black out all credits
    FaultPlan plan(net, fc);

    stats::ThroughputSampler tp(net, us(100));
    net.create_flow(h0, h1, 0, Flow::kUnbounded, 0);
    net.run_until(ms(4));
    EXPECT_GT(plan.counters().dropped, 50u);
    EXPECT_EQ(net.counters().lossless_violations, 0u);
    // Mid-window: the frozen FCCL admits at most one buffer's worth, then
    // the senders sit credit-starved.
    EXPECT_LT(tp.average_gbps(0, ms(1.5), ms(2)), 1.0);
    // One advertisement after the window ends restores the line.
    EXPECT_NEAR(tp.average_gbps(0, ms(2.5), ms(4)), 10.0, 0.5);
    return net.counters().control_frames_sent;
  };
  const std::uint64_t frames_plain = run(0);
  const std::uint64_t frames_sync = run(us(25));
  // The sync timer is extra redundancy on top of the periodic stream.
  EXPECT_GT(frames_sync, frames_plain);
}

// ---------------------------------------------------------------------------
// Link flaps: state flip, routing recompute, stranded-packet re-route.

TEST(LinkFlap, DiamondReroutesAroundOutage) {
  // H0 - S0 <{S1,S2}> S3 - H1: the primary path via S1 goes down mid-run
  // and traffic must continue via S2, then move back when S1 returns.
  Network net;
  const NodeId h0 = net.add_host("H0").id();
  const NodeId h1 = net.add_host("H1").id();
  const NodeId s0 = net.add_switch("S0", 300'000).id();
  const NodeId s1 = net.add_switch("S1", 300'000).id();
  const NodeId s2 = net.add_switch("S2", 300'000).id();
  const NodeId s3 = net.add_switch("S3", 300'000).id();
  net.connect(h0, s0, gbps(10), us(1));  // S0: port 0
  net.connect(s0, s1, gbps(10), us(1));  // S0: port 1 / S1: port 0
  net.connect(s0, s2, gbps(10), us(1));  // S0: port 2 / S2: port 0
  net.connect(s1, s3, gbps(10), us(1));  // S1: port 1 / S3: port 0
  net.connect(s2, s3, gbps(10), us(1));  // S2: port 1 / S3: port 1
  net.connect(s3, h1, gbps(10), us(1));  // S3: port 2
  net.sw(s0)->set_route(h1, {1});
  net.sw(s1)->set_route(h1, {1});
  net.sw(s2)->set_route(h1, {1});
  net.sw(s3)->set_route(h1, {2});

  int transitions = 0;
  LinkScheduler links(net, [&](const LinkEvent& ev) {
    ++transitions;
    net.sw(s0)->set_route(h1, {ev.up ? 1 : 2});
  });
  links.schedule_flap(s0, s1, ms(1), ms(2));

  net.create_flow(h0, h1, 0, Flow::kUnbounded, 0);
  net.run_until(ms(4));

  EXPECT_EQ(links.downs(), 1);
  EXPECT_EQ(links.ups(), 1);
  EXPECT_EQ(transitions, 2);
  EXPECT_EQ(net.counters().route_drops, 0u);
  EXPECT_EQ(net.counters().failover_drops, 0u);  // alternative path existed
  // At most the packets serialized into the dead wire are lost.
  EXPECT_LE(net.counters().wire_lost_packets, 3u);
  // ~10 Gb/s for 4 ms = 5 MB; the flap costs at most a small blip.
  EXPECT_GT(net.counters().data_bytes_delivered, 4'500'000);
  EXPECT_TRUE(net.sw(s0)->port(1).link_up());  // restored
}

TEST(LinkFlap, DownedPortIsNotHoldAndWait) {
  // A port whose link is down holds packets but is not flow-control
  // blocked; the deadlock detector must not read the outage as deadlock.
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  auto s = runner::make_incast(cfg, 2);
  net::Network& net = s.fabric->net();
  stats::DeadlockDetector det(net);
  LinkScheduler links(net);
  links.schedule(
      {ms(1), s.info.sw, static_cast<net::NodeId>(s.info.receiver), false});
  net.run_until(ms(6));  // receiver unreachable from 1 ms on
  EXPECT_FALSE(det.deadlocked());
}

TEST(LinkFlap, RandomFlapsAreSeedStable) {
  const std::vector<std::pair<net::NodeId, net::NodeId>> candidates = {
      {0, 1}, {1, 2}, {2, 3}};
  sim::Rng rng_a(42), rng_b(42);
  const auto a = LinkScheduler::random_flaps(candidates, rng_a, 5, ms(1),
                                             ms(10), us(200));
  const auto b = LinkScheduler::random_flaps(candidates, rng_b, 5, ms(1),
                                             ms(10), us(200));
  ASSERT_EQ(a.size(), 10u);  // a down and an up per outage
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
    EXPECT_EQ(a[i].up, b[i].up);
    if (i) {
      EXPECT_GE(a[i].at, a[i - 1].at);  // time-sorted
    }
  }
}

// ---------------------------------------------------------------------------
// Deadlock recovery: drain-and-reset keeps the ring alive.

TEST(DeadlockRecovery, DrainsRingAndKeepsDelivering) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  auto s = runner::make_ring(cfg, 3, 2);
  net::Network& net = s.fabric->net();
  stats::ThroughputSampler tp(net, us(100));
  stats::DeadlockOptions dl_opts;
  dl_opts.recover = true;
  stats::DeadlockDetector det(net, dl_opts);
  net.run_until(ms(10));
  EXPECT_GE(det.detections(), 1);
  EXPECT_GE(det.recoveries(), 1);
  EXPECT_GT(det.recovered_packets(), 0u);
  EXPECT_FALSE(det.deadlocked());  // recovery never latches
  // The same scenario with stop_on_detect halts near 4 ms with zero tail
  // throughput; recovery keeps the last 2.5 ms busy.
  EXPECT_GT(tp.average_gbps(0, ms(7.5), ms(10)), 0.5);
}

TEST(DeadlockRecovery, RunSummaryReportsRecoveries) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  // A deadlock-prone fat-tree case (same family as Table 1's k=4 scan).
  auto s = runner::make_random_fattree(cfg, 4, 0.05, 2);
  runner::RunOptions opts;
  opts.duration = ms(6);
  opts.recover_deadlock = true;
  const runner::RunSummary r = runner::run_closed_loop(s, opts);
  EXPECT_FALSE(r.stopped_on_deadlock);
  EXPECT_EQ(r.ended_at, ms(6));  // recovery mode never stops early
  EXPECT_GE(r.deadlock_detections, r.deadlock_recoveries);
}

}  // namespace
}  // namespace gfc::fault
