// Unit tests for the PFC and CBFC baselines on small hand-built networks.
#include <gtest/gtest.h>

#include "flowctl/cbfc.hpp"
#include "flowctl/pfc.hpp"
#include "net/network.hpp"
#include "runner/scenarios.hpp"

namespace gfc::flowctl {
namespace {

using net::Flow;
using net::Network;
using net::NodeId;
using sim::gbps;
using sim::ms;
using sim::us;

// H0 -- S0 -- S1 -- H1 line; congestion is created by blocking S1's egress
// to H1 with a test gate, so S1's ingress from S0 fills deterministically.
class LineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    h0_ = net_.add_host("H0").id();
    h1_ = net_.add_host("H1").id();
    s0_ = net_.add_switch("S0", kBuffer).id();
    s1_ = net_.add_switch("S1", kBuffer).id();
    net_.connect(h0_, s0_, gbps(10), us(1));   // H0: port 0 / S0: port 0
    net_.connect(s0_, s1_, gbps(10), us(1));   // S0: port 1 / S1: port 0
    net_.connect(s1_, h1_, gbps(10), us(1));   // S1: port 1 / H1: port 0
    net_.sw(s0_)->set_route(h1_, {1});
    net_.sw(s1_)->set_route(h1_, {1});
    net_.sw(s0_)->set_route(h0_, {0});
    net_.sw(s1_)->set_route(h0_, {0});
  }

  void attach(std::unique_ptr<net::FcModule> (*make)()) {
    for (NodeId id : {h0_, h1_, s0_, s1_}) net_.node(id).set_fc(make());
  }

  static constexpr std::int64_t kBuffer = 100'000;
  Network net_;
  NodeId h0_, h1_, s0_, s1_;
};

class StuckGate final : public net::TxGate {
 public:
  bool allowed(const net::Packet&, sim::TimePs, sim::TimePs*) override {
    return false;
  }
  void on_transmit(const net::Packet&, sim::TimePs) override {}
};

std::unique_ptr<net::FcModule> make_pfc() {
  return std::make_unique<PfcModule>(PfcConfig{80'000, 77'000});
}
std::unique_ptr<net::FcModule> make_cbfc() {
  CbfcConfig cfg;
  cfg.period = us(10);
  cfg.buffer_bytes = 100'000;
  return std::make_unique<CbfcModule>(cfg);
}

TEST_F(LineFixture, PfcPausesAtXoffAndResumesAtXon) {
  attach(&make_pfc);
  net_.sw(s1_)->port(1).set_gate(std::make_unique<StuckGate>());
  net_.create_flow(h0_, h1_, 0, Flow::kUnbounded, 0);
  net_.run_until(ms(2));
  auto* fc1 = dynamic_cast<PfcModule*>(net_.sw(s1_)->fc());
  ASSERT_NE(fc1, nullptr);
  // S1 ingress port 0 (from S0) exceeded XOFF and paused upstream.
  EXPECT_TRUE(fc1->pause_sent(0, 0));
  const auto q = net_.sw(s1_)->ingress_bytes(0, 0);
  EXPECT_GE(q, 80'000);
  EXPECT_LE(q, kBuffer);  // headroom absorbed the in-flight packets
  EXPECT_EQ(net_.counters().lossless_violations, 0u);
  // Unstick the egress: queue drains below XON and the upstream resumes.
  net_.sw(s1_)->port(1).set_gate(std::make_unique<net::OpenGate>());
  net_.sw(s1_)->port(1).kick();
  net_.run_until(ms(4));
  EXPECT_FALSE(fc1->pause_sent(0, 0));
  EXPECT_GT(net_.counters().data_bytes_delivered, 0);
}

TEST_F(LineFixture, PfcLosslessUnderFullLoad) {
  attach(&make_pfc);
  net_.create_flow(h0_, h1_, 0, Flow::kUnbounded, 0);
  net_.run_until(ms(5));
  EXPECT_EQ(net_.counters().lossless_violations, 0u);
  // No congestion: full line rate passes through.
  EXPECT_NEAR(static_cast<double>(net_.counters().data_bytes_delivered) * 8 /
                  sim::to_seconds(ms(5)) / 1e9,
              10.0, 0.2);
}

TEST_F(LineFixture, PfcPerPriorityIsolation) {
  attach(&make_pfc);
  net_.sw(s1_)->port(1).set_gate(std::make_unique<StuckGate>());
  net_.create_flow(h0_, h1_, 0, Flow::kUnbounded, 0);
  net_.run_until(ms(2));
  auto* fc1 = dynamic_cast<PfcModule*>(net_.sw(s1_)->fc());
  EXPECT_TRUE(fc1->pause_sent(0, 0));
  EXPECT_FALSE(fc1->pause_sent(0, 3));  // other priorities unaffected
}

TEST_F(LineFixture, CbfcStopsWhenCreditsExhausted) {
  attach(&make_cbfc);
  net_.sw(s1_)->port(1).set_gate(std::make_unique<StuckGate>());
  net_.create_flow(h0_, h1_, 0, Flow::kUnbounded, 0);
  net_.run_until(ms(3));
  auto* fc0 = dynamic_cast<CbfcModule*>(net_.sw(s0_)->fc());
  ASSERT_NE(fc0, nullptr);
  // S0's egress to S1 (port 1) ran out of credits: fewer than one MTU left.
  EXPECT_LT(fc0->available_credits(1, 0), (1500 + 63) / 64);
  // Ingress occupancy bounded by the advertised credit pool.
  EXPECT_LE(net_.sw(s1_)->ingress_bytes(0, 0), 100'000);
  EXPECT_EQ(net_.counters().lossless_violations, 0u);
  // Hold-and-wait: the upstream egress is stuck with no wake time.
  EXPECT_TRUE(net_.sw(s0_)->port(1).probe_hold_and_wait(net_.sched().now()));
}

TEST_F(LineFixture, CbfcCreditsReplenishAfterDrain) {
  attach(&make_cbfc);
  net_.sw(s1_)->port(1).set_gate(std::make_unique<StuckGate>());
  net_.create_flow(h0_, h1_, 0, Flow::kUnbounded, 0);
  net_.run_until(ms(3));
  net_.sw(s1_)->port(1).set_gate(std::make_unique<net::OpenGate>());
  net_.sw(s1_)->port(1).kick();
  const auto delivered_before = net_.counters().data_bytes_delivered;
  net_.run_until(ms(6));
  EXPECT_GT(net_.counters().data_bytes_delivered, delivered_before + 1'000'000);
  EXPECT_EQ(net_.counters().lossless_violations, 0u);
}

TEST_F(LineFixture, CbfcLosslessUnderFullLoad) {
  attach(&make_cbfc);
  net_.create_flow(h0_, h1_, 0, Flow::kUnbounded, 0);
  net_.run_until(ms(5));
  EXPECT_EQ(net_.counters().lossless_violations, 0u);
  EXPECT_NEAR(static_cast<double>(net_.counters().data_bytes_delivered) * 8 /
                  sim::to_seconds(ms(5)) / 1e9,
              10.0, 0.3);
}

TEST(CbfcConfig, BlockMath) {
  CbfcConfig cfg;
  cfg.buffer_bytes = 100'000;
  EXPECT_EQ(cfg.buffer_blocks(), 1562);
  EXPECT_EQ(cfg.blocks_for(64), 1);
  EXPECT_EQ(cfg.blocks_for(65), 2);
  EXPECT_EQ(cfg.blocks_for(1500), 24);
}

TEST(PfcConfig, ForBufferUsesTwoMtuGap) {
  const PfcConfig cfg = PfcConfig::for_buffer(80'000);
  EXPECT_EQ(cfg.xoff_bytes, 80'000);
  EXPECT_EQ(cfg.xon_bytes, 77'000);
}

// Parameterized lossless sweep: every mechanism must keep the invariant
// across buffer sizes in a 2-to-1 incast (persistent congestion).
class LosslessSweep
    : public ::testing::TestWithParam<std::tuple<runner::FcKind, std::int64_t>> {};

TEST_P(LosslessSweep, NoViolationsUnderIncast) {
  const auto [kind, buffer] = GetParam();
  runner::ScenarioConfig cfg;
  cfg.switch_buffer = buffer;
  cfg.fc = runner::FcSetup::derive(kind, buffer, cfg.link.rate, cfg.tau());
  auto s = runner::make_incast(cfg, 2);
  s.fabric->net().run_until(ms(10));
  EXPECT_EQ(s.fabric->net().counters().lossless_violations, 0u);
  EXPECT_GT(s.fabric->net().counters().data_bytes_delivered, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, LosslessSweep,
    ::testing::Combine(::testing::Values(runner::FcKind::kPfc,
                                         runner::FcKind::kCbfc,
                                         runner::FcKind::kGfcBuffer,
                                         runner::FcKind::kGfcTime,
                                         runner::FcKind::kGfcConceptual),
                       ::testing::Values(100'000, 300'000, 1'000'000)),
    [](const auto& info) {
      std::string name = std::string(runner::fc_name(std::get<0>(info.param))) +
                         "_" + std::to_string(std::get<1>(info.param) / 1000) +
                         "KB";
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

}  // namespace
}  // namespace gfc::flowctl
