#!/usr/bin/env bash
# Golden-output regression check: run one experiment binary and byte-compare
# its output against the committed snapshot in tests/golden/.
#
#   golden_check.sh <binary> <golden-file> stdout <args...>   compare stdout
#   golden_check.sh <binary> <golden-file> json   <args...>   compare --json
#
# The goldens were produced by the pooled-heap engine that shipped before
# the timing-wheel scheduler; byte-identity here proves the wheel (and the
# batched wire-event / deferred-trace changes riding on it) preserved the
# simulation's event order exactly, not just its statistics. Regenerate
# deliberately (and say so in the commit) if the simulation itself changes:
#   ./build/bench/<binary> ... > tests/golden/<file>
set -eu

bin=$1
golden=$2
mode=$3
shift 3

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

if [ "$mode" = stdout ]; then
  "$bin" "$@" > "$tmp"
else
  "$bin" "$@" --json "$tmp" > /dev/null
fi

if ! cmp -s "$tmp" "$golden"; then
  echo "golden mismatch: $bin $* vs $golden" >&2
  diff -u "$golden" "$tmp" | head -40 >&2 || true
  exit 1
fi
