// Tests for the fault-aware analysis layer (src/analyze/incremental,
// sweep, repair + the runner wiring): the load-bearing randomized
// flap-sequence differential harness (incremental reports must be
// byte-identical to from-scratch analysis after any down/up sequence),
// witness-cycle membership properties, the k-failure sweep's culprit
// semantics, repair verification, and the Fabric re-verdict plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/incremental.hpp"
#include "analyze/repair.hpp"
#include "analyze/scenario.hpp"
#include "analyze/sweep.hpp"
#include "runner/scenarios.hpp"
#include "sim/random.hpp"
#include "stats/deadlock.hpp"
#include "topo/builders.hpp"
#include "topo/cbd.hpp"
#include "topo/routing.hpp"
#include "topo/scenario_gen.hpp"

namespace gfc::analyze {
namespace {

runner::ScenarioConfig cli_config(runner::FcKind kind, std::int64_t buffer) {
  runner::ScenarioConfig cfg;
  cfg.switch_buffer = buffer;
  cfg.fc = runner::FcSetup::derive(kind, buffer, cfg.link.rate, cfg.tau(),
                                   cfg.link.mtu);
  return cfg;
}

Input input_for(const topo::Topology& t, const runner::ScenarioConfig& cfg,
                const std::string& scenario) {
  Input in;
  in.topo = &t;
  in.cfg = cfg;
  in.scenario = scenario;
  return in;
}

// --- The acceptance-criterion differential: after ANY link down/up
// sequence, the incremental report is byte-identical to a from-scratch
// analyze() on the mutated topology. Deltas toggle a random switch link
// (fail when up, restore when down), recompute shortest paths, and
// compare full JSON bytes — the strictest equality the report offers.

std::size_t run_flap_differential(topo::Topology& t,
                                  const runner::ScenarioConfig& cfg,
                                  const std::string& label, int deltas,
                                  std::uint64_t seed) {
  SCOPED_TRACE(label);
  const Input in = input_for(t, cfg, label);
  IncrementalAnalyzer inc(in);
  const std::vector<topo::LinkIndex> candidates = t.switch_links();
  sim::Rng rng(seed);
  std::size_t mismatches = 0;
  for (int step = 0; step < deltas; ++step) {
    const topo::LinkIndex li = candidates[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
    if (t.link(li).up)
      t.fail_link(li);
    else
      t.restore_link(li);
    const topo::RoutingTable routing = topo::compute_shortest_paths(t);
    const std::string incremental = inc.update(routing).json();
    Input scratch = in;
    scratch.routing = &routing;
    const std::string fresh = analyze(scratch).json();
    if (incremental != fresh) {
      ++mismatches;
      ADD_FAILURE() << label << " step " << step << " (link " << li
                    << "): incremental report diverged from from-scratch";
      break;  // one full-JSON diff in the log is enough
    }
  }
  return mismatches;
}

TEST(IncrementalDifferential, RingFlapSequencesMatchFromScratch) {
  // The bulk of the 10^4-delta budget runs on cheap rings (seconds, not
  // minutes): every delta still exercises the dst-cache compare, the SCC
  // cache, and the truncation fallback decision.
  runner::ScenarioConfig cfg = cli_config(runner::FcKind::kPfc, 300'000);
  topo::Topology r3;
  topo::build_ring(r3, 3);
  EXPECT_EQ(run_flap_differential(r3, cfg, "flap-ring3", 3000, 101), 0u);
  topo::Topology r6;
  topo::build_ring(r6, 6);
  EXPECT_EQ(run_flap_differential(r6, cfg, "flap-ring6", 6500, 202), 0u);
}

TEST(IncrementalDifferential, FatTreeFlapSequencesMatchFromScratch) {
  // Fat-tree deltas are where reroutes actually mint and dissolve cycles
  // (valley paths after edge-agg failures); fewer steps, same invariant.
  runner::ScenarioConfig cfg = cli_config(runner::FcKind::kGfcBuffer, 300'000);
  topo::Topology t;
  topo::build_fattree(t, 4);
  EXPECT_EQ(run_flap_differential(t, cfg, "flap-fattree4", 500, 303), 0u);
}

TEST(IncrementalDifferential, TruncatingTopologyStillMatches) {
  // A dense graph that truncates at a tiny cap forces the exact
  // whole-graph fallback; byte-identity must hold through it.
  runner::ScenarioConfig cfg = cli_config(runner::FcKind::kPfc, 300'000);
  topo::Topology t;
  topo::build_fattree(t, 4);
  sim::Rng rng(12 * 7919 + 4);
  topo::random_failures(t, rng, 0.05);
  Input in = input_for(t, cfg, "flap-dense");
  in.max_cycles = 16;
  IncrementalAnalyzer inc(in);
  const std::vector<topo::LinkIndex> candidates = t.switch_links();
  sim::Rng flip(404);
  for (int step = 0; step < 40; ++step) {
    const topo::LinkIndex li = candidates[static_cast<std::size_t>(
        flip.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
    if (t.link(li).up)
      t.fail_link(li);
    else
      t.restore_link(li);
    const topo::RoutingTable routing = topo::compute_shortest_paths(t);
    Input scratch = in;
    scratch.routing = &routing;
    ASSERT_EQ(inc.update(routing).json(), analyze(scratch).json())
        << "step " << step;
  }
  EXPECT_GT(inc.stats().full_fallbacks, 0u);
}

TEST(IncrementalStats, CachesEngageAcrossAFlapPair) {
  // The dst cache compares against the PREVIOUS routing column, so an
  // unchanged routing must reuse every destination (and the cyclic ring
  // SCC must hit the shape cache), while a flap must recompute at least
  // the columns the reroute touched.
  BuiltScenario sc;
  std::string err;
  ASSERT_TRUE(build_scenario("ring:3:2", &sc, &err)) << err;
  topo::Topology& t = sc.topo;
  const std::size_t hosts = t.hosts().size();
  IncrementalAnalyzer inc(
      input_for(t, cli_config(runner::FcKind::kPfc, 300'000), "cache-check"));
  inc.update(sc.routing);  // the forced ring routing: one cyclic SCC
  EXPECT_EQ(inc.stats().dst_recomputed, hosts);
  EXPECT_EQ(inc.stats().scc_enumerations, 1u);
  inc.update(sc.routing);  // identical routing: everything served from cache
  EXPECT_EQ(inc.stats().dst_reused, hosts);
  EXPECT_EQ(inc.stats().scc_reused, 1u);
  const topo::LinkIndex li = t.switch_links().front();
  t.fail_link(li);
  inc.update(topo::compute_shortest_paths(t));
  t.restore_link(li);
  inc.update(topo::compute_shortest_paths(t));
  EXPECT_EQ(inc.stats().updates, 4u);
  EXPECT_GT(inc.stats().dst_recomputed, hosts);
  EXPECT_EQ(inc.stats().full_fallbacks, 0u);
}

// --- Witness-cycle membership properties (ring / loop2 / fattree): a
// runtime witness walks the cycle starting at an arbitrary hop, so every
// rotation of every enumerated cycle must canonicalize back to a member,
// and corrupted cycles must not.

void check_rotation_membership(const std::string& spec) {
  SCOPED_TRACE(spec);
  BuiltScenario sc;
  std::string err;
  ASSERT_TRUE(build_scenario(spec, &sc, &err)) << err;
  Input in;
  in.topo = &sc.topo;
  in.routing = &sc.routing;
  in.cfg = cli_config(runner::FcKind::kPfc, 300'000);
  in.scenario = sc.name;
  const Report r = analyze(in);
  ASSERT_FALSE(r.cycles.empty());
  for (const CycleInfo& c : r.cycles) {
    for (std::size_t off = 0; off < c.links.size(); ++off) {
      std::vector<topo::DirectedLink> rotated(c.links.begin() + off,
                                              c.links.end());
      rotated.insert(rotated.end(), c.links.begin(), c.links.begin() + off);
      topo::canonicalize_cycle(&rotated);
      EXPECT_TRUE(report_contains_cycle(r, rotated));
    }
    // A corrupted witness (one hop replaced by a bogus link) is rejected.
    std::vector<topo::DirectedLink> bogus = c.links;
    bogus.back() = {999, 998};
    topo::canonicalize_cycle(&bogus);
    EXPECT_FALSE(report_contains_cycle(r, bogus));
  }
}

TEST(WitnessOracle, RotationsOfEveryCycleAreMembers) {
  check_rotation_membership("ring:3:2");
  check_rotation_membership("ring:6:3");
  check_rotation_membership("loop2");
  check_rotation_membership("fattree:4:seed=22");
}

TEST(WitnessOracle, RingRuntimeWitnessIsInStaticEnumeration) {
  // The ring deadlocks organically under PFC; the detector's witness
  // cycle must map onto the static enumeration (check_witness_cycle
  // throws the run away otherwise).
  runner::ScenarioConfig cfg = cli_config(runner::FcKind::kPfc, 300'000);
  cfg.witness_check = true;
  runner::RingScenario s = runner::make_ring(cfg, 3, 2);
  net::Network& net = s.fabric->net();
  stats::DeadlockOptions dl_opts;
  dl_opts.stop_on_detect = true;
  int checked = 0;
  dl_opts.on_detect = [&s, &checked](stats::DeadlockDetector& det) {
    if (runner::check_witness_cycle(*s.fabric, det)) ++checked;
  };
  stats::DeadlockDetector det(net, dl_opts);
  net.run_until(sim::ms(8));
  ASSERT_TRUE(det.deadlocked());
  EXPECT_EQ(checked, 1);
  EXPECT_EQ(s.fabric->analysis_reverdicts(), 1);
}

TEST(WitnessOracle, FatTreeStressWitnessIsInStaticEnumeration) {
  // The Table-1 seed-22 stress probe realizes a fat-tree CBD at runtime;
  // the cross-check must find its canonical cycle in the (post-failure)
  // static enumeration.
  topo::Topology t;
  topo::build_fattree(t, 4);
  sim::Rng rng(22 * 7919 + 4);
  const auto failed = topo::random_failures(t, rng, 0.05);
  const auto routing = topo::compute_shortest_paths(t);
  topo::BufferDependencyGraph g(t);
  g.add_routing_closure(routing);
  const auto cbd = g.find_cycle();
  ASSERT_TRUE(cbd.has_cbd);
  auto stress = topo::build_cbd_stress(t, routing, cbd.cycle, rng);
  ASSERT_TRUE(stress.covered);

  runner::ScenarioConfig cfg = cli_config(runner::FcKind::kPfc, 300'000);
  cfg.witness_check = true;
  auto sc = runner::make_fattree(cfg, 4, failed);
  net::Network& net = sc.fabric->net();
  for (const auto& f : stress.flows) {
    net::Flow& flow =
        net.create_flow(f.src, f.dst, 0, net::Flow::kUnbounded, 0);
    flow.path_salt = f.salt;
  }
  stats::DeadlockOptions dl_opts;
  dl_opts.stop_on_detect = true;
  int checked = 0;
  dl_opts.on_detect = [&sc, &checked](stats::DeadlockDetector& det) {
    EXPECT_TRUE(runner::check_witness_cycle(*sc.fabric, det));
    ++checked;
  };
  stats::DeadlockDetector det(net, dl_opts);
  net.run_until(sim::ms(8));
  ASSERT_TRUE(det.deadlocked());
  EXPECT_EQ(checked, 1);
}

TEST(WitnessOracle, SkipsWhenAnalysisIsOff) {
  // No preflight, no witness_check: the fabric holds no analysis and the
  // check reports "skipped", never a false positive.
  runner::ScenarioConfig cfg = cli_config(runner::FcKind::kPfc, 300'000);
  runner::RingScenario s = runner::make_ring(cfg, 3, 2);
  net::Network& net = s.fabric->net();
  stats::DeadlockOptions dl_opts;
  dl_opts.stop_on_detect = true;
  stats::DeadlockDetector det(net, dl_opts);
  net.run_until(sim::ms(8));
  ASSERT_TRUE(det.deadlocked());
  EXPECT_EQ(s.fabric->analysis(), nullptr);
  EXPECT_FALSE(runner::check_witness_cycle(*s.fabric, det));
}

// --- Fabric re-verdict plumbing: mid-run reroutes re-analyze
// incrementally and the result matches from-scratch analysis.

TEST(IncrementalRunner, ReinstallReverdictsAndMatchesFromScratch) {
  runner::ScenarioConfig cfg = cli_config(runner::FcKind::kGfcBuffer, 300'000);
  cfg.witness_check = true;
  runner::FatTreeScenario s = runner::make_fattree(cfg, 4);
  EXPECT_EQ(s.fabric->analysis_reverdicts(), 1);
  ASSERT_NE(s.fabric->analysis(), nullptr);
  EXPECT_EQ(s.fabric->analysis()->verdict(), Verdict::kDeadlockFree);

  const auto links = s.topo.switch_links();
  s.topo.fail_link(links[links.size() / 2]);
  s.routing = topo::compute_shortest_paths(s.topo);
  s.fabric->install_routing(s.topo, s.routing);
  EXPECT_EQ(s.fabric->analysis_reverdicts(), 2);

  Input in;
  in.topo = &s.topo;
  in.routing = &s.routing;
  in.cfg = cfg;
  EXPECT_EQ(s.fabric->analysis()->json(), analyze(in).json());
}

// --- The k-failure sweep.

TEST(FailureSweepTest, RingCombosAreExhaustiveAndDeterministic) {
  BuiltScenario sc;
  std::string err;
  ASSERT_TRUE(build_scenario("ring:3:2", &sc, &err)) << err;
  Input in;
  in.topo = &sc.topo;
  in.routing = &sc.routing;
  in.cfg = cli_config(runner::FcKind::kPfc, 300'000);
  in.scenario = sc.name;
  const Report r = sweep_failures(in, 2);
  ASSERT_TRUE(r.failure_sweep.has_value());
  const FailureSweep& fs = *r.failure_sweep;
  EXPECT_EQ(fs.max_failures, 2);
  // 3 switch-switch links: C(3,1) + C(3,2) = 6 combos.
  EXPECT_EQ(fs.combos, 6u);
  EXPECT_EQ(fs.results.size(), 6u);
  // Baseline is already at_risk: nothing can "flip" off it.
  EXPECT_EQ(fs.baseline, Verdict::kAtRisk);
  EXPECT_EQ(fs.flipped, 0u);
  EXPECT_TRUE(fs.culprits.empty());
  // Lexicographic by size then position, links ascending inside a combo.
  for (std::size_t i = 1; i < fs.results.size(); ++i) {
    const auto& a = fs.results[i - 1].links;
    const auto& b = fs.results[i].links;
    EXPECT_TRUE(a.size() < b.size() || (a.size() == b.size() && a < b));
  }
  // The whole report (v2 JSON section included) is byte-deterministic.
  EXPECT_EQ(r.json(), sweep_failures(in, 2).json());
}

TEST(FailureSweepTest, FlipSemanticsOnDeadlockFreeBaseline) {
  // Full fat-tree (SPF = up*/down* = no cycles): the baseline is
  // deadlock_free, and each combo's `flips` must equal "verdict isn't".
  topo::Topology t;
  topo::build_fattree(t, 4);
  const auto routing = topo::compute_shortest_paths(t);
  Input in;
  in.topo = &t;
  in.routing = &routing;
  in.cfg = cli_config(runner::FcKind::kPfc, 300'000);
  in.scenario = "fattree4-sweep";
  const Report r = sweep_failures(in, 1);
  ASSERT_TRUE(r.failure_sweep.has_value());
  const FailureSweep& fs = *r.failure_sweep;
  EXPECT_EQ(fs.baseline, Verdict::kDeadlockFree);
  EXPECT_EQ(fs.combos, t.switch_links().size());
  std::size_t flipped = 0;
  for (const FailureCombo& c : fs.results) {
    EXPECT_EQ(c.flips, c.verdict != Verdict::kDeadlockFree);
    if (c.flips) ++flipped;
  }
  EXPECT_EQ(fs.flipped, flipped);
  // Every size-1 flipping combo is trivially minimal: culprits == flips.
  EXPECT_EQ(fs.culprits.size(), flipped);
  for (std::size_t idx : fs.culprits) {
    ASSERT_LT(idx, fs.results.size());
    EXPECT_TRUE(fs.results[idx].flips);
  }
}

// --- Repair suggestions.

TEST(RepairTest, RingRepairsAreVerifiedCbdFree) {
  BuiltScenario sc;
  std::string err;
  ASSERT_TRUE(build_scenario("ring:3:2", &sc, &err)) << err;
  Input in;
  in.topo = &sc.topo;
  in.routing = &sc.routing;
  in.cfg = cli_config(runner::FcKind::kPfc, 300'000);
  in.flows = sc.flows;
  in.scenario = sc.name;
  Report r = analyze(in);
  ASSERT_FALSE(r.cycles.empty());
  const Repairs rep = suggest_repairs(in, r);
  ASSERT_FALSE(rep.suggestions.empty());
  for (const RepairSuggestion& s : rep.suggestions) {
    EXPECT_TRUE(s.kind == "link_removal" || s.kind == "turn_restriction");
    EXPECT_FALSE(s.removals.empty());
    EXPECT_GT(s.cycles_broken, 0u);
    // The ring's single CBD is trivially breakable both ways; the
    // re-verification must confirm it.
    EXPECT_TRUE(s.verified_cbd_free) << s.kind;
  }
  // Deterministic, including through the JSON section.
  r.repairs = rep;
  Report r2 = analyze(in);
  r2.repairs = suggest_repairs(in, r2);
  EXPECT_EQ(r.json(), r2.json());
}

TEST(RepairTest, CbdFreeReportYieldsNoSuggestions) {
  BuiltScenario sc;
  std::string err;
  ASSERT_TRUE(build_scenario("incast:4", &sc, &err)) << err;
  Input in;
  in.topo = &sc.topo;
  in.routing = &sc.routing;
  in.cfg = cli_config(runner::FcKind::kPfc, 300'000);
  in.scenario = sc.name;
  const Report r = analyze(in);
  ASSERT_TRUE(r.cbd_free());
  EXPECT_TRUE(suggest_repairs(in, r).suggestions.empty());
}

}  // namespace
}  // namespace gfc::analyze
