// Integration tests on the fat-tree case study (Figs 11-14) and the
// Table-1 methodology (random failures + CBD analysis + deadlock runs).
#include <gtest/gtest.h>

#include "runner/scenarios.hpp"
#include "stats/throughput.hpp"

namespace gfc::runner {
namespace {

using sim::ms;
using sim::us;

struct CaseResult {
  bool deadlocked = false;
  std::vector<double> flow_gbps;
  std::uint64_t violations = 0;
};

const topo::Fig11Case& fig11_case() {
  static const topo::Fig11Case kCase = [] {
    topo::Topology t;
    const auto ft = topo::build_fattree(t, 4);
    auto cases = topo::find_fig11_cases(t, ft, 1);
    EXPECT_FALSE(cases.empty());
    return cases.front();
  }();
  return kCase;
}

CaseResult run_case(FcKind kind, net::SwitchArch arch, sim::TimePs dur = ms(20),
                    bool add_victim = false, double* victim_gbps = nullptr) {
  const topo::Fig11Case& c = fig11_case();
  ScenarioConfig cfg;
  cfg.switch_buffer = 300'000;
  cfg.arch = arch;
  cfg.fc = FcSetup::derive(kind, cfg.switch_buffer, cfg.link.rate, cfg.tau());
  auto s = make_fattree(cfg, 4, c.failed_links);
  net::Network& net = s.fabric->net();
  std::vector<net::FlowId> flows;
  for (std::size_t f = 0; f < c.flows.size(); ++f) {
    net::Flow& flow =
        net.create_flow(c.flows[f].first, c.flows[f].second, 0,
                        net::Flow::kUnbounded, 0);
    flow.path_salt = c.salts[f];
    flows.push_back(flow.id);
  }
  net::FlowId victim = net::kInvalidFlow;
  if (add_victim) {
    // Fig 14: a CBD-irrelevant flow. Like the paper's F5 it does not pass
    // through the cycle itself but *shares the upstream path* of a CBD
    // flow: same source rack, destination in another pod. When the
    // deadlock freezes the cycle, pause propagates back to the shared
    // edge uplink and starves it.
    topo::NodeIndex vsrc = -1;
    const topo::NodeIndex src_rack = s.topo.rack_of(c.flows[0].first);
    for (topo::NodeIndex h : s.info.hosts)
      if (h != c.flows[0].first && s.topo.rack_of(h) == src_rack) vsrc = h;
    topo::NodeIndex vdst = -1;
    const topo::NodeIndex dst_rack = s.topo.rack_of(c.flows[0].second);
    for (topo::NodeIndex h : s.info.hosts)
      if (h != c.flows[0].second && s.topo.rack_of(h) == dst_rack) vdst = h;
    net::Flow& vf =
        net.create_flow(vsrc, vdst, 0, net::Flow::kUnbounded, 0);
    vf.path_salt = c.salts[0];
    victim = vf.id;
  }
  stats::ThroughputSampler tp(net, us(100), stats::ThroughputSampler::Key::kPerFlow);
  stats::DeadlockDetector det(net);
  net.run_until(dur);
  CaseResult out;
  out.deadlocked = det.deadlocked();
  for (net::FlowId f : flows)
    out.flow_gbps.push_back(tp.average_gbps(f, dur * 3 / 4, dur));
  if (victim != net::kInvalidFlow && victim_gbps != nullptr)
    *victim_gbps = tp.average_gbps(victim, dur * 3 / 4, dur);
  out.violations = net.counters().lossless_violations;
  return out;
}

TEST(FatTreeCase, SearcherFindsPaperStyleCbd) {
  const auto& c = fig11_case();
  EXPECT_EQ(c.failed_links.size(), 3u);
  EXPECT_GE(c.cbd.cycle.size(), 4u);
  EXPECT_EQ(c.flows.size(), 4u);
}

TEST(FatTreeCase, Fig12PfcDeadlocksGfcBufferFlows) {
  const CaseResult pfc = run_case(FcKind::kPfc, net::SwitchArch::kOutputQueuedFifo);
  EXPECT_TRUE(pfc.deadlocked);
  for (double g : pfc.flow_gbps) EXPECT_LT(g, 0.2);
  EXPECT_EQ(pfc.violations, 0u);

  const CaseResult gfc =
      run_case(FcKind::kGfcBuffer, net::SwitchArch::kOutputQueuedFifo);
  EXPECT_FALSE(gfc.deadlocked);
  EXPECT_EQ(gfc.violations, 0u);
}

TEST(FatTreeCase, Fig12GfcBufferFairSharesOnCrossbar) {
  // Paper Fig 12(b): every flow settles at its 5 Gb/s share.
  const CaseResult gfc =
      run_case(FcKind::kGfcBuffer, net::SwitchArch::kCioqRoundRobin);
  EXPECT_FALSE(gfc.deadlocked);
  for (double g : gfc.flow_gbps) EXPECT_NEAR(g, 5.0, 0.6);
  EXPECT_EQ(gfc.violations, 0u);
}

TEST(FatTreeCase, Fig13CbfcDeadlocksGfcTimeFlows) {
  const CaseResult cbfc = run_case(FcKind::kCbfc, net::SwitchArch::kOutputQueuedFifo);
  EXPECT_TRUE(cbfc.deadlocked);
  for (double g : cbfc.flow_gbps) EXPECT_LT(g, 0.2);

  const CaseResult gfc =
      run_case(FcKind::kGfcTime, net::SwitchArch::kCioqRoundRobin);
  EXPECT_FALSE(gfc.deadlocked);
  for (double g : gfc.flow_gbps) EXPECT_NEAR(g, 5.0, 0.6);
}

TEST(FatTreeCase, Fig14VictimFlowDiesUnderPfcLivesUnderGfc) {
  double victim_pfc = -1, victim_gfc = -1;
  const CaseResult pfc = run_case(FcKind::kPfc, net::SwitchArch::kOutputQueuedFifo,
                                  ms(20), true, &victim_pfc);
  EXPECT_TRUE(pfc.deadlocked);
  // The victim shares its source/first hops with CBD traffic: once the
  // deadlock freezes those buffers, the victim starves too.
  EXPECT_LT(victim_pfc, 1.0);

  const CaseResult gfc = run_case(FcKind::kGfcBuffer,
                                  net::SwitchArch::kCioqRoundRobin, ms(20),
                                  true, &victim_gfc);
  EXPECT_FALSE(gfc.deadlocked);
  EXPECT_GT(victim_gfc, 2.0);  // keeps a healthy share of its shared path
}

TEST(Table1Method, StressProbeDeadlocksBaselinesOnly) {
  // One CBD-prone random topology with a covered stress probe: PFC and
  // CBFC must both deadlock; buffer- and time-based GFC must not.
  topo::Topology t;
  topo::build_fattree(t, 4);
  topo::CbdStress stress;
  std::vector<topo::LinkIndex> failed;
  bool found = false;
  for (std::uint64_t seed = 1; seed < 64 && !found; ++seed) {
    t.restore_all();
    sim::Rng rng(seed);
    failed = topo::random_failures(t, rng, 0.05);
    const auto routing = topo::compute_shortest_paths(t);
    topo::BufferDependencyGraph g(t);
    g.add_routing_closure(routing);
    const auto cbd = g.find_cycle();
    if (!cbd.has_cbd) continue;
    stress = topo::build_cbd_stress(t, routing, cbd.cycle, rng);
    if (stress.covered) found = true;
  }
  ASSERT_TRUE(found);
  for (FcKind kind : {FcKind::kPfc, FcKind::kCbfc, FcKind::kGfcBuffer,
                      FcKind::kGfcTime}) {
    ScenarioConfig cfg;
    cfg.switch_buffer = 300'000;
    cfg.fc = FcSetup::derive(kind, cfg.switch_buffer, cfg.link.rate, cfg.tau());
    auto s = make_fattree(cfg, 4, failed);
    net::Network& net = s.fabric->net();
    for (const auto& f : stress.flows) {
      net::Flow& flow =
          net.create_flow(f.src, f.dst, 0, net::Flow::kUnbounded, 0);
      flow.path_salt = f.salt;
    }
    stats::DeadlockOptions dl_opts;
    dl_opts.stop_on_detect = true;
    stats::DeadlockDetector det(net, dl_opts);
    net.run_until(ms(15));
    const bool expect_deadlock =
        kind == FcKind::kPfc || kind == FcKind::kCbfc;
    EXPECT_EQ(det.deadlocked(), expect_deadlock) << fc_name(kind);
    EXPECT_EQ(net.counters().lossless_violations, 0u) << fc_name(kind);
  }
}

TEST(Table1Method, ClosedLoopRunSummaryIsSane) {
  ScenarioConfig cfg;
  cfg.switch_buffer = 300'000;
  cfg.fc = FcSetup::derive(FcKind::kGfcBuffer, cfg.switch_buffer,
                           cfg.link.rate, cfg.tau());
  auto s = make_random_fattree(cfg, 4, 0.05, 9);
  RunOptions opts;
  opts.duration = ms(10);
  const RunSummary r = run_closed_loop(s, opts);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_GT(r.per_host_gbps, 0.5);
  EXPECT_LT(r.per_host_gbps, 10.0);
  EXPECT_GT(r.flows_completed, 50u);
  EXPECT_GE(r.mean_slowdown, 1.0);
  EXPECT_EQ(r.lossless_violations, 0u);
}

TEST(Table1Method, CbdFreeCasesRunCleanlyUnderAllMechanisms) {
  // Fig 16/17's precondition: in CBD-free scenarios every mechanism just
  // does port-level rate adjustment; nobody deadlocks, performance close.
  for (FcKind kind : {FcKind::kPfc, FcKind::kCbfc, FcKind::kGfcBuffer,
                      FcKind::kGfcTime}) {
    ScenarioConfig cfg;
    cfg.switch_buffer = 300'000;
    cfg.fc = FcSetup::derive(kind, cfg.switch_buffer, cfg.link.rate, cfg.tau());
    auto s = make_random_fattree(cfg, 4, 0.05, 2);  // seed 2: CBD-free
    ASSERT_FALSE(s.cbd_prone);
    RunOptions opts;
    opts.duration = ms(10);
    const RunSummary r = run_closed_loop(s, opts);
    EXPECT_FALSE(r.deadlocked) << fc_name(kind);
    EXPECT_GT(r.per_host_gbps, 1.0) << fc_name(kind);
    EXPECT_EQ(r.lossless_violations, 0u) << fc_name(kind);
  }
}

}  // namespace
}  // namespace gfc::runner
