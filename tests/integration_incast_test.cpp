// Integration tests on the 2-to-1 scenario of Figure 5: queue-length and
// input-rate evolutions under PFC vs conceptual GFC.
#include <gtest/gtest.h>

#include "runner/scenarios.hpp"
#include "stats/probe.hpp"
#include "stats/throughput.hpp"

namespace gfc::runner {
namespace {

using sim::gbps;
using sim::ms;
using sim::us;

// Paper Fig 5 parameters: C = 10G, tau = 25 us, B_m = 100 KB, B_0 = 50 KB;
// PFC: XOFF 80 KB, XON 77 KB. Steady state B_s = 75 KB (where the linear
// mapping yields the 5 Gb/s draining rate).
ScenarioConfig fig5_config() {
  ScenarioConfig cfg;
  cfg.switch_buffer = 110'000;  // small slack above B_m for packet grain
  cfg.arch = net::SwitchArch::kCioqRoundRobin;
  // Pad tau to 25 us: control delay = 25 - 2*MTU/C - 2*t_w.
  cfg.control_delay = us(25) - 2 * sim::tx_time(gbps(10), 1500) - 2 * us(1);
  return cfg;
}

TEST(Fig5Incast, PfcOscillatesBetweenXonAndXoff) {
  ScenarioConfig cfg = fig5_config();
  cfg.fc = FcSetup::pfc(80'000, 77'000);
  auto s = make_incast(cfg, 2);
  net::Network& net = s.fabric->net();
  stats::TimeSeries queue;
  std::int64_t q_max = 0, q_min_steady = 1 << 30;
  int transitions = 0;
  bool above = false;
  stats::PeriodicProbe probe(net.sched(), us(5), [&](sim::TimePs now) {
    const auto q = s.fabric->ingress_queue_bytes(s.info.sw, s.info.senders[0]);
    queue.add(now, static_cast<double>(q));
    q_max = std::max(q_max, q);
    if (now > ms(2)) {
      q_min_steady = std::min(q_min_steady, q);
      const bool now_above = q >= 80'000;
      if (now_above != above) ++transitions;
      above = now_above;
    }
  });
  net.run_until(ms(6));
  // Queue oscillates around XON/XOFF: repeatedly crosses the threshold.
  EXPECT_GT(transitions, 10);
  EXPECT_GE(q_max, 80'000);
  EXPECT_EQ(net.counters().lossless_violations, 0u);
  // The upstream is repeatedly paused: hold-and-wait occurs (transiently).
  EXPECT_LT(q_min_steady, 78'000);
}

TEST(Fig5Incast, ConceptualGfcConvergesToBs) {
  ScenarioConfig cfg = fig5_config();
  cfg.fc = FcSetup::gfc_conceptual(50'000, 100'000);
  auto s = make_incast(cfg, 2);
  net::Network& net = s.fabric->net();
  net.run_until(ms(6));
  // Steady state: q = B_s = 75 KB, input rate = draining rate = 5 Gb/s.
  const auto q = s.fabric->ingress_queue_bytes(s.info.sw, s.info.senders[0]);
  EXPECT_NEAR(static_cast<double>(q), 75'000, 7'000);
  const double rate = s.fabric->egress_rate(s.info.senders[0], s.info.sw).gbps();
  EXPECT_NEAR(rate, 5.0, 0.5);
  EXPECT_EQ(net.counters().lossless_violations, 0u);
  // And the rate never went to zero: no hold-and-wait ever.
  EXPECT_FALSE(
      net.host(s.info.senders[0])->port(0).probe_hold_and_wait(net.sched().now()));
}

TEST(Fig5Incast, ConceptualGfcQueueNeverReachesBm) {
  ScenarioConfig cfg = fig5_config();
  // Theorem 4.1: B_0 = 50 KB <= B_m - 4*C*tau = 100 KB - 4*31.25 KB would
  // be violated with tau = 25 us! The paper's Fig 5 shows overshoot but no
  // overflow because the 2-to-1 drain is 5 Gb/s, not 0. We verify the
  // queue stays below B_m with the actual margin.
  cfg.fc = FcSetup::gfc_conceptual(50'000, 100'000);
  auto s = make_incast(cfg, 2);
  net::Network& net = s.fabric->net();
  std::int64_t q_max = 0;
  stats::PeriodicProbe probe(net.sched(), us(5), [&](sim::TimePs) {
    q_max = std::max(q_max,
                     s.fabric->ingress_queue_bytes(s.info.sw, s.info.senders[0]));
  });
  net.run_until(ms(6));
  EXPECT_LT(q_max, 100'000);
  EXPECT_EQ(net.counters().lossless_violations, 0u);
}

TEST(Fig5Incast, BufferGfcStepsThroughStages) {
  ScenarioConfig cfg = fig5_config();
  cfg.fc = FcSetup::gfc_buffer(50'000, 100'000);
  auto s = make_incast(cfg, 2);
  net::Network& net = s.fabric->net();
  std::set<std::int64_t> rates_seen;
  stats::PeriodicProbe probe(net.sched(), us(5), [&](sim::TimePs) {
    rates_seen.insert(s.fabric->egress_rate(s.info.senders[0], s.info.sw).bps);
  });
  net.run_until(ms(6));
  // The step mapping only ever programs C/2^k values.
  for (const std::int64_t r : rates_seen) {
    bool is_stage_rate = false;
    for (int k = 0; k <= 20; ++k)
      if (r == gbps(10).bps >> k || r == core::kDefaultMinRate.bps)
        is_stage_rate = true;
    EXPECT_TRUE(is_stage_rate) << r;
  }
  // Steady state must sit at the 5 Gb/s stage (the drain rate).
  EXPECT_EQ(s.fabric->egress_rate(s.info.senders[0], s.info.sw), gbps(5));
  EXPECT_EQ(net.counters().lossless_violations, 0u);
}

TEST(Fig5Incast, TimeGfcConvergesSmoothly) {
  ScenarioConfig cfg = fig5_config();
  cfg.fc = FcSetup::gfc_time(40'000, 100'000, us(52.4));
  auto s = make_incast(cfg, 2);
  net::Network& net = s.fabric->net();
  net.run_until(ms(10));
  const double rate = s.fabric->egress_rate(s.info.senders[0], s.info.sw).gbps();
  EXPECT_NEAR(rate, 5.0, 0.75);
  EXPECT_EQ(net.counters().lossless_violations, 0u);
}

}  // namespace
}  // namespace gfc::runner
