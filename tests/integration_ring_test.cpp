// Integration tests on the Figure 1 scenario: a 3-switch ring where every
// inter-switch link carries two line-rate flows. PFC and CBFC must trap in
// deadlock; buffer-based and time-based GFC must keep all flows moving at
// the fair 5 Gb/s share. This is the paper's core claim.
#include <gtest/gtest.h>

#include "runner/scenarios.hpp"
#include "stats/throughput.hpp"

namespace gfc::runner {
namespace {

struct RingResult {
  bool deadlocked = false;
  sim::TimePs deadlock_at = -1;
  double per_host_gbps_tail = 0;  // mean delivered rate per host, last 25%
  std::uint64_t violations = 0;
  std::int64_t max_ingress_seen = 0;
};

RingResult run_ring(FcKind kind, sim::TimePs duration = sim::ms(20),
                    std::int64_t buffer = 300'000,
                    net::SwitchArch arch = net::SwitchArch::kOutputQueuedFifo) {
  ScenarioConfig cfg;
  cfg.switch_buffer = buffer;
  cfg.arch = arch;
  cfg.fc = FcSetup::derive(kind, buffer, cfg.link.rate, cfg.tau());
  RingScenario s = make_ring(cfg);
  net::Network& net = s.fabric->net();
  stats::ThroughputSampler throughput(net, sim::us(100));
  stats::DeadlockDetector detector(net);
  RingResult out;
  // Track the peak ingress occupancy on S1's port from S0.
  stats::PeriodicProbe probe(net.sched(), sim::us(50), [&](sim::TimePs) {
    const auto q = s.fabric->ingress_queue_bytes(s.info.switches[1],
                                                 s.info.switches[0]);
    out.max_ingress_seen = std::max(out.max_ingress_seen, q);
  });
  net.run_until(duration);
  out.deadlocked = detector.deadlocked();
  out.deadlock_at = detector.detected_at();
  out.per_host_gbps_tail =
      throughput.average_gbps(0, duration * 3 / 4, duration) / 3.0;
  out.violations = net.counters().lossless_violations;
  return out;
}

TEST(RingDeadlock, PfcTrapsInDeadlock) {
  const RingResult r = run_ring(FcKind::kPfc);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_GT(r.deadlock_at, 0);
  // Once dead, nothing is delivered any more.
  EXPECT_LT(r.per_host_gbps_tail, 0.2);
  EXPECT_EQ(r.violations, 0u);
}

TEST(RingDeadlock, CbfcTrapsInDeadlock) {
  const RingResult r = run_ring(FcKind::kCbfc);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_LT(r.per_host_gbps_tail, 0.2);
  EXPECT_EQ(r.violations, 0u);
}

// On the fair-crossbar architecture GFC settles at the paper's numbers:
// every host at exactly the 5 Gb/s fair share, queues steady, no deadlock.
TEST(RingDeadlock, GfcBufferFairShareOnCrossbar) {
  const RingResult r = run_ring(FcKind::kGfcBuffer, sim::ms(20), 300'000,
                                net::SwitchArch::kCioqRoundRobin);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_NEAR(r.per_host_gbps_tail, 5.0, 0.5);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_LE(r.max_ingress_seen, 300'000);
}

TEST(RingDeadlock, GfcTimeFairShareOnCrossbar) {
  const RingResult r = run_ring(FcKind::kGfcTime, sim::ms(20), 300'000,
                                net::SwitchArch::kCioqRoundRobin);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_NEAR(r.per_host_gbps_tail, 5.0, 0.5);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_LE(r.max_ingress_seen, 300'000);
}

TEST(RingDeadlock, GfcConceptualFairShareOnCrossbar) {
  const RingResult r = run_ring(FcKind::kGfcConceptual, sim::ms(20), 300'000,
                                net::SwitchArch::kCioqRoundRobin);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_NEAR(r.per_host_gbps_tail, 5.0, 0.5);
  EXPECT_EQ(r.violations, 0u);
}

// On the same output-queued switches where PFC/CBFC freeze permanently,
// GFC keeps every port moving: no deadlock and sustained forward progress —
// the paper's core claim (rates are never driven to zero, so no
// hold-and-wait). Note: on a *saturated cycle* with arrival-order FIFOs
// the achieved rate sits far below the fair share (deep mapping stages);
// the fair 5 Gb/s of Figs 9/10 additionally needs per-source-fair
// arbitration (the crossbar tests above).
void expect_no_hold_and_wait(net::Network& net) {
  for (std::size_t n = 0; n < net.node_count(); ++n) {
    net::Node& node = net.node(static_cast<net::NodeId>(n));
    for (int p = 0; p < node.port_count(); ++p)
      EXPECT_FALSE(node.port(p).probe_hold_and_wait(net.sched().now()))
          << node.name() << " port " << p;
  }
}

TEST(RingDeadlock, GfcBufferNoHoldAndWaitOnOutputQueued) {
  ScenarioConfig cfg;
  cfg.fc = FcSetup::derive(FcKind::kGfcBuffer, cfg.switch_buffer,
                           cfg.link.rate, cfg.tau());
  RingScenario s = make_ring(cfg);
  stats::DeadlockDetector detector(s.fabric->net());
  s.fabric->net().run_until(sim::ms(20));
  EXPECT_FALSE(detector.deadlocked());
  // The paper's exact claim: no port is ever in hold-and-wait — every
  // blocked port has a self-scheduled wake (a rate-limiter timer).
  expect_no_hold_and_wait(s.fabric->net());
  EXPECT_EQ(s.fabric->net().counters().lossless_violations, 0u);
}

TEST(RingDeadlock, GfcTimeNoHoldAndWaitOnOutputQueued) {
  ScenarioConfig cfg;
  cfg.fc = FcSetup::derive(FcKind::kGfcTime, cfg.switch_buffer,
                           cfg.link.rate, cfg.tau());
  RingScenario s = make_ring(cfg);
  stats::DeadlockDetector detector(s.fabric->net());
  s.fabric->net().run_until(sim::ms(20));
  EXPECT_FALSE(detector.deadlocked());
  expect_no_hold_and_wait(s.fabric->net());
  EXPECT_EQ(s.fabric->net().counters().lossless_violations, 0u);
}

// Ablation: under fair (round-robin) arbitration, the static symmetric
// ring reaches a stable fluid equilibrium even under PFC — deadlock
// formation depends on arrival-order (proportional) arbitration.
TEST(RingDeadlock, PfcStableUnderFairArbitration) {
  const RingResult r = run_ring(FcKind::kPfc, sim::ms(20), 300'000,
                                net::SwitchArch::kCioqRoundRobin);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_NEAR(r.per_host_gbps_tail, 5.0, 0.5);
  EXPECT_EQ(r.violations, 0u);
}

TEST(RingDeadlock, NoFlowControlViolatesLosslessness) {
  // Sanity check of the invariant machinery itself: with no flow control
  // the 2x overload must overflow ingress buffers.
  const RingResult r = run_ring(FcKind::kNone, sim::ms(5));
  EXPECT_GT(r.violations, 0u);
}

TEST(RingDeadlock, TestbedParametersReproduceSec61) {
  // Exact parameters of Sec 6.1: 1 MB buffer, tau = 90 us (software
  // switches), XOFF 800 KB / XON 797 KB vs buffer-based GFC B1 = 750 KB.
  ScenarioConfig cfg;
  cfg.switch_buffer = 1'000'000;
  cfg.control_delay = sim::us(90) - 2 * sim::us(1) - 2 * sim::us(1.2);
  cfg.fc = FcSetup::pfc(800'000, 797'000);
  {
    RingScenario s = make_ring(cfg);
    stats::DeadlockDetector detector(s.fabric->net());
    s.fabric->net().run_until(sim::ms(40));
    EXPECT_TRUE(detector.deadlocked());
    EXPECT_EQ(s.fabric->net().counters().lossless_violations, 0u);
  }
  cfg.fc = FcSetup::gfc_buffer(750'000, 1'000'000);
  cfg.arch = net::SwitchArch::kCioqRoundRobin;
  {
    RingScenario s = make_ring(cfg);
    net::Network& net = s.fabric->net();
    stats::ThroughputSampler tp(net, sim::us(100));
    stats::DeadlockDetector detector(net);
    net.run_until(sim::ms(40));
    EXPECT_FALSE(detector.deadlocked());
    EXPECT_NEAR(tp.average_gbps(0, sim::ms(30), sim::ms(40)) / 3.0, 5.0, 0.5);
    EXPECT_EQ(net.counters().lossless_violations, 0u);
  }
  // Time-based GFC with the testbed parameters: the paper reports the
  // queue stabilizing at 745 KB and the input rate at 5 Gb/s (Fig 10(b)).
  cfg.fc = FcSetup::gfc_time(492'000, 1'000'000, sim::us(52.4));
  {
    RingScenario s = make_ring(cfg);
    net::Network& net = s.fabric->net();
    stats::DeadlockDetector detector(net);
    net.run_until(sim::ms(40));
    EXPECT_FALSE(detector.deadlocked());
    const auto q = s.fabric->ingress_queue_bytes(s.info.switches[1], s.info.hosts[1]);
    EXPECT_NEAR(static_cast<double>(q), 745'000.0, 30'000.0);
    EXPECT_EQ(net.counters().lossless_violations, 0u);
  }
}

}  // namespace
}  // namespace gfc::runner
