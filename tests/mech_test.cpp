// Mechanism-baselines subsystem (src/mech): registry round-trips, DCFIT
// detect-and-break on the Figure 1 ring (where plain PFC wedges forever),
// DCFIT false-positive discipline on cycle-free scenarios, and CBD-free
// up*/down* routing.
#include <gtest/gtest.h>

#include "mech/cbd_routing.hpp"
#include "mech/dcfit.hpp"
#include "mech/registry.hpp"
#include "runner/scenarios.hpp"
#include "stats/throughput.hpp"
#include "topo/builders.hpp"
#include "topo/cbd.hpp"
#include "topo/scenario_gen.hpp"

namespace gfc::mech {
namespace {

runner::ScenarioConfig config_for(const MechSpec& spec,
                                  std::int64_t buffer = 300'000) {
  runner::ScenarioConfig cfg;
  cfg.switch_buffer = buffer;
  const auto fc = setup_for(spec, buffer, cfg.link.rate, cfg.tau());
  EXPECT_TRUE(fc.has_value()) << spec.name;
  cfg.fc = *fc;
  return cfg;
}

// --- registry -------------------------------------------------------------

TEST(MechRegistry, EveryMechanismRoundTrips) {
  const auto& mechs = all_mechanisms();
  ASSERT_GE(mechs.size(), 10u);
  for (const MechSpec& spec : mechs) {
    SCOPED_TRACE(spec.name);
    // name -> spec
    const MechSpec* found = find_mechanism(spec.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->kind, spec.kind);
    // spec -> setup (derivable at the default 300 KB buffer)
    runner::ScenarioConfig probe;
    const auto fc = setup_for(spec, 300'000, probe.link.rate, probe.tau());
    ASSERT_TRUE(fc.has_value());
    EXPECT_EQ(fc->kind, spec.kind);
    EXPECT_EQ(fc->cbd_free_routing, spec.cbd_free_routing);
    // setup -> name (summary labels invert the registry)
    EXPECT_EQ(summary_label(*fc), spec.name);
  }
}

TEST(MechRegistry, UnknownNameRejected) {
  EXPECT_EQ(find_mechanism("bogus"), nullptr);
  EXPECT_EQ(find_mechanism(""), nullptr);
  EXPECT_EQ(find_mechanism("pfc"), nullptr);  // names are case-sensitive
}

TEST(MechRegistry, MatrixRowOrderIsStable) {
  // The benches key their JSON and reports on these exact names, in this
  // exact order; reordering breaks golden comparisons.
  const auto& mechs = all_mechanisms();
  ASSERT_EQ(mechs.size(), 10u);
  EXPECT_EQ(mechs.front().name, "PFC");
  EXPECT_EQ(mechs[4].name, "GFC-buffer");
  EXPECT_EQ(mechs[7].name, "DCFIT-drop");
  EXPECT_EQ(mechs[8].name, "DCFIT-bypass");
  EXPECT_EQ(mechs.back().name, "CBD-routing");
}

// --- DCFIT on the deadlocking ring ---------------------------------------

struct DcfitRingResult {
  bool deadlocked = false;
  double tail_gbps = 0.0;
  std::uint64_t violations = 0;
  DcfitTotals totals;
};

DcfitRingResult run_dcfit_ring(const char* mech_name,
                               sim::TimePs duration = sim::ms(20)) {
  const MechSpec* spec = find_mechanism(mech_name);
  EXPECT_NE(spec, nullptr);
  runner::ScenarioConfig cfg = config_for(*spec);
  runner::RingScenario s = runner::make_ring(cfg);
  net::Network& net = s.fabric->net();
  stats::ThroughputSampler tp(net, sim::us(100));
  stats::DeadlockDetector det(net);
  net.run_until(duration);
  DcfitRingResult out;
  out.deadlocked = det.deadlocked();
  out.tail_gbps = tp.average_gbps(0, duration * 3 / 4, duration) / 3.0;
  out.violations = net.counters().lossless_violations;
  out.totals = collect_dcfit(net);
  return out;
}

TEST(DcfitRing, DropOneDetectsAndBreaksTheFigure1Deadlock) {
  const DcfitRingResult r = run_dcfit_ring("DCFIT-drop");
  // The cycle forms (same PFC thresholds that wedge plain PFC), the
  // trigger comes home within microseconds, and each drop releases it.
  // With *persistent* line-rate flows the cycle immediately re-forms, so
  // detection repeats — and the ground-truth scanner, sampling at 1 ms,
  // still sees a closed wait cycle at scan instants. The claim is not
  // "never wedged": it is that traffic keeps flowing where plain PFC
  // delivers exactly nothing after the wedge (tail < 0.2 Gb/s, see
  // integration_ring_test).
  EXPECT_GT(r.totals.detections, 1);  // break, re-form, break again
  EXPECT_GT(r.totals.packets_sacrificed, 0u);
  EXPECT_EQ(r.totals.bypasses, 0);
  EXPECT_GT(r.tail_gbps, 0.5);
  // Detection is a trigger round trip: microseconds, not the ground-truth
  // scanner's milliseconds.
  EXPECT_GT(r.totals.first_detection_latency, 0);
  EXPECT_LT(r.totals.first_detection_latency, sim::ms(1));
  // Drop-one sacrifices packets; losslessness is otherwise intact.
  EXPECT_EQ(r.violations, 0u);
}

TEST(DcfitRing, BypassDetectsAndKeepsTheRingMoving) {
  const DcfitRingResult r = run_dcfit_ring("DCFIT-bypass");
  EXPECT_GT(r.totals.detections, 1);
  EXPECT_GT(r.totals.bypasses, 0);
  EXPECT_EQ(r.totals.packets_sacrificed, 0u);
  EXPECT_GT(r.tail_gbps, 0.5);
}

// --- DCFIT false-positive discipline -------------------------------------

TEST(DcfitIncast, ZeroFalsePositivesAcrossSeeds) {
  // Incast has no cyclic buffer dependency: pauses fire (the receiver link
  // is 4x oversubscribed) but every chain heads at a host, so no trigger
  // can return home. Any detection or false positive here is a bug.
  const MechSpec* spec = find_mechanism("DCFIT-drop");
  ASSERT_NE(spec, nullptr);
  for (const int senders : {4, 8}) {
    for (const std::uint64_t seed : {1u, 7u, 42u}) {
      SCOPED_TRACE(testing::Message() << senders << " senders, seed " << seed);
      runner::ScenarioConfig cfg = config_for(*spec);
      cfg.seed = seed;
      runner::IncastScenario s = runner::make_incast(cfg, senders);
      net::Network& net = s.fabric->net();
      stats::DeadlockDetector det(net);
      net.run_until(sim::ms(10));
      const DcfitTotals t = collect_dcfit(net);
      EXPECT_EQ(t.detections, 0);
      EXPECT_EQ(t.false_positives, 0);
      EXPECT_EQ(t.packets_sacrificed, 0u);
      EXPECT_FALSE(det.deadlocked());
      EXPECT_EQ(net.counters().lossless_violations, 0u);
    }
  }
}

// --- CBD-free routing -----------------------------------------------------

TEST(CbdFreeRoutes, RingBecomesCbdFreeAndStaysConnected) {
  topo::Topology t;
  const topo::RingInfo info = topo::build_ring(t, 3);
  RoutingStats stats;
  const topo::RoutingTable routes = cbd_free_routes(t, &stats);
  EXPECT_TRUE(stats.cbd_free);
  EXPECT_FALSE(topo::cbd_prone(t, routes));
  EXPECT_EQ(stats.unroutable_pairs, 0u);
  EXPECT_EQ(stats.pairs, 6u);  // 3 hosts, ordered pairs
  for (const topo::NodeIndex a : t.hosts())
    for (const topo::NodeIndex b : t.hosts())
      if (a != b) {
        EXPECT_GE(routes.trace(a, b, 0).size(), 3u);
      }
  (void)info;
}

TEST(CbdFreeRoutes, FatTreesAreCbdFreeAcrossFailureSeeds) {
  for (const std::uint64_t seed : {3u, 5u, 11u}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    topo::Topology t;
    topo::build_fattree(t, 4);
    sim::Rng rng(seed);
    topo::random_failures(t, rng, 0.05);
    RoutingStats stats;
    const topo::RoutingTable routes = cbd_free_routes(t, &stats);
    EXPECT_TRUE(stats.cbd_free);
    EXPECT_FALSE(topo::cbd_prone(t, routes));
    // random_failures keeps hosts connected, so up*/down* must still
    // serve every pair (possibly with stretch).
    EXPECT_EQ(stats.unroutable_pairs, 0u);
    EXPECT_GE(stats.avg_stretch, 1.0);
    EXPECT_GE(stats.load_imbalance, 1.0);
  }
}

TEST(CbdFreeRoutes, PristineFatTreeKeepsShortestPaths) {
  // A failure-free fat-tree is already hierarchical: up*/down* restriction
  // should cost nothing (stretch exactly 1 on every pair).
  topo::Topology t;
  topo::build_fattree(t, 4);
  RoutingStats stats;
  cbd_free_routes(t, &stats);
  EXPECT_TRUE(stats.cbd_free);
  EXPECT_EQ(stats.unroutable_pairs, 0u);
  EXPECT_DOUBLE_EQ(stats.max_stretch, 1.0);
}

TEST(CbdRoutingRing, PfcOnRestrictedRoutesNeverDeadlocks) {
  // The acceptance headline's avoidance row: same PFC that wedges on the
  // clockwise ring, but on up*/down* tables — no CBD, so no deadlock.
  const MechSpec* spec = find_mechanism("CBD-routing");
  ASSERT_NE(spec, nullptr);
  runner::ScenarioConfig cfg = config_for(*spec);
  runner::RingScenario s = runner::make_ring(cfg);
  EXPECT_TRUE(s.route_stats.cbd_free);
  net::Network& net = s.fabric->net();
  stats::ThroughputSampler tp(net, sim::us(100));
  stats::DeadlockDetector det(net);
  net.run_until(sim::ms(20));
  EXPECT_FALSE(det.deadlocked());
  EXPECT_EQ(net.counters().lossless_violations, 0u);
  EXPECT_GT(tp.average_gbps(0, sim::ms(15), sim::ms(20)) / 3.0, 1.0);
}

}  // namespace
}  // namespace gfc::mech
