// Unit tests for the network substrate: packet pool, links/serialization,
// egress port queueing and gating, switch forwarding and ingress
// accounting, host send/receive machinery.
#include <gtest/gtest.h>

#include "net/ecmp.hpp"
#include "net/network.hpp"

namespace gfc::net {
namespace {

using sim::gbps;
using sim::us;

TEST(PacketPool, AcquireGivesFreshZeroedPackets) {
  PacketPool pool;
  Packet* a = pool.acquire();
  a->size_bytes = 999;
  a->ecn_ce = true;
  const auto id_a = a->id;
  pool.release(a);
  Packet* b = pool.acquire();  // recycles the slot
  EXPECT_EQ(b->size_bytes, 0);
  EXPECT_FALSE(b->ecn_ce);
  EXPECT_NE(b->id, id_a);  // ids never repeat
  pool.release(b);
  EXPECT_EQ(pool.live_count(), 0u);
}

TEST(PacketPool, ManyPacketsSpanChunks) {
  PacketPool pool;
  std::vector<Packet*> pkts;
  for (int i = 0; i < 5000; ++i) pkts.push_back(pool.acquire());
  EXPECT_EQ(pool.live_count(), 5000u);
  for (Packet* p : pkts) pool.release(p);
  EXPECT_EQ(pool.live_count(), 0u);
}

TEST(Ecmp, DeterministicAndSpread) {
  EXPECT_EQ(ecmp_select(42, 7, 4), ecmp_select(42, 7, 4));
  int histogram[4] = {0, 0, 0, 0};
  for (std::uint64_t salt = 0; salt < 400; ++salt)
    ++histogram[ecmp_select(salt, 3, 4)];
  for (int h : histogram) EXPECT_GT(h, 50);  // roughly uniform
}

class TwoHostFixture : public ::testing::Test {
 protected:
  // H0 --- S0 --- H1, 10G links, 1 us propagation.
  void SetUp() override {
    h0_ = net_.add_host("H0").id();
    h1_ = net_.add_host("H1").id();
    s0_ = net_.add_switch("S0", 300'000).id();
    net_.connect(h0_, s0_, gbps(10), us(1));
    net_.connect(h1_, s0_, gbps(10), us(1));
    net_.sw(s0_)->set_route(h0_, {0});
    net_.sw(s0_)->set_route(h1_, {1});
  }
  Network net_;
  NodeId h0_, h1_, s0_;
};

TEST_F(TwoHostFixture, SinglepacketTiming) {
  net_.create_flow(h0_, h1_, 0, 1500, 0);
  net_.run_until(sim::ms(1));
  // Store-and-forward: 2 serializations (1.2us each) + 2 propagations (1us).
  EXPECT_EQ(net_.counters().data_packets_delivered, 1u);
  const Flow& f = net_.flow(0);
  EXPECT_EQ(f.finish_time, us(1.2) + us(1) + us(1.2) + us(1));
}

TEST_F(TwoHostFixture, FlowCompletionAccounting) {
  net_.create_flow(h0_, h1_, 0, 15'000, 0);  // 10 MTU-size packets
  net_.run_until(sim::ms(1));
  const Flow& f = net_.flow(0);
  EXPECT_TRUE(f.completed());
  EXPECT_EQ(f.bytes_delivered, 15'000);
  EXPECT_EQ(net_.counters().flows_completed, 1u);
  EXPECT_EQ(net_.counters().data_packets_delivered, 10u);
  EXPECT_EQ(net_.counters().lossless_violations, 0u);
}

TEST_F(TwoHostFixture, SubMtuTailPacket) {
  net_.create_flow(h0_, h1_, 0, 1600, 0);  // 1500 + 100
  net_.run_until(sim::ms(1));
  EXPECT_EQ(net_.counters().data_packets_delivered, 2u);
  EXPECT_EQ(net_.flow(0).bytes_delivered, 1600);
}

TEST_F(TwoHostFixture, UnboundedFlowKeepsSending) {
  net_.create_flow(h0_, h1_, 0, Flow::kUnbounded, 0);
  net_.run_until(sim::ms(2));
  // ~10 Gb/s for 2 ms = 2.5 MB minus ramp; expect > 2 MB delivered.
  EXPECT_GT(net_.counters().data_bytes_delivered, 2'000'000);
  EXPECT_FALSE(net_.flow(0).completed());
}

TEST_F(TwoHostFixture, LineRateThroughput) {
  net_.create_flow(h0_, h1_, 0, Flow::kUnbounded, 0);
  net_.run_until(sim::ms(5));
  const double gbps_measured =
      static_cast<double>(net_.counters().data_bytes_delivered) * 8.0 /
      sim::to_seconds(sim::ms(5)) / 1e9;
  EXPECT_NEAR(gbps_measured, 10.0, 0.1);
}

TEST_F(TwoHostFixture, DelayedFlowStart) {
  net_.create_flow(h0_, h1_, 0, 1500, us(100));
  net_.run_until(us(99));
  EXPECT_EQ(net_.counters().data_packets_delivered, 0u);
  net_.run_until(sim::ms(1));
  EXPECT_EQ(net_.counters().data_packets_delivered, 1u);
  EXPECT_EQ(net_.flow(0).finish_time, us(100) + us(1.2) + us(1) + us(1.2) + us(1));
}

TEST_F(TwoHostFixture, SenderPacingHonorsSendRate) {
  Flow& f = net_.create_flow(h0_, h1_, 0, Flow::kUnbounded, 0);
  f.send_rate = gbps(2);
  net_.run_until(sim::ms(5));
  const double gbps_measured =
      static_cast<double>(net_.counters().data_bytes_delivered) * 8.0 /
      sim::to_seconds(sim::ms(5)) / 1e9;
  EXPECT_NEAR(gbps_measured, 2.0, 0.1);
}

TEST_F(TwoHostFixture, TwoFlowsShareNicFairly) {
  net_.create_flow(h0_, h1_, 0, Flow::kUnbounded, 0);
  net_.create_flow(h0_, h1_, 0, Flow::kUnbounded, 0);
  net_.run_until(sim::ms(4));
  const auto d0 = net_.flow(0).bytes_delivered;
  const auto d1 = net_.flow(1).bytes_delivered;
  EXPECT_NEAR(static_cast<double>(d0) / static_cast<double>(d1), 1.0, 0.05);
}

TEST_F(TwoHostFixture, IngressAccountingReturnsToZero) {
  net_.create_flow(h0_, h1_, 0, 15'000, 0);
  net_.run_until(sim::ms(1));
  for (int p = 0; p < net_.sw(s0_)->port_count(); ++p)
    EXPECT_EQ(net_.sw(s0_)->ingress_bytes_total(p), 0);
}

TEST_F(TwoHostFixture, UnroutablePacketCountsDrop) {
  NodeId h2 = net_.add_host("H2").id();
  net_.connect(h2, s0_, gbps(10), us(1));
  // No route installed for h2 as a destination.
  net_.create_flow(h0_, h2, 0, 1500, 0);
  net_.run_until(sim::ms(1));
  EXPECT_EQ(net_.counters().route_drops, 1u);
}

TEST_F(TwoHostFixture, PriorityQueuesIndependent) {
  net_.create_flow(h0_, h1_, 0, Flow::kUnbounded, 0);
  net_.create_flow(h0_, h1_, 3, Flow::kUnbounded, 0);
  net_.run_until(sim::ms(2));
  // Round-robin across priorities: both make progress.
  EXPECT_GT(net_.flow(0).bytes_delivered, 500'000);
  EXPECT_GT(net_.flow(1).bytes_delivered, 500'000);
}

// A gate that blocks data until opened (to exercise kick/wake machinery).
class BlockGate final : public TxGate {
 public:
  bool allowed(const Packet&, sim::TimePs, sim::TimePs*) override {
    return open_;
  }
  void on_transmit(const Packet&, sim::TimePs) override { ++transmitted_; }
  void open(EgressPort& port) {
    open_ = true;
    port.kick();
  }
  int transmitted() const { return transmitted_; }

 private:
  bool open_ = false;
  int transmitted_ = 0;
};

TEST_F(TwoHostFixture, GateBlocksUntilKicked) {
  auto gate = std::make_unique<BlockGate>();
  BlockGate* raw = gate.get();
  net_.host(h0_)->port(0).set_gate(std::move(gate));
  net_.create_flow(h0_, h1_, 0, 1500, 0);
  net_.run_until(sim::ms(1));
  EXPECT_EQ(net_.counters().data_packets_delivered, 0u);
  raw->open(net_.host(h0_)->port(0));
  net_.run_until(sim::ms(2));
  EXPECT_EQ(net_.counters().data_packets_delivered, 1u);
  EXPECT_EQ(raw->transmitted(), 1);
}

TEST_F(TwoHostFixture, HoldAndWaitProbe) {
  auto gate = std::make_unique<BlockGate>();
  BlockGate* raw = gate.get();
  net_.host(h0_)->port(0).set_gate(std::move(gate));
  net_.create_flow(h0_, h1_, 0, 1500, 0);
  net_.run_until(us(10));
  EXPECT_TRUE(net_.host(h0_)->port(0).probe_hold_and_wait(net_.sched().now()));
  raw->open(net_.host(h0_)->port(0));
  net_.run_until(sim::ms(1));
  EXPECT_FALSE(net_.host(h0_)->port(0).probe_hold_and_wait(net_.sched().now()));
}

TEST_F(TwoHostFixture, ControlFramesBypassBlockedData) {
  auto gate = std::make_unique<BlockGate>();
  net_.sw(s0_)->port(1).set_gate(std::move(gate));  // block S0 -> H1 data
  net_.create_flow(h0_, h1_, 0, 1500, 0);
  net_.run_until(us(50));
  EXPECT_EQ(net_.counters().data_packets_delivered, 0u);
  // Control frame jumps the blocked data queue.
  Packet* ctrl = net_.sw(s0_)->make_control(PacketType::kPfcPause);
  ctrl->fc_priority = 0;
  net_.sw(s0_)->send_control(1, ctrl);
  const auto before = net_.sw(s0_)->port(1).tx_control_frames();
  net_.run_until(us(60));
  EXPECT_EQ(net_.sw(s0_)->port(1).tx_control_frames(), before + 1);
}

TEST_F(TwoHostFixture, EcnThresholdMarking) {
  EcnConfig ecn;
  ecn.enabled = true;
  ecn.kmin = 3000;
  ecn.kmax = 3000;
  ecn.pmax = 1.0;
  net_.sw(s0_)->set_ecn(ecn);
  // Two senders into one receiver port overload it and build a queue.
  NodeId h2 = net_.add_host("H2").id();
  net_.connect(h2, s0_, gbps(10), us(1));
  net_.sw(s0_)->set_route(h2, {2});
  int marked = 0;
  class Listener : public DeliveryListener {
   public:
    explicit Listener(int& marked) : marked_(marked) {}
    void on_delivery(const Packet& pkt, sim::TimePs) override {
      if (pkt.ecn_ce) ++marked_;
    }
    int& marked_;
  } listener(marked);
  net_.add_delivery_listener(&listener);
  net_.create_flow(h0_, h1_, 0, Flow::kUnbounded, 0);
  net_.create_flow(h2, h1_, 0, Flow::kUnbounded, 0);
  net_.run_until(sim::ms(1));
  EXPECT_GT(marked, 10);
}

TEST(NetworkWiring, ConnectRecordsPeers) {
  Network net;
  const NodeId a = net.add_switch("A", 1000).id();
  const NodeId b = net.add_switch("B", 1000).id();
  const auto [pa, pb] = net.connect(a, b, gbps(40), us(2));
  EXPECT_EQ(net.node(a).peer(pa).node, b);
  EXPECT_EQ(net.node(a).peer(pa).port, pb);
  EXPECT_EQ(net.node(b).peer(pb).node, a);
  EXPECT_EQ(net.node(b).peer(pb).port, pa);
  EXPECT_EQ(net.node(a).port(pa).line_rate(), gbps(40));
}

}  // namespace
}  // namespace gfc::net
