// Parallel-core tests (src/par): the conservative tau-lookahead engine
// must be byte-identical to the single-threaded scheduler at every shard
// count — not approximately equal, the same results-store/trace/flight
// bytes — and the shard partitioner, the de-biased ECMP hash, and the
// shard-aware watchdog path are pinned here. Suites are named Par* /
// EcmpSelect* so the CI ThreadSanitizer job picks them up by filter.
#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/progress.hpp"
#include "exp/worker_pool.hpp"
#include "net/ecmp.hpp"
#include "par/engine.hpp"
#include "runner/scenarios.hpp"
#include "stats/deadlock.hpp"
#include "topo/builders.hpp"
#include "topo/partition.hpp"
#include "trace/export.hpp"

namespace gfc::runner {
namespace {

using sim::ms;
using sim::us;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

TEST(ParPartition, OneShardIsAllZeros) {
  topo::Topology t;
  topo::build_ring(t, 8);
  const std::vector<int> shard = topo::partition(t, 1);
  ASSERT_EQ(shard.size(), t.node_count());
  for (int s : shard) EXPECT_EQ(s, 0);
  EXPECT_EQ(topo::partition_cut(t, shard), 0u);
}

TEST(ParPartition, RingSplitsIntoContiguousBlocks) {
  // 8 unlabeled ring switches over 2 shards: contiguous index blocks cut
  // exactly two switch<->switch wires; host wires never cross (hosts ride
  // with their rack).
  topo::Topology t;
  topo::build_ring(t, 8);
  const std::vector<int> shard = topo::partition(t, 2, /*seed=*/0);
  EXPECT_EQ(topo::partition_cut(t, shard), 2u);
  for (topo::NodeIndex h : t.hosts())
    EXPECT_EQ(shard[static_cast<std::size_t>(h)],
              shard[static_cast<std::size_t>(t.rack_of(h))]);
}

TEST(ParPartition, FatTreePodsStayTogetherAndHostsFollowRacks) {
  topo::Topology t;
  const topo::FatTreeInfo info = topo::build_fattree(t, 4);
  const std::vector<int> shard = topo::partition(t, 2, /*seed=*/1);
  ASSERT_EQ(shard.size(), t.node_count());
  // Every switch in a pod lands on one shard (the intra-pod edge<->agg
  // mesh never crosses the cut).
  for (int pod = 0; pod < info.k; ++pod) {
    const int ref = shard[static_cast<std::size_t>(info.edge(pod, 0))];
    for (int i = 0; i < info.k / 2; ++i) {
      EXPECT_EQ(shard[static_cast<std::size_t>(info.edge(pod, i))], ref);
      EXPECT_EQ(shard[static_cast<std::size_t>(info.agg(pod, i))], ref);
    }
    for (int i = 0; i < info.k * info.k / 4; ++i)
      EXPECT_EQ(shard[static_cast<std::size_t>(info.host(pod, i))], ref);
  }
  // Both shards are actually used.
  int hi = 0;
  for (int s : shard) hi = std::max(hi, s);
  EXPECT_EQ(hi, 1);
}

TEST(ParPartition, DeterministicForGivenInputs) {
  topo::Topology t;
  topo::build_fattree(t, 4);
  EXPECT_EQ(topo::partition(t, 3, 7), topo::partition(t, 3, 7));
  topo::Topology r;
  topo::build_ring(r, 6);
  EXPECT_EQ(topo::partition(r, 4, 9), topo::partition(r, 4, 9));
}

// ---------------------------------------------------------------------------
// ECMP selection: pow2 masking pinned (goldens depend on it), non-pow2
// de-biased via the Lemire multiply-shift.
// ---------------------------------------------------------------------------

TEST(EcmpSelect, PowerOfTwoPathIsPinnedToMasking) {
  for (std::uint64_t salt : {1ull, 42ull, 0x12345678ull, ~0ull}) {
    for (std::int32_t sw : {0, 1, 7, 1000}) {
      for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                            std::size_t{8}, std::size_t{64}}) {
        EXPECT_EQ(net::ecmp_select(salt, sw, n),
                  static_cast<std::size_t>(net::ecmp_hash(salt, sw) & (n - 1)));
      }
    }
  }
}

TEST(EcmpSelect, NonPowerOfTwoUsesMultiplyShift) {
  for (std::uint64_t salt : {3ull, 99ull, 0xDEADBEEFull}) {
    for (std::int32_t sw : {0, 5, 123}) {
      for (std::size_t n : {std::size_t{3}, std::size_t{5}, std::size_t{7},
                            std::size_t{12}}) {
        const std::uint64_t h = net::ecmp_hash(salt, sw);
        const auto expect = static_cast<std::size_t>(
            (static_cast<unsigned __int128>(h) * n) >> 64);
        EXPECT_EQ(net::ecmp_select(salt, sw, n), expect);
        EXPECT_LT(net::ecmp_select(salt, sw, n), n);
      }
    }
  }
}

TEST(EcmpSelect, NonPowerOfTwoIsRoughlyUniform) {
  // 30k hashed salts over 3 choices: the multiply-shift keeps every bucket
  // within 10% of the mean (the modulo path it replaced passes this too —
  // the point is catching a future regression to a biased mapping).
  constexpr int kTrials = 30000;
  int count[3] = {0, 0, 0};
  for (int i = 0; i < kTrials; ++i)
    ++count[net::ecmp_select(static_cast<std::uint64_t>(i) * 0x9E37u + 1, 17, 3)];
  for (int c : count) {
    EXPECT_GT(c, kTrials / 3 * 9 / 10);
    EXPECT_LT(c, kTrials / 3 * 11 / 10);
  }
}

// ---------------------------------------------------------------------------
// Engine gating: when the parallel core cannot help (or cannot keep its
// invariants) the Fabric silently runs the sequential engine.
// ---------------------------------------------------------------------------

TEST(ParEngine, OneShardLeavesSequentialEngine) {
  ScenarioConfig cfg;
  cfg.fc = FcSetup::derive(FcKind::kGfcBuffer, cfg.switch_buffer,
                           cfg.link.rate, cfg.tau());
  RingScenario s = make_ring(cfg);
  EXPECT_EQ(s.fabric->par_engine(), nullptr);
}

TEST(ParEngine, AttachesOnMultiSwitchTopology) {
  ScenarioConfig cfg;
  cfg.shards = 2;
  cfg.fc = FcSetup::derive(FcKind::kGfcBuffer, cfg.switch_buffer,
                           cfg.link.rate, cfg.tau());
  RingScenario s = make_ring(cfg, /*n_switches=*/4, /*hops=*/2);
  ASSERT_NE(s.fabric->par_engine(), nullptr);
  EXPECT_EQ(s.fabric->par_engine()->shard_count(), 2);
  EXPECT_GT(s.fabric->par_engine()->tau(), 0);
}

TEST(ParEngine, FaultInjectionPinsSequential) {
  ScenarioConfig cfg;
  cfg.shards = 4;
  cfg.fc = FcSetup::derive(FcKind::kGfcBuffer, cfg.switch_buffer,
                           cfg.link.rate, cfg.tau());
  fault::ControlFaultRates r;
  r.drop = 0.01;
  cfg.fault.set_all_control(r);
  RingScenario s = make_ring(cfg, /*n_switches=*/4, /*hops=*/2);
  EXPECT_EQ(s.fabric->par_engine(), nullptr);
}

TEST(ParEngine, SingleSwitchTopologyPinsSequential) {
  ScenarioConfig cfg;
  cfg.shards = 4;
  cfg.fc = FcSetup::derive(FcKind::kGfcBuffer, cfg.switch_buffer,
                           cfg.link.rate, cfg.tau());
  IncastScenario s = make_incast(cfg, /*n_senders=*/2);
  EXPECT_EQ(s.fabric->par_engine(), nullptr);
}

// ---------------------------------------------------------------------------
// Cross-shard determinism harness: golden scenarios at shards 1..4 must
// agree byte-for-byte on every summary field, counter, trace CSV, chrome
// JSON export, and flight-recorder dump.
// ---------------------------------------------------------------------------

struct Capture {
  RunSummary summary{};
  std::uint64_t events = 0;
  std::uint64_t packets = 0;
  std::int64_t data_bytes = 0;
  std::int64_t control_frames = 0;
  bool deadlocked = false;
  sim::TimePs detected_at = 0;
  std::string trace_csv;
  std::string chrome_json;
  std::string flight_dump;
  bool engine_attached = false;
};

void capture_exports(Fabric& fabric, Capture* c) {
  net::Network& net = fabric.net();
  c->events = net.executed_events();
  c->packets = net.packets_created();
  c->data_bytes = net.counters().data_bytes_delivered;
  c->control_frames = net.counters().control_frames_sent;
  c->engine_attached = fabric.par_engine() != nullptr;
  if (trace::Tracer* tr = fabric.tracer()) {
    std::ostringstream csv;
    trace::write_csv(csv, tr->buffer());
    c->trace_csv = csv.str();
    std::ostringstream chrome;
    trace::write_chrome_json(chrome, tr->buffer(), fabric.node_name_fn());
    c->chrome_json = chrome.str();
    if (const trace::FlightRecorder* fr = tr->flight()) {
      std::ostringstream flight;
      trace::write_flight_dump(flight, *fr, fabric.node_name_fn(),
                               "par determinism harness");
      c->flight_dump = flight.str();
    }
  }
}

ScenarioConfig traced_config(int shards) {
  ScenarioConfig cfg;
  cfg.shards = shards;
  cfg.trace.enabled = true;
  cfg.trace.capacity = std::size_t{1} << 17;
  cfg.fc = FcSetup::derive(FcKind::kGfcBuffer, cfg.switch_buffer,
                           cfg.link.rate, cfg.tau());
  return cfg;
}

Capture run_ring_traced(int shards) {
  ScenarioConfig cfg = traced_config(shards);
  RingScenario s = make_ring(cfg, /*n_switches=*/4, /*hops=*/2);
  s.fabric->net().run_until(ms(4));
  Capture c;
  capture_exports(*s.fabric, &c);
  return c;
}

Capture run_pfc_ring(int shards) {
  // Figure 9 PFC ring: deadlocks. Both the verdict and the exact
  // detection timestamp must be shard-count independent.
  ScenarioConfig cfg;
  cfg.shards = shards;
  cfg.fc = FcSetup::derive(FcKind::kPfc, cfg.switch_buffer, cfg.link.rate,
                           cfg.tau());
  RingScenario s = make_ring(cfg, /*n_switches=*/4, /*hops=*/2);
  stats::DeadlockDetector det(s.fabric->net());
  s.fabric->net().run_until(ms(15));
  Capture c;
  capture_exports(*s.fabric, &c);
  c.deadlocked = det.deadlocked();
  c.detected_at = det.detected_at();
  return c;
}

Capture run_random_fattree(int shards) {
  // Random 5% degraded k=4 fat-tree: failed links leave 3-way (non-pow2)
  // ECMP fan-outs, so this also covers the Lemire path end to end.
  ScenarioConfig cfg = traced_config(shards);
  FatTreeScenario s = make_random_fattree(cfg, 4, 0.05, /*topo_seed=*/17);
  RunOptions opts;
  opts.duration = ms(3);
  opts.workload_seed = 42;
  Capture c;
  c.summary = run_closed_loop(s, opts);
  capture_exports(*s.fabric, &c);
  return c;
}

void expect_identical(const Capture& ref, const Capture& got,
                      const std::string& what) {
  EXPECT_EQ(ref.events, got.events) << what;
  EXPECT_EQ(ref.packets, got.packets) << what;
  EXPECT_EQ(ref.data_bytes, got.data_bytes) << what;
  EXPECT_EQ(ref.control_frames, got.control_frames) << what;
  EXPECT_EQ(ref.deadlocked, got.deadlocked) << what;
  EXPECT_EQ(ref.detected_at, got.detected_at) << what;
  EXPECT_EQ(ref.summary.flows_completed, got.summary.flows_completed) << what;
  EXPECT_EQ(ref.summary.flows_started, got.summary.flows_started) << what;
  EXPECT_EQ(bits(ref.summary.per_host_gbps), bits(got.summary.per_host_gbps))
      << what;
  EXPECT_EQ(bits(ref.summary.mean_slowdown), bits(got.summary.mean_slowdown))
      << what;
  EXPECT_EQ(ref.summary.lossless_violations, got.summary.lossless_violations)
      << what;
  EXPECT_EQ(ref.trace_csv, got.trace_csv) << what;
  EXPECT_EQ(ref.chrome_json, got.chrome_json) << what;
  EXPECT_EQ(ref.flight_dump, got.flight_dump) << what;
}

TEST(ParDeterminism, RingTraceBytesIdenticalAcrossShardCounts) {
  const Capture ref = run_ring_traced(1);
  EXPECT_FALSE(ref.engine_attached);
  EXPECT_FALSE(ref.trace_csv.empty());
  for (int shards : {2, 3, 4}) {
    const Capture got = run_ring_traced(shards);
    expect_identical(ref, got, "shards=" + std::to_string(shards));
  }
}

TEST(ParDeterminism, PfcRingDeadlockVerdictIdenticalAcrossShardCounts) {
  const Capture ref = run_pfc_ring(1);
  EXPECT_TRUE(ref.deadlocked);
  for (int shards : {2, 4}) {
    const Capture got = run_pfc_ring(shards);
    expect_identical(ref, got, "shards=" + std::to_string(shards));
  }
}

TEST(ParDeterminism, RandomFatTreeIdenticalAcrossShardCounts) {
  const Capture ref = run_random_fattree(1);
  EXPECT_GT(ref.summary.flows_completed, 0);
  for (int shards : {2, 3, 4}) {
    const Capture got = run_random_fattree(shards);
    EXPECT_TRUE(got.engine_attached) << shards;
    expect_identical(ref, got, "shards=" + std::to_string(shards));
  }
}

TEST(ParDeterminism, ResultsStoreBytesIdenticalAcrossShardCounts) {
  // A small campaign's serialized results store — the bytes journals and
  // --json files are built from — must not depend on the shard count.
  const auto run = [](int shards) {
    exp::Campaign campaign;
    campaign.name = "par_results_probe";
    for (int i = 0; i < 2; ++i) {
      exp::ParamSet p;
      p.set("trial", static_cast<std::int64_t>(i));
      campaign.add("ring" + std::to_string(i), p, [shards, i] {
        ScenarioConfig cfg;
        cfg.shards = shards;
        cfg.seed = static_cast<std::uint64_t>(1 + i);
        cfg.fc = FcSetup::derive(FcKind::kGfcBuffer, cfg.switch_buffer,
                                 cfg.link.rate, cfg.tau());
        RingScenario s = make_ring(cfg, /*n_switches=*/4, /*hops=*/2);
        s.fabric->net().run_until(ms(2));
        exp::TrialResult out;
        out.add("events", static_cast<std::int64_t>(
                              s.fabric->net().executed_events()));
        out.add("data_bytes", s.fabric->net().counters().data_bytes_delivered);
        return out;
      });
    }
    return exp::run_campaign(campaign).json(/*include_timing=*/false);
  };
  const std::string seq = run(1);
  const std::string par = run(4);
  EXPECT_FALSE(seq.empty());
  EXPECT_EQ(seq, par);
}

TEST(ParDrainOrder, RepeatedParallelRunsAreByteIdentical) {
  // Thread-scheduling independence: the cross-shard mailbox drain and the
  // barrier merge must yield the same trace bytes on every repeat. Run
  // under ThreadSanitizer in CI, where any unsynchronized shared state in
  // the hand-off also trips the build.
  const Capture first = run_random_fattree(4);
  ASSERT_TRUE(first.engine_attached);
  for (int rep = 0; rep < 2; ++rep) {
    const Capture again = run_random_fattree(4);
    expect_identical(first, again, "rep=" + std::to_string(rep));
  }
}

// ---------------------------------------------------------------------------
// Shard-aware watchdog: a wedged single shard must still heartbeat and
// honor --trial-timeout cancellation even though the main scheduler (and
// its beacon timer) never advances past the stuck barrier window.
// ---------------------------------------------------------------------------

TEST(ParWatchdog, WedgedSingleShardStillHeartbeatsAndCancels) {
  exp::ProgressSink sink;
  exp::set_current_progress_sink(&sink);
  ScenarioConfig cfg;
  cfg.shards = 2;
  cfg.fc = FcSetup::derive(FcKind::kGfcBuffer, cfg.switch_buffer,
                           cfg.link.rate, cfg.tau());
  RingScenario s = make_ring(cfg, /*n_switches=*/4, /*hops=*/2);
  net::Network& net = s.fabric->net();
  ASSERT_NE(s.fabric->par_engine(), nullptr);

  // Wedge one shard: an event that reschedules itself at the same
  // timestamp forever, pinning that worker inside a single window while
  // every other scheduler blocks at the barrier. us(50) lands before the
  // first us(100) beacon, so any observed beat must come from the
  // engine-wide shard poll, not the main-scheduler timer.
  sim::Scheduler& wedged =
      net.node(static_cast<net::NodeId>(s.info.switches[0])).sched_ref();
  ASSERT_NE(&wedged, &net.sched());
  std::function<void()> spin = [&wedged, &spin] {
    wedged.schedule_at(wedged.now(), spin);
  };
  wedged.schedule_at(us(50), spin);

  std::thread canceller([&sink] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    sink.request_cancel();
  });
  EXPECT_THROW(net.run_until(ms(50)), exp::CancelledError);
  canceller.join();
  EXPECT_GT(sink.beats(), 0u);
  exp::set_current_progress_sink(nullptr);
}

}  // namespace
}  // namespace gfc::runner
