// Property-style parameterized sweeps of the paper's invariants:
//  P1  losslessness: no mechanism ever overflows an ingress buffer;
//  P2  GFC never enters hold-and-wait (every blocked port has a wake);
//  P3  the ring deadlocks under pause/credit mechanisms on arrival-order
//      switches, and never under any GFC variant, across buffer sizes,
//      link rates and ring sizes;
//  P4  work conservation: uncongested paths run at line rate regardless of
//      the flow-control mechanism;
//  P5  mapping-function invariants across a parameter grid.
#include <gtest/gtest.h>

#include "core/mapping.hpp"
#include "runner/scenarios.hpp"
#include "stats/throughput.hpp"

namespace gfc::runner {
namespace {

using sim::gbps;
using sim::ms;

std::string sanitize(std::string s) {
  for (char& c : s)
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  return s;
}

bool any_hold_and_wait(net::Network& net) {
  for (std::size_t n = 0; n < net.node_count(); ++n) {
    net::Node& node = net.node(static_cast<net::NodeId>(n));
    for (int p = 0; p < node.port_count(); ++p)
      if (node.port(p).probe_hold_and_wait(net.sched().now())) return true;
  }
  return false;
}

// --- P1 + P3: ring sweep over mechanisms x buffers x ring sizes ----------
struct RingParam {
  FcKind kind;
  std::int64_t buffer;
  int n_switches;
};
class RingSweep : public ::testing::TestWithParam<RingParam> {};

TEST_P(RingSweep, DeadlockAndLosslessInvariants) {
  const auto [kind, buffer, n] = GetParam();
  ScenarioConfig cfg;
  cfg.switch_buffer = buffer;
  cfg.fc = FcSetup::derive(kind, buffer, cfg.link.rate, cfg.tau());
  RingScenario s = make_ring(cfg, n, /*hops=*/2);
  stats::DeadlockDetector det(s.fabric->net());
  s.fabric->net().run_until(ms(25));
  const bool is_gfc = kind == FcKind::kGfcBuffer || kind == FcKind::kGfcTime ||
                      kind == FcKind::kGfcConceptual;
  EXPECT_EQ(s.fabric->net().counters().lossless_violations, 0u);  // P1
  if (is_gfc) {
    EXPECT_FALSE(det.deadlocked());          // P3 (GFC side)
    EXPECT_FALSE(any_hold_and_wait(s.fabric->net()));  // P2
  } else {
    EXPECT_TRUE(det.deadlocked());  // P3 (baseline side)
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RingSweep,
    ::testing::Values(
        RingParam{FcKind::kPfc, 150'000, 3}, RingParam{FcKind::kPfc, 300'000, 3},
        RingParam{FcKind::kPfc, 1'000'000, 3}, RingParam{FcKind::kPfc, 300'000, 4},
        RingParam{FcKind::kPfc, 300'000, 5}, RingParam{FcKind::kCbfc, 150'000, 3},
        RingParam{FcKind::kCbfc, 300'000, 3}, RingParam{FcKind::kCbfc, 1'000'000, 3},
        RingParam{FcKind::kCbfc, 300'000, 4},
        RingParam{FcKind::kGfcBuffer, 150'000, 3},
        RingParam{FcKind::kGfcBuffer, 300'000, 3},
        RingParam{FcKind::kGfcBuffer, 1'000'000, 3},
        RingParam{FcKind::kGfcBuffer, 300'000, 5},
        RingParam{FcKind::kGfcTime, 300'000, 3},
        RingParam{FcKind::kGfcTime, 1'000'000, 3},
        RingParam{FcKind::kGfcTime, 300'000, 4},
        RingParam{FcKind::kGfcConceptual, 300'000, 3}),
    [](const auto& info) {
      return sanitize(std::string(fc_name(info.param.kind)) + "_" +
                      std::to_string(info.param.buffer / 1000) + "KB_n" +
                      std::to_string(info.param.n_switches));
    });

// --- P4: work conservation on an uncongested line ------------------------
class LineRateSweep : public ::testing::TestWithParam<FcKind> {};

TEST_P(LineRateSweep, UncongestedPathRunsAtLineRate) {
  ScenarioConfig cfg;
  cfg.fc = FcSetup::derive(GetParam(), cfg.switch_buffer, cfg.link.rate,
                           cfg.tau());
  auto s = make_incast(cfg, 1);  // single sender: no congestion anywhere
  net::Network& net = s.fabric->net();
  stats::ThroughputSampler tp(net, sim::us(100));
  net.run_until(ms(5));
  EXPECT_NEAR(tp.average_gbps(0, ms(1), ms(5)), 10.0, 0.3)
      << fc_name(GetParam());
  EXPECT_EQ(net.counters().lossless_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, LineRateSweep,
                         ::testing::Values(FcKind::kNone, FcKind::kPfc,
                                           FcKind::kCbfc, FcKind::kGfcBuffer,
                                           FcKind::kGfcTime,
                                           FcKind::kGfcConceptual),
                         [](const auto& info) {
                           return sanitize(fc_name(info.param));
                         });

// --- P5: mapping invariants over a (rate, buffer) grid --------------------
struct MapParam {
  std::int64_t rate_gbps;
  std::int64_t buffer;
};
class MappingSweep : public ::testing::TestWithParam<MapParam> {};

TEST_P(MappingSweep, MultiStageInvariants) {
  const auto [rate, buffer] = GetParam();
  const sim::Rate c = gbps(static_cast<double>(rate));
  const sim::TimePs tau = core::worst_case_tau({c, 1500, sim::us(1), sim::us(3)});
  const std::int64_t b1 = core::b1_bound_buffer(buffer, c, tau);
  if (b1 <= 0) GTEST_SKIP() << "buffer below 2*C*tau";
  core::MultiStageMapping m(c, b1, buffer);
  // Boundaries strictly increase and stay within the buffer.
  for (int k = 1; k < m.num_stages(); ++k) {
    EXPECT_LT(m.boundary(k), m.boundary(k + 1));
    EXPECT_LE(m.boundary(k + 1), buffer);
  }
  // Eq. (5) halving of the remaining buffer (checked while the integer
  // byte grid can still represent the halving accurately).
  for (int k = 1; k + 1 <= m.num_stages(); ++k) {
    const double rem_k = static_cast<double>(buffer - m.boundary(k));
    const double rem_k1 = static_cast<double>(buffer - m.boundary(k + 1));
    if (rem_k1 < 1024) break;
    EXPECT_NEAR(rem_k / rem_k1, 2.0, 0.01);
  }
  // Eq. (3): R_k <= 3/4 R_{k-1} (we use 1/2, stricter).
  for (int k = 1; k <= m.num_stages(); ++k)
    EXPECT_LE(m.rate_of(k).bps, m.rate_of(k - 1).bps * 3 / 4);
  // stage_of and boundaries are mutually consistent.
  for (int k = 1; k <= m.num_stages(); ++k) {
    EXPECT_EQ(m.stage_of(m.boundary(k)), k);
    EXPECT_EQ(m.stage_of(m.boundary(k) - 1), k - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MappingSweep,
    ::testing::Values(MapParam{10, 300'000}, MapParam{10, 1'000'000},
                      MapParam{40, 300'000}, MapParam{40, 1'000'000},
                      MapParam{100, 400'000}, MapParam{100, 2'000'000},
                      MapParam{25, 500'000}, MapParam{10, 40'000}),
    [](const auto& info) {
      return std::to_string(info.param.rate_gbps) + "G_" +
             std::to_string(info.param.buffer / 1000) + "KB";
    });

// --- Determinism: identical seeds give identical runs --------------------
TEST(Determinism, IdenticalRunsByteForByte) {
  auto run = [] {
    ScenarioConfig cfg;
    cfg.switch_buffer = 300'000;
    cfg.fc = FcSetup::derive(FcKind::kGfcBuffer, cfg.switch_buffer,
                             cfg.link.rate, cfg.tau());
    auto s = make_random_fattree(cfg, 4, 0.05, 11);
    RunOptions opts;
    opts.duration = ms(8);
    const RunSummary r = run_closed_loop(s, opts);
    return std::make_tuple(r.per_host_gbps, r.flows_completed,
                           r.mean_slowdown);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace gfc::runner
