// Reference discrete-event scheduler for differential testing.
//
// This is the pooled 4-ary-min-heap engine that shipped in PR 1 (the
// pre-timing-wheel src/sim/scheduler.{hpp,cpp}), kept verbatim (merged into
// one header, renamed ReferenceScheduler) as the executable specification
// of the scheduler contract: time order, same-timestamp FIFO by schedule
// order, O(1) generation-tagged cancel, run_until/run_all/step semantics.
//
// tests/scheduler_differential_test.cpp and tests/scheduler_fuzz.cpp drive
// this engine and the production sim::Scheduler side-by-side on randomized
// workloads and assert identical execution traces. Keep the semantics here
// frozen; when the production engine's contract changes intentionally,
// change this file in the same commit and say so in the test.
//
// The two post-heap API additions (reschedule, clear) are implemented here
// with the straightforward heap semantics so the differential harness can
// exercise them too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"  // for sim::EventId and sim::TimePs
#include "sim/time.hpp"

namespace gfc::sim::testref {

class ReferenceScheduler {
 public:
  ReferenceScheduler() = default;
  ~ReferenceScheduler() { destroy_pending(); }
  ReferenceScheduler(const ReferenceScheduler&) = delete;
  ReferenceScheduler& operator=(const ReferenceScheduler&) = delete;

  TimePs now() const { return now_; }

  template <typename F>
  EventId schedule_at(TimePs t, F&& fn) {
    using Fn = std::decay_t<F>;
    if (t < now_) t = now_;  // past-dated events fire at now()
    const std::uint32_t idx = alloc_slot();
    Slot& s = *slot_ptr(idx);
    if constexpr (sizeof(Fn) <= kInlineStorage &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s.storage)) Fn(std::forward<F>(fn));
      s.run = [](void* p) {
        Fn* f = static_cast<Fn*>(p);
        (*f)();
        f->~Fn();
      };
      if constexpr (std::is_trivially_destructible_v<Fn>)
        s.destroy = nullptr;
      else
        s.destroy = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    } else {
      Fn* heap_fn = new Fn(std::forward<F>(fn));
      ::new (static_cast<void*>(s.storage)) Fn*(heap_fn);
      s.run = [](void* p) {
        Fn* f = *static_cast<Fn**>(p);
        (*f)();
        delete f;
      };
      s.destroy = [](void* p) { delete *static_cast<Fn**>(p); };
    }
    push_entry(HeapEntry{t, next_seq_++, idx, s.gen});
    ++live_;
    return EventId{(static_cast<std::uint64_t>(s.gen) << 32) |
                   (static_cast<std::uint64_t>(idx) + 1)};
  }

  template <typename F>
  EventId schedule_in(TimePs delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  bool cancel(EventId id) {
    Slot* s = lookup(id);
    if (s == nullptr) return false;
    if (s->destroy != nullptr) s->destroy(s->storage);
    release_slot(static_cast<std::uint32_t>(id.value & 0xFFFFFFFFu) - 1, *s);
    --live_;
    return true;
  }

  /// Move a pending event to absolute time `t` (clamped to now()), keeping
  /// its callback. Takes a fresh FIFO sequence number — exactly as if the
  /// event had been cancelled and re-scheduled at `t` — and returns the new
  /// id (the old id is invalidated). Returns the invalid id if the event
  /// already fired or was cancelled.
  EventId reschedule(EventId id, TimePs t) {
    Slot* s = lookup(id);
    if (s == nullptr) return EventId{};
    if (t < now_) t = now_;
    if (++s->gen == 0) s->gen = 1;  // invalidate the old id + heap entry
    const std::uint32_t idx =
        static_cast<std::uint32_t>(id.value & 0xFFFFFFFFu) - 1;
    push_entry(HeapEntry{t, next_seq_++, idx, s->gen});
    return EventId{(static_cast<std::uint64_t>(s->gen) << 32) |
                   (static_cast<std::uint64_t>(idx) + 1)};
  }

  // --- persistent timers --------------------------------------------------
  // Reference semantics for the production register_timer/arm_timer/
  // disarm_timer: a timer is a retained callback; arming is observably
  // cancel-of-the-pending-firing + schedule_at with a fresh FIFO sequence
  // number (exactly what arm_timer's gen-bump + re-insert does).

  template <typename F>
  TimerId register_timer(F&& fn) {
    timers_.push_back(Timer{std::function<void()>(std::forward<F>(fn)),
                            EventId{}});
    return TimerId{static_cast<std::uint32_t>(timers_.size())};
  }

  void arm_timer(TimerId timer, TimePs t) {
    const std::size_t i = timer.value - 1;
    if (timers_[i].pending.valid()) cancel(timers_[i].pending);
    // The deque never relocates elements, so invoking timers_[i].fn while
    // the callback registers further timers is safe.
    timers_[i].pending = schedule_at(t, [this, i] {
      timers_[i].pending = EventId{};
      timers_[i].fn();
    });
  }

  bool disarm_timer(TimerId timer) {
    const std::size_t i = timer.value - 1;
    if (!timers_[i].pending.valid()) return false;
    cancel(timers_[i].pending);
    timers_[i].pending = EventId{};
    return true;
  }

  bool timer_armed(TimerId timer) const {
    return timers_[timer.value - 1].pending.valid();
  }

  /// Reset to the just-constructed state, retaining allocated capacity.
  /// Outstanding EventIds are invalidated; a cleared scheduler re-issues
  /// the same EventId sequence a fresh one would. Registered timers are
  /// discarded (their slots are reclaimed), matching production clear().
  void clear() {
    destroy_pending();
    heap_.clear();
    timers_.clear();
    for (std::uint32_t i = 0; i < slots_used_; ++i) slot_ptr(i)->gen = 1;
    slots_used_ = 0;
    free_head_ = kNoFreeSlot;
    next_seq_ = 0;
    now_ = 0;
    live_ = 0;
    executed_ = 0;
    stop_requested_ = false;
  }

  void run_until(TimePs t_end) {
    stop_requested_ = false;
    while (!heap_.empty() && !stop_requested_) {
      const TimePs t = heap_.front().t;
      if (t > t_end) break;
      do {
        const HeapEntry e = pop_top();
        if (slot_ptr(e.slot)->gen != e.gen) continue;  // cancelled
        now_ = t;
        execute(e);
      } while (!stop_requested_ && !heap_.empty() && heap_.front().t == t);
    }
    if (now_ < t_end && !stop_requested_) now_ = t_end;
  }

  void run_all() {
    stop_requested_ = false;
    while (!heap_.empty() && !stop_requested_) {
      const TimePs t = heap_.front().t;
      do {
        const HeapEntry e = pop_top();
        if (slot_ptr(e.slot)->gen != e.gen) continue;
        now_ = t;
        execute(e);
      } while (!stop_requested_ && !heap_.empty() && heap_.front().t == t);
    }
  }

  bool step() {
    while (!heap_.empty()) {
      const HeapEntry e = pop_top();
      if (slot_ptr(e.slot)->gen != e.gen) continue;  // cancelled
      now_ = e.t;
      execute(e);
      return true;
    }
    return false;
  }

  void request_stop() { stop_requested_ = true; }

  std::size_t pending_events() const { return live_; }
  std::uint64_t executed_events() const { return executed_; }

 private:
  static constexpr std::size_t kInlineStorage = 48;
  static constexpr std::uint32_t kSlotsPerChunk = 256;
  static constexpr std::uint32_t kNoFreeSlot = 0xFFFFFFFFu;

  struct Slot {
    alignas(std::max_align_t) std::byte storage[kInlineStorage];
    void (*run)(void*);
    void (*destroy)(void*);
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoFreeSlot;
  };

  struct HeapEntry {
    TimePs t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  Slot* slot_ptr(std::uint32_t idx) {
    return &chunks_[idx / kSlotsPerChunk][idx % kSlotsPerChunk];
  }

  /// Slot for a still-pending id, nullptr otherwise.
  Slot* lookup(EventId id) {
    if (!id.valid()) return nullptr;
    const std::uint32_t low = static_cast<std::uint32_t>(id.value);
    if (low == 0 || low > slots_used_) return nullptr;
    Slot* s = slot_ptr(low - 1);
    return s->gen == static_cast<std::uint32_t>(id.value >> 32) ? s : nullptr;
  }

  std::uint32_t alloc_slot() {
    if (free_head_ != kNoFreeSlot) {
      const std::uint32_t idx = free_head_;
      free_head_ = slot_ptr(idx)->next_free;
      return idx;
    }
    if (slots_used_ == chunks_.size() * kSlotsPerChunk)
      chunks_.push_back(std::make_unique<Slot[]>(kSlotsPerChunk));
    return slots_used_++;
  }

  void release_slot(std::uint32_t idx, Slot& s) {
    if (++s.gen == 0) s.gen = 1;
    s.next_free = free_head_;
    free_head_ = idx;
  }

  void push_entry(HeapEntry e) {
    heap_.push_back(e);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  HeapEntry pop_top() {
    const HeapEntry top = heap_.front();
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n != 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t first_child = (i << 2) + 1;
        if (first_child >= n) break;
        std::size_t min_child = first_child;
        const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
        for (std::size_t c = first_child + 1; c < end; ++c)
          if (earlier(heap_[c], heap_[min_child])) min_child = c;
        if (!earlier(heap_[min_child], last)) break;
        heap_[i] = heap_[min_child];
        i = min_child;
      }
      heap_[i] = last;
    }
    return top;
  }

  void execute(const HeapEntry& e) {
    Slot& s = *slot_ptr(e.slot);
    ++executed_;
    --live_;
    if (++s.gen == 0) s.gen = 1;
    s.run(s.storage);
    s.next_free = free_head_;
    free_head_ = e.slot;
  }

  void destroy_pending() {
    for (const HeapEntry& e : heap_) {
      Slot& s = *slot_ptr(e.slot);
      if (s.gen == e.gen && s.destroy != nullptr) s.destroy(s.storage);
    }
  }

  struct Timer {
    std::function<void()> fn;
    EventId pending{};
  };

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::deque<Timer> timers_;
  std::uint32_t free_head_ = kNoFreeSlot;
  std::uint32_t slots_used_ = 0;

  std::vector<HeapEntry> heap_;
  std::uint64_t next_seq_ = 0;

  TimePs now_ = 0;
  std::size_t live_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace gfc::sim::testref
