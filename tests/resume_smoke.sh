#!/usr/bin/env bash
# End-to-end crash-safety smoke for the campaign journal (ISSUE 8 /
# EXPERIMENTS.md "Crash-safe campaigns"):
#
#  1. uninterrupted --jobs 1 baseline -> base.json
#  2. journal-backed --jobs 4 run SIGKILLed mid-campaign (after the journal
#     holds a few fsync'd records), then resumed from the journal: the
#     resumed store must be byte-identical to the baseline
#  3. two-shard run (--shard 0/2, 1/2) merged by resuming both journals:
#     byte-identical again
#  4. a deliberately wedged trial (--wedge) under --trial-timeout: exit
#     status 3, the trial recorded as timed_out, every other trial completes
#
# Usage: resume_smoke.sh <fault_sweep_binary>
# On failure, the scratch dir is copied to $RESUME_SMOKE_ARTIFACTS (if set)
# so CI can upload the journals that broke.
set -euo pipefail

bin=$(realpath "$1")
workdir=$(mktemp -d)
cleanup() {
  status=$?
  if [ "$status" -ne 0 ] && [ -n "${RESUME_SMOKE_ARTIFACTS:-}" ]; then
    mkdir -p "$RESUME_SMOKE_ARTIFACTS"
    cp -r "$workdir"/. "$RESUME_SMOKE_ARTIFACTS"/ 2>/dev/null || true
  fi
  rm -rf "$workdir"
  exit "$status"
}
trap cleanup EXIT
cd "$workdir"

echo "== baseline (uninterrupted, --jobs 1)"
"$bin" --quick --jobs 1 --no-progress --json base.json > /dev/null 2>&1

echo "== kill -9 mid-campaign, then resume"
"$bin" --quick --jobs 4 --no-progress --resume j.bin \
  --json interrupted.json > /dev/null 2>&1 &
pid=$!
# Wait until the journal holds the header plus a few records, then SIGKILL.
# (If the quick campaign outruns us and exits cleanly, the resume below
# simply replays a complete journal — still a valid byte-identity check.)
for _ in $(seq 1 600); do
  size=$(stat -c %s j.bin 2> /dev/null || echo 0)
  [ "$size" -ge 2000 ] && break
  kill -0 "$pid" 2> /dev/null || break
  sleep 0.05
done
kill -9 "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true
[ -s j.bin ] || { echo "FAIL: journal never materialized"; exit 1; }

"$bin" --quick --jobs 4 --no-progress --resume j.bin \
  --json resumed.json > /dev/null 2>&1
cmp base.json resumed.json
echo "   resumed store is byte-identical to the uninterrupted run"

echo "== two shards, merged by resuming both journals"
"$bin" --quick --jobs 2 --no-progress --shard 0/2 --resume s0.bin \
  > /dev/null 2>&1
"$bin" --quick --jobs 2 --no-progress --shard 1/2 --resume s1.bin \
  > /dev/null 2>&1
"$bin" --quick --jobs 1 --no-progress --resume s0.bin --resume s1.bin \
  --journal merged.bin --json merged.json > /dev/null 2>&1
cmp base.json merged.json
echo "   merged shard store is byte-identical to the uninterrupted run"

echo "== wedged trial under --trial-timeout"
rc=0
"$bin" --quick --jobs 4 --no-progress --wedge recovery/ring/PFC \
  --trial-timeout 2 --json wedged.json > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] || { echo "FAIL: expected exit 3 (timeouts), got $rc"; exit 1; }
grep -q '"timed_out": true' wedged.json
python3 - << 'EOF'
import json
doc = json.load(open("wedged.json"))
timed = [t["name"] for t in doc["trials"] if t.get("timed_out")]
assert timed == ["recovery/ring/PFC"], timed
bad = [t["name"] for t in doc["trials"]
       if t.get("failed") or t.get("skipped")]
assert not bad, bad
EOF
echo "   wedged trial recorded as timed_out; all other trials completed"

echo "resume smoke: OK"
