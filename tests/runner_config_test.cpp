// Direct unit tests for the runner::FcSetup factory helpers: the named
// constructors, and derive()/try_derive()'s safe-parameter derivation from
// the Theorem 4.1 / 5.1 / B_1 bounds (Sec 5.4).
#include <gtest/gtest.h>

#include "core/params.hpp"
#include "net/packet.hpp"
#include "runner/config.hpp"

namespace gfc::runner {
namespace {

constexpr std::int64_t kMtu = 1500;

struct Env {
  std::int64_t buffer = 300'000;
  sim::Rate c = sim::gbps(10);
  sim::TimePs tau = sim::us(25);
};

TEST(FcSetupFactories, NamedConstructorsFillTheRightFields) {
  const FcSetup p = FcSetup::pfc(280'000, 277'000);
  EXPECT_EQ(p.kind, FcKind::kPfc);
  EXPECT_EQ(p.xoff, 280'000);
  EXPECT_EQ(p.xon, 277'000);

  const FcSetup cb = FcSetup::cbfc(sim::us(52.4));
  EXPECT_EQ(cb.kind, FcKind::kCbfc);
  EXPECT_EQ(cb.period, sim::us(52.4));

  const FcSetup gb = FcSetup::gfc_buffer(281'000, 300'000);
  EXPECT_EQ(gb.kind, FcKind::kGfcBuffer);
  EXPECT_EQ(gb.b1, 281'000);
  EXPECT_EQ(gb.bm, 300'000);

  const FcSetup gt = FcSetup::gfc_time(159'000, 300'000, sim::us(52.4));
  EXPECT_EQ(gt.kind, FcKind::kGfcTime);
  EXPECT_EQ(gt.b0, 159'000);
  EXPECT_EQ(gt.bm, 300'000);
  EXPECT_EQ(gt.period, sim::us(52.4));

  const FcSetup gc = FcSetup::gfc_conceptual(100'000, 200'000, 1024);
  EXPECT_EQ(gc.kind, FcKind::kGfcConceptual);
  EXPECT_EQ(gc.b0, 100'000);
  EXPECT_EQ(gc.bm, 200'000);
  EXPECT_EQ(gc.conceptual_min_delta, 1024);
}

TEST(FcSetupFactories, FcNames) {
  EXPECT_STREQ(fc_name(FcKind::kNone), "none");
  EXPECT_STREQ(fc_name(FcKind::kPfc), "PFC");
  EXPECT_STREQ(fc_name(FcKind::kCbfc), "CBFC");
  EXPECT_STREQ(fc_name(FcKind::kGfcBuffer), "GFC-buffer");
  EXPECT_STREQ(fc_name(FcKind::kGfcTime), "GFC-time");
  EXPECT_STREQ(fc_name(FcKind::kGfcConceptual), "GFC-conceptual");
}

TEST(FcSetupDerive, PfcHeadroomAbsorbsInFlightBytes) {
  const Env s;
  const FcSetup fc = FcSetup::derive(FcKind::kPfc, s.buffer, s.c, s.tau);
  ASSERT_EQ(fc.kind, FcKind::kPfc);
  // XOFF leaves at least C*tau of headroom below the buffer ceiling: every
  // byte in flight when the PAUSE triggers still fits (losslessness).
  EXPECT_LE(fc.xoff, s.buffer - core::bytes_over(s.c, s.tau));
  EXPECT_EQ(fc.xon, fc.xoff - 2 * kMtu);
  EXPECT_GT(fc.xon, 0);
}

TEST(FcSetupDerive, PfcTinyBufferClampsToValidThresholds) {
  // A buffer smaller than the headroom cannot make PFC unsafe-to-derive;
  // thresholds clamp to packet-granularity minimums instead.
  const FcSetup fc = FcSetup::derive(FcKind::kPfc, 10'000, sim::gbps(10),
                                     sim::us(25));
  EXPECT_GT(fc.xoff, fc.xon);
  EXPECT_GE(fc.xon, 1);
}

TEST(FcSetupDerive, CbfcUsesRecommendedPeriod) {
  const Env s;
  const FcSetup fc = FcSetup::derive(FcKind::kCbfc, s.buffer, s.c, s.tau);
  EXPECT_EQ(fc.period, core::cbfc_recommended_period(s.c));
}

TEST(FcSetupDerive, GfcBufferSatisfiesB1Bound) {
  const Env s;
  const FcSetup fc = FcSetup::derive(FcKind::kGfcBuffer, s.buffer, s.c, s.tau);
  ASSERT_EQ(fc.kind, FcKind::kGfcBuffer);
  EXPECT_LT(fc.bm, s.buffer);  // fluid-model slack below the hard buffer
  EXPECT_GT(fc.b1, 0);
  // The Sec 4.2 constraint proper: B_1 <= B_m - 2*C*tau.
  EXPECT_LE(fc.b1, core::b1_bound_buffer(fc.bm, s.c, s.tau));
}

TEST(FcSetupDerive, GfcTimeSatisfiesTheorem51) {
  const Env s;
  const FcSetup fc = FcSetup::derive(FcKind::kGfcTime, s.buffer, s.c, s.tau);
  ASSERT_EQ(fc.kind, FcKind::kGfcTime);
  EXPECT_EQ(fc.period, core::cbfc_recommended_period(s.c));
  EXPECT_GT(fc.b0, 0);
  // Theorem 5.1: B_0 <= B_m - (sqrt(tau/T)+1)^2 * C * T.
  EXPECT_LE(fc.b0, core::b0_bound_timebased(fc.bm, s.c, s.tau, fc.period));
}

TEST(FcSetupDerive, GfcConceptualSatisfiesTheorem41) {
  const Env s;
  const FcSetup fc =
      FcSetup::derive(FcKind::kGfcConceptual, s.buffer, s.c, s.tau);
  ASSERT_EQ(fc.kind, FcKind::kGfcConceptual);
  EXPECT_GT(fc.b0, 0);
  // Theorem 4.1: B_0 <= B_m - 4*C*tau.
  EXPECT_LE(fc.b0, core::b0_bound_conceptual(fc.bm, s.c, s.tau));
}

TEST(FcSetupTryDerive, AgreesWithDeriveWhenFeasible) {
  const Env s;
  for (const FcKind kind : {FcKind::kNone, FcKind::kPfc, FcKind::kCbfc,
                            FcKind::kGfcBuffer, FcKind::kGfcTime,
                            FcKind::kGfcConceptual}) {
    const auto fc = FcSetup::try_derive(kind, s.buffer, s.c, s.tau);
    ASSERT_TRUE(fc.has_value()) << fc_name(kind);
    const FcSetup direct = FcSetup::derive(kind, s.buffer, s.c, s.tau);
    EXPECT_EQ(fc->kind, direct.kind);
    EXPECT_EQ(fc->xoff, direct.xoff);
    EXPECT_EQ(fc->b1, direct.b1);
    EXPECT_EQ(fc->b0, direct.b0);
    EXPECT_EQ(fc->bm, direct.bm);
    EXPECT_EQ(fc->period, direct.period);
  }
}

TEST(FcSetupTryDerive, GfcInfeasibleWhenBufferBelowBound) {
  // 20 KB at 10G with tau = 25 us: 2*C*tau alone is ~62 KB, so no GFC
  // variant has a positive threshold; PFC/CBFC always derive (they clamp).
  const std::int64_t buffer = 20'000;
  const sim::Rate c = sim::gbps(10);
  const sim::TimePs tau = sim::us(25);
  EXPECT_FALSE(FcSetup::try_derive(FcKind::kGfcBuffer, buffer, c, tau));
  EXPECT_FALSE(FcSetup::try_derive(FcKind::kGfcTime, buffer, c, tau));
  EXPECT_FALSE(FcSetup::try_derive(FcKind::kGfcConceptual, buffer, c, tau));
  EXPECT_TRUE(FcSetup::try_derive(FcKind::kPfc, buffer, c, tau));
  EXPECT_TRUE(FcSetup::try_derive(FcKind::kCbfc, buffer, c, tau));
  EXPECT_TRUE(FcSetup::try_derive(FcKind::kNone, buffer, c, tau));
}

TEST(FcSetupTryDerive, ConceptualNeedsMoreBufferThanBufferBased) {
  // Theorem 4.1 reserves 4*C*tau vs the B_1 constraint's 2*C*tau, so there
  // is a buffer band where buffer-based GFC is derivable and conceptual
  // GFC is not.
  const sim::Rate c = sim::gbps(10);
  const sim::TimePs tau = sim::us(25);
  const std::int64_t band = 90'000;  // 2*C*tau ~ 62 KB < band < 4*C*tau+slack
  EXPECT_TRUE(FcSetup::try_derive(FcKind::kGfcBuffer, band, c, tau));
  EXPECT_FALSE(FcSetup::try_derive(FcKind::kGfcConceptual, band, c, tau));
}

TEST(ScenarioConfig, TauMatchesEq6) {
  ScenarioConfig cfg;
  const sim::TimePs expected = core::worst_case_tau(core::TauParams{
      cfg.link.rate, cfg.link.mtu, cfg.link.prop_delay, cfg.control_delay});
  EXPECT_EQ(cfg.tau(), expected);
}

}  // namespace
}  // namespace gfc::runner
