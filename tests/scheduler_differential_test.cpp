// Differential test: the production timing-wheel sim::Scheduler vs the
// frozen PR-1 heap engine (tests/reference_scheduler.hpp), driven in
// lock-step on randomized adversarial workloads.
//
// Both engines promise the same observable contract — time order,
// same-timestamp FIFO by schedule order, generation-tagged cancel,
// reschedule-as-cancel+schedule, persistent timers, run_until/step/clear
// semantics. The harness (tests/differential_harness.hpp) applies an
// identical op script to both and asserts the execution traces (callback
// tag, firing time) match exactly, along with now(), pending_events(),
// and every cancel/reschedule/step result. The script generator lands
// timestamps on the wheel's structural boundaries: tick 0, exact bucket
// edges, level-promotion frontiers, the 64^4-tick horizon (overflow
// heap), and far run_until jumps that force multi-level cascades.
//
// tests/scheduler_fuzz.cpp runs the same harness over open-ended seed
// sweeps; this file pins fixed seeds so CI failures reproduce directly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "differential_harness.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace gfc::sim {
namespace {

using difftest::Fire;
using difftest::Harness;
using difftest::Op;

// 8 seeds x 125k ops = 1e6 randomized ops per run (plus the chained
// events and timer re-arms those ops trigger).
TEST(SchedulerDifferential, MatchesReferenceHeapOnRandomWorkloads) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    EXPECT_EQ(difftest::run_differential(seed, 125000), "");
}

// Targeted miniature scripts for the boundary behaviors the random
// workloads cover only probabilistically.

TEST(SchedulerDifferential, SameInstantBurstKeepsFifoOrder) {
  Harness<Scheduler> wheel;
  Harness<testref::ReferenceScheduler> ref;
  // 64 events at one instant on a tick boundary, interleaved with cancels
  // (some of stale ids), then a full drain.
  Op burst{Op::kBurst, 64, 0, TimePs{1} << 17};
  Op cancel{Op::kCancel, 0, 17, 0};
  Op drain{Op::kRunUntil, 0, 0, TimePs{1} << 20};
  for (const Op& op : {burst, cancel, burst, cancel, drain}) {
    wheel.apply(op);
    ref.apply(op);
  }
  EXPECT_EQ(wheel.log(), ref.log());
  EXPECT_EQ(wheel.results(), ref.results());
}

TEST(SchedulerDifferential, OverflowPromotionAcrossHorizon) {
  constexpr TimePs kHorizonPs = TimePs{1} << (17 + 24);
  Harness<Scheduler> wheel;
  Harness<testref::ReferenceScheduler> ref;
  // Events beyond the horizon, then run_until jumps that promote them
  // into the wheel and eventually fire them.
  std::vector<Op> ops;
  for (int i = 0; i < 32; ++i)
    ops.push_back(Op{Op::kSchedule, 0, 0,
                     kHorizonPs + static_cast<TimePs>(i) * (TimePs{1} << 19)});
  for (int i = 0; i < 8; ++i)
    ops.push_back(Op{Op::kRunUntil, 0, 0, kHorizonPs / 4});
  for (const Op& op : ops) {
    wheel.apply(op);
    ref.apply(op);
  }
  EXPECT_EQ(wheel.log(), ref.log());
  EXPECT_EQ(wheel.now(), ref.now());
  EXPECT_EQ(wheel.pending(), ref.pending());
}

TEST(SchedulerDifferential, ClearThenReuseMatches) {
  // Drive, clear mid-flight with events pending at every level and in
  // overflow, then replay a fresh script — both engines must restart
  // identically (order, results, counts).
  for (std::uint64_t seed : {101ull, 202ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Harness<Scheduler> wheel;
    Harness<testref::ReferenceScheduler> ref;
    for (const Op& op : difftest::make_script(seed, 5000)) {
      wheel.apply(op);
      ref.apply(op);
    }
    Op clear{Op::kClear, 0, 0, 0};
    wheel.apply(clear);
    ref.apply(clear);
    for (const Op& op : difftest::make_script(seed ^ 0xABCDEF, 5000)) {
      wheel.apply(op);
      ref.apply(op);
    }
    wheel.drain();
    ref.drain();
    ASSERT_EQ(wheel.log(), ref.log());
    ASSERT_EQ(wheel.results(), ref.results());
  }
}

// Satellite: clear-then-reuse re-issues the exact same EventId sequence a
// fresh scheduler would (slot indices and generation tags both reset).
TEST(SchedulerClear, ReuseReissuesIdenticalEventIds) {
  Scheduler s;
  auto issue = [&s]() {
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 100; ++i)
      ids.push_back(s.schedule_at(static_cast<TimePs>(i) * 50, [] {}).value);
    // Fire half, cancel some, schedule more: exercises the free list so
    // generation tags move off their initial values.
    s.run_until(50 * 49);
    s.cancel(EventId{ids[60]});
    s.cancel(EventId{ids[61]});
    for (int i = 0; i < 50; ++i)
      ids.push_back(
          s.schedule_at(s.now() + static_cast<TimePs>(i), [] {}).value);
    return ids;
  };
  const std::vector<std::uint64_t> first = issue();
  s.clear();
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.executed_events(), 0u);
  const std::vector<std::uint64_t> second = issue();
  EXPECT_EQ(first, second);
}

TEST(SchedulerClear, DropsRegisteredTimers) {
  Scheduler s;
  int fired = 0;
  TimerId t = s.register_timer([&fired] { ++fired; });
  s.arm_timer(t, 100);
  s.clear();
  EXPECT_EQ(s.pending_events(), 0u);
  s.run_all();
  EXPECT_EQ(fired, 0);
  // Re-registering after clear starts from the same slot a fresh
  // scheduler would hand out.
  Scheduler fresh;
  EXPECT_EQ(s.register_timer([] {}).value, fresh.register_timer([] {}).value);
}

}  // namespace
}  // namespace gfc::sim
