// Seeded scheduler fuzzer: open-ended differential sweep of the
// production timing-wheel sim::Scheduler against the frozen reference
// heap, using the same adversarial harness as the gtest differential
// layer (tests/differential_harness.hpp). Plain binary with its own main
// — no libFuzzer dependency — so it runs anywhere ctest does.
//
// Modes:
//   scheduler_fuzz --seed N [--ops M]     replay one seed (repro a report)
//   scheduler_fuzz --rounds K [--ops M]   sweep K consecutive seeds
//   scheduler_fuzz --duration S [--ops M] sweep seeds for S wall seconds
//
// The starting seed for sweeps is derived from the clock unless --seed is
// given, and every failure prints the exact seed + op count to rerun. Exit
// status 0 = no divergence found.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "differential_harness.hpp"

namespace {

struct Args {
  std::uint64_t seed = 0;
  bool seed_set = false;
  std::size_t ops = 20000;
  std::uint64_t rounds = 0;
  double duration_s = 0;
};

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* val = i + 1 < argc ? argv[i + 1] : nullptr;
    std::uint64_t u = 0;
    if (flag == "--seed" && val != nullptr && parse_u64(val, &u)) {
      a->seed = u;
      a->seed_set = true;
      ++i;
    } else if (flag == "--ops" && val != nullptr && parse_u64(val, &u)) {
      a->ops = static_cast<std::size_t>(u);
      ++i;
    } else if (flag == "--rounds" && val != nullptr && parse_u64(val, &u)) {
      a->rounds = u;
      ++i;
    } else if (flag == "--duration" && val != nullptr) {
      a->duration_s = std::strtod(val, nullptr);
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--ops M] [--rounds K] "
                   "[--duration SECONDS]\n",
                   argv[0]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, &args)) return 2;

  const auto start = std::chrono::steady_clock::now();
  auto elapsed_s = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  std::uint64_t seed =
      args.seed_set
          ? args.seed
          : static_cast<std::uint64_t>(
                std::chrono::system_clock::now().time_since_epoch().count());

  // One-seed replay unless a sweep was requested.
  std::uint64_t rounds = args.rounds;
  if (rounds == 0 && args.duration_s <= 0) rounds = 1;

  std::uint64_t done = 0;
  for (;; ++seed, ++done) {
    if (rounds != 0 && done >= rounds) break;
    if (args.duration_s > 0 && elapsed_s() >= args.duration_s) break;
    const std::string divergence =
        gfc::sim::difftest::run_differential(seed, args.ops);
    if (!divergence.empty()) {
      std::fprintf(stderr, "FAIL: %s\nreproduce with: --seed %llu --ops %zu\n",
                   divergence.c_str(),
                   static_cast<unsigned long long>(seed), args.ops);
      return 1;
    }
  }
  std::printf("scheduler_fuzz: %llu seed(s) x %zu ops, no divergence "
              "(last seed %llu, %.1fs)\n",
              static_cast<unsigned long long>(done), args.ops,
              static_cast<unsigned long long>(seed - 1), elapsed_s());
  return 0;
}
